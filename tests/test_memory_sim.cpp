/**
 * @file
 * Tests for the memory point models, the event queue and the workload
 * / experiment plumbing.
 */

#include <gtest/gtest.h>

#include "memory/memory_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/experiments.hpp"
#include "sim/workloads.hpp"

namespace kelle {
namespace {

TEST(MemoryModel, SramAnchorsAtTable1)
{
    const auto m = mem::sram(Bytes::mib(4), Bandwidth::gibPerSec(128));
    EXPECT_NEAR(m.accessEnergy().pjPerByte(), 185.9, 0.1);
    EXPECT_NEAR(m.leakage().mw(), 415.0, 0.1);
    EXPECT_NEAR(m.area().inMm2(), 7.3, 0.01);
    EXPECT_NEAR(m.accessLatency().ns(), 2.6, 0.01);
}

TEST(MemoryModel, EdramAnchorsAtTable1)
{
    const auto m = mem::edram(Bytes::mib(4), Bandwidth::gibPerSec(256));
    EXPECT_NEAR(m.accessEnergy().pjPerByte(), 84.8, 0.1);
    EXPECT_NEAR(m.leakage().mw(), 154.0, 0.1);
    EXPECT_NEAR(m.area().inMm2(), 3.2, 0.01);
}

TEST(MemoryModel, EdramDensityAdvantage)
{
    // Table 1 / Section 1: eDRAM offers >2x density (less than half
    // the area at equal capacity) and ~3.5x lower leakage than SRAM.
    const auto s = mem::sram(Bytes::mib(4), Bandwidth::gibPerSec(128));
    const auto e = mem::edram(Bytes::mib(4), Bandwidth::gibPerSec(128));
    EXPECT_GT(s.area().inMm2() / e.area().inMm2(), 2.0);
    EXPECT_GT(s.leakage().w() / e.leakage().w(), 2.5);
}

TEST(MemoryModel, ScalingMonotone)
{
    const auto small = mem::sram(Bytes::mib(2), Bandwidth::gibPerSec(128));
    const auto big = mem::sram(Bytes::mib(8), Bandwidth::gibPerSec(128));
    EXPECT_LT(small.area().inMm2(), big.area().inMm2());
    EXPECT_LT(small.leakage().w(), big.leakage().w());
    EXPECT_LT(small.accessEnergy().pjPerByte(),
              big.accessEnergy().pjPerByte());
}

TEST(MemoryModel, TransferMath)
{
    const auto d = mem::lpddr4();
    EXPECT_NEAR(d.transferTime(Bytes::gib(64)).sec(), 1.0, 1e-9);
    EXPECT_NEAR(d.transferEnergy(Bytes::count(1e9)).j(), 0.12, 1e-9);
}

TEST(TrafficMeter, Accumulates)
{
    const auto d = mem::lpddr4();
    mem::TrafficMeter meter(d);
    meter.read(Bytes::mib(10));
    meter.write(Bytes::mib(6));
    EXPECT_DOUBLE_EQ(meter.total().inMib(), 16.0);
    EXPECT_GT(meter.energy().j(), 0.0);
}

TEST(EventQueue, OrdersByTime)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(Time::micros(3), [&] { order.push_back(3); });
    q.schedule(Time::micros(1), [&] { order.push_back(1); });
    q.schedule(Time::micros(2), [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now().us(), 3.0);
}

TEST(EventQueue, PriorityBreaksTies)
{
    sim::EventQueue q;
    std::vector<int> order;
    q.schedule(Time::micros(1), [&] { order.push_back(2); }, 2);
    q.schedule(Time::micros(1), [&] { order.push_back(1); }, 1);
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CallbacksCanReschedule)
{
    sim::EventQueue q;
    int ticks = 0;
    std::function<void()> tick = [&] {
        if (++ticks < 5)
            q.scheduleAfter(Time::micros(1), tick);
    };
    q.schedule(Time::micros(0), tick);
    q.runAll();
    EXPECT_EQ(ticks, 5);
    EXPECT_DOUBLE_EQ(q.now().us(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    sim::EventQueue q;
    int ran = 0;
    q.schedule(Time::micros(1), [&] { ++ran; });
    q.schedule(Time::micros(10), [&] { ++ran; });
    q.runUntil(Time::micros(5));
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_DOUBLE_EQ(q.now().us(), 5.0);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    sim::EventQueue q;
    q.schedule(Time::micros(5), [] {});
    q.runAll();
    EXPECT_DEATH(q.schedule(Time::micros(1), [] {}), "past");
}

TEST(Workloads, PresetsMatchPaperSettings)
{
    const auto pg = sim::pg19();
    EXPECT_EQ(pg.ctxLen, 512u);
    EXPECT_EQ(pg.decLen, 8192u);
    EXPECT_EQ(pg.budget, 2048u);
    EXPECT_EQ(pg.recentWindow, 1024u);
    const auto la = sim::lambada();
    EXPECT_EQ(la.budget, 128u);
    EXPECT_EQ(la.recentWindow, 64u);
    EXPECT_EQ(sim::hardwareTasks().size(), 4u);
}

TEST(Workloads, ScaledTaskKeepsInvariant)
{
    for (const auto &task : sim::hardwareTasks()) {
        const auto s = sim::scaledForTiny(task);
        EXPECT_GT(s.budget, s.sinkTokens + s.recentWindow) << task.name;
        EXPECT_GE(s.ctxLen, 16u);
        EXPECT_GE(s.decLen, 32u);
    }
}

TEST(Workloads, CacheConfigsValid)
{
    for (const auto &task : sim::hardwareTasks()) {
        for (auto policy :
             {kv::Policy::Full, kv::Policy::Streaming, kv::Policy::H2O,
              kv::Policy::Aerp}) {
            const auto cfg = sim::cacheConfigFor(task, policy);
            EXPECT_TRUE(cfg.validate().empty())
                << task.name << " " << kv::toString(policy);
        }
    }
}

TEST(Experiments, Figure13ShapesHold)
{
    // A scaled-down task keeps this test fast while preserving the
    // qualitative ranking of the five systems.
    sim::Task task = sim::lambada();
    task.decLen = 128;
    const auto results =
        sim::runFigure13(task, model::llama2_7b(), /*batch=*/4);
    ASSERT_EQ(results.size(), 5u);
    EXPECT_EQ(results[0].system, "Original+SRAM");
    EXPECT_EQ(results[4].system, "Kelle+eDRAM");
    // Kelle wins overall.
    EXPECT_GT(results[4].speedup, 1.0);
    EXPECT_GT(results[4].energyEfficiency, 1.0);
    // Kelle at least matches the intermediate systems.
    for (std::size_t i = 1; i < 4; ++i) {
        EXPECT_GE(results[4].speedup, results[i].speedup * 0.99)
            << results[i].system;
    }
    // Original+eDRAM without refresh optimization loses energy
    // efficiency versus Original+SRAM (Section 8.1.3).
    EXPECT_LT(results[1].energyEfficiency, 1.0);
    EXPECT_GT(results[1].speedup, 1.0);
}

TEST(Experiments, AccuracyBenchProducesBaseline)
{
    sim::Task tiny = sim::scaledForTiny(sim::lambada(), 96);
    sim::AccuracyBench bench(tiny, /*seed=*/77);
    EXPECT_GT(bench.baselinePerplexity(), 1.0);

    const auto full = bench.run(kv::makeFullConfig());
    EXPECT_NEAR(full.perplexity, bench.baselinePerplexity(), 1e-9);
    EXPECT_DOUBLE_EQ(full.agreementTop1, 1.0);

    const auto aerp = bench.run(sim::cacheConfigFor(tiny, kv::Policy::Aerp));
    EXPECT_GE(aerp.perplexity, full.perplexity * 0.99);
    EXPECT_GT(aerp.agreementTop1, 0.2);
}

} // namespace
} // namespace kelle
