/**
 * @file
 * Property tests of the deterministic parallel cluster engine: every
 * threaded run must produce a ClusterReport bit-identical to the
 * serial shared-heap engine (`threads = 1`), across the full
 * (policy x dispatch x fleet x seed) sweep, with preemption on and
 * off, and including configurations where the fast-forward window
 * logic actually fires (`fastForwardedSteps > 0`).
 *
 * Suites are split on purpose so per-suite ctest registration
 * (cmake/KelleGtestSuites.cmake) shards the sim-scale sweeps:
 *
 *  - ParallelSweep: threads {2,4,8} x all scheduling policies x all
 *    dispatch policies x homo/hetero fleets x 3 seeds, bitwise equal
 *    to the serial run of the same cell.
 *  - ParallelPreempt: preempt-and-requeue on — the serialized
 *    fallback rounds must replay cross-device requeues in the serial
 *    heap's pop order.
 *  - ParallelFastForward: KV-blocked sjf/edf cells where devices
 *    fast-forward through idle gaps inside lookahead windows.
 *  - ParallelOracle: the event-path oracle — `fastSim = false` (the
 *    step-at-a-time loop) agrees bitwise with the fast path under
 *    preemption and under deferral-replay policies, serial and
 *    threaded alike.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.hpp"

namespace kelle {
namespace {

std::vector<std::pair<sim::Task, double>>
tinyMix()
{
    return {{sim::scaledForTiny(sim::lambada(), 96), 1.0},
            {sim::scaledForTiny(sim::triviaQa(), 128), 1.0}};
}

cluster::ClusterConfig
tinyClusterConfig(std::size_t n_devices, cluster::DispatchKind dispatch,
                  serving::SchedulePolicy policy, double rate,
                  std::uint64_t seed, std::size_t requests)
{
    serving::ServingConfig cfg;
    cfg.model = model::tinyLm();
    cfg.system = accel::kelleEdramSystem(2048);
    cfg.policy = policy;
    cfg.maxBatch = 4;
    cfg.poolTokens = 512;
    cfg.traffic.ratePerSec = rate;
    cfg.traffic.seed = seed;
    cfg.traffic.numRequests = requests;
    cfg.traffic.mix = tinyMix();
    return cluster::clusterConfigFrom(cfg, n_devices, dispatch);
}

/** Field-for-field bitwise equality of two serving summaries. */
void
expectSummariesBitIdentical(const serving::ServingSummary &a,
                            const serving::ServingSummary &b,
                            const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.rejected, b.rejected) << label;
    EXPECT_EQ(a.makespan.sec(), b.makespan.sec()) << label;
    EXPECT_EQ(a.ttftMean, b.ttftMean) << label;
    EXPECT_EQ(a.ttftP50, b.ttftP50) << label;
    EXPECT_EQ(a.ttftP95, b.ttftP95) << label;
    EXPECT_EQ(a.ttftP99, b.ttftP99) << label;
    EXPECT_EQ(a.e2eP50, b.e2eP50) << label;
    EXPECT_EQ(a.e2eP95, b.e2eP95) << label;
    EXPECT_EQ(a.e2eP99, b.e2eP99) << label;
    EXPECT_EQ(a.tpotMean, b.tpotMean) << label;
    EXPECT_EQ(a.tpotP50, b.tpotP50) << label;
    EXPECT_EQ(a.tpotP95, b.tpotP95) << label;
    EXPECT_EQ(a.tokenGapP95, b.tokenGapP95) << label;
    EXPECT_EQ(a.goodputTokensPerSec, b.goodputTokensPerSec) << label;
    EXPECT_EQ(a.sloTtftAttainment, b.sloTtftAttainment) << label;
    EXPECT_EQ(a.sloTpotAttainment, b.sloTpotAttainment) << label;
    EXPECT_EQ(a.sloAttainment, b.sloAttainment) << label;
    EXPECT_EQ(a.admissionBypasses, b.admissionBypasses) << label;
    EXPECT_EQ(a.preemptions, b.preemptions) << label;
    EXPECT_EQ(a.maxQueueWaitSec, b.maxQueueWaitSec) << label;
    EXPECT_EQ(a.meanQueueDepth, b.meanQueueDepth) << label;
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth) << label;
    EXPECT_EQ(a.meanBudgetFraction, b.meanBudgetFraction) << label;
    EXPECT_EQ(a.energy.total().j(), b.energy.total().j()) << label;
    EXPECT_EQ(a.energy.refresh.j(), b.energy.refresh.j()) << label;
    EXPECT_EQ(a.energyPerToken, b.energyPerToken) << label;
}

void
expectReportsBitIdentical(const serving::ServingReport &a,
                          const serving::ServingReport &b,
                          const std::string &label)
{
    expectSummariesBitIdentical(a.summary, b.summary, label);
    EXPECT_EQ(a.engineSteps, b.engineSteps) << label;
    EXPECT_EQ(a.decodeSteps, b.decodeSteps) << label;
    EXPECT_EQ(a.prefillChunks, b.prefillChunks) << label;
    EXPECT_EQ(a.prefills, b.prefills) << label;
    EXPECT_EQ(a.poolTokens, b.poolTokens) << label;
    EXPECT_EQ(a.poolCapacityBytes, b.poolCapacityBytes) << label;
    EXPECT_EQ(a.poolPeakBytes, b.poolPeakBytes) << label;
    EXPECT_EQ(a.shrunkGrants, b.shrunkGrants) << label;
    EXPECT_EQ(a.deferrals, b.deferrals) << label;
    EXPECT_EQ(a.peakLogicalTokens, b.peakLogicalTokens) << label;
    EXPECT_EQ(a.paged.enabled, b.paged.enabled) << label;
    EXPECT_EQ(a.paged.totalPages, b.paged.totalPages) << label;
    EXPECT_EQ(a.paged.peakUsedPages, b.paged.peakUsedPages) << label;
    EXPECT_EQ(a.paged.peakSharedPages, b.paged.peakSharedPages)
        << label;
    EXPECT_EQ(a.paged.prefixHitTokens, b.paged.prefixHitTokens)
        << label;
    EXPECT_EQ(a.paged.cowCopies, b.paged.cowCopies) << label;
    EXPECT_EQ(a.paged.cachedReclaims, b.paged.cachedReclaims) << label;
    EXPECT_EQ(a.paged.tailReclaims, b.paged.tailReclaims) << label;
    EXPECT_EQ(a.paged.reclaimedPages, b.paged.reclaimedPages) << label;
    EXPECT_EQ(a.paged.budgetClips, b.paged.budgetClips) << label;
    EXPECT_EQ(a.drained, b.drained) << label;
}

/** The whole fleet report, device-by-device, bit for bit. */
void
expectClustersBitIdentical(const cluster::ClusterReport &a,
                           const cluster::ClusterReport &b,
                           const std::string &label)
{
    expectReportsBitIdentical(a.aggregate, b.aggregate, label);
    EXPECT_EQ(a.loadImbalanceCv, b.loadImbalanceCv) << label;
    EXPECT_EQ(a.meanKvPeakUtilization, b.meanKvPeakUtilization)
        << label;
    EXPECT_EQ(a.refreshEnergyJ, b.refreshEnergyJ) << label;
    ASSERT_EQ(a.devices.size(), b.devices.size()) << label;
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        const std::string dev = label + " dev" + std::to_string(i);
        EXPECT_EQ(a.devices[i].name, b.devices[i].name) << dev;
        EXPECT_EQ(a.devices[i].dispatched, b.devices[i].dispatched)
            << dev;
        EXPECT_EQ(a.devices[i].busySec, b.devices[i].busySec) << dev;
        EXPECT_EQ(a.devices[i].kvPeakUtilization,
                  b.devices[i].kvPeakUtilization)
            << dev;
        expectReportsBitIdentical(a.devices[i].report,
                                  b.devices[i].report, dev);
    }
}

/** Run the cell serially, then assert every thread count matches. */
void
expectThreadInvariant(cluster::ClusterConfig cfg,
                      const std::string &label)
{
    cfg.threads = 1;
    const auto serial = cluster::ClusterEngine(cfg).run();
    for (std::size_t threads : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
        cfg.threads = threads;
        const auto par = cluster::ClusterEngine(cfg).run();
        expectClustersBitIdentical(
            serial, par, label + "/t" + std::to_string(threads));
    }
}

// ---- The full sweep -----------------------------------------------------

TEST(ParallelSweep, HomogeneousFleetMatchesSerialBitExactly)
{
    for (auto policy : serving::allSchedulePolicies()) {
        for (auto dispatch : cluster::allDispatchPolicies()) {
            for (std::uint64_t seed : {3u, 17u, 99u}) {
                auto cfg = tinyClusterConfig(4, dispatch, policy,
                                             300.0, seed, 24);
                cfg.engine.chunkTokens = 16;
                expectThreadInvariant(
                    cfg, toString(policy) + "/" + toString(dispatch) +
                             "/s" + std::to_string(seed));
            }
        }
    }
}

TEST(ParallelSweep, HeterogeneousFleetMatchesSerialBitExactly)
{
    for (auto policy : serving::allSchedulePolicies()) {
        for (auto dispatch : cluster::allDispatchPolicies()) {
            for (std::uint64_t seed : {7u, 21u, 42u}) {
                auto cfg = tinyClusterConfig(4, dispatch, policy,
                                             500.0, seed, 24);
                cfg.engine.chunkTokens = 16;
                cfg.devices = cluster::heteroEdramSramFleet(
                    4, 2048, 512, 128, 4);
                expectThreadInvariant(
                    cfg, "hetero/" + toString(policy) + "/" +
                             toString(dispatch) + "/s" +
                             std::to_string(seed));
            }
        }
    }
}

TEST(ParallelSweep, ThreadCountBeyondFleetSizeClampsSafely)
{
    // 8 lanes over a 2-device fleet: the clamp must leave the outcome
    // untouched, and threads = 0 (auto) must also be bit-identical.
    auto cfg = tinyClusterConfig(2, cluster::DispatchKind::RoundRobin,
                                 serving::SchedulePolicy::Fcfs, 200.0,
                                 5, 16);
    cfg.threads = 1;
    const auto serial = cluster::ClusterEngine(cfg).run();
    cfg.threads = 8;
    expectClustersBitIdentical(serial,
                               cluster::ClusterEngine(cfg).run(),
                               "clamp/t8");
    cfg.threads = 0;
    expectClustersBitIdentical(serial,
                               cluster::ClusterEngine(cfg).run(),
                               "clamp/auto");
}

TEST(ParallelSweep, SingleDeviceFleetStaysSerial)
{
    // threads > 1 on a 1-device fleet clamps to the serial engine;
    // the Scheduler equivalence must therefore survive any setting.
    auto cfg = tinyClusterConfig(1, cluster::DispatchKind::RoundRobin,
                                 serving::SchedulePolicy::EdfChunked,
                                 100.0, 11, 16);
    cfg.engine.chunkTokens = 16;
    cfg.threads = 1;
    const auto serial = cluster::ClusterEngine(cfg).run();
    cfg.threads = 4;
    expectClustersBitIdentical(serial,
                               cluster::ClusterEngine(cfg).run(),
                               "one-device");
}

// ---- Preempt-and-requeue across partitions ------------------------------

TEST(ParallelPreempt, RequeueMergeMatchesSerialOrder)
{
    // Doomed decodes force cross-device requeues: the parallel
    // engine's serialized rounds must replay them in the serial heap's
    // (emitting device, emission order) pop order, or victims land on
    // different devices and the reports diverge.
    for (auto dispatch : cluster::allDispatchPolicies()) {
        for (std::uint64_t seed : {13u, 29u, 57u}) {
            auto cfg = tinyClusterConfig(
                4, dispatch,
                serving::SchedulePolicy::ContinuousBatching, 2000.0,
                seed, 24);
            cfg.engine.traffic.slo.tpotSec = 2e-6;
            cfg.engine.preempt.enabled = true;
            expectThreadInvariant(cfg,
                                  "preempt/" + toString(dispatch) +
                                      "/s" + std::to_string(seed));
        }
    }
}

TEST(ParallelPreempt, PreemptionsActuallyFireInTheSweep)
{
    // Guard the guard: at least one preempt cell really exercises the
    // requeue path (otherwise RequeueMergeMatchesSerialOrder would
    // pass vacuously).
    auto cfg = tinyClusterConfig(
        4, cluster::DispatchKind::JoinShortestKv,
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 13, 24);
    cfg.engine.traffic.slo.tpotSec = 2e-6;
    cfg.engine.preempt.enabled = true;
    cfg.threads = 4;
    const auto rep = cluster::ClusterEngine(cfg).run();
    EXPECT_GT(rep.aggregate.summary.preemptions, 0u);
    EXPECT_TRUE(rep.aggregate.drained);
}

TEST(ParallelPreempt, HeteroPreemptSweepMatchesSerial)
{
    auto cfg = tinyClusterConfig(
        4, cluster::DispatchKind::JoinShortestKv,
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 13, 24);
    cfg.devices = cluster::heteroEdramSramFleet(4, 2048, 512, 128, 4);
    cfg.engine.traffic.slo.tpotSec = 2e-6;
    cfg.engine.preempt.enabled = true;
    expectThreadInvariant(cfg, "hetero-preempt");
}

// ---- Fast-forward inside windows ----------------------------------------

TEST(ParallelFastForward, KvBlockedSkipPoliciesFastForwardAndMatch)
{
    // A cramped pool under sjf/edf (skipBlocked admission): devices go
    // idle while KV-blocked and must fast-forward through the gap to
    // the window horizon — the deferral-replay path the parallel
    // engine relies on. The run must both exercise that path and stay
    // bit-identical to serial.
    for (auto policy : {serving::SchedulePolicy::SjfWithinDeadline,
                        serving::SchedulePolicy::EdfChunked}) {
        for (std::uint64_t seed : {13u, 23u}) {
            auto cfg = tinyClusterConfig(
                2, cluster::DispatchKind::RoundRobin, policy, 2000.0,
                seed, 16);
            cfg.engine.chunkTokens = 16;
            for (auto &d : cfg.devices)
                d.poolTokens = 96; // tight: forces deferrals
            cfg.engine.poolTokens = 96;
            const std::string label = "kvblock/" + toString(policy) +
                                      "/s" + std::to_string(seed);
            expectThreadInvariant(cfg, label);

            cfg.threads = 2;
            cluster::ClusterEngine engine(cfg);
            const auto rep = engine.run();
            EXPECT_TRUE(rep.aggregate.drained) << label;
            EXPECT_GT(rep.aggregate.deferrals, 0u) << label;
            std::uint64_t ffwd = 0;
            for (std::size_t i = 0; i < engine.deviceCount(); ++i)
                ffwd += engine.device(i).fastForwardedSteps();
            EXPECT_GT(ffwd, 0u) << label;
        }
    }
}

TEST(ParallelFastForward, IdleGapsAreSkippedNotStepped)
{
    // A trickle trace on a 4-device fleet: devices sit idle between
    // arrivals, so almost every window is a fast-forward. The cheap
    // structural check that lookahead actually engages.
    auto cfg = tinyClusterConfig(4, cluster::DispatchKind::RoundRobin,
                                 serving::SchedulePolicy::Fcfs, 2.0,
                                 3, 12);
    cfg.threads = 1;
    const auto serial = cluster::ClusterEngine(cfg).run();
    cfg.threads = 4;
    cluster::ClusterEngine engine(cfg);
    const auto par = engine.run();
    expectClustersBitIdentical(serial, par, "trickle");
    std::uint64_t ffwd = 0;
    for (std::size_t i = 0; i < engine.deviceCount(); ++i)
        ffwd += engine.device(i).fastForwardedSteps();
    EXPECT_GT(ffwd, 0u);
}

// ---- Event-path oracle --------------------------------------------------

TEST(ParallelOracle, SlowPathAgreesUnderPreemption)
{
    // fastSim = false forces the step-at-a-time event loop (no
    // fast-forward, no memoized costs). Any divergence between that
    // oracle and the fast path — serial or threaded — means the doom
    // bounds or the deferral replay changed the schedule.
    auto cfg = tinyClusterConfig(
        2, cluster::DispatchKind::JoinShortestKv,
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 13, 24);
    cfg.engine.traffic.slo.tpotSec = 2e-6;
    cfg.engine.preempt.enabled = true;

    cfg.engine.fastSim = false;
    cfg.threads = 1;
    const auto oracle = cluster::ClusterEngine(cfg).run();
    ASSERT_GT(oracle.aggregate.summary.preemptions, 0u);

    cfg.engine.fastSim = true;
    const auto fast = cluster::ClusterEngine(cfg).run();
    expectClustersBitIdentical(oracle, fast, "oracle/serial-fast");
    cfg.threads = 2;
    const auto par = cluster::ClusterEngine(cfg).run();
    expectClustersBitIdentical(oracle, par, "oracle/threaded-fast");
}

TEST(ParallelOracle, SlowPathAgreesUnderDeferralReplay)
{
    // Same oracle over the KV-blocked sjf cell: the relaxed
    // fast-forward guard (reorder policies with every-candidate
    // deferral) must reproduce the slow path's admission decisions.
    auto cfg = tinyClusterConfig(
        2, cluster::DispatchKind::RoundRobin,
        serving::SchedulePolicy::SjfWithinDeadline, 2000.0, 13, 16);
    cfg.engine.chunkTokens = 16;
    for (auto &d : cfg.devices)
        d.poolTokens = 96;
    cfg.engine.poolTokens = 96;

    cfg.engine.fastSim = false;
    cfg.threads = 1;
    const auto oracle = cluster::ClusterEngine(cfg).run();
    ASSERT_GT(oracle.aggregate.deferrals, 0u);

    cfg.engine.fastSim = true;
    const auto fast = cluster::ClusterEngine(cfg).run();
    expectClustersBitIdentical(oracle, fast, "defer/serial-fast");
    cfg.threads = 2;
    const auto par = cluster::ClusterEngine(cfg).run();
    expectClustersBitIdentical(oracle, par, "defer/threaded-fast");
}

} // namespace
} // namespace kelle
