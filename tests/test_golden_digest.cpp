/**
 * @file
 * Golden-digest regression tier: the full text output (stdout +
 * stderr) of the serving/cluster benches and the edge_server example
 * on a small deterministic config is hashed (FNV-1a 64) against a
 * checked-in digest. Any future perf work that perturbs a single
 * byte of the simulation's observable results — a latency, an energy
 * figure, a percentile, a log line — fails here in tier 1 rather
 * than surfacing as a silent result drift.
 *
 * The digests were recorded from the PR 4 engine; the ISSUE 5 fast
 * path (step-cost memoization, fast-forwarded stepping) reproduces
 * them bit-for-bit, which is exactly the invariant this test pins.
 * If a deliberate, reviewed behaviour change moves the outputs,
 * re-record with the commands in each test and update the constants
 * in the same commit.
 *
 * Binaries are located through KELLE_BIN_DIR (the CMake binary dir,
 * injected by tests/CMakeLists.txt); a test skips when its binary was
 * not built (e.g. -DKELLE_BUILD_BENCH=OFF).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

namespace {

#ifndef KELLE_BIN_DIR
#define KELLE_BIN_DIR "."
#endif

bool
fileExists(const std::string &path)
{
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        return true;
    }
    return false;
}

/** Run `cmd` (stderr folded into stdout), return its full output. */
std::string
capture(const std::string &cmd, int *exit_code)
{
    std::string out;
    std::FILE *pipe = ::popen((cmd + " 2>&1").c_str(), "r");
    if (pipe == nullptr) {
        *exit_code = -1;
        return out;
    }
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    *exit_code = ::pclose(pipe);
    return out;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

void
expectDigest(const std::string &binary, const std::string &flags,
             std::uint64_t want)
{
    const std::string path = std::string(KELLE_BIN_DIR) + "/" + binary;
    if (!fileExists(path))
        GTEST_SKIP() << path << " not built";
    int exit_code = 0;
    const std::string out = capture(path + " " + flags, &exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    const std::uint64_t got = fnv1a64(out);
    EXPECT_EQ(got, want)
        << "output of `" << binary << " " << flags
        << "` drifted from the golden digest (got 0x" << std::hex
        << got << ", want 0x" << want
        << ").\nIf the change is deliberate, re-record the digest "
           "from this command's full stdout+stderr.";
}

TEST(GoldenDigest, BenchServingSmallConfig)
{
    expectDigest("bench/bench_serving",
                 "--rate 0.05 --requests 16 --policy all --sweep 0 "
                 "--study 0",
                 0x451a96a526f86c74ull);
}

TEST(GoldenDigest, BenchServingPagedSessionsSmoke)
{
    // The paged KV pool rides the same deterministic engine: the
    // paged + sessions smoke config is pinned byte-for-byte, so any
    // nondeterminism in page allocation, prefix sharing, or the
    // paged fast-forward path shows up as a digest drift here.
    expectDigest("bench/bench_serving",
                 "--paged --sessions 4 --rate 0.05 --requests 16 "
                 "--policy contbatch --sweep 0 --study 0",
                 0xce1d383c8662791eull);
}

TEST(GoldenDigest, BenchClusterSmallHeteroConfig)
{
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0",
                 0x1bf07f53c96d1bb8ull);
}

TEST(GoldenDigest, BenchClusterThreadedMatchesSerialDigest)
{
    // The parallel cluster engine's whole contract in one line: the
    // threaded run hashes to the *same* golden digest as the serial
    // one above. A changed byte anywhere in the report means the
    // lookahead/commit protocol reordered something observable.
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0 --threads 4",
                 0x1bf07f53c96d1bb8ull);
}

TEST(GoldenDigest, BenchClusterThreadedPreemptMatchesSerialDigest)
{
    // Same pinning for the preempt-and-requeue path: the serialized
    // fallback rounds must merge cross-device requeues exactly as the
    // serial heap would. Serial and 4-lane digests are recorded from
    // the same command modulo --threads, and must stay equal.
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0 --preempt --rate 0.08",
                 0x3f3f11f1704caf8cull);
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0 --preempt --rate 0.08 --threads 4",
                 0x3f3f11f1704caf8cull);
}

TEST(GoldenDigest, EdgeServerDefaultSession)
{
    expectDigest("examples/edge_server", "", 0x9852bb7d3bac4ca7ull);
}

/** Read a whole file (empty string when unreadable). */
std::string
slurp(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(GoldenDigest, BenchClusterTraceFile)
{
    // The exported Perfetto trace is pinned exactly like the text
    // output: any byte drift in the event stream — an extra event, a
    // reordered track, a timestamp or formatting change — fails here.
    // The threaded run must produce the *same* trace file.
    const std::string path = std::string(KELLE_BIN_DIR) +
                             "/bench/bench_cluster";
    if (!fileExists(path))
        GTEST_SKIP() << path << " not built";
    const std::string flags = "--devices 2 --hetero --requests 12 "
                              "--sweep 0 --study 0";
    const std::uint64_t want = 0xc881545f5a9a4130ull;
    for (const std::string threads : {" --threads 1", " --threads 4"}) {
        const std::string trace =
            std::string(::testing::TempDir()) + "/kelle_trace.json";
        std::remove(trace.c_str());
        int exit_code = 0;
        const std::string out = capture(
            path + " " + flags + threads + " --trace-out " + trace,
            &exit_code);
        ASSERT_EQ(exit_code, 0) << out;
        const std::string bytes = slurp(trace);
        ASSERT_FALSE(bytes.empty()) << "no trace written to " << trace;
        EXPECT_EQ(fnv1a64(bytes), want)
            << "trace bytes drifted (threads flag:" << threads
            << "). If the change is deliberate, re-record from this "
               "command's --trace-out file.";
        std::remove(trace.c_str());
    }
}

} // namespace
