/**
 * @file
 * Golden-digest regression tier: the full text output (stdout +
 * stderr) of the serving/cluster benches and the edge_server example
 * on a small deterministic config is hashed (FNV-1a 64) against a
 * checked-in digest. Any future perf work that perturbs a single
 * byte of the simulation's observable results — a latency, an energy
 * figure, a percentile, a log line — fails here in tier 1 rather
 * than surfacing as a silent result drift.
 *
 * The digests were recorded from the PR 4 engine; the ISSUE 5 fast
 * path (step-cost memoization, fast-forwarded stepping) reproduces
 * them bit-for-bit, which is exactly the invariant this test pins.
 * If a deliberate, reviewed behaviour change moves the outputs,
 * re-record with the commands in each test and update the constants
 * in the same commit.
 *
 * Binaries are located through KELLE_BIN_DIR (the CMake binary dir,
 * injected by tests/CMakeLists.txt); a test skips when its binary was
 * not built (e.g. -DKELLE_BUILD_BENCH=OFF).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

namespace {

#ifndef KELLE_BIN_DIR
#define KELLE_BIN_DIR "."
#endif

bool
fileExists(const std::string &path)
{
    if (std::FILE *f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        return true;
    }
    return false;
}

/** Run `cmd` (stderr folded into stdout), return its full output. */
std::string
capture(const std::string &cmd, int *exit_code)
{
    std::string out;
    std::FILE *pipe = ::popen((cmd + " 2>&1").c_str(), "r");
    if (pipe == nullptr) {
        *exit_code = -1;
        return out;
    }
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    *exit_code = ::pclose(pipe);
    return out;
}

std::uint64_t
fnv1a64(const std::string &bytes)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

void
expectDigest(const std::string &binary, const std::string &flags,
             std::uint64_t want)
{
    const std::string path = std::string(KELLE_BIN_DIR) + "/" + binary;
    if (!fileExists(path))
        GTEST_SKIP() << path << " not built";
    int exit_code = 0;
    const std::string out = capture(path + " " + flags, &exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    const std::uint64_t got = fnv1a64(out);
    EXPECT_EQ(got, want)
        << "output of `" << binary << " " << flags
        << "` drifted from the golden digest (got 0x" << std::hex
        << got << ", want 0x" << want
        << ").\nIf the change is deliberate, re-record the digest "
           "from this command's full stdout+stderr.";
}

TEST(GoldenDigest, BenchServingSmallConfig)
{
    expectDigest("bench/bench_serving",
                 "--rate 0.05 --requests 16 --policy all --sweep 0 "
                 "--study 0",
                 0x451a96a526f86c74ull);
}

TEST(GoldenDigest, BenchServingPagedSessionsSmoke)
{
    // The paged KV pool rides the same deterministic engine: the
    // paged + sessions smoke config is pinned byte-for-byte, so any
    // nondeterminism in page allocation, prefix sharing, or the
    // paged fast-forward path shows up as a digest drift here.
    expectDigest("bench/bench_serving",
                 "--paged --sessions 4 --rate 0.05 --requests 16 "
                 "--policy contbatch --sweep 0 --study 0",
                 0xce1d383c8662791eull);
}

TEST(GoldenDigest, BenchClusterSmallHeteroConfig)
{
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0",
                 0x1bf07f53c96d1bb8ull);
}

TEST(GoldenDigest, BenchClusterThreadedMatchesSerialDigest)
{
    // The parallel cluster engine's whole contract in one line: the
    // threaded run hashes to the *same* golden digest as the serial
    // one above. A changed byte anywhere in the report means the
    // lookahead/commit protocol reordered something observable.
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0 --threads 4",
                 0x1bf07f53c96d1bb8ull);
}

TEST(GoldenDigest, BenchClusterThreadedPreemptMatchesSerialDigest)
{
    // Same pinning for the preempt-and-requeue path: the serialized
    // fallback rounds must merge cross-device requeues exactly as the
    // serial heap would. Serial and 4-lane digests are recorded from
    // the same command modulo --threads, and must stay equal.
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0 --preempt --rate 0.08",
                 0x3f3f11f1704caf8cull);
    expectDigest("bench/bench_cluster",
                 "--devices 2 --hetero --requests 12 --sweep 0 "
                 "--study 0 --preempt --rate 0.08 --threads 4",
                 0x3f3f11f1704caf8cull);
}

TEST(GoldenDigest, BenchClusterFaultRunMatchesAcrossThreads)
{
    // The fault-injection subsystem rides the same byte-exactness
    // contract: a seeded fault run (crashes, retries, the degradation
    // ladder, the fault report table) is pinned, and the 4-lane run
    // must hash to the same digest as the serial one. Faults OFF is
    // covered by every digest above staying unchanged — the null test.
    const std::string flags = "--devices 2 --hetero --requests 12 "
                              "--sweep 0 --study 0 --faults "
                              "--mtbf 40 --mttr 10";
    expectDigest("bench/bench_cluster", flags, 0x64c29f80073e442eull);
    expectDigest("bench/bench_cluster", flags + " --threads 4",
                 0x64c29f80073e442eull);
}

TEST(GoldenDigest, EdgeServerDefaultSession)
{
    expectDigest("examples/edge_server", "", 0x9852bb7d3bac4ca7ull);
}

/** Read a whole file (empty string when unreadable). */
std::string
slurp(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return out;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(GoldenDigest, BenchClusterTraceFile)
{
    // The exported Perfetto trace is pinned exactly like the text
    // output: any byte drift in the event stream — an extra event, a
    // reordered track, a timestamp or formatting change — fails here.
    // The threaded run must produce the *same* trace file.
    const std::string path = std::string(KELLE_BIN_DIR) +
                             "/bench/bench_cluster";
    if (!fileExists(path))
        GTEST_SKIP() << path << " not built";
    const std::string flags = "--devices 2 --hetero --requests 12 "
                              "--sweep 0 --study 0";
    const std::uint64_t want = 0xc881545f5a9a4130ull;
    for (const std::string threads : {" --threads 1", " --threads 4"}) {
        const std::string trace =
            std::string(::testing::TempDir()) + "/kelle_trace.json";
        std::remove(trace.c_str());
        int exit_code = 0;
        const std::string out = capture(
            path + " " + flags + threads + " --trace-out " + trace,
            &exit_code);
        ASSERT_EQ(exit_code, 0) << out;
        const std::string bytes = slurp(trace);
        ASSERT_FALSE(bytes.empty()) << "no trace written to " << trace;
        EXPECT_EQ(fnv1a64(bytes), want)
            << "trace bytes drifted (threads flag:" << threads
            << "). If the change is deliberate, re-record from this "
               "command's --trace-out file.";
        std::remove(trace.c_str());
    }
}

TEST(GoldenDigest, BenchClusterAttributionReport)
{
    // The attribution tables (latency waterfall + miss causes) ride
    // the same byte-exactness contract as the rest of the report:
    // serial and 4-lane runs must print identical bytes, pinned
    // against the recorded digest. Components are exact decompositions
    // of deterministic sim times, so a drift here means either a
    // simulation change (expected to fail the digests above too) or
    // an attribution regression (fails only here).
    // The overloaded config (tight pool, tight TPOT target) makes the
    // breakdown substantive: queue, kv-pressure, preempt and compute
    // causes all non-zero, preempt_loss carrying real requeue time.
    const std::string flags = "--devices 2 --hetero --requests 12 "
                              "--sweep 0 --study 0 --preempt "
                              "--pool 3072 --rate 0.2 "
                              "--slo-tpot 0.15 --attribution";
    expectDigest("bench/bench_cluster", flags, 0x2e8705693d5ceea0ull);
    expectDigest("bench/bench_cluster", flags + " --threads 4",
                 0x2e8705693d5ceea0ull);
}

TEST(GoldenDigest, KelleTraceReportOnRecordedTrace)
{
    // End-to-end CLI pinning: record the preempt trace with
    // attribution (slo instants included), run `kelle_trace report`
    // over it, and hash the report. Covers the reader's event
    // taxonomy, the offline waterfall reconstruction and the report
    // formatting in one digest.
    const std::string bench = std::string(KELLE_BIN_DIR) +
                              "/bench/bench_cluster";
    const std::string cli = std::string(KELLE_BIN_DIR) +
                            "/tools/kelle_trace";
    if (!fileExists(bench) || !fileExists(cli))
        GTEST_SKIP() << "bench_cluster or kelle_trace not built";
    const std::string trace =
        std::string(::testing::TempDir()) + "/kelle_attr_trace.json";
    std::remove(trace.c_str());
    int exit_code = 0;
    std::string out = capture(
        bench + " --devices 2 --hetero --requests 12 --sweep 0 "
                "--study 0 --preempt --pool 3072 --rate 0.2 "
                "--slo-tpot 0.15 --attribution --trace-out " + trace,
        &exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    out = capture(cli + " report " + trace, &exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    // The first line echoes the trace path (environment-dependent);
    // everything after it is the deterministic report body.
    const std::size_t body = out.find('\n');
    ASSERT_NE(body, std::string::npos) << out;
    const std::uint64_t got = fnv1a64(out.substr(body + 1));
    EXPECT_EQ(got, 0xc4fa211fcb331ae5ull)
        << "kelle_trace report output drifted (got 0x" << std::hex
        << got << ").\nIf the change is deliberate, re-record from "
           "`kelle_trace report` on the trace this test writes.";
    std::remove(trace.c_str());
}

TEST(GoldenDigest, KelleTraceReportOnFaultTrace)
{
    // Offline fault forensics: record a fault run's trace, run
    // `kelle_trace report` over it, and require the fault taxonomy to
    // survive the round-trip — a non-empty fault tally line and a
    // device_fault row in the miss-cause breakdown — plus the usual
    // byte pinning of the report body.
    const std::string bench = std::string(KELLE_BIN_DIR) +
                              "/bench/bench_cluster";
    const std::string cli = std::string(KELLE_BIN_DIR) +
                            "/tools/kelle_trace";
    if (!fileExists(bench) || !fileExists(cli))
        GTEST_SKIP() << "bench_cluster or kelle_trace not built";
    const std::string trace =
        std::string(::testing::TempDir()) + "/kelle_fault_trace.json";
    std::remove(trace.c_str());
    int exit_code = 0;
    std::string out = capture(
        bench + " --devices 2 --hetero --requests 12 --sweep 0 "
                "--study 0 --faults --mtbf 40 --mttr 10 "
                "--trace-out " + trace,
        &exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    out = capture(cli + " report " + trace, &exit_code);
    ASSERT_EQ(exit_code, 0) << out;
    const std::size_t body = out.find('\n');
    ASSERT_NE(body, std::string::npos) << out;
    const std::string report = out.substr(body + 1);
    EXPECT_NE(report.find("faults: "), std::string::npos) << report;
    EXPECT_NE(report.find("device faults"), std::string::npos)
        << report;
    EXPECT_NE(report.find("device_fault"), std::string::npos)
        << "miss-cause breakdown lost the device_fault rows:\n"
        << report;
    const std::uint64_t got = fnv1a64(report);
    EXPECT_EQ(got, 0xc9977284943c2a91ull)
        << "kelle_trace fault report drifted (got 0x" << std::hex
        << got << ").\nIf the change is deliberate, re-record from "
           "`kelle_trace report` on the trace this test writes.";
    std::remove(trace.c_str());
}

TEST(GoldenDigest, KelleTraceDiffThreadsIsEmpty)
{
    // The determinism contract as a user-visible CLI check: traces
    // recorded at --threads 1 and --threads 4 must byte-compare
    // identical (`kelle_trace diff` exits 0).
    const std::string bench = std::string(KELLE_BIN_DIR) +
                              "/bench/bench_cluster";
    const std::string cli = std::string(KELLE_BIN_DIR) +
                            "/tools/kelle_trace";
    if (!fileExists(bench) || !fileExists(cli))
        GTEST_SKIP() << "bench_cluster or kelle_trace not built";
    const std::string flags = "--devices 2 --hetero --requests 12 "
                              "--sweep 0 --study 0 --preempt "
                              "--pool 3072 --rate 0.2 "
                              "--slo-tpot 0.15 --attribution";
    std::string traces[2];
    int exit_code = 0;
    for (int t : {0, 1}) {
        traces[t] = std::string(::testing::TempDir()) +
                    "/kelle_diff_t" + (t == 0 ? "1" : "4") + ".json";
        std::remove(traces[t].c_str());
        const std::string out = capture(
            bench + " " + flags + " --threads " +
                (t == 0 ? "1" : "4") + " --trace-out " + traces[t],
            &exit_code);
        ASSERT_EQ(exit_code, 0) << out;
    }
    const std::string out =
        capture(cli + " diff " + traces[0] + " " + traces[1],
                &exit_code);
    EXPECT_EQ(exit_code, 0)
        << "threads 1 vs 4 traces diverge:\n" << out;
    EXPECT_NE(out.find("identical"), std::string::npos) << out;
    std::remove(traces[0].c_str());
    std::remove(traces[1].c_str());
}

} // namespace
