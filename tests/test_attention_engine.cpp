/**
 * @file
 * Tests for the hardware-coupled attention engine: numerical fidelity
 * against the float path, evictor integration and cycle accounting.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "accel/attention_engine.hpp"
#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace kelle {
namespace accel {
namespace {

struct Ref
{
    std::vector<float> probs;
    std::vector<float> output;
};

Ref
floatAttention(const tensor::Matrix &k, const tensor::Matrix &v,
               std::span<const float> q)
{
    const std::size_t n = k.rows(), hd = k.cols();
    Ref ref;
    ref.probs.resize(n);
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    for (std::size_t i = 0; i < n; ++i)
        ref.probs[i] = tensor::dot(k.row(i), q) * scale;
    tensor::softmaxInPlace(ref.probs);
    ref.output.assign(hd, 0.0f);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t d = 0; d < hd; ++d)
            ref.output[d] += ref.probs[i] * v.at(i, d);
    return ref;
}

class AttentionEngineTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kTokens = 40;
    static constexpr std::size_t kHeadDim = 16;

    void
    SetUp() override
    {
        Rng rng(99);
        k_ = tensor::Matrix(kTokens, kHeadDim);
        v_ = tensor::Matrix(kTokens, kHeadDim);
        k_.fillGaussian(rng, 1.0f);
        v_.fillGaussian(rng, 1.0f);
        q_.resize(kHeadDim);
        for (auto &x : q_)
            x = static_cast<float>(rng.gaussian());
        importance_.resize(kTokens);
        for (auto &x : importance_)
            x = static_cast<float>(rng.uniform(0.0, 10.0));
        protected_.assign(kTokens, 0);
        protected_[0] = 1; // sink
        for (std::size_t i = kTokens - 4; i < kTokens; ++i)
            protected_[i] = 1; // recent window
    }

    tensor::Matrix k_, v_;
    std::vector<float> q_;
    std::vector<float> importance_;
    std::vector<std::uint8_t> protected_;

    std::vector<std::uint8_t> noProtection() const { return {}; }
};

TEST_F(AttentionEngineTest, ProbsMatchFloatSoftmax)
{
    AttentionEngine engine(32);
    auto mask = protected_;
    const auto res = engine.run(k_, v_, q_, importance_, mask);
    const auto ref = floatAttention(k_, v_, q_);
    ASSERT_EQ(res.probs.size(), ref.probs.size());
    for (std::size_t i = 0; i < ref.probs.size(); ++i)
        EXPECT_NEAR(res.probs[i], ref.probs[i], 0.03f) << "slot " << i;
}

TEST_F(AttentionEngineTest, OutputMatchesFloatPath)
{
    AttentionEngine engine(32);
    auto mask = protected_;
    const auto res = engine.run(k_, v_, q_, importance_, mask);
    const auto ref = floatAttention(k_, v_, q_);
    double err = 0.0, norm = 0.0;
    for (std::size_t d = 0; d < kHeadDim; ++d) {
        err += std::pow(res.output[d] - ref.output[d], 2.0);
        norm += std::pow(ref.output[d], 2.0);
    }
    // int8 x int8 attention: a few percent relative error.
    EXPECT_LT(std::sqrt(err / norm), 0.06);
}

TEST_F(AttentionEngineTest, VictimIsEligibleArgmin)
{
    AttentionEngine engine(32);
    auto mask = protected_;
    const auto res = engine.run(k_, v_, q_, importance_, mask);
    ASSERT_TRUE(res.victim.has_value());
    const std::size_t victim = *res.victim;
    EXPECT_FALSE(protected_[victim]);

    // The victim minimizes importance + integer attention score among
    // eligible slots. Reconstruct the accumulated scores from the
    // hardware's own integer output path.
    std::vector<std::int8_t> q8(kHeadDim);
    const float qs = quantizeVectorI8(q_, q8);
    (void)qs;
    std::vector<float> k_flat(k_.data(), k_.data() + kTokens * kHeadDim);
    std::vector<std::int8_t> k8(kTokens * kHeadDim);
    quantizeVectorI8(k_flat, k8);
    std::size_t best = kTokens;
    float best_score = std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < kTokens; ++i) {
        if (protected_[i])
            continue;
        std::int32_t acc = 0;
        for (std::size_t d = 0; d < kHeadDim; ++d)
            acc += static_cast<std::int32_t>(k8[i * kHeadDim + d]) *
                   static_cast<std::int32_t>(q8[d]);
        const float s = importance_[i] + static_cast<float>(acc);
        if (s < best_score) {
            best_score = s;
            best = i;
        }
    }
    EXPECT_EQ(victim, best);
}

TEST_F(AttentionEngineTest, NoSearchWhenUnderBudget)
{
    AttentionEngine engine(32);
    const auto res = engine.run(k_, v_, q_, importance_, {});
    EXPECT_FALSE(res.victim.has_value());
    EXPECT_FALSE(res.output.empty());
}

TEST_F(AttentionEngineTest, CycleAndMacAccounting)
{
    AttentionEngine engine(32);
    auto mask = protected_;
    const auto res = engine.run(k_, v_, q_, importance_, mask);
    // Scores: n*hd MACs; value product: n*hd MACs.
    EXPECT_EQ(res.macs, 2ull * kTokens * kHeadDim);
    EXPECT_GT(res.cycles, 0u);
    // Softermax costs 2 LUT ops per element.
    EXPECT_EQ(res.sfuOps, 2u * kTokens);
}

TEST_F(AttentionEngineTest, HandlesMoreTokensThanArrayRows)
{
    Rng rng(7);
    const std::size_t n = 100; // > 32 array rows: tiled value product
    tensor::Matrix k(n, kHeadDim), v(n, kHeadDim);
    k.fillGaussian(rng, 1.0f);
    v.fillGaussian(rng, 1.0f);
    std::vector<float> imp(n, 1.0f);

    AttentionEngine engine(32);
    const auto res = engine.run(k, v, q_, imp, {});
    const auto ref = floatAttention(k, v, q_);
    for (std::size_t d = 0; d < kHeadDim; ++d)
        EXPECT_NEAR(res.output[d], ref.output[d],
                    0.05f * std::fabs(ref.output[d]) + 0.05f);
}

TEST_F(AttentionEngineTest, PeakedDistributionSurvivesQuantization)
{
    // One token dominates attention: the engine must preserve that.
    tensor::Matrix k = k_, v = v_;
    for (std::size_t d = 0; d < kHeadDim; ++d)
        k.at(5, d) = 4.0f * q_[d]; // aligned with q -> large score
    AttentionEngine engine(32);
    const auto res = engine.run(k, v, q_, importance_, {});
    std::size_t hw_top = 0;
    for (std::size_t i = 1; i < res.probs.size(); ++i)
        if (res.probs[i] > res.probs[hw_top])
            hw_top = i;
    EXPECT_EQ(hw_top, 5u);
    EXPECT_GT(res.probs[5], 0.5f);
}

class ArrayDimSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ArrayDimSweep, OutputConsistentAcrossArraySizes)
{
    const std::size_t dim = GetParam();
    Rng rng(55);
    const std::size_t n = 24, hd = 8;
    tensor::Matrix k(n, hd), v(n, hd);
    k.fillGaussian(rng, 1.0f);
    v.fillGaussian(rng, 1.0f);
    std::vector<float> q(hd), imp(n, 0.0f);
    for (auto &x : q)
        x = static_cast<float>(rng.gaussian());

    AttentionEngine a(dim), b(32);
    const auto ra = a.run(k, v, q, imp, {});
    const auto rb = b.run(k, v, q, imp, {});
    for (std::size_t d = 0; d < hd; ++d)
        EXPECT_NEAR(ra.output[d], rb.output[d], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Dims, ArrayDimSweep,
                         ::testing::Values<std::size_t>(8, 16, 64));

} // namespace
} // namespace accel
} // namespace kelle
