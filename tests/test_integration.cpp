/**
 * @file
 * Cross-module integration tests: the hardware evictor against the
 * algorithmic policy, the functional model against the eDRAM fault
 * chain, scheduler/refresh interactions, and end-to-end determinism.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "accel/systolic_array.hpp"
#include "accel/systolic_evictor.hpp"
#include "edram/edram_array.hpp"
#include "edram/fault_model.hpp"
#include "model/evaluate.hpp"
#include "sim/event_queue.hpp"
#include "sim/experiments.hpp"

namespace kelle {
namespace {

/**
 * The systolic evictor must agree with the ManagedKvCache victim
 * choice when the cache runs in hardware mode (raw QK logits as
 * importance, Section 5.3). We replay the same score history into
 * both and compare the selected victim.
 */
TEST(EvictorVsPolicy, SameVictimUnderRawScores)
{
    Rng rng(17);
    const std::size_t slots = 24;

    for (int trial = 0; trial < 20; ++trial) {
        // Shared importance history.
        std::vector<float> importance(slots);
        for (auto &v : importance)
            v = static_cast<float>(rng.uniform(0.0, 50.0));
        std::vector<std::int32_t> fresh(slots);
        for (auto &v : fresh)
            v = static_cast<std::int32_t>(rng.below(100));
        // Protection pattern: 2 sinks + 4 recent.
        std::vector<bool> protected_slots(slots, false);
        protected_slots[0] = protected_slots[1] = true;
        for (std::size_t i = slots - 4; i < slots; ++i)
            protected_slots[i] = true;

        // Hardware: systolic evictor.
        accel::SystolicEvictor se(slots);
        se.loadScores(importance);
        for (std::size_t i = 0; i < slots; ++i)
            se.setProtected(i, protected_slots[i]);
        se.beginPass();
        for (std::size_t i = 0; i < slots; ++i)
            se.onOutput(i, 0, fresh[i], 0);
        const std::size_t hw_victim = se.finalize();

        // Algorithm: argmin of accumulated scores over eligible slots.
        std::size_t sw_victim = slots;
        float best = std::numeric_limits<float>::infinity();
        for (std::size_t i = 0; i < slots; ++i) {
            if (protected_slots[i])
                continue;
            const float s = importance[i] + static_cast<float>(fresh[i]);
            if (s < best) {
                best = s;
                sw_victim = i;
            }
        }
        EXPECT_EQ(hw_victim, sw_victim) << "trial " << trial;
    }
}

/**
 * Full-chain determinism: model + AERP cache + 2DRP faults with fixed
 * seeds must produce bit-identical evaluations run to run.
 */
TEST(EndToEnd, DeterministicUnderFaults)
{
    const sim::Task task = sim::scaledForTiny(sim::lambada(), 96);
    auto run_once = [&]() {
        sim::AccuracyBench bench(task, 321);
        const edram::TwoDRefreshPolicy policy(
            edram::RefreshIntervals::paper2drp(),
            edram::RetentionModel::paper65nm());
        edram::RefreshFaultModel inj(policy, 654);
        return bench.run(sim::cacheConfigFor(task, kv::Policy::Aerp),
                         &inj);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_DOUBLE_EQ(a.perplexity, b.perplexity);
    EXPECT_DOUBLE_EQ(a.agreementTop1, b.agreementTop1);
}

/**
 * 2DRP-vs-uniform accuracy claim (Table 4) as an invariant on the
 * substrate: at an aggressively relaxed operating point, 2DRP's
 * skewed rates must beat the iso-average uniform policy.
 */
TEST(EndToEnd, TwoDrpBeatsUniformAtRelaxedRates)
{
    const sim::Task task = sim::scaledForTiny(sim::wikitext2(), 128);
    sim::MultiSeedBench bench(task, 3, 777);
    const auto cfg = sim::cacheConfigFor(task, kv::Policy::Aerp);
    const auto retention = edram::RetentionModel::paper65nm();
    const edram::TwoDRefreshPolicy policy(
        edram::RefreshIntervals::paper2drp().scaled(16.0), retention);
    const double rate = policy.averageFailureRate();

    const auto uniform = bench.run(cfg, [&](std::uint64_t seed) {
        return std::make_unique<edram::RefreshFaultModel>(
            edram::RefreshFaultModel::uniformRate(rate, seed));
    });
    const auto twod = bench.run(cfg, [&](std::uint64_t seed) {
        return std::make_unique<edram::RefreshFaultModel>(policy, seed);
    });
    EXPECT_LT(twod.perplexity, uniform.perplexity);
}

/**
 * Eviction-policy ordering claim (Table 2 shape): with a tight budget
 * and no faults, score-based policies (AERP, H2O) must beat the
 * recency-only StreamingLLM baseline on fidelity to the full cache.
 */
TEST(EndToEnd, ScoreBasedEvictionBeatsRecencyOnly)
{
    const sim::Task task = sim::scaledForTiny(sim::lambada(), 128);
    sim::MultiSeedBench bench(task, 3, 4242);
    const auto aerp =
        bench.run(sim::cacheConfigFor(task, kv::Policy::Aerp));
    const auto h2o =
        bench.run(sim::cacheConfigFor(task, kv::Policy::H2O));
    const auto streaming =
        bench.run(sim::cacheConfigFor(task, kv::Policy::Streaming));
    EXPECT_LT(aerp.perplexity, streaming.perplexity);
    EXPECT_LT(h2o.perplexity, streaming.perplexity);
    EXPECT_GT(aerp.agreementTop1, streaming.agreementTop1);
}

/**
 * Recomputation accuracy invariance: AERP with recomputation must not
 * be meaningfully worse than AERP without it (storage format changes,
 * the computed attention should not).
 */
TEST(EndToEnd, RecomputationIsAccuracyNeutral)
{
    const sim::Task task = sim::scaledForTiny(sim::wikitext2(), 128);
    sim::MultiSeedBench bench(task, 2, 999);
    auto with_rec = sim::cacheConfigFor(task, kv::Policy::Aerp);
    auto without = with_rec;
    without.recompute = false;
    const auto r1 = bench.run(with_rec);
    const auto r2 = bench.run(without);
    // Same eviction decisions; only 16-bit x round trips differ.
    EXPECT_NEAR(r1.perplexity, r2.perplexity,
                0.15 * r2.perplexity + 0.5);
}

/**
 * Event-queue-driven refresh scenario: interleave demand traffic with
 * refresh timers on the banked array and verify refresh stays hidden
 * while the demand stream has slack.
 */
TEST(EdramScenario, RefreshHidesBehindDemandGaps)
{
    edram::EdramArrayConfig cfg;
    cfg.capacity = Bytes::kib(16);
    edram::KvEdramArray array(cfg,
                              edram::RefreshIntervals::paper2drp());
    sim::EventQueue queue;

    const std::size_t rows = cfg.rowCapacity();
    for (std::size_t r = 0; r < rows; ++r) {
        array.writeRow(r, Time::seconds(0));
        array.setScore(r, static_cast<std::uint8_t>(r % 16));
    }

    // Demand reads every 100 us (plenty of idle time between).
    int reads_done = 0;
    std::function<void()> read_tick = [&] {
        array.readRow(static_cast<std::size_t>(reads_done) % rows,
                      queue.now());
        if (++reads_done < 200)
            queue.scheduleAfter(Time::micros(100), read_tick);
    };
    queue.schedule(Time::micros(100), read_tick);
    queue.runAll();
    array.advanceTo(queue.now());

    EXPECT_EQ(reads_done, 200);
    EXPECT_GT(array.refreshOps(), 0u);
    EXPECT_GT(array.hiddenRefreshTime().sec(), 0.0);
    // Essentially all refresh work is hidden; only same-instant
    // collisions (a read issued exactly at a refresh tick) may leak,
    // bounded well under 0.01% of the simulated horizon.
    EXPECT_LT(array.stallTime().sec(), 1e-4 * queue.now().sec());
    EXPECT_LT(array.stallTime().sec(),
              0.01 * array.hiddenRefreshTime().sec());
}

/**
 * Systolic array + evictor against the functional attention path: the
 * int8-quantized QK^T computed by the cycle model must match a
 * reference quantized dot product, and the evictor's chosen victim
 * must match the argmin over the accumulated integer scores.
 */
TEST(HardwarePath, QuantizedAttentionScoresMatchReference)
{
    Rng rng(33);
    const std::size_t n_tokens = 20, dh = 16;
    accel::Int8Matrix keys(n_tokens, dh);
    accel::Int8Matrix q(dh, 1);
    for (auto &v : keys.data)
        v = static_cast<std::int8_t>(static_cast<int>(rng.below(255)) -
                                     127);
    for (auto &v : q.data)
        v = static_cast<std::int8_t>(static_cast<int>(rng.below(255)) -
                                     127);

    accel::SystolicArray rsa(16, 16);
    accel::SystolicEvictor se(n_tokens);
    se.loadScores(std::vector<float>(n_tokens, 1000.0f));
    se.beginPass();
    rsa.loadWeights(q);
    const auto scores = rsa.stream(keys, &se);
    const std::size_t victim = se.finalize();

    // Reference.
    std::size_t want = 0;
    std::int32_t best = std::numeric_limits<std::int32_t>::max();
    for (std::size_t i = 0; i < n_tokens; ++i) {
        std::int32_t acc = 0;
        for (std::size_t d = 0; d < dh; ++d)
            acc += static_cast<std::int32_t>(keys.at(i, d)) *
                   static_cast<std::int32_t>(q.at(d, 0));
        ASSERT_EQ(scores.at(i, 0), acc) << "token " << i;
        if (acc < best) {
            best = acc;
            want = i;
        }
    }
    EXPECT_EQ(victim, want);
}

} // namespace
} // namespace kelle
