/**
 * @file
 * Tests for the model library: architecture presets, the functional
 * transformer (prefill/decode equivalence, RoPE, GQA, recompute
 * integration) and the evaluation harness.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "model/evaluate.hpp"
#include "model/model_config.hpp"
#include "model/sampler.hpp"
#include "model/transformer.hpp"

namespace kelle {
namespace model {
namespace {

TEST(ModelConfig, PresetsValidate)
{
    for (const auto &cfg :
         {llama2_7b(), llama2_13b(), llama32_3b(), llama3_8b(),
          mistral_7b(), qwen2_7b(), opt_6_7b(), tinyLm(), tinyLmGqa()}) {
        EXPECT_TRUE(cfg.validate().empty()) << cfg.name;
    }
}

TEST(ModelConfig, Llama27bParameterCount)
{
    const auto cfg = llama2_7b();
    // LLaMA2-7B has ~6.7e9 parameters.
    EXPECT_NEAR(cfg.totalParams(), 6.7e9, 0.3e9);
    EXPECT_EQ(cfg.headDim(), 128u);
    EXPECT_EQ(cfg.dKv(), 4096u);
}

TEST(ModelConfig, KvBytesMatchPaperIntroNumber)
{
    // Intro: LLaMA2-7B at seq 8192 in FP16 -> 4 GB of KV cache.
    const auto cfg = llama2_7b();
    const double gb = cfg.kvBytesPerToken(16) * 8192.0 / 1e9;
    EXPECT_NEAR(gb, 4.3, 0.3);
}

TEST(ModelConfig, GqaShrinksKv)
{
    // Mistral-7B (8 KV heads) has 4x smaller KV than LLaMA2-7B (32).
    const double llama = llama2_7b().kvBytesPerTokenPerLayer(16);
    const double mistral = mistral_7b().kvBytesPerTokenPerLayer(16);
    EXPECT_NEAR(llama / mistral, 4.0, 1e-9);
}

TEST(ModelConfig, DecodeMacsGrowWithContext)
{
    const auto cfg = llama2_7b();
    EXPECT_GT(cfg.macsPerDecodeToken(4096), cfg.macsPerDecodeToken(128));
    // ~2 * params for projections at tiny context.
    EXPECT_NEAR(cfg.macsPerDecodeToken(1),
                cfg.totalParams(), 0.1 * cfg.totalParams());
}

TEST(ModelConfig, PrefillAttentionShareGrowsQuadratically)
{
    const auto cfg = llama2_7b();
    const double a1 = cfg.macsPrefillAttention(1024);
    const double a2 = cfg.macsPrefillAttention(2048);
    EXPECT_NEAR(a2 / a1, 4.0, 0.05);
}

TEST(Sampler, ArgmaxPicksLargest)
{
    std::vector<float> logits = {0.1f, 2.0f, -1.0f};
    EXPECT_EQ(argmaxToken(logits), 1);
}

TEST(Sampler, ZeroTemperatureIsGreedy)
{
    Rng rng(1);
    std::vector<float> logits = {0.1f, 2.0f, -1.0f};
    EXPECT_EQ(sampleToken(logits, 0.0, 0, rng), 1);
}

TEST(Sampler, TopKRestricts)
{
    Rng rng(2);
    std::vector<float> logits = {10.0f, 9.0f, -50.0f, -50.0f};
    for (int i = 0; i < 100; ++i) {
        const int t = sampleToken(logits, 1.0, 2, rng);
        EXPECT_TRUE(t == 0 || t == 1);
    }
}

TEST(Sampler, TemperatureSharpens)
{
    Rng rng(3);
    std::vector<float> logits = {1.0f, 0.0f};
    int hot_top = 0, cold_top = 0;
    for (int i = 0; i < 2000; ++i) {
        hot_top += sampleToken(logits, 5.0, 0, rng) == 0;
        cold_top += sampleToken(logits, 0.2, 0, rng) == 0;
    }
    EXPECT_GT(cold_top, hot_top);
}

class TransformerTest : public ::testing::Test
{
  protected:
    ModelConfig cfg_ = tinyLm();
    TinyTransformer model_{cfg_, InitOptions{.seed = 7}};

    kv::ManagedKvCache
    fullCache()
    {
        return kv::ManagedKvCache(kv::makeFullConfig(), cfg_.layers,
                                  cfg_.nKvHeads, cfg_.headDim(),
                                  cfg_.dModel);
    }
};

TEST_F(TransformerTest, DecodeDeterministic)
{
    auto c1 = fullCache();
    model_.attach(c1);
    auto l1 = model_.decodeStep(5, 0);
    auto c2 = fullCache();
    model_.attach(c2);
    auto l2 = model_.decodeStep(5, 0);
    ASSERT_EQ(l1.size(), l2.size());
    for (std::size_t i = 0; i < l1.size(); ++i)
        EXPECT_FLOAT_EQ(l1[i], l2[i]);
}

TEST_F(TransformerTest, PrefillMatchesSequentialDecode)
{
    // Pre-filling processes the context in parallel but must produce
    // the same last-position logits as sequential decoding (up to the
    // 16-bit KV storage rounding of intermediate reads).
    std::vector<int> tokens = {3, 250, 17, 42, 99, 7, 120, 8};

    auto cache_a = fullCache();
    model_.attach(cache_a);
    const auto via_prefill = model_.prefill(tokens);

    auto cache_b = fullCache();
    model_.attach(cache_b);
    std::vector<float> via_decode;
    for (std::size_t t = 0; t < tokens.size(); ++t)
        via_decode = model_.decodeStep(tokens[t],
                                       static_cast<std::int64_t>(t));

    ASSERT_EQ(via_prefill.size(), via_decode.size());
    for (std::size_t i = 0; i < via_prefill.size(); ++i)
        EXPECT_NEAR(via_prefill[i], via_decode[i], 0.05f)
            << "logit " << i;
}

TEST_F(TransformerTest, RopeIsNormPreservingRotation)
{
    std::vector<float> x(cfg_.headDim());
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(i) - 7.5f;
    double before = 0.0;
    for (float v : x)
        before += v * v;
    model_.applyRope(x, 12345, cfg_.headDim());
    double after = 0.0;
    for (float v : x)
        after += v * v;
    EXPECT_NEAR(before, after, before * 1e-5);
}

TEST_F(TransformerTest, RopePositionZeroIsIdentity)
{
    std::vector<float> x(cfg_.headDim(), 1.0f);
    auto y = x;
    model_.applyRope(y, 0, cfg_.headDim());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST_F(TransformerTest, RopeRelativePhase)
{
    // q at position p dotted with k at position p+d depends only on d:
    // rotate the same vector to two position pairs with equal offsets.
    std::vector<float> base(cfg_.headDim());
    Rng rng(9);
    for (auto &v : base)
        v = static_cast<float>(rng.gaussian());

    auto dot_at = [&](std::int64_t pq, std::int64_t pk) {
        auto q = base, k = base;
        model_.applyRope(q, pq, cfg_.headDim());
        model_.applyRope(k, pk, cfg_.headDim());
        return tensor::dot(q, k);
    };
    EXPECT_NEAR(dot_at(3, 10), dot_at(20, 27), 1e-3);
}

TEST_F(TransformerTest, GqaModelRuns)
{
    const auto gqa_cfg = tinyLmGqa();
    TinyTransformer gqa(gqa_cfg, InitOptions{.seed = 11});
    kv::ManagedKvCache cache(kv::makeFullConfig(), gqa_cfg.layers,
                             gqa_cfg.nKvHeads, gqa_cfg.headDim(),
                             gqa_cfg.dModel);
    gqa.attach(cache);
    std::vector<int> tokens = {1, 2, 3, 4, 5, 6, 7, 8};
    auto logits = gqa.prefill(tokens);
    EXPECT_EQ(logits.size(), gqa_cfg.vocab);
    logits = gqa.decodeStep(9, 8);
    for (float v : logits)
        ASSERT_FALSE(std::isnan(v));
    EXPECT_EQ(cache.numEntries(0, 0), 9u);
}

TEST_F(TransformerTest, RecomputerMatchesAppendPath)
{
    // The recompute callback must reproduce exactly the k/v the model
    // appended for the same x and position.
    auto cache = fullCache();
    model_.attach(cache);
    model_.decodeStep(17, 0);

    // Fetch what was stored for layer 0 head 0 and recompute manually:
    // use a second cache configured to store x for everything.
    auto aerp = kv::makeAerpConfig(64, 2, 4);
    aerp.popularityTheta = 0.0;
    kv::ManagedKvCache xcache(aerp, cfg_.layers, cfg_.nKvHeads,
                              cfg_.headDim(), cfg_.dModel);
    model_.attach(xcache);
    std::vector<float> ref_row;
    for (std::int64_t p = 0; p < 12; ++p) {
        model_.decodeStep(static_cast<int>(p + 1), p);
        if (p == 0) {
            auto g = xcache.gather(0, 0);
            ref_row.assign(g.k.row(0).begin(), g.k.row(0).end());
        }
    }
    // Token 0 has left probation (12 > budget-window) and is x-stored.
    auto g = xcache.gather(0, 0);
    bool found = false;
    for (std::size_t i = 0; i < g.positions.size(); ++i) {
        if (g.positions[i] != 0)
            continue;
        found = true;
        EXPECT_TRUE(xcache.isInputStored(0, 0, g.slots[i]));
        for (std::size_t d = 0; d < cfg_.headDim(); ++d)
            EXPECT_NEAR(g.k.at(i, d), ref_row[d], 0.02f) << "dim " << d;
    }
    EXPECT_TRUE(found);
}

TEST(Evaluate, StreamEvalBasics)
{
    StreamEval e;
    e.crossEntropy = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(e.meanCrossEntropy(), 2.0);
    EXPECT_NEAR(e.perplexity(), std::exp(2.0), 1e-12);
}

TEST(Evaluate, AgreementCountsMatches)
{
    StreamEval a, b;
    a.argmax = {1, 2, 3, 4};
    b.argmax = {1, 0, 3, 0};
    EXPECT_DOUBLE_EQ(agreement(a, b), 0.5);
}

TEST(Evaluate, GeneratedStreamInVocab)
{
    const auto cfg = tinyLm();
    TinyTransformer model(cfg, InitOptions{.seed = 3});
    auto stream = generateStream(model, 16, 24, 0.9, 5);
    EXPECT_EQ(stream.tokens.size(), 40u);
    for (int t : stream.tokens) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, static_cast<int>(cfg.vocab));
    }
}

TEST(Evaluate, StreamNotDegenerate)
{
    // The synthetic language must not collapse into repetition: a
    // window of generated tokens should contain several distinct ids.
    const auto cfg = tinyLm();
    TinyTransformer model(cfg, InitOptions{.seed = 23});
    auto stream = generateStream(model, 16, 64, 0.9, 29);
    std::vector<int> tail(stream.tokens.end() - 32, stream.tokens.end());
    std::sort(tail.begin(), tail.end());
    tail.erase(std::unique(tail.begin(), tail.end()), tail.end());
    EXPECT_GE(tail.size(), 6u);
}

TEST(Evaluate, FullCachePolicyIsBaseline)
{
    const auto cfg = tinyLm();
    TinyTransformer model(cfg, InitOptions{.seed = 31});
    auto stream = generateStream(model, 16, 32, 0.9, 37);

    kv::ManagedKvCache cache(kv::makeFullConfig(), cfg.layers,
                             cfg.nKvHeads, cfg.headDim(), cfg.dModel);
    model.attach(cache);
    auto baseline = runStream(model, cache, stream.tokens,
                              stream.promptLen);

    const auto eval = evaluatePolicy(model, kv::makeFullConfig(),
                                     nullptr, stream, baseline);
    EXPECT_NEAR(eval.perplexity, baseline.perplexity(), 1e-9);
    EXPECT_DOUBLE_EQ(eval.agreementTop1, 1.0);
}

TEST(Evaluate, EvictionDegradesGracefully)
{
    const auto cfg = tinyLm();
    TinyTransformer model(cfg, InitOptions{.seed = 41});
    auto stream = generateStream(model, 32, 64, 0.9, 43);

    kv::ManagedKvCache cache(kv::makeFullConfig(), cfg.layers,
                             cfg.nKvHeads, cfg.headDim(), cfg.dModel);
    model.attach(cache);
    auto baseline = runStream(model, cache, stream.tokens,
                              stream.promptLen);

    const auto tight = evaluatePolicy(
        model, kv::makeAerpConfig(24, 2, 8), nullptr, stream, baseline);
    const auto loose = evaluatePolicy(
        model, kv::makeAerpConfig(64, 2, 8), nullptr, stream, baseline);
    // Looser budgets are at least as good (allow small noise).
    EXPECT_LE(loose.perplexity, tight.perplexity * 1.1);
    EXPECT_GE(loose.agreementTop1 + 0.05, tight.agreementTop1);
    // And both stay above the baseline PPL floor.
    EXPECT_GE(tight.perplexity, baseline.perplexity() * 0.99);
}

} // namespace
} // namespace model
} // namespace kelle
