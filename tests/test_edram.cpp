/**
 * @file
 * Tests for the eDRAM subsystem: retention statistics (Figure 4
 * calibration), 2DRP refresh policy, fault injection and the banked
 * array with refresh controllers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edram/edram_array.hpp"
#include "edram/fault_model.hpp"
#include "edram/refresh_policy.hpp"
#include "edram/retention.hpp"

namespace kelle {
namespace edram {
namespace {

TEST(NormalMath, CdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447, 1e-6);
    EXPECT_NEAR(normalCdf(-1.96), 0.0249979, 1e-6);
}

TEST(NormalMath, QuantileInvertsCdf)
{
    for (double p : {1e-6, 1e-3, 0.02425, 0.3, 0.5, 0.9, 0.999}) {
        EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-9)
            << "p = " << p;
    }
}

TEST(Retention, CalibrationHitsAnchors)
{
    const auto m = RetentionModel::paper65nm();
    EXPECT_NEAR(m.failureProbability(Time::micros(45)), 1e-6, 1e-8);
    EXPECT_NEAR(m.failureProbability(Time::micros(1778)), 1e-3, 1e-5);
    // Cross-check: the paper's tail point lands near 1e-2.
    EXPECT_NEAR(m.failureProbability(Time::micros(9120)), 1e-2, 3e-3);
}

TEST(Retention, FailureProbabilityMonotone)
{
    const auto m = RetentionModel::paper65nm();
    double prev = 0.0;
    for (double us = 1.0; us < 1e6; us *= 3.0) {
        const double p = m.failureProbability(Time::micros(us));
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(Retention, InverseRoundTrip)
{
    const auto m = RetentionModel::paper65nm();
    for (double p : {1e-6, 1e-4, 1e-3, 1e-2, 0.1}) {
        const Time t = m.intervalForFailureRate(p);
        EXPECT_NEAR(m.failureProbability(t), p, p * 1e-6);
    }
}

TEST(Retention, SampleDistributionMatchesCdf)
{
    const auto m = RetentionModel::paper65nm();
    Rng rng(5);
    const int n = 40000;
    int below = 0;
    const Time t = Time::millis(10);
    for (int i = 0; i < n; ++i)
        below += m.sampleRetention(rng) < t;
    const double expected = m.failureProbability(t);
    EXPECT_NEAR(static_cast<double>(below) / n, expected,
                3.0 * std::sqrt(expected / n) + 1e-3);
}

TEST(RefreshPolicy, Paper2drpMatchesSection71)
{
    const auto iv = RefreshIntervals::paper2drp();
    EXPECT_DOUBLE_EQ(iv.of(RefreshGroup::HstMsb).ms(), 0.36);
    EXPECT_DOUBLE_EQ(iv.of(RefreshGroup::HstLsb).ms(), 5.4);
    EXPECT_DOUBLE_EQ(iv.of(RefreshGroup::LstMsb).ms(), 1.44);
    EXPECT_DOUBLE_EQ(iv.of(RefreshGroup::LstLsb).ms(), 7.2);
    // Paper: "an average retention time of 1.05 ms".
    EXPECT_NEAR(iv.averageInterval().ms(), 1.05, 0.01);
}

TEST(RefreshPolicy, AverageFailureRateNearPaper)
{
    const TwoDRefreshPolicy policy(RefreshIntervals::paper2drp(),
                                   RetentionModel::paper65nm());
    // Paper: "an averaged retention failure rate at 2e-3".
    EXPECT_GT(policy.averageFailureRate(), 1e-3);
    EXPECT_LT(policy.averageFailureRate(), 5e-3);
}

TEST(RefreshPolicy, MsbGroupsRefreshedMoreOftenWithinClass)
{
    const auto iv = RefreshIntervals::paper2drp();
    EXPECT_LT(iv.of(RefreshGroup::HstMsb).sec(),
              iv.of(RefreshGroup::HstLsb).sec());
    EXPECT_LT(iv.of(RefreshGroup::LstMsb).sec(),
              iv.of(RefreshGroup::LstLsb).sec());
    // And HST more often than LST at equal significance.
    EXPECT_LT(iv.of(RefreshGroup::HstMsb).sec(),
              iv.of(RefreshGroup::LstMsb).sec());
    EXPECT_LT(iv.of(RefreshGroup::HstLsb).sec(),
              iv.of(RefreshGroup::LstLsb).sec());
}

TEST(RefreshPolicy, UniformAndScaled)
{
    const auto u = RefreshIntervals::uniform(Time::micros(540));
    for (std::size_t g = 0; g < kNumRefreshGroups; ++g)
        EXPECT_DOUBLE_EQ(u.interval[g].us(), 540.0);
    const auto s = RefreshIntervals::paper2drp().scaled(2.0);
    EXPECT_DOUBLE_EQ(s.of(RefreshGroup::HstMsb).ms(), 0.72);
}

TEST(RefreshPolicy, IsoAccuracyUniformIntervalConsistent)
{
    const TwoDRefreshPolicy policy(RefreshIntervals::paper2drp(),
                                   RetentionModel::paper65nm());
    const Time iso = policy.isoAccuracyUniformInterval();
    const double rate = RetentionModel::paper65nm().failureProbability(iso);
    EXPECT_NEAR(rate, policy.averageFailureRate(),
                policy.averageFailureRate() * 1e-3);
}

TEST(FaultModel, ZeroRateFlipsNothing)
{
    auto inj = RefreshFaultModel::uniformRate(0.0, 1);
    std::vector<std::uint16_t> words(256, 0x1234);
    inj.corrupt(words, kv::FaultContext{true});
    for (auto w : words)
        EXPECT_EQ(w, 0x1234);
    EXPECT_EQ(inj.flipsInjected(), 0u);
}

TEST(FaultModel, FullRateFlipsEverything)
{
    auto inj = RefreshFaultModel::uniformRate(1.0, 1);
    std::vector<std::uint16_t> words(8, 0x0000);
    inj.corrupt(words, kv::FaultContext{false});
    for (auto w : words)
        EXPECT_EQ(w, 0xFFFF);
}

TEST(FaultModel, EmpiricalRateMatchesConfigured)
{
    const double p = 2e-3;
    auto inj = RefreshFaultModel::uniformRate(p, 7);
    std::vector<std::uint16_t> words(200000, 0);
    inj.corrupt(words, kv::FaultContext{true});
    const double measured =
        static_cast<double>(inj.flipsInjected()) /
        static_cast<double>(inj.bitsProcessed());
    EXPECT_NEAR(measured, p, 3.0 * std::sqrt(p / 200000.0 / 16.0));
}

TEST(FaultModel, MsbLsbLanesIndependent)
{
    // MSB-only corruption: only bits 15..8 may change.
    auto inj = RefreshFaultModel::withRates({0.5, 0.0, 0.5, 0.0}, 3);
    std::vector<std::uint16_t> words(4096, 0x0000);
    inj.corrupt(words, kv::FaultContext{true});
    bool any_high = false;
    for (auto w : words) {
        EXPECT_EQ(w & 0x00FF, 0);
        any_high |= (w & 0xFF00) != 0;
    }
    EXPECT_TRUE(any_high);

    // LSB-only corruption: only bits 7..0 may change.
    auto inj2 = RefreshFaultModel::withRates({0.0, 0.5, 0.0, 0.5}, 4);
    std::vector<std::uint16_t> words2(4096, 0x0000);
    inj2.corrupt(words2, kv::FaultContext{false});
    for (auto w : words2)
        EXPECT_EQ(w & 0xFF00, 0);
}

TEST(FaultModel, HstLstSelectRates)
{
    // HST rates zero, LST rates one: only LST contexts corrupt.
    auto inj = RefreshFaultModel::withRates({0.0, 0.0, 1.0, 1.0}, 5);
    std::vector<std::uint16_t> hst(16, 0), lst(16, 0);
    inj.corrupt(hst, kv::FaultContext{true});
    inj.corrupt(lst, kv::FaultContext{false});
    for (auto w : hst)
        EXPECT_EQ(w, 0);
    for (auto w : lst)
        EXPECT_EQ(w, 0xFFFF);
}

TEST(FaultModel, FromPolicyUsesCalibratedRates)
{
    const TwoDRefreshPolicy policy(RefreshIntervals::paper2drp(),
                                   RetentionModel::paper65nm());
    RefreshFaultModel inj(policy, 11);
    EXPECT_NEAR(inj.rateOf(RefreshGroup::HstMsb),
                policy.failureRate(RefreshGroup::HstMsb), 1e-12);
    EXPECT_NEAR(inj.rateOf(RefreshGroup::LstLsb),
                policy.failureRate(RefreshGroup::LstLsb), 1e-12);
}

// ---- Banked array ------------------------------------------------

EdramArrayConfig
smallArray()
{
    EdramArrayConfig cfg;
    cfg.capacity = Bytes::kib(4);
    cfg.banksPerLane = 4;
    cfg.laneRowBytes = Bytes::count(16);
    return cfg;
}

TEST(EdramArray, RowCapacityFromGeometry)
{
    const auto cfg = smallArray();
    // 4 KiB / (4 lanes * 16 B) = 64 rows.
    EXPECT_EQ(cfg.rowCapacity(), 64u);
}

TEST(EdramArray, WriteReadAccountsEnergy)
{
    KvEdramArray arr(smallArray(), RefreshIntervals::paper2drp());
    arr.writeRow(0, Time::seconds(0));
    auto r = arr.readRow(0, Time::micros(1));
    EXPECT_GT(r.complete.sec(), r.start.sec());
    // 2 accesses x 64 bytes x 84.8 pJ.
    EXPECT_NEAR(arr.accessEnergySpent().pj(), 2 * 64 * 84.8, 1.0);
}

TEST(EdramArray, ParallelLanesNoConflictAcrossRows)
{
    KvEdramArray arr(smallArray(), RefreshIntervals::paper2drp());
    const Time t0 = Time::seconds(0);
    arr.writeRow(0, t0);
    arr.writeRow(1, t0); // different bank: no serialization
    // Row 0 and row 1 map to different banks; both writes should have
    // started at their issue time (write 1 not delayed by write 0).
    auto a = arr.readRow(0, Time::micros(5));
    auto b = arr.readRow(1, Time::micros(5));
    EXPECT_DOUBLE_EQ(a.start.us(), 5.0);
    EXPECT_DOUBLE_EQ(b.start.us(), 5.0);
}

TEST(EdramArray, SameBankConflictSerializes)
{
    auto cfg = smallArray();
    KvEdramArray arr(cfg, RefreshIntervals::paper2drp());
    const Time t = Time::micros(5);
    arr.writeRow(0, Time::seconds(0));
    arr.writeRow(cfg.banksPerLane, Time::seconds(0)); // same bank as 0
    auto a = arr.readRow(0, t);
    auto b = arr.readRow(cfg.banksPerLane, t); // conflicts with a
    EXPECT_GT(b.start.sec(), a.start.sec());
}

TEST(EdramArray, RefreshEnergyScalesWithInterval)
{
    // Faster refresh (retention floor) must spend more energy than
    // 2DRP over the same interval with the same resident rows.
    auto run = [&](RefreshIntervals iv) {
        KvEdramArray arr(smallArray(), iv);
        for (std::size_t r = 0; r < 32; ++r) {
            arr.writeRow(r, Time::seconds(0));
            arr.setScore(r, static_cast<std::uint8_t>(r % 16));
        }
        arr.advanceTo(Time::millis(50));
        return arr.refreshEnergySpent().j();
    };
    const double org = run(RefreshIntervals::uniform(Time::micros(45)));
    const double twod = run(RefreshIntervals::paper2drp());
    EXPECT_GT(org, twod * 5.0);
}

TEST(EdramArray, RefreshCountsRowsByGroup)
{
    KvEdramArray arr(smallArray(), RefreshIntervals::paper2drp());
    arr.setHstThreshold(8);
    arr.writeRow(0, Time::seconds(0));
    arr.setScore(0, 15); // HST
    arr.writeRow(1, Time::seconds(0));
    arr.setScore(1, 1); // LST
    arr.advanceTo(Time::millis(1.0));
    // After 1 ms only the HST-MSB timer (0.36 ms) fired (twice).
    EXPECT_GT(arr.refreshOps(), 0u);
    const double per_pass_bytes = 16.0 * 2.0; // two lanes per controller
    const double expected =
        272.0 * per_pass_bytes * 2.0; // two passes, one HST row
    EXPECT_NEAR(arr.refreshEnergySpent().pj(), expected, expected * 0.01);
}

TEST(EdramArray, RefreshHiddenWhenIdle)
{
    KvEdramArray arr(smallArray(), RefreshIntervals::paper2drp());
    for (std::size_t r = 0; r < 16; ++r) {
        arr.writeRow(r, Time::seconds(0));
        arr.setScore(r, 15);
    }
    arr.advanceTo(Time::millis(20));
    EXPECT_GT(arr.hiddenRefreshTime().sec(), 0.0);
    EXPECT_DOUBLE_EQ(arr.stallTime().sec(), 0.0);
}

TEST(EdramArray, EvictInvalidatesRow)
{
    KvEdramArray arr(smallArray(), RefreshIntervals::paper2drp());
    arr.writeRow(3, Time::seconds(0));
    EXPECT_EQ(arr.validRows(), 1u);
    arr.evictRow(3);
    EXPECT_EQ(arr.validRows(), 0u);
    EXPECT_DEATH(arr.readRow(3, Time::micros(1)), "invalid row");
}

TEST(EdramArray, ScoreRegisterFileIs4Bit)
{
    KvEdramArray arr(smallArray(), RefreshIntervals::paper2drp());
    arr.writeRow(0, Time::seconds(0));
    arr.setScore(0, 15);
    EXPECT_EQ(arr.score(0), 15);
    EXPECT_DEATH(arr.setScore(0, 16), "4-bit");
}

TEST(EdramArray, LeakageGrowsWithTime)
{
    KvEdramArray arr(smallArray(), RefreshIntervals::paper2drp());
    const Energy e1 = arr.totalEnergy(Time::millis(1));
    const Energy e2 = arr.totalEnergy(Time::millis(2));
    EXPECT_GT(e2.j(), e1.j());
}

class RetentionSweep : public ::testing::TestWithParam<double>
{};

TEST_P(RetentionSweep, FailureRateWithinUnit)
{
    const auto m = RetentionModel::paper65nm();
    const double us = GetParam();
    const double p = m.failureProbability(Time::micros(us));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Intervals, RetentionSweep,
                         ::testing::Values(0.1, 1.0, 45.0, 131.0, 525.0,
                                           1050.0, 2062.0, 1e5, 1e7));

} // namespace
} // namespace edram
} // namespace kelle
