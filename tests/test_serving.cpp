/**
 * @file
 * Deterministic tests of the serving subsystem: seeded arrival
 * traces, KV-pool conservation under admission/release, hand-computed
 * percentiles, engine conservation (every admitted request completes
 * and the pool is never oversubscribed), policy comparison, and the
 * batched timing-model entry points.
 *
 * Everything runs on the tiny functional model with scaled tasks so
 * the whole suite stays in the fast tier.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "accel/timing_model.hpp"
#include "common/rng.hpp"
#include "serving/kv_budget_allocator.hpp"
#include "serving/request_generator.hpp"
#include "serving/scheduler.hpp"
#include "serving/serving_metrics.hpp"

namespace kelle {
namespace {

/** Scaled two-task mix so engine runs finish in milliseconds. */
std::vector<std::pair<sim::Task, double>>
tinyMix()
{
    return {{sim::scaledForTiny(sim::lambada(), 96), 1.0},
            {sim::scaledForTiny(sim::triviaQa(), 128), 1.0}};
}

serving::ServingConfig
tinyServingConfig(serving::SchedulePolicy policy, double rate,
                  std::uint64_t seed, std::size_t requests)
{
    serving::ServingConfig cfg;
    cfg.model = model::tinyLm();
    cfg.system = accel::kelleEdramSystem(2048);
    cfg.policy = policy;
    cfg.maxBatch = 4;
    cfg.poolTokens = 512; // a handful of concurrent tiny budgets
    cfg.traffic.ratePerSec = rate;
    cfg.traffic.seed = seed;
    cfg.traffic.numRequests = requests;
    cfg.traffic.mix = tinyMix();
    return cfg;
}

// ---- RequestGenerator --------------------------------------------------

TEST(RequestGenerator, DeterministicForAFixedSeed)
{
    serving::TrafficConfig cfg;
    cfg.ratePerSec = 1.0;
    cfg.numRequests = 40;
    cfg.seed = 123;

    const auto a = serving::generateTrace(cfg);
    const auto b = serving::generateTrace(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival.sec(), b[i].arrival.sec()) << i;
        EXPECT_EQ(a[i].task.name, b[i].task.name) << i;
    }

    cfg.seed = 124;
    const auto c = serving::generateTrace(cfg);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].arrival.sec() != c[i].arrival.sec())
            differs = true;
    }
    EXPECT_TRUE(differs) << "different seeds produced identical traces";
}

TEST(RequestGenerator, ArrivalsAreOrderedWithSaneRate)
{
    serving::TrafficConfig cfg;
    cfg.ratePerSec = 2.0;
    cfg.numRequests = 400;
    cfg.seed = 9;

    const auto trace = serving::generateTrace(cfg);
    ASSERT_EQ(trace.size(), cfg.numRequests);
    double prev = -1.0;
    for (const auto &r : trace) {
        EXPECT_GE(r.arrival.sec(), prev);
        prev = r.arrival.sec();
    }
    // Mean inter-arrival of a Poisson trace ~ 1/rate; 400 samples keep
    // the seeded estimate within a loose factor.
    const double mean = prev / static_cast<double>(cfg.numRequests - 1);
    EXPECT_GT(mean, 0.5 / cfg.ratePerSec);
    EXPECT_LT(mean, 2.0 / cfg.ratePerSec);
}

TEST(RequestGenerator, BurstyTraceIsBurstier)
{
    serving::TrafficConfig cfg;
    cfg.ratePerSec = 1.0;
    cfg.numRequests = 500;
    cfg.seed = 77;

    auto squaredCv = [](const std::vector<serving::Request> &trace) {
        std::vector<double> gaps;
        for (std::size_t i = 1; i < trace.size(); ++i)
            gaps.push_back(trace[i].arrival.sec() -
                           trace[i - 1].arrival.sec());
        double mean = 0.0;
        for (double g : gaps)
            mean += g;
        mean /= static_cast<double>(gaps.size());
        double var = 0.0;
        for (double g : gaps)
            var += (g - mean) * (g - mean);
        var /= static_cast<double>(gaps.size());
        return var / (mean * mean);
    };

    const auto poisson = serving::generateTrace(cfg);
    cfg.process = serving::ArrivalProcess::Bursty;
    const auto bursty = serving::generateTrace(cfg);
    // Exponential gaps have CV^2 ~ 1; MMPP clustering pushes it up.
    EXPECT_GT(squaredCv(bursty), squaredCv(poisson));
}

TEST(RequestGenerator, MixCoversAllHardwareTasks)
{
    serving::TrafficConfig cfg;
    cfg.ratePerSec = 1.0;
    cfg.numRequests = 200;
    cfg.seed = 5;
    const auto trace = serving::generateTrace(cfg);
    std::size_t seen = 0;
    for (const auto &task : sim::hardwareTasks()) {
        for (const auto &r : trace) {
            if (r.task.name == task.name) {
                ++seen;
                break;
            }
        }
    }
    EXPECT_EQ(seen, sim::hardwareTasks().size());
}

// ---- KvBudgetAllocator -------------------------------------------------

TEST(KvBudgetAllocator, NeverOversubscribesUnderChurn)
{
    serving::AllocatorConfig cfg;
    cfg.capacityBytes = 10000.0;
    cfg.bytesPerToken = 10.0;
    serving::KvBudgetAllocator alloc(cfg);

    Rng rng(2024);
    std::vector<serving::KvBudgetAllocator::Grant> live;
    for (int i = 0; i < 2000; ++i) {
        if (rng.bernoulli(0.6) || live.empty()) {
            const std::size_t want = 50 + rng.below(200);
            auto g = alloc.tryAdmit(want, 20);
            if (g.admitted)
                live.push_back(g);
        } else {
            const std::size_t pick = rng.below(live.size());
            alloc.release(live[pick]);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        }
        EXPECT_LE(alloc.inUseBytes(), cfg.capacityBytes);
    }
    EXPECT_LE(alloc.peakInUseBytes(), cfg.capacityBytes);
    for (auto &g : live)
        alloc.release(g);
    EXPECT_DOUBLE_EQ(alloc.inUseBytes(), 0.0);
}

TEST(KvBudgetAllocator, ReleaseRestoresCapacity)
{
    serving::AllocatorConfig cfg;
    cfg.capacityBytes = 1000.0;
    cfg.bytesPerToken = 1.0;
    cfg.highWatermark = 1.0;
    serving::KvBudgetAllocator alloc(cfg);

    auto a = alloc.tryAdmit(600, 100);
    ASSERT_TRUE(a.admitted);
    EXPECT_EQ(a.budgetTokens, 600u);
    // Pool holds 400 more: a 600-token ask shrinks to what fits.
    auto b = alloc.tryAdmit(600, 100);
    ASSERT_TRUE(b.admitted);
    EXPECT_EQ(b.budgetTokens, 400u);
    // Nothing left for the floor: deferred.
    auto c = alloc.tryAdmit(600, 100);
    EXPECT_FALSE(c.admitted);
    EXPECT_EQ(alloc.deferrals(), 1u);

    alloc.release(a);
    auto d = alloc.tryAdmit(600, 100);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.budgetTokens, 600u);
}

TEST(KvBudgetAllocator, PressureShrinksTowardTheFloor)
{
    serving::AllocatorConfig cfg;
    cfg.capacityBytes = 1000.0;
    cfg.bytesPerToken = 1.0;
    cfg.highWatermark = 0.5;
    serving::KvBudgetAllocator alloc(cfg);

    auto a = alloc.tryAdmit(400, 50);
    ASSERT_TRUE(a.admitted);
    EXPECT_EQ(a.budgetTokens, 400u); // below the 500-byte watermark
    auto b = alloc.tryAdmit(400, 50);
    ASSERT_TRUE(b.admitted);
    EXPECT_EQ(b.budgetTokens, 100u); // shrunk to stay at the watermark
    auto c = alloc.tryAdmit(400, 50);
    ASSERT_TRUE(c.admitted);
    EXPECT_EQ(c.budgetTokens, 50u); // floor grant above the watermark
    EXPECT_EQ(alloc.shrunkGrants(), 2u);
    EXPECT_LE(alloc.inUseBytes(), cfg.capacityBytes);
}

// ---- ServingMetrics ----------------------------------------------------

TEST(ServingMetrics, PercentilesMatchHandComputedRanks)
{
    // Nearest-rank on n=10: p50 -> 5th smallest, p95/p99 -> 10th.
    std::vector<double> v = {9, 1, 8, 2, 7, 3, 6, 4, 10, 5};
    EXPECT_DOUBLE_EQ(serving::ServingMetrics::percentile(v, 50.0), 5.0);
    EXPECT_DOUBLE_EQ(serving::ServingMetrics::percentile(v, 90.0), 9.0);
    EXPECT_DOUBLE_EQ(serving::ServingMetrics::percentile(v, 95.0), 10.0);
    EXPECT_DOUBLE_EQ(serving::ServingMetrics::percentile(v, 99.0), 10.0);
    EXPECT_DOUBLE_EQ(serving::ServingMetrics::percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(serving::ServingMetrics::percentile({42.0}, 95.0),
                     42.0);
    EXPECT_DOUBLE_EQ(serving::ServingMetrics::percentile({}, 95.0), 0.0);
}

TEST(ServingMetrics, SummaryFromAHandBuiltTrace)
{
    serving::ServingMetrics m;
    for (int i = 1; i <= 4; ++i) {
        serving::Request r;
        r.id = static_cast<std::uint64_t>(i);
        r.task = sim::lambada();
        r.task.decLen = 10;
        r.arrival = Time::seconds(0.0);
        r.firstToken = Time::seconds(i); // TTFT 1, 2, 3, 4
        r.completed = Time::seconds(i + 10.0);
        r.generated = 10;
        r.budgetGranted = r.task.budget;
        r.state = serving::RequestState::Completed;
        m.onCompleted(r);
    }
    const auto s = m.summarize(Time::seconds(14.0));
    EXPECT_EQ(s.completed, 4u);
    EXPECT_DOUBLE_EQ(s.ttftP50, 2.0);  // ceil(0.5*4) = 2nd smallest
    EXPECT_DOUBLE_EQ(s.ttftP95, 4.0);
    EXPECT_DOUBLE_EQ(s.ttftMean, 2.5);
    EXPECT_DOUBLE_EQ(s.tpotMean, 1.0); // 10 s for 10 tokens each
    EXPECT_DOUBLE_EQ(s.tpotP50, 1.0);
    EXPECT_DOUBLE_EQ(s.tpotP95, 1.0);
    EXPECT_DOUBLE_EQ(s.goodputTokensPerSec, 40.0 / 14.0);
    EXPECT_DOUBLE_EQ(s.meanBudgetFraction, 1.0);
}

// ---- Batched timing-model entry points ---------------------------------

TEST(BatchedTiming, WeightStreamAmortizesAcrossTheBatch)
{
    const auto sys = accel::kelleEdramSystem(2048);
    const auto m = model::llama2_7b();
    const auto one =
        accel::simulateBatchedDecodeStep(sys, m, {512});
    const auto four =
        accel::simulateBatchedDecodeStep(sys, m, {512, 512, 512, 512});
    EXPECT_GT(one.latency.sec(), 0.0);
    // One batched step is cheaper than four serial steps...
    EXPECT_LT(four.latency.sec(), 4.0 * one.latency.sec());
    // ...but still does all four sequences' KV/attention work.
    EXPECT_GT(four.latency.sec(), one.latency.sec());

    // With opportunistic recomputation off, base MACs scale with the
    // batch (under Auto they do not: recompute just fills the memory
    // slack the shared weight stream leaves, whatever the batch).
    auto none = sys;
    none.kv.recompute = accel::RecomputeMode::None;
    const auto one_n = accel::simulateBatchedDecodeStep(none, m, {512});
    const auto four_n = accel::simulateBatchedDecodeStep(
        none, m, {512, 512, 512, 512});
    EXPECT_DOUBLE_EQ(four_n.macs, 4.0 * one_n.macs);
}

TEST(BatchedTiming, PrefillStepMatchesTheIntegratedModel)
{
    const auto sys = accel::kelleEdramSystem(2048);
    accel::Workload w;
    w.model = model::llama2_7b();
    w.ctxLen = 512;
    w.decLen = 1;
    w.batch = 1;
    const auto integrated = accel::simulate(sys, w);
    const auto step =
        accel::simulatePrefillStep(sys, w.model, w.ctxLen);
    EXPECT_DOUBLE_EQ(step.latency.sec(),
                     integrated.prefillLatency.sec());
}

// ---- Scheduler ----------------------------------------------------------

TEST(Scheduler, EveryAdmittedRequestCompletes)
{
    for (auto policy : serving::allSchedulePolicies()) {
        auto cfg = tinyServingConfig(policy, 50.0, 11, 24);
        serving::Scheduler engine(cfg);
        const auto rep = engine.run();

        EXPECT_TRUE(rep.drained) << toString(policy);
        EXPECT_EQ(rep.summary.completed + rep.summary.rejected,
                  cfg.traffic.numRequests)
            << toString(policy);
        EXPECT_EQ(rep.summary.rejected, 0u) << toString(policy);
        EXPECT_LE(rep.poolPeakBytes, rep.poolCapacityBytes)
            << toString(policy);
        EXPECT_EQ(rep.prefills, cfg.traffic.numRequests)
            << toString(policy);
        EXPECT_GT(rep.summary.goodputTokensPerSec, 0.0)
            << toString(policy);
    }
}

TEST(Scheduler, RequestTimestampsAreOrdered)
{
    auto cfg = tinyServingConfig(
        serving::SchedulePolicy::ContinuousBatching, 20.0, 3, 16);
    serving::Scheduler engine(cfg);
    const auto rep = engine.run();
    ASSERT_EQ(rep.summary.completed, cfg.traffic.numRequests);
    for (const auto &r : engine.metrics().completedRequests()) {
        EXPECT_LE(r.arrival.sec(), r.admitted.sec()) << r.id;
        EXPECT_LT(r.admitted.sec(), r.firstToken.sec()) << r.id;
        EXPECT_LT(r.firstToken.sec(), r.completed.sec()) << r.id;
        EXPECT_EQ(r.generated, r.task.decLen) << r.id;
        EXPECT_GT(r.budgetGranted, 0u) << r.id;
    }
}

TEST(Scheduler, BitDeterministicAcrossRunsForEveryPolicy)
{
    // Chunked and unchunked, all four policies: reruns of the same
    // seeded config must agree to the last bit.
    for (auto policy : serving::allSchedulePolicies()) {
        for (std::size_t chunk : {std::size_t{0}, std::size_t{16}}) {
            auto cfg = tinyServingConfig(policy, 30.0, 99, 20);
            cfg.chunkTokens = chunk;
            const auto a = serving::Scheduler(cfg).run();
            const auto b = serving::Scheduler(cfg).run();
            const std::string label =
                toString(policy) + " chunk " + std::to_string(chunk);
            EXPECT_EQ(a.engineSteps, b.engineSteps) << label;
            EXPECT_EQ(a.decodeSteps, b.decodeSteps) << label;
            EXPECT_EQ(a.prefillChunks, b.prefillChunks) << label;
            EXPECT_EQ(a.summary.completed, b.summary.completed)
                << label;
            EXPECT_EQ(a.summary.ttftP95, b.summary.ttftP95) << label;
            EXPECT_EQ(a.summary.e2eP99, b.summary.e2eP99) << label;
            EXPECT_EQ(a.summary.goodputTokensPerSec,
                      b.summary.goodputTokensPerSec)
                << label;
            EXPECT_EQ(a.summary.energy.total().j(),
                      b.summary.energy.total().j())
                << label;
            EXPECT_EQ(a.summary.admissionBypasses,
                      b.summary.admissionBypasses)
                << label;
            EXPECT_EQ(a.summary.sloAttainment, b.summary.sloAttainment)
                << label;
            EXPECT_EQ(a.poolPeakBytes, b.poolPeakBytes) << label;
        }
    }
}

TEST(Scheduler, ContinuousBatchingBeatsFcfsOnP95TtftWhenSaturated)
{
    // Arrivals far above the FCFS service rate: the run-to-completion
    // queue backs up while continuous batching keeps admitting.
    const double rate = 2000.0;
    const auto fcfs =
        serving::Scheduler(
            tinyServingConfig(serving::SchedulePolicy::Fcfs, rate, 21,
                              32))
            .run();
    const auto cb = serving::Scheduler(
                        tinyServingConfig(
                            serving::SchedulePolicy::ContinuousBatching,
                            rate, 21, 32))
                        .run();
    ASSERT_EQ(fcfs.summary.completed, 32u);
    ASSERT_EQ(cb.summary.completed, 32u);
    EXPECT_LT(cb.summary.ttftP95, fcfs.summary.ttftP95);
    EXPECT_GE(cb.summary.goodputTokensPerSec,
              fcfs.summary.goodputTokensPerSec);
}

TEST(Scheduler, TinyPoolForcesShrunkGrantsNotOversubscription)
{
    // Saturating arrivals so several requests contend for the pool.
    auto cfg = tinyServingConfig(
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 13, 24);
    cfg.poolTokens = 128; // roughly two shrunk tiny budgets
    serving::Scheduler engine(cfg);
    const auto rep = engine.run();
    EXPECT_TRUE(rep.drained);
    EXPECT_EQ(rep.summary.completed + rep.summary.rejected,
              cfg.traffic.numRequests);
    EXPECT_GT(rep.shrunkGrants + rep.deferrals, 0u);
    EXPECT_LE(rep.poolPeakBytes, rep.poolCapacityBytes);
    EXPECT_LT(rep.summary.meanBudgetFraction, 1.0);
}

TEST(Scheduler, FullGrantsReportNoBudgetPressure)
{
    // A budget override below the floor is clamped at request time;
    // with an ample pool the clamped ask is granted in full, so the
    // budget-kept metric must read 1.0 (no eviction pressure).
    auto cfg = tinyServingConfig(
        serving::SchedulePolicy::ContinuousBatching, 10.0, 31, 8);
    cfg.budgetOverride = 4; // far below every task's floor
    cfg.poolTokens = 4096;
    serving::Scheduler engine(cfg);
    const auto rep = engine.run();
    ASSERT_EQ(rep.summary.completed, cfg.traffic.numRequests);
    EXPECT_EQ(rep.shrunkGrants, 0u);
    EXPECT_DOUBLE_EQ(rep.summary.meanBudgetFraction, 1.0);
}

TEST(Scheduler, NoEvictionBaselineReservesTheFullFootprint)
{
    // On a no-eviction system a request cannot shrink: it reserves its
    // whole ctx+dec footprint, so fewer requests fit concurrently.
    auto cfg = tinyServingConfig(
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 41, 8);
    cfg.system = accel::originalEdramSystem();
    cfg.poolTokens = 1024;
    serving::Scheduler engine(cfg);
    const auto rep = engine.run();
    ASSERT_EQ(rep.summary.completed + rep.summary.rejected,
              cfg.traffic.numRequests);
    EXPECT_EQ(rep.shrunkGrants, 0u);
    EXPECT_LE(rep.poolPeakBytes, rep.poolCapacityBytes);
    for (const auto &r : engine.metrics().completedRequests()) {
        EXPECT_EQ(r.budgetGranted,
                  r.task.ctxLen + r.task.decLen + 1)
            << r.id;
    }
}

TEST(Scheduler, MaxStepsTruncatesInsteadOfHanging)
{
    auto cfg = tinyServingConfig(
        serving::SchedulePolicy::ContinuousBatching, 50.0, 17, 16);
    cfg.maxEngineSteps = 5;
    serving::Scheduler engine(cfg);
    const auto rep = engine.run();
    EXPECT_FALSE(rep.drained);
    EXPECT_LE(rep.engineSteps, 5u);
    EXPECT_LE(rep.decodeSteps, 5u);
}

// ---- Policy layer ------------------------------------------------------

TEST(Policy, ToStringParseRoundTripAndErrorEnumeration)
{
    const auto all = serving::allSchedulePolicies();
    EXPECT_EQ(all.size(), 4u);
    for (auto policy : all) {
        serving::SchedulePolicy parsed;
        ASSERT_TRUE(
            serving::parseSchedulePolicy(toString(policy), &parsed))
            << toString(policy);
        EXPECT_EQ(parsed, policy);
        // The CLI error string must name every valid policy.
        EXPECT_NE(serving::schedulePolicyNames().find(toString(policy)),
                  std::string::npos)
            << toString(policy);
    }
    serving::SchedulePolicy p;
    EXPECT_FALSE(serving::parseSchedulePolicy("bogus", &p));
    EXPECT_FALSE(serving::parseSchedulePolicy("", &p));
    // Aliases keep working.
    EXPECT_TRUE(serving::parseSchedulePolicy("continuous", &p));
    EXPECT_EQ(p, serving::SchedulePolicy::ContinuousBatching);
    EXPECT_TRUE(serving::parseSchedulePolicy("edf", &p));
    EXPECT_EQ(p, serving::SchedulePolicy::EdfChunked);
    EXPECT_TRUE(serving::parseSchedulePolicy("sjf", &p));
    EXPECT_EQ(p, serving::SchedulePolicy::SjfWithinDeadline);
}

TEST(Policy, ChunkedPoliciesCompleteEveryRequest)
{
    for (auto policy : serving::allSchedulePolicies()) {
        auto cfg = tinyServingConfig(policy, 50.0, 23, 16);
        cfg.chunkTokens = 16;
        serving::Scheduler engine(cfg);
        const auto rep = engine.run();
        EXPECT_TRUE(rep.drained) << toString(policy);
        EXPECT_EQ(rep.summary.completed, cfg.traffic.numRequests)
            << toString(policy);
        EXPECT_EQ(rep.prefills, cfg.traffic.numRequests)
            << toString(policy);
        // Chunking splits prompts into ceil(ctx/chunk) steps each.
        std::uint64_t want_chunks = 0;
        for (const auto &r : engine.metrics().completedRequests()) {
            EXPECT_EQ(r.prefilled, r.task.ctxLen) << r.id;
            want_chunks += (r.task.ctxLen + cfg.chunkTokens - 1) /
                           cfg.chunkTokens;
        }
        EXPECT_EQ(rep.prefillChunks, want_chunks) << toString(policy);
        EXPECT_GT(rep.prefillChunks, rep.prefills) << toString(policy);
        EXPECT_EQ(rep.engineSteps, rep.prefillChunks + rep.decodeSteps)
            << toString(policy);
    }
}

TEST(Policy, SkipBlockedAdmissionBypassesTheHeadOfLine)
{
    // A pool around two shrunk tiny budgets at a saturating rate: FIFO
    // policies wait head-of-line (no bypass), reordering policies jump
    // blocked or larger requests and record every overtake.
    auto base = tinyServingConfig(
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 13, 24);
    base.poolTokens = 128;
    for (auto policy : serving::allSchedulePolicies()) {
        auto cfg = base;
        cfg.policy = policy;
        serving::Scheduler engine(cfg);
        const auto rep = engine.run();
        EXPECT_TRUE(rep.drained) << toString(policy);
        const bool reorders =
            policy == serving::SchedulePolicy::SjfWithinDeadline ||
            policy == serving::SchedulePolicy::EdfChunked;
        if (reorders)
            EXPECT_GT(rep.summary.admissionBypasses, 0u)
                << toString(policy);
        else
            EXPECT_EQ(rep.summary.admissionBypasses, 0u)
                << toString(policy);
    }
}

// ---- Chunked prefill timing --------------------------------------------

TEST(ChunkedTiming, WholePromptChunkMatchesSingleShotExactly)
{
    // chunkTokens = prompt length degenerates to the monolithic
    // prefill: one chunk at offset 0 must cost the same to the bit.
    const auto sys = accel::kelleEdramSystem(2048);
    const auto m = model::llama2_7b();
    for (std::size_t ctx : {128u, 512u, 1024u}) {
        const auto shot = accel::simulatePrefillStep(sys, m, ctx);
        const auto chunk = accel::simulatePrefillChunk(sys, m, 0, ctx);
        EXPECT_DOUBLE_EQ(chunk.latency.sec(), shot.latency.sec())
            << ctx;
        EXPECT_DOUBLE_EQ(chunk.energy.total().j(),
                         shot.energy.total().j())
            << ctx;
        EXPECT_DOUBLE_EQ(chunk.dramBytes, shot.dramBytes) << ctx;
        EXPECT_DOUBLE_EQ(chunk.macs, shot.macs) << ctx;
    }
}

TEST(ChunkedTiming, ChunkComputeTelescopesAndWeightStreamDoesNot)
{
    const auto sys = accel::kelleEdramSystem(2048);
    const auto m = model::llama2_7b();
    const std::size_t ctx = 512;
    const std::size_t chunk = 128;
    const auto shot = accel::simulatePrefillStep(sys, m, ctx);

    double macs = 0.0;
    double latency = 0.0;
    for (std::size_t off = 0; off < ctx; off += chunk) {
        const auto step = accel::simulatePrefillChunk(sys, m, off, chunk);
        // Later chunks attend over a longer resident prefix, so no
        // chunk can be cheaper than its predecessor's attention share.
        EXPECT_GT(step.latency.sec(), 0.0);
        EXPECT_LT(step.latency.sec(), shot.latency.sec());
        macs += step.macs;
        latency += step.latency.sec();
    }
    // Causal-attention MACs telescope across chunks.
    EXPECT_NEAR(macs, shot.macs, 1e-9 * shot.macs);
    // The weight stream is charged per chunk, so the summed latency
    // can only meet or exceed the single shot.
    EXPECT_GE(latency, shot.latency.sec() * (1.0 - 1e-12));
}

// ---- SLO metrics -------------------------------------------------------

TEST(ServingMetrics, SloAttainmentFromAHandBuiltTrace)
{
    serving::ServingMetrics metrics;
    // Four completions, every TPOT exactly 1 s/token:
    //   id  ttft  ttft_ok (<= 2.5)  tpot_target  tpot_ok
    //    1    1     yes        2.0        yes
    //    2    2     yes        0.5        no
    //    3    3     no         2.0        yes
    //    4    4     no         0.5        no
    const double tpot_targets[] = {2.0, 0.5, 2.0, 0.5};
    for (int i = 1; i <= 4; ++i) {
        serving::Request r;
        r.id = static_cast<std::uint64_t>(i);
        r.task = sim::lambada();
        r.task.decLen = 10;
        r.arrival = Time::seconds(0.0);
        r.ttftDeadlineSec = 2.5;
        r.tpotTargetSec = tpot_targets[i - 1];
        r.firstToken = Time::seconds(i);
        r.completed = Time::seconds(i + 10.0); // 10 s for 10 tokens
        r.generated = 10;
        r.state = serving::RequestState::Completed;
        metrics.onCompleted(r);
    }
    // One rejected request misses everything.
    serving::Request rej;
    rej.id = 5;
    rej.task = sim::lambada();
    rej.state = serving::RequestState::Rejected;
    metrics.onRejected(rej);

    const auto s = metrics.summarize(Time::seconds(14.0));
    EXPECT_DOUBLE_EQ(s.sloTtftAttainment, 2.0 / 5.0);
    EXPECT_DOUBLE_EQ(s.sloTpotAttainment, 2.0 / 5.0);
    EXPECT_DOUBLE_EQ(s.sloAttainment, 1.0 / 5.0);
}

TEST(ServingMetrics, DisabledDeadlinesAlwaysAttain)
{
    serving::Request r;
    r.task = sim::lambada();
    r.task.decLen = 4;
    r.arrival = Time::seconds(0.0);
    r.firstToken = Time::seconds(100.0);
    r.completed = Time::seconds(200.0);
    r.ttftDeadlineSec = 0.0;
    r.tpotTargetSec = 0.0;
    EXPECT_TRUE(serving::ServingMetrics::metTtft(r));
    EXPECT_TRUE(serving::ServingMetrics::metTpot(r));
}

TEST(RequestGenerator, DeadlinesResolvePerTaskFromTheSloSpec)
{
    serving::TrafficConfig cfg;
    cfg.ratePerSec = 1.0;
    cfg.numRequests = 60;
    cfg.seed = 31;
    cfg.slo.ttftBaseSec = 4.0;
    cfg.slo.ttftPerCtxTokenSec = 0.01;
    cfg.slo.tpotSec = 0.25;
    const auto trace = serving::generateTrace(cfg);
    for (const auto &r : trace) {
        EXPECT_DOUBLE_EQ(
            r.ttftDeadlineSec,
            4.0 + 0.01 * static_cast<double>(r.task.ctxLen))
            << r.id;
        EXPECT_DOUBLE_EQ(r.tpotTargetSec, 0.25) << r.id;
        EXPECT_DOUBLE_EQ(r.ttftDeadline().sec(),
                         r.arrival.sec() + r.ttftDeadlineSec)
            << r.id;
    }
}

TEST(Scheduler, SloAttainmentIsNonTrivialUnderLoadForEveryPolicy)
{
    // Deadlines tuned so a saturated tiny engine meets some but not
    // all: attainment must land strictly inside (0, 1) — the figure
    // the policy comparison tables rely on.
    for (auto policy : serving::allSchedulePolicies()) {
        // Tiny-engine magnitudes: unqueued TTFT is ~20 us, the
        // saturated tail ~ms; a 100 us deadline splits the trace.
        auto cfg = tinyServingConfig(policy, 2000.0, 7, 24);
        cfg.traffic.slo.ttftBaseSec = 1e-4;
        cfg.traffic.slo.ttftPerCtxTokenSec = 0.0;
        cfg.traffic.slo.tpotSec = 1e-3;
        serving::Scheduler engine(cfg);
        const auto rep = engine.run();
        ASSERT_GT(rep.summary.completed, 0u) << toString(policy);
        EXPECT_GT(rep.summary.sloAttainment, 0.0) << toString(policy);
        EXPECT_LT(rep.summary.sloAttainment, 1.0) << toString(policy);
        EXPECT_GE(rep.summary.sloTtftAttainment,
                  rep.summary.sloAttainment)
            << toString(policy);
        EXPECT_GE(rep.summary.sloTpotAttainment,
                  rep.summary.sloAttainment)
            << toString(policy);
    }
}

} // namespace
} // namespace kelle
