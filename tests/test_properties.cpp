/**
 * @file
 * Property-based tests: randomized invariants over the KV cache, the
 * retention model and the end-to-end timing model, plus parameterized
 * sweeps across the full (model x task) grid.
 */

#include <gtest/gtest.h>

#include "accel/timing_model.hpp"
#include "common/rng.hpp"
#include "edram/retention.hpp"
#include "kvcache/managed_kv_cache.hpp"
#include "sim/workloads.hpp"

namespace kelle {
namespace {

/** Fuzz the cache with random append/observe/gather sequences and
 *  check structural invariants after every operation. */
TEST(KvCacheProperty, FuzzedOperationsPreserveInvariants)
{
    Rng rng(20240611);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t heads = 1 + rng.below(4);
        const std::size_t hd = 4u << rng.below(3); // 4, 8, 16
        const std::size_t d = heads * hd;
        const std::size_t budget = 8 + rng.below(24);
        const std::size_t sink = rng.below(3);
        const std::size_t recent = 1 + rng.below(4);

        auto cfg = kv::makeAerpConfig(budget, sink, recent);
        cfg.popularityTheta = rng.uniform();
        kv::ManagedKvCache cache(cfg, 2, heads, hd, d);
        cache.setRecomputer([](std::size_t, std::span<const float> x,
                               std::int64_t, std::span<float> k,
                               std::span<float> v) {
            for (std::size_t i = 0; i < k.size(); ++i) {
                k[i] = x[i % x.size()];
                v[i] = -x[i % x.size()];
            }
        });

        std::vector<float> kvec(d), vvec(d), x(d);
        for (std::int64_t pos = 0; pos < 120; ++pos) {
            for (auto &f : kvec)
                f = static_cast<float>(rng.gaussian());
            for (auto &f : vvec)
                f = static_cast<float>(rng.gaussian());
            for (auto &f : x)
                f = static_cast<float>(rng.gaussian());
            const std::size_t layer = rng.below(2);
            // Keep per-layer positions strictly increasing.
            const std::int64_t p = pos * 2 + static_cast<int>(layer);
            cache.append(layer, p, kvec, vvec, x);

            for (std::size_t h = 0; h < heads; ++h) {
                ASSERT_LE(cache.numEntries(layer, h), budget);
                auto g = cache.gather(layer, h);
                ASSERT_EQ(g.k.rows(), cache.numEntries(layer, h));
                ASSERT_EQ(g.positions.size(), g.slots.size());
                // Positions are unique within a head.
                auto ps = g.positions;
                std::sort(ps.begin(), ps.end());
                ASSERT_TRUE(std::adjacent_find(ps.begin(), ps.end()) ==
                            ps.end());
                // Random importance updates keep the cache healthy.
                std::vector<float> probs(g.slots.size());
                for (auto &pv : probs)
                    pv = static_cast<float>(rng.uniform());
                cache.observeAttention(layer, h, probs, g.slots);
            }
            ASSERT_GE(cache.residentKvBytes(), 0.0);
        }
    }
}

/** The retention CDF must be monotone and calibration exact for any
 *  valid anchor pair. */
TEST(RetentionProperty, RandomCalibrationsHitTheirAnchors)
{
    Rng rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        const double t1 = rng.uniform(1e-6, 1e-3);
        const double t2 = t1 * rng.uniform(3.0, 300.0);
        const double p1 = rng.uniform(1e-8, 1e-4);
        const double p2 = p1 * rng.uniform(5.0, 1000.0);
        if (p2 >= 0.5)
            continue;
        const auto m = edram::RetentionModel::calibrate(
            Time::seconds(t1), p1, Time::seconds(t2), p2);
        EXPECT_NEAR(m.failureProbability(Time::seconds(t1)), p1,
                    p1 * 1e-6);
        EXPECT_NEAR(m.failureProbability(Time::seconds(t2)), p2,
                    p2 * 1e-6);
        EXPECT_LT(m.failureProbability(Time::seconds(t1 * 0.5)), p1);
    }
}

/** Decode latency must be monotone in decode length and batch. */
TEST(TimingProperty, LatencyMonotoneInWorkload)
{
    const auto sys = accel::kelleEdramSystem(512);
    accel::Workload w;
    w.model = model::llama2_7b();
    w.ctxLen = 128;
    w.batch = 4;

    double prev = 0.0;
    for (std::size_t dec : {16u, 64u, 256u}) {
        w.decLen = dec;
        const double t = accel::simulate(sys, w).decodeLatency.sec();
        EXPECT_GT(t, prev);
        prev = t;
    }

    w.decLen = 64;
    double prev_batch = 0.0;
    for (std::size_t b : {1u, 4u, 16u}) {
        w.batch = b;
        const double t = accel::simulate(sys, w).decodeLatency.sec();
        EXPECT_GT(t, prev_batch);
        prev_batch = t;
    }
}

/** Energy components are non-negative and totals additive. */
TEST(TimingProperty, EnergyAccountingConsistent)
{
    for (const auto &sys :
         {accel::originalSramSystem(), accel::kelleEdramSystem(256)}) {
        accel::Workload w;
        w.model = model::mistral_7b();
        w.ctxLen = 64;
        w.decLen = 32;
        w.batch = 2;
        const auto r = accel::simulate(sys, w);
        accel::EnergyBreakdown e = r.prefillEnergy;
        e += r.decodeEnergy;
        EXPECT_GE(e.rsa.j(), 0.0);
        EXPECT_GE(e.refresh.j(), 0.0);
        EXPECT_GE(e.dram.j(), 0.0);
        EXPECT_NEAR(e.total().j(),
                    e.rsa.j() + e.sfu.j() + e.weightSram.j() +
                        e.kvMem.j() + e.refresh.j() + e.dram.j() +
                        e.leakage.j(),
                    1e-12 * e.total().j());
        EXPECT_GT(r.totalEnergy().j(), 0.0);
    }
}

/** Kelle must beat Original+SRAM for every evaluated model and task
 *  (short-decode variants keep the sweep fast). */
class ModelTaskGrid
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    static model::ModelConfig
    modelOf(int idx)
    {
        switch (idx) {
          case 0:
            return model::llama2_7b();
          case 1:
            return model::llama2_13b();
          case 2:
            return model::llama32_3b();
          case 3:
            return model::llama3_8b();
          case 4:
            return model::mistral_7b();
          case 5:
            return model::qwen2_7b();
          default:
            return model::opt_6_7b();
        }
    }
};

TEST_P(ModelTaskGrid, KelleWinsEverywhere)
{
    const auto mc = modelOf(std::get<0>(GetParam()));
    auto task = sim::hardwareTasks()[static_cast<std::size_t>(
        std::get<1>(GetParam()))];
    task.decLen = std::min<std::size_t>(task.decLen, 96); // fast sweep
    const auto w = sim::makeWorkload(task, mc, 8);

    const auto base = accel::simulate(accel::originalSramSystem(), w);
    const auto kelle =
        accel::simulate(accel::kelleEdramSystem(task.budget), w);
    const auto cmp = accel::compare(base, kelle);
    EXPECT_GT(cmp.speedup, 1.0) << mc.name << " " << task.name;
    EXPECT_GT(cmp.energyEfficiency, 1.0) << mc.name << " " << task.name;
}

INSTANTIATE_TEST_SUITE_P(AllModelsAllTasks, ModelTaskGrid,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(0, 4)));

} // namespace
} // namespace kelle
