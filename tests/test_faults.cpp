/**
 * @file
 * The fault-injection determinism and recovery contract (src/faults +
 * cluster engine integration):
 *
 *  - FaultInjector: the merged per-device renewal stream is a pure
 *    function of (seed, device index, config) — identical across
 *    constructions and independent of fleet size.
 *  - FaultNull: a disabled config is a null test — no injector, empty
 *    fault report, Healthy fleet (the byte-level half of this
 *    contract is pinned by the unchanged pre-fault golden digests).
 *  - FaultDeterminism: a fixed fault seed produces bit-identical
 *    ClusterReports and trace bytes across threads {1,2,4} x fastSim
 *    on/off x preempt on/off.
 *  - FaultCrash: crash-eviction invariants — every request terminal,
 *    lost work accounted, the retry budget respected, permanent
 *    failures marked, Down devices fully released.
 *  - FaultTrace: the offline reader parses fault traces with zero
 *    unknown events and reconstructs the device_fault miss cause.
 *  - ClientRetry: overload-rejection resubmits respect their budget
 *    and never perturb the base arrival trace.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.hpp"
#include "faults/fault_injector.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace kelle {
namespace {

std::vector<std::pair<sim::Task, double>>
tinyMix()
{
    return {{sim::scaledForTiny(sim::lambada(), 96), 1.0},
            {sim::scaledForTiny(sim::triviaQa(), 128), 1.0}};
}

/** Fault timescales matched to the tiny-model sim (sub-second runs). */
faults::FaultConfig
tinyFaults(std::uint64_t seed = 42)
{
    faults::FaultConfig f;
    f.enabled = true;
    f.mtbfSec = 0.02;
    f.mttrSec = 0.01;
    f.recoverWarmupSec = 0.005;
    f.retryBackoffSec = 0.002;
    f.retryBackoffCapSec = 0.05;
    f.seed = seed;
    return f;
}

cluster::ClusterConfig
tinyFaultCluster(std::size_t n_devices, std::uint64_t seed = 42,
                 std::size_t requests = 24)
{
    serving::ServingConfig cfg;
    cfg.model = model::tinyLm();
    cfg.system = accel::kelleEdramSystem(2048);
    cfg.policy = serving::SchedulePolicy::ContinuousBatching;
    cfg.maxBatch = 4;
    cfg.poolTokens = 512;
    cfg.traffic.ratePerSec = 300.0;
    cfg.traffic.seed = seed;
    cfg.traffic.numRequests = requests;
    cfg.traffic.mix = tinyMix();
    auto ccfg = cluster::clusterConfigFrom(
        cfg, n_devices, cluster::DispatchKind::RoundRobin);
    ccfg.faults = tinyFaults(seed);
    return ccfg;
}

void
expectFaultReportsEqual(const cluster::ClusterFaultReport &a,
                        const cluster::ClusterFaultReport &b,
                        const std::string &label)
{
    EXPECT_EQ(a.enabled, b.enabled) << label;
    EXPECT_EQ(a.totalDowntimeSec, b.totalDowntimeSec) << label;
    EXPECT_EQ(a.crashes, b.crashes) << label;
    EXPECT_EQ(a.slowdowns, b.slowdowns) << label;
    EXPECT_EQ(a.shrinks, b.shrinks) << label;
    EXPECT_EQ(a.lostTokens, b.lostTokens) << label;
    EXPECT_EQ(a.retries, b.retries) << label;
    EXPECT_EQ(a.retrySuccesses, b.retrySuccesses) << label;
    EXPECT_EQ(a.shedRequests, b.shedRequests) << label;
    EXPECT_EQ(a.permanentFailures, b.permanentFailures) << label;
    ASSERT_EQ(a.devices.size(), b.devices.size()) << label;
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_EQ(a.devices[i].crashes, b.devices[i].crashes)
            << label << " dev" << i;
        EXPECT_EQ(a.devices[i].downtimeSec, b.devices[i].downtimeSec)
            << label << " dev" << i;
    }
}

struct FaultRun
{
    cluster::ClusterReport report;
    std::vector<serving::Request> requests;
    std::string traceJson;
    std::vector<cluster::DeviceHealth> health;
    std::vector<double> allocatorInUseBytes;
};

FaultRun
runFaultCell(cluster::ClusterConfig cfg, std::size_t threads,
             bool fast_sim)
{
    obs::TraceRecorder rec;
    cfg.threads = threads;
    cfg.engine.fastSim = fast_sim;
    cfg.engine.trace = &rec;
    cluster::ClusterEngine engine(cfg);
    FaultRun out;
    out.report = engine.run();
    out.requests = engine.requests();
    out.traceJson = rec.toJson();
    for (std::size_t i = 0; i < engine.deviceCount(); ++i) {
        out.health.push_back(engine.health(i));
        out.allocatorInUseBytes.push_back(
            engine.device(i).allocator().inUseBytes());
    }
    return out;
}

// ---- FaultInjector ------------------------------------------------------

TEST(FaultInjector, StreamIsDeterministic)
{
    const faults::FaultConfig cfg = tinyFaults(7);
    faults::FaultInjector a(cfg, 3);
    faults::FaultInjector b(cfg, 3);
    for (int i = 0; i < 500; ++i) {
        const faults::FaultEvent ea = a.pop();
        const faults::FaultEvent eb = b.pop();
        EXPECT_EQ(ea.at.sec(), eb.at.sec()) << i;
        EXPECT_EQ(ea.device, eb.device) << i;
        EXPECT_EQ(ea.kind, eb.kind) << i;
        EXPECT_EQ(ea.cause, eb.cause) << i;
        // The merged stream is chronological.
        EXPECT_LE(ea.at.sec(), a.nextEventTime().sec()) << i;
    }
}

TEST(FaultInjector, StreamIndependentOfFleetSize)
{
    const faults::FaultConfig cfg = tinyFaults(11);
    faults::FaultInjector small(cfg, 1);
    faults::FaultInjector large(cfg, 4);
    // Device 0's history must not depend on how many peers exist.
    for (int seen = 0; seen < 100;) {
        const faults::FaultEvent el = large.pop();
        if (el.device != 0)
            continue;
        const faults::FaultEvent es = small.pop();
        EXPECT_EQ(es.at.sec(), el.at.sec()) << seen;
        EXPECT_EQ(es.kind, el.kind) << seen;
        EXPECT_EQ(es.cause, el.cause) << seen;
        ++seen;
    }
}

TEST(FaultInjector, KindWeightsAreRespected)
{
    faults::FaultConfig cfg = tinyFaults(3);
    cfg.slowdownWeight = 0.0;
    cfg.shrinkWeight = 0.0;
    faults::FaultInjector inj(cfg, 2);
    for (int i = 0; i < 200; ++i) {
        const faults::FaultEvent ev = inj.pop();
        EXPECT_TRUE(ev.kind == faults::FaultKind::Crash ||
                    ev.kind == faults::FaultKind::Recover ||
                    ev.kind == faults::FaultKind::RecoverDone)
            << toString(ev.kind);
        if (ev.kind != faults::FaultKind::Crash) {
            EXPECT_EQ(ev.cause, faults::FaultKind::Crash);
        }
    }
}

// ---- FaultNull ----------------------------------------------------------

TEST(FaultNull, DisabledConfigKeepsReportEmptyAndFleetHealthy)
{
    cluster::ClusterConfig cfg = tinyFaultCluster(2);
    cfg.faults = faults::FaultConfig{}; // disabled
    cluster::ClusterEngine engine(cfg);
    const cluster::ClusterReport rep = engine.run();
    EXPECT_FALSE(rep.faults.enabled);
    EXPECT_EQ(rep.faults.crashes, 0u);
    EXPECT_EQ(rep.faults.retries, 0u);
    EXPECT_EQ(rep.faults.lostTokens, 0u);
    EXPECT_EQ(rep.faults.totalDowntimeSec, 0.0);
    EXPECT_TRUE(rep.faults.devices.empty());
    for (std::size_t i = 0; i < engine.deviceCount(); ++i)
        EXPECT_EQ(engine.health(i), cluster::DeviceHealth::Healthy);
    for (const serving::Request &r : engine.requests()) {
        EXPECT_EQ(r.faultRetries, 0u);
        EXPECT_EQ(r.lostTokens, 0u);
        EXPECT_FALSE(r.faulted);
        EXPECT_FALSE(r.faultFailed);
    }
}

// ---- FaultDeterminism ---------------------------------------------------

TEST(FaultDeterminism, ThreadsAndFastSimBitIdentical)
{
    for (std::uint64_t seed : {5u, 42u}) {
        const cluster::ClusterConfig cfg = tinyFaultCluster(3, seed);
        const FaultRun serial = runFaultCell(cfg, 1, true);
        // The fault stream must actually do something in this cell or
        // the invariance below is vacuous.
        ASSERT_GT(serial.report.faults.crashes +
                      serial.report.faults.slowdowns +
                      serial.report.faults.shrinks,
                  0u);
        for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
            for (bool fast : {true, false}) {
                std::string label = "s";
                label += std::to_string(seed);
                label += "/t";
                label += std::to_string(threads);
                label += fast ? "/fast" : "/slow";
                const FaultRun par = runFaultCell(cfg, threads, fast);
                EXPECT_EQ(serial.traceJson, par.traceJson) << label;
                expectFaultReportsEqual(serial.report.faults,
                                        par.report.faults, label);
                EXPECT_EQ(serial.report.aggregate.summary.completed,
                          par.report.aggregate.summary.completed)
                    << label;
                EXPECT_EQ(serial.report.aggregate.summary.rejected,
                          par.report.aggregate.summary.rejected)
                    << label;
                EXPECT_EQ(
                    serial.report.aggregate.summary.goodputTokensPerSec,
                    par.report.aggregate.summary.goodputTokensPerSec)
                    << label;
                ASSERT_EQ(serial.health.size(), par.health.size());
                for (std::size_t i = 0; i < serial.health.size(); ++i)
                    EXPECT_EQ(serial.health[i], par.health[i])
                        << label << " dev" << i;
            }
        }
    }
}

TEST(FaultDeterminism, PreemptionComposesBitIdentically)
{
    cluster::ClusterConfig cfg = tinyFaultCluster(3, 42);
    cfg.engine.preempt.enabled = true;
    cfg.engine.traffic.ratePerSec = 500.0;
    const FaultRun serial = runFaultCell(cfg, 1, true);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        for (bool fast : {true, false}) {
            const FaultRun par = runFaultCell(cfg, threads, fast);
            EXPECT_EQ(serial.traceJson, par.traceJson)
                << "t" << threads << (fast ? "/fast" : "/slow");
            expectFaultReportsEqual(serial.report.faults,
                                    par.report.faults,
                                    "preempt/t" +
                                        std::to_string(threads));
        }
    }
}

// ---- FaultCrash ---------------------------------------------------------

/** Crash-only stream at an aggressive rate: every recovery knob and
 *  retry path fires. */
cluster::ClusterConfig
crashyCluster(std::uint64_t seed = 42)
{
    cluster::ClusterConfig cfg = tinyFaultCluster(2, seed);
    cfg.faults.slowdownWeight = 0.0;
    cfg.faults.shrinkWeight = 0.0;
    cfg.faults.mtbfSec = 0.01;
    return cfg;
}

TEST(FaultCrash, EveryRequestTerminalAndLostWorkAccounted)
{
    cluster::ClusterEngine engine(crashyCluster());
    const cluster::ClusterReport rep = engine.run();
    ASSERT_GT(rep.faults.crashes, 0u);
    EXPECT_GT(rep.faults.totalDowntimeSec, 0.0);

    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::uint64_t retries = 0;
    std::uint64_t retry_successes = 0;
    std::uint64_t permanent = 0;
    for (const serving::Request &r : engine.requests()) {
        EXPECT_TRUE(r.state == serving::RequestState::Completed ||
                    r.state == serving::RequestState::Rejected)
            << "request " << r.id << " not terminal: "
            << toString(r.state);
        if (r.state == serving::RequestState::Completed) {
            ++completed;
            if (r.faultRetries > 0)
                ++retry_successes;
            EXPECT_FALSE(r.faultFailed);
        } else {
            ++rejected;
        }
        if (r.faultFailed) {
            ++permanent;
            EXPECT_EQ(r.state, serving::RequestState::Rejected);
            // A permanent failure means the budget was exhausted.
            EXPECT_EQ(r.faultRetries, 3u);
        }
        retries += r.faultRetries;
        EXPECT_LE(r.faultRetries, 3u);
    }
    EXPECT_EQ(completed, rep.aggregate.summary.completed);
    EXPECT_EQ(rejected, rep.aggregate.summary.rejected);
    EXPECT_EQ(completed + rejected, engine.requests().size());
    EXPECT_EQ(retries, rep.faults.retries);
    EXPECT_EQ(retry_successes, rep.faults.retrySuccesses);
    EXPECT_EQ(permanent, rep.faults.permanentFailures);

    // Crash evictions drop resident KV: lost work is visible whenever
    // a decode-phase victim existed.
    std::uint64_t lost = 0;
    for (const serving::Request &r : engine.requests())
        lost += r.lostTokens;
    EXPECT_EQ(lost, rep.faults.lostTokens);

    // Per-device crash counts sum to the fleet total.
    std::uint64_t dev_crashes = 0;
    double dev_down = 0.0;
    for (const auto &d : rep.faults.devices) {
        dev_crashes += d.crashes;
        dev_down += d.downtimeSec;
    }
    EXPECT_EQ(dev_crashes, rep.faults.crashes);
    EXPECT_DOUBLE_EQ(dev_down, rep.faults.totalDowntimeSec);
}

TEST(FaultCrash, RetryBudgetRespected)
{
    cluster::ClusterConfig cfg = crashyCluster();
    cfg.faults.maxRetries = 1;
    cluster::ClusterEngine engine(cfg);
    const cluster::ClusterReport rep = engine.run();
    ASSERT_GT(rep.faults.crashes, 0u);
    for (const serving::Request &r : engine.requests()) {
        EXPECT_LE(r.faultRetries, 1u);
        if (r.faultFailed) {
            EXPECT_EQ(r.faultRetries, 1u);
        }
    }
}

TEST(FaultCrash, DownDevicesHoldNoKv)
{
    // Any device that ends the run crashed must have released every
    // grant (crashAt drops the full resident set).
    for (std::uint64_t seed : {1u, 9u, 42u, 77u}) {
        const FaultRun run =
            runFaultCell(crashyCluster(seed), 1, true);
        for (std::size_t i = 0; i < run.health.size(); ++i) {
            if (run.health[i] == cluster::DeviceHealth::Down) {
                EXPECT_EQ(run.allocatorInUseBytes[i], 0.0)
                    << "seed " << seed << " dev" << i;
            }
        }
    }
}

// ---- FaultTrace ---------------------------------------------------------

TEST(FaultTrace, ReaderParsesFaultTaxonomyAndMissCause)
{
    const FaultRun run = runFaultCell(crashyCluster(), 1, true);
    obs::TraceReader reader;
    ASSERT_TRUE(reader.parse(run.traceJson));
    EXPECT_EQ(reader.stats().unknown, 0u);
    EXPECT_EQ(reader.stats().malformed, 0u);
    EXPECT_GT(reader.deviceFaults, 0u);
    EXPECT_GT(reader.deviceRecovers, 0u);
    EXPECT_EQ(reader.faultFailures,
              static_cast<std::size_t>(
                  run.report.faults.permanentFailures));

    // The reconstructed lifecycles agree with the engine's outcome
    // counts, and fault-failed requests classify as device_fault.
    EXPECT_EQ(reader.completed, run.report.aggregate.summary.completed);
    EXPECT_EQ(reader.rejected, run.report.aggregate.summary.rejected);
    if (run.report.faults.permanentFailures > 0) {
        EXPECT_GE(reader.missCounts[static_cast<std::size_t>(
                      obs::MissCause::DeviceFault)],
                  1u);
        std::size_t faulted = 0;
        for (const obs::RequestLife &r : reader.requests())
            if (r.faulted)
                ++faulted;
        EXPECT_GT(faulted, 0u);
    }
}

// ---- ClientRetry --------------------------------------------------------

TEST(ClientRetry, BudgetRespectedAndArrivalTraceUnchanged)
{
    // A pool below the larger task's floor makes that class an
    // overload reject; client retries resubmit it (futile here, so
    // the budget must be exactly spent) without touching arrivals.
    // Budget floors (sink + recent + slack): lambada-tiny 19 tokens,
    // triviaQa-tiny 35 — a 24-token pool admits one class and
    // overload-rejects the other.
    cluster::ClusterConfig base = tinyFaultCluster(1);
    base.faults.enabled = false;
    base.engine.poolTokens = 24;
    for (auto &d : base.devices)
        d.poolTokens = 24;

    cluster::ClusterConfig plain = base;
    cluster::ClusterEngine p(plain);
    const cluster::ClusterReport prep = p.run();

    cluster::ClusterConfig retry = base;
    retry.engine.clientRetries = 2;
    retry.engine.clientRetryBackoffSec = 0.01;
    cluster::ClusterEngine q(retry);
    const cluster::ClusterReport qrep = q.run();

    ASSERT_GT(prep.aggregate.summary.rejected, 0u);
    EXPECT_EQ(prep.aggregate.summary.rejected,
              qrep.aggregate.summary.rejected);
    EXPECT_EQ(prep.aggregate.summary.completed,
              qrep.aggregate.summary.completed);

    ASSERT_EQ(p.requests().size(), q.requests().size());
    for (std::size_t i = 0; i < p.requests().size(); ++i) {
        // The base arrival trace is byte-identical: retries re-enter
        // the admission path, they do not append arrivals.
        EXPECT_EQ(p.requests()[i].arrival.sec(),
                  q.requests()[i].arrival.sec())
            << i;
        EXPECT_EQ(p.requests()[i].id, q.requests()[i].id) << i;
        const serving::Request &r = q.requests()[i];
        EXPECT_LE(r.clientRetries, 2u);
        if (r.state == serving::RequestState::Rejected) {
            EXPECT_EQ(r.clientRetries, 2u) << i;
        }
    }
}

TEST(ClientRetry, ThreadInvariantUnderFaults)
{
    cluster::ClusterConfig cfg = tinyFaultCluster(2, 42);
    cfg.engine.clientRetries = 2;
    cfg.engine.clientRetryBackoffSec = 0.005;
    const FaultRun serial = runFaultCell(cfg, 1, true);
    for (std::size_t threads : {std::size_t{2}}) {
        const FaultRun par = runFaultCell(cfg, threads, false);
        EXPECT_EQ(serial.traceJson, par.traceJson);
        expectFaultReportsEqual(serial.report.faults,
                                par.report.faults, "client-retry");
    }
}

} // namespace
} // namespace kelle
