/**
 * @file
 * Unit tests for the common library: units, RNG, stats, tables,
 * parallel-for.
 */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace kelle {
namespace {

TEST(Units, TimeConstructionAndConversion)
{
    EXPECT_DOUBLE_EQ(Time::millis(3).sec(), 3e-3);
    EXPECT_DOUBLE_EQ(Time::micros(45).us(), 45.0);
    EXPECT_DOUBLE_EQ(Time::nanos(1.9).ns(), 1.9);
    EXPECT_DOUBLE_EQ((Time::millis(1) + Time::micros(500)).ms(), 1.5);
}

TEST(Units, EnergyPowerAlgebra)
{
    const Power p = Power::watts(2.0);
    const Time t = Time::seconds(3.0);
    EXPECT_DOUBLE_EQ((p * t).j(), 6.0);
    EXPECT_DOUBLE_EQ((Energy::joules(6.0) / t).w(), 2.0);
    EXPECT_DOUBLE_EQ((Energy::joules(6.0) / p).sec(), 3.0);
}

TEST(Units, BytesAndBandwidth)
{
    const Bytes b = Bytes::mib(64);
    const Bandwidth bw = Bandwidth::gibPerSec(64);
    EXPECT_NEAR((b / bw).sec(), 64.0 / (64.0 * 1024.0), 1e-12);
    EXPECT_DOUBLE_EQ(Bytes::gib(1).inMib(), 1024.0);
}

TEST(Units, EnergyPerByteTimesBytes)
{
    const EnergyPerByte e = EnergyPerByte::picojoules(84.8);
    EXPECT_NEAR((e * Bytes::count(1000)).pj(), 84800.0, 1e-6);
}

TEST(Units, CyclesAtFrequency)
{
    const Cycles c(1000);
    EXPECT_DOUBLE_EQ(c.atFrequency(1e9).us(), 1.0);
}

TEST(Units, UnitRatioIsDimensionless)
{
    EXPECT_DOUBLE_EQ(Time::seconds(6) / Time::seconds(3), 2.0);
}

TEST(Units, FormatSi)
{
    EXPECT_EQ(formatSi(3.2e-3, "s"), "3.2 ms");
    EXPECT_EQ(formatSi(0.0, "J"), "0 J");
    EXPECT_EQ(formatSi(2.5e9, "B/s"), "2.5 GB/s");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, ForkDecorrelates)
{
    Rng a(5);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Stats, SummaryMoments)
{
    stats::Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Stats, SummaryEmpty)
{
    stats::Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, HistogramBinning)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(0.5);
    h.sample(5.5);
    h.sample(9.99);
    h.sample(-3.0); // clamps to first bin
    h.sample(42.0); // clamps to last bin
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Stats, GroupCounters)
{
    stats::Group g("test");
    g.add("a", 1.0);
    g.add("a", 2.0);
    g.set("b", 7.0);
    EXPECT_DOUBLE_EQ(g.get("a"), 3.0);
    EXPECT_DOUBLE_EQ(g.get("b"), 7.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
    EXPECT_TRUE(g.has("a"));
    EXPECT_FALSE(g.has("missing"));

    stats::Group other;
    other.add("a", 10.0);
    g.merge(other);
    EXPECT_DOUBLE_EQ(g.get("a"), 13.0);
}

TEST(Table, RendersAligned)
{
    Table t({"col", "value"});
    t.addRow({"x", "1.00"});
    t.addRow({"longer", "2.50"});
    const std::string out = t.render();
    EXPECT_NE(out.find("col |"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // All rows render to the same width.
    std::size_t first_len = out.find('\n');
    for (std::size_t pos = 0; pos < out.size();) {
        const std::size_t next = out.find('\n', pos);
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::mult(3.9399, 2), "3.94x");
    EXPECT_EQ(Table::pct(0.465, 1), "46.5%");
}

TEST(ParallelFor, SlotResultsMatchTheSerialLoop)
{
    // Each iteration writes only its own slot, so the parallel sweep
    // must be bit-identical to the serial one — the property the
    // bench harnesses rely on for seeded determinism.
    const std::size_t n = 257;
    auto cell = [](std::size_t i) {
        Rng rng(1000 + i); // per-cell seed, like a sweep cell
        double acc = 0.0;
        for (int k = 0; k < 50; ++k)
            acc += rng.uniform();
        return acc;
    };
    std::vector<double> serial(n);
    for (std::size_t i = 0; i < n; ++i)
        serial[i] = cell(i);
    for (std::size_t threads : {1u, 4u, 16u}) {
        std::vector<double> parallel(n);
        common::parallelFor(
            n, threads, [&](std::size_t i) { parallel[i] = cell(i); });
        EXPECT_EQ(serial, parallel) << threads << " threads";
    }
}

TEST(ParallelFor, ExecutesEveryIndexExactlyOnce)
{
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    common::parallelFor(n, 8, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EdgeSizes)
{
    common::parallelFor(0, 4, [](std::size_t) { FAIL(); });
    int calls = 0;
    common::parallelFor(1, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
    // More workers than work: excess workers find nothing to claim.
    std::atomic<int> done{0};
    common::parallelFor(2, 16, [&](std::size_t) { ++done; });
    EXPECT_EQ(done.load(), 2);
    EXPECT_GE(common::defaultParallelism(), 1u);
}

TEST(ParallelFor, RethrowsTheFirstWorkerException)
{
    EXPECT_THROW(common::parallelFor(
                     64, 4,
                     [](std::size_t i) {
                         if (i == 13)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
}

} // namespace
} // namespace kelle
