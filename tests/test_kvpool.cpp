/**
 * @file
 * The paged KV pool (ISSUE 8), bottom to top:
 *
 *  - KvPagePoolCore: free-list exhaustion/reuse determinism, refcount
 *    and copy-on-write correctness over shared prefixes with frozen
 *    partial tails, cached-prefix retention and oldest-first reclaim,
 *    acquire rollback, page-granular tail shrinking.
 *  - PagedAllocator: floor-only admission with lazy growth, the
 *    growth-failure budget clamp (never below the floor), quantized
 *    page byte accounting tied to the QuantizedGroups layout.
 *  - PagedServing: paged-vs-contiguous report equality when paging
 *    cannot matter (sharing off, one page covers any grant, generous
 *    pool), INT8/INT4 page capacity scaling, the sessions knob's
 *    byte-identical arrival stream.
 *  - PagedDeterminism: paged + sessions cluster runs are bit-identical
 *    across thread counts and fastSim on/off, reports and trace bytes
 *    alike (the contract that lets paged mode ride the parallel
 *    engine and the fast-forward path).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.hpp"
#include "kvcache/kv_page_pool.hpp"
#include "obs/trace.hpp"
#include "serving/kv_budget_allocator.hpp"
#include "serving/request_generator.hpp"
#include "serving/scheduler.hpp"
#include "tensor/quant.hpp"

namespace kelle {
namespace {

kv::KvPagePoolConfig
poolConfig(std::size_t pages, std::size_t block, bool share = true)
{
    kv::KvPagePoolConfig cfg;
    cfg.totalPages = pages;
    cfg.blockTokens = block;
    cfg.bytesPerPage = static_cast<double>(block);
    cfg.sharePrefixes = share;
    return cfg;
}

// ---- KvPagePoolCore ------------------------------------------------

TEST(KvPagePoolCore, ExhaustionReuseAndRepeatDeterminism)
{
    // The same operation sequence must map to the same page/chain ids
    // and counters on every run: drive two pools in lockstep.
    kv::KvPagePool a(poolConfig(8, 4));
    kv::KvPagePool b(poolConfig(8, 4));

    std::vector<std::size_t> chains_a, chains_b;
    for (int i = 0; i < 8; ++i) {
        const auto ra = a.acquire(4);
        const auto rb = b.acquire(4);
        ASSERT_TRUE(ra.ok);
        EXPECT_EQ(ra.chainId, rb.chainId);
        EXPECT_EQ(ra.capacityTokens, 4u);
        chains_a.push_back(ra.chainId);
        chains_b.push_back(rb.chainId);
    }
    EXPECT_EQ(a.freePages(), 0u);
    EXPECT_EQ(a.usedPages(), 8u);

    // Exhausted: the ninth acquire fails and rolls back cleanly.
    EXPECT_FALSE(a.acquire(4).ok);
    EXPECT_FALSE(b.acquire(4).ok);
    EXPECT_EQ(a.freePages(), 0u);

    // Release two chains; the freed pages and chain ids come back in
    // LIFO order, identically in both pools.
    a.release(chains_a[2]);
    a.release(chains_a[5]);
    b.release(chains_b[2]);
    b.release(chains_b[5]);
    EXPECT_EQ(a.freePages(), 2u);
    const auto ra = a.acquire(8);
    const auto rb = b.acquire(8);
    ASSERT_TRUE(ra.ok);
    EXPECT_EQ(ra.chainId, rb.chainId);
    EXPECT_EQ(ra.capacityTokens, 8u);
    EXPECT_EQ(a.freePages(), 0u);
    EXPECT_EQ(a.peakUsedPages(), b.peakUsedPages());
}

TEST(KvPagePoolCore, AcquireRollbackLeavesPoolUntouched)
{
    kv::KvPagePool pool(poolConfig(4, 4));
    const auto big = pool.acquire(32); // 8 pages > 4
    EXPECT_FALSE(big.ok);
    EXPECT_EQ(pool.freePages(), 4u);
    // The pool still serves a fitting request afterwards.
    EXPECT_TRUE(pool.acquire(16).ok);
    EXPECT_EQ(pool.freePages(), 0u);
}

TEST(KvPagePoolCore, PrefixShareFrozenTailAndCow)
{
    kv::KvPagePool pool(poolConfig(16, 4));
    constexpr std::uint64_t kKey = 0xfeedULL;

    // Owner holds 10 tokens over 3 pages and publishes all of them:
    // the third page is partial (tokens 8..9), so sharers freeze at 10.
    const auto owner = pool.acquire(10);
    ASSERT_TRUE(owner.ok);
    EXPECT_EQ(owner.capacityTokens, 12u);
    pool.publishPrefix(owner.chainId, kKey, 10);
    EXPECT_EQ(pool.sharedPages(), 3u);

    const std::size_t used_before = pool.usedPages();
    const auto sharer = pool.acquire(10, kKey, 10);
    ASSERT_TRUE(sharer.ok);
    EXPECT_EQ(sharer.prefixHitTokens, 10u);
    // Copy-free: the sharer's floor is covered entirely by attached
    // pages, frozen at the published token count.
    EXPECT_EQ(sharer.capacityTokens, 10u);
    EXPECT_EQ(pool.usedPages(), used_before);
    EXPECT_EQ(pool.prefixHitTokens(), 10u);

    // First divergent append past the frozen boundary copies the
    // partial tail page; fully covered pages are never copied.
    EXPECT_TRUE(pool.grow(sharer.chainId, 11));
    EXPECT_EQ(pool.cowCopies(), 1u);
    EXPECT_EQ(pool.capacityTokens(sharer.chainId), 12u);
    EXPECT_EQ(pool.usedPages(), used_before + 1);
    EXPECT_EQ(pool.sharedPages(), 3u);
}

TEST(KvPagePoolCore, ReleasedPrefixStaysCachedUntilPressure)
{
    kv::KvPagePool pool(poolConfig(6, 4));
    constexpr std::uint64_t kKey = 77;

    const auto owner = pool.acquire(8); // 2 pages
    ASSERT_TRUE(owner.ok);
    pool.publishPrefix(owner.chainId, kKey, 8);
    pool.release(owner.chainId);

    // The index alone holds the pages: cached, not freed.
    EXPECT_EQ(pool.cachedPages(), 2u);
    EXPECT_EQ(pool.freePages(), 4u);
    EXPECT_EQ(pool.availablePages(), 6u);

    // A later request still hits the cached prefix copy-free.
    const auto hit = pool.acquire(8, kKey, 8);
    ASSERT_TRUE(hit.ok);
    EXPECT_EQ(hit.prefixHitTokens, 8u);
    EXPECT_EQ(pool.cachedPages(), 0u);
    pool.release(hit.chainId);
    EXPECT_EQ(pool.cachedPages(), 2u);

    // Exhaustion evicts the cached entry (oldest publish first) to
    // refill the free list; the allocation then succeeds.
    const auto big = pool.acquire(24); // 6 pages > 4 free
    ASSERT_TRUE(big.ok);
    EXPECT_EQ(pool.cachedReclaims(), 1u);
    EXPECT_EQ(pool.cachedPages(), 0u);
    EXPECT_EQ(pool.freePages(), 0u);
    // The evicted key no longer hits.
    pool.release(big.chainId);
    EXPECT_EQ(pool.acquire(8, kKey, 8).prefixHitTokens, 0u);
}

TEST(KvPagePoolCore, ShrinkToFreesOwnTailPagesOnly)
{
    kv::KvPagePool pool(poolConfig(16, 4));
    constexpr std::uint64_t kKey = 5;

    const auto owner = pool.acquire(8);
    ASSERT_TRUE(owner.ok);
    pool.publishPrefix(owner.chainId, kKey, 8);

    const auto sharer = pool.acquire(8, kKey, 8);
    ASSERT_TRUE(sharer.ok);
    ASSERT_TRUE(pool.grow(sharer.chainId, 20)); // +3 own pages
    const std::size_t used = pool.usedPages();

    // Shrinking to the shared boundary frees only the 3 owned pages;
    // attached prefix pages are kept even when `tokens` is lower.
    EXPECT_EQ(pool.shrinkTo(sharer.chainId, 0), 3u);
    EXPECT_EQ(pool.capacityTokens(sharer.chainId), 8u);
    EXPECT_EQ(pool.usedPages(), used - 3);
    // The owner's pages were never touched.
    EXPECT_EQ(pool.capacityTokens(owner.chainId), 8u);
}

// ---- PagedAllocator ------------------------------------------------

serving::AllocatorConfig
pagedAllocatorConfig(std::size_t pages, std::size_t block)
{
    serving::AllocatorConfig cfg;
    cfg.bytesPerToken = 2.0;
    cfg.capacityBytes =
        static_cast<double>(pages * block) * cfg.bytesPerToken;
    cfg.highWatermark = 1.0;
    cfg.pagedTotalPages = pages;
    cfg.pagedBlockTokens = block;
    return cfg;
}

TEST(PagedAllocator, FloorOnlyAdmissionWithLazyGrowth)
{
    serving::KvBudgetAllocator alloc(pagedAllocatorConfig(8, 4));
    auto g = alloc.tryAdmit(/*requested=*/32, /*min=*/4);
    ASSERT_TRUE(g.admitted);
    // The budget is the full request, but only the floor's page is
    // physically held.
    EXPECT_EQ(g.budgetTokens, 32u);
    EXPECT_EQ(g.chainCapacityTokens, 4u);
    EXPECT_EQ(alloc.pagePool()->usedPages(), 1u);

    EXPECT_TRUE(alloc.growChain(g, 12));
    EXPECT_EQ(g.chainCapacityTokens, 12u);
    EXPECT_EQ(alloc.pagePool()->usedPages(), 3u);
    alloc.release(g);
    EXPECT_EQ(alloc.pagePool()->usedPages(), 0u);
}

TEST(PagedAllocator, GrowthFailureClampsBudgetNeverBelowFloor)
{
    serving::KvBudgetAllocator alloc(pagedAllocatorConfig(4, 4));
    auto a = alloc.tryAdmit(64, 4);
    auto b = alloc.tryAdmit(64, 4);
    ASSERT_TRUE(a.admitted && b.admitted);

    // Chain a takes the remaining two pages; b's growth then fails at
    // its best-effort capacity and the caller clamps the budget.
    EXPECT_TRUE(alloc.growChain(a, 12));
    EXPECT_FALSE(alloc.growChain(b, 12));
    EXPECT_EQ(b.chainCapacityTokens, 4u);
    alloc.shrinkBudget(b, b.chainCapacityTokens);
    EXPECT_EQ(b.budgetTokens, 4u);
    EXPECT_GE(b.budgetTokens, 4u); // never below the admitted floor
    EXPECT_EQ(alloc.budgetClips(), 1u);

    // Page-granular reclaim: a's idle tail pages free b's growth.
    EXPECT_EQ(alloc.shrinkChainTo(a, 4), 2u);
    EXPECT_EQ(alloc.tailReclaims(), 1u);
    EXPECT_EQ(alloc.reclaimedPages(), 2u);
    EXPECT_TRUE(alloc.growChain(b, 12));
}

TEST(PagedAllocator, DeferralWhenFloorExceedsAvailablePages)
{
    serving::KvBudgetAllocator alloc(pagedAllocatorConfig(2, 4));
    auto a = alloc.tryAdmit(8, 8);
    ASSERT_TRUE(a.admitted);
    EXPECT_EQ(alloc.availableTokens(), 0u);
    EXPECT_FALSE(alloc.tryAdmit(8, 8).admitted);
    EXPECT_EQ(alloc.deferrals(), 1u);
    alloc.release(a);
    EXPECT_TRUE(alloc.tryAdmit(8, 8).admitted);
}

TEST(PagedAllocator, QuantizedPageBytesMatchGroupLayout)
{
    // The page byte formula must equal the QuantizedGroups storage it
    // models: packed payload plus one fp32 scale and zero per group.
    const std::size_t n = 1024;
    const std::size_t group = 32;
    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = 0.01f * static_cast<float>(i % 97) - 0.3f;
    for (int bits : {4, 8}) {
        const tensor::QuantizedGroups q =
            tensor::quantizeGroups(x, bits, group);
        const double packed_payload =
            static_cast<double>(q.q.size() * static_cast<std::size_t>(bits)) /
            8.0;
        const double metadata =
            4.0 * static_cast<double>(q.scales.size() + q.zeros.size());
        EXPECT_DOUBLE_EQ(tensor::quantizedStoreBytes(n, bits, group),
                         packed_payload + metadata)
            << "bits " << bits;
    }
    // 16-bit pages are dense with no metadata.
    EXPECT_DOUBLE_EQ(tensor::quantizedStoreBytes(n, 16, group),
                     2.0 * static_cast<double>(n));
}

// ---- PagedServing --------------------------------------------------

std::vector<std::pair<sim::Task, double>>
tinyMix()
{
    return {{sim::scaledForTiny(sim::lambada(), 96), 1.0},
            {sim::scaledForTiny(sim::triviaQa(), 128), 1.0}};
}

serving::ServingConfig
tinyServingConfig(std::uint64_t seed = 42)
{
    serving::ServingConfig cfg;
    cfg.model = model::tinyLm();
    cfg.system = accel::kelleEdramSystem(2048);
    cfg.policy = serving::SchedulePolicy::ContinuousBatching;
    cfg.maxBatch = 4;
    cfg.poolTokens = 16384;
    cfg.highWatermark = 1.0;
    cfg.traffic.ratePerSec = 0.2;
    cfg.traffic.seed = seed;
    cfg.traffic.numRequests = 12;
    cfg.traffic.mix = tinyMix();
    return cfg;
}

TEST(PagedServing, MatchesContiguousWhenPagingCannotMatter)
{
    // Sharing off, one page covers any grant, pool generous enough
    // that nothing defers, clips or shrinks: the paged run must
    // reproduce the contiguous run's observable results exactly.
    serving::ServingConfig contig = tinyServingConfig();
    serving::ServingConfig paged = contig;
    paged.paged.enabled = true;
    paged.paged.blockTokens = 2048;
    paged.paged.sharePrefixes = false;

    const auto c = serving::Scheduler(contig).run();
    const auto p = serving::Scheduler(paged).run();

    EXPECT_EQ(c.summary.completed, p.summary.completed);
    EXPECT_EQ(c.summary.rejected, p.summary.rejected);
    EXPECT_EQ(c.summary.makespan.sec(), p.summary.makespan.sec());
    EXPECT_EQ(c.summary.ttftP95, p.summary.ttftP95);
    EXPECT_EQ(c.summary.tpotMean, p.summary.tpotMean);
    EXPECT_EQ(c.summary.goodputTokensPerSec,
              p.summary.goodputTokensPerSec);
    EXPECT_EQ(c.summary.energy.total().j(), p.summary.energy.total().j());
    EXPECT_EQ(c.engineSteps, p.engineSteps);
    EXPECT_EQ(c.decodeSteps, p.decodeSteps);
    EXPECT_EQ(c.prefills, p.prefills);
    EXPECT_EQ(c.deferrals, p.deferrals);
    EXPECT_EQ(c.shrunkGrants, p.shrunkGrants);
    EXPECT_EQ(c.peakLogicalTokens, p.peakLogicalTokens);
    EXPECT_TRUE(p.paged.enabled);
    EXPECT_EQ(p.paged.budgetClips, 0u);
    EXPECT_EQ(p.paged.cowCopies, 0u);
}

TEST(PagedServing, QuantizedPagesMultiplyDerivedTokenCapacity)
{
    // With the pool derived from device DRAM (poolTokens = 0), INT8
    // and INT4 pages fit more pages — and thus more tokens — into the
    // same bytes.
    auto pagesAt = [](int bits) {
        serving::ServingConfig cfg = tinyServingConfig();
        cfg.poolTokens = 0;
        cfg.traffic.numRequests = 2;
        cfg.paged.enabled = true;
        cfg.paged.quantBits = bits;
        return serving::Scheduler(cfg).run().paged.totalPages;
    };
    const std::size_t p16 = pagesAt(0);
    const std::size_t p8 = pagesAt(8);
    const std::size_t p4 = pagesAt(4);
    // Group metadata (8 bytes per 32 values) prices INT8 pages at
    // 1.25 B/value and INT4 at 0.75 B/value vs 2 B dense, so the
    // ideal page-count ratios are 1.6x and 2.67x.
    EXPECT_GT(static_cast<double>(p8), 1.55 * static_cast<double>(p16));
    EXPECT_GT(static_cast<double>(p4), 2.6 * static_cast<double>(p16));
}

TEST(PagedServing, SessionsKnobKeepsArrivalStreamByteIdentical)
{
    serving::TrafficConfig traffic;
    traffic.ratePerSec = 0.1;
    traffic.numRequests = 24;
    traffic.mix = tinyMix();
    const auto plain = serving::generateTrace(traffic);
    traffic.sessions = 4;
    const auto with_sessions = serving::generateTrace(traffic);

    ASSERT_EQ(plain.size(), with_sessions.size());
    bool any_key = false;
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].arrival.sec(),
                  with_sessions[i].arrival.sec());
        EXPECT_EQ(plain[i].task.name, with_sessions[i].task.name);
        EXPECT_EQ(plain[i].prefixKey, 0u);
        EXPECT_EQ(plain[i].prefixLen, 0u);
        if (with_sessions[i].prefixKey != 0) {
            any_key = true;
            EXPECT_GT(with_sessions[i].prefixLen, 0u);
            EXPECT_LT(with_sessions[i].prefixLen,
                      with_sessions[i].task.ctxLen);
        }
    }
    EXPECT_TRUE(any_key);
    // Same config, same stream: the session assignment is seeded.
    const auto rerun = serving::generateTrace(traffic);
    for (std::size_t i = 0; i < rerun.size(); ++i) {
        EXPECT_EQ(rerun[i].prefixKey, with_sessions[i].prefixKey);
        EXPECT_EQ(rerun[i].prefixLen, with_sessions[i].prefixLen);
    }
}

TEST(PagedServing, SharedPrefixesRaiseResidentTokensOnTightPool)
{
    // The headline claim at test scale: same trace, same tight pool —
    // prefix sharing stores each session's system prompt once, so the
    // pool holds more logical resident tokens at peak.
    serving::ServingConfig cfg = tinyServingConfig();
    cfg.maxBatch = 12;     // batch slots outnumber what the pool holds
    cfg.poolTokens = 256;  // ... so the pool is the binding constraint
    cfg.highWatermark = 0.85;
    cfg.budgetOverride = 48; // N' large enough for multi-page prefixes
    cfg.traffic.ratePerSec = 2000.0; // saturating arrivals
    cfg.traffic.numRequests = 32;
    cfg.traffic.sessions = 1;
    cfg.traffic.sessionPrefixFrac = 0.9;

    serving::ServingConfig paged = cfg;
    paged.paged.enabled = true;
    paged.paged.blockTokens = 8;

    const auto contig = serving::Scheduler(cfg).run();
    const auto shared = serving::Scheduler(paged).run();
    EXPECT_GT(shared.paged.prefixHitTokens, 0u);
    EXPECT_GT(shared.peakLogicalTokens, contig.peakLogicalTokens);
}

// ---- PagedDeterminism ----------------------------------------------

cluster::ClusterConfig
pagedClusterConfig(std::size_t threads, bool fast_sim)
{
    serving::ServingConfig cfg = tinyServingConfig();
    cfg.maxBatch = 12;
    cfg.poolTokens = 256; // tight: growth, clips and reclaims fire
    cfg.budgetOverride = 48;
    cfg.traffic.ratePerSec = 5000.0; // split across 2 devices
    cfg.traffic.numRequests = 32;
    cfg.traffic.sessions = 2;
    cfg.traffic.sessionPrefixFrac = 0.9;
    cfg.fastSim = fast_sim;
    cfg.paged.enabled = true;
    cfg.paged.blockTokens = 8;
    cluster::ClusterConfig ccfg = cluster::clusterConfigFrom(
        cfg, 2, cluster::DispatchKind::JoinShortestKv);
    ccfg.threads = threads;
    return ccfg;
}

void
expectPagedReportsEqual(const serving::ServingReport &a,
                        const serving::ServingReport &b,
                        const std::string &label)
{
    EXPECT_EQ(a.summary.completed, b.summary.completed) << label;
    EXPECT_EQ(a.summary.makespan.sec(), b.summary.makespan.sec())
        << label;
    EXPECT_EQ(a.summary.ttftP95, b.summary.ttftP95) << label;
    EXPECT_EQ(a.summary.goodputTokensPerSec,
              b.summary.goodputTokensPerSec)
        << label;
    EXPECT_EQ(a.summary.energy.total().j(), b.summary.energy.total().j())
        << label;
    EXPECT_EQ(a.engineSteps, b.engineSteps) << label;
    EXPECT_EQ(a.decodeSteps, b.decodeSteps) << label;
    EXPECT_EQ(a.deferrals, b.deferrals) << label;
    EXPECT_EQ(a.peakLogicalTokens, b.peakLogicalTokens) << label;
    EXPECT_EQ(a.paged.peakUsedPages, b.paged.peakUsedPages) << label;
    EXPECT_EQ(a.paged.peakSharedPages, b.paged.peakSharedPages)
        << label;
    EXPECT_EQ(a.paged.prefixHitTokens, b.paged.prefixHitTokens)
        << label;
    EXPECT_EQ(a.paged.cowCopies, b.paged.cowCopies) << label;
    EXPECT_EQ(a.paged.cachedReclaims, b.paged.cachedReclaims) << label;
    EXPECT_EQ(a.paged.tailReclaims, b.paged.tailReclaims) << label;
    EXPECT_EQ(a.paged.reclaimedPages, b.paged.reclaimedPages) << label;
    EXPECT_EQ(a.paged.budgetClips, b.paged.budgetClips) << label;
}

TEST(PagedDeterminism, ReportsBitIdenticalAcrossThreadsAndFastSim)
{
    const auto baseline =
        cluster::ClusterEngine(pagedClusterConfig(1, true)).run();
    // The tight pool must actually exercise the paged machinery, or
    // this test pins nothing.
    EXPECT_GT(baseline.aggregate.paged.prefixHitTokens, 0u);
    EXPECT_GT(baseline.aggregate.paged.budgetClips +
                  baseline.aggregate.paged.tailReclaims,
              0u);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        const auto par =
            cluster::ClusterEngine(pagedClusterConfig(threads, true))
                .run();
        expectPagedReportsEqual(
            baseline.aggregate, par.aggregate,
            "threads " + std::to_string(threads));
    }
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const auto oracle =
            cluster::ClusterEngine(pagedClusterConfig(threads, false))
                .run();
        expectPagedReportsEqual(
            baseline.aggregate, oracle.aggregate,
            "fastSim off, threads " + std::to_string(threads));
    }
}

TEST(PagedDeterminism, TraceBytesIdenticalAcrossThreadsAndFastSim)
{
    const auto traced = [](std::size_t threads, bool fast_sim) {
        obs::TraceRecorder rec;
        cluster::ClusterConfig cfg =
            pagedClusterConfig(threads, fast_sim);
        cfg.engine.trace = &rec;
        cluster::ClusterEngine(cfg).run();
        return rec.toJson();
    };
    const std::string serial = traced(1, true);
    EXPECT_FALSE(serial.empty());
    EXPECT_NE(serial.find("kv_pages_free"), std::string::npos);
    EXPECT_NE(serial.find("kv_prefix_hit_tokens"), std::string::npos);
    EXPECT_EQ(serial, traced(2, true));
    EXPECT_EQ(serial, traced(4, true));
    EXPECT_EQ(serial, traced(1, false));
    EXPECT_EQ(serial, traced(4, false));
}

} // namespace
} // namespace kelle
