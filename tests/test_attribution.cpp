/**
 * @file
 * The SLO root-cause attribution layer's contracts (obs/attribution,
 * obs/trace_reader):
 *
 *  - AttributionMath: `exactRemainder` really is the bitwise fixpoint
 *    of the fold identity, and `classifyMiss` implements the bucket
 *    mapping and tie-break order the docs promise.
 *  - WaterfallInvariants: for EVERY terminal request across policy x
 *    chunking x paged x dispatch x preempt sweeps, the first four
 *    components fold *bitwise* to the measured TTFT and all eight to
 *    the measured E2E; rejects are pure queue wait; report roll-ups
 *    agree with the per-entry table.
 *  - AttributionDeterminism: the full waterfall table (every stamp,
 *    component and cause) is bit-identical across ClusterConfig::
 *    threads {1, 2, 4} and fastSim on/off, and the trace recorded
 *    with attribution on keeps the same byte-identity.
 *  - TraceReaderRoundTrip: every trace the engines emit parses with
 *    zero unknown/malformed events and zero batch mismatches (the
 *    C++ replacement for the CI jq checks); offline waterfalls obey
 *    the same bitwise fold identity in microsecond space and agree
 *    with the online report on terminal/completed/rejected counts;
 *    corrupted documents are detected, not silently skipped.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "obs/attribution.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "serving/scheduler.hpp"

using namespace kelle;

namespace {

// ---- AttributionMath -----------------------------------------------

TEST(AttributionMath, ExactRemainderIsBitwiseFixpoint)
{
    // Pairs chosen to make the naive rounded difference miss the
    // fixpoint by an ulp in at least some cases; the contract is
    // checked with exact double equality.
    const double pairs[][2] = {
        {1.0, 0.1 + 0.2},         {123456.789, 123456.0},
        {3.0, 3.0},               {1e-9, 1e-10},
        {17.25, 0.0},             {2.0e3, 1999.9999999999998},
        {0.30000000000000004, 0.1},
    };
    for (const auto &p : pairs) {
        const double r = obs::exactRemainder(p[0], p[1]);
        EXPECT_EQ(p[1] + r, p[0]) << "total " << p[0] << " partial "
                                  << p[1];
    }
    // A deterministic pseudo-random sweep over fold closures. The
    // remainder alone cannot always reach the fixpoint (round-to-even
    // can park every candidate sum on a midpoint when the partial is
    // below total/2), so the production path — closeFold, which may
    // donate an ulp from an earlier component — is what must close
    // every fold bitwise.
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 1000; ++i) {
        double c[4] = {};
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        const double total =
            static_cast<double>(s >> 11) / 9.0e15 * 100.0;
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        c[0] = total * (static_cast<double>(s >> 11) / 9.0e15) * 0.5;
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        c[1] = total * (static_cast<double>(s >> 11) / 9.0e15) * 0.5;
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        c[2] = total * (static_cast<double>(s >> 11) / 9.0e15) * 0.25;
        obs::closeFold(total, c, 3);
        ASSERT_EQ(obs::foldComponents(c, 4), total) << "iter " << i;
    }
}

TEST(AttributionMath, FoldIsLeftToRight)
{
    const double c[obs::kLatencyComponentCount] = {1e-16, 1.0, -1e-16,
                                                   2.0,   0.5, 0.25,
                                                   0.125, 0.0625};
    double s = 0.0;
    for (std::size_t i = 0; i < obs::kLatencyComponentCount; ++i) {
        s += c[i];
        EXPECT_EQ(obs::foldComponents(c, i + 1), s);
    }
}

TEST(AttributionMath, ClassifyMissBucketsAndTieBreaks)
{
    using obs::MissCause;
    double c[obs::kLatencyComponentCount] = {};
    // Rejected wins over everything.
    c[0] = 100.0;
    EXPECT_EQ(obs::classifyMiss(true, true, true, c),
              MissCause::OverloadReject);
    // No miss -> None even with big components.
    EXPECT_EQ(obs::classifyMiss(false, false, false, c),
              MissCause::None);

    const auto only = [&](std::size_t i, double v) {
        std::memset(c, 0, sizeof c);
        c[i] = v;
    };
    // TTFT miss: queue_wait -> Queue, kv_stall -> KvPressure,
    // chunk_interleave -> Interference, prefill_compute -> Compute.
    only(0, 5.0);
    EXPECT_EQ(obs::classifyMiss(false, true, false, c),
              MissCause::Queue);
    only(1, 5.0);
    EXPECT_EQ(obs::classifyMiss(false, true, false, c),
              MissCause::KvPressure);
    only(3, 5.0);
    EXPECT_EQ(obs::classifyMiss(false, true, false, c),
              MissCause::Interference);
    only(2, 5.0);
    EXPECT_EQ(obs::classifyMiss(false, true, false, c),
              MissCause::Compute);
    // TPOT miss: preempt_loss -> Preempt, decode_compute -> Compute,
    // batch_interference + decode_stall -> Interference.
    only(6, 5.0);
    EXPECT_EQ(obs::classifyMiss(false, false, true, c),
              MissCause::Preempt);
    only(4, 5.0);
    EXPECT_EQ(obs::classifyMiss(false, false, true, c),
              MissCause::Compute);
    std::memset(c, 0, sizeof c);
    c[5] = 2.0;
    c[7] = 2.0;
    c[6] = 3.9; // loses to 2 + 2 interference
    EXPECT_EQ(obs::classifyMiss(false, false, true, c),
              MissCause::Interference);
    // A TPOT-only miss must not be blamed on pre-first-token time.
    std::memset(c, 0, sizeof c);
    c[0] = 100.0; // enormous queue wait, but TTFT was met
    c[4] = 1.0;
    EXPECT_EQ(obs::classifyMiss(false, false, true, c),
              MissCause::Compute);
    // Exact tie -> earliest in (queue, kv, interference, preempt,
    // compute) order.
    std::memset(c, 0, sizeof c);
    c[0] = 2.0;
    c[1] = 2.0;
    EXPECT_EQ(obs::classifyMiss(false, true, false, c),
              MissCause::Queue);
}

// ---- Shared run helpers --------------------------------------------

/** Single-device serving run with attribution attached; the small
 *  pool forces deferrals so c2 is exercised. */
serving::ServingReport
runServing(obs::LatencyWaterfall &wf, serving::SchedulePolicy policy,
           std::size_t chunk_tokens, bool paged, std::size_t sessions)
{
    serving::ServingConfig cfg;
    cfg.traffic.ratePerSec = 0.05;
    cfg.traffic.numRequests = 16;
    cfg.traffic.seed = 42;
    cfg.traffic.sessions = sessions;
    cfg.policy = policy;
    cfg.chunkTokens = chunk_tokens;
    cfg.paged.enabled = paged;
    cfg.poolTokens = 6144;
    cfg.maxBatch = 8;
    cfg.waterfall = &wf;
    serving::Scheduler engine(cfg);
    return engine.run();
}

/** 2-device hetero cluster run with attribution attached. The
 *  preempt variant mirrors the bench preemption study: a TPOT target
 *  near the achievable mean plus quartered KV pools, so decodes
 *  actually become doomed and reclamation fires. */
cluster::ClusterReport
runCluster(obs::LatencyWaterfall &wf, cluster::DispatchKind dispatch,
           bool preempt, std::size_t threads, bool fast_sim,
           obs::TraceRecorder *rec = nullptr)
{
    cluster::ClusterConfig cfg;
    cfg.engine.traffic.ratePerSec = preempt ? 0.08 : 0.05;
    cfg.engine.traffic.numRequests = 14;
    cfg.engine.traffic.seed = 42;
    cfg.engine.fastSim = fast_sim;
    cfg.engine.preempt.enabled = preempt;
    cfg.engine.waterfall = &wf;
    cfg.engine.trace = rec;
    cfg.dispatch = dispatch;
    cfg.devices = cluster::heteroEdramSramFleet(2, 2048, 8192, 4096, 8);
    if (preempt) {
        cfg.engine.traffic.slo.tpotSec = 0.15;
        for (auto &d : cfg.devices)
            d.poolTokens = std::max<std::size_t>(1, d.poolTokens / 4);
    }
    cfg.threads = threads;
    cluster::ClusterEngine engine(cfg);
    return engine.run();
}

/** The bitwise fold identity plus structural sanity, per entry. */
void
checkEntries(const obs::LatencyWaterfall &wf, const char *what)
{
    std::size_t terminal = 0;
    for (const obs::WaterfallEntry &e : wf.entries()) {
        if (!e.terminal)
            continue;
        ++terminal;
        const double *c = e.components;
        EXPECT_EQ(obs::foldComponents(c, 4), e.ttftSec)
            << what << " req " << e.reqId;
        EXPECT_EQ(obs::foldComponents(c, obs::kLatencyComponentCount),
                  e.e2eSec)
            << what << " req " << e.reqId;
        if (e.rejected) {
            EXPECT_EQ(e.cause, obs::MissCause::OverloadReject);
            for (std::size_t i = 1; i < obs::kLatencyComponentCount;
                 ++i)
                EXPECT_EQ(c[i], 0.0) << what << " req " << e.reqId;
        } else {
            EXPECT_GE(e.e2eSec, e.ttftSec) << what << " req " << e.reqId;
            EXPECT_EQ(e.cause == obs::MissCause::None,
                      !e.missedTtft && !e.missedTpot)
                << what << " req " << e.reqId;
        }
        if (!e.deferred) {
            EXPECT_EQ(c[1], 0.0);
        }
        if (!e.preempted) {
            EXPECT_EQ(c[6], 0.0);
        }
    }
    EXPECT_GT(terminal, 0u) << what;
}

/** Report roll-up must agree with an index-order re-accumulation. */
void
checkReportAgainstEntries(const obs::LatencyWaterfall &wf,
                          const obs::AttributionReport &rep)
{
    obs::AttributionReport want;
    std::size_t misses = 0;
    for (const obs::WaterfallEntry &e : wf.entries()) {
        if (!e.terminal)
            continue;
        ++want.terminal;
        for (std::size_t i = 0; i < obs::kLatencyComponentCount; ++i)
            want.componentTotals[i] += e.components[i];
        ++want.missCounts[static_cast<std::size_t>(e.cause)];
        if (e.cause != obs::MissCause::None)
            ++misses;
    }
    EXPECT_EQ(rep.terminal, want.terminal);
    EXPECT_EQ(rep.misses, misses);
    EXPECT_EQ(rep.completed + rep.rejected, rep.terminal);
    for (std::size_t i = 0; i < obs::kLatencyComponentCount; ++i)
        EXPECT_EQ(rep.componentTotals[i], want.componentTotals[i]);
    for (std::size_t i = 0; i < obs::kMissCauseCount; ++i)
        EXPECT_EQ(rep.missCounts[i], want.missCounts[i]);
    // Per-device slices partition the aggregate exactly.
    std::size_t dev_terminal = 0;
    for (const auto &d : rep.devices)
        dev_terminal += d.terminal;
    EXPECT_EQ(dev_terminal, rep.terminal);
}

// ---- WaterfallInvariants -------------------------------------------

TEST(WaterfallInvariants, EveryPolicySumsBitwise)
{
    for (serving::SchedulePolicy policy :
         serving::allSchedulePolicies()) {
        for (std::size_t chunk : {std::size_t{0}, std::size_t{256}}) {
            obs::LatencyWaterfall wf;
            const serving::ServingReport rep =
                runServing(wf, policy, chunk, false, 0);
            const std::string what = toString(policy) + "/chunk" +
                                     std::to_string(chunk);
            checkEntries(wf, what.c_str());
            checkReportAgainstEntries(wf, rep.attribution);
        }
    }
}

TEST(WaterfallInvariants, PagedSessionsSumBitwise)
{
    obs::LatencyWaterfall wf;
    const serving::ServingReport rep = runServing(
        wf, serving::SchedulePolicy::ContinuousBatching, 0, true, 4);
    checkEntries(wf, "paged+sessions");
    checkReportAgainstEntries(wf, rep.attribution);
    EXPECT_TRUE(rep.paged.enabled);
}

TEST(WaterfallInvariants, ClusterDispatchAndPreemptSumBitwise)
{
    for (cluster::DispatchKind dispatch :
         {cluster::DispatchKind::RoundRobin,
          cluster::DispatchKind::JoinShortestKv,
          cluster::DispatchKind::DeadlineAware}) {
        for (bool preempt : {false, true}) {
            obs::LatencyWaterfall wf;
            const cluster::ClusterReport rep =
                runCluster(wf, dispatch, preempt, 1, true);
            const std::string what =
                toString(dispatch) + (preempt ? "/preempt" : "");
            checkEntries(wf, what.c_str());
            checkReportAgainstEntries(
                wf, rep.aggregate.attribution);
        }
    }
}

TEST(WaterfallInvariants, PreemptedVictimChargesPreemptLoss)
{
    // The preempt config really preempts (otherwise the sweep above
    // never exercises c7): at least one terminal entry must carry a
    // positive preempt_loss that still folds exactly. RoundRobin is
    // the dispatch that actually overloads a device at this rate
    // (JoinShortestKv balances its way out of preempting).
    obs::LatencyWaterfall wf;
    const cluster::ClusterReport rep = runCluster(
        wf, cluster::DispatchKind::RoundRobin, true, 1, true);
    EXPECT_GT(rep.aggregate.summary.preemptions, 0u);
    bool saw_preempted = false;
    for (const obs::WaterfallEntry &e : wf.entries()) {
        if (!e.terminal || !e.preempted || e.rejected)
            continue;
        saw_preempted = true;
        EXPECT_GT(e.components[6], 0.0);
    }
    EXPECT_TRUE(saw_preempted);
}

TEST(WaterfallInvariants, DeferralsChargeKvStall)
{
    // The tight pool defers admissions; every deferred completion
    // charges a positive kv_stall.
    obs::LatencyWaterfall wf;
    const serving::ServingReport rep = runServing(
        wf, serving::SchedulePolicy::ContinuousBatching, 0, false, 0);
    EXPECT_GT(rep.deferrals, 0u);
    bool saw_stall = false;
    for (const obs::WaterfallEntry &e : wf.entries()) {
        if (e.terminal && e.deferred && !e.rejected) {
            EXPECT_GE(e.components[1], 0.0);
            saw_stall = saw_stall || e.components[1] > 0.0;
        }
    }
    EXPECT_TRUE(saw_stall);
}

// ---- AttributionDeterminism ----------------------------------------

/** Every stamp/component/cause of every terminal entry, %.17g. */
std::string
dumpEntries(const obs::LatencyWaterfall &wf)
{
    std::string out;
    char buf[512];
    for (const obs::WaterfallEntry &e : wf.entries()) {
        std::snprintf(
            buf, sizeof buf,
            "req %llu dev %u t%d r%d d%d p%d mt%d mp%d cause %s "
            "ttft %.17g e2e %.17g |",
            static_cast<unsigned long long>(e.reqId), e.device,
            e.terminal, e.rejected, e.deferred, e.preempted,
            e.missedTtft, e.missedTpot, obs::toString(e.cause),
            e.ttftSec, e.e2eSec);
        out += buf;
        for (std::size_t i = 0; i < obs::kLatencyComponentCount; ++i) {
            std::snprintf(buf, sizeof buf, " %.17g", e.components[i]);
            out += buf;
        }
        out += '\n';
    }
    return out;
}

TEST(AttributionDeterminism, WaterfallBitIdenticalAcrossThreads)
{
    obs::LatencyWaterfall serial;
    runCluster(serial, cluster::DispatchKind::RoundRobin, true, 1,
               true);
    const std::string want = dumpEntries(serial);
    EXPECT_FALSE(want.empty());
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        obs::LatencyWaterfall wf;
        runCluster(wf, cluster::DispatchKind::RoundRobin, true,
                   threads, true);
        EXPECT_EQ(dumpEntries(wf), want) << threads << " threads";
    }
}

TEST(AttributionDeterminism, WaterfallBitIdenticalAcrossFastSim)
{
    obs::LatencyWaterfall fast;
    runCluster(fast, cluster::DispatchKind::RoundRobin, true, 1,
               true);
    obs::LatencyWaterfall slow;
    runCluster(slow, cluster::DispatchKind::RoundRobin, true, 1,
               false);
    EXPECT_EQ(dumpEntries(fast), dumpEntries(slow));
}

TEST(AttributionDeterminism, TracedRunStaysByteIdentical)
{
    // Attribution adds slo instants to the trace; the enriched trace
    // must ride the same byte-identity contract as the bare one.
    obs::TraceRecorder serial_rec;
    obs::LatencyWaterfall serial_wf;
    runCluster(serial_wf, cluster::DispatchKind::RoundRobin, true,
               1, true, &serial_rec);
    const std::string want = serial_rec.toJson();
    EXPECT_NE(want.find("\"slo\""), std::string::npos);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        obs::TraceRecorder rec;
        obs::LatencyWaterfall wf;
        runCluster(wf, cluster::DispatchKind::RoundRobin, true,
                   threads, true, &rec);
        EXPECT_EQ(rec.toJson(), want) << threads << " threads";
    }
    obs::TraceRecorder slow_rec;
    obs::LatencyWaterfall slow_wf;
    runCluster(slow_wf, cluster::DispatchKind::RoundRobin, true, 1,
               false, &slow_rec);
    EXPECT_EQ(slow_rec.toJson(), want) << "fastSim off";
}

// ---- TraceReaderRoundTrip ------------------------------------------

void
expectCleanParse(const std::string &json, const char *what)
{
    obs::TraceReader reader;
    ASSERT_TRUE(reader.parse(json)) << what;
    EXPECT_GT(reader.stats().events, 0u) << what;
    EXPECT_EQ(reader.stats().unknown, 0u) << what;
    EXPECT_EQ(reader.stats().malformed, 0u) << what;
    EXPECT_EQ(reader.stats().batchMismatches, 0u) << what;
}

TEST(TraceReaderRoundTrip, EveryRecordedTraceParsesClean)
{
    // Cluster with preemption + attribution (slo instants included).
    {
        obs::TraceRecorder rec;
        obs::LatencyWaterfall wf;
        runCluster(wf, cluster::DispatchKind::RoundRobin, true, 1,
                   true, &rec);
        expectCleanParse(rec.toJson(), "cluster preempt");
    }
    // Chunked single-device serving (prefill slices interleave).
    {
        serving::ServingConfig cfg;
        cfg.traffic.ratePerSec = 0.05;
        cfg.traffic.numRequests = 16;
        cfg.traffic.seed = 42;
        cfg.policy = serving::SchedulePolicy::EdfChunked;
        cfg.chunkTokens = 256;
        cfg.poolTokens = 6144;
        cfg.maxBatch = 8;
        obs::TraceRecorder rec;
        obs::LatencyWaterfall wf;
        cfg.trace = &rec;
        cfg.waterfall = &wf;
        serving::Scheduler engine(cfg);
        engine.run();
        expectCleanParse(rec.toJson(), "edf-chunked");
    }
    // Paged + sessions (paged counter tracks in the stream).
    {
        serving::ServingConfig cfg;
        cfg.traffic.ratePerSec = 0.05;
        cfg.traffic.numRequests = 16;
        cfg.traffic.seed = 42;
        cfg.traffic.sessions = 4;
        cfg.paged.enabled = true;
        cfg.poolTokens = 6144;
        cfg.maxBatch = 8;
        obs::TraceRecorder rec;
        cfg.trace = &rec;
        serving::Scheduler engine(cfg);
        engine.run();
        expectCleanParse(rec.toJson(), "paged sessions");
    }
}

TEST(TraceReaderRoundTrip, OfflineWaterfallsFoldBitwise)
{
    obs::TraceRecorder rec;
    obs::LatencyWaterfall wf;
    const cluster::ClusterReport rep = runCluster(
        wf, cluster::DispatchKind::RoundRobin, true, 1, true,
        &rec);
    obs::TraceReader reader;
    ASSERT_TRUE(reader.parse(rec.toJson()));

    std::size_t terminal = 0;
    for (const obs::RequestLife &r : reader.requests()) {
        if (!r.terminal())
            continue;
        ++terminal;
        EXPECT_EQ(obs::foldComponents(r.componentsUs, 4), r.ttftUs)
            << "req " << r.id;
        EXPECT_EQ(obs::foldComponents(r.componentsUs,
                                      obs::kLatencyComponentCount),
                  r.e2eUs)
            << "req " << r.id;
    }
    // Offline and online agree on the terminal population (the
    // waterfalls themselves live in different precisions: sim-time
    // doubles online, %.3f-rounded microseconds offline).
    const obs::AttributionReport &online = rep.aggregate.attribution;
    EXPECT_EQ(terminal, online.terminal);
    EXPECT_EQ(reader.completed, online.completed);
    EXPECT_EQ(reader.rejected, online.rejected);
}

TEST(TraceReaderRoundTrip, CorruptionIsDetected)
{
    obs::TraceRecorder rec;
    obs::LatencyWaterfall wf;
    runCluster(wf, cluster::DispatchKind::JoinShortestKv, false, 1,
               true, &rec);
    const std::string json = rec.toJson();

    // A mangled event line is malformed, not silently dropped.
    std::string broken = json;
    const std::size_t ev = broken.find("\"ph\":");
    ASSERT_NE(ev, std::string::npos);
    broken[ev] = '#';
    obs::TraceReader reader;
    ASSERT_TRUE(reader.parse(broken));
    EXPECT_GT(reader.stats().malformed, 0u);

    // An off-taxonomy (name, ph) pair counts as unknown.
    std::string renamed = json;
    const std::size_t admit = renamed.find("\"admit\"");
    ASSERT_NE(admit, std::string::npos);
    renamed.replace(admit, 7, "\"zdmit\"");
    obs::TraceReader reader2;
    ASSERT_TRUE(reader2.parse(renamed));
    EXPECT_GT(reader2.stats().unknown, 0u);

    // A document without the trace header fails the parse outright.
    obs::TraceReader reader3;
    EXPECT_FALSE(reader3.parse("{\"not\":\"a trace\"}\n"));
}

} // namespace
