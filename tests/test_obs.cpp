/**
 * @file
 * The observability layer's contracts (src/obs):
 *
 *  - TraceDeterminism: the exported Chrome trace-event JSON is
 *    byte-identical across ClusterConfig::threads = {1, 2, 4} and
 *    fastSim on/off on the same seed — the trace rides the same
 *    bit-reproducibility guarantee as the simulation outputs.
 *  - TraceInvariants: structural properties of any recorded trace —
 *    per-track monotone non-decreasing sim time, every request span
 *    opens before it closes (arrival precedes completion/rejection),
 *    and slices carry non-negative durations.
 *  - DisabledRecorder: a null trace/profiler hook costs nothing — the
 *    engine's steady-state decode loop stays allocation-free (global
 *    operator-new counter, same technique as test_simcore) and the
 *    run's report is bit-identical with recording on or off.
 *  - MetricsRoundTrip: `toCsv` -> `parseCsv` reproduces the sampled
 *    table exactly (%.17g survives the double round-trip), and the
 *    last-value-hold resampling semantics are pinned.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "serving/scheduler.hpp"

using namespace kelle;

// ---- global allocation counter (DisabledRecorder suite) ------------
// Counts every scalar/array non-aligned heap allocation in the
// process; only the allocation-free test reads the deltas.

namespace {
std::atomic<std::uint64_t> g_heapAllocs{0};
}

// GCC cannot see that these replacements pair malloc with free
// consistently across new/delete; the heuristic warning is spurious.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace {

/** A small hetero cluster config that exercises admission pressure,
 *  deferral and (with preempt) requeues — every event kind matters. */
cluster::ClusterConfig
traceConfig(std::size_t threads, bool fast_sim, bool preempt = false)
{
    cluster::ClusterConfig cfg;
    cfg.engine.traffic.ratePerSec = preempt ? 0.08 : 0.05;
    cfg.engine.traffic.numRequests = 14;
    cfg.engine.traffic.seed = 42;
    cfg.engine.fastSim = fast_sim;
    cfg.engine.preempt.enabled = preempt;
    cfg.devices = cluster::heteroEdramSramFleet(2, 2048, 8192, 4096, 8);
    cfg.threads = threads;
    return cfg;
}

std::string
runTraced(std::size_t threads, bool fast_sim, bool preempt = false)
{
    obs::TraceRecorder rec;
    cluster::ClusterConfig cfg = traceConfig(threads, fast_sim, preempt);
    cfg.engine.trace = &rec;
    cluster::ClusterEngine engine(cfg);
    engine.run();
    return rec.toJson();
}

// ---- TraceDeterminism ----------------------------------------------

TEST(TraceDeterminism, JsonByteIdenticalAcrossThreadCounts)
{
    const std::string serial = runTraced(1, true);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, runTraced(2, true));
    EXPECT_EQ(serial, runTraced(4, true));
}

TEST(TraceDeterminism, JsonByteIdenticalAcrossFastSimModes)
{
    // The fast-forward path must replay per-boundary defer/decode
    // events exactly as the step-at-a-time path emits them.
    const std::string fast = runTraced(1, true);
    EXPECT_EQ(fast, runTraced(1, false));
    EXPECT_EQ(fast, runTraced(4, false));
}

TEST(TraceDeterminism, PreemptRequeueTraceIsThreadInvariant)
{
    const std::string serial = runTraced(1, true, true);
    EXPECT_EQ(serial, runTraced(4, true, true));
    EXPECT_EQ(serial, runTraced(1, false, true));
}

TEST(TraceDeterminism, RerunIsBitIdentical)
{
    EXPECT_EQ(runTraced(2, true), runTraced(2, true));
}

// ---- TraceInvariants -----------------------------------------------

/** Collect every track of a recorder (requests + devices). */
std::vector<const obs::TraceTrack *>
allTracks(const obs::TraceRecorder &rec)
{
    std::vector<const obs::TraceTrack *> tracks;
    for (const auto &t : rec.deviceTracks())
        tracks.push_back(t.get());
    return tracks;
}

TEST(TraceInvariants, PerTrackSimTimeIsMonotoneAndSpansWellFormed)
{
    obs::TraceRecorder rec;
    cluster::ClusterConfig cfg = traceConfig(1, true, true);
    cfg.engine.trace = &rec;
    cluster::ClusterEngine engine(cfg);
    engine.run();

    std::size_t total_events = 0;
    std::map<std::uint64_t, double> span_open; // req -> arrival ts
    std::set<std::uint64_t> span_closed;
    for (const obs::TraceTrack *track : allTracks(rec)) {
        double prev = -1.0;
        for (const obs::TraceEvent &e : track->events()) {
            ++total_events;
            EXPECT_GE(e.tsUs, prev)
                << "track " << track->name()
                << " emitted out of sim-time order";
            prev = e.tsUs;
            EXPECT_GE(e.durUs, 0.0);
            switch (e.kind) {
              case obs::TraceEventKind::Arrival:
                // First arrival opens the span; a requeued request
                // re-arrives only via Requeue events.
                if (span_open.find(e.req) == span_open.end())
                    span_open[e.req] = e.tsUs;
                EXPECT_FALSE(track->taskName(e.name).empty());
                break;
              case obs::TraceEventKind::Complete:
              case obs::TraceEventKind::Reject: {
                auto it = span_open.find(e.req);
                ASSERT_NE(it, span_open.end())
                    << "span end for request " << e.req
                    << " without an arrival";
                EXPECT_LE(it->second, e.tsUs);
                EXPECT_TRUE(span_closed.insert(e.req).second)
                    << "request " << e.req << " ended twice";
                break;
              }
              default:
                break;
            }
        }
    }
    EXPECT_GT(total_events, 0u);
    // Every opened span closed: the run drains.
    EXPECT_EQ(span_open.size(), span_closed.size());
}

TEST(TraceInvariants, JsonIsWellFormedAndCoversEventTypes)
{
    const std::string json = runTraced(1, true);
    // Cheap structural checks (CI additionally runs jq over a real
    // bench artifact): header, one event per line, balanced close.
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(json.rfind("]}\n"), json.size() - 3);
    for (const char *needle :
         {"\"ph\":\"M\"", "\"ph\":\"b\"", "\"ph\":\"e\"",
          "\"ph\":\"i\"", "\"ph\":\"X\"", "\"ph\":\"C\"",
          "\"name\":\"decode\"", "\"name\":\"prefill\"",
          "\"name\":\"kv_bytes\"", "\"name\":\"dispatch\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

// ---- DisabledRecorder ----------------------------------------------

TEST(DisabledRecorder, SteadyStateDecodeStaysAllocationFree)
{
    // Same setup as test_simcore's allocation-free assert, with the
    // obs hooks explicitly left null: the disabled trace/profiler
    // pointers must not reintroduce heap traffic.
    sim::EventQueue queue;
    queue.reserve(2048);
    std::vector<serving::Request> requests;
    serving::Request r;
    r.id = 0;
    r.task = sim::qasper();
    r.arrival = Time::seconds(0);
    requests.push_back(r);

    serving::DeviceConfig cfg;
    cfg.poolTokens = 4096;
    ASSERT_EQ(cfg.profiler, nullptr);
    serving::DeviceEngine engine(cfg, queue, requests);
    for (int i = 1; i <= 1200; ++i)
        queue.schedule(Time::seconds(0.3 * i), [] {});
    engine.enqueue(0);

    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(queue.runNext());
    const std::uint64_t allocs_before =
        g_heapAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 300; ++i)
        ASSERT_TRUE(queue.runNext());
    const std::uint64_t allocs_after =
        g_heapAllocs.load(std::memory_order_relaxed);
    EXPECT_FALSE(requests[0].done());
    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "disabled obs hooks must keep steady-state stepping "
           "allocation-free";
}

TEST(DisabledRecorder, ReportBitIdenticalWithTracingOnAndOff)
{
    // Tracing observes; it must never perturb simulation outputs.
    auto summaryOf = [](bool traced) {
        obs::TraceRecorder rec;
        cluster::ClusterConfig cfg = traceConfig(1, true, true);
        if (traced)
            cfg.engine.trace = &rec;
        cluster::ClusterEngine engine(cfg);
        const cluster::ClusterReport rep = engine.run();
        return std::make_tuple(
            rep.aggregate.summary.completed,
            rep.aggregate.summary.preemptions,
            rep.aggregate.summary.goodputTokensPerSec,
            rep.aggregate.summary.ttftP95, rep.loadImbalanceCv,
            rep.refreshEnergyJ);
    };
    EXPECT_EQ(summaryOf(false), summaryOf(true));
}

TEST(DisabledRecorder, ProfilerObservesWithoutPerturbing)
{
    obs::PhaseProfiler prof;
    cluster::ClusterConfig cfg = traceConfig(2, true);
    cfg.engine.profiler = &prof;
    cluster::ClusterEngine engine(cfg);
    const cluster::ClusterReport with = engine.run();

    cluster::ClusterEngine plain(traceConfig(2, true));
    const cluster::ClusterReport without = plain.run();
    EXPECT_EQ(with.aggregate.summary.completed,
              without.aggregate.summary.completed);
    EXPECT_EQ(with.aggregate.summary.goodputTokensPerSec,
              without.aggregate.summary.goodputTokensPerSec);
    // The run passed through trace generation and roll-up at least.
    EXPECT_GT(prof.count(obs::PhaseProfiler::Phase::TraceGen), 0u);
    EXPECT_GT(prof.count(obs::PhaseProfiler::Phase::RollUp), 0u);
}

// ---- MetricsRoundTrip ----------------------------------------------

TEST(MetricsRoundTrip, CsvSurvivesParseExactly)
{
    obs::MetricsRegistry reg;
    obs::TimeSeries &a = reg.series("a.kv_bytes");
    a.push(0.0, 0.0);
    a.push(10.0, 1.0 / 3.0); // needs all 17 significant digits
    a.push(35.0, 123456789.25);
    obs::TimeSeries &b = reg.series("b.depth");
    b.push(5.0, 2.0);

    const double dt = 10.0;
    const obs::MetricsRegistry::SampledTable want = reg.sample(dt);
    obs::MetricsRegistry::SampledTable got;
    ASSERT_TRUE(obs::MetricsRegistry::parseCsv(reg.toCsv(dt), &got));

    EXPECT_EQ(got.names, want.names);
    ASSERT_EQ(got.rows.size(), want.rows.size());
    for (std::size_t r = 0; r < want.rows.size(); ++r) {
        ASSERT_EQ(got.rows[r].size(), want.rows[r].size());
        for (std::size_t c = 0; c < want.rows[r].size(); ++c)
            EXPECT_EQ(got.rows[r][c], want.rows[r][c])
                << "row " << r << " col " << c
                << " did not survive the %.17g round-trip";
    }
    EXPECT_EQ(got.intervalSec, dt);
}

TEST(MetricsRoundTrip, ResamplingIsLastValueHold)
{
    obs::MetricsRegistry reg;
    obs::TimeSeries &s = reg.series("x");
    s.push(2.0, 5.0);
    s.push(12.0, 7.0);

    const obs::MetricsRegistry::SampledTable t = reg.sample(10.0);
    ASSERT_EQ(t.names, std::vector<std::string>{"x"});
    // Grid 0, 10, 20 covers endSec 12.
    ASSERT_EQ(t.rows.size(), 3u);
    EXPECT_EQ(t.rows[0][1], 0.0); // before the first sample
    EXPECT_EQ(t.rows[1][1], 5.0); // last value at t=10 is the t=2 one
    EXPECT_EQ(t.rows[2][1], 7.0);
}

TEST(MetricsRoundTrip, IngestTraceLiftsCountersAndHistograms)
{
    obs::TraceRecorder rec;
    cluster::ClusterConfig cfg = traceConfig(1, true);
    cfg.engine.trace = &rec;
    cluster::ClusterEngine engine(cfg);
    const cluster::ClusterReport rep = engine.run();

    obs::MetricsRegistry reg;
    reg.ingestTrace(rec);
    EXPECT_FALSE(reg.series("edram0.kv_bytes").samples().empty());
    EXPECT_FALSE(reg.series("sram1.kv_bytes").samples().empty());
    EXPECT_FALSE(reg.series("edram0.refresh_j").samples().empty());
    // One TTFT observation per completed request.
    EXPECT_EQ(reg.histogram("ttft_sec", 0.0, 120.0, 24).count,
              rep.aggregate.summary.completed);
    EXPECT_EQ(reg.histogram("e2e_sec", 0.0, 600.0, 24).count,
              rep.aggregate.summary.completed);
    // The cumulative refresh series ends at the fleet total.
    const obs::TimeSeries &edram = reg.series("edram0.refresh_j");
    const obs::TimeSeries &sram = reg.series("sram1.refresh_j");
    EXPECT_NEAR(edram.samples().back().value +
                    sram.samples().back().value,
                rep.refreshEnergyJ, 1e-6);
}

TEST(MetricsRoundTrip, JsonDumpCarriesSchemaAndSections)
{
    obs::MetricsRegistry reg;
    reg.setGauge("g", 1.5);
    reg.addCounter("c", 2.0);
    reg.histogram("h", 0.0, 1.0, 4).observe(0.3);
    reg.series("s").push(0.0, 1.0);
    const std::string json = reg.toJson(10.0);
    for (const char *needle :
         {"\"schema\":\"kelle.metrics/v2\"", "\"scalars\"",
          "\"histograms\"", "\"series\"", "\"g\"", "\"h\"",
          "\"p50\"", "\"p95\"", "\"p99\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST(MetricsRoundTrip, HistogramQuantilesNearestRankOverBinEdges)
{
    obs::Histogram h;
    h.lo = 0.0;
    h.hi = 10.0;
    h.bins.assign(10, 0);
    EXPECT_EQ(h.quantile(0.5), 0.0); // empty
    for (int i = 0; i < 100; ++i)
        h.observe(0.1 * static_cast<double>(i)); // [0, 9.9]
    // Rank 50 lands in bin [4,5): upper edge 5. Rank 95 → bin [9,10)
    // clamps to max 9.9; p100 = max exactly.
    EXPECT_EQ(h.quantile(0.50), 5.0);
    EXPECT_EQ(h.quantile(0.95), 9.9);
    EXPECT_EQ(h.quantile(1.0), 9.9);
    // A single observation answers every quantile with itself (the
    // [min, max] clamp collapses the bin edge to the value).
    obs::Histogram one;
    one.lo = 0.0;
    one.hi = 100.0;
    one.bins.assign(4, 0);
    one.observe(3.25);
    EXPECT_EQ(one.quantile(0.5), 3.25);
    EXPECT_EQ(one.quantile(0.99), 3.25);
}

} // namespace
