/**
 * @file
 * Unit and property tests for the tensor library: fp16 codec, matrix
 * kernels and quantization.
 */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/half.hpp"
#include "tensor/matrix.hpp"
#include "tensor/quant.hpp"

namespace kelle {
namespace tensor {
namespace {

TEST(Half, KnownEncodings)
{
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(-0.0f), 0x8000);
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3C00);
    EXPECT_EQ(floatToHalfBits(-2.0f), 0xC000);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7BFF);
    EXPECT_EQ(floatToHalfBits(1e30f), 0x7C00);  // overflow -> +inf
    EXPECT_EQ(floatToHalfBits(-1e30f), 0xFC00); // -inf
    // Smallest positive subnormal: 2^-24.
    EXPECT_EQ(floatToHalfBits(5.960464477539063e-08f), 0x0001);
}

TEST(Half, DecodeKnown)
{
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x3C00), 1.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0xC000), -2.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x7BFF), 65504.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x0001), 5.960464477539063e-08f);
    EXPECT_TRUE(std::isinf(halfBitsToFloat(0x7C00)));
    EXPECT_TRUE(std::isnan(halfBitsToFloat(0x7E00)));
}

TEST(Half, RoundTripAllEncodings)
{
    // Every finite half value must round-trip exactly through float.
    for (std::uint32_t h = 0; h <= 0xFFFF; ++h) {
        const auto bits = static_cast<std::uint16_t>(h);
        if (halfIsNonFinite(bits))
            continue;
        const float f = halfBitsToFloat(bits);
        EXPECT_EQ(floatToHalfBits(f), bits) << "encoding " << h;
    }
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly between 1.0 and the next half; RNE keeps 1.0.
    EXPECT_EQ(floatToHalfBits(1.00048828125f), 0x3C00);
    // 1 + 3*2^-11 rounds up to even mantissa 2.
    EXPECT_EQ(floatToHalfBits(1.00146484375f), 0x3C02);
}

TEST(Half, SanitizedReads)
{
    EXPECT_FLOAT_EQ(halfBitsToFloatSanitized(0x7C00), kHalfMax);
    EXPECT_FLOAT_EQ(halfBitsToFloatSanitized(0xFC00), -kHalfMax);
    EXPECT_FLOAT_EQ(halfBitsToFloatSanitized(0x7E00), 0.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloatSanitized(0x3C00), 1.0f);
}

TEST(Half, QuantizationErrorBounded)
{
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const float x = static_cast<float>(rng.uniform(-100.0, 100.0));
        const float q = roundToHalf(x);
        // Relative error of fp16 is at most 2^-11 for normal values.
        EXPECT_LE(std::fabs(q - x), std::fabs(x) * 0x1.0p-10f + 1e-7f);
    }
}

TEST(Matrix, MatmulMatchesManual)
{
    Matrix a(2, 3);
    Matrix b(3, 2);
    float va = 1.0f;
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            a.at(i, j) = va++;
    float vb = 1.0f;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            b.at(i, j) = vb++;
    const Matrix c = a.matmul(b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 22.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 28.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 49.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 64.0f);
}

TEST(Matrix, MatmulTransposedAgrees)
{
    Rng rng(5);
    Matrix a(4, 6), b(5, 6);
    a.fillGaussian(rng, 1.0f);
    b.fillGaussian(rng, 1.0f);
    const Matrix c1 = a.matmulTransposed(b);
    const Matrix c2 = a.matmul(b.transposed());
    ASSERT_EQ(c1.rows(), c2.rows());
    ASSERT_EQ(c1.cols(), c2.cols());
    for (std::size_t i = 0; i < c1.rows(); ++i)
        for (std::size_t j = 0; j < c1.cols(); ++j)
            EXPECT_NEAR(c1.at(i, j), c2.at(i, j), 1e-4f);
}

TEST(Matrix, MatvecAgreesWithMatmul)
{
    Rng rng(6);
    Matrix a(8, 5);
    a.fillGaussian(rng, 1.0f);
    std::vector<float> x(5), y(8);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    matvec(a, x, y);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(y[i], dot(a.row(i), x), 1e-5f);
}

TEST(Matrix, MatvecTransposed)
{
    Rng rng(7);
    Matrix a(4, 6);
    a.fillGaussian(rng, 1.0f);
    std::vector<float> x(4), y(6), ref(6, 0.0f);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    matvecTransposed(a, x, y);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 6; ++j)
            ref[j] += a.at(i, j) * x[i];
    for (std::size_t j = 0; j < 6; ++j)
        EXPECT_NEAR(y[j], ref[j], 1e-5f);
}

TEST(Matrix, SoftmaxProperties)
{
    std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
    softmaxInPlace(x);
    float sum = 0.0f;
    for (std::size_t i = 0; i + 1 < x.size(); ++i)
        EXPECT_LT(x[i], x[i + 1]); // monotone in the logits
    for (float v : x) {
        EXPECT_GT(v, 0.0f);
        sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(Matrix, SoftmaxStableUnderLargeLogits)
{
    std::vector<float> x = {1000.0f, 1001.0f};
    softmaxInPlace(x);
    EXPECT_NEAR(x[0], 1.0f / (1.0f + std::exp(1.0f)), 1e-5f);
    EXPECT_FALSE(std::isnan(x[0]));
}

TEST(Matrix, SoftmaxShiftInvariance)
{
    std::vector<float> a = {0.3f, -1.2f, 2.0f};
    std::vector<float> b = {100.3f, 98.8f, 102.0f};
    softmaxInPlace(a);
    softmaxInPlace(b);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-5f);
}

TEST(Matrix, RmsNormUnitRms)
{
    std::vector<float> x = {3.0f, -4.0f, 0.0f, 5.0f};
    std::vector<float> gain(4, 1.0f);
    rmsNormInPlace(x, gain);
    double rms = 0.0;
    for (float v : x)
        rms += v * v;
    rms = std::sqrt(rms / x.size());
    EXPECT_NEAR(rms, 1.0, 1e-3);
}

TEST(Matrix, ActivationSanity)
{
    std::vector<float> x = {-2.0f, 0.0f, 2.0f};
    std::vector<float> s = x;
    siluInPlace(s);
    EXPECT_NEAR(s[1], 0.0f, 1e-7f);
    EXPECT_LT(s[0], 0.0f);
    EXPECT_GT(s[2], 1.5f); // silu(2) ~ 1.76

    std::vector<float> g = x;
    geluInPlace(g);
    EXPECT_NEAR(g[1], 0.0f, 1e-7f);
    EXPECT_NEAR(g[2], 1.9546f, 1e-3f);
}

TEST(Matrix, LogSoftmaxMatchesSoftmax)
{
    std::vector<float> logits = {0.5f, -1.0f, 2.5f, 0.0f};
    std::vector<float> probs = logits;
    softmaxInPlace(probs);
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(logSoftmaxAt(logits, i), std::log(probs[i]), 1e-5f);
}

TEST(Quant, Int8RoundTripAccuracy)
{
    Rng rng(9);
    std::vector<float> x(256);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian(0.0, 3.0));
    std::vector<float> q = x;
    fakeQuantI8InPlace(q);
    // Max error is scale/2 = max|x| / 254.
    float max_abs = 0.0f;
    for (float v : x)
        max_abs = std::max(max_abs, std::fabs(v));
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_LE(std::fabs(q[i] - x[i]), max_abs / 254.0f + 1e-6f);
}

TEST(Quant, GroupQuantErrorDecreasesWithBits)
{
    Rng rng(10);
    std::vector<float> x(512);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    std::vector<float> q4 = x, q8 = x;
    fakeQuantGroupsInPlace(q4, 4, 32);
    fakeQuantGroupsInPlace(q8, 8, 32);
    EXPECT_LT(quantMse(x, q8), quantMse(x, q4));
    EXPECT_GT(quantMse(x, q4), 0.0);
}

TEST(Quant, GroupQuantHandlesConstantGroup)
{
    std::vector<float> x(64, 3.5f);
    fakeQuantGroupsInPlace(x, 4, 32);
    for (float v : x)
        EXPECT_FLOAT_EQ(v, 3.5f);
}

TEST(Quant, HadamardIsOrthonormalInvolution)
{
    Rng rng(11);
    std::vector<float> x(64);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    std::vector<float> y = x;
    hadamardInPlace(y);

    // Norm preserved.
    double nx = 0.0, ny = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        nx += x[i] * x[i];
        ny += y[i] * y[i];
    }
    EXPECT_NEAR(nx, ny, 1e-3);

    // Applying twice restores the input.
    hadamardInPlace(y);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-4f);
}

TEST(Quant, QuaRotBeatsPlainInt4OnOutliers)
{
    // A vector with one large outlier: plain group quant burns its
    // range on the outlier; the Hadamard rotation spreads it out.
    Rng rng(12);
    std::vector<float> x(128);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian(0.0, 0.1));
    x[7] = 25.0f;

    std::vector<float> plain = x, rotated = x;
    fakeQuantGroupsInPlace(plain, 4, 128);
    fakeQuantQuaRotInPlace(rotated, 4, 128);
    EXPECT_LT(quantMse(x, rotated), quantMse(x, plain));
}

class GroupQuantParam
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>>
{};

TEST_P(GroupQuantParam, RoundTripErrorBound)
{
    const int bits = std::get<0>(GetParam());
    const std::size_t group = std::get<1>(GetParam());
    Rng rng(100 + bits + static_cast<int>(group));
    std::vector<float> x(group * 4 + 3); // ragged tail group
    for (auto &v : x)
        v = static_cast<float>(rng.uniform(-2.0, 2.0));
    std::vector<float> q = x;
    fakeQuantGroupsInPlace(q, bits, group);
    // Error per element is bounded by half the group's step size.
    const double levels = (1 << bits) - 1;
    for (std::size_t g = 0; g * group < x.size(); ++g) {
        const std::size_t lo = g * group;
        const std::size_t hi = std::min(lo + group, x.size());
        float vmin = x[lo], vmax = x[lo];
        for (std::size_t i = lo; i < hi; ++i) {
            vmin = std::min(vmin, x[i]);
            vmax = std::max(vmax, x[i]);
        }
        const double step = (vmax - vmin) / levels;
        for (std::size_t i = lo; i < hi; ++i)
            EXPECT_LE(std::fabs(q[i] - x[i]), step / 2.0 + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndGroups, GroupQuantParam,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values<std::size_t>(16, 32, 64)));

} // namespace
} // namespace tensor
} // namespace kelle
