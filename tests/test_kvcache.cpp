/**
 * @file
 * Unit, integration and property tests for the managed KV cache:
 * AERP eviction, recomputation/popularity, the baseline policies and
 * fault-injection plumbing.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kvcache/managed_kv_cache.hpp"

namespace kelle {
namespace kv {
namespace {

constexpr std::size_t kLayers = 2;
constexpr std::size_t kHeads = 2;
constexpr std::size_t kHeadDim = 4;
constexpr std::size_t kDModel = 8;

std::vector<float>
constVec(std::size_t n, float v)
{
    return std::vector<float>(n, v);
}

/** Append a token whose k/v values equal `value` everywhere. */
void
appendConst(ManagedKvCache &cache, std::size_t layer, std::int64_t pos,
            float value)
{
    auto k = constVec(kHeads * kHeadDim, value);
    auto v = constVec(kHeads * kHeadDim, value + 0.5f);
    auto x = constVec(kDModel, value - 0.25f);
    cache.append(layer, pos, k, v, x);
}

KvCacheConfig
smallAerp(std::size_t budget = 6, std::size_t sink = 1,
          std::size_t recent = 2)
{
    auto cfg = makeAerpConfig(budget, sink, recent);
    cfg.recompute = false; // enable per test
    return cfg;
}

TEST(KvConfig, ValidateRejectsTightBudget)
{
    auto cfg = makeAerpConfig(10, 5, 5);
    EXPECT_FALSE(cfg.validate().empty());
    cfg = makeAerpConfig(12, 5, 5);
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(KvConfig, FullConfigUnbounded)
{
    const auto cfg = makeFullConfig();
    EXPECT_TRUE(cfg.validate().empty());
    EXPECT_EQ(cfg.policy, Policy::Full);
    EXPECT_EQ(cfg.budget, 0u);
}

TEST(KvConfig, PrecisionBits)
{
    EXPECT_EQ(precisionBits(KvPrecision::Fp16), 16);
    EXPECT_EQ(precisionBits(KvPrecision::Int8), 8);
    EXPECT_EQ(precisionBits(KvPrecision::Int4), 4);
    EXPECT_EQ(precisionBits(KvPrecision::QuaRot4), 4);
}

TEST(ManagedKv, AppendGrowsUntilBudget)
{
    ManagedKvCache cache(smallAerp(), kLayers, kHeads, kHeadDim, kDModel);
    for (std::int64_t p = 0; p < 10; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));
    EXPECT_EQ(cache.numEntries(0, 0), 6u);
    EXPECT_EQ(cache.numEntries(0, 1), 6u);
    EXPECT_EQ(cache.numEntries(1, 0), 0u); // other layer untouched
}

TEST(ManagedKv, FullPolicyNeverEvicts)
{
    ManagedKvCache cache(makeFullConfig(), kLayers, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 50; ++p)
        appendConst(cache, 0, p, 0.1f);
    EXPECT_EQ(cache.numEntries(0, 0), 50u);
    EXPECT_DOUBLE_EQ(cache.statistics().get("evictions"), 0.0);
}

TEST(ManagedKv, GatherRoundTripsValues)
{
    ManagedKvCache cache(makeFullConfig(), kLayers, kHeads, kHeadDim,
                         kDModel);
    std::vector<float> k = {1.0f, -2.0f, 3.0f, -4.0f,
                            0.5f, 0.25f, -0.125f, 8.0f};
    std::vector<float> v = {2.0f, 4.0f, -8.0f, 16.0f,
                            -1.0f, 0.5f, 0.75f, -0.25f};
    cache.append(0, 0, k, v, constVec(kDModel, 1.0f));
    auto g = cache.gather(0, 0);
    ASSERT_EQ(g.k.rows(), 1u);
    // 16-bit fixed point: relative error bounded by max|x| / 32767 / 2.
    for (std::size_t d = 0; d < kHeadDim; ++d) {
        EXPECT_NEAR(g.k.at(0, d), k[d], 8.0 / 32767.0);
        EXPECT_NEAR(g.v.at(0, d), v[d], 16.0 / 32767.0);
    }
    EXPECT_EQ(g.positions[0], 0);
}

TEST(ManagedKv, GatherSecondHeadSlices)
{
    ManagedKvCache cache(makeFullConfig(), kLayers, kHeads, kHeadDim,
                         kDModel);
    std::vector<float> k(kHeads * kHeadDim), v(kHeads * kHeadDim);
    for (std::size_t i = 0; i < k.size(); ++i) {
        k[i] = static_cast<float>(i);
        v[i] = static_cast<float>(i) * 10.0f;
    }
    cache.append(0, 0, k, v, constVec(kDModel, 0.0f));
    auto g = cache.gather(0, 1);
    for (std::size_t d = 0; d < kHeadDim; ++d) {
        EXPECT_NEAR(g.k.at(0, d), k[kHeadDim + d], 1e-2);
        EXPECT_NEAR(g.v.at(0, d), v[kHeadDim + d], 1e-2);
    }
}

TEST(ManagedKv, ScoreBasedEvictionRemovesLowestImportance)
{
    // Budget 4 = sink 1 + recent 1 + two evictable slots.
    ManagedKvCache cache(smallAerp(4, 1, 1), kLayers, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 4; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));

    // Mark token 2 unimportant, token 1 important in head 0.
    auto g = cache.gather(0, 0);
    std::vector<float> probs(g.slots.size(), 0.0f);
    for (std::size_t i = 0; i < g.positions.size(); ++i) {
        if (g.positions[i] == 1)
            probs[i] = 0.9f;
        if (g.positions[i] == 2)
            probs[i] = 0.01f;
    }
    cache.observeAttention(0, 0, probs, g.slots);

    // Next append must evict token 2: at pos 4 with window 1 the
    // recent floor is 3, token 0 is sink, so eligible = {1, 2} and
    // token 2 has the lower importance.
    appendConst(cache, 0, 4, 4.0f);
    auto g2 = cache.gather(0, 0);
    std::vector<std::int64_t> pos(g2.positions.begin(),
                                  g2.positions.end());
    std::sort(pos.begin(), pos.end());
    EXPECT_EQ(pos, (std::vector<std::int64_t>{0, 1, 3, 4}));
}

TEST(ManagedKv, PerHeadEvictionIsIndependent)
{
    // Window 1: at pos 4 the eligible victims are tokens {1, 2}.
    ManagedKvCache cache(smallAerp(4, 1, 1), kLayers, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 4; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));

    // Head 0 favors token 1; head 1 favors token 2.
    for (std::size_t h = 0; h < kHeads; ++h) {
        auto g = cache.gather(0, h);
        std::vector<float> probs(g.slots.size(), 0.0f);
        for (std::size_t i = 0; i < g.positions.size(); ++i) {
            const std::int64_t favored = h == 0 ? 1 : 2;
            probs[i] = g.positions[i] == favored ? 0.9f : 0.05f;
        }
        cache.observeAttention(0, h, probs, g.slots);
    }
    appendConst(cache, 0, 4, 4.0f);

    auto has = [&](std::size_t head, std::int64_t p) {
        auto g = cache.gather(0, head);
        return std::find(g.positions.begin(), g.positions.end(), p) !=
               g.positions.end();
    };
    EXPECT_TRUE(has(0, 1));
    EXPECT_FALSE(has(0, 2)); // head 0 evicted token 2
    EXPECT_TRUE(has(1, 2));
    EXPECT_FALSE(has(1, 1)); // head 1 evicted token 1
}

TEST(ManagedKv, StreamingEvictsOldestNonSink)
{
    auto cfg = makeStreamingConfig(4, 1, 2);
    ManagedKvCache cache(cfg, kLayers, kHeads, kHeadDim, kDModel);
    for (std::int64_t p = 0; p < 4; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));
    // Give token 1 a huge importance: streaming must ignore it.
    auto g = cache.gather(0, 0);
    std::vector<float> probs(g.slots.size(), 0.0f);
    for (std::size_t i = 0; i < g.positions.size(); ++i)
        if (g.positions[i] == 1)
            probs[i] = 100.0f;
    cache.observeAttention(0, 0, probs, g.slots);

    appendConst(cache, 0, 4, 4.0f);
    auto g2 = cache.gather(0, 0);
    std::vector<std::int64_t> pos(g2.positions.begin(),
                                  g2.positions.end());
    std::sort(pos.begin(), pos.end());
    // Oldest non-sink (token 1) evicted despite its importance.
    EXPECT_EQ(pos, (std::vector<std::int64_t>{0, 2, 3, 4}));
}

TEST(ManagedKv, H2OHasNoSinkProtection)
{
    auto cfg = makeH2OConfig(4, 2);
    ManagedKvCache cache(cfg, kLayers, kHeads, kHeadDim, kDModel);
    for (std::int64_t p = 0; p < 4; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));
    // All importances zero: tie-break by age evicts token 0.
    appendConst(cache, 0, 4, 4.0f);
    auto g = cache.gather(0, 0);
    EXPECT_EQ(std::count(g.positions.begin(), g.positions.end(), 0), 0);
}

TEST(ManagedKv, SinkTokensNeverEvicted)
{
    ManagedKvCache cache(smallAerp(4, 2, 1), kLayers, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 30; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));
    auto g = cache.gather(0, 0);
    EXPECT_NE(std::find(g.positions.begin(), g.positions.end(), 0),
              g.positions.end());
    EXPECT_NE(std::find(g.positions.begin(), g.positions.end(), 1),
              g.positions.end());
}

TEST(ManagedKv, RecentWindowProtected)
{
    ManagedKvCache cache(smallAerp(6, 1, 3), kLayers, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 40; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));
    auto g = cache.gather(0, 0);
    for (std::int64_t want : {37, 38, 39}) {
        EXPECT_NE(std::find(g.positions.begin(), g.positions.end(), want),
                  g.positions.end())
            << "recent token " << want << " missing";
    }
}

TEST(ManagedKv, ObserveAttentionAccumulates)
{
    ManagedKvCache cache(smallAerp(), kLayers, kHeads, kHeadDim, kDModel);
    appendConst(cache, 0, 0, 1.0f);
    auto g = cache.gather(0, 0);
    std::vector<float> probs = {0.25f};
    cache.observeAttention(0, 0, probs, g.slots);
    cache.observeAttention(0, 0, probs, g.slots);
    EXPECT_FLOAT_EQ(cache.importanceOf(0, 0, 0), 0.5f);
}

TEST(ManagedKv, RecomputeRoundTrip)
{
    auto cfg = makeAerpConfig(8, 1, 2);
    cfg.popularityTheta = 0.0; // every probation graduate is popular
    ManagedKvCache cache(cfg, kLayers, kHeads, kHeadDim, kDModel);

    // Identity-ish recomputer: k = x slice doubled, v = x slice + 1.
    cache.setRecomputer([](std::size_t, std::span<const float> x,
                           std::int64_t, std::span<float> k_out,
                           std::span<float> v_out) {
        for (std::size_t i = 0; i < k_out.size(); ++i) {
            k_out[i] = 2.0f * x[i % x.size()];
            v_out[i] = x[i % x.size()] + 1.0f;
        }
    });

    for (std::int64_t p = 0; p < 8; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));

    // Tokens with pos < 8 - recent(2) have left probation; theta = 0
    // makes them all x-stored.
    bool any_x = false;
    auto g = cache.gather(0, 0);
    for (std::size_t i = 0; i < g.slots.size(); ++i) {
        if (cache.isInputStored(0, 0, g.slots[i])) {
            any_x = true;
            // Recomputed k = 2 * x where x = value - 0.25.
            const float x_val =
                static_cast<float>(g.positions[i]) - 0.25f;
            EXPECT_NEAR(g.k.at(i, 0), 2.0f * x_val, 2e-2);
            EXPECT_NEAR(g.v.at(i, 0), x_val + 1.0f, 2e-2);
        }
    }
    EXPECT_TRUE(any_x);
    EXPECT_GT(cache.statistics().get("recomputes"), 0.0);
}

TEST(ManagedKv, PopularityThresholdControlsXStorage)
{
    // Token 3 ranks above median in head 0 only (1 of 2 heads). With
    // theta = 1.0 it is not popular; with theta = 0.5 it is.
    auto run = [&](double theta) {
        auto cfg = makeAerpConfig(16, 1, 2);
        cfg.popularityTheta = theta;
        ManagedKvCache cache(cfg, 1, kHeads, kHeadDim, kDModel);
        cache.setRecomputer([](std::size_t, std::span<const float>,
                               std::int64_t, std::span<float> k_out,
                               std::span<float> v_out) {
            std::fill(k_out.begin(), k_out.end(), 0.0f);
            std::fill(v_out.begin(), v_out.end(), 0.0f);
        });
        for (std::int64_t p = 0; p < 8; ++p) {
            appendConst(cache, 0, p, static_cast<float>(p));
            // Head 0: token 3 strongly attended; head 1: all others
            // attended, token 3 ignored.
            for (std::size_t h = 0; h < kHeads; ++h) {
                auto g = cache.gather(0, h);
                std::vector<float> probs(g.slots.size(), 0.0f);
                for (std::size_t i = 0; i < g.positions.size(); ++i) {
                    const bool is3 = g.positions[i] == 3;
                    probs[i] = (h == 0) == is3 ? 1.0f : 0.0f;
                }
                cache.observeAttention(0, h, probs, g.slots);
            }
        }
        // Find token 3 and report whether it is x-stored.
        auto g = cache.gather(0, 0);
        for (std::size_t i = 0; i < g.positions.size(); ++i)
            if (g.positions[i] == 3)
                return cache.isInputStored(0, 0, g.slots[i]);
        return false;
    };
    EXPECT_FALSE(run(1.0));
    EXPECT_TRUE(run(0.5));
}

TEST(ManagedKv, ResidentBytesReflectXStorage)
{
    auto all_x = makeAerpConfig(16, 1, 2);
    all_x.popularityTheta = 0.0;
    ManagedKvCache with_x(all_x, 1, kHeads, kHeadDim, kDModel);
    with_x.setRecomputer([](std::size_t, std::span<const float>,
                            std::int64_t, std::span<float> k,
                            std::span<float> v) {
        std::fill(k.begin(), k.end(), 0.0f);
        std::fill(v.begin(), v.end(), 0.0f);
    });

    auto no_x = makeAerpConfig(16, 1, 2);
    no_x.recompute = false;
    ManagedKvCache without_x(no_x, 1, kHeads, kHeadDim, kDModel);

    for (std::int64_t p = 0; p < 12; ++p) {
        appendConst(with_x, 0, p, 1.0f);
        appendConst(without_x, 0, p, 1.0f);
    }
    // x storage: dModel*2 bytes per popular token vs
    // heads*2*headDim*2 = 2x dModel*2 for KV storage.
    EXPECT_LT(with_x.residentKvBytes(), without_x.residentKvBytes());
}

TEST(ManagedKv, PrefillRetainsTopScorersPerHead)
{
    auto cfg = makeAerpConfig(6, 1, 2);
    cfg.recompute = false;
    ManagedKvCache cache(cfg, 1, kHeads, kHeadDim, kDModel);

    const std::size_t n = 12;
    tensor::Matrix k(n, kHeads * kHeadDim), v(n, kHeads * kHeadDim),
        x(n, kDModel);
    std::vector<std::vector<float>> imp(kHeads,
                                        std::vector<float>(n, 0.0f));
    // Head 0 favors token 4, head 1 favors token 5.
    imp[0][4] = 5.0f;
    imp[1][5] = 5.0f;
    cache.loadPrefill(0, k, v, x, imp);

    auto g0 = cache.gather(0, 0);
    auto g1 = cache.gather(0, 1);
    EXPECT_EQ(g0.positions.size(), 6u);
    EXPECT_NE(std::find(g0.positions.begin(), g0.positions.end(), 4),
              g0.positions.end());
    EXPECT_NE(std::find(g1.positions.begin(), g1.positions.end(), 5),
              g1.positions.end());
    // Sink and recent always retained.
    for (auto &g : {g0, g1}) {
        EXPECT_NE(std::find(g.positions.begin(), g.positions.end(), 0),
                  g.positions.end());
        EXPECT_NE(std::find(g.positions.begin(), g.positions.end(), 11),
                  g.positions.end());
    }
}

TEST(ManagedKv, PrefillThenDecodeContinues)
{
    auto cfg = makeAerpConfig(8, 1, 2);
    cfg.recompute = false;
    ManagedKvCache cache(cfg, 1, kHeads, kHeadDim, kDModel);
    const std::size_t n = 6;
    tensor::Matrix k(n, kHeads * kHeadDim), v(n, kHeads * kHeadDim),
        x(n, kDModel);
    std::vector<std::vector<float>> imp(kHeads,
                                        std::vector<float>(n, 1.0f));
    cache.loadPrefill(0, k, v, x, imp);
    EXPECT_EQ(cache.numEntries(0, 0), n);
    appendConst(cache, 0, static_cast<std::int64_t>(n), 1.0f);
    EXPECT_EQ(cache.numEntries(0, 0), n + 1);
}

TEST(ManagedKv, PrefillImportanceCarriesIntoDecodeEviction)
{
    auto cfg = makeAerpConfig(6, 1, 2);
    cfg.recompute = false;
    ManagedKvCache cache(cfg, 1, kHeads, kHeadDim, kDModel);
    const std::size_t n = 6;
    tensor::Matrix k(n, kHeads * kHeadDim), v(n, kHeads * kHeadDim),
        x(n, kDModel);
    std::vector<std::vector<float>> imp(kHeads,
                                        std::vector<float>(n, 1.0f));
    imp[0][2] = 0.01f; // weakest mid token in head 0
    cache.loadPrefill(0, k, v, x, imp);

    appendConst(cache, 0, static_cast<std::int64_t>(n), 1.0f);
    auto g = cache.gather(0, 0);
    EXPECT_EQ(std::count(g.positions.begin(), g.positions.end(), 2), 0);
}

TEST(ManagedKv, QuantizedPrecisionDegradesGracefully)
{
    Rng rng(3);
    std::vector<float> k(kHeads * kHeadDim), v(kHeads * kHeadDim),
        x(kDModel, 0.0f);
    for (auto &f : k)
        f = static_cast<float>(rng.gaussian());
    for (auto &f : v)
        f = static_cast<float>(rng.gaussian());

    double err4 = 0.0, err8 = 0.0;
    for (KvPrecision prec : {KvPrecision::Int4, KvPrecision::Int8}) {
        auto cfg = makeFullConfig();
        cfg.precision = prec;
        cfg.quantGroup = 8;
        ManagedKvCache cache(cfg, 1, kHeads, kHeadDim, kDModel);
        cache.append(0, 0, k, v, x);
        auto g = cache.gather(0, 0);
        double err = 0.0;
        for (std::size_t d = 0; d < kHeadDim; ++d)
            err += std::fabs(g.k.at(0, d) - k[d]);
        (prec == KvPrecision::Int4 ? err4 : err8) = err;
    }
    EXPECT_GT(err4, err8);
}

/** Injector that flips the top bit of every word: deterministic. */
class FlipTopBit final : public FaultInjector
{
  public:
    void
    corrupt(std::span<std::uint16_t> words,
            const FaultContext &) override
    {
        for (auto &w : words)
            w ^= 0x8000u;
        ++calls;
    }
    int calls = 0;
};

TEST(ManagedKv, FaultInjectorAppliedOncePerEntry)
{
    ManagedKvCache cache(makeFullConfig(), 1, kHeads, kHeadDim, kDModel);
    FlipTopBit inj;
    cache.setFaultInjector(&inj);
    appendConst(cache, 0, 0, 1.0f);

    auto g1 = cache.gather(0, 0);
    const int calls_after_first = inj.calls;
    EXPECT_GT(calls_after_first, 0);
    auto g2 = cache.gather(0, 0);
    // One-time persistent corruption: no further draws.
    EXPECT_EQ(inj.calls, calls_after_first);
    // And reads are consistent.
    for (std::size_t d = 0; d < kHeadDim; ++d)
        EXPECT_FLOAT_EQ(g1.k.at(0, d), g2.k.at(0, d));
    // Top bit of the int16 code is the sign: value flipped.
    EXPECT_LT(g1.k.at(0, 0), 0.0f);
}

TEST(ManagedKv, AppendPositionsMustIncrease)
{
    ManagedKvCache cache(makeFullConfig(), 1, kHeads, kHeadDim, kDModel);
    appendConst(cache, 0, 5, 1.0f);
    EXPECT_DEATH(appendConst(cache, 0, 5, 1.0f), "positions");
}

TEST(ManagedKv, StatisticsTrackEvictions)
{
    ManagedKvCache cache(smallAerp(4, 1, 2), 1, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 10; ++p)
        appendConst(cache, 0, p, 1.0f);
    // 6 evictions per head (10 appends - 4 slots).
    EXPECT_DOUBLE_EQ(cache.statistics().get("evictions"),
                     6.0 * kHeads);
    EXPECT_DOUBLE_EQ(cache.statistics().get("appends"), 10.0);
}

/** Property: decode output is invariant to slot permutation — verified
 *  by checking gather returns a coherent (position, value) pairing
 *  regardless of internal swap-remove reordering. */
TEST(ManagedKv, SlotOrderCarriesConsistentValues)
{
    ManagedKvCache cache(smallAerp(5, 1, 2), 1, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 25; ++p)
        appendConst(cache, 0, p, static_cast<float>(p));
    auto g = cache.gather(0, 0);
    for (std::size_t i = 0; i < g.positions.size(); ++i) {
        // k was filled with the position value.
        EXPECT_NEAR(g.k.at(i, 0), static_cast<float>(g.positions[i]),
                    0.01)
            << "slot " << i;
    }
}

class BudgetSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(BudgetSweep, EntriesNeverExceedBudget)
{
    const std::size_t budget = GetParam();
    ManagedKvCache cache(smallAerp(budget, 1, 2), 1, kHeads, kHeadDim,
                         kDModel);
    for (std::int64_t p = 0; p < 64; ++p) {
        appendConst(cache, 0, p, 1.0f);
        for (std::size_t h = 0; h < kHeads; ++h)
            ASSERT_LE(cache.numEntries(0, h), budget);
    }
    EXPECT_EQ(cache.numEntries(0, 0), budget);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep,
                         ::testing::Values<std::size_t>(4, 6, 9, 16, 33));

} // namespace
} // namespace kv
} // namespace kelle
