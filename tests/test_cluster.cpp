/**
 * @file
 * Deterministic tests of the layer-6 cluster engine, organised into
 * several suites on purpose: with per-suite ctest registration
 * (cmake/KelleGtestSuites.cmake) each suite is one ctest entry, so the
 * sim-scale cluster runs shard across ctest jobs.
 *
 *  - ClusterEquivalence: a 1-device cluster reproduces the
 *    single-device Scheduler bit-exactly under every dispatch policy.
 *  - ClusterDeterminism: every (devices x dispatch x fleet) cell is a
 *    pure function of its seed.
 *  - ClusterDispatch: parse round-trips, routing behaviour, and the
 *    join-shortest-kv > round-robin p95-TTFT win on an asymmetric
 *    fleet.
 *  - ClusterPreempt: preempt-and-requeue accounting (victim re-enters
 *    the queue, budget reclaimed, SLO miss stays charged).
 *  - ClusterHetero: mixed eDRAM/SRAM fleets.
 *  - ClusterMetricsSuite: roll-up arithmetic.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "cluster/cluster_engine.hpp"
#include "serving/scheduler.hpp"

namespace kelle {
namespace {

/** Scaled two-task mix so engine runs finish in milliseconds. */
std::vector<std::pair<sim::Task, double>>
tinyMix()
{
    return {{sim::scaledForTiny(sim::lambada(), 96), 1.0},
            {sim::scaledForTiny(sim::triviaQa(), 128), 1.0}};
}

serving::ServingConfig
tinyServingConfig(serving::SchedulePolicy policy, double rate,
                  std::uint64_t seed, std::size_t requests)
{
    serving::ServingConfig cfg;
    cfg.model = model::tinyLm();
    cfg.system = accel::kelleEdramSystem(2048);
    cfg.policy = policy;
    cfg.maxBatch = 4;
    cfg.poolTokens = 512; // a handful of concurrent tiny budgets
    cfg.traffic.ratePerSec = rate;
    cfg.traffic.seed = seed;
    cfg.traffic.numRequests = requests;
    cfg.traffic.mix = tinyMix();
    return cfg;
}

/** A tiny n-device homogeneous cluster over the same traffic. */
cluster::ClusterConfig
tinyClusterConfig(std::size_t n_devices, cluster::DispatchKind dispatch,
                  serving::SchedulePolicy policy, double rate,
                  std::uint64_t seed, std::size_t requests)
{
    return cluster::clusterConfigFrom(
        tinyServingConfig(policy, rate, seed, requests), n_devices,
        dispatch);
}

void
expectSummariesBitIdentical(const serving::ServingSummary &a,
                            const serving::ServingSummary &b,
                            const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.rejected, b.rejected) << label;
    EXPECT_EQ(a.makespan.sec(), b.makespan.sec()) << label;
    EXPECT_EQ(a.ttftMean, b.ttftMean) << label;
    EXPECT_EQ(a.ttftP50, b.ttftP50) << label;
    EXPECT_EQ(a.ttftP95, b.ttftP95) << label;
    EXPECT_EQ(a.ttftP99, b.ttftP99) << label;
    EXPECT_EQ(a.e2eP50, b.e2eP50) << label;
    EXPECT_EQ(a.e2eP95, b.e2eP95) << label;
    EXPECT_EQ(a.e2eP99, b.e2eP99) << label;
    EXPECT_EQ(a.tpotMean, b.tpotMean) << label;
    EXPECT_EQ(a.tpotP50, b.tpotP50) << label;
    EXPECT_EQ(a.tpotP95, b.tpotP95) << label;
    EXPECT_EQ(a.tokenGapP95, b.tokenGapP95) << label;
    EXPECT_EQ(a.goodputTokensPerSec, b.goodputTokensPerSec) << label;
    EXPECT_EQ(a.sloTtftAttainment, b.sloTtftAttainment) << label;
    EXPECT_EQ(a.sloTpotAttainment, b.sloTpotAttainment) << label;
    EXPECT_EQ(a.sloAttainment, b.sloAttainment) << label;
    EXPECT_EQ(a.admissionBypasses, b.admissionBypasses) << label;
    EXPECT_EQ(a.preemptions, b.preemptions) << label;
    EXPECT_EQ(a.maxQueueWaitSec, b.maxQueueWaitSec) << label;
    EXPECT_EQ(a.meanQueueDepth, b.meanQueueDepth) << label;
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth) << label;
    EXPECT_EQ(a.meanBudgetFraction, b.meanBudgetFraction) << label;
    EXPECT_EQ(a.energy.total().j(), b.energy.total().j()) << label;
    EXPECT_EQ(a.energy.refresh.j(), b.energy.refresh.j()) << label;
    EXPECT_EQ(a.energyPerToken, b.energyPerToken) << label;
}

void
expectReportsBitIdentical(const serving::ServingReport &a,
                          const serving::ServingReport &b,
                          const std::string &label)
{
    expectSummariesBitIdentical(a.summary, b.summary, label);
    EXPECT_EQ(a.engineSteps, b.engineSteps) << label;
    EXPECT_EQ(a.decodeSteps, b.decodeSteps) << label;
    EXPECT_EQ(a.prefillChunks, b.prefillChunks) << label;
    EXPECT_EQ(a.prefills, b.prefills) << label;
    EXPECT_EQ(a.poolTokens, b.poolTokens) << label;
    EXPECT_EQ(a.poolCapacityBytes, b.poolCapacityBytes) << label;
    EXPECT_EQ(a.poolPeakBytes, b.poolPeakBytes) << label;
    EXPECT_EQ(a.shrunkGrants, b.shrunkGrants) << label;
    EXPECT_EQ(a.deferrals, b.deferrals) << label;
    EXPECT_EQ(a.drained, b.drained) << label;
}

// ---- 1-device equivalence ----------------------------------------------

TEST(ClusterEquivalence, OneDeviceClusterMatchesSchedulerBitExactly)
{
    for (auto policy : serving::allSchedulePolicies()) {
        for (auto dispatch : cluster::allDispatchPolicies()) {
            for (std::size_t chunk :
                 {std::size_t{0}, std::size_t{16}}) {
                auto scfg = tinyServingConfig(policy, 50.0, 11, 24);
                scfg.chunkTokens = chunk;
                const auto sched = serving::Scheduler(scfg).run();

                auto ccfg = cluster::clusterConfigFrom(scfg, 1,
                                                       dispatch);
                cluster::ClusterEngine engine(ccfg);
                const auto clus = engine.run();

                const std::string label =
                    toString(policy) + "/" + toString(dispatch) +
                    "/chunk" + std::to_string(chunk);
                expectReportsBitIdentical(sched, clus.aggregate,
                                          label);
                ASSERT_EQ(clus.devices.size(), 1u) << label;
                expectReportsBitIdentical(sched,
                                          clus.devices[0].report,
                                          label);
                EXPECT_EQ(clus.loadImbalanceCv, 0.0) << label;
            }
        }
    }
}

TEST(ClusterEquivalence, OneDeviceClusterMatchesSchedulerWithPreempt)
{
    // The preempt knob must not break the equivalence: Scheduler and
    // ClusterEngine both requeue victims through an immediate event,
    // so the step sequences stay identical. TPOT targets far below
    // the achievable rate make preemptions actually fire.
    for (auto dispatch : cluster::allDispatchPolicies()) {
        auto scfg = tinyServingConfig(
            serving::SchedulePolicy::ContinuousBatching, 2000.0, 13,
            24);
        scfg.traffic.slo.tpotSec = 2e-6;
        scfg.preempt.enabled = true;
        const auto sched = serving::Scheduler(scfg).run();
        ASSERT_GT(sched.summary.preemptions, 0u);

        auto ccfg = cluster::clusterConfigFrom(scfg, 1, dispatch);
        cluster::ClusterEngine engine(ccfg);
        const auto clus = engine.run();
        expectReportsBitIdentical(sched, clus.aggregate,
                                  "preempt/" + toString(dispatch));
    }
}

TEST(ClusterEquivalence, SlackAwareAlternationOffIsBitExact)
{
    // chunkSlackFrac = 0 must preserve the unconditional alternation:
    // two edf-chunked runs, knob absent vs explicitly 0, are the same
    // run.
    auto cfg = tinyServingConfig(serving::SchedulePolicy::EdfChunked,
                                 80.0, 19, 24);
    cfg.chunkTokens = 16;
    const auto a = serving::Scheduler(cfg).run();
    cfg.chunkSlackFrac = 0.0;
    const auto b = serving::Scheduler(cfg).run();
    expectReportsBitIdentical(a, b, "slack-off");
}

TEST(ClusterEquivalence, SlackAwareAlternationChangesTheSchedule)
{
    // With a saturating trace and short TTFT slack the rule must
    // actually fire: the engine-step sequence (and so the decode-stall
    // tail) differs from unconditional alternation, while the trace
    // still drains completely.
    auto cfg = tinyServingConfig(serving::SchedulePolicy::EdfChunked,
                                 500.0, 19, 24);
    cfg.chunkTokens = 8;
    cfg.traffic.slo.ttftBaseSec = 1e-4;
    cfg.traffic.slo.ttftPerCtxTokenSec = 0.0;
    const auto plain = serving::Scheduler(cfg).run();
    cfg.chunkSlackFrac = 1.0; // any positive slack counts as pressed
    const auto slack = serving::Scheduler(cfg).run();
    EXPECT_TRUE(slack.drained);
    EXPECT_EQ(slack.summary.completed + slack.summary.rejected,
              cfg.traffic.numRequests);
    // The alternation was suppressed at least once somewhere.
    EXPECT_NE(plain.summary.tokenGapP95, slack.summary.tokenGapP95);
}

// ---- Determinism --------------------------------------------------------

TEST(ClusterDeterminism, RerunsAreBitIdenticalForEveryDispatchPolicy)
{
    for (auto dispatch : cluster::allDispatchPolicies()) {
        for (std::size_t n :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            auto cfg = tinyClusterConfig(
                n, dispatch, serving::SchedulePolicy::EdfChunked,
                200.0, 99, 24);
            cfg.engine.chunkTokens = 16;
            const auto a = cluster::ClusterEngine(cfg).run();
            const auto b = cluster::ClusterEngine(cfg).run();
            const std::string label =
                toString(dispatch) + "/n" + std::to_string(n);
            expectReportsBitIdentical(a.aggregate, b.aggregate, label);
            EXPECT_EQ(a.loadImbalanceCv, b.loadImbalanceCv) << label;
            ASSERT_EQ(a.devices.size(), b.devices.size()) << label;
            for (std::size_t i = 0; i < a.devices.size(); ++i) {
                EXPECT_EQ(a.devices[i].dispatched,
                          b.devices[i].dispatched)
                    << label << " dev" << i;
                EXPECT_EQ(a.devices[i].busySec, b.devices[i].busySec)
                    << label << " dev" << i;
            }
        }
    }
}

TEST(ClusterDeterminism, HeteroFleetRerunsAreBitIdentical)
{
    for (auto dispatch : cluster::allDispatchPolicies()) {
        auto cfg = tinyClusterConfig(
            2, dispatch, serving::SchedulePolicy::ContinuousBatching,
            500.0, 7, 24);
        cfg.devices = cluster::heteroEdramSramFleet(2, 2048, 512, 128,
                                                    4);
        const auto a = cluster::ClusterEngine(cfg).run();
        const auto b = cluster::ClusterEngine(cfg).run();
        expectReportsBitIdentical(a.aggregate, b.aggregate,
                                  toString(dispatch));
    }
}

TEST(ClusterDeterminism, DifferentSeedsDiffer)
{
    auto cfg = tinyClusterConfig(2, cluster::DispatchKind::RoundRobin,
                                 serving::SchedulePolicy::Fcfs, 200.0,
                                 1, 24);
    const auto a = cluster::ClusterEngine(cfg).run();
    cfg.engine.traffic.seed = 2;
    const auto b = cluster::ClusterEngine(cfg).run();
    EXPECT_NE(a.aggregate.summary.makespan.sec(),
              b.aggregate.summary.makespan.sec());
}

// ---- Dispatch policies --------------------------------------------------

TEST(ClusterDispatch, ToStringParseRoundTripAndErrorEnumeration)
{
    const auto all = cluster::allDispatchPolicies();
    EXPECT_EQ(all.size(), 3u);
    for (auto k : all) {
        cluster::DispatchKind parsed;
        ASSERT_TRUE(
            cluster::parseDispatchPolicy(toString(k), &parsed))
            << toString(k);
        EXPECT_EQ(parsed, k);
        // The CLI error string must name every valid policy.
        EXPECT_NE(
            cluster::dispatchPolicyNames().find(toString(k)),
            std::string::npos)
            << toString(k);
    }
    cluster::DispatchKind k;
    EXPECT_FALSE(cluster::parseDispatchPolicy("bogus", &k));
    EXPECT_FALSE(cluster::parseDispatchPolicy("", &k));
    EXPECT_TRUE(cluster::parseDispatchPolicy("rr", &k));
    EXPECT_EQ(k, cluster::DispatchKind::RoundRobin);
    EXPECT_TRUE(cluster::parseDispatchPolicy("jsk", &k));
    EXPECT_EQ(k, cluster::DispatchKind::JoinShortestKv);
    EXPECT_TRUE(cluster::parseDispatchPolicy("deadline", &k));
    EXPECT_EQ(k, cluster::DispatchKind::DeadlineAware);
}

TEST(ClusterDispatch, RoundRobinSpreadsArrivalsEvenly)
{
    auto cfg = tinyClusterConfig(4, cluster::DispatchKind::RoundRobin,
                                 serving::SchedulePolicy::Fcfs, 100.0,
                                 3, 32);
    cluster::ClusterEngine engine(cfg);
    const auto rep = engine.run();
    ASSERT_EQ(rep.devices.size(), 4u);
    for (const auto &d : rep.devices)
        EXPECT_EQ(d.dispatched, 8u) << d.name;
    EXPECT_TRUE(rep.aggregate.drained);
    EXPECT_EQ(rep.aggregate.summary.completed +
                  rep.aggregate.summary.rejected,
              cfg.engine.traffic.numRequests);
}

TEST(ClusterDispatch, EveryPolicyServesTheWholeTrace)
{
    for (auto dispatch : cluster::allDispatchPolicies()) {
        for (std::size_t n :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            auto cfg = tinyClusterConfig(
                n, dispatch, serving::SchedulePolicy::EdfChunked,
                300.0, 23, 24);
            cfg.engine.chunkTokens = 16;
            cluster::ClusterEngine engine(cfg);
            const auto rep = engine.run();
            const std::string label =
                toString(dispatch) + "/n" + std::to_string(n);
            EXPECT_TRUE(rep.aggregate.drained) << label;
            EXPECT_EQ(rep.aggregate.summary.completed +
                          rep.aggregate.summary.rejected,
                      cfg.engine.traffic.numRequests)
                << label;
            // Per-device pools are never oversubscribed.
            for (const auto &d : rep.devices) {
                EXPECT_LE(d.report.poolPeakBytes,
                          d.report.poolCapacityBytes)
                    << label << " " << d.name;
            }
            // Beyond one device, no device may serve everything at a
            // rate this saturating.
            if (n > 1) {
                for (const auto &d : rep.devices)
                    EXPECT_LT(d.dispatched, cfg.engine.traffic.numRequests)
                        << label << " " << d.name;
            }
        }
    }
}

TEST(ClusterDispatch, JoinShortestKvBeatsRoundRobinOnAsymmetricFleet)
{
    // An asymmetric fleet at a saturating rate: round-robin pushes
    // half the load onto the cramped device and its queue backs up;
    // join-shortest-kv routes by free pool bytes, so the big device
    // absorbs the surplus. The p95 TTFT (and the aggregate SLO story)
    // must favour join-shortest-kv — the acceptance gate of the
    // cluster bench's knee regime.
    auto base = tinyClusterConfig(
        2, cluster::DispatchKind::RoundRobin,
        serving::SchedulePolicy::ContinuousBatching, 1000.0, 21, 32);
    base.devices = cluster::heteroEdramSramFleet(2, 2048, 512, 128, 4);

    cluster::ClusterEngine rr_engine(base);
    const auto rr = rr_engine.run();
    base.dispatch = cluster::DispatchKind::JoinShortestKv;
    cluster::ClusterEngine jsk_engine(base);
    const auto jsk = jsk_engine.run();

    ASSERT_GT(rr.aggregate.summary.completed, 0u);
    ASSERT_GT(jsk.aggregate.summary.completed, 0u);
    EXPECT_LT(jsk.aggregate.summary.ttftP95,
              rr.aggregate.summary.ttftP95);
    // Routing by free budget sends more work to the roomy device.
    EXPECT_GT(jsk.devices[0].dispatched, jsk.devices[1].dispatched);
}

TEST(ClusterDispatch, InfeasibleDeviceIsAvoidedWhenAnotherFits)
{
    // One device's whole pool is below every task's protected floor:
    // blind rotation would reject half the trace outright, but the
    // dispatcher must re-route to a device that can ever hold the
    // floor. Rejection stays reserved for requests no device can fit.
    auto cfg = tinyClusterConfig(2, cluster::DispatchKind::RoundRobin,
                                 serving::SchedulePolicy::Fcfs, 100.0,
                                 5, 16);
    cfg.devices[1].poolTokens = 16; // below the tiny tasks' floors
    cluster::ClusterEngine engine(cfg);
    const auto rep = engine.run();

    EXPECT_TRUE(rep.aggregate.drained);
    EXPECT_EQ(rep.aggregate.summary.rejected, 0u);
    EXPECT_EQ(rep.aggregate.summary.completed,
              cfg.engine.traffic.numRequests);
    EXPECT_EQ(rep.devices[0].dispatched, cfg.engine.traffic.numRequests);
    EXPECT_EQ(rep.devices[1].dispatched, 0u);
}

// ---- Preempt-and-requeue ------------------------------------------------

TEST(ClusterPreempt, DoomedDecodesAreRequeuedAndAccounted)
{
    // TPOT targets far below what a saturated tiny engine can deliver:
    // decodes become provably doomed mid-flight, and with waiting
    // demand the knob must reclaim their grants.
    auto cfg = tinyClusterConfig(
        2, cluster::DispatchKind::JoinShortestKv,
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 13, 24);
    cfg.engine.traffic.slo.tpotSec = 2e-6;
    cfg.engine.preempt.enabled = true;

    cluster::ClusterEngine engine(cfg);
    const auto rep = engine.run();

    EXPECT_TRUE(rep.aggregate.drained);
    EXPECT_GT(rep.aggregate.summary.preemptions, 0u);
    // Every request still reaches a terminal state (preemption is
    // bounded to once per request, so the trace drains).
    EXPECT_EQ(rep.aggregate.summary.completed +
                  rep.aggregate.summary.rejected,
              cfg.engine.traffic.numRequests);
    // Budgets were reclaimed, never oversubscribed.
    for (const auto &d : rep.devices)
        EXPECT_LE(d.report.poolPeakBytes, d.report.poolCapacityBytes);

    // The victims completed (elsewhere or re-admitted), each at most
    // once preempted, and their TPOT miss stays on the books: the
    // first token of the first life anchors the measurement.
    std::uint64_t victims = 0;
    for (std::size_t i = 0; i < engine.deviceCount(); ++i) {
        for (const auto &r :
             engine.device(i).metrics().completedRequests()) {
            if (r.preemptions == 0)
                continue;
            ++victims;
            EXPECT_EQ(r.preemptions, 1u) << r.id;
            EXPECT_EQ(r.generated, r.task.decLen) << r.id;
            EXPECT_FALSE(serving::ServingMetrics::metTpot(r)) << r.id;
        }
    }
    EXPECT_EQ(victims, rep.aggregate.summary.preemptions);
}

TEST(ClusterPreempt, OffByDefaultAndBitExactWhenDisabled)
{
    auto cfg = tinyClusterConfig(
        2, cluster::DispatchKind::RoundRobin,
        serving::SchedulePolicy::ContinuousBatching, 2000.0, 13, 24);
    cfg.engine.traffic.slo.tpotSec = 2e-6; // doomed decodes exist...
    const auto rep = cluster::ClusterEngine(cfg).run();
    // ...but the knob is off, so nothing is reclaimed.
    EXPECT_EQ(rep.aggregate.summary.preemptions, 0u);
    for (std::size_t i = 0; i < rep.devices.size(); ++i)
        EXPECT_EQ(rep.devices[i].report.summary.preemptions, 0u);
}

TEST(ClusterPreempt, ReclamationNeedsDemand)
{
    // A trickle arrival rate: nobody waits, so even doomed decodes
    // keep their grants (preempting them would buy nothing).
    auto cfg = tinyClusterConfig(
        2, cluster::DispatchKind::RoundRobin,
        serving::SchedulePolicy::ContinuousBatching, 0.5, 13, 6);
    cfg.engine.traffic.slo.tpotSec = 2e-6;
    cfg.engine.preempt.enabled = true;
    const auto rep = cluster::ClusterEngine(cfg).run();
    EXPECT_TRUE(rep.aggregate.drained);
    EXPECT_EQ(rep.aggregate.summary.preemptions, 0u);
}

// ---- Heterogeneous fleets ----------------------------------------------

TEST(ClusterHetero, MixedFleetServesAndRollsUpPoolsPerDevice)
{
    // Round-robin so every device type demonstrably serves work
    // (join-shortest-kv legitimately keeps the trace on the roomy
    // eDRAM pools at this load; its routing is covered in
    // ClusterDispatch).
    auto cfg = tinyClusterConfig(
        2, cluster::DispatchKind::RoundRobin,
        serving::SchedulePolicy::ContinuousBatching, 500.0, 31, 24);
    cfg.devices = cluster::heteroEdramSramFleet(4, 2048, 512, 256, 4);
    cluster::ClusterEngine engine(cfg);
    const auto rep = engine.run();

    ASSERT_EQ(rep.devices.size(), 4u);
    EXPECT_EQ(rep.devices[0].name, "edram0");
    EXPECT_EQ(rep.devices[1].name, "sram1");
    EXPECT_EQ(rep.devices[0].report.poolTokens, 512u);
    EXPECT_EQ(rep.devices[1].report.poolTokens, 256u);
    EXPECT_EQ(rep.aggregate.poolTokens, 2u * 512u + 2u * 256u);
    EXPECT_TRUE(rep.aggregate.drained);
    EXPECT_EQ(rep.aggregate.summary.completed +
                  rep.aggregate.summary.rejected,
              cfg.engine.traffic.numRequests);
    // Both memory technologies served work.
    EXPECT_GT(rep.devices[0].dispatched + rep.devices[2].dispatched,
              0u);
    EXPECT_GT(rep.devices[1].dispatched + rep.devices[3].dispatched,
              0u);
    // Only the eDRAM-backed devices burn refresh energy.
    const double edram_refresh =
        rep.devices[0].report.summary.energy.refresh.j() +
        rep.devices[2].report.summary.energy.refresh.j();
    const double sram_refresh =
        rep.devices[1].report.summary.energy.refresh.j() +
        rep.devices[3].report.summary.energy.refresh.j();
    EXPECT_GT(edram_refresh, 0.0);
    EXPECT_EQ(sram_refresh, 0.0);
    EXPECT_NEAR(rep.refreshEnergyJ, edram_refresh + sram_refresh,
                1e-12 * std::max(1.0, edram_refresh));
}

// ---- Roll-up arithmetic -------------------------------------------------

TEST(ClusterMetricsSuite, CoefficientOfVariationHandChecked)
{
    EXPECT_DOUBLE_EQ(cluster::coefficientOfVariation({}), 0.0);
    EXPECT_DOUBLE_EQ(cluster::coefficientOfVariation({5.0, 5.0}), 0.0);
    // mean 3, population stddev sqrt(((2-3)^2 + (4-3)^2)/2) = 1.
    EXPECT_DOUBLE_EQ(cluster::coefficientOfVariation({2.0, 4.0}),
                     1.0 / 3.0);
    EXPECT_DOUBLE_EQ(cluster::coefficientOfVariation({0.0, 0.0}), 0.0);
}

TEST(ClusterMetricsSuite, AggregateCountersAreDeviceSums)
{
    auto cfg = tinyClusterConfig(3, cluster::DispatchKind::RoundRobin,
                                 serving::SchedulePolicy::EdfChunked,
                                 300.0, 17, 24);
    cfg.engine.chunkTokens = 16;
    const auto rep = cluster::ClusterEngine(cfg).run();

    std::uint64_t steps = 0, decodes = 0, chunks = 0, prefills = 0;
    std::size_t completed = 0, dispatched = 0, pool = 0;
    double energy = 0.0;
    for (const auto &d : rep.devices) {
        steps += d.report.engineSteps;
        decodes += d.report.decodeSteps;
        chunks += d.report.prefillChunks;
        prefills += d.report.prefills;
        completed += d.report.summary.completed;
        dispatched += d.dispatched;
        pool += d.report.poolTokens;
        energy += d.report.summary.energy.total().j();
    }
    EXPECT_EQ(rep.aggregate.engineSteps, steps);
    EXPECT_EQ(rep.aggregate.decodeSteps, decodes);
    EXPECT_EQ(rep.aggregate.prefillChunks, chunks);
    EXPECT_EQ(rep.aggregate.prefills, prefills);
    EXPECT_EQ(rep.aggregate.summary.completed, completed);
    EXPECT_EQ(dispatched, cfg.engine.traffic.numRequests);
    EXPECT_EQ(rep.aggregate.poolTokens, pool);
    EXPECT_NEAR(rep.aggregate.summary.energy.total().j(), energy,
                1e-9 * std::max(1.0, energy));
    EXPECT_GE(rep.loadImbalanceCv, 0.0);
    EXPECT_GE(rep.meanKvPeakUtilization, 0.0);
    EXPECT_LE(rep.meanKvPeakUtilization, 1.0);
}

TEST(ClusterMetricsSuite, MergeMatchesManualCombination)
{
    serving::ServingMetrics a;
    serving::ServingMetrics b;
    auto mkreq = [](std::uint64_t id, double ttft, double e2e) {
        serving::Request r;
        r.id = id;
        r.task = sim::lambada();
        r.task.decLen = 10;
        r.arrival = Time::seconds(0.0);
        r.firstToken = Time::seconds(ttft);
        r.completed = Time::seconds(e2e);
        r.generated = 10;
        r.state = serving::RequestState::Completed;
        return r;
    };
    a.onCompleted(mkreq(1, 1.0, 11.0));
    a.onBypass(2);
    b.onCompleted(mkreq(2, 3.0, 13.0));
    b.onCompleted(mkreq(3, 2.0, 12.0));
    b.onPreempted();

    serving::ServingMetrics merged;
    merged.merge(a);
    merged.merge(b);
    const auto s = merged.summarize(Time::seconds(13.0));
    EXPECT_EQ(s.completed, 3u);
    EXPECT_EQ(s.admissionBypasses, 2u);
    EXPECT_EQ(s.preemptions, 1u);
    EXPECT_DOUBLE_EQ(s.ttftMean, 2.0);
    EXPECT_DOUBLE_EQ(s.ttftP50, 2.0);
    EXPECT_DOUBLE_EQ(s.ttftP95, 3.0);
}

} // namespace
} // namespace kelle
