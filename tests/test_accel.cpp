/**
 * @file
 * Tests for the accelerator library: cycle-true systolic array,
 * systolic evictor, SFU (Softermax + LUTs), scheduler lifetimes and
 * the analytic timing model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "accel/area_model.hpp"
#include "accel/comparators.hpp"
#include "accel/scheduler.hpp"
#include "accel/sfu.hpp"
#include "accel/systolic_array.hpp"
#include "accel/systolic_evictor.hpp"
#include "accel/timing_model.hpp"
#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace kelle {
namespace accel {
namespace {

Int8Matrix
randomI8(std::size_t r, std::size_t c, Rng &rng)
{
    Int8Matrix m(r, c);
    for (auto &v : m.data)
        v = static_cast<std::int8_t>(
            static_cast<int>(rng.below(255)) - 127);
    return m;
}

TEST(SystolicArray, SingleTileMatchesReference)
{
    Rng rng(1);
    SystolicArray rsa(8, 8);
    const auto a = randomI8(5, 8, rng);
    const auto w = randomI8(8, 8, rng);
    rsa.loadWeights(w);
    const auto out = rsa.stream(a);
    const auto ref = referenceMatmul(a, w);
    ASSERT_EQ(out.rows, ref.rows);
    for (std::size_t i = 0; i < out.rows; ++i)
        for (std::size_t j = 0; j < out.cols; ++j)
            EXPECT_EQ(out.at(i, j), ref.at(i, j)) << i << "," << j;
}

TEST(SystolicArray, PartialTile)
{
    Rng rng(2);
    SystolicArray rsa(8, 8);
    const auto a = randomI8(3, 5, rng); // K=5 < rows
    const auto w = randomI8(5, 6, rng); // N=6 < cols
    rsa.loadWeights(w);
    const auto out = rsa.stream(a);
    const auto ref = referenceMatmul(a, w);
    for (std::size_t i = 0; i < out.rows; ++i)
        for (std::size_t j = 0; j < out.cols; ++j)
            EXPECT_EQ(out.at(i, j), ref.at(i, j));
}

TEST(SystolicArray, TiledMatmulLargerThanArray)
{
    Rng rng(3);
    SystolicArray rsa(8, 8);
    const auto a = randomI8(13, 37, rng);
    const auto b = randomI8(37, 21, rng);
    const auto out = rsa.matmul(a, b);
    const auto ref = referenceMatmul(a, b);
    for (std::size_t i = 0; i < out.rows; ++i)
        for (std::size_t j = 0; j < out.cols; ++j)
            EXPECT_EQ(out.at(i, j), ref.at(i, j));
}

TEST(SystolicArray, TransposedLoadComputesABt)
{
    Rng rng(4);
    SystolicArray rsa(8, 8);
    const auto a = randomI8(4, 8, rng);
    const auto b = randomI8(6, 8, rng); // want a * b^T
    rsa.loadWeights(b, /*transposed=*/true);
    const auto out = rsa.stream(a);

    Int8Matrix bt(b.cols, b.rows);
    for (std::size_t i = 0; i < b.rows; ++i)
        for (std::size_t j = 0; j < b.cols; ++j)
            bt.at(j, i) = b.at(i, j);
    const auto ref = referenceMatmul(a, bt);
    for (std::size_t i = 0; i < out.rows; ++i)
        for (std::size_t j = 0; j < out.cols; ++j)
            EXPECT_EQ(out.at(i, j), ref.at(i, j));
}

TEST(SystolicArray, CycleCountMatchesPipelineModel)
{
    SystolicArray rsa(8, 8);
    Rng rng(5);
    const auto w = randomI8(8, 8, rng);
    const auto a = randomI8(10, 8, rng);
    rsa.loadWeights(w);
    const auto load_cycles = rsa.stats().cycles;
    EXPECT_EQ(load_cycles, 8u); // K rows shift in
    rsa.stream(a);
    // M + K + N - 1 streaming cycles.
    EXPECT_EQ(rsa.stats().cycles - load_cycles, 10u + 8u + 8u - 1u);
}

TEST(SystolicArray, UtilizationReasonable)
{
    SystolicArray rsa(16, 16);
    Rng rng(6);
    const auto a = randomI8(256, 16, rng);
    const auto w = randomI8(16, 16, rng);
    rsa.loadWeights(w);
    rsa.stream(a);
    // Long streams amortize fill/drain: utilization approaches 1.
    EXPECT_GT(rsa.stats().utilization(), 0.8);
}

TEST(SystolicArray, StatsAccumulateMacs)
{
    SystolicArray rsa(4, 4);
    Rng rng(7);
    const auto a = randomI8(6, 4, rng);
    const auto w = randomI8(4, 4, rng);
    rsa.loadWeights(w);
    rsa.stream(a);
    EXPECT_EQ(rsa.stats().macs, 6u * 4u * 4u);
}

// ---- Systolic evictor --------------------------------------------

TEST(SystolicEvictor, FindsMinAfterAccumulation)
{
    SystolicEvictor se(5);
    se.loadScores({5.0f, 1.0f, 3.0f, 0.5f, 2.0f});
    se.beginPass();
    // Attention scores drain from the RSA one row per cycle.
    const float add[5] = {0.1f, 0.2f, 0.3f, 4.0f, 0.5f};
    for (std::size_t i = 0; i < 5; ++i)
        se.onOutput(i, 0, static_cast<std::int32_t>(add[i] * 0), 0);
    // With zero integer adds the min is slot 3 (0.5).
    EXPECT_EQ(se.finalize(), 3u);
}

TEST(SystolicEvictor, AccumulatesDrainedScores)
{
    SystolicEvictor se(4);
    se.loadScores({10.0f, 10.0f, 10.0f, 10.0f});
    se.beginPass();
    se.onOutput(0, 0, 5, 0);
    se.onOutput(1, 0, -8, 0); // slot 1 becomes 2: the minimum
    se.onOutput(2, 0, 0, 0);
    se.onOutput(3, 0, 3, 0);
    EXPECT_EQ(se.finalize(), 1u);
    EXPECT_FLOAT_EQ(se.scores()[1], 2.0f);
}

TEST(SystolicEvictor, ProtectionMasksSlots)
{
    SystolicEvictor se(3);
    se.loadScores({0.0f, 5.0f, 9.0f});
    se.setProtected(0, true); // sink
    se.beginPass();
    for (std::size_t i = 0; i < 3; ++i)
        se.onOutput(i, 0, 0, 0);
    EXPECT_EQ(se.finalize(), 1u); // slot 0 is protected
}

TEST(SystolicEvictor, MatchesReferenceArgminRandom)
{
    Rng rng(8);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 2 + rng.below(64);
        std::vector<float> scores(n);
        std::vector<std::int32_t> adds(n);
        for (std::size_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(rng.uniform(0.0, 100.0));
            adds[i] = static_cast<std::int32_t>(rng.below(1000)) - 500;
        }
        SystolicEvictor se(n);
        se.loadScores(scores);
        se.beginPass();
        for (std::size_t i = 0; i < n; ++i)
            se.onOutput(i, 0, adds[i], 0);
        const std::size_t got = se.finalize();

        std::size_t want = 0;
        for (std::size_t i = 1; i < n; ++i) {
            if (scores[i] + static_cast<float>(adds[i]) <
                scores[want] + static_cast<float>(adds[want]))
                want = i;
        }
        EXPECT_EQ(got, want) << "trial " << trial;
    }
}

TEST(SystolicEvictor, PipelineLatencyIsOneExtraCycle)
{
    // When every score has drained through onOutput, finalize only
    // needs the final latch cycle — the min search is fully hidden
    // behind the RSA drain (Section 5.3).
    SystolicEvictor se(32);
    se.loadScores(std::vector<float>(32, 1.0f));
    se.beginPass();
    for (std::size_t i = 0; i < 32; ++i)
        se.onOutput(i, 0, 1, 0);
    se.finalize();
    EXPECT_EQ(se.extraCycles(), 1u);
}

TEST(SystolicEvictor, IntegratesWithArrayTap)
{
    // Compute scores = K * q on the array with the evictor tapping
    // the drain; verify the evictor's victim equals argmin of the
    // accumulated (preloaded + fresh) scores.
    Rng rng(9);
    const std::size_t n_tokens = 12, dh = 8;
    SystolicArray rsa(8, 8);
    auto kmat = randomI8(n_tokens, dh, rng); // cached keys
    auto q = randomI8(dh, 1, rng);           // query as weight column
    std::vector<float> pre(n_tokens);
    for (auto &v : pre)
        v = static_cast<float>(rng.uniform(0.0, 1000.0));

    SystolicEvictor se(n_tokens);
    se.loadScores(pre);
    se.beginPass();
    rsa.loadWeights(q);
    const auto scores = rsa.stream(kmat, &se);
    const std::size_t got = se.finalize();

    std::size_t want = 0;
    for (std::size_t i = 1; i < n_tokens; ++i) {
        if (pre[i] + static_cast<float>(scores.at(i, 0)) <
            pre[want] + static_cast<float>(scores.at(want, 0)))
            want = i;
    }
    EXPECT_EQ(got, want);
}

// ---- SFU ----------------------------------------------------------

TEST(Sfu, SoftermaxMatchesSoftmax)
{
    Sfu sfu;
    Rng rng(10);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<float> x(64);
        for (auto &v : x)
            v = static_cast<float>(rng.uniform(-10.0, 10.0));
        std::vector<float> ref = x;
        tensor::softmaxInPlace(ref);
        sfu.softermax(x);
        for (std::size_t i = 0; i < x.size(); ++i)
            EXPECT_NEAR(x[i], ref[i], 5e-3f);
    }
}

TEST(Sfu, SoftermaxSumsToOne)
{
    Sfu sfu;
    std::vector<float> x = {3.0f, -2.0f, 0.5f, 9.0f, 9.0f};
    sfu.softermax(x);
    float sum = 0.0f;
    for (float v : x)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-3f);
}

TEST(Sfu, SoftermaxStableForLargeInputs)
{
    Sfu sfu;
    std::vector<float> x = {500.0f, 499.0f, -500.0f};
    sfu.softermax(x);
    EXPECT_FALSE(std::isnan(x[0]));
    EXPECT_GT(x[0], x[1]);
    EXPECT_NEAR(x[2], 0.0f, 1e-6f);
}

TEST(Sfu, Exp2LutAccuracy)
{
    Sfu sfu;
    for (float x = -10.0f; x < 10.0f; x += 0.0371f) {
        EXPECT_NEAR(sfu.exp2Lut(x), std::exp2(x),
                    std::exp2(x) * 2e-4 + 1e-6)
            << "x = " << x;
    }
}

TEST(Sfu, LutTablesTight)
{
    Sfu sfu;
    EXPECT_LT(sfu.exp2Table().maxAbsError(), 1e-4);
    EXPECT_LT(sfu.geluTable().maxAbsError(), 2e-3);
    EXPECT_LT(sfu.siluTable().maxAbsError(), 2e-3);
}

TEST(Sfu, GeluSiluMatchReferenceInDomain)
{
    Sfu sfu;
    std::vector<float> xs = {-6.0f, -2.0f, -0.5f, 0.0f, 0.5f, 2.0f, 6.0f};
    std::vector<float> g = xs, s = xs;
    sfu.gelu(g);
    sfu.silu(s);
    std::vector<float> gr = xs, sr = xs;
    tensor::geluInPlace(gr);
    tensor::siluInPlace(sr);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_NEAR(g[i], gr[i], 3e-3f);
        EXPECT_NEAR(s[i], sr[i], 3e-3f);
    }
}

// ---- Scheduler -----------------------------------------------------

TEST(Scheduler, LifetimesMatchEquations)
{
    const Time ts = Time::micros(10), te = Time::micros(4);
    // Eq. 7: 6 T_S + 4 T_e.
    EXPECT_NEAR(transientLifetime(SchedulerKind::Baseline, ts, te).us(),
                6 * 10 + 4 * 4, 1e-9);
    // Eq. 8: 4 T_S + 1 T_e.
    EXPECT_NEAR(transientLifetime(SchedulerKind::Kelle, ts, te).us(),
                4 * 10 + 4, 1e-9);
}

TEST(Scheduler, KelleLatencyIsMaxOfStreams)
{
    PhaseTimes p;
    p.dram = Time::micros(100);
    p.sramW = Time::micros(20);
    p.kvMem = Time::micros(30);
    p.compute = Time::micros(50);
    p.sfu = Time::micros(5);
    EXPECT_NEAR(composeStepLatency(SchedulerKind::Baseline, p).us(),
                205.0, 1e-9);
    EXPECT_NEAR(composeStepLatency(SchedulerKind::Kelle, p).us(), 105.0,
                1e-9);
}

// ---- Timing model ---------------------------------------------------

Workload
smallWorkload()
{
    Workload w;
    w.model = model::llama2_7b();
    w.ctxLen = 128;
    w.decLen = 64; // keep tests fast
    w.batch = 4;
    return w;
}

TEST(TimingModel, KelleFasterAndGreenerThanBaseline)
{
    const auto w = smallWorkload();
    const auto base = simulate(originalSramSystem(), w);
    const auto kelle = simulate(kelleEdramSystem(256), w);
    const auto cmp = compare(base, kelle);
    EXPECT_GT(cmp.speedup, 1.0);
    EXPECT_GT(cmp.energyEfficiency, 1.0);
}

TEST(TimingModel, EvictionShrinksKvTraffic)
{
    auto w = smallWorkload();
    w.decLen = 512;
    auto no_evict = kelleEdramSystem(256);
    no_evict.kv.evict = false;
    no_evict.kv.recompute = RecomputeMode::None;
    const auto full = simulate(no_evict, w);
    const auto pruned = simulate(kelleEdramSystem(256), w);
    EXPECT_LT(pruned.dramBytesTotal, full.dramBytesTotal);
    EXPECT_LT(pruned.totalLatency().sec(), full.totalLatency().sec());
}

TEST(TimingModel, RefreshEnergyOrderingOrgUniform2drp)
{
    const auto w = smallWorkload();
    auto org = kelleEdramSystem(256);
    org.refresh.mode = RefreshSpec::Mode::Retention;
    auto uni = kelleEdramSystem(256);
    uni.refresh.mode = RefreshSpec::Mode::Uniform;
    uni.refresh.intervals =
        edram::RefreshIntervals::uniform(Time::micros(360));
    auto twod = kelleEdramSystem(256);

    const double e_org =
        simulate(org, w).decodeEnergy.refresh.j();
    const double e_uni =
        simulate(uni, w).decodeEnergy.refresh.j();
    const double e_2d =
        simulate(twod, w).decodeEnergy.refresh.j();
    EXPECT_GT(e_org, e_uni);
    EXPECT_GT(e_uni, e_2d);
}

TEST(TimingModel, RecomputeReducesResidentBytes)
{
    auto w = smallWorkload();
    auto none = kelleEdramSystem(256);
    none.kv.recompute = RecomputeMode::None;
    auto over = kelleEdramSystem(256);
    over.kv.recompute = RecomputeMode::Over;
    const auto r_none = simulate(none, w);
    const auto r_over = simulate(over, w);
    EXPECT_LT(r_over.kvResidentBytesEnd, r_none.kvResidentBytesEnd);
    EXPECT_GT(r_over.macsTotal, r_none.macsTotal);
}

TEST(TimingModel, OverRecomputeBecomesComputeBound)
{
    auto w = smallWorkload();
    w.decLen = 128;
    auto auto_rec = kelleEdramSystem(256);
    auto over = kelleEdramSystem(256);
    over.kv.recompute = RecomputeMode::Over;
    over.kv.popularFraction = 0.9;
    const auto r_auto = simulate(auto_rec, w);
    const auto r_over = simulate(over, w);
    // Over-recomputation raises op intensity but hurts latency
    // (Figure 16a's compute-bound regime).
    EXPECT_GT(r_over.opIntensity(), r_auto.opIntensity());
    EXPECT_GT(r_over.decodeLatency.sec(), r_auto.decodeLatency.sec());
}

TEST(TimingModel, SoftwareEvictorCostsLatency)
{
    const auto w = smallWorkload();
    auto hw = aepSramSystem(256);
    auto sw = aepSramSystem(256);
    sw.kv.systolicEvictor = false;
    const auto r_hw = simulate(hw, w);
    const auto r_sw = simulate(sw, w);
    EXPECT_GT(r_sw.decodeLatency.sec(), r_hw.decodeLatency.sec());
    // Section 8.1.4: ~7% latency.
    EXPECT_NEAR(r_sw.decodeLatency.sec() / r_hw.decodeLatency.sec(),
                1.07, 0.02);
}

TEST(TimingModel, LongerSequencesRaiseLatency)
{
    auto sys = kelleEdramSystem(4096);
    auto w = smallWorkload();
    w.decLen = 32;
    w.ctxLen = 512;
    const auto short_run = simulate(sys, w);
    w.ctxLen = 4096;
    const auto long_run = simulate(sys, w);
    EXPECT_GT(long_run.decodeLatency.sec(), short_run.decodeLatency.sec());
}

TEST(TimingModel, PrefillComputeSpeedupHelpsPrefillOnly)
{
    const auto w = smallWorkload();
    auto npu = comparators::llmNpu();
    auto base = npu; // identical platform, no NPU prompt offload
    base.prefillComputeSpeedup = 1.0;
    const auto rb = simulate(base, w);
    const auto rn = simulate(npu, w);
    EXPECT_LE(rn.prefillLatency.sec(), rb.prefillLatency.sec());
    EXPECT_NEAR(rn.decodeLatency.sec(), rb.decodeLatency.sec(),
                rb.decodeLatency.sec() * 1e-9);
}

TEST(Technology, KellePeakTopsMatchesPaper)
{
    // Section 8: "Kelle accelerator achieves 4.13 INT8 TOPs".
    EXPECT_NEAR(kelleTech().rsa.peakInt8Tops(), 4.13, 0.1);
}

TEST(TimingModel, Comparators)
{
    // The paper's LA task setting (ctx 128 / dec 512 / batch 16).
    Workload w;
    w.model = model::llama2_7b();
    w.ctxLen = 128;
    w.decLen = 512;
    w.batch = 16;
    const auto jets = simulate(comparators::jetsonOrin(), w);
    const auto kelle = simulate(kelleEdramSystem(128), w);
    const auto cmp = compare(jets, kelle);
    EXPECT_GT(cmp.speedup, 1.0);
    EXPECT_GT(cmp.energyEfficiency, 1.0);

    // On a decode-heavy workload Kelle clearly outruns COMET, whose
    // gain over Jetson tracks its 4x KV compression (Figure 14).
    Workload lw = w;
    lw.ctxLen = 512;
    lw.decLen = 2048;
    const auto jets_l = simulate(comparators::jetsonOrin(), lw);
    const auto comet_l = simulate(comparators::comet(), lw);
    const auto kelle_l = simulate(kelleEdramSystem(1024), lw);
    const auto c_comet = compare(jets_l, comet_l);
    const auto c_kelle = compare(jets_l, kelle_l);
    EXPECT_GT(c_comet.speedup, 1.0);
    EXPECT_GT(c_kelle.speedup, c_comet.speedup);
}

TEST(AreaModel, MatchesPaperBreakdown)
{
    const auto rep = areaReport(kelleTech());
    // Section 8: total 9.5 mm^2; RSA 23%, eDRAM 33%, SRAM 37%, SFU 7%.
    EXPECT_NEAR(rep.onChipTotal.inMm2(), 9.5, 1.0);
    for (const auto &e : rep.onChip) {
        if (e.name == "rsa") {
            EXPECT_NEAR(e.share, 0.23, 0.04);
        } else if (e.name == "kv_mem") {
            EXPECT_NEAR(e.share, 0.33, 0.05);
        } else if (e.name == "weight_sram") {
            EXPECT_NEAR(e.share, 0.37, 0.05);
        } else if (e.name == "sfu") {
            EXPECT_NEAR(e.share, 0.07, 0.03);
        }
    }
}

TEST(EnergyBreakdown, SharesSumToOne)
{
    EnergyBreakdown e;
    e.rsa = Energy::joules(1);
    e.dram = Energy::joules(3);
    e.refresh = Energy::joules(2);
    double sum = 0.0;
    for (const auto &[name, share] : e.shares())
        sum += share;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(e.total().j(), 6.0);
    EXPECT_DOUBLE_EQ(e.onChipTotal().j(), 3.0);
}

} // namespace
} // namespace accel
} // namespace kelle
