/**
 * @file
 * The simulation fast path's correctness contract (ISSUE 5): every
 * shortcut — memoized step costing, telescoped accumulation, the
 * serving engines' allocation-free fast-forward stepping — must be
 * *bitwise* invisible. Four suites:
 *
 *  - StepCostCache: cached vs uncached StepReports are equal on every
 *    double across randomized resident multisets, chunk offsets, and
 *    eDRAM/SRAM system configs; batches sharing the (batch size,
 *    total resident) key produce identical reports however the tokens
 *    are distributed; a capacity-capped cache bypasses without
 *    perturbing values.
 *  - TimingTelescoping: the closed-form grouped summation in
 *    simulateBatchedDecodeStep and the memoized decode loop in
 *    simulate() equal their original loop forms (kept as
 *    accel::detail references) bit-for-bit.
 *  - FastPathEquivalence: whole serving and cluster runs with
 *    ServingConfig::fastSim on vs off produce field-for-field
 *    identical reports — the end-to-end guarantee the golden-digest
 *    test pins against the checked-in outputs.
 *  - AllocationFree: steady-state decode stepping performs zero heap
 *    allocations (global operator new counter; the engine's scratch
 *    buffers, SBO-sized callbacks and reserved queue make the hot
 *    loop allocation-free once warm).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <tuple>
#include <vector>

#include "accel/step_cost_cache.hpp"
#include "accel/timing_model.hpp"
#include "cluster/cluster_engine.hpp"
#include "serving/scheduler.hpp"
#include "sim/workloads.hpp"

using namespace kelle;

// ---- global allocation counter (AllocationFree suite) --------------
// Counts every scalar/array non-aligned heap allocation in the
// process. Only the AllocationFree test reads it; the other suites
// are unaffected beyond a negligible increment cost.

namespace {
std::atomic<std::uint64_t> g_heapAllocs{0};
}

// GCC cannot see that these replacements pair malloc with free
// consistently across new/delete; the heuristic warning is spurious.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace {

// ---- bitwise comparison helpers ------------------------------------

void
expectEnergyEq(const accel::EnergyBreakdown &a,
               const accel::EnergyBreakdown &b)
{
    EXPECT_EQ(a.rsa.j(), b.rsa.j());
    EXPECT_EQ(a.sfu.j(), b.sfu.j());
    EXPECT_EQ(a.weightSram.j(), b.weightSram.j());
    EXPECT_EQ(a.kvMem.j(), b.kvMem.j());
    EXPECT_EQ(a.refresh.j(), b.refresh.j());
    EXPECT_EQ(a.dram.j(), b.dram.j());
    EXPECT_EQ(a.leakage.j(), b.leakage.j());
}

void
expectStepEq(const accel::StepReport &a, const accel::StepReport &b)
{
    EXPECT_EQ(a.latency.sec(), b.latency.sec());
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.macs, b.macs);
    expectEnergyEq(a.energy, b.energy);
}

void
expectSummaryEq(const serving::ServingSummary &a,
                const serving::ServingSummary &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.makespan.sec(), b.makespan.sec());
    EXPECT_EQ(a.ttftMean, b.ttftMean);
    EXPECT_EQ(a.ttftP50, b.ttftP50);
    EXPECT_EQ(a.ttftP95, b.ttftP95);
    EXPECT_EQ(a.ttftP99, b.ttftP99);
    EXPECT_EQ(a.e2eP50, b.e2eP50);
    EXPECT_EQ(a.e2eP95, b.e2eP95);
    EXPECT_EQ(a.e2eP99, b.e2eP99);
    EXPECT_EQ(a.tpotMean, b.tpotMean);
    EXPECT_EQ(a.tpotP50, b.tpotP50);
    EXPECT_EQ(a.tpotP95, b.tpotP95);
    EXPECT_EQ(a.tokenGapP95, b.tokenGapP95);
    EXPECT_EQ(a.goodputTokensPerSec, b.goodputTokensPerSec);
    EXPECT_EQ(a.sloTtftAttainment, b.sloTtftAttainment);
    EXPECT_EQ(a.sloTpotAttainment, b.sloTpotAttainment);
    EXPECT_EQ(a.sloAttainment, b.sloAttainment);
    EXPECT_EQ(a.admissionBypasses, b.admissionBypasses);
    EXPECT_EQ(a.maxQueueWaitSec, b.maxQueueWaitSec);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.meanQueueDepth, b.meanQueueDepth);
    EXPECT_EQ(a.maxQueueDepth, b.maxQueueDepth);
    EXPECT_EQ(a.meanBudgetFraction, b.meanBudgetFraction);
    EXPECT_EQ(a.energyPerToken, b.energyPerToken);
    expectEnergyEq(a.energy, b.energy);
}

void
expectReportEq(const serving::ServingReport &a,
               const serving::ServingReport &b)
{
    expectSummaryEq(a.summary, b.summary);
    EXPECT_EQ(a.engineSteps, b.engineSteps);
    EXPECT_EQ(a.decodeSteps, b.decodeSteps);
    EXPECT_EQ(a.prefillChunks, b.prefillChunks);
    EXPECT_EQ(a.prefills, b.prefills);
    EXPECT_EQ(a.poolTokens, b.poolTokens);
    EXPECT_EQ(a.poolCapacityBytes, b.poolCapacityBytes);
    EXPECT_EQ(a.poolPeakBytes, b.poolPeakBytes);
    EXPECT_EQ(a.shrunkGrants, b.shrunkGrants);
    EXPECT_EQ(a.deferrals, b.deferrals);
    EXPECT_EQ(a.drained, b.drained);
}

/** The config axes the cache must be exact over. */
std::vector<accel::SystemConfig>
cacheSystems()
{
    return {accel::kelleEdramSystem(2048), accel::aerpSramSystem(1024),
            accel::aepSramSystem(512), accel::originalEdramSystem()};
}

std::vector<std::size_t>
randomResident(std::mt19937_64 &rng, std::size_t max_batch,
               std::size_t max_tokens)
{
    std::uniform_int_distribution<std::size_t> bdist(1, max_batch);
    std::uniform_int_distribution<std::size_t> ndist(1, max_tokens);
    std::uniform_int_distribution<int> rep(0, 1);
    std::vector<std::size_t> r(bdist(rng));
    for (std::size_t i = 0; i < r.size(); ++i) {
        // Half the members repeat the previous value: decode batches
        // clamp at shared budgets, so runs of equal counts are the
        // common case the grouped closed form telescopes.
        if (i > 0 && rep(rng))
            r[i] = r[i - 1];
        else
            r[i] = ndist(rng);
    }
    return r;
}

// ---- StepCostCache -------------------------------------------------

TEST(StepCostCache, CachedDecodeEqualsUncachedAcrossRandomShapes)
{
    const auto m = model::llama2_7b();
    std::mt19937_64 rng(7);
    for (const auto &sys : cacheSystems()) {
        accel::StepCostCache cache(sys, m);
        for (int i = 0; i < 50; ++i) {
            const auto resident = randomResident(rng, 24, 4096);
            const auto &cached = cache.batchedDecodeStep(resident);
            const auto uncached =
                accel::simulateBatchedDecodeStep(sys, m, resident);
            expectStepEq(cached, uncached);
            // Second query of the same shape must hit and stay exact.
            expectStepEq(cache.batchedDecodeStep(resident), uncached);
        }
        EXPECT_GT(cache.stats().hits, 0u);
    }
}

TEST(StepCostCache, EqualKeyBatchesProduceIdenticalReports)
{
    // The decode key is (batch size, total resident tokens): every
    // per-member accumuland is an integer-valued double, so the sums
    // are exact and any distribution of the same total over the same
    // batch size yields the same bits.
    const auto sys = accel::kelleEdramSystem(2048);
    const auto m = model::llama2_7b();
    std::mt19937_64 rng(11);
    for (int i = 0; i < 40; ++i) {
        auto a = randomResident(rng, 16, 4096);
        if (a.size() < 2)
            a.push_back(a.front());
        // Redistribute one token between two members: same (B, N).
        auto b = a;
        std::size_t from = 0;
        while (from < b.size() && b[from] <= 1)
            ++from;
        if (from == b.size())
            continue;
        const std::size_t to = (from + 1) % b.size();
        b[from] -= 1;
        b[to] += 1;
        // And a shuffled permutation: same multiset, same key.
        auto c = a;
        std::shuffle(c.begin(), c.end(), rng);
        const auto ra = accel::simulateBatchedDecodeStep(sys, m, a);
        const auto rb = accel::simulateBatchedDecodeStep(sys, m, b);
        const auto rc = accel::simulateBatchedDecodeStep(sys, m, c);
        expectStepEq(ra, rb);
        expectStepEq(ra, rc);
    }
}

TEST(StepCostCache, CachedPrefillChunkEqualsUncached)
{
    const auto m = model::llama2_7b();
    std::mt19937_64 rng(13);
    std::uniform_int_distribution<std::size_t> off(0, 2048);
    std::uniform_int_distribution<std::size_t> len(1, 512);
    for (const auto &sys : cacheSystems()) {
        accel::StepCostCache cache(sys, m);
        for (int i = 0; i < 50; ++i) {
            const std::size_t o = off(rng);
            const std::size_t l = len(rng);
            const auto &cached = cache.prefillChunk(o, l);
            const auto uncached =
                accel::simulatePrefillChunk(sys, m, o, l);
            expectStepEq(cached, uncached);
            expectStepEq(cache.prefillChunk(o, l), uncached);
        }
    }
}

TEST(StepCostCache, CapacityCapBypassesWithoutPerturbingValues)
{
    const auto sys = accel::kelleEdramSystem(2048);
    const auto m = model::llama2_7b();
    accel::StepCostCache cache(sys, m, /*max_entries=*/4);
    for (std::size_t n = 100; n < 120; ++n) {
        const std::vector<std::size_t> resident{n, n + 1};
        expectStepEq(cache.batchedDecodeStep(resident),
                     accel::simulateBatchedDecodeStep(sys, m, resident));
    }
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().bypasses, 16u);
}

// ---- TimingTelescoping ---------------------------------------------

TEST(TimingTelescoping, GroupedBatchedDecodeEqualsLoopForm)
{
    const auto m = model::llama2_7b();
    std::mt19937_64 rng(17);
    for (const auto &sys : cacheSystems()) {
        for (int i = 0; i < 80; ++i) {
            const auto resident = randomResident(rng, 32, 8192);
            expectStepEq(
                accel::simulateBatchedDecodeStep(sys, m, resident),
                accel::detail::batchedDecodeStepLoopReference(
                    sys, m, resident));
        }
    }
}

TEST(TimingTelescoping, MemoizedSimulateDecodeLoopEqualsLoopForm)
{
    // decLen spans the budget clamp, so the memoized loop exercises
    // both the growing prefix and the saturated tail it telescopes.
    for (const auto &sys : cacheSystems()) {
        for (std::size_t dec : {std::size_t{64}, std::size_t{1000},
                                std::size_t{3000}}) {
            accel::Workload w;
            w.model = model::llama2_7b();
            w.ctxLen = 512;
            w.decLen = dec;
            w.batch = 4;
            const auto fast = accel::simulate(sys, w);
            const auto loop = accel::detail::simulateLoopReference(sys, w);
            EXPECT_EQ(fast.prefillLatency.sec(), loop.prefillLatency.sec());
            EXPECT_EQ(fast.decodeLatency.sec(), loop.decodeLatency.sec());
            EXPECT_EQ(fast.dramBytesTotal, loop.dramBytesTotal);
            EXPECT_EQ(fast.macsTotal, loop.macsTotal);
            EXPECT_EQ(fast.recomputedTokensPerStep,
                      loop.recomputedTokensPerStep);
            EXPECT_EQ(fast.kvResidentBytesEnd, loop.kvResidentBytesEnd);
            EXPECT_EQ(fast.kvOnChipFraction, loop.kvOnChipFraction);
            expectEnergyEq(fast.prefillEnergy, loop.prefillEnergy);
            expectEnergyEq(fast.decodeEnergy, loop.decodeEnergy);
        }
    }
}

// ---- FastPathEquivalence -------------------------------------------

serving::ServingConfig
smallServingConfig(std::uint64_t seed, serving::SchedulePolicy policy,
                   std::size_t chunk)
{
    serving::ServingConfig cfg;
    cfg.traffic.ratePerSec = 0.05;
    cfg.traffic.numRequests = 14;
    cfg.traffic.seed = seed;
    cfg.policy = policy;
    cfg.chunkTokens = chunk;
    return cfg;
}

TEST(FastPathEquivalence, SchedulerFastVsSlowAcrossPolicies)
{
    for (const auto policy : serving::allSchedulePolicies()) {
        for (std::size_t chunk : {std::size_t{0}, std::size_t{256}}) {
            for (std::uint64_t seed : {7ull, 42ull}) {
                auto fast = smallServingConfig(seed, policy, chunk);
                auto slow = fast;
                slow.fastSim = false;
                const auto fr = serving::Scheduler(fast).run();
                const auto sr = serving::Scheduler(slow).run();
                expectReportEq(fr, sr);
            }
        }
    }
}

TEST(FastPathEquivalence, ClusterFastVsSlowHeteroFleet)
{
    for (const auto dispatch : cluster::allDispatchPolicies()) {
        for (bool preempt : {false, true}) {
            cluster::ClusterConfig cfg;
            cfg.engine = smallServingConfig(
                42, serving::SchedulePolicy::ContinuousBatching, 0);
            cfg.engine.traffic.numRequests = 16;
            cfg.engine.traffic.ratePerSec = 0.1;
            cfg.engine.traffic.slo.tpotSec = preempt ? 0.15 : 0.0;
            cfg.engine.preempt.enabled = preempt;
            cfg.dispatch = dispatch;
            cfg.devices = cluster::heteroEdramSramFleet(
                2, 2048, 8192, 4096, 8);
            auto slow_cfg = cfg;
            slow_cfg.engine.fastSim = false;
            cluster::ClusterEngine fast(cfg);
            cluster::ClusterEngine slow(slow_cfg);
            const auto fr = fast.run();
            const auto sr = slow.run();
            expectReportEq(fr.aggregate, sr.aggregate);
            ASSERT_EQ(fr.devices.size(), sr.devices.size());
            for (std::size_t i = 0; i < fr.devices.size(); ++i) {
                expectReportEq(fr.devices[i].report,
                               sr.devices[i].report);
                EXPECT_EQ(fr.devices[i].dispatched,
                          sr.devices[i].dispatched);
                EXPECT_EQ(fr.devices[i].busySec, sr.devices[i].busySec);
                EXPECT_EQ(fr.devices[i].kvPeakUtilization,
                          sr.devices[i].kvPeakUtilization);
            }
            EXPECT_EQ(fr.loadImbalanceCv, sr.loadImbalanceCv);
            EXPECT_EQ(fr.refreshEnergyJ, sr.refreshEnergyJ);
        }
    }
}

// ---- AllocationFree ------------------------------------------------

TEST(AllocationFree, SteadyStateDecodeSteppingAllocatesNothing)
{
    // One long-decode request whose context already exceeds its AERP
    // budget (QP: ctx 1024, budget 1024), so the resident multiset is
    // pinned from the first decode step and the cost cache hits from
    // step two on. Dummy events pace the queue so both real and
    // fast-forwarded boundaries are exercised.
    sim::EventQueue queue;
    queue.reserve(2048);
    std::vector<serving::Request> requests;
    serving::Request r;
    r.id = 0;
    r.task = sim::qasper();
    r.arrival = Time::seconds(0);
    requests.push_back(r);

    serving::DeviceConfig cfg;
    cfg.poolTokens = 4096;
    serving::DeviceEngine engine(cfg, queue, requests);
    for (int i = 1; i <= 1200; ++i)
        queue.schedule(Time::seconds(0.3 * i), [] {});
    engine.enqueue(0);

    // Warm-up: prefill, first decode steps, scratch/cache population.
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(queue.runNext());
    const std::uint64_t decode_steps_before = engine.decodeSteps();
    const std::uint64_t allocs_before =
        g_heapAllocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 300; ++i)
        ASSERT_TRUE(queue.runNext());
    const std::uint64_t allocs_after =
        g_heapAllocs.load(std::memory_order_relaxed);
    EXPECT_GT(engine.decodeSteps(), decode_steps_before + 100);
    EXPECT_FALSE(requests[0].done()); // still mid-decode: steady state
    EXPECT_EQ(allocs_after - allocs_before, 0u)
        << "steady-state stepping must not touch the heap";
}

// ---- EventQueueWindow ----------------------------------------------
// The window primitives the parallel cluster engine leans on: the
// empty-queue sentinel, strict-horizon draining, and clock alignment.

TEST(EventQueueWindow, NextEventTimeIsInfinityWhenEmptyOrDrained)
{
    sim::EventQueue q;
    EXPECT_TRUE(std::isinf(q.nextEventTime().sec()));
    q.schedule(Time::micros(3), [] {});
    EXPECT_DOUBLE_EQ(q.nextEventTime().us(), 3.0);
    q.runAll();
    // Draining restores the sentinel; it still compares greater than
    // any finite horizon (the coordinator's min() relies on that).
    EXPECT_TRUE(std::isinf(q.nextEventTime().sec()));
    EXPECT_GT(q.nextEventTime(), Time::seconds(1e30));
}

TEST(EventQueueWindow, RunBeforeIsStrictAndLeavesNowAtLastExecuted)
{
    sim::EventQueue q;
    int ran = 0;
    q.schedule(Time::micros(1), [&] { ++ran; });
    q.schedule(Time::micros(2), [&] { ++ran; });
    q.schedule(Time::micros(3), [&] { ++ran; });
    // Events at exactly the horizon must wait for the global events
    // that sort before them, so only t=1 runs...
    EXPECT_EQ(q.runBefore(Time::micros(2)), 1u);
    EXPECT_EQ(ran, 1);
    // ...and the clock stays at the last executed event, not the
    // horizon, so a later global injection at t=2 is not "the past".
    EXPECT_DOUBLE_EQ(q.now().us(), 1.0);
    EXPECT_DOUBLE_EQ(q.nextEventTime().us(), 2.0);
    EXPECT_EQ(q.runBefore(Time::micros(10)), 2u);
    EXPECT_EQ(ran, 3);
    EXPECT_DOUBLE_EQ(q.now().us(), 3.0);
    // Empty queue: a no-op, not an advance.
    EXPECT_EQ(q.runBefore(Time::micros(20)), 0u);
    EXPECT_DOUBLE_EQ(q.now().us(), 3.0);
}

TEST(EventQueueWindow, AdvanceToMovesTheClockWithoutRunning)
{
    sim::EventQueue q;
    int ran = 0;
    q.schedule(Time::micros(5), [&] { ++ran; });
    q.advanceTo(Time::micros(4));
    EXPECT_EQ(ran, 0);
    EXPECT_DOUBLE_EQ(q.now().us(), 4.0);
    // The aligned clock accepts an injection at the new now (the
    // arrival-dispatch pattern) and never re-runs anything early.
    q.schedule(Time::micros(4), [&] { ++ran; });
    q.runAll();
    EXPECT_EQ(ran, 2);
    // Backwards alignment is a no-op, not a rewind.
    q.advanceTo(Time::micros(1));
    EXPECT_DOUBLE_EQ(q.now().us(), 5.0);
}

TEST(EventQueueWindow, AdvanceToPastPendingEventPanics)
{
    sim::EventQueue q;
    q.schedule(Time::micros(2), [] {});
    EXPECT_DEATH(q.advanceTo(Time::micros(3)), "pending");
}

TEST(EventQueueWindow, InfiniteExternalEventHookUnboundsFastForward)
{
    // The no-arrival case of Hooks::nextExternalEvent: a hook
    // returning +inf promises nothing external can ever affect the
    // engine, so the decode fast-forward replays every remaining
    // boundary in one window — and the run must still match the
    // unhooked (conservative global bound) run bit-for-bit.
    auto run = [](bool with_hook, std::uint64_t *ffwd) {
        sim::EventQueue queue;
        std::vector<serving::Request> requests;
        serving::Request r;
        r.id = 0;
        r.task = sim::scaledForTiny(sim::lambada(), 96);
        r.arrival = Time::seconds(0);
        requests.push_back(r);
        serving::DeviceConfig cfg;
        cfg.poolTokens = 512;
        serving::DeviceEngine engine(cfg, queue, requests);
        if (with_hook) {
            serving::DeviceEngine::Hooks hooks;
            hooks.nextExternalEvent = [] {
                return Time::seconds(
                    std::numeric_limits<double>::infinity());
            };
            engine.setHooks(std::move(hooks));
        }
        engine.enqueue(0);
        queue.runAll();
        EXPECT_TRUE(requests[0].done());
        if (ffwd)
            *ffwd = engine.fastForwardedSteps();
        return std::tuple{engine.engineSteps(), engine.decodeSteps(),
                          queue.now().sec(),
                          requests[0].completed.sec()};
    };
    std::uint64_t ffwd = 0;
    const auto hooked = run(true, &ffwd);
    const auto plain = run(false, nullptr);
    EXPECT_EQ(hooked, plain);
    EXPECT_GT(ffwd, 0u);
}

} // namespace
