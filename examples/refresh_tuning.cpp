/**
 * @file
 * Refresh-policy design-space exploration.
 *
 * Given an eDRAM retention distribution, how should the four 2DRP
 * intervals be set? This example sweeps the deployment set across
 * scale factors, measuring (a) refresh power on the banked array
 * model and (b) model quality through fault injection — producing the
 * accuracy/energy trade-off curve a deployment engineer would use to
 * pick the operating point (the paper picks the knee: average
 * interval 1.05 ms, ~2e-3 average failure rate).
 */

#include <cstdio>

#include "edram/edram_array.hpp"
#include "edram/fault_model.hpp"
#include "sim/experiments.hpp"

using namespace kelle;

int
main()
{
    const auto retention = edram::RetentionModel::paper65nm();
    sim::Task task = sim::scaledForTiny(sim::wikitext2(), 144);
    sim::MultiSeedBench bench(task, /*seeds=*/2, /*base=*/31);
    const auto cfg = sim::cacheConfigFor(task, kv::Policy::Aerp);

    std::printf("refresh design-space sweep (4 MB array, 2DRP interval "
                "set scaled around the paper's deployment point)\n\n");
    std::printf("%-8s %-14s %-14s %-14s %-10s %-10s\n", "scale",
                "avg interval", "avg fail rate", "refresh power", "PPL",
                "agreement");

    for (double scale : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
        const auto intervals =
            edram::RefreshIntervals::paper2drp().scaled(scale);
        const edram::TwoDRefreshPolicy policy(intervals, retention);

        // Refresh power of a fully-occupied 4 MB array: run the banked
        // model for 100 ms of wall time with all rows valid.
        edram::EdramArrayConfig acfg; // 4 MB default
        edram::KvEdramArray array(acfg, intervals);
        const std::size_t rows = acfg.rowCapacity();
        for (std::size_t r = 0; r < rows; ++r) {
            array.writeRow(r, Time::seconds(0));
            array.setScore(r, static_cast<std::uint8_t>(r % 16));
        }
        const Time horizon = Time::millis(100);
        array.advanceTo(horizon);
        const Power refresh_power =
            array.refreshEnergySpent() / horizon;

        const auto eval = bench.run(cfg, [&](std::uint64_t seed) {
            return std::make_unique<edram::RefreshFaultModel>(policy,
                                                              seed);
        });

        std::printf("%-8.3f %-14s %-14.2e %-14s %-10.3f %-10.1f%%\n",
                    scale,
                    toString(intervals.averageInterval()).c_str(),
                    policy.averageFailureRate(),
                    toString(refresh_power).c_str(), eval.perplexity,
                    eval.agreementTop1 * 100.0);
    }

    std::printf("\nreading the curve: left of the paper's deployment "
                "point (scale 1.0) refresh\npower rises steeply for "
                "negligible accuracy gain; right of it accuracy "
                "decays.\nThe paper's interval set sits at the knee.\n");
    return 0;
}
