/**
 * @file
 * Long-context reading scenario (the PG19 workload of the paper).
 *
 * A book-reading assistant ingests a long context and generates a
 * long continuation. This example exercises the *functional* stack
 * end to end: the TinyTransformer substrate generates text through a
 * Kelle-managed KV cache whose reads pass through the 2DRP eDRAM
 * fault model, while the banked KvEdramArray tracks refresh energy
 * and verifies the refresh work stays hidden in idle bank time.
 */

#include <cstdio>

#include "edram/edram_array.hpp"
#include "edram/fault_model.hpp"
#include "model/evaluate.hpp"
#include "sim/workloads.hpp"

using namespace kelle;

int
main()
{
    // Scaled PG19: long decode relative to the budget.
    const sim::Task task = sim::scaledForTiny(sim::pg19(), 224);
    std::printf("long-context task: ctx %zu, decode %zu, budget N'=%zu "
                "(sink %zu, recent %zu)\n\n",
                task.ctxLen, task.decLen, task.budget, task.sinkTokens,
                task.recentWindow);

    const auto cfg = model::tinyLm();
    model::TinyTransformer llm(cfg, model::InitOptions{.seed = 77});
    auto stream = model::generateStream(llm, task.ctxLen, task.decLen,
                                        0.9, 99);

    // Full-cache reference.
    kv::ManagedKvCache full(kv::makeFullConfig(), cfg.layers,
                            cfg.nKvHeads, cfg.headDim(), cfg.dModel);
    llm.attach(full);
    const auto baseline =
        model::runStream(llm, full, stream.tokens, stream.promptLen);

    // Kelle cache + 2DRP faults.
    const edram::TwoDRefreshPolicy policy(
        edram::RefreshIntervals::paper2drp(),
        edram::RetentionModel::paper65nm());
    edram::RefreshFaultModel faults(policy, 123);
    const auto kelle = model::evaluatePolicy(
        llm, sim::cacheConfigFor(task, kv::Policy::Aerp), &faults,
        stream, baseline);

    std::printf("full cache: PPL %.3f, %.1f KiB resident\n",
                baseline.perplexity(), full.residentKvBytes() / 1024.0);
    std::printf("Kelle     : PPL %.3f, agreement %.1f%%, %.1f KiB "
                "resident (%.1f%% of full)\n\n",
                kelle.perplexity, kelle.agreementTop1 * 100.0,
                kelle.residentKvBytes / 1024.0,
                100.0 * kelle.residentKvBytes / full.residentKvBytes());

    // Drive the banked eDRAM array through the same occupancy pattern:
    // one row per (token, layer-slot) with 2DRP refresh timers running
    // while tokens stream at an edge-plausible 50 ms/step.
    edram::EdramArrayConfig acfg;
    acfg.capacity = Bytes::kib(64);
    edram::KvEdramArray array(acfg,
                              edram::RefreshIntervals::paper2drp());
    const std::size_t rows = acfg.rowCapacity();
    const Time step = Time::millis(50);
    Time now = Time::seconds(0);
    std::uint64_t writes = 0;
    for (std::size_t t = 0; t < task.decLen; ++t) {
        now += step;
        const std::size_t row = t % rows;
        if (t >= rows)
            array.evictRow(row); // budget reached: replace in place
        array.writeRow(row, now);
        array.setScore(row, static_cast<std::uint8_t>(t % 16));
        array.readRow(row, now + Time::micros(1));
        ++writes;
    }
    array.advanceTo(now + step);

    std::printf("banked eDRAM array after %llu steps:\n",
                static_cast<unsigned long long>(writes));
    std::printf("  refresh ops: %llu rows, refresh energy %s\n",
                static_cast<unsigned long long>(array.refreshOps()),
                toString(array.refreshEnergySpent()).c_str());
    std::printf("  access energy %s, leakage-inclusive total %s\n",
                toString(array.accessEnergySpent()).c_str(),
                toString(array.totalEnergy(now)).c_str());
    std::printf("  hidden refresh time %s, stall time %s (refresh "
                "stays off the critical path)\n",
                toString(array.hiddenRefreshTime()).c_str(),
                toString(array.stallTime()).c_str());
    return 0;
}
