/**
 * @file
 * Edge chatbot serving scenario.
 *
 * Models the workload the paper's introduction motivates: an
 * interactive assistant on an edge device, serving multi-turn chats
 * with LLaMA2-7B. Each turn appends the user prompt (pre-filling) and
 * streams a reply (decoding). The example runs the same session on
 * the Original+SRAM baseline and on Kelle+eDRAM and reports per-turn
 * latency, tokens/s and energy from the analytic hardware model.
 */

#include <cstdio>
#include <vector>

#include "accel/timing_model.hpp"
#include "common/units.hpp"

using namespace kelle;
using namespace kelle::accel;

namespace {

struct Turn
{
    std::size_t promptTokens;
    std::size_t replyTokens;
};

} // namespace

int
main()
{
    const auto model = model::llama2_7b();
    // A plausible assistant session: growing context across turns.
    const std::vector<Turn> session = {
        {64, 128}, {48, 256}, {96, 192}, {32, 384},
    };

    const SystemConfig systems[] = {originalSramSystem(),
                                    kelleEdramSystem(1024)};

    std::printf("Edge chatbot session, %s, batch 1\n\n",
                model.name.c_str());
    std::printf("%-14s %-6s %-12s %-12s %-10s %-10s\n", "system", "turn",
                "ttft (s)", "reply (s)", "tok/s", "energy (J)");

    for (const auto &sys : systems) {
        std::size_t history = 0;
        double total_latency = 0.0, total_energy = 0.0;
        for (std::size_t i = 0; i < session.size(); ++i) {
            Workload w;
            w.model = model;
            w.ctxLen = history + session[i].promptTokens;
            w.decLen = session[i].replyTokens;
            w.batch = 1;
            const auto r = simulate(sys, w);

            const double reply_s = r.decodeLatency.sec();
            std::printf("%-14s %-6zu %-12.2f %-12.2f %-10.2f %-10.1f\n",
                        sys.name.c_str(), i + 1,
                        r.prefillLatency.sec(), reply_s,
                        static_cast<double>(w.decLen) / reply_s,
                        r.totalEnergy().j());
            history = w.ctxLen + w.decLen;
            total_latency += r.totalLatency().sec();
            total_energy += r.totalEnergy().j();
        }
        std::printf("%-14s total: %.1f s, %.0f J\n\n", sys.name.c_str(),
                    total_latency, total_energy);
    }

    std::printf("Kelle's wins compound with context: AERP caps the KV "
                "working set,\neDRAM stages it at 84.8 pJ/B instead of "
                "185.9, and 2DRP keeps refresh\nnegligible.\n");
    return 0;
}
