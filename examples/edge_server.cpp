/**
 * @file
 * A narrated edge serving session: a small burst of users hits a
 * Kelle deployment, and the engine logs every request's lifecycle —
 * arrival, admission (with the AERP budget N' the KV allocator
 * granted, shrunk under pool pressure), first token, completion —
 * followed by the SLO summary. A deliberately small KV pool makes the
 * admission control and eviction-pressure feedback visible.
 *
 * With `--devices N` (N > 1) the same burst hits an N-device edge
 * cluster instead: every arrival is routed by the chosen dispatch
 * policy (the narration shows the routing decision and each device's
 * free KV at that moment), `--hetero` mixes eDRAM- and SRAM-backed
 * devices, and `--preempt` lets a device reclaim the KV grant of a
 * deadline-doomed decode and throw the victim back to the dispatcher.
 *
 * With `--faults` the session runs on a >= 2-device cluster under
 * seeded fault injection: the narration shows crashes evicting
 * in-flight requests, the dispatcher blacklisting the down device,
 * retries landing the victims on survivors, and the fault report
 * totals the downtime and lost work.
 *
 * Try: ./edge_server --rate 0.1 --policy fcfs --seed 7
 *      ./edge_server --devices 2 --hetero --dispatch join-shortest-kv
 *      ./edge_server --faults --mtbf 40 --mttr 10
 */

#include <algorithm>
#include <cstdio>

#include "cluster/cluster_engine.hpp"
#include "cluster/cluster_metrics.hpp"
#include "common/arg_parser.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serving/scheduler.hpp"

using namespace kelle;

namespace {

void
printSummary(const serving::ServingReport &rep)
{
    const auto &s = rep.summary;
    Table t({"metric", "value"});
    t.addRow({"completed / rejected", std::to_string(s.completed) + " / " +
                                          std::to_string(s.rejected)});
    t.addRow({"makespan", toString(s.makespan)});
    t.addRow({"TTFT p50 / p95", toString(Time::seconds(s.ttftP50)) +
                                    " / " +
                                    toString(Time::seconds(s.ttftP95))});
    t.addRow({"TPOT mean", toString(Time::seconds(s.tpotMean))});
    t.addRow({"decode stall p95", toString(Time::seconds(s.tokenGapP95))});
    t.addRow({"SLO attainment (TTFT / TPOT / both)",
              Table::pct(s.sloTtftAttainment) + " / " +
                  Table::pct(s.sloTpotAttainment) + " / " +
                  Table::pct(s.sloAttainment)});
    t.addRow({"admission bypasses / max queue wait",
              std::to_string(s.admissionBypasses) + " / " +
                  toString(Time::seconds(s.maxQueueWaitSec))});
    t.addRow({"preemptions (doomed decodes reclaimed)",
              std::to_string(s.preemptions)});
    t.addRow({"goodput", Table::num(s.goodputTokensPerSec, 1) + " tok/s"});
    t.addRow({"queue depth mean / max",
              Table::num(s.meanQueueDepth, 1) + " / " +
                  std::to_string(s.maxQueueDepth)});
    t.addRow({"budgets kept at N'", Table::pct(s.meanBudgetFraction)});
    t.addRow({"shrunk grants / admission retries",
              std::to_string(rep.shrunkGrants) + " / " +
                  std::to_string(rep.deferrals)});
    t.addRow({"KV pool peak",
              Table::pct(rep.poolPeakBytes /
                         std::max(rep.poolCapacityBytes, 1.0))});
    t.addRow({"energy (refresh share)",
              toString(s.energy.total()) + " (" +
                  Table::pct(s.energy.total().j() > 0.0
                                 ? s.energy.refresh.j() /
                                       s.energy.total().j()
                                 : 0.0) +
                  ")"});
    std::printf("\n");
    t.print("session summary");
}

/**
 * Dump the session's metrics registry (the same `.csv` / `.json`
 * formats bench_serving and bench_cluster emit) after lifting the
 * per-device time series and latency histograms off the recorder.
 */
void
writeMetrics(obs::MetricsRegistry &reg,
             const obs::TraceRecorder &recorder,
             const std::string &metrics_out, double interval_sec)
{
    reg.ingestTrace(recorder);
    if (reg.writeFile(metrics_out, interval_sec))
        std::printf("\nwrote metrics: %s\n", metrics_out.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    common::ArgParser args("edge_server",
                           "narrated multi-user edge serving session");
    args.addDouble("rate", 0.05, "mean arrival rate in req/s");
    args.addString("policy", "contbatch",
                   serving::schedulePolicyNames());
    args.addInt("chunk-tokens", 0,
                "prefill chunk size (0 = whole prompt per step)");
    args.addInt("requests", 12, "number of user requests");
    args.addInt("seed", 7, "arrival-trace seed");
    args.addInt("budget", 0, "per-request KV budget N' (0 = task N')");
    args.addInt("steps", 0, "max engine steps (0 = run to completion)");
    args.addInt("devices", 1,
                "edge devices; > 1 serves the burst on a cluster");
    args.addString("dispatch", "join-shortest-kv",
                   "cluster dispatch policy: " +
                       cluster::dispatchPolicyNames());
    args.addBool("hetero", false,
                 "alternate eDRAM/SRAM devices (clusters only)");
    args.addBool("preempt", false,
                 "reclaim KV grants of deadline-doomed decodes");
    args.addBool("faults", false,
                 "inject seeded device faults (crash / slowdown / "
                 "pool shrink with recovery) into the session; "
                 "forces a cluster of >= 2 devices so the narration "
                 "shows failover");
    args.addDouble("mtbf", 40.0,
                   "mean time between faults per device, sim seconds "
                   "(with --faults)");
    args.addDouble("mttr", 10.0,
                   "mean time to recovery per fault, sim seconds "
                   "(with --faults)");
    args.addInt("client-retries", 0,
                "client-side resubmits of an overload-rejected "
                "request after a jittered backoff (0 = reject is "
                "final)");
    args.addString("trace-out", "",
                   "also record the session as Chrome trace-event "
                   "JSON (open in https://ui.perfetto.dev; see "
                   "docs/TRACING.md)");
    args.addString("metrics-out", "",
                   "dump session metrics (.csv time series or .json) "
                   "for parity with bench_serving/bench_cluster");
    args.addDouble("metrics-interval", 60.0,
                   "time-series sampling interval for --metrics-out "
                   "CSV, sim seconds");
    if (!args.parse(argc, argv))
        return args.exitCode();

    serving::ServingConfig cfg;
    cfg.traffic.ratePerSec = args.getDouble("rate");
    cfg.traffic.numRequests = args.getSize("requests");
    cfg.traffic.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.traffic.process = serving::ArrivalProcess::Bursty;
    cfg.budgetOverride = args.getSize("budget");
    cfg.maxEngineSteps = args.getSize("steps");
    cfg.chunkTokens = args.getSize("chunk-tokens");
    cfg.preempt.enabled = args.getBool("preempt");
    cfg.clientRetries =
        static_cast<std::uint32_t>(args.getInt("client-retries"));
    if (!serving::parseSchedulePolicy(args.getString("policy"),
                                      &cfg.policy)) {
        std::fprintf(stderr, "unknown --policy '%s' (%s)\n",
                     args.getString("policy").c_str(),
                     serving::schedulePolicyNames().c_str());
        return 1;
    }
    cluster::DispatchKind dispatch;
    if (!cluster::parseDispatchPolicy(args.getString("dispatch"),
                                      &dispatch)) {
        std::fprintf(stderr, "unknown --dispatch '%s' (%s)\n",
                     args.getString("dispatch").c_str(),
                     cluster::dispatchPolicyNames().c_str());
        return 1;
    }
    // A pool of ~6 concurrent TQ-sized budgets: small enough that a
    // burst pushes utilization over the watermark and later grants
    // come back shrunk.
    cfg.poolTokens = 6144;
    cfg.maxBatch = 8;
    cfg.verbose = true;
    setLogLevel(LogLevel::Verbose); // lifecycle lines use inform()

    // One recorder serves both paths: the single-device Scheduler and
    // the cluster engine thread it to their devices identically. The
    // narrated stdout is byte-identical with or without it.
    const std::string trace_out = args.getString("trace-out");
    const std::string metrics_out = args.getString("metrics-out");
    obs::TraceRecorder recorder;
    if (!trace_out.empty() || !metrics_out.empty())
        cfg.trace = &recorder;

    // Faults need somewhere to fail over to: lift the session onto a
    // cluster of at least two devices.
    const bool faults = args.getBool("faults");
    const std::size_t devices =
        faults ? std::max<std::size_t>(2, args.getSize("devices"))
               : args.getSize("devices");
    if (devices <= 1) {
        std::printf("edge_server: %zu requests at %.3f req/s (bursty), "
                    "policy %s, KV pool %zu tokens\n\n",
                    cfg.traffic.numRequests, cfg.traffic.ratePerSec,
                    toString(cfg.policy).c_str(), cfg.poolTokens);

        serving::Scheduler engine(cfg);
        const serving::ServingReport rep = engine.run();
        printSummary(rep);
        if (!trace_out.empty() && recorder.writeJson(trace_out))
            std::printf("\nwrote trace: %s (load at "
                        "https://ui.perfetto.dev)\n",
                        trace_out.c_str());
        if (!metrics_out.empty()) {
            obs::MetricsRegistry reg;
            reg.setGauge("serving.completed",
                         static_cast<double>(rep.summary.completed));
            reg.setGauge("serving.rejected",
                         static_cast<double>(rep.summary.rejected));
            reg.setGauge("serving.goodput_tok_per_s",
                         rep.summary.goodputTokensPerSec);
            reg.setGauge("serving.slo_attainment",
                         rep.summary.sloAttainment);
            writeMetrics(reg, recorder, metrics_out,
                         args.getDouble("metrics-interval"));
        }
        return 0;
    }

    // ---- Multi-device session: the same burst over a cluster ------
    cluster::ClusterConfig ccfg =
        cluster::clusterConfigFrom(cfg, devices, dispatch);
    if (args.getBool("hetero")) {
        // SRAM-backed devices run half the pool: the KV-capacity
        // asymmetry the dispatch policy has to balance.
        ccfg.devices = cluster::heteroEdramSramFleet(
            devices, 2048, cfg.poolTokens, cfg.poolTokens / 2,
            cfg.maxBatch);
    }
    if (faults) {
        ccfg.faults.enabled = true;
        ccfg.faults.mtbfSec = args.getDouble("mtbf");
        ccfg.faults.mttrSec = args.getDouble("mttr");
    }

    std::printf("edge_server: %zu requests at %.3f req/s (bursty) on "
                "%zu devices (%s), dispatch %s, policy %s%s%s\n\n",
                ccfg.engine.traffic.numRequests, ccfg.engine.traffic.ratePerSec,
                devices, args.getBool("hetero") ? "eDRAM/SRAM" : "eDRAM",
                toString(dispatch).c_str(),
                toString(ccfg.engine.policy).c_str(),
                ccfg.engine.preempt.enabled ? ", preempt-and-requeue on" : "",
                faults ? ", fault injection on" : "");

    cluster::ClusterEngine engine(ccfg);
    const auto rep = engine.run();

    std::printf("\n");
    Table per_dev({"device", "dispatched", "done", "TTFT p95",
                   "busy", "KV peak", "pool tok"});
    for (const auto &d : rep.devices) {
        per_dev.addRow(
            {d.name, std::to_string(d.dispatched),
             std::to_string(d.report.summary.completed),
             toString(Time::seconds(d.report.summary.ttftP95)),
             toString(Time::seconds(d.busySec)),
             Table::pct(d.kvPeakUtilization),
             std::to_string(d.report.poolTokens)});
    }
    per_dev.print("per-device breakdown; load imbalance CV " +
                  Table::num(rep.loadImbalanceCv, 2));
    if (rep.faults.enabled) {
        const cluster::ClusterFaultReport &f = rep.faults;
        const double span =
            rep.aggregate.summary.makespan.sec() *
            static_cast<double>(rep.devices.size());
        Table ft({"metric", "value"});
        ft.addRow({"availability",
                   Table::pct(span > 0.0
                                  ? 1.0 - f.totalDowntimeSec / span
                                  : 1.0)});
        ft.addRow({"crashes / slowdowns / pool shrinks",
                   std::to_string(f.crashes) + " / " +
                       std::to_string(f.slowdowns) + " / " +
                       std::to_string(f.shrinks)});
        ft.addRow({"downtime",
                   toString(Time::seconds(f.totalDowntimeSec))});
        ft.addRow({"KV tokens lost to crashes",
                   std::to_string(f.lostTokens)});
        ft.addRow({"fault retries (completed after retry)",
                   std::to_string(f.retries) + " (" +
                       std::to_string(f.retrySuccesses) + ")"});
        ft.addRow({"requests shed / permanently failed",
                   std::to_string(f.shedRequests) + " / " +
                       std::to_string(f.permanentFailures)});
        std::printf("\n");
        ft.print("fault report");
    }
    printSummary(rep.aggregate);
    if (!trace_out.empty() && recorder.writeJson(trace_out))
        std::printf("\nwrote trace: %s (load at "
                    "https://ui.perfetto.dev)\n",
                    trace_out.c_str());
    if (!metrics_out.empty()) {
        obs::MetricsRegistry reg;
        cluster::exportClusterMetrics(rep, reg);
        writeMetrics(reg, recorder, metrics_out,
                     args.getDouble("metrics-interval"));
    }
    return 0;
}
