/**
 * @file
 * A narrated edge serving session: a small burst of users hits one
 * Kelle device, and the engine logs every request's lifecycle —
 * arrival, admission (with the AERP budget N' the KV allocator
 * granted, shrunk under pool pressure), first token, completion —
 * followed by the SLO summary. A deliberately small KV pool makes the
 * admission control and eviction-pressure feedback visible.
 *
 * Try: ./edge_server --rate 0.1 --policy fcfs --seed 7
 */

#include <algorithm>
#include <cstdio>

#include "common/arg_parser.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "serving/scheduler.hpp"

using namespace kelle;

int
main(int argc, char **argv)
{
    common::ArgParser args("edge_server",
                           "narrated multi-user edge serving session");
    args.addDouble("rate", 0.05, "mean arrival rate in req/s");
    args.addString("policy", "contbatch",
                   serving::schedulePolicyNames());
    args.addInt("chunk-tokens", 0,
                "prefill chunk size (0 = whole prompt per step)");
    args.addInt("requests", 12, "number of user requests");
    args.addInt("seed", 7, "arrival-trace seed");
    args.addInt("budget", 0, "per-request KV budget N' (0 = task N')");
    args.addInt("steps", 0, "max engine steps (0 = run to completion)");
    if (!args.parse(argc, argv))
        return args.exitCode();

    serving::ServingConfig cfg;
    cfg.traffic.ratePerSec = args.getDouble("rate");
    cfg.traffic.numRequests = args.getSize("requests");
    cfg.traffic.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    cfg.traffic.process = serving::ArrivalProcess::Bursty;
    cfg.budgetOverride = args.getSize("budget");
    cfg.maxEngineSteps = args.getSize("steps");
    cfg.chunkTokens = args.getSize("chunk-tokens");
    if (!serving::parseSchedulePolicy(args.getString("policy"),
                                      &cfg.policy)) {
        std::fprintf(stderr, "unknown --policy '%s' (%s)\n",
                     args.getString("policy").c_str(),
                     serving::schedulePolicyNames().c_str());
        return 1;
    }
    // A pool of ~6 concurrent TQ-sized budgets: small enough that a
    // burst pushes utilization over the watermark and later grants
    // come back shrunk.
    cfg.poolTokens = 6144;
    cfg.maxBatch = 8;
    cfg.verbose = true;
    setLogLevel(LogLevel::Verbose); // lifecycle lines use inform()

    std::printf("edge_server: %zu requests at %.3f req/s (bursty), "
                "policy %s, KV pool %zu tokens\n\n",
                cfg.traffic.numRequests, cfg.traffic.ratePerSec,
                toString(cfg.policy).c_str(), cfg.poolTokens);

    serving::Scheduler engine(cfg);
    const auto rep = engine.run();
    const auto &s = rep.summary;

    Table t({"metric", "value"});
    t.addRow({"completed / rejected", std::to_string(s.completed) + " / " +
                                          std::to_string(s.rejected)});
    t.addRow({"makespan", toString(s.makespan)});
    t.addRow({"TTFT p50 / p95", toString(Time::seconds(s.ttftP50)) +
                                    " / " +
                                    toString(Time::seconds(s.ttftP95))});
    t.addRow({"TPOT mean", toString(Time::seconds(s.tpotMean))});
    t.addRow({"decode stall p95", toString(Time::seconds(s.tokenGapP95))});
    t.addRow({"SLO attainment (TTFT / TPOT / both)",
              Table::pct(s.sloTtftAttainment) + " / " +
                  Table::pct(s.sloTpotAttainment) + " / " +
                  Table::pct(s.sloAttainment)});
    t.addRow({"admission bypasses / max queue wait",
              std::to_string(s.admissionBypasses) + " / " +
                  toString(Time::seconds(s.maxQueueWaitSec))});
    t.addRow({"goodput", Table::num(s.goodputTokensPerSec, 1) + " tok/s"});
    t.addRow({"queue depth mean / max",
              Table::num(s.meanQueueDepth, 1) + " / " +
                  std::to_string(s.maxQueueDepth)});
    t.addRow({"budgets kept at N'", Table::pct(s.meanBudgetFraction)});
    t.addRow({"shrunk grants / admission retries",
              std::to_string(rep.shrunkGrants) + " / " +
                  std::to_string(rep.deferrals)});
    t.addRow({"KV pool peak",
              Table::pct(rep.poolPeakBytes /
                         std::max(rep.poolCapacityBytes, 1.0))});
    t.addRow({"energy (refresh share)",
              toString(s.energy.total()) + " (" +
                  Table::pct(s.energy.total().j() > 0.0
                                 ? s.energy.refresh.j() /
                                       s.energy.total().j()
                                 : 0.0) +
                  ")"});
    std::printf("\n");
    t.print("session summary");
    return 0;
}
