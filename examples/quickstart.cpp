/**
 * @file
 * Quickstart: serve a small LLM with the Kelle KV-cache stack.
 *
 * This example builds the functional transformer substrate, attaches a
 * Kelle AERP-managed KV cache backed by the 2DRP eDRAM fault model,
 * generates text, and reports the accuracy cost and memory footprint
 * versus a full-cache run — the end-to-end algorithmic loop of the
 * paper in ~100 lines.
 */

#include <cstdio>

#include "edram/fault_model.hpp"
#include "edram/refresh_policy.hpp"
#include "edram/retention.hpp"
#include "model/evaluate.hpp"
#include "model/model_config.hpp"
#include "model/transformer.hpp"

using namespace kelle;

int
main()
{
    // 1. A small decoder-only LLM with deterministic weights.
    const model::ModelConfig cfg = model::tinyLm();
    model::TinyTransformer llm(cfg, model::InitOptions{.seed = 42});
    std::printf("model: %s (%zu layers, d=%zu, %zu heads)\n",
                cfg.name.c_str(), cfg.layers, cfg.dModel, cfg.nHeads);

    // 2. Generate a reference stream with a full (unbounded) KV cache.
    auto stream = model::generateStream(llm, /*prompt=*/32, /*gen=*/96,
                                        /*temperature=*/0.9, /*seed=*/7);
    std::printf("generated %zu tokens (prompt %zu)\n",
                stream.tokens.size(), stream.promptLen);

    // 3. Baseline evaluation: full cache, no faults.
    kv::ManagedKvCache full(kv::makeFullConfig(), cfg.layers,
                            cfg.nKvHeads, cfg.headDim(), cfg.dModel);
    llm.attach(full);
    const auto baseline =
        model::runStream(llm, full, stream.tokens, stream.promptLen);
    std::printf("baseline (full KV, fp16): ppl = %.3f, resident = %.1f "
                "KiB\n",
                baseline.perplexity(), full.residentKvBytes() / 1024.0);

    // 4. Kelle: AERP eviction + recomputation with a tight budget, on
    //    eDRAM refreshed by 2DRP (bit flips injected per Figure 7).
    auto aerp_cfg = kv::makeAerpConfig(/*budget=*/48, /*sink=*/4,
                                       /*recent=*/16);
    const auto retention = edram::RetentionModel::paper65nm();
    const edram::TwoDRefreshPolicy refresh(
        edram::RefreshIntervals::paper2drp(), retention);
    edram::RefreshFaultModel faults(refresh, /*seed=*/99);

    const auto kelle_eval =
        model::evaluatePolicy(llm, aerp_cfg, &faults, stream, baseline);
    std::printf("Kelle (AERP N'=48 + 2DRP faults): ppl = %.3f, "
                "agreement = %.1f%%, resident = %.1f KiB\n",
                kelle_eval.perplexity, kelle_eval.agreementTop1 * 100.0,
                kelle_eval.residentKvBytes / 1024.0);

    // 5. A recency-only baseline at the same budget for contrast.
    auto stream_cfg = kv::makeStreamingConfig(48, 4, 16);
    const auto stream_eval =
        model::evaluatePolicy(llm, stream_cfg, nullptr, stream, baseline);
    std::printf("StreamingLLM (same budget, no faults): ppl = %.3f, "
                "agreement = %.1f%%\n",
                stream_eval.perplexity,
                stream_eval.agreementTop1 * 100.0);

    std::printf("\nKV memory saved vs full cache: %.1f%%\n",
                100.0 * (1.0 - kelle_eval.residentKvBytes /
                                   full.residentKvBytes()));
    return 0;
}
