/**
 * @file
 * Seeded synthetic arrival traces over the §7.1 workload mix.
 *
 * Two arrival processes:
 *  - Poisson: independent exponential inter-arrival times at the
 *    configured mean rate (steady multi-user traffic);
 *  - Bursty: a two-state Markov-modulated Poisson process. An "on"
 *    phase arrives at `burstFactor` times the mean rate, an "off"
 *    phase at whatever residual rate preserves the long-run mean;
 *    phase dwells are exponential. This is the classic edge-traffic
 *    shape (bursts of activity between idle stretches).
 *
 * Each arrival samples a task from a weighted mix (default: the four
 * hardware tasks LA/TQ/QP/PG19 with equal weight), so prompt/decode
 * lengths and requested KV budgets N' follow the paper's workloads.
 * Everything is driven by one seeded Rng: a trace is a pure function
 * of its TrafficConfig.
 */

#ifndef KELLE_SERVING_REQUEST_GENERATOR_HPP
#define KELLE_SERVING_REQUEST_GENERATOR_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serving/request.hpp"
#include "sim/workloads.hpp"

namespace kelle {
namespace serving {

enum class ArrivalProcess
{
    Poisson,
    Bursty,
};

std::string toString(ArrivalProcess p);
/** Parse "poisson"/"bursty"; returns false on unknown input. */
bool parseArrivalProcess(const std::string &text, ArrivalProcess *out);

/**
 * Per-request SLO targets, resolved per task at trace generation. The
 * TTFT deadline scales with the prompt so long-context tasks (QP,
 * PG19) get proportionally more prefill headroom than chat-sized ones
 * (LA), which is what makes deadline-aware policies meaningful across
 * the mix. Zeroing a field disables that criterion.
 */
struct SloSpec
{
    /** Flat TTFT allowance in seconds (queueing + scheduling). */
    double ttftBaseSec = 10.0;
    /** Extra TTFT allowance per prompt token (prefill-rate target). */
    double ttftPerCtxTokenSec = 0.02;
    /** TPOT target: mean seconds per decode token. */
    double tpotSec = 0.5;

    /** The TTFT deadline (seconds after arrival) of a ctx_len prompt. */
    double
    ttftDeadlineSec(std::size_t ctx_len) const
    {
        if (ttftBaseSec <= 0.0 && ttftPerCtxTokenSec <= 0.0)
            return 0.0;
        return ttftBaseSec +
               ttftPerCtxTokenSec * static_cast<double>(ctx_len);
    }
};

/** Arrival-trace configuration. */
struct TrafficConfig
{
    double ratePerSec = 0.02; ///< long-run mean arrival rate
    ArrivalProcess process = ArrivalProcess::Poisson;
    /** On-phase rate multiplier (Bursty only). */
    double burstFactor = 4.0;
    /** Long-run fraction of time spent in the on phase (Bursty). */
    double burstFraction = 0.25;
    /** Mean arrivals per on-phase dwell (sets the burst length). */
    double burstMeanArrivals = 8.0;
    std::size_t numRequests = 64;
    std::uint64_t seed = 42;
    /**
     * Multi-turn sessions (0 = off, every prompt unique). With S > 0,
     * each arrival is assigned to one of S seeded sessions and stamps
     * the (session, task)-derived prefix key on its request: requests
     * from the same session and task class share a system prompt of
     * `sessionPrefixFrac * ctxLen` tokens, which the paged KV pool
     * stores once and every follow-up turn attaches copy-free. The
     * session stream draws from its own Rng, so the arrival trace is
     * byte-identical to sessions = 0.
     */
    std::size_t sessions = 0;
    /** Fraction of each prompt covered by the shared session prefix. */
    double sessionPrefixFrac = 0.5;
    /** Weighted task mix; empty selects hardwareTasks() equally. */
    std::vector<std::pair<sim::Task, double>> mix;
    /** Per-task TTFT/TPOT deadlines stamped on every request. */
    SloSpec slo;
};

/**
 * Generate the arrival trace: `numRequests` requests with strictly
 * increasing ids, non-decreasing arrival times and sampled tasks.
 * Deterministic for a fixed config.
 */
std::vector<Request> generateTrace(const TrafficConfig &cfg);

/** Mean offered load in tokens/s (prompt + decode) of the mix. */
double offeredTokensPerSec(const TrafficConfig &cfg);

/**
 * The §7.1 mix tilted toward PG19 (weight 4, the rest 1): long-decode
 * requests dominate the pool and the batch, the setting where chunked
 * prefill and deadline-aware admission pay off.
 */
std::vector<std::pair<sim::Task, double>> pg19HeavyMix();

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_REQUEST_GENERATOR_HPP
