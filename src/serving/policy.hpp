/**
 * @file
 * The policy layer of the serving engine: *what* to run next,
 * decoupled from *how* it is costed and executed.
 *
 * A `Policy` sees a read-only `EngineView` of the engine state at each
 * step boundary and makes two decisions:
 *
 *  1. `admissionOrder` — the order in which waiting requests should be
 *     offered to the KV-budget allocator, and (via `skipBlocked`)
 *     whether a request whose budget does not fit right now blocks the
 *     queue head or may be bypassed by later arrivals that do fit;
 *  2. `nextStep` — the `EngineStepPlan` the executor runs: one
 *     request's next prefill chunk, or one decode iteration over the
 *     batch.
 *
 * Shipped policies:
 *  - `Fcfs`: strict run-to-completion, one request owns the machine.
 *  - `ContinuousBatching`: iteration-level batching with FIFO,
 *    head-of-line admission and prefill-priority steps (vLLM-style).
 *  - `SjfWithinDeadline`: shortest-job-first admission among requests
 *    with comfortable TTFT slack; requests nearing their deadline are
 *    promoted in earliest-deadline order, bounding SJF starvation.
 *    Blocked candidates are bypassed, so a large request at the head
 *    no longer starves small ones that fit the pool.
 *  - `EdfChunked`: earliest-TTFT-deadline-first admission and chunk
 *    selection, alternating prefill chunks with decode iterations so
 *    neither TTFT nor TPOT stalls behind the other (Sarathi-style).
 *    With `EngineView::chunkSlackFrac > 0` the alternation is
 *    slack-aware: a prefill whose TTFT slack has run short runs its
 *    chunks back to back instead of yielding to decode.
 */

#ifndef KELLE_SERVING_POLICY_HPP
#define KELLE_SERVING_POLICY_HPP

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "serving/engine_step.hpp"
#include "serving/request.hpp"

namespace kelle {
namespace serving {

enum class SchedulePolicy
{
    Fcfs,               ///< request-at-a-time run-to-completion
    ContinuousBatching, ///< iteration-level batching, FIFO admission
    SjfWithinDeadline,  ///< shortest-job-first, deadline-bounded
    EdfChunked,         ///< earliest-deadline-first, chunk-interleaved
};

std::string toString(SchedulePolicy p);
/**
 * Parse "fcfs" / "contbatch" / "sjf-deadline" / "edf-chunked" (plus a
 * few aliases); returns false on unknown input.
 */
bool parseSchedulePolicy(const std::string &text, SchedulePolicy *out);
/** The valid policy names, for CLI error messages: "fcfs|contbatch|...". */
std::string schedulePolicyNames();
/** Every policy, in enum order (bench/test sweeps). */
std::vector<SchedulePolicy> allSchedulePolicies();

/**
 * Read-only view of the engine state at a step boundary. Indices refer
 * to `requests` (trace order). `waiting` are arrived-but-unadmitted
 * requests in arrival order; `admitted` hold a KV grant but have
 * prompt tokens left to prefill; `running` are decode-batch members.
 */
struct EngineView
{
    Time now;
    const std::vector<Request> &requests;
    const std::deque<std::size_t> &waiting;
    const std::deque<std::size_t> &admitted;
    const std::vector<std::size_t> &running;
    std::size_t maxBatch = 1;
    /** Prefill chunk size in prompt tokens; 0 = whole prompt. */
    std::size_t chunkTokens = 0;
    /**
     * Slack-aware chunk alternation (EdfChunked): when the prefilling
     * request's remaining TTFT slack falls below this fraction of its
     * whole TTFT budget, consecutive prefill chunks run back to back
     * instead of alternating with decode steps, recovering the
     * knee-regime TTFT tax of unconditional alternation. 0 disables
     * the rule and preserves the unconditional alternation bit-exactly.
     */
    double chunkSlackFrac = 0.0;
    /** Kind of the engine step that ran last (Idle before the first). */
    EngineStepKind lastStep = EngineStepKind::Idle;
};

class Policy
{
  public:
    virtual ~Policy() = default;

    virtual SchedulePolicy kind() const = 0;

    /** Concurrent-request cap (admitted + running). */
    virtual std::size_t
    admissionCap(std::size_t max_batch) const
    {
        return max_batch;
    }

    /**
     * When true, a waiting request whose budget does not fit is
     * skipped and the next candidate is tried (admission reordering);
     * when false it blocks the queue head until a release (FIFO).
     */
    virtual bool skipBlocked() const { return false; }

    /**
     * True when admissionOrder is the identity (arrival order), which
     * lets the engine admit straight off the waiting queue's head —
     * no order materialization, O(1) removals. Policies overriding
     * admissionOrder must return false.
     */
    virtual bool fifoAdmission() const { return true; }

    /**
     * Fill `order` with the waiting requests in the order admission
     * should be attempted (default: arrival/FIFO order). `order` is
     * caller-owned scratch reused across admission rounds;
     * implementations overwrite it completely.
     */
    virtual void admissionOrder(const EngineView &v,
                                std::vector<std::size_t> &order) const;

    /**
     * Fill `plan` with the next engine step (Idle when nothing is
     * runnable). `plan` arrives reset(); it is caller-owned scratch,
     * so `decodeBatch` assignment reuses capacity step over step.
     */
    virtual void nextStep(const EngineView &v,
                          EngineStepPlan &plan) const = 0;

    /** The request's next prefill chunk length under `v.chunkTokens`. */
    static std::size_t nextChunkLen(const EngineView &v,
                                    const Request &r);
};

/** Build the policy object for a SchedulePolicy value. */
std::unique_ptr<Policy> makePolicy(SchedulePolicy kind);

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_POLICY_HPP
