/**
 * @file
 * SLO metrics of a serving run.
 *
 * Per-request: TTFT (arrival -> first token, i.e. queueing + admission
 * + prefill), TPOT (mean decode inter-token time), end-to-end latency,
 * and whether the TTFT/TPOT deadlines stamped on the request were met.
 * Aggregates: nearest-rank p50/p95/p99 percentiles, goodput (completed
 * decode tokens per second of makespan), SLO attainment (fraction of
 * terminal requests meeting each deadline; rejections count as
 * misses), starvation counters (admission bypasses, max queue wait),
 * the p95 decode stall (worst inter-token gap a prefill inflicted on
 * the batch), queue-depth summary, and the component-wise energy of
 * every engine step (the `refresh` component is the aggregate eDRAM
 * refresh energy).
 *
 * Percentile convention (nearest-rank): for n ascending samples the
 * p-th percentile is sample `ceil(p/100 * n)` (1-based), so for 10
 * samples p50 is the 5th smallest and p99 the 10th. Deterministic and
 * hand-checkable, which the serving tests rely on.
 */

#ifndef KELLE_SERVING_SERVING_METRICS_HPP
#define KELLE_SERVING_SERVING_METRICS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "accel/energy_model.hpp"
#include "common/units.hpp"
#include "serving/request.hpp"

namespace kelle {
namespace serving {

/** Aggregate results of one serving run. */
struct ServingSummary
{
    std::size_t completed = 0;
    std::size_t rejected = 0;
    Time makespan; ///< first arrival to last completion

    /** TTFT percentiles/mean in seconds. */
    double ttftMean = 0.0;
    double ttftP50 = 0.0;
    double ttftP95 = 0.0;
    double ttftP99 = 0.0;

    /** End-to-end (arrival -> completion) percentiles in seconds. */
    double e2eP50 = 0.0;
    double e2eP95 = 0.0;
    double e2eP99 = 0.0;

    /** Seconds per decode token across completed requests. */
    double tpotMean = 0.0;
    double tpotP50 = 0.0;
    double tpotP95 = 0.0;

    /**
     * p95 across completed requests of the worst inter-token gap each
     * saw while decoding: the decode stall other requests' prefills
     * inflicted on the batch. Monolithic prefill inflates it to whole
     * prompt latencies; chunk interleaving bounds it near one chunk.
     */
    double tokenGapP95 = 0.0;

    /** Completed decode tokens per second of makespan. */
    double goodputTokensPerSec = 0.0;

    /**
     * @name SLO attainment
     * Fraction of terminal requests (completed + rejected) that met
     * each deadline stamped on the request at trace generation; a
     * rejected request misses both, a disabled deadline (0) is always
     * met. `sloAttainment` requires both. All three read 0 when the
     * run produced no terminal request (e.g. truncated by the
     * engine-step cap before anyone finished).
     * @{
     */
    double sloTtftAttainment = 1.0;
    double sloTpotAttainment = 1.0;
    double sloAttainment = 1.0;
    /** @} */

    /**
     * @name Starvation accounting
     * `admissionBypasses` counts, after each admission round, the
     * (admitted, still-waiting) pairs where the admitted request
     * arrived *later* — one per earlier arrival an admission left
     * blocked, so FIFO policies read 0 and reordering policies pay
     * for each real queue jump (requests admitted in the same round
     * lost nothing and are not counted). `maxQueueWaitSec` is the
     * worst arrival→admission wait of any completed request: the
     * starvation tail the bypasses caused.
     * @{
     */
    std::uint64_t admissionBypasses = 0;
    double maxQueueWaitSec = 0.0;
    /** @} */

    /**
     * Decode preemptions (deadline-doomed budget reclamation): a
     * running decode past the point where its TPOT target was already
     * unattainable had its KV grant reclaimed and was requeued for
     * re-dispatch. 0 unless the preempt knob is enabled.
     */
    std::uint64_t preemptions = 0;

    double meanQueueDepth = 0.0;
    std::size_t maxQueueDepth = 0;

    /** Mean granted/requested budget ratio (1.0 = no pressure). */
    double meanBudgetFraction = 1.0;

    /** Energy of all engine steps; `.refresh` is the aggregate eDRAM
     *  refresh energy. */
    accel::EnergyBreakdown energy;
    double energyPerToken = 0.0; ///< J per completed decode token
};

class ServingMetrics
{
  public:
    /** Record a finished request (state Completed, timestamps set). */
    void onCompleted(const Request &r);
    /** Record a request the pool can never fit. */
    void onRejected(const Request &r);
    /** Sample the admission-queue depth (on arrivals/admissions). */
    void sampleQueueDepth(std::size_t depth);
    /** Accumulate one engine step's energy. */
    void addEnergy(const accel::EnergyBreakdown &e);
    /** Record an admission that overtook `overtaken` earlier arrivals. */
    void onBypass(std::size_t overtaken);
    /** Record a deadline-doomed decode preemption (grant reclaimed). */
    void onPreempted();
    /**
     * Fold another device's records into this one: completed requests
     * are appended in the other's order, counters and energy add, and
     * extrema take the max. The cluster roll-up merges every device
     * into one ServingMetrics and summarizes once, so a one-device
     * merge is bit-identical to summarizing the device directly.
     */
    void merge(const ServingMetrics &other);

    /** TTFT-deadline check for a completed request (0 = disabled). */
    static bool metTtft(const Request &r);
    /** TPOT-target check for a completed request (0 = disabled). */
    static bool metTpot(const Request &r);

    /** Nearest-rank percentile, p in [0, 100]. Copies and sorts; use
     *  percentileSorted when reading several ranks from one vector. */
    static double percentile(std::vector<double> samples, double p);
    /**
     * Nearest-rank percentile of an already ascending-sorted vector.
     * `summarize` sorts each sample vector once and indexes all its
     * ranks from the sorted copy (identical results to sorting per
     * rank, one sort instead of six-plus).
     */
    static double percentileSorted(const std::vector<double> &sorted,
                                   double p);

    ServingSummary summarize(Time makespan) const;

    const std::vector<Request> &completedRequests() const
    {
        return completed_;
    }

  private:
    std::vector<Request> completed_;
    std::size_t rejected_ = 0;
    std::uint64_t bypasses_ = 0;
    std::uint64_t preemptions_ = 0;
    accel::EnergyBreakdown energy_;
    double queueDepthSum_ = 0.0;
    std::size_t queueDepthSamples_ = 0;
    std::size_t maxQueueDepth_ = 0;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_SERVING_METRICS_HPP
