/**
 * @file
 * SLO metrics of a serving run.
 *
 * Per-request: TTFT (arrival -> first token, i.e. queueing + admission
 * + prefill), TPOT (mean decode inter-token time) and end-to-end
 * latency. Aggregates: nearest-rank p50/p95/p99 percentiles, goodput
 * (completed decode tokens per second of makespan), queue-depth
 * summary, and the component-wise energy of every engine step
 * (the `refresh` component is the aggregate eDRAM refresh energy).
 *
 * Percentile convention (nearest-rank): for n ascending samples the
 * p-th percentile is sample `ceil(p/100 * n)` (1-based), so for 10
 * samples p50 is the 5th smallest and p99 the 10th. Deterministic and
 * hand-checkable, which the serving tests rely on.
 */

#ifndef KELLE_SERVING_SERVING_METRICS_HPP
#define KELLE_SERVING_SERVING_METRICS_HPP

#include <cstddef>
#include <vector>

#include "accel/energy_model.hpp"
#include "common/units.hpp"
#include "serving/request.hpp"

namespace kelle {
namespace serving {

/** Aggregate results of one serving run. */
struct ServingSummary
{
    std::size_t completed = 0;
    std::size_t rejected = 0;
    Time makespan; ///< first arrival to last completion

    /** TTFT percentiles/mean in seconds. */
    double ttftMean = 0.0;
    double ttftP50 = 0.0;
    double ttftP95 = 0.0;
    double ttftP99 = 0.0;

    /** End-to-end (arrival -> completion) percentiles in seconds. */
    double e2eP50 = 0.0;
    double e2eP95 = 0.0;
    double e2eP99 = 0.0;

    /** Seconds per decode token across completed requests. */
    double tpotMean = 0.0;
    double tpotP50 = 0.0;
    double tpotP95 = 0.0;

    /** Completed decode tokens per second of makespan. */
    double goodputTokensPerSec = 0.0;

    double meanQueueDepth = 0.0;
    std::size_t maxQueueDepth = 0;

    /** Mean granted/requested budget ratio (1.0 = no pressure). */
    double meanBudgetFraction = 1.0;

    /** Energy of all engine steps; `.refresh` is the aggregate eDRAM
     *  refresh energy. */
    accel::EnergyBreakdown energy;
    double energyPerToken = 0.0; ///< J per completed decode token
};

class ServingMetrics
{
  public:
    /** Record a finished request (state Completed, timestamps set). */
    void onCompleted(const Request &r);
    /** Record a request the pool can never fit. */
    void onRejected(const Request &r);
    /** Sample the admission-queue depth (on arrivals/admissions). */
    void sampleQueueDepth(std::size_t depth);
    /** Accumulate one engine step's energy. */
    void addEnergy(const accel::EnergyBreakdown &e);

    /** Nearest-rank percentile, p in [0, 100]. Copies and sorts. */
    static double percentile(std::vector<double> samples, double p);

    ServingSummary summarize(Time makespan) const;

    const std::vector<Request> &completedRequests() const
    {
        return completed_;
    }

  private:
    std::vector<Request> completed_;
    std::size_t rejected_ = 0;
    accel::EnergyBreakdown energy_;
    double queueDepthSum_ = 0.0;
    std::size_t queueDepthSamples_ = 0;
    std::size_t maxQueueDepth_ = 0;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_SERVING_METRICS_HPP
