#include "serving/scheduler.hpp"

#include <algorithm>

#include "accel/capacity.hpp"
#include "common/log.hpp"
#include "common/table.hpp"

namespace kelle {
namespace serving {

std::string
toString(RequestState s)
{
    switch (s) {
      case RequestState::Waiting:
        return "waiting";
      case RequestState::Prefilling:
        return "prefilling";
      case RequestState::Decoding:
        return "decoding";
      case RequestState::Completed:
        return "completed";
      case RequestState::Rejected:
        return "rejected";
    }
    return "?";
}

namespace {

/** Extra slack above the protected regions in the budget floor. */
constexpr std::size_t kFloorSlackTokens = 8;

AllocatorConfig
makeAllocatorConfig(const ServingConfig &cfg)
{
    AllocatorConfig a;
    a.bytesPerToken =
        cfg.model.kvBytesPerToken(cfg.system.kv.kvBits);
    std::size_t pool = cfg.poolTokens;
    if (pool == 0) {
        // §8.4.1: device DRAM net of resident weights bounds the KV
        // pool shared by all concurrent requests.
        accel::CapacitySpec spec;
        spec.dramCapacity = cfg.system.tech.dram.capacity();
        spec.weightBits = cfg.system.tech.weightBits;
        spec.kvBits = cfg.system.kv.kvBits;
        pool = accel::maxSupportedTokens(cfg.model, spec).maxTokens;
    }
    KELLE_ASSERT(pool > 0, "KV pool has no room for any token");
    a.capacityBytes = static_cast<double>(pool) * a.bytesPerToken;
    a.highWatermark = cfg.highWatermark;
    return a;
}

} // namespace

std::string
toString(SchedulePolicy p)
{
    switch (p) {
      case SchedulePolicy::Fcfs:
        return "fcfs";
      case SchedulePolicy::ContinuousBatching:
        return "contbatch";
    }
    return "?";
}

bool
parseSchedulePolicy(const std::string &text, SchedulePolicy *out)
{
    if (text == "fcfs") {
        *out = SchedulePolicy::Fcfs;
        return true;
    }
    if (text == "contbatch" || text == "continuous" ||
        text == "continuous-batching") {
        *out = SchedulePolicy::ContinuousBatching;
        return true;
    }
    return false;
}

Scheduler::Scheduler(const ServingConfig &cfg)
    : cfg_(cfg), allocator_(makeAllocatorConfig(cfg))
{
    const std::string err = cfg_.model.validate();
    KELLE_ASSERT(err.empty(), "bad model config: ", err);
    KELLE_ASSERT(cfg_.maxBatch > 0, "maxBatch must be positive");
}

std::size_t
Scheduler::requestedBudget(const sim::Task &task) const
{
    // No-eviction baselines hold the full cache: the request must
    // reserve its whole ctx+dec footprint (+1 for the in-flight
    // token) and nothing can be shrunk away.
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    const std::size_t req =
        cfg_.budgetOverride ? cfg_.budgetOverride : task.budget;
    return std::max(req, minBudget(task));
}

std::size_t
Scheduler::minBudget(const sim::Task &task) const
{
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    return task.sinkTokens + task.recentWindow + kFloorSlackTokens;
}

ServingReport
Scheduler::run()
{
    requests_ = generateTrace(cfg_.traffic);
    grants_.assign(requests_.size(), KvBudgetAllocator::Grant{});
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        queue_.schedule(requests_[i].arrival,
                        [this, i] { onArrival(i); });
    }
    queue_.runAll();

    // Makespan is first arrival to last completion; the idle lead-in
    // before the first arrival is not serving time.
    Time makespan;
    if (lastCompletion_.sec() > 0.0)
        makespan = lastCompletion_ - requests_.front().arrival;

    ServingReport rep;
    rep.summary = metrics_.summarize(makespan);
    rep.decodeSteps = decodeSteps_;
    rep.prefills = prefills_;
    rep.poolTokens = allocator_.capacityTokens();
    rep.poolCapacityBytes = allocator_.capacityBytes();
    rep.poolPeakBytes = allocator_.peakInUseBytes();
    rep.shrunkGrants = allocator_.shrunkGrants();
    rep.deferrals = allocator_.deferrals();
    rep.drained = !truncated_ && waiting_.empty() &&
                  admitted_.empty() && running_.empty();
    return rep;
}

void
Scheduler::onArrival(std::size_t idx)
{
    waiting_.push_back(idx);
    metrics_.sampleQueueDepth(waiting_.size());
    if (cfg_.verbose) {
        const Request &r = requests_[idx];
        inform("t=", toString(queue_.now()), " request #", r.id, " [",
               r.task.name, "] arrived (ctx ", r.task.ctxLen, ", dec ",
               r.task.decLen, ")");
    }
    dispatch();
}

void
Scheduler::dispatch()
{
    if (engineBusy_ || truncated_)
        return;
    admitWaiting();
    if (!admitted_.empty()) {
        startPrefill();
        return;
    }
    if (!running_.empty())
        startDecodeStep();
}

void
Scheduler::admitWaiting()
{
    while (!waiting_.empty()) {
        const std::size_t active = admitted_.size() + running_.size();
        const std::size_t cap =
            cfg_.policy == SchedulePolicy::Fcfs ? 1 : cfg_.maxBatch;
        if (active >= cap)
            break;

        const std::size_t idx = waiting_.front();
        Request &r = requests_[idx];
        // requestedBudget() already clamps to >= the floor.
        const std::size_t requested = requestedBudget(r.task);
        const std::size_t floor_tokens = minBudget(r.task);
        auto grant = allocator_.tryAdmit(requested, floor_tokens);
        if (!grant.admitted) {
            if (active == 0 && allocator_.inUseBytes() <= 0.0) {
                // Even an empty pool cannot hold the floor.
                r.state = RequestState::Rejected;
                metrics_.onRejected(r);
                waiting_.pop_front();
                if (cfg_.verbose)
                    inform("t=", toString(queue_.now()), " request #",
                           r.id, " rejected: floor ", floor_tokens,
                           " tokens exceeds the KV pool");
                continue;
            }
            break; // head-of-line wait for a release
        }

        waiting_.pop_front();
        r.state = RequestState::Prefilling;
        r.admitted = queue_.now();
        r.budgetRequested = requested;
        r.budgetGranted = grant.budgetTokens;
        r.kvBytesReserved = grant.bytes;
        grants_[idx] = grant;
        admitted_.push_back(idx);
        metrics_.sampleQueueDepth(waiting_.size());
        if (cfg_.verbose)
            inform("t=", toString(queue_.now()), " request #", r.id,
                   " admitted, N'=", r.budgetGranted,
                   r.budgetGranted < requested ? " (shrunk)" : "",
                   ", pool ",
                   Table::pct(allocator_.utilization()), " full");
    }
}

void
Scheduler::startPrefill()
{
    engineBusy_ = true;
    const std::size_t idx = admitted_.front();
    admitted_.pop_front();
    const Request &r = requests_[idx];
    const auto step = accel::simulatePrefillStep(cfg_.system, cfg_.model,
                                                 r.task.ctxLen);
    metrics_.addEnergy(step.energy);
    ++prefills_;
    queue_.scheduleAfter(step.latency, [this, idx] {
        Request &req = requests_[idx];
        req.state = RequestState::Decoding;
        req.firstToken = queue_.now();
        running_.push_back(idx);
        if (cfg_.verbose)
            inform("t=", toString(queue_.now()), " request #", req.id,
                   " first token (TTFT ",
                   toString(req.firstToken - req.arrival), "), batch ",
                   running_.size());
        engineBusy_ = false;
        dispatch();
    });
}

void
Scheduler::startDecodeStep()
{
    if (cfg_.maxEngineSteps && decodeSteps_ >= cfg_.maxEngineSteps) {
        truncated_ = true;
        return;
    }
    engineBusy_ = true;
    ++decodeSteps_;
    std::vector<std::size_t> resident;
    resident.reserve(running_.size());
    for (std::size_t idx : running_)
        resident.push_back(requests_[idx].residentTokens());
    const auto step =
        accel::simulateBatchedDecodeStep(cfg_.system, cfg_.model, resident);
    metrics_.addEnergy(step.energy);
    queue_.scheduleAfter(step.latency, [this] {
        std::vector<std::size_t> still;
        still.reserve(running_.size());
        for (std::size_t idx : running_) {
            Request &r = requests_[idx];
            ++r.generated;
            if (r.done())
                finishRequest(idx);
            else
                still.push_back(idx);
        }
        running_ = std::move(still);
        engineBusy_ = false;
        dispatch();
    });
}

void
Scheduler::finishRequest(std::size_t idx)
{
    Request &r = requests_[idx];
    r.state = RequestState::Completed;
    r.completed = queue_.now();
    lastCompletion_ = std::max(lastCompletion_, r.completed);
    allocator_.release(grants_[idx]);
    metrics_.onCompleted(r);
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), " request #", r.id,
               " completed (", r.generated, " tokens, e2e ",
               toString(r.completed - r.arrival), ")");
}

} // namespace serving
} // namespace kelle
