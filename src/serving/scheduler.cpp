#include "serving/scheduler.hpp"

#include <algorithm>

#include "accel/capacity.hpp"
#include "common/log.hpp"
#include "common/table.hpp"

namespace kelle {
namespace serving {

std::string
toString(RequestState s)
{
    switch (s) {
      case RequestState::Waiting:
        return "waiting";
      case RequestState::Prefilling:
        return "prefilling";
      case RequestState::Decoding:
        return "decoding";
      case RequestState::Completed:
        return "completed";
      case RequestState::Rejected:
        return "rejected";
    }
    return "?";
}

namespace {

/** Extra slack above the protected regions in the budget floor. */
constexpr std::size_t kFloorSlackTokens = 8;

AllocatorConfig
makeAllocatorConfig(const ServingConfig &cfg)
{
    AllocatorConfig a;
    a.bytesPerToken =
        cfg.model.kvBytesPerToken(cfg.system.kv.kvBits);
    std::size_t pool = cfg.poolTokens;
    if (pool == 0) {
        // §8.4.1: device DRAM net of resident weights bounds the KV
        // pool shared by all concurrent requests.
        accel::CapacitySpec spec;
        spec.dramCapacity = cfg.system.tech.dram.capacity();
        spec.weightBits = cfg.system.tech.weightBits;
        spec.kvBits = cfg.system.kv.kvBits;
        pool = accel::maxSupportedTokens(cfg.model, spec).maxTokens;
    }
    KELLE_ASSERT(pool > 0, "KV pool has no room for any token");
    a.capacityBytes = static_cast<double>(pool) * a.bytesPerToken;
    a.highWatermark = cfg.highWatermark;
    return a;
}

} // namespace

Scheduler::Scheduler(const ServingConfig &cfg)
    : cfg_(cfg), allocator_(makeAllocatorConfig(cfg)),
      policy_(makePolicy(cfg.policy))
{
    const std::string err = cfg_.model.validate();
    KELLE_ASSERT(err.empty(), "bad model config: ", err);
    KELLE_ASSERT(cfg_.maxBatch > 0, "maxBatch must be positive");
}

std::size_t
Scheduler::requestedBudget(const sim::Task &task) const
{
    // No-eviction baselines hold the full cache: the request must
    // reserve its whole ctx+dec footprint (+1 for the in-flight
    // token) and nothing can be shrunk away.
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    const std::size_t req =
        cfg_.budgetOverride ? cfg_.budgetOverride : task.budget;
    return std::max(req, minBudget(task));
}

std::size_t
Scheduler::minBudget(const sim::Task &task) const
{
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    return task.sinkTokens + task.recentWindow + kFloorSlackTokens;
}

EngineView
Scheduler::view() const
{
    return EngineView{queue_.now(), requests_,       waiting_,
                      admitted_,    running_,        cfg_.maxBatch,
                      cfg_.chunkTokens, lastStep_};
}

ServingReport
Scheduler::run()
{
    requests_ = generateTrace(cfg_.traffic);
    grants_.assign(requests_.size(), KvBudgetAllocator::Grant{});
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        queue_.schedule(requests_[i].arrival,
                        [this, i] { onArrival(i); });
    }
    queue_.runAll();

    // Makespan is first arrival to last completion; the idle lead-in
    // before the first arrival is not serving time.
    Time makespan;
    if (lastCompletion_.sec() > 0.0)
        makespan = lastCompletion_ - requests_.front().arrival;

    ServingReport rep;
    rep.summary = metrics_.summarize(makespan);
    rep.engineSteps = engineSteps_;
    rep.decodeSteps = decodeSteps_;
    rep.prefillChunks = prefillChunks_;
    rep.prefills = prefills_;
    rep.poolTokens = allocator_.capacityTokens();
    rep.poolCapacityBytes = allocator_.capacityBytes();
    rep.poolPeakBytes = allocator_.peakInUseBytes();
    rep.shrunkGrants = allocator_.shrunkGrants();
    rep.deferrals = allocator_.deferrals();
    rep.drained = !truncated_ && waiting_.empty() &&
                  admitted_.empty() && running_.empty();
    return rep;
}

void
Scheduler::onArrival(std::size_t idx)
{
    waiting_.push_back(idx);
    metrics_.sampleQueueDepth(waiting_.size());
    if (cfg_.verbose) {
        const Request &r = requests_[idx];
        inform("t=", toString(queue_.now()), " request #", r.id, " [",
               r.task.name, "] arrived (ctx ", r.task.ctxLen, ", dec ",
               r.task.decLen, ", TTFT deadline ",
               toString(Time::seconds(r.ttftDeadlineSec)), ")");
    }
    dispatch();
}

void
Scheduler::dispatch()
{
    if (engineBusy_ || truncated_)
        return;
    admitWaiting();
    const EngineStepPlan plan = policy_->nextStep(view());
    if (plan.kind == EngineStepKind::Idle)
        return;
    if (cfg_.maxEngineSteps && engineSteps_ >= cfg_.maxEngineSteps) {
        truncated_ = true;
        return;
    }
    lastStep_ = plan.kind;
    ++engineSteps_;
    if (plan.kind == EngineStepKind::PrefillChunk)
        runPrefillChunk(plan);
    else
        runDecodeStep(plan);
}

void
Scheduler::rejectRequest(std::size_t idx, std::size_t floor_tokens)
{
    Request &r = requests_[idx];
    r.state = RequestState::Rejected;
    metrics_.onRejected(r);
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), " request #", r.id,
               " rejected: floor ", floor_tokens,
               " tokens exceeds the KV pool");
}

void
Scheduler::admitWaiting()
{
    // Under overload the batch sits at cap on most steps: skip the
    // order computation (an O(W log W) sort for the reordering
    // policies) before it could admit anything.
    const std::size_t cap = policy_->admissionCap(cfg_.maxBatch);
    if (waiting_.empty() || admitted_.size() + running_.size() >= cap)
        return;
    // Snapshot the policy's admission order; entries leave `waiting_`
    // only through this loop, so each is attempted at most once.
    const std::vector<std::size_t> order =
        policy_->admissionOrder(view());
    std::vector<std::size_t> admitted_now;
    for (std::size_t idx : order) {
        if (admitted_.size() + running_.size() >= cap)
            break;

        Request &r = requests_[idx];
        // requestedBudget() already clamps to >= the floor.
        const std::size_t requested = requestedBudget(r.task);
        const std::size_t floor_tokens = minBudget(r.task);
        if (floor_tokens > allocator_.capacityTokens()) {
            // Even an empty pool could never hold the floor.
            rejectRequest(idx, floor_tokens);
            waiting_.erase(std::find(waiting_.begin(), waiting_.end(),
                                     idx));
            continue;
        }
        auto grant = allocator_.tryAdmit(requested, floor_tokens);
        if (!grant.admitted) {
            if (policy_->skipBlocked())
                continue; // later candidates may still fit
            break;        // head-of-line wait for a release
        }

        waiting_.erase(std::find(waiting_.begin(), waiting_.end(),
                                 idx));
        admitted_now.push_back(idx);
        r.state = RequestState::Prefilling;
        r.admitted = queue_.now();
        r.budgetRequested = requested;
        r.budgetGranted = grant.budgetTokens;
        r.kvBytesReserved = grant.bytes;
        grants_[idx] = grant;
        admitted_.push_back(idx);
        metrics_.sampleQueueDepth(waiting_.size());
        if (cfg_.verbose)
            inform("t=", toString(queue_.now()), " request #", r.id,
                   " admitted, N'=", r.budgetGranted,
                   r.budgetGranted < requested ? " (shrunk)" : "",
                   ", pool ",
                   Table::pct(allocator_.utilization()), " full");
    }

    // Starvation accounting, settled after the round: an admission
    // overtook only the earlier arrivals it left *still waiting* —
    // requests admitted later in the same round at the same timestamp
    // lost nothing and are not counted.
    for (std::size_t idx : admitted_now) {
        std::size_t overtaken = 0;
        for (std::size_t w : waiting_)
            overtaken += requests_[w].id < requests_[idx].id ? 1 : 0;
        if (overtaken > 0)
            metrics_.onBypass(overtaken);
    }
}

void
Scheduler::runPrefillChunk(const EngineStepPlan &plan)
{
    engineBusy_ = true;
    ++prefillChunks_;
    const std::size_t idx = plan.requestIdx;
    const Request &r = requests_[idx];
    KELLE_ASSERT(plan.chunkTokens > 0 &&
                     plan.chunkTokens <= r.remainingPrompt(),
                 "policy planned an invalid prefill chunk");
    const auto step = accel::simulatePrefillChunk(
        cfg_.system, cfg_.model, r.prefilled, plan.chunkTokens);
    metrics_.addEnergy(step.energy);
    queue_.scheduleAfter(
        step.latency, [this, idx, tokens = plan.chunkTokens] {
            Request &req = requests_[idx];
            req.prefilled += tokens;
            if (req.prefillDone()) {
                admitted_.erase(std::find(admitted_.begin(),
                                          admitted_.end(), idx));
                req.state = RequestState::Decoding;
                req.firstToken = queue_.now();
                req.lastToken = req.firstToken;
                running_.push_back(idx);
                ++prefills_;
                if (cfg_.verbose)
                    inform("t=", toString(queue_.now()), " request #",
                           req.id, " first token (TTFT ",
                           toString(req.firstToken - req.arrival),
                           ", ", metrics_.metTtft(req) ? "met"
                                                       : "missed",
                           " deadline), batch ", running_.size());
            }
            engineBusy_ = false;
            dispatch();
        });
}

void
Scheduler::runDecodeStep(const EngineStepPlan &plan)
{
    engineBusy_ = true;
    ++decodeSteps_;
    std::vector<std::size_t> resident;
    resident.reserve(plan.decodeBatch.size());
    for (std::size_t idx : plan.decodeBatch)
        resident.push_back(requests_[idx].residentTokens());
    const auto step =
        accel::simulateBatchedDecodeStep(cfg_.system, cfg_.model, resident);
    metrics_.addEnergy(step.energy);
    queue_.scheduleAfter(step.latency, [this,
                                        batch = plan.decodeBatch] {
        for (std::size_t idx : batch) {
            Request &r = requests_[idx];
            ++r.generated;
            r.maxTokenGapSec = std::max(
                r.maxTokenGapSec, (queue_.now() - r.lastToken).sec());
            r.lastToken = queue_.now();
            if (r.done()) {
                finishRequest(idx);
                running_.erase(std::find(running_.begin(),
                                         running_.end(), idx));
            }
        }
        engineBusy_ = false;
        dispatch();
    });
}

void
Scheduler::finishRequest(std::size_t idx)
{
    Request &r = requests_[idx];
    r.state = RequestState::Completed;
    r.completed = queue_.now();
    lastCompletion_ = std::max(lastCompletion_, r.completed);
    allocator_.release(grants_[idx]);
    metrics_.onCompleted(r);
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), " request #", r.id,
               " completed (", r.generated, " tokens, e2e ",
               toString(r.completed - r.arrival), ")");
}

} // namespace serving
} // namespace kelle
