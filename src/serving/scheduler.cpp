#include "serving/scheduler.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace kelle {
namespace serving {

std::string
toString(RequestState s)
{
    switch (s) {
      case RequestState::Waiting:
        return "waiting";
      case RequestState::Prefilling:
        return "prefilling";
      case RequestState::Decoding:
        return "decoding";
      case RequestState::Completed:
        return "completed";
      case RequestState::Rejected:
        return "rejected";
    }
    return "?";
}

DeviceConfig
deviceConfigFrom(const ServingConfig &cfg)
{
    DeviceConfig d;
    d.system = cfg.system;
    d.model = cfg.model;
    d.policy = cfg.policy;
    d.maxBatch = cfg.maxBatch;
    d.chunkTokens = cfg.chunkTokens;
    d.chunkSlackFrac = cfg.chunkSlackFrac;
    d.preempt = cfg.preempt;
    d.paged = cfg.paged;
    d.budgetOverride = cfg.budgetOverride;
    d.poolTokens = cfg.poolTokens;
    d.highWatermark = cfg.highWatermark;
    d.maxEngineSteps = cfg.maxEngineSteps;
    d.clientRetries = cfg.clientRetries;
    d.clientRetryBackoffSec = cfg.clientRetryBackoffSec;
    d.fastSim = cfg.fastSim;
    d.verbose = cfg.verbose;
    d.profiler = cfg.profiler;
    return d;
}

Scheduler::Scheduler(const ServingConfig &cfg) : cfg_(cfg)
{
    device_ = std::make_unique<DeviceEngine>(deviceConfigFrom(cfg_),
                                             queue_, requests_);
    // Requeue preemption victims through an immediate event, exactly
    // like ClusterEngine does for its devices: the victim re-enters
    // the queue after the current step boundary completes. Using the
    // same mechanism keeps a 1-device cluster bit-identical to this
    // engine with the preempt knob on as well as off.
    DeviceEngine::Hooks hooks;
    hooks.requeue = [this](std::size_t idx) {
        queue_.schedule(queue_.now(),
                        [this, idx] { device_->enqueue(idx); });
    };
    device_->setHooks(std::move(hooks));
    if (cfg_.trace != nullptr)
        device_->setTrace(cfg_.trace->addDeviceTrack("device"));
    if (cfg_.waterfall != nullptr)
        device_->setWaterfall(cfg_.waterfall, 0);
}

const ServingMetrics &
Scheduler::metrics() const
{
    return device_->metrics();
}

ServingReport
deviceReport(const DeviceEngine &dev, Time makespan)
{
    ServingReport rep;
    rep.summary = dev.metrics().summarize(makespan);
    rep.engineSteps = dev.engineSteps();
    rep.decodeSteps = dev.decodeSteps();
    rep.prefillChunks = dev.prefillChunks();
    rep.prefills = dev.prefills();
    rep.poolTokens = dev.allocator().capacityTokens();
    rep.poolCapacityBytes = dev.allocator().capacityBytes();
    rep.poolPeakBytes = dev.allocator().peakInUseBytes();
    rep.shrunkGrants = dev.allocator().shrunkGrants();
    rep.deferrals = dev.allocator().deferrals();
    rep.peakLogicalTokens = dev.allocator().peakLogicalTokens();
    if (const kv::KvPagePool *pool = dev.allocator().pagePool()) {
        rep.paged.enabled = true;
        rep.paged.totalPages = pool->totalPages();
        rep.paged.blockTokens = pool->blockTokens();
        rep.paged.peakUsedPages = pool->peakUsedPages();
        rep.paged.peakSharedPages = pool->peakSharedPages();
        rep.paged.prefixHitTokens = pool->prefixHitTokens();
        rep.paged.cowCopies = pool->cowCopies();
        rep.paged.cachedReclaims = pool->cachedReclaims();
        rep.paged.tailReclaims = dev.allocator().tailReclaims();
        rep.paged.reclaimedPages = dev.allocator().reclaimedPages();
        rep.paged.budgetClips = dev.allocator().budgetClips();
    }
    rep.drained = dev.drained();
    return rep;
}

ServingReport
Scheduler::run()
{
    {
        obs::PhaseProfiler::Timer timer(
            cfg_.profiler, obs::PhaseProfiler::Phase::TraceGen);
        requests_ = generateTrace(cfg_.traffic);
    }
    if (cfg_.waterfall != nullptr)
        cfg_.waterfall->beginRun(requests_.size());
    // All arrivals sit in the queue up front; one in-flight step and
    // the occasional requeue ride on top.
    queue_.reserve(requests_.size() + 8);
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        queue_.schedule(requests_[i].arrival,
                        [this, i] { device_->enqueue(i); });
    }
    {
        obs::PhaseProfiler::Timer timer(
            cfg_.profiler, obs::PhaseProfiler::Phase::SerialDrive);
        queue_.runAll();
    }

    // Makespan is first arrival to last completion; the idle lead-in
    // before the first arrival is not serving time.
    Time makespan;
    if (device_->lastCompletion().sec() > 0.0)
        makespan = device_->lastCompletion() -
                   requests_.front().arrival;
    ServingReport rep = deviceReport(*device_, makespan);
    if (cfg_.waterfall != nullptr)
        rep.attribution = cfg_.waterfall->report(1);
    return rep;
}

} // namespace serving
} // namespace kelle
