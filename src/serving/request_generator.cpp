#include "serving/request_generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace kelle {
namespace serving {

namespace {

/** Exponential draw with the given rate; +inf when the rate is ~0. */
double
expDraw(Rng &rng, double rate)
{
    if (rate <= 1e-12)
        return std::numeric_limits<double>::infinity();
    // Guard log(0); uniform() is in [0, 1).
    double u = rng.uniform();
    while (u <= 1e-300)
        u = rng.uniform();
    return -std::log(u) / rate;
}

std::vector<std::pair<sim::Task, double>>
defaultMix()
{
    std::vector<std::pair<sim::Task, double>> mix;
    for (const auto &t : sim::hardwareTasks())
        mix.emplace_back(t, 1.0);
    return mix;
}

/** FNV-1a 64 over the session id and task name: the content identity
 *  of a session's shared system prompt (never 0 for a live prefix). */
std::uint64_t
sessionPrefixKey(std::uint64_t session, const std::string &task)
{
    std::uint64_t h = 1469598103934665603ULL;
    const auto mixByte = [&h](unsigned char b) {
        h ^= b;
        h *= 1099511628211ULL;
    };
    for (int i = 0; i < 8; ++i)
        mixByte(static_cast<unsigned char>(session >> (8 * i)));
    for (char c : task)
        mixByte(static_cast<unsigned char>(c));
    return h == 0 ? 1 : h;
}

const sim::Task &
sampleTask(Rng &rng, const std::vector<std::pair<sim::Task, double>> &mix)
{
    double total = 0.0;
    for (const auto &[task, weight] : mix)
        total += weight;
    KELLE_ASSERT(total > 0.0, "task mix has zero total weight");
    double pick = rng.uniform(0.0, total);
    for (const auto &entry : mix) {
        pick -= entry.second;
        if (pick < 0.0)
            return entry.first;
    }
    return mix.back().first;
}

} // namespace

std::string
toString(ArrivalProcess p)
{
    switch (p) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Bursty:
        return "bursty";
    }
    return "?";
}

bool
parseArrivalProcess(const std::string &text, ArrivalProcess *out)
{
    if (text == "poisson") {
        *out = ArrivalProcess::Poisson;
        return true;
    }
    if (text == "bursty") {
        *out = ArrivalProcess::Bursty;
        return true;
    }
    return false;
}

std::vector<Request>
generateTrace(const TrafficConfig &cfg)
{
    KELLE_ASSERT(cfg.ratePerSec > 0.0, "arrival rate must be positive");
    KELLE_ASSERT(cfg.numRequests > 0, "empty trace requested");
    KELLE_ASSERT(cfg.burstMeanArrivals > 0.0,
                 "bursty phases need a positive mean arrival count");

    const auto mix = cfg.mix.empty() ? defaultMix() : cfg.mix;
    Rng rng(cfg.seed);
    // Session assignment draws from its own stream so that enabling
    // sessions never perturbs the arrival times or task samples.
    Rng session_rng(cfg.seed ^ 0x5e5510f5a6edULL);

    // MMPP phase rates. The off-phase rate is whatever preserves the
    // long-run mean: rate = f*on + (1-f)*off.
    const double f = std::clamp(cfg.burstFraction, 0.01, 0.99);
    const double on_rate = cfg.ratePerSec * std::max(1.0, cfg.burstFactor);
    const double off_rate = std::max(
        0.0, (cfg.ratePerSec - f * on_rate) / (1.0 - f));
    const double on_dwell = cfg.burstMeanArrivals / on_rate;
    const double off_dwell = on_dwell * (1.0 - f) / f;

    std::vector<Request> trace;
    trace.reserve(cfg.numRequests);

    double now = 0.0;
    bool on_phase = false; // bursty traces start idle
    double phase_end =
        (cfg.process == ArrivalProcess::Bursty)
            ? expDraw(rng, 1.0 / off_dwell)
            : std::numeric_limits<double>::infinity();

    while (trace.size() < cfg.numRequests) {
        const double rate = (cfg.process == ArrivalProcess::Poisson)
                                ? cfg.ratePerSec
                                : (on_phase ? on_rate : off_rate);
        const double dt = expDraw(rng, rate);
        if (now + dt < phase_end) {
            now += dt;
            Request r;
            r.id = trace.size();
            r.task = sampleTask(rng, mix);
            r.arrival = Time::seconds(now);
            r.ttftDeadlineSec = cfg.slo.ttftDeadlineSec(r.task.ctxLen);
            r.tpotTargetSec = std::max(0.0, cfg.slo.tpotSec);
            if (cfg.sessions > 0 && r.task.ctxLen > 1) {
                const std::uint64_t session =
                    session_rng.below(cfg.sessions);
                const double frac =
                    std::clamp(cfg.sessionPrefixFrac, 0.0, 1.0);
                r.prefixLen = std::min(
                    r.task.ctxLen - 1,
                    static_cast<std::size_t>(
                        frac *
                        static_cast<double>(r.task.ctxLen)));
                if (r.prefixLen > 0)
                    r.prefixKey =
                        sessionPrefixKey(session, r.task.name);
            }
            trace.push_back(r);
        } else {
            now = phase_end;
            on_phase = !on_phase;
            phase_end =
                now + expDraw(rng, 1.0 / (on_phase ? on_dwell : off_dwell));
        }
    }
    return trace;
}

std::vector<std::pair<sim::Task, double>>
pg19HeavyMix()
{
    std::vector<std::pair<sim::Task, double>> mix;
    for (const auto &t : sim::hardwareTasks())
        mix.emplace_back(t, t.name == sim::pg19().name ? 4.0 : 1.0);
    return mix;
}

double
offeredTokensPerSec(const TrafficConfig &cfg)
{
    const auto mix = cfg.mix.empty() ? defaultMix() : cfg.mix;
    double total_w = 0.0;
    double total_tok = 0.0;
    for (const auto &[task, weight] : mix) {
        total_w += weight;
        total_tok +=
            weight * static_cast<double>(task.ctxLen + task.decLen);
    }
    return total_w > 0.0 ? cfg.ratePerSec * total_tok / total_w : 0.0;
}

} // namespace serving
} // namespace kelle
