/**
 * @file
 * Admission control over the finite KV pool.
 *
 * Under concurrent requests the KV cache is a shared, capacity-bound
 * memory object: every admitted request reserves `N' tokens x
 * kvBytesPerToken` for its lifetime. The allocator grants per-request
 * AERP budgets N' out of a byte pool sized from the capacity analysis
 * of accel::maxSupportedTokens (device DRAM net of weights) or from an
 * explicit token count, and implements eviction-pressure feedback:
 * once utilization crosses a high watermark, new grants are shrunk
 * toward the request's protected floor (sink + recent window), which
 * raises each member's eviction rate instead of refusing service.
 * A request is deferred (left queued) when even its floor does not fit
 * in the currently free bytes, and can only be rejected by the caller
 * when the floor exceeds the whole pool.
 *
 * Invariant: reserved bytes never exceed the pool capacity.
 */

#ifndef KELLE_SERVING_KV_BUDGET_ALLOCATOR_HPP
#define KELLE_SERVING_KV_BUDGET_ALLOCATOR_HPP

#include <cstddef>
#include <cstdint>

namespace kelle {
namespace serving {

/** Pool sizing and pressure behaviour. */
struct AllocatorConfig
{
    double capacityBytes = 0.0;  ///< total KV pool
    double bytesPerToken = 1.0;  ///< model.kvBytesPerToken(kvBits)
    /** Utilization above which new grants shrink toward the floor. */
    double highWatermark = 0.85;
};

class KvBudgetAllocator
{
  public:
    /** Outcome of an admission attempt. */
    struct Grant
    {
        bool admitted = false;
        std::size_t budgetTokens = 0; ///< granted N'
        double bytes = 0.0;           ///< reserved pool bytes
    };

    explicit KvBudgetAllocator(const AllocatorConfig &cfg);

    /**
     * Try to admit a request asking for `requested_tokens` with a
     * protected floor of `min_tokens` (sink + recent window). Grants
     * the full request while below the watermark, the largest budget
     * that stays below it under pressure (never below the floor), and
     * defers when the floor does not fit in the free bytes.
     */
    Grant tryAdmit(std::size_t requested_tokens, std::size_t min_tokens);

    /** Return a grant's bytes to the pool; zeroes the grant. */
    void release(Grant &grant);

    double capacityBytes() const { return capacityBytes_; }
    double inUseBytes() const { return inUseBytes_; }
    double peakInUseBytes() const { return peakInUseBytes_; }
    double utilization() const;
    std::size_t capacityTokens() const;

    /** Admissions granted below the requested budget. */
    std::uint64_t shrunkGrants() const { return shrunkGrants_; }
    /** Failed attempts (request stays queued). */
    std::uint64_t deferrals() const { return deferrals_; }

  private:
    double capacityBytes_;
    double bytesPerToken_;
    double highWatermark_;

    double inUseBytes_ = 0.0;
    double peakInUseBytes_ = 0.0;
    std::uint64_t shrunkGrants_ = 0;
    std::uint64_t deferrals_ = 0;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_KV_BUDGET_ALLOCATOR_HPP
