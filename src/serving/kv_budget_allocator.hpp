/**
 * @file
 * Admission control over the finite KV pool.
 *
 * Under concurrent requests the KV cache is a shared, capacity-bound
 * memory object: every admitted request reserves `N' tokens x
 * kvBytesPerToken` for its lifetime. The allocator grants per-request
 * AERP budgets N' out of a byte pool sized from the capacity analysis
 * of accel::maxSupportedTokens (device DRAM net of weights) or from an
 * explicit token count, and implements eviction-pressure feedback:
 * once utilization crosses a high watermark, new grants are shrunk
 * toward the request's protected floor (sink + recent window), which
 * raises each member's eviction rate instead of refusing service.
 * A request is deferred (left queued) when even its floor does not fit
 * in the currently free bytes, and can only be rejected by the caller
 * when the floor exceeds the whole pool.
 *
 * Paged mode (`AllocatorConfig::pagedTotalPages > 0`, ISSUE 8): the
 * byte pool is replaced by a kv::KvPagePool of fixed-size token pages.
 * Admission reserves only the request's protected *floor* up front
 * (attaching shared prefix pages copy-free when the request carries a
 * prefix key); the rest of the budget materializes lazily through
 * growChain() as the sequence appends, and failed growth clamps the
 * budget to the chain's capacity instead of blocking — page-granular
 * eviction pressure. shrinkChainTo() reclaims whole idle tail pages
 * from running grants, which is what admission pressure harvests
 * before deferring a new request. Contiguous mode is byte-for-byte
 * the legacy allocator.
 *
 * Invariant: reserved bytes (or pages) never exceed the pool capacity.
 */

#ifndef KELLE_SERVING_KV_BUDGET_ALLOCATOR_HPP
#define KELLE_SERVING_KV_BUDGET_ALLOCATOR_HPP

#include <cstddef>
#include <cstdint>
#include <memory>

#include "kvcache/kv_page_pool.hpp"

namespace kelle {
namespace serving {

/** Pool sizing and pressure behaviour. */
struct AllocatorConfig
{
    double capacityBytes = 0.0;  ///< total KV pool
    double bytesPerToken = 1.0;  ///< model.kvBytesPerToken(kvBits)
    /** Utilization above which new grants shrink toward the floor. */
    double highWatermark = 0.85;

    /** @name Paged mode (> 0 pages switches the pool over). @{ */
    std::size_t pagedTotalPages = 0;
    std::size_t pagedBlockTokens = 64;
    double pagedBytesPerPage = 0.0;
    bool pagedSharePrefixes = true;
    /** @} */
};

class KvBudgetAllocator
{
  public:
    static constexpr std::size_t kNoChain = kv::KvPagePool::kNoChain;

    /** Outcome of an admission attempt. */
    struct Grant
    {
        bool admitted = false;
        std::size_t budgetTokens = 0; ///< granted N'
        double bytes = 0.0;           ///< reserved pool bytes
        /** @name Paged-mode fields (defaults in contiguous mode). @{ */
        std::size_t chainId = kNoChain;
        std::size_t prefixHitTokens = 0;
        /** Current page-chain token capacity (grows lazily). */
        std::size_t chainCapacityTokens = 0;
        /** @} */
    };

    explicit KvBudgetAllocator(const AllocatorConfig &cfg);

    /**
     * Try to admit a request asking for `requested_tokens` with a
     * protected floor of `min_tokens` (sink + recent window). Grants
     * the full request while below the watermark, the largest budget
     * that stays below it under pressure (never below the floor), and
     * defers when the floor does not fit in the free bytes (paged
     * mode: in the free + cached pages). In paged mode a nonzero
     * `prefix_key` attaches published prefix pages copy-free.
     */
    Grant tryAdmit(std::size_t requested_tokens,
                   std::size_t min_tokens,
                   std::uint64_t prefix_key = 0,
                   std::size_t prefix_tokens = 0);

    /** Return a grant's bytes (or pages) to the pool; zeroes it. */
    void release(Grant &grant);

    /** @name Paged-mode grant lifecycle (no-ops when contiguous). @{ */
    bool paged() const { return pool_ != nullptr; }
    /**
     * Grow the grant's chain to hold `tokens`; false on exhaustion
     * with the chain at best-effort capacity — the caller clamps the
     * budget via shrinkBudget (never below the admitted floor).
     */
    bool growChain(Grant &grant, std::size_t tokens);
    /** Clamp the logical budget N' of a live grant. */
    void shrinkBudget(Grant &grant, std::size_t tokens);
    /** Reclaim whole tail pages above `tokens`; returns pages freed. */
    std::size_t shrinkChainTo(Grant &grant, std::size_t tokens);
    /** Publish the grant's first `tokens` tokens under `key`. */
    void publishPrefix(const Grant &grant, std::uint64_t key,
                       std::size_t tokens);
    /** Tokens an admission could still acquire (free+cached pages). */
    std::size_t availableTokens() const;
    /** Direct page-pool view (null in contiguous mode). */
    const kv::KvPagePool *pagePool() const { return pool_.get(); }
    /** @} */

    /** @name Fault degradation (src/faults). @{ */
    /**
     * eDRAM-degrade: scale the capacity *admission sees* to
     * `scale x` the real pool (graceful pool-shrink fault). Live
     * grants keep their reservations — only new admissions and the
     * watermark feedback contract; restoring 1.0 is bit-exact with a
     * never-scaled allocator, so faults-off digests are untouched.
     */
    void setCapacityScale(double scale);
    double capacityScale() const { return capacityScale_; }
    /** Fault-pressure reclaim: drop all cached shared-prefix pages
     *  (paged mode; 0 in contiguous mode). Returns pages freed. */
    std::size_t dropCachedPrefixes();
    /** @} */

    double capacityBytes() const { return capacityBytes_; }
    double inUseBytes() const;
    double peakInUseBytes() const;
    double utilization() const;
    std::size_t capacityTokens() const;

    /** Admissions granted below the requested budget. */
    std::uint64_t shrunkGrants() const { return shrunkGrants_; }
    /** Failed attempts (request stays queued). */
    std::uint64_t deferrals() const { return deferrals_; }
    /** Budget clamps after failed page growth (paged mode). */
    std::uint64_t budgetClips() const { return budgetClips_; }
    /** shrinkChainTo calls that freed pages / pages they freed. */
    std::uint64_t tailReclaims() const { return tailReclaims_; }
    std::uint64_t reclaimedPages() const { return reclaimedPages_; }
    /** Peak sum of live grants' logical budgets N' — the resident-
     *  token capacity metric the paged-vs-contiguous benches record
     *  (prefix sharing stores shared tokens once but grants them to
     *  every sharer, so paged peaks exceed the pool's token count). */
    std::size_t peakLogicalTokens() const { return peakLogicalTokens_; }

  private:
    double capacityBytes_;
    double bytesPerToken_;
    double highWatermark_;
    double capacityScale_ = 1.0; ///< pool-shrink fault degradation
    std::unique_ptr<kv::KvPagePool> pool_; ///< null = contiguous

    double inUseBytes_ = 0.0;
    double peakInUseBytes_ = 0.0;
    std::size_t logicalTokens_ = 0;
    std::size_t peakLogicalTokens_ = 0;
    std::uint64_t shrunkGrants_ = 0;
    std::uint64_t deferrals_ = 0;
    std::uint64_t budgetClips_ = 0;
    std::uint64_t tailReclaims_ = 0;
    std::uint64_t reclaimedPages_ = 0;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_KV_BUDGET_ALLOCATOR_HPP
