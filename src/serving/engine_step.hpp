/**
 * @file
 * The unit of work a scheduling policy hands to the engine executor.
 *
 * At every step boundary the serving engine asks its `Policy` for an
 * `EngineStepPlan`: either one request's next prefill *chunk* (a fixed
 * number of prompt tokens costed by accel::simulatePrefillChunk at the
 * request's current KV offset) or one decode iteration over the named
 * continuous-batch members. Splitting prefill into chunks is what lets
 * a policy interleave a long prompt with decode iterations
 * (Sarathi-style) instead of stalling the whole batch for the full
 * prefill latency.
 */

#ifndef KELLE_SERVING_ENGINE_STEP_HPP
#define KELLE_SERVING_ENGINE_STEP_HPP

#include <cstddef>
#include <string>
#include <vector>

namespace kelle {
namespace serving {

/** What the accelerator does during one engine step. */
enum class EngineStepKind
{
    Idle,         ///< nothing runnable; the engine waits for an event
    PrefillChunk, ///< one request's next span of prompt tokens
    DecodeStep,   ///< one decode iteration over the continuous batch
};

std::string toString(EngineStepKind k);

/**
 * One engine step, as chosen by a Policy at a step boundary. The
 * request indices refer to the engine's request table (trace order).
 *
 * Plans are filled in place into a caller-owned scratch object
 * (`Policy::nextStep`) so the per-step `decodeBatch` reuses its
 * capacity instead of reallocating at every step boundary; `reset()`
 * returns the plan to Idle without releasing that storage.
 */
struct EngineStepPlan
{
    EngineStepKind kind = EngineStepKind::Idle;
    /** PrefillChunk: the request whose prompt advances. */
    std::size_t requestIdx = 0;
    /** PrefillChunk: prompt tokens this chunk processes. */
    std::size_t chunkTokens = 0;
    /** DecodeStep: the batch members to step together. */
    std::vector<std::size_t> decodeBatch;

    /** Back to Idle, keeping decodeBatch capacity. */
    void
    reset()
    {
        kind = EngineStepKind::Idle;
        requestIdx = 0;
        chunkTokens = 0;
        decodeBatch.clear();
    }
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_ENGINE_STEP_HPP
