/**
 * @file
 * One device's engine-step executor, extracted from the single-device
 * `Scheduler` so a cluster can run N of them over one shared
 * `sim::EventQueue` (src/cluster). The executor owns everything that
 * is per-accelerator — the KV-budget allocator, the policy instance,
 * the waiting/admitted/running queues, the step counters and the SLO
 * metrics — while the *owner* (Scheduler or ClusterEngine) owns the
 * request table, the event queue, and the arrival routing.
 *
 * The step loop is unchanged from the PR 3 pipeline: at every step
 * boundary the engine (1) optionally reclaims deadline-doomed decodes
 * (preempt-and-requeue, below), (2) offers waiting requests to the
 * allocator in the policy's admission order, and (3) executes the
 * `EngineStepPlan` the policy emits — one prefill chunk or one batched
 * decode iteration, costed by the accel timing model. Requests enter
 * through `enqueue(idx)`, which is what the owner calls from its
 * arrival (or re-dispatch) events.
 *
 * Preempt-and-requeue (`PreemptConfig`): when enabled and this device
 * has waiting demand (dispatch is route-once, so only local waiters
 * can use the freed budget), a running decode whose TPOT target is
 * *already
 * unattainable* — elapsed decode time alone exceeds
 * `doomFactor x tpotTarget x decLen`, so even an instant finish would
 * miss — has its KV grant reclaimed and its progress reset, and is
 * handed back through `Hooks::requeue` (the cluster re-dispatches it,
 * possibly to another device) or requeued locally. The request keeps
 * its original arrival and first-token timestamps, so the restart is
 * charged as a decode stall and the TPOT miss stays on the books; each
 * request is preempted at most once, so traces always drain.
 */

#ifndef KELLE_SERVING_DEVICE_ENGINE_HPP
#define KELLE_SERVING_DEVICE_ENGINE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/timing_model.hpp"
#include "model/model_config.hpp"
#include "serving/engine_step.hpp"
#include "serving/kv_budget_allocator.hpp"
#include "serving/policy.hpp"
#include "serving/request.hpp"
#include "serving/serving_metrics.hpp"
#include "sim/event_queue.hpp"

namespace kelle {
namespace serving {

/** Deadline-doomed decode reclamation knob. */
struct PreemptConfig
{
    bool enabled = false;
    /**
     * A decode is doomed once its elapsed decode time exceeds
     * `doomFactor x tpotTarget x decLen` with tokens still to emit:
     * even finishing instantly would miss the TPOT target. Values
     * above 1 preempt later (more certain, less reclaimed); below 1
     * preempt speculatively.
     */
    double doomFactor = 1.0;
};

/** Everything per-accelerator about a serving engine. */
struct DeviceConfig
{
    /** Verbose-log label; empty for the single-device engine. */
    std::string name;
    accel::SystemConfig system = accel::kelleEdramSystem(2048);
    model::ModelConfig model = model::llama2_7b();
    SchedulePolicy policy = SchedulePolicy::ContinuousBatching;
    std::size_t maxBatch = 16;
    std::size_t chunkTokens = 0;
    std::size_t budgetOverride = 0;
    std::size_t poolTokens = 0;
    double highWatermark = 0.85;
    /** EdfChunked slack-aware alternation (see policy.hpp); 0 = off. */
    double chunkSlackFrac = 0.0;
    PreemptConfig preempt;
    /** Safety cap on this device's engine steps; 0 = unlimited. */
    std::uint64_t maxEngineSteps = 0;
    bool verbose = false;
};

class DeviceEngine
{
  public:
    /** Owner callbacks wired by the cluster (optional). */
    struct Hooks
    {
        /** Re-dispatch a preempted victim; local requeue when null. */
        std::function<void(std::size_t idx)> requeue;
    };

    /**
     * Bind the engine to the owner's event queue and request table.
     * Both must outlive the engine; `requests` may grow only before
     * the first `enqueue`.
     */
    DeviceEngine(const DeviceConfig &cfg, sim::EventQueue &queue,
                 std::vector<Request> &requests);

    void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /** Hand an arrived (or requeued) request to this device. */
    void enqueue(std::size_t idx);

    /** @name Status for dispatch policies and roll-ups. @{ */
    const DeviceConfig &config() const { return cfg_; }
    const KvBudgetAllocator &allocator() const { return allocator_; }
    double freeKvBytes() const
    {
        return allocator_.capacityBytes() - allocator_.inUseBytes();
    }
    std::size_t waitingCount() const { return waiting_.size(); }
    /** Admitted + running requests resident on the device. */
    std::size_t activeCount() const
    {
        return admitted_.size() + running_.size();
    }
    /**
     * Whether this device's whole KV pool can ever hold the request's
     * protected budget floor. False means enqueueing here guarantees
     * rejection, however empty the pool — the dispatcher uses this to
     * avoid turning a serveable request into a permanent reject.
     */
    bool
    canEverAdmit(const Request &r) const
    {
        return minBudget(r.task) <= allocator_.capacityTokens();
    }
    std::size_t dispatched() const { return dispatched_; }
    /** @} */

    /** @name Run outcome, read by the owner after the queue drains. @{ */
    const ServingMetrics &metrics() const { return metrics_; }
    std::uint64_t engineSteps() const { return engineSteps_; }
    std::uint64_t decodeSteps() const { return decodeSteps_; }
    std::uint64_t prefillChunks() const { return prefillChunks_; }
    std::uint64_t prefills() const { return prefills_; }
    Time lastCompletion() const { return lastCompletion_; }
    /** Wall-clock the accelerator spent executing engine steps. */
    Time busyTime() const { return busy_; }
    bool truncated() const { return truncated_; }
    /** Trace fully served: not truncated and all queues empty. */
    bool drained() const
    {
        return !truncated_ && waiting_.empty() && admitted_.empty() &&
               running_.empty();
    }
    /** @} */

  private:
    void dispatch();
    void preemptDoomed();
    void admitWaiting();
    void runPrefillChunk(const EngineStepPlan &plan);
    void runDecodeStep(const EngineStepPlan &plan);
    void finishRequest(std::size_t idx);
    void rejectRequest(std::size_t idx, std::size_t floor_tokens);
    EngineView view() const;
    std::size_t requestedBudget(const sim::Task &task) const;
    std::size_t minBudget(const sim::Task &task) const;

    DeviceConfig cfg_;
    std::string label_; ///< " [name]" verbose-log infix, "" if unnamed
    sim::EventQueue &queue_;
    std::vector<Request> &requests_;
    KvBudgetAllocator allocator_;
    ServingMetrics metrics_;
    std::unique_ptr<Policy> policy_;
    Hooks hooks_;

    std::vector<KvBudgetAllocator::Grant> grants_;
    std::deque<std::size_t> waiting_;  ///< arrived, not admitted
    std::deque<std::size_t> admitted_; ///< granted, prompt unfinished
    std::vector<std::size_t> running_; ///< decode-batch members

    bool engineBusy_ = false;
    bool truncated_ = false;
    EngineStepKind lastStep_ = EngineStepKind::Idle;
    std::size_t dispatched_ = 0;
    std::uint64_t engineSteps_ = 0;
    std::uint64_t decodeSteps_ = 0;
    std::uint64_t prefillChunks_ = 0;
    std::uint64_t prefills_ = 0;
    Time lastCompletion_;
    Time busy_;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_DEVICE_ENGINE_HPP
