/**
 * @file
 * One device's engine-step executor, extracted from the single-device
 * `Scheduler` so a cluster can run N of them over one shared
 * `sim::EventQueue` (src/cluster). The executor owns everything that
 * is per-accelerator — the KV-budget allocator, the policy instance,
 * the waiting/admitted/running queues, the step counters and the SLO
 * metrics — while the *owner* (Scheduler or ClusterEngine) owns the
 * request table, the event queue, and the arrival routing.
 *
 * The step loop is unchanged from the PR 3 pipeline: at every step
 * boundary the engine (1) optionally reclaims deadline-doomed decodes
 * (preempt-and-requeue, below), (2) offers waiting requests to the
 * allocator in the policy's admission order, and (3) executes the
 * `EngineStepPlan` the policy emits — one prefill chunk or one batched
 * decode iteration, costed by the accel timing model. Requests enter
 * through `enqueue(idx)`, which is what the owner calls from its
 * arrival (or re-dispatch) events.
 *
 * Preempt-and-requeue (`PreemptConfig`): when enabled and this device
 * has waiting demand (dispatch is route-once, so only local waiters
 * can use the freed budget), a running decode whose TPOT target is
 * *already
 * unattainable* — elapsed decode time alone exceeds
 * `doomFactor x tpotTarget x decLen`, so even an instant finish would
 * miss — has its KV grant reclaimed and its progress reset, and is
 * handed back through `Hooks::requeue` (the cluster re-dispatches it,
 * possibly to another device) or requeued locally. The request keeps
 * its original arrival and first-token timestamps, so the restart is
 * charged as a decode stall and the TPOT miss stays on the books; each
 * request is preempted at most once, so traces always drain.
 *
 * Fast path (`DeviceConfig::fastSim`, on by default, bit-identical —
 * see docs/ARCHITECTURE.md "Simulation-core performance"): step costs
 * come from a per-device `accel::StepCostCache`; per-step vectors are
 * engine-owned scratch reused across steps; completion callbacks
 * capture only `this` (in-flight step state lives in members) so the
 * `std::function` stays in its small-object buffer; and runs of
 * decode boundaries nothing can observe — no member completing, no
 * admission or preemption possible, no pending event before the
 * boundary — are fast-forwarded inline without re-entering the event
 * queue, replaying exactly the per-boundary updates and cost lookups
 * the step-at-a-time loop would perform. `fastSim = false` keeps the
 * straight-line path; the FastPathEquivalence tests drive both to the
 * same traces and require field-for-field identical reports.
 */

#ifndef KELLE_SERVING_DEVICE_ENGINE_HPP
#define KELLE_SERVING_DEVICE_ENGINE_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/step_cost_cache.hpp"
#include "accel/timing_model.hpp"
#include "model/model_config.hpp"
#include "obs/attribution.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "serving/engine_step.hpp"
#include "serving/kv_budget_allocator.hpp"
#include "serving/policy.hpp"
#include "serving/request.hpp"
#include "serving/serving_metrics.hpp"
#include "sim/event_queue.hpp"

namespace kelle {
namespace serving {

/** Deadline-doomed decode reclamation knob. */
struct PreemptConfig
{
    bool enabled = false;
    /**
     * A decode is doomed once its elapsed decode time exceeds
     * `doomFactor x tpotTarget x decLen` with tokens still to emit:
     * even finishing instantly would miss the TPOT target. Values
     * above 1 preempt later (more certain, less reclaimed); below 1
     * preempt speculatively.
     */
    double doomFactor = 1.0;
};

/**
 * Paged KV pool mode (ISSUE 8). Off keeps the legacy contiguous
 * per-request reservations bit-identically. On, the device's KV pool
 * becomes a kv::KvPagePool of `blockTokens`-token pages: admission
 * reserves only the protected floor, budgets grow lazily page by
 * page, idle tail pages are reclaimed under admission pressure, and
 * requests carrying a prefix key share published prefix pages
 * copy-free (their prefill skips the covered tokens — cheaper TTFT).
 */
struct PagedKvConfig
{
    bool enabled = false;
    std::size_t blockTokens = 64;
    /**
     * Stored bits per KV value for pages (0 keeps system.kv.kvBits).
     * Applied to the whole timing/energy/capacity stack, so INT8/INT4
     * pages cost fewer pool bytes and less refresh energy.
     */
    int quantBits = 0;
    bool sharePrefixes = true;
};

/** Everything per-accelerator about a serving engine. */
struct DeviceConfig
{
    /** Verbose-log label; empty for the single-device engine. */
    std::string name;
    accel::SystemConfig system = accel::kelleEdramSystem(2048);
    model::ModelConfig model = model::llama2_7b();
    SchedulePolicy policy = SchedulePolicy::ContinuousBatching;
    std::size_t maxBatch = 16;
    std::size_t chunkTokens = 0;
    std::size_t budgetOverride = 0;
    std::size_t poolTokens = 0;
    double highWatermark = 0.85;
    /** EdfChunked slack-aware alternation (see policy.hpp); 0 = off. */
    double chunkSlackFrac = 0.0;
    PreemptConfig preempt;
    PagedKvConfig paged;
    /** Safety cap on this device's engine steps; 0 = unlimited. */
    std::uint64_t maxEngineSteps = 0;
    /**
     * Client-side retry budget for overload rejections (satellite of
     * ISSUE 10): instead of failing terminally, a rejected request
     * re-arrives after a seeded backoff, up to this many times. 0 (the
     * default) keeps the legacy immediate-reject path bit-identical.
     * The backoff stream is a pure hash of (request id, attempt) —
     * independent of the arrival-trace RNG, so the base arrival trace
     * stays byte-identical whether retries are on or off.
     */
    std::uint32_t clientRetries = 0;
    /** Mean client re-arrival backoff, seconds (jittered 0.5-1.5x). */
    double clientRetryBackoffSec = 5.0;
    /**
     * Bit-identical simulation fast path: memoized step costing plus
     * fast-forwarding of provably identical decode steps. Off reverts
     * to uncached step-at-a-time execution (the equivalence oracle
     * and the bench_simspeed `--ref` baseline).
     */
    bool fastSim = true;
    bool verbose = false;
    /**
     * Wall-clock phase profiling (obs::PhaseProfiler): the engine adds
     * its inline fast-forward stretches. Null (the default) skips even
     * the clock reads; sim outputs are identical either way.
     */
    obs::PhaseProfiler *profiler = nullptr;
};

class DeviceEngine
{
  public:
    /** Owner callbacks wired by the cluster (optional). */
    struct Hooks
    {
        /** Re-dispatch a preempted victim; local requeue when null. */
        std::function<void(std::size_t idx)> requeue;
        /**
         * Timestamp of the earliest pending event that could *affect
         * this engine* (+inf when none remains) — in practice the
         * next trace arrival. When set, the decode fast-forward
         * window is bounded by this instead of by the global event
         * queue, letting a device replay straight through other
         * devices' step completions: with preemption off those touch
         * only their own device, so they commute with this engine's
         * boundaries. Owners must NOT install it when a pending event
         * can enqueue into this engine asynchronously (preemption
         * requeues); leaving it unset falls back to the conservative
         * global bound.
         */
        std::function<Time()> nextExternalEvent;
    };

    /**
     * Bind the engine to the owner's event queue and request table.
     * Both must outlive the engine; `requests` may grow only before
     * the first `enqueue`.
     */
    DeviceEngine(const DeviceConfig &cfg, sim::EventQueue &queue,
                 std::vector<Request> &requests);

    void setHooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /**
     * Attach this device's trace track (see obs/trace.hpp). Null (the
     * default) disables tracing at the cost of one pointer test per
     * hook — no allocation, no output perturbation. Set before the
     * first `enqueue`; the track must outlive the engine.
     */
    void setTrace(obs::TraceTrack *track) { trace_ = track; }

    /**
     * Attach the run's latency waterfall (obs/attribution.hpp) and
     * this device's index in it. Null (the default) disables
     * attribution at the cost of one pointer test per hook — no
     * allocation, no output perturbation. Set before the first
     * `enqueue`; the waterfall must outlive the engine.
     */
    void
    setWaterfall(obs::LatencyWaterfall *wf, std::uint32_t device)
    {
        wf_ = wf;
        wfDevice_ = device;
    }

    /** Hand an arrived (or requeued) request to this device. */
    void enqueue(std::size_t idx);

    /** @name Status for dispatch policies and roll-ups. @{ */
    const DeviceConfig &config() const { return cfg_; }
    const KvBudgetAllocator &allocator() const { return allocator_; }
    double freeKvBytes() const
    {
        return allocator_.capacityBytes() - allocator_.inUseBytes();
    }
    std::size_t waitingCount() const { return waiting_.size(); }
    /** Admitted + running requests resident on the device. */
    std::size_t activeCount() const
    {
        return admitted_.size() + running_.size();
    }
    /**
     * Whether this device's whole KV pool can ever hold the request's
     * protected budget floor. False means enqueueing here guarantees
     * rejection, however empty the pool — the dispatcher uses this to
     * avoid turning a serveable request into a permanent reject.
     */
    bool
    canEverAdmit(const Request &r) const
    {
        return minBudget(r.task) <= allocator_.capacityTokens();
    }
    std::size_t dispatched() const { return dispatched_; }
    /**
     * Conservative lower bound on when this device could next hand a
     * preemption victim back through `Hooks::requeue`, +inf when it
     * provably cannot before new work reaches it (preemption off, or
     * no waiting demand — the waiting queue only shrinks until the
     * owner enqueues again). The parallel coordinator bounds other
     * devices' lookahead windows with this: a decode that is running
     * now is not doomed before `firstToken + doomFactor x tpotTarget
     * x decLen`, and one that starts decoding later starts its doom
     * clock no earlier than `now`. Each term is shaved one ulp so the
     * bound stays below the preemption scan's own rounding. The bound
     * may lie in the past (a survivor already past its doom time is
     * preemptable at its very next boundary); callers must fall back
     * to serial stepping for that round.
     */
    Time nextPossibleRequeueTime(Time now) const;
    /** @} */

    /**
     * @name Fault surface (src/faults), driven by the cluster engine.
     * Every method takes the fault instant `t` and requires the bound
     * event queue to have been advanced to `t` (`queue_.now() == t`),
     * so any admission or trace activity it triggers stamps the fault
     * time. All device-track trace writes stay on this engine — the
     * single-writer contract the parallel coordinator relies on (it
     * calls these only with the worker pool joined).
     * @{
     */
    /**
     * Device crash: every resident request (running, admitted,
     * waiting — in that drain order) loses its KV and its progress
     * and is appended to `victims` for the owner to re-dispatch;
     * `lost_tokens` accumulates the prefill+decode tokens discarded
     * (the regeneration cost). The engine empties completely — the
     * allocator ends at zero in-use — and refuses new work until
     * `recoverAt`. The pending step-completion event is orphaned by
     * an epoch bump and pops as a no-op.
     */
    void crashAt(Time t, std::vector<std::size_t> *victims,
                 std::uint64_t *lost_tokens);
    /** Crash repair done: accept dispatches again. */
    void recoverAt(Time t);
    /** Transient compute degradation: scale step latencies. */
    void slowdownAt(Time t, double factor);
    /** eDRAM degrade: scale the KV capacity admission sees. */
    void shrinkPoolAt(Time t, double factor);
    /** Recovery of a non-crash disruption; `kind_code` mirrors the
     *  faults::FaultKind value (1 slowdown, 2 pool shrink). */
    void restoreAt(Time t, int kind_code);
    /**
     * Graceful-degradation ladder, rung 1-2: drop cached shared-
     * prefix pages, then reclaim idle tail pages from running grants
     * (paged mode; contiguous pools have nothing reclaimable).
     * Returns pages freed. Re-runs dispatch so freed pages can admit
     * blocked waiters immediately.
     */
    std::size_t pressureReclaimAt(Time t);
    /**
     * Ladder rung 3: shed waiting requests whose TTFT deadline has
     * already expired, appending them to `shed` for the owner to
     * re-dispatch through the retry path.
     */
    void shedStaleWaitingAt(Time t, std::vector<std::size_t> *shed);
    /**
     * Terminal fault failure: the owner's retry budget for `idx` ran
     * out. Counts as a rejection in the SLO metrics, lands in the
     * waterfall with the fault flag, and closes the request's trace
     * span with outcome "failed".
     */
    void failRequestAt(Time t, std::size_t idx);
    bool crashed() const { return crashed_; }
    double latencyScale() const { return latencyScale_; }
    /** @} */

    /** @name Run outcome, read by the owner after the queue drains. @{ */
    const ServingMetrics &metrics() const { return metrics_; }
    std::uint64_t engineSteps() const { return engineSteps_; }
    std::uint64_t decodeSteps() const { return decodeSteps_; }
    std::uint64_t prefillChunks() const { return prefillChunks_; }
    std::uint64_t prefills() const { return prefills_; }
    Time lastCompletion() const { return lastCompletion_; }
    /** Wall-clock the accelerator spent executing engine steps. */
    Time busyTime() const { return busy_; }
    /** Step-cost memoization accounting (zero when fastSim is off). */
    const accel::StepCostCache::Stats &
    costCacheStats() const
    {
        return costCache_.stats();
    }
    /** Decode boundaries replayed without re-entering the event
     *  queue; a subset of decodeSteps(). */
    std::uint64_t fastForwardedSteps() const { return fastForwarded_; }
    bool truncated() const { return truncated_; }
    /** Trace fully served: not truncated and all queues empty. */
    bool drained() const
    {
        return !truncated_ && waiting_.empty() && admitted_.empty() &&
               running_.empty();
    }
    /** @} */

  private:
    void dispatch();
    void preemptDoomed();
    void admitWaiting();
    /** `pos` sentinel: look the entry up only if it must be erased. */
    static constexpr std::size_t kFindPos =
        static_cast<std::size_t>(-1);
    bool tryAdmitAt(std::size_t pos, std::size_t idx);
    void runPrefillChunk(const EngineStepPlan &plan);
    void runDecodeStep(const EngineStepPlan &plan);
    void onPrefillDone();
    void onDecodeDone();
    /** Upper bound on decode boundaries that may be replayed inline
     *  after the in-flight step (0 = fast-forward ineligible). Sets
     *  `*replay_deferrals` when each replayed boundary must re-attempt
     *  (and re-defer) the admission round recorded in `deferScratch_`
     *  to keep the allocator's deferral accounting identical. */
    std::size_t silentStepBudget(bool *replay_deferrals) const;
    /** Step costs through the cache when fastSim is on. */
    const accel::StepReport &
    decodeStepCost(const std::vector<std::size_t> &resident);
    const accel::StepReport &prefillChunkCost(std::size_t kv_offset,
                                              std::size_t chunk_len);
    void finishRequest(std::size_t idx);
    void rejectRequest(std::size_t idx, std::size_t floor_tokens);
    /** A request re-entering the queue after a first life (preempt,
     *  fault eviction, or client retry): enqueue logs a requeue, not
     *  an arrival, and the bypass accounting treats it as an old id
     *  arriving late. */
    static bool
    secondLife(const Request &r)
    {
        return r.preemptions > 0 || r.faultRetries > 0 ||
               r.clientRetries > 0;
    }
    /** Step latency under a slowdown fault (identity at scale 1.0,
     *  so the healthy path is bit-exact). */
    Time
    scaled(Time lat) const
    {
        return latencyScale_ == 1.0
                   ? lat
                   : Time::seconds(lat.sec() * latencyScale_);
    }
    /** Earliest pending client re-arrival (+inf when none): the
     *  decode fast-forward window must stop before it even when the
     *  owner's nextExternalEvent hook vouches for a later horizon —
     *  the re-arrival enqueues into *this* engine. */
    Time minClientRetryAt() const;
    /** Pop the earliest pending client re-arrival (ties: earliest
     *  scheduled, matching the event queue's seq order) and re-enqueue
     *  it — or re-enter the reject path if the device crashed while
     *  the client was backing off. */
    void fireClientRetry();
    /** Paged mode: ensure `idx`'s chain holds `tokens`, clamping the
     *  budget to the chain's capacity when the pool is exhausted
     *  (never below the floor acquired at admission). */
    void pagedEnsure(std::size_t idx, std::size_t tokens);
    /** Paged admission pressure: reclaim whole idle tail pages from
     *  running grants (youngest first); returns pages freed. */
    std::size_t reclaimRunningTails();
    /** Paged-pool counter samples next to each kvInUse emission. */
    void tracePagedCounters(Time t);
    EngineView view() const;
    std::size_t requestedBudget(const sim::Task &task) const;
    std::size_t minBudget(const sim::Task &task) const;

    DeviceConfig cfg_;
    std::string label_; ///< " [name]" verbose-log infix, "" if unnamed
    sim::EventQueue &queue_;
    std::vector<Request> &requests_;
    KvBudgetAllocator allocator_;
    ServingMetrics metrics_;
    std::unique_ptr<Policy> policy_;
    /** Bound to cfg_.system/cfg_.model (declared above it). */
    accel::StepCostCache costCache_;
    Hooks hooks_;
    obs::TraceTrack *trace_ = nullptr; ///< null = tracing off
    obs::LatencyWaterfall *wf_ = nullptr; ///< null = attribution off
    std::uint32_t wfDevice_ = 0; ///< this device's waterfall index
    obs::PhaseProfiler *profiler_ = nullptr;

    std::vector<KvBudgetAllocator::Grant> grants_;
    std::deque<std::size_t> waiting_;  ///< arrived, not admitted
    std::deque<std::size_t> admitted_; ///< granted, prompt unfinished
    std::vector<std::size_t> running_; ///< decode-batch members
    /** Requeued preemption victims currently in waiting_ (the only
     *  way an arrival-order admission can overtake a smaller id). */
    std::size_t waitingPreempted_ = 0;

    /**
     * @name Per-step scratch and in-flight state
     * Reused across step boundaries so steady-state stepping allocates
     * nothing (asserted by the AllocationFree test). The in-flight
     * members describe the step whose completion event is pending;
     * they are stable while `engineBusy_` because dispatch() is the
     * only writer and it early-outs on a busy engine.
     * @{
     */
    EngineStepPlan planScratch_;
    std::vector<std::size_t> orderScratch_;
    std::vector<std::size_t> admittedNowScratch_;
    std::vector<std::size_t> victimScratch_;
    std::vector<std::size_t> residentScratch_;
    std::vector<std::size_t> inFlightBatch_; ///< decode members
    /** Cost of the decode step whose completion event is pending —
     *  onDecodeDone charges each member's waterfall share from it. */
    Time inFlightStepLatency_;
    std::size_t inFlightPrefillIdx_ = 0;
    std::size_t inFlightPrefillTokens_ = 0;
    accel::StepReport stepScratch_; ///< fastSim-off cost slot
    /** One blocked admission attempt of the last round (tryAdmitAt);
     *  the request id rides along so a fast-forward replay emits the
     *  same defer trace events as the event-driven round. */
    struct DeferredAdmit
    {
        std::size_t requested;
        std::size_t floor;
        std::uint64_t req;
    };
    /** The last admission round's blocked attempts, appended by
     *  tryAdmitAt; the decode fast-forward replays them per boundary
     *  when the round was pure deferrals. */
    std::vector<DeferredAdmit> deferScratch_;
    /** (firstToken, doom delta) per preemption-eligible batch member;
     *  the fast-forward stops before any boundary where the event
     *  path's preemption scan would fire. */
    std::vector<std::pair<Time, double>> doomScratch_;
    /** @} */

    /** Last admitWaiting round attempted >= 1 candidate and every
     *  attempt was an allocator deferral (none admitted or rejected):
     *  the round is bit-exactly replayable from frozen state. */
    bool lastRoundAllDeferred_ = false;

    bool engineBusy_ = false;
    bool truncated_ = false;
    /** @name Fault state (src/faults; inert without an injector). @{ */
    /** Down after crashAt until recoverAt: dispatch and enqueue are
     *  refused (the cluster blacklists the device; client retries
     *  re-enter the reject path). */
    bool crashed_ = false;
    /** Slowdown-fault step-latency multiplier (1.0 = healthy). */
    double latencyScale_ = 1.0;
    /** Bumped by crashAt: completion callbacks capture the epoch at
     *  schedule time and no-op when it no longer matches, orphaning
     *  the in-flight step of a crashed device. */
    std::uint32_t runEpoch_ = 0;
    /** Pending client re-arrivals (instant, request idx), unordered;
     *  linear scans — retries are rare. */
    std::vector<std::pair<Time, std::size_t>> clientRetryAt_;
    /** @} */
    EngineStepKind lastStep_ = EngineStepKind::Idle;
    std::size_t dispatched_ = 0;
    std::uint64_t engineSteps_ = 0;
    std::uint64_t decodeSteps_ = 0;
    std::uint64_t prefillChunks_ = 0;
    std::uint64_t prefills_ = 0;
    std::uint64_t fastForwarded_ = 0;
    Time lastCompletion_;
    Time busy_;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_DEVICE_ENGINE_HPP
