#include "serving/serving_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace serving {

void
ServingMetrics::onCompleted(const Request &r)
{
    KELLE_ASSERT(r.state == RequestState::Completed,
                 "recording an unfinished request");
    completed_.push_back(r);
}

void
ServingMetrics::onRejected(const Request &r)
{
    KELLE_ASSERT(r.state == RequestState::Rejected, "state mismatch");
    ++rejected_;
}

void
ServingMetrics::sampleQueueDepth(std::size_t depth)
{
    queueDepthSum_ += static_cast<double>(depth);
    ++queueDepthSamples_;
    maxQueueDepth_ = std::max(maxQueueDepth_, depth);
}

void
ServingMetrics::addEnergy(const accel::EnergyBreakdown &e)
{
    energy_ += e;
}

void
ServingMetrics::onBypass(std::size_t overtaken)
{
    bypasses_ += overtaken;
}

void
ServingMetrics::onPreempted()
{
    ++preemptions_;
}

void
ServingMetrics::merge(const ServingMetrics &other)
{
    completed_.insert(completed_.end(), other.completed_.begin(),
                      other.completed_.end());
    rejected_ += other.rejected_;
    bypasses_ += other.bypasses_;
    preemptions_ += other.preemptions_;
    energy_ += other.energy_;
    queueDepthSum_ += other.queueDepthSum_;
    queueDepthSamples_ += other.queueDepthSamples_;
    maxQueueDepth_ = std::max(maxQueueDepth_, other.maxQueueDepth_);
}

bool
ServingMetrics::metTtft(const Request &r)
{
    if (r.ttftDeadlineSec <= 0.0)
        return true;
    return (r.firstToken - r.arrival).sec() <= r.ttftDeadlineSec;
}

bool
ServingMetrics::metTpot(const Request &r)
{
    if (r.tpotTargetSec <= 0.0 || r.task.decLen == 0)
        return true;
    const double per_tok = (r.completed - r.firstToken).sec() /
                           static_cast<double>(r.task.decLen);
    return per_tok <= r.tpotTargetSec;
}

double
ServingMetrics::percentile(std::vector<double> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    return percentileSorted(samples, p);
}

double
ServingMetrics::percentileSorted(const std::vector<double> &sorted,
                                 double p)
{
    if (sorted.empty())
        return 0.0;
    const double n = static_cast<double>(sorted.size());
    const double rank = std::ceil(std::clamp(p, 0.0, 100.0) / 100.0 * n);
    const std::size_t idx = rank < 1.0
                                ? 0
                                : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

ServingSummary
ServingMetrics::summarize(Time makespan) const
{
    ServingSummary s;
    s.completed = completed_.size();
    s.rejected = rejected_;
    s.makespan = makespan;
    s.energy = energy_;
    s.admissionBypasses = bypasses_;
    s.preemptions = preemptions_;
    if (queueDepthSamples_ > 0) {
        s.meanQueueDepth =
            queueDepthSum_ / static_cast<double>(queueDepthSamples_);
        s.maxQueueDepth = maxQueueDepth_;
    }

    // SLO attainment over terminal requests; a rejected request never
    // produced a token, so it misses both deadlines. A run that
    // served nobody attains nothing.
    const std::size_t terminal = completed_.size() + rejected_;
    if (terminal == 0) {
        s.sloTtftAttainment = 0.0;
        s.sloTpotAttainment = 0.0;
        s.sloAttainment = 0.0;
    } else {
        std::size_t met_ttft = 0;
        std::size_t met_tpot = 0;
        std::size_t met_both = 0;
        for (const auto &r : completed_) {
            const bool ttft_ok = metTtft(r);
            const bool tpot_ok = metTpot(r);
            met_ttft += ttft_ok ? 1 : 0;
            met_tpot += tpot_ok ? 1 : 0;
            met_both += (ttft_ok && tpot_ok) ? 1 : 0;
        }
        const double n_term = static_cast<double>(terminal);
        s.sloTtftAttainment = static_cast<double>(met_ttft) / n_term;
        s.sloTpotAttainment = static_cast<double>(met_tpot) / n_term;
        s.sloAttainment = static_cast<double>(met_both) / n_term;
    }
    if (completed_.empty())
        return s;

    for (const auto &r : completed_) {
        s.maxQueueWaitSec = std::max(s.maxQueueWaitSec,
                                     (r.admitted - r.arrival).sec());
    }

    std::vector<double> ttft;
    std::vector<double> e2e;
    std::vector<double> tpot;
    std::vector<double> gap;
    double ttft_sum = 0.0;
    double tpot_sum = 0.0;
    double tokens = 0.0;
    double budget_frac_sum = 0.0;
    for (const auto &r : completed_) {
        const double t = (r.firstToken - r.arrival).sec();
        ttft.push_back(t);
        ttft_sum += t;
        e2e.push_back((r.completed - r.arrival).sec());
        if (r.task.decLen > 0) {
            const double per_tok =
                (r.completed - r.firstToken).sec() /
                static_cast<double>(r.task.decLen);
            tpot.push_back(per_tok);
            tpot_sum += per_tok;
        }
        gap.push_back(r.maxTokenGapSec);
        tokens += static_cast<double>(r.generated);
        budget_frac_sum +=
            r.budgetRequested > 0
                ? static_cast<double>(r.budgetGranted) /
                      static_cast<double>(r.budgetRequested)
                : 1.0;
    }
    // One sort per sample vector; every rank indexes the sorted copy.
    std::sort(ttft.begin(), ttft.end());
    std::sort(e2e.begin(), e2e.end());
    std::sort(tpot.begin(), tpot.end());
    std::sort(gap.begin(), gap.end());
    const double n = static_cast<double>(completed_.size());
    s.ttftMean = ttft_sum / n;
    s.ttftP50 = percentileSorted(ttft, 50.0);
    s.ttftP95 = percentileSorted(ttft, 95.0);
    s.ttftP99 = percentileSorted(ttft, 99.0);
    s.e2eP50 = percentileSorted(e2e, 50.0);
    s.e2eP95 = percentileSorted(e2e, 95.0);
    s.e2eP99 = percentileSorted(e2e, 99.0);
    s.tpotMean = tpot.empty()
                     ? 0.0
                     : tpot_sum / static_cast<double>(tpot.size());
    s.tpotP50 = percentileSorted(tpot, 50.0);
    s.tpotP95 = percentileSorted(tpot, 95.0);
    s.tokenGapP95 = percentileSorted(gap, 95.0);
    s.meanBudgetFraction = budget_frac_sum / n;
    if (makespan.sec() > 0.0)
        s.goodputTokensPerSec = tokens / makespan.sec();
    if (tokens > 0.0)
        s.energyPerToken = energy_.total().j() / tokens;
    return s;
}

} // namespace serving
} // namespace kelle
