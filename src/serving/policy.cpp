#include "serving/policy.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"

namespace kelle {
namespace serving {

namespace {

/**
 * SjfWithinDeadline promotes a request out of the SJF order once its
 * remaining TTFT slack falls below this fraction of its whole SLO
 * budget; promoted requests are served earliest-deadline-first.
 */
constexpr double kUrgentSlackFraction = 0.5;

/** Absolute TTFT deadline in seconds; +inf when the request has none
 *  (sorts after every dead-lined request). */
double
deadlineSec(const Request &r)
{
    if (r.ttftDeadlineSec <= 0.0)
        return std::numeric_limits<double>::infinity();
    return r.ttftDeadline().sec();
}

/** Prefill-priority step: the given admitted request's next chunk if
 *  any, else one decode iteration over the whole batch. */
void
prefillPriorityStep(const EngineView &v, std::size_t admitted_pick,
                    EngineStepPlan &plan)
{
    if (!v.admitted.empty()) {
        const Request &r = v.requests[admitted_pick];
        plan.kind = EngineStepKind::PrefillChunk;
        plan.requestIdx = admitted_pick;
        plan.chunkTokens = Policy::nextChunkLen(v, r);
        return;
    }
    if (!v.running.empty()) {
        plan.kind = EngineStepKind::DecodeStep;
        plan.decodeBatch.assign(v.running.begin(), v.running.end());
    }
}

class FcfsPolicy final : public Policy
{
  public:
    SchedulePolicy kind() const override { return SchedulePolicy::Fcfs; }
    std::size_t
    admissionCap(std::size_t) const override
    {
        return 1; // run-to-completion: one request owns the machine
    }
    void
    nextStep(const EngineView &v, EngineStepPlan &plan) const override
    {
        prefillPriorityStep(
            v, v.admitted.empty() ? 0 : v.admitted.front(), plan);
    }
};

class ContinuousBatchingPolicy final : public Policy
{
  public:
    SchedulePolicy
    kind() const override
    {
        return SchedulePolicy::ContinuousBatching;
    }
    void
    nextStep(const EngineView &v, EngineStepPlan &plan) const override
    {
        prefillPriorityStep(
            v, v.admitted.empty() ? 0 : v.admitted.front(), plan);
    }
};

class SjfWithinDeadlinePolicy final : public Policy
{
  public:
    SchedulePolicy
    kind() const override
    {
        return SchedulePolicy::SjfWithinDeadline;
    }
    bool skipBlocked() const override { return true; }
    bool fifoAdmission() const override { return false; }

    void
    admissionOrder(const EngineView &v,
                   std::vector<std::size_t> &order) const override
    {
        order.assign(v.waiting.begin(), v.waiting.end());
        const double now = v.now.sec();
        auto urgent = [&](const Request &r) {
            if (r.ttftDeadlineSec <= 0.0)
                return false;
            const double slack = deadlineSec(r) - now;
            return slack < kUrgentSlackFraction * r.ttftDeadlineSec;
        };
        auto jobSize = [](const Request &r) {
            return r.task.ctxLen + r.task.decLen;
        };
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      const Request &ra = v.requests[a];
                      const Request &rb = v.requests[b];
                      const bool ua = urgent(ra);
                      const bool ub = urgent(rb);
                      if (ua != ub)
                          return ua; // deadline-pressed first
                      if (ua) {      // both urgent: EDF
                          if (deadlineSec(ra) != deadlineSec(rb))
                              return deadlineSec(ra) < deadlineSec(rb);
                          return ra.id < rb.id;
                      }
                      if (jobSize(ra) != jobSize(rb)) // both calm: SJF
                          return jobSize(ra) < jobSize(rb);
                      return ra.id < rb.id;
                  });
    }

    void
    nextStep(const EngineView &v, EngineStepPlan &plan) const override
    {
        // Admission order already encodes the priority; steps stay
        // prefill-priority FIFO over the admitted set.
        prefillPriorityStep(
            v, v.admitted.empty() ? 0 : v.admitted.front(), plan);
    }
};

class EdfChunkedPolicy final : public Policy
{
  public:
    SchedulePolicy
    kind() const override
    {
        return SchedulePolicy::EdfChunked;
    }
    bool skipBlocked() const override { return true; }
    bool fifoAdmission() const override { return false; }

    void
    admissionOrder(const EngineView &v,
                   std::vector<std::size_t> &order) const override
    {
        order.assign(v.waiting.begin(), v.waiting.end());
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double da = deadlineSec(v.requests[a]);
                      const double db = deadlineSec(v.requests[b]);
                      if (da != db)
                          return da < db;
                      return v.requests[a].id < v.requests[b].id;
                  });
    }

    void
    nextStep(const EngineView &v, EngineStepPlan &plan) const override
    {
        // Sarathi-style alternation: after a prefill chunk, give the
        // decode batch one iteration before the next chunk, so chunked
        // long prompts neither stall decode nor get starved by it.
        // Chunk the admitted request with the earliest deadline:
        // chunk-level preemption of long prefills by urgent work.
        std::size_t pick = 0;
        if (!v.admitted.empty()) {
            pick = v.admitted.front();
            for (std::size_t idx : v.admitted) {
                const double d = deadlineSec(v.requests[idx]);
                const double best = deadlineSec(v.requests[pick]);
                if (d < best ||
                    (d == best &&
                     v.requests[idx].id < v.requests[pick].id))
                    pick = idx;
            }
        }
        // Slack-aware alternation: a prefill whose TTFT slack has run
        // short keeps the machine for consecutive chunks instead of
        // yielding to decode, trading a bounded decode stall for the
        // knee-regime TTFT tax. Off (and bit-exact) at frac 0.
        bool pressed = false;
        if (v.chunkSlackFrac > 0.0 && !v.admitted.empty()) {
            const Request &r = v.requests[pick];
            if (r.ttftDeadlineSec > 0.0) {
                const double slack = deadlineSec(r) - v.now.sec();
                pressed = slack <
                          v.chunkSlackFrac * r.ttftDeadlineSec;
            }
        }
        if (!v.running.empty() && !v.admitted.empty() &&
            v.lastStep == EngineStepKind::PrefillChunk && !pressed) {
            plan.kind = EngineStepKind::DecodeStep;
            plan.decodeBatch.assign(v.running.begin(), v.running.end());
            return;
        }
        if (!v.admitted.empty()) {
            prefillPriorityStep(v, pick, plan);
            return;
        }
        if (!v.running.empty()) {
            plan.kind = EngineStepKind::DecodeStep;
            plan.decodeBatch.assign(v.running.begin(), v.running.end());
        }
    }
};

} // namespace

std::string
toString(EngineStepKind k)
{
    switch (k) {
      case EngineStepKind::Idle:
        return "idle";
      case EngineStepKind::PrefillChunk:
        return "prefill-chunk";
      case EngineStepKind::DecodeStep:
        return "decode-step";
    }
    return "?";
}

std::string
toString(SchedulePolicy p)
{
    switch (p) {
      case SchedulePolicy::Fcfs:
        return "fcfs";
      case SchedulePolicy::ContinuousBatching:
        return "contbatch";
      case SchedulePolicy::SjfWithinDeadline:
        return "sjf-deadline";
      case SchedulePolicy::EdfChunked:
        return "edf-chunked";
    }
    return "?";
}

bool
parseSchedulePolicy(const std::string &text, SchedulePolicy *out)
{
    if (text == "fcfs") {
        *out = SchedulePolicy::Fcfs;
        return true;
    }
    if (text == "contbatch" || text == "continuous" ||
        text == "continuous-batching") {
        *out = SchedulePolicy::ContinuousBatching;
        return true;
    }
    if (text == "sjf-deadline" || text == "sjf") {
        *out = SchedulePolicy::SjfWithinDeadline;
        return true;
    }
    if (text == "edf-chunked" || text == "edf") {
        *out = SchedulePolicy::EdfChunked;
        return true;
    }
    return false;
}

std::string
schedulePolicyNames()
{
    std::string names;
    for (SchedulePolicy p : allSchedulePolicies()) {
        if (!names.empty())
            names += "|";
        names += toString(p);
    }
    return names;
}

std::vector<SchedulePolicy>
allSchedulePolicies()
{
    return {SchedulePolicy::Fcfs, SchedulePolicy::ContinuousBatching,
            SchedulePolicy::SjfWithinDeadline,
            SchedulePolicy::EdfChunked};
}

void
Policy::admissionOrder(const EngineView &v,
                       std::vector<std::size_t> &order) const
{
    order.assign(v.waiting.begin(), v.waiting.end());
}

std::size_t
Policy::nextChunkLen(const EngineView &v, const Request &r)
{
    const std::size_t remaining = r.remainingPrompt();
    KELLE_ASSERT(remaining > 0, "prefill already complete");
    return v.chunkTokens ? std::min(v.chunkTokens, remaining)
                         : remaining;
}

std::unique_ptr<Policy>
makePolicy(SchedulePolicy kind)
{
    switch (kind) {
      case SchedulePolicy::Fcfs:
        return std::make_unique<FcfsPolicy>();
      case SchedulePolicy::ContinuousBatching:
        return std::make_unique<ContinuousBatchingPolicy>();
      case SchedulePolicy::SjfWithinDeadline:
        return std::make_unique<SjfWithinDeadlinePolicy>();
      case SchedulePolicy::EdfChunked:
        return std::make_unique<EdfChunkedPolicy>();
    }
    KELLE_ASSERT(false, "unknown SchedulePolicy");
    return nullptr;
}

} // namespace serving
} // namespace kelle
