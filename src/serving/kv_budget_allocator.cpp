#include "serving/kv_budget_allocator.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace serving {

KvBudgetAllocator::KvBudgetAllocator(const AllocatorConfig &cfg)
    : capacityBytes_(cfg.capacityBytes),
      bytesPerToken_(cfg.bytesPerToken),
      highWatermark_(cfg.highWatermark)
{
    KELLE_ASSERT(capacityBytes_ > 0.0, "empty KV pool");
    KELLE_ASSERT(bytesPerToken_ > 0.0, "degenerate KV token size");
    KELLE_ASSERT(highWatermark_ > 0.0 && highWatermark_ <= 1.0,
                 "watermark outside (0, 1]");
    if (cfg.pagedTotalPages > 0) {
        kv::KvPagePoolConfig pc;
        pc.totalPages = cfg.pagedTotalPages;
        pc.blockTokens = cfg.pagedBlockTokens;
        pc.bytesPerPage = cfg.pagedBytesPerPage > 0.0
                              ? cfg.pagedBytesPerPage
                              : static_cast<double>(
                                    cfg.pagedBlockTokens) *
                                    bytesPerToken_;
        pc.sharePrefixes = cfg.pagedSharePrefixes;
        pool_ = std::make_unique<kv::KvPagePool>(pc);
        capacityBytes_ = static_cast<double>(pc.totalPages) *
                         pc.bytesPerPage;
    }
}

KvBudgetAllocator::Grant
KvBudgetAllocator::tryAdmit(std::size_t requested_tokens,
                            std::size_t min_tokens,
                            std::uint64_t prefix_key,
                            std::size_t prefix_tokens)
{
    KELLE_ASSERT(min_tokens > 0 && requested_tokens >= min_tokens,
                 "floor must be positive and <= requested budget");

    if (pool_ != nullptr) {
        // Degraded eDRAM (pool-shrink fault): admission only sees the
        // scaled page budget. Conservative on prefix hits — a covered
        // floor may still be deferred — but deterministic, and never
        // touches the healthy (scale == 1.0) path.
        if (capacityScale_ < 1.0) {
            const std::size_t floor_pages =
                (min_tokens + pool_->blockTokens() - 1) /
                pool_->blockTokens();
            const double cap_pages =
                capacityScale_ *
                static_cast<double>(pool_->totalPages());
            if (static_cast<double>(pool_->usedPages() +
                                    floor_pages) > cap_pages) {
                ++deferrals_;
                return Grant{};
            }
        }
        // Page-granular admission: reserve only the protected floor
        // now (attaching shared prefix pages copy-free); the rest of
        // the budget materializes lazily through growChain.
        const auto res =
            pool_->acquire(min_tokens, prefix_key, prefix_tokens);
        if (!res.ok) {
            ++deferrals_;
            return Grant{};
        }
        std::size_t tokens = requested_tokens;
        if (requested_tokens > res.capacityTokens) {
            // Eviction-pressure feedback, the byte formula mapped to
            // pages: beyond the capacity already reserved, promise
            // only what keeps the pool below the watermark.
            const double mark_pages =
                highWatermark_ * capacityScale_ *
                    static_cast<double>(pool_->totalPages()) -
                static_cast<double>(pool_->usedPages());
            const std::size_t below_mark =
                mark_pages > 0.0
                    ? static_cast<std::size_t>(mark_pages) *
                          pool_->blockTokens()
                    : 0;
            tokens = std::clamp(res.capacityTokens + below_mark,
                                min_tokens, requested_tokens);
        }
        if (tokens < requested_tokens)
            ++shrunkGrants_;
        logicalTokens_ += tokens;
        peakLogicalTokens_ =
            std::max(peakLogicalTokens_, logicalTokens_);
        Grant g;
        g.admitted = true;
        g.budgetTokens = tokens;
        g.chainId = res.chainId;
        g.prefixHitTokens = res.prefixHitTokens;
        g.chainCapacityTokens = res.capacityTokens;
        return g;
    }

    // Pool-shrink faults scale the capacity admission sees; the
    // multiply by 1.0 on the healthy path is bit-exact.
    const double cap_bytes = capacityScale_ * capacityBytes_;
    const double free_bytes = cap_bytes - inUseBytes_;
    const double full_bytes =
        static_cast<double>(requested_tokens) * bytesPerToken_;

    std::size_t tokens = requested_tokens;
    if (full_bytes > free_bytes ||
        (inUseBytes_ + full_bytes) / cap_bytes > highWatermark_) {
        // Eviction-pressure feedback: grant the largest budget that
        // stays below the watermark, never below the protected floor.
        const double below_mark =
            std::max(0.0, highWatermark_ * cap_bytes - inUseBytes_);
        tokens = static_cast<std::size_t>(below_mark / bytesPerToken_);
        tokens = std::clamp(tokens, min_tokens, requested_tokens);
    }

    const double bytes = static_cast<double>(tokens) * bytesPerToken_;
    if (bytes > free_bytes) {
        ++deferrals_;
        return Grant{};
    }

    inUseBytes_ += bytes;
    peakInUseBytes_ = std::max(peakInUseBytes_, inUseBytes_);
    KELLE_ASSERT(inUseBytes_ <= capacityBytes_ + 1e-6,
                 "KV pool oversubscribed");
    if (tokens < requested_tokens)
        ++shrunkGrants_;
    logicalTokens_ += tokens;
    peakLogicalTokens_ = std::max(peakLogicalTokens_, logicalTokens_);

    Grant g;
    g.admitted = true;
    g.budgetTokens = tokens;
    g.bytes = bytes;
    return g;
}

void
KvBudgetAllocator::release(Grant &grant)
{
    KELLE_ASSERT(grant.admitted, "releasing an empty grant");
    KELLE_ASSERT(logicalTokens_ >= grant.budgetTokens,
                 "releasing more logical tokens than are granted");
    logicalTokens_ -= grant.budgetTokens;
    if (pool_ != nullptr) {
        KELLE_ASSERT(grant.chainId != kNoChain,
                     "paged grant lost its chain");
        pool_->release(grant.chainId);
        grant = Grant{};
        return;
    }
    KELLE_ASSERT(grant.bytes <= inUseBytes_ + 1e-6,
                 "releasing more than is reserved");
    inUseBytes_ = std::max(0.0, inUseBytes_ - grant.bytes);
    grant = Grant{};
}

bool
KvBudgetAllocator::growChain(Grant &grant, std::size_t tokens)
{
    KELLE_ASSERT(pool_ != nullptr && grant.admitted,
                 "growing a non-paged or empty grant");
    if (tokens <= grant.chainCapacityTokens)
        return true;
    const bool ok = pool_->grow(grant.chainId, tokens);
    grant.chainCapacityTokens = pool_->capacityTokens(grant.chainId);
    return ok;
}

void
KvBudgetAllocator::shrinkBudget(Grant &grant, std::size_t tokens)
{
    KELLE_ASSERT(grant.admitted && tokens <= grant.budgetTokens,
                 "budget clamp must shrink a live grant");
    logicalTokens_ -= grant.budgetTokens - tokens;
    grant.budgetTokens = tokens;
    ++budgetClips_;
}

std::size_t
KvBudgetAllocator::shrinkChainTo(Grant &grant, std::size_t tokens)
{
    KELLE_ASSERT(pool_ != nullptr && grant.admitted,
                 "shrinking a non-paged or empty grant");
    const std::size_t freed = pool_->shrinkTo(grant.chainId, tokens);
    grant.chainCapacityTokens = pool_->capacityTokens(grant.chainId);
    if (freed > 0) {
        ++tailReclaims_;
        reclaimedPages_ += freed;
    }
    return freed;
}

void
KvBudgetAllocator::publishPrefix(const Grant &grant,
                                 std::uint64_t key,
                                 std::size_t tokens)
{
    KELLE_ASSERT(pool_ != nullptr && grant.admitted,
                 "publishing from a non-paged or empty grant");
    pool_->publishPrefix(grant.chainId, key, tokens);
}

void
KvBudgetAllocator::setCapacityScale(double scale)
{
    KELLE_ASSERT(scale > 0.0 && scale <= 1.0,
                 "capacity scale outside (0, 1]");
    capacityScale_ = scale;
}

std::size_t
KvBudgetAllocator::dropCachedPrefixes()
{
    return pool_ != nullptr ? pool_->dropCachedPrefixes() : 0;
}

std::size_t
KvBudgetAllocator::availableTokens() const
{
    if (pool_ != nullptr)
        return pool_->availablePages() * pool_->blockTokens();
    return static_cast<std::size_t>(
        (capacityBytes_ - inUseBytes_) / bytesPerToken_);
}

double
KvBudgetAllocator::inUseBytes() const
{
    if (pool_ != nullptr)
        return static_cast<double>(pool_->usedPages()) *
               pool_->bytesPerPage();
    return inUseBytes_;
}

double
KvBudgetAllocator::peakInUseBytes() const
{
    if (pool_ != nullptr)
        return static_cast<double>(pool_->peakUsedPages()) *
               pool_->bytesPerPage();
    return peakInUseBytes_;
}

double
KvBudgetAllocator::utilization() const
{
    return inUseBytes() / capacityBytes_;
}

std::size_t
KvBudgetAllocator::capacityTokens() const
{
    if (pool_ != nullptr)
        return pool_->totalPages() * pool_->blockTokens();
    return static_cast<std::size_t>(capacityBytes_ / bytesPerToken_);
}

} // namespace serving
} // namespace kelle
