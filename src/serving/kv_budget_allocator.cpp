#include "serving/kv_budget_allocator.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace serving {

KvBudgetAllocator::KvBudgetAllocator(const AllocatorConfig &cfg)
    : capacityBytes_(cfg.capacityBytes),
      bytesPerToken_(cfg.bytesPerToken),
      highWatermark_(cfg.highWatermark)
{
    KELLE_ASSERT(capacityBytes_ > 0.0, "empty KV pool");
    KELLE_ASSERT(bytesPerToken_ > 0.0, "degenerate KV token size");
    KELLE_ASSERT(highWatermark_ > 0.0 && highWatermark_ <= 1.0,
                 "watermark outside (0, 1]");
}

KvBudgetAllocator::Grant
KvBudgetAllocator::tryAdmit(std::size_t requested_tokens,
                            std::size_t min_tokens)
{
    KELLE_ASSERT(min_tokens > 0 && requested_tokens >= min_tokens,
                 "floor must be positive and <= requested budget");

    const double free_bytes = capacityBytes_ - inUseBytes_;
    const double full_bytes =
        static_cast<double>(requested_tokens) * bytesPerToken_;

    std::size_t tokens = requested_tokens;
    if (full_bytes > free_bytes ||
        (inUseBytes_ + full_bytes) / capacityBytes_ > highWatermark_) {
        // Eviction-pressure feedback: grant the largest budget that
        // stays below the watermark, never below the protected floor.
        const double below_mark =
            std::max(0.0, highWatermark_ * capacityBytes_ - inUseBytes_);
        tokens = static_cast<std::size_t>(below_mark / bytesPerToken_);
        tokens = std::clamp(tokens, min_tokens, requested_tokens);
    }

    const double bytes = static_cast<double>(tokens) * bytesPerToken_;
    if (bytes > free_bytes) {
        ++deferrals_;
        return Grant{};
    }

    inUseBytes_ += bytes;
    peakInUseBytes_ = std::max(peakInUseBytes_, inUseBytes_);
    KELLE_ASSERT(inUseBytes_ <= capacityBytes_ + 1e-6,
                 "KV pool oversubscribed");
    if (tokens < requested_tokens)
        ++shrunkGrants_;

    Grant g;
    g.admitted = true;
    g.budgetTokens = tokens;
    g.bytes = bytes;
    return g;
}

void
KvBudgetAllocator::release(Grant &grant)
{
    KELLE_ASSERT(grant.admitted, "releasing an empty grant");
    KELLE_ASSERT(grant.bytes <= inUseBytes_ + 1e-6,
                 "releasing more than is reserved");
    inUseBytes_ = std::max(0.0, inUseBytes_ - grant.bytes);
    grant = Grant{};
}

double
KvBudgetAllocator::utilization() const
{
    return inUseBytes_ / capacityBytes_;
}

std::size_t
KvBudgetAllocator::capacityTokens() const
{
    return static_cast<std::size_t>(capacityBytes_ / bytesPerToken_);
}

} // namespace serving
} // namespace kelle
