#include "serving/device_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "accel/capacity.hpp"
#include "common/log.hpp"
#include "common/table.hpp"
#include "tensor/quant.hpp"

namespace kelle {
namespace serving {

namespace {

/** Extra slack above the protected regions in the budget floor. */
constexpr std::size_t kFloorSlackTokens = 8;

/** Group size for quantized page storage (KvCacheConfig default). */
constexpr std::size_t kPageQuantGroup = 32;

/**
 * SplitMix64-style hash of (a, b) to a uniform double in [0, 1) —
 * the client-retry backoff jitter. A pure hash instead of a shared
 * RNG stream, so enabling retries cannot perturb any other draw.
 */
double
hashUnit(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/**
 * Page quantization flows through the whole stack by overriding the
 * system's KV precision *before* the allocator and cost cache are
 * built: timing, energy, refresh, and capacity all see the quantized
 * bits through the existing accel model.
 */
DeviceConfig
normalizedConfig(DeviceConfig cfg)
{
    if (cfg.paged.enabled && cfg.paged.quantBits > 0)
        cfg.system.kv.kvBits = cfg.paged.quantBits;
    return cfg;
}

AllocatorConfig
makeAllocatorConfig(const DeviceConfig &cfg)
{
    AllocatorConfig a;
    a.bytesPerToken =
        cfg.model.kvBytesPerToken(cfg.system.kv.kvBits);
    std::size_t pool = cfg.poolTokens;
    if (pool == 0) {
        // §8.4.1: device DRAM net of resident weights bounds the KV
        // pool shared by all concurrent requests.
        accel::CapacitySpec spec;
        spec.dramCapacity = cfg.system.tech.dram.capacity();
        spec.weightBits = cfg.system.tech.weightBits;
        spec.kvBits = cfg.system.kv.kvBits;
        pool = accel::maxSupportedTokens(cfg.model, spec).maxTokens;
    }
    KELLE_ASSERT(pool > 0, "KV pool has no room for any token");
    a.capacityBytes = static_cast<double>(pool) * a.bytesPerToken;
    a.highWatermark = cfg.highWatermark;
    if (cfg.paged.enabled) {
        a.pagedBlockTokens =
            std::max<std::size_t>(1, cfg.paged.blockTokens);
        // One page holds blockTokens x (K+V across all layers) values
        // at the system's KV precision, with per-group scale/zero
        // metadata when quantized — the QuantizedGroups layout.
        const auto values_per_token = static_cast<std::size_t>(
            cfg.model.kvBytesPerToken(16) / 2.0);
        a.pagedBytesPerPage = tensor::quantizedStoreBytes(
            values_per_token * a.pagedBlockTokens,
            cfg.system.kv.kvBits, kPageQuantGroup);
        a.pagedTotalPages = std::max<std::size_t>(
            1, static_cast<std::size_t>(a.capacityBytes /
                                        a.pagedBytesPerPage));
        a.pagedSharePrefixes = cfg.paged.sharePrefixes;
    }
    return a;
}

} // namespace

DeviceEngine::DeviceEngine(const DeviceConfig &cfg,
                           sim::EventQueue &queue,
                           std::vector<Request> &requests)
    : cfg_(normalizedConfig(cfg)),
      label_(cfg.name.empty() ? "" : " [" + cfg.name + "]"),
      queue_(queue), requests_(requests),
      allocator_(makeAllocatorConfig(cfg_)),
      policy_(makePolicy(cfg.policy)),
      costCache_(cfg_.system, cfg_.model),
      profiler_(cfg.profiler)
{
    const std::string err = cfg_.model.validate();
    KELLE_ASSERT(err.empty(), "bad model config: ", err);
    KELLE_ASSERT(cfg_.maxBatch > 0, "maxBatch must be positive");
}

std::size_t
DeviceEngine::requestedBudget(const sim::Task &task) const
{
    // No-eviction baselines hold the full cache: the request must
    // reserve its whole ctx+dec footprint (+1 for the in-flight
    // token) and nothing can be shrunk away.
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    const std::size_t req =
        cfg_.budgetOverride ? cfg_.budgetOverride : task.budget;
    return std::max(req, minBudget(task));
}

std::size_t
DeviceEngine::minBudget(const sim::Task &task) const
{
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    return task.sinkTokens + task.recentWindow + kFloorSlackTokens;
}

EngineView
DeviceEngine::view() const
{
    return EngineView{queue_.now(),     requests_,
                      waiting_,         admitted_,
                      running_,         cfg_.maxBatch,
                      cfg_.chunkTokens, cfg_.chunkSlackFrac,
                      lastStep_};
}

void
DeviceEngine::enqueue(std::size_t idx)
{
    KELLE_ASSERT(!crashed_,
                 "enqueue into a crashed device (the owner must "
                 "blacklist down devices)");
    if (grants_.size() < requests_.size())
        grants_.resize(requests_.size());
    ++dispatched_;
    waiting_.push_back(idx);
    if (secondLife(requests_[idx]))
        ++waitingPreempted_;
    metrics_.sampleQueueDepth(waiting_.size());
    if (trace_ != nullptr) {
        const Request &r = requests_[idx];
        if (!secondLife(r)) {
            trace_->requestArrived(queue_.now(), r.id, r.task.name);
            // SLO targets ride the trace only when attribution is on,
            // so pre-attribution trace digests stay byte-identical.
            if (wf_ != nullptr)
                trace_->sloTarget(queue_.now(), r.id,
                                  r.ttftDeadlineSec, r.tpotTargetSec);
        } else {
            trace_->requestRequeued(queue_.now(), r.id);
        }
        trace_->queueDepth(queue_.now(), waiting_.size());
    }
    if (wf_ != nullptr && !secondLife(requests_[idx])) {
        const Request &r = requests_[idx];
        wf_->onArrival(idx, r.id, queue_.now(), r.ttftDeadlineSec,
                       r.tpotTargetSec, r.task.decLen);
    }
    if (cfg_.verbose) {
        const Request &r = requests_[idx];
        if (!secondLife(r))
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " [", r.task.name, "] arrived (ctx ",
                   r.task.ctxLen, ", dec ", r.task.decLen,
                   ", TTFT deadline ",
                   toString(Time::seconds(r.ttftDeadlineSec)), ")");
        else if (r.preemptions > 0)
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " [", r.task.name,
                   "] requeued after preemption");
        else if (r.faultRetries > 0)
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " [", r.task.name,
                   "] re-dispatched after device fault (retry ",
                   r.faultRetries, ")");
        else
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " [", r.task.name,
                   "] re-arrived after overload (client retry ",
                   r.clientRetries, ")");
    }
    dispatch();
}

void
DeviceEngine::dispatch()
{
    if (engineBusy_ || truncated_ || crashed_)
        return;
    preemptDoomed();
    admitWaiting();
    planScratch_.reset();
    policy_->nextStep(view(), planScratch_);
    const EngineStepPlan &plan = planScratch_;
    if (plan.kind == EngineStepKind::Idle)
        return;
    if (cfg_.maxEngineSteps && engineSteps_ >= cfg_.maxEngineSteps) {
        truncated_ = true;
        return;
    }
    lastStep_ = plan.kind;
    ++engineSteps_;
    if (plan.kind == EngineStepKind::PrefillChunk)
        runPrefillChunk(plan);
    else
        runDecodeStep(plan);
}

void
DeviceEngine::preemptDoomed()
{
    if (!cfg_.preempt.enabled || running_.empty())
        return;
    // Reclaim only under *local* demand: dispatch is route-once, so a
    // waiter queued on another device can never use this device's
    // freed budget — preempting for remote demand would discard the
    // victim's tokens and buy nothing.
    if (waiting_.empty())
        return;
    std::vector<std::size_t> &victims = victimScratch_;
    victims.clear();
    for (std::size_t idx : running_) {
        const Request &r = requests_[idx];
        if (r.preemptions > 0) // at most once per request
            continue;
        if (r.tpotTargetSec <= 0.0 || r.task.decLen == 0 || r.done())
            continue;
        const double elapsed = (queue_.now() - r.firstToken).sec();
        const double doomed_at =
            cfg_.preempt.doomFactor * r.tpotTargetSec *
            static_cast<double>(r.task.decLen);
        if (elapsed > doomed_at)
            victims.push_back(idx);
    }
    for (std::size_t idx : victims) {
        Request &r = requests_[idx];
        running_.erase(
            std::find(running_.begin(), running_.end(), idx));
        allocator_.release(grants_[idx]);
        // Reset progress: the KV is gone, prompt and emitted tokens
        // must rerun. Arrival and first-token timestamps survive, so
        // the restart is charged as a decode stall and the TPOT miss
        // stays on the books.
        ++r.preemptions;
        r.state = RequestState::Waiting;
        r.prefilled = 0;
        r.generated = 0;
        r.budgetRequested = 0;
        r.budgetGranted = 0;
        r.kvBytesReserved = 0.0;
        metrics_.onPreempted();
        if (wf_ != nullptr)
            wf_->onPreempt(idx, queue_.now());
        if (trace_ != nullptr) {
            trace_->preempted(queue_.now(), r.id);
            trace_->kvInUse(queue_.now(), allocator_.inUseBytes());
            tracePagedCounters(queue_.now());
        }
        if (cfg_.verbose)
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " preempted (TPOT already unattainable), KV "
                   "grant reclaimed");
        // Owners (Scheduler, ClusterEngine) requeue via an immediate
        // event so the victim re-enters the queue only after this step
        // boundary completes; the local fallback exists for bare
        // DeviceEngine use only.
        if (hooks_.requeue) {
            hooks_.requeue(idx);
        } else {
            waiting_.push_back(idx);
            ++waitingPreempted_; // r.preemptions was just incremented
            metrics_.sampleQueueDepth(waiting_.size());
            if (trace_ != nullptr) {
                trace_->requestRequeued(queue_.now(), r.id);
                trace_->queueDepth(queue_.now(), waiting_.size());
            }
        }
    }
}

void
DeviceEngine::pagedEnsure(std::size_t idx, std::size_t tokens)
{
    KvBudgetAllocator::Grant &g = grants_[idx];
    if (tokens <= g.chainCapacityTokens)
        return;
    if (!allocator_.growChain(g, tokens)) {
        // Pool exhausted: the chain stopped at best-effort capacity.
        // Clamp the logical budget N' to it — page-granular eviction
        // pressure (the member evicts harder instead of the engine
        // stalling) — never below the floor acquired at admission.
        Request &r = requests_[idx];
        if (g.chainCapacityTokens < r.budgetGranted) {
            allocator_.shrinkBudget(g, g.chainCapacityTokens);
            r.budgetGranted = g.chainCapacityTokens;
        }
    }
}

std::size_t
DeviceEngine::reclaimRunningTails()
{
    if (running_.empty())
        return 0;
    std::vector<std::size_t> &victims = victimScratch_;
    victims.assign(running_.begin(), running_.end());
    // Youngest grants donate their idle tail pages first: the oldest
    // running requests keep their headroom, mirroring AERP's
    // protect-the-established bias.
    std::sort(victims.begin(), victims.end(),
              [this](std::size_t a, std::size_t b) {
                  return requests_[a].id > requests_[b].id;
              });
    std::size_t freed = 0;
    for (std::size_t idx : victims) {
        Request &r = requests_[idx];
        const std::size_t keep =
            std::max(minBudget(r.task), r.residentTokens());
        if (keep < r.budgetGranted) {
            allocator_.shrinkBudget(grants_[idx], keep);
            r.budgetGranted = keep;
        }
        freed += allocator_.shrinkChainTo(grants_[idx], keep);
    }
    return freed;
}

void
DeviceEngine::tracePagedCounters(Time t)
{
    if (trace_ == nullptr || !allocator_.paged())
        return;
    const kv::KvPagePool *pool = allocator_.pagePool();
    trace_->kvPagesFree(t, pool->freePages());
    trace_->kvPagesShared(t, pool->sharedPages());
    trace_->kvPrefixHitTokens(t, pool->prefixHitTokens());
}

void
DeviceEngine::rejectRequest(std::size_t idx, std::size_t floor_tokens)
{
    Request &r = requests_[idx];
    if (cfg_.clientRetries > 0 &&
        r.clientRetries < cfg_.clientRetries) {
        // Client-side retry: the request re-arrives after a seeded
        // backoff instead of failing terminally. The caller has (or
        // is about to) remove it from the waiting queue; it lives at
        // the client until the re-arrival event fires.
        ++r.clientRetries;
        const double u = hashUnit(r.id, r.clientRetries);
        const Time at =
            queue_.now() +
            Time::seconds(cfg_.clientRetryBackoffSec * (0.5 + u));
        clientRetryAt_.emplace_back(at, idx);
        queue_.schedule(at, [this] { fireClientRetry(); });
        if (cfg_.verbose)
            inform("t=", toString(queue_.now()), label_,
                   " request #", r.id, " overloaded; client retry ",
                   r.clientRetries, "/", cfg_.clientRetries,
                   " at t=", toString(at));
        return;
    }
    r.state = RequestState::Rejected;
    metrics_.onRejected(r);
    if (wf_ != nullptr)
        wf_->onRejected(idx, queue_.now(), wfDevice_);
    if (trace_ != nullptr)
        trace_->rejected(queue_.now(), r.id, floor_tokens);
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), label_, " request #",
               r.id, " rejected: floor ", floor_tokens,
               " tokens exceeds the KV pool");
}

/**
 * Attempt admission of `idx`, currently at `waiting_[pos]` — or at a
 * position to be looked up lazily when `pos` is `kFindPos` (the
 * reordering policies don't track positions, and searching up front
 * would cost O(W) per *attempted* candidate; only the rare removal
 * paths need the position). Returns false when the candidate is
 * blocked by the allocator; true otherwise (admitted or rejected,
 * entry removed from waiting_).
 */
bool
DeviceEngine::tryAdmitAt(std::size_t pos, std::size_t idx)
{
    const auto erase_at = [this](std::size_t p, std::size_t i) {
        if (p == kFindPos)
            p = static_cast<std::size_t>(
                std::find(waiting_.begin(), waiting_.end(), i) -
                waiting_.begin());
        waiting_.erase(waiting_.begin() +
                       static_cast<std::ptrdiff_t>(p));
    };
    Request &r = requests_[idx];
    // requestedBudget() already clamps to >= the floor.
    const std::size_t requested = requestedBudget(r.task);
    const std::size_t floor_tokens = minBudget(r.task);
    if (floor_tokens > allocator_.capacityTokens()) {
        // Even an empty pool could never hold the floor (or a client
        // retry is scheduled; either way the entry leaves the queue).
        rejectRequest(idx, floor_tokens);
        if (secondLife(r))
            --waitingPreempted_;
        erase_at(pos, idx);
        return true;
    }
    if (allocator_.paged() &&
        allocator_.availableTokens() < floor_tokens) {
        // Page-granular admission pressure: before deferring, harvest
        // whole idle tail pages from running grants (their budgets
        // shrink to what they actually hold — eviction pressure at
        // page granularity instead of preempting the whole victim).
        reclaimRunningTails();
    }
    const auto grant = allocator_.tryAdmit(
        requested, floor_tokens, r.prefixKey,
        std::min(r.prefixLen, r.task.ctxLen));
    if (!grant.admitted) {
        deferScratch_.push_back(
            DeferredAdmit{requested, floor_tokens, r.id});
        // Deferrals after the first token live inside c7 (preempt /
        // fault loss), so only pre-first-token ones open the
        // kv_stall interval. (Preemption victims always carry a
        // first token, so this is the old preemptions == 0 guard on
        // fault-free runs.)
        if (wf_ != nullptr && r.firstToken.sec() == 0.0)
            wf_->onDeferred(idx, queue_.now());
        if (trace_ != nullptr)
            trace_->deferred(queue_.now(), r.id, requested,
                             floor_tokens);
        return false;
    }

    if (secondLife(r))
        --waitingPreempted_;
    erase_at(pos, idx);
    admittedNowScratch_.push_back(idx);
    r.state = RequestState::Prefilling;
    // A re-admitted preemption (or fault-eviction) victim keeps its
    // first-life admission stamp: (admitted - arrival) is the
    // queue-wait metric, and the victim's first life was service,
    // not queue. Victims that were never admitted — crashed out of
    // the waiting queue, or client retries — stamp now.
    if (r.admitted.sec() == 0.0) {
        r.admitted = queue_.now();
        if (wf_ != nullptr)
            wf_->onAdmitted(idx, queue_.now());
    }
    r.budgetRequested = requested;
    r.budgetGranted = grant.budgetTokens;
    r.kvBytesReserved = grant.bytes;
    if (grant.prefixHitTokens > 0 && r.task.ctxLen > 1) {
        // Shared prefix pages already hold these tokens' KV: prefill
        // resumes past them (capped so at least one prompt token runs
        // — the request still needs its first-token pass).
        r.prefilled =
            std::min(grant.prefixHitTokens, r.task.ctxLen - 1);
    }
    grants_[idx] = grant;
    admitted_.push_back(idx);
    metrics_.sampleQueueDepth(waiting_.size());
    if (trace_ != nullptr) {
        trace_->admitted(queue_.now(), r.id, grant.budgetTokens,
                         requested);
        trace_->queueDepth(queue_.now(), waiting_.size());
        trace_->kvInUse(queue_.now(), allocator_.inUseBytes());
        tracePagedCounters(queue_.now());
    }
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), label_, " request #",
               r.id, " admitted, N'=", r.budgetGranted,
               r.budgetGranted < requested ? " (shrunk)" : "",
               ", pool ", Table::pct(allocator_.utilization()),
               " full");
    return true;
}

void
DeviceEngine::admitWaiting()
{
    // Under overload the batch sits at cap on most steps: skip the
    // order computation (an O(W log W) sort for the reordering
    // policies) before it could admit anything.
    const std::size_t cap = policy_->admissionCap(cfg_.maxBatch);
    if (waiting_.empty() || admitted_.size() + running_.size() >= cap)
        return;
    std::vector<std::size_t> &admitted_now = admittedNowScratch_;
    admitted_now.clear();
    deferScratch_.clear();
    const std::size_t waiting_before = waiting_.size();
    if (policy_->fifoAdmission()) {
        // Arrival-order admission straight off the waiting queue: no
        // order snapshot, and every removal pops the current position
        // (the front, unless a blocked candidate was skipped).
        std::size_t pos = 0;
        while (pos < waiting_.size() &&
               admitted_.size() + running_.size() < cap) {
            const std::size_t idx = waiting_[pos];
            if (!tryAdmitAt(pos, idx)) {
                if (!policy_->skipBlocked())
                    break; // head-of-line wait for a release
                ++pos;     // later candidates may still fit
            }
        }
    } else {
        // Snapshot the policy's admission order; entries leave
        // `waiting_` only through this loop, so each is attempted at
        // most once.
        policy_->admissionOrder(view(), orderScratch_);
        for (std::size_t idx : orderScratch_) {
            if (admitted_.size() + running_.size() >= cap)
                break;
            if (!tryAdmitAt(kFindPos, idx)) {
                if (!policy_->skipBlocked())
                    break; // head-of-line wait for a release
            }
        }
    }

    // A round that attempted candidates and deferred every one of
    // them (none admitted, none rejected — the waiting queue is
    // unchanged) left no observable state behind except the
    // deferrals just recorded in deferScratch_, and from this frozen
    // state the next round must do exactly the same: the allocator's
    // verdict is a pure function of (requested, floor) against
    // unchanged pool state, so even the time-dependent admission
    // orders replay to the identical deferral multiset. The decode
    // fast-forward uses this to replay KV-blocked boundaries for
    // every policy, including the reordering ones.
    lastRoundAllDeferred_ = admitted_now.empty() &&
                            waiting_.size() == waiting_before &&
                            !deferScratch_.empty();

    // Starvation accounting, settled after the round: an admission
    // overtook only the earlier arrivals it left *still waiting* —
    // requests admitted later in the same round at the same timestamp
    // lost nothing and are not counted. For arrival-order admission
    // the count is provably zero unless a requeued preemption victim
    // (an old id enqueued late) sits in the queue, so the O(W) scan
    // runs only when it can produce something.
    if (admitted_now.empty() ||
        (policy_->fifoAdmission() && !policy_->skipBlocked() &&
         waitingPreempted_ == 0))
        return;
    for (std::size_t idx : admitted_now) {
        std::size_t overtaken = 0;
        for (std::size_t w : waiting_)
            overtaken += requests_[w].id < requests_[idx].id ? 1 : 0;
        if (overtaken > 0)
            metrics_.onBypass(overtaken);
    }
}

const accel::StepReport &
DeviceEngine::decodeStepCost(const std::vector<std::size_t> &resident)
{
    if (cfg_.fastSim)
        return costCache_.batchedDecodeStep(resident);
    stepScratch_ = accel::simulateBatchedDecodeStep(cfg_.system,
                                                    cfg_.model, resident);
    return stepScratch_;
}

const accel::StepReport &
DeviceEngine::prefillChunkCost(std::size_t kv_offset,
                               std::size_t chunk_len)
{
    if (cfg_.fastSim)
        return costCache_.prefillChunk(kv_offset, chunk_len);
    stepScratch_ = accel::simulatePrefillChunk(cfg_.system, cfg_.model,
                                               kv_offset, chunk_len);
    return stepScratch_;
}

void
DeviceEngine::runPrefillChunk(const EngineStepPlan &plan)
{
    engineBusy_ = true;
    ++prefillChunks_;
    const std::size_t idx = plan.requestIdx;
    const Request &r = requests_[idx];
    KELLE_ASSERT(plan.chunkTokens > 0 &&
                     plan.chunkTokens <= r.remainingPrompt(),
                 "policy planned an invalid prefill chunk");
    if (allocator_.paged())
        pagedEnsure(idx, std::min(r.prefilled + plan.chunkTokens,
                                  r.budgetGranted));
    const accel::StepReport &step =
        prefillChunkCost(r.prefilled, plan.chunkTokens);
    // Slowdown faults stretch the step wall-clock, not its energy.
    const Time lat = scaled(step.latency);
    metrics_.addEnergy(step.energy);
    busy_ = busy_ + lat;
    // Re-prefill after the first token is part of c7, not c3.
    if (wf_ != nullptr && r.firstToken.sec() == 0.0)
        wf_->onPrefillChunk(idx, lat.sec());
    if (trace_ != nullptr)
        trace_->prefillStep(queue_.now(), lat, r.id,
                            plan.chunkTokens,
                            step.energy.refresh.j());
    // In-flight state in members, epoch + `this` capture (16 bytes):
    // the callback stays inside std::function's small-object buffer
    // (no per-step heap allocation). The epoch orphans the event if
    // the device crashes before it fires.
    inFlightPrefillIdx_ = idx;
    inFlightPrefillTokens_ = plan.chunkTokens;
    queue_.scheduleAfter(lat, [this, e = runEpoch_] {
        if (e == runEpoch_)
            onPrefillDone();
    });
}

void
DeviceEngine::onPrefillDone()
{
    const std::size_t idx = inFlightPrefillIdx_;
    Request &req = requests_[idx];
    req.prefilled += inFlightPrefillTokens_;
    if (allocator_.paged() && req.prefixKey != 0)
        allocator_.publishPrefix(
            grants_[idx], req.prefixKey,
            std::min(req.prefilled, req.prefixLen));
    if (req.prefillDone()) {
        admitted_.erase(
            std::find(admitted_.begin(), admitted_.end(), idx));
        req.state = RequestState::Decoding;
        // A restart re-emits a token the user already saw; requests
        // evicted *before* their first token (crashed out of the
        // waiting/prefilling queues, client retries) stamp the real
        // first token whenever it finally lands.
        const bool restart = req.firstToken.sec() > 0.0;
        if (!restart) {
            req.firstToken = queue_.now();
            req.lastToken = req.firstToken;
            if (wf_ != nullptr)
                wf_->onFirstToken(idx, queue_.now());
        } else {
            // Restarted victim: the user saw the first token in its
            // first life; the restart shows up as one long
            // inter-token stall.
            req.maxTokenGapSec =
                std::max(req.maxTokenGapSec,
                         (queue_.now() - req.lastToken).sec());
            req.lastToken = queue_.now();
            if (wf_ != nullptr)
                wf_->onResume(idx, queue_.now());
        }
        running_.push_back(idx);
        ++prefills_;
        if (trace_ != nullptr)
            trace_->firstToken(queue_.now(), req.id);
        if (cfg_.verbose && !restart)
            inform("t=", toString(queue_.now()), label_, " request #",
                   req.id, " first token (TTFT ",
                   toString(req.firstToken - req.arrival), ", ",
                   metrics_.metTtft(req) ? "met" : "missed",
                   " deadline), batch ", running_.size());
        else if (cfg_.verbose)
            inform("t=", toString(queue_.now()), label_, " request #",
                   req.id, " resumed decoding after ",
                   req.preemptions > 0 ? "preemption"
                                       : "device fault",
                   ", batch ", running_.size());
    }
    engineBusy_ = false;
    dispatch();
}

std::size_t
DeviceEngine::silentStepBudget(bool *replay_deferrals) const
{
    *replay_deferrals = false;
    if (!cfg_.fastSim || !admitted_.empty())
        return 0;
    if (!waiting_.empty()) {
        // A non-empty queue feeds the preemption scan, and admits at
        // the next boundary unless the batch is capped or the pool is
        // exhausted. The capped case is a provable no-op. The
        // KV-blocked case — batch slots free but no waiter's floor
        // fitting the free bytes — is replayable whenever the round
        // that just ran was pure deferrals: the fast-forward
        // re-performs the recorded (requested, floor) attempts per
        // boundary so the deferral accounting stays identical. This
        // covers arrival-order head-of-line blocking (the round
        // attempted exactly the head) and the reordering policies'
        // all-blocked rounds alike. Preemption no longer disables
        // fast-forwarding: runDecodeStep stops the window before the
        // first boundary whose preemption scan would fire.
        if (admitted_.size() + running_.size() <
            policy_->admissionCap(cfg_.maxBatch)) {
            // Paged mode mutates pool state *inside* windows (lazy
            // chain growth), so a deferral round is not replayable
            // from frozen state — the KV-blocked case falls back to
            // the event-driven path.
            if (!lastRoundAllDeferred_ || allocator_.paged())
                return 0;
            *replay_deferrals = true;
        }
    }
    std::size_t min_rem = 0;
    bool first = true;
    for (std::size_t idx : inFlightBatch_) {
        const Request &r = requests_[idx];
        const std::size_t rem = r.task.decLen - r.generated;
        min_rem = first ? rem : std::min(min_rem, rem);
        first = false;
    }
    if (min_rem <= 1) // the very next boundary completes a member
        return 0;
    std::size_t budget = min_rem - 1;
    if (cfg_.maxEngineSteps) {
        const std::uint64_t room = cfg_.maxEngineSteps - engineSteps_;
        budget = std::min(budget, static_cast<std::size_t>(room));
    }
    return budget;
}

Time
DeviceEngine::nextPossibleRequeueTime(Time now) const
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    if (!cfg_.preempt.enabled || waiting_.empty())
        return Time::seconds(inf);
    double bound = inf;
    for (std::size_t idx : running_) {
        const Request &r = requests_[idx];
        if (r.preemptions > 0 || r.tpotTargetSec <= 0.0 ||
            r.task.decLen == 0 || r.done())
            continue;
        const double doomed_at =
            cfg_.preempt.doomFactor * r.tpotTargetSec *
            static_cast<double>(r.task.decLen);
        // One-ulp shave: the scan's (t - firstToken) > doomed_at uses
        // a subtraction this sum does not, so the sum may round above
        // the earliest triggering t by half an ulp.
        bound = std::min(bound, std::nextafter(
                                    r.firstToken.sec() + doomed_at,
                                    -inf));
    }
    // Waiters and prefilling admits may start decoding inside another
    // device's window, but their doom clock starts no earlier than
    // `now`.
    const auto consider = [&](std::size_t idx) {
        const Request &r = requests_[idx];
        if (r.preemptions > 0 || r.tpotTargetSec <= 0.0 ||
            r.task.decLen == 0)
            return;
        const double doomed_at =
            cfg_.preempt.doomFactor * r.tpotTargetSec *
            static_cast<double>(r.task.decLen);
        bound = std::min(bound,
                         std::nextafter(now.sec() + doomed_at, -inf));
    };
    for (std::size_t idx : admitted_)
        consider(idx);
    for (std::size_t idx : waiting_)
        consider(idx);
    return Time::seconds(bound);
}

void
DeviceEngine::runDecodeStep(const EngineStepPlan &plan)
{
    engineBusy_ = true;
    ++decodeSteps_;
    const bool paged = allocator_.paged();
    if (paged) {
        // Lazy chain growth: each member's pages catch up with its
        // resident tokens before the step is costed; failed growth
        // clamps the member's budget (and thus its resident clamp).
        for (std::size_t idx : plan.decodeBatch)
            pagedEnsure(idx, requests_[idx].residentTokens());
    }
    residentScratch_.clear();
    for (std::size_t idx : plan.decodeBatch)
        residentScratch_.push_back(requests_[idx].residentTokens());
    const accel::StepReport *step = &decodeStepCost(residentScratch_);
    // Slowdown faults stretch step wall-clock, not energy; the scale
    // is constant inside a step window (fault instants bound every
    // fast-forward horizon), so re-deriving `lat` after each re-cost
    // keeps every consumer consistent.
    Time lat = scaled(step->latency);
    metrics_.addEnergy(step->energy);
    busy_ = busy_ + lat;
    inFlightBatch_.assign(plan.decodeBatch.begin(),
                          plan.decodeBatch.end());
    if (trace_ != nullptr)
        trace_->decodeStep(queue_.now(), lat,
                           inFlightBatch_.size(),
                           step->energy.refresh.j());

    // Fast-forward: while (a) no batch member completes, (b) admission
    // and preemption are provably no-ops, and (c) the boundary lands
    // strictly before the earliest pending event that could affect
    // this engine, the decode batch steps again with the same
    // membership — nothing else in the simulation can even observe
    // the boundary. Replay those boundaries inline instead of
    // re-entering the event queue, performing exactly the operations
    // the event-driven loop would, in the same order: member token
    // updates at the boundary, then the next step's resident total,
    // cost lookup, and energy/busy/counter accumulations, with the
    // same repeated-addition timestamps. The (batch, total-resident)
    // cost key is tracked incrementally — it grows by the number of
    // members still below their budget clamp, and stops changing (no
    // lookup at all) once every member is clamped. Only the final,
    // state-changing boundary re-enters the queue.
    Time t = queue_.now();
    bool replay_deferrals = false;
    std::size_t silent = silentStepBudget(&replay_deferrals);
    if (silent > 0) {
        const auto ff0 = profiler_ != nullptr
                             ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
        const std::uint64_t ff_before = fastForwarded_;
        // Preemption stays armed inside the window: collect the batch
        // members the boundary scan would examine (it only runs with
        // waiting demand, and the waiting queue is frozen here) and
        // stop the window before the first boundary where any of them
        // crosses its doom time — evaluated with the scan's own
        // subtract-then-compare arithmetic so the stop is bit-exact,
        // and that boundary runs through the real event path.
        doomScratch_.clear();
        if (cfg_.preempt.enabled && !waiting_.empty()) {
            for (std::size_t idx : running_) {
                const Request &r = requests_[idx];
                if (r.preemptions > 0 || r.tpotTargetSec <= 0.0 ||
                    r.task.decLen == 0 || r.done())
                    continue;
                doomScratch_.emplace_back(
                    r.firstToken,
                    cfg_.preempt.doomFactor * r.tpotTargetSec *
                        static_cast<double>(r.task.decLen));
            }
        }
        bool bounded;
        Time horizon;
        if (hooks_.nextExternalEvent) {
            // The owner vouches that nothing before this timestamp
            // can reach this engine (other devices' completions
            // commute with our boundaries; see Hooks). Our own
            // pending client re-arrivals are invisible to the owner
            // but enqueue into *this* engine, so they bound the
            // window too.
            horizon = hooks_.nextExternalEvent();
            if (!clientRetryAt_.empty()) {
                const Time cr = minClientRetryAt();
                if (cr < horizon)
                    horizon = cr;
            }
            bounded = horizon.sec() <
                      std::numeric_limits<double>::infinity();
        } else {
            bounded = !queue_.empty();
            if (bounded)
                horizon = queue_.nextEventTime();
        }
        std::size_t n_sum = 0;
        for (std::size_t n : residentScratch_)
            n_sum += n;
        const std::size_t batch_size = inFlightBatch_.size();
        while (silent > 0) {
            const Time tn = t + lat;
            if (bounded && !(tn < horizon))
                break;
            bool doomed = false;
            for (const auto &d : doomScratch_) {
                if ((tn - d.first).sec() > d.second) {
                    doomed = true;
                    break;
                }
            }
            if (doomed)
                break;
            t = tn;
            // Waterfall shares are charged from the step that just
            // ended — `step` is re-costed only below.
            const double ended_step_sec = lat.sec();
            std::size_t growth = 0;
            for (std::size_t idx : inFlightBatch_) {
                Request &r = requests_[idx];
                ++r.generated;
                r.maxTokenGapSec = std::max(r.maxTokenGapSec,
                                            (t - r.lastToken).sec());
                r.lastToken = t;
                if (wf_ != nullptr)
                    wf_->onDecodeBoundary(
                        idx, ended_step_sec,
                        static_cast<double>(batch_size));
                if (r.task.ctxLen + r.generated < r.budgetGranted)
                    ++growth; // resident grows again next step
            }
            if (replay_deferrals) {
                // The admission round from frozen state: re-attempt
                // the recorded (requested, floor) pairs; each must
                // keep failing — allocator state is frozen inside the
                // window — and each failure records the same deferral
                // the event-driven round would.
                for (const auto &defer : deferScratch_) {
                    const auto grant = allocator_.tryAdmit(
                        defer.requested, defer.floor);
                    KELLE_ASSERT(!grant.admitted,
                                 "fast-forward window admitted a "
                                 "request the event-driven round had "
                                 "deferred");
                    if (trace_ != nullptr)
                        trace_->deferred(t, defer.req,
                                         defer.requested, defer.floor);
                }
            }
            ++engineSteps_;
            ++decodeSteps_;
            ++fastForwarded_;
            if (paged) {
                // Mirror the event path: grow each member's chain to
                // its new resident count, then re-cost. Budget clamps
                // from failed growth can change any member's clamp,
                // so the resident vector is rebuilt per boundary; the
                // (batch, total-resident) cost key stays exact, so an
                // unchanged total skips the lookup.
                for (std::size_t idx : inFlightBatch_)
                    pagedEnsure(idx,
                                requests_[idx].residentTokens());
                residentScratch_.clear();
                std::size_t ns = 0;
                for (std::size_t idx : inFlightBatch_) {
                    const std::size_t n =
                        requests_[idx].residentTokens();
                    residentScratch_.push_back(n);
                    ns += n;
                }
                if (ns != n_sum) {
                    n_sum = ns;
                    const accel::StepReport *hit =
                        costCache_.findBatchedDecode(batch_size,
                                                     n_sum);
                    step = hit != nullptr
                               ? hit
                               : &decodeStepCost(residentScratch_);
                }
            } else if (growth > 0) {
                n_sum += growth;
                const accel::StepReport *hit =
                    costCache_.findBatchedDecode(batch_size, n_sum);
                if (hit != nullptr) {
                    step = hit;
                } else {
                    residentScratch_.clear();
                    for (std::size_t idx : inFlightBatch_)
                        residentScratch_.push_back(
                            requests_[idx].residentTokens());
                    step = &decodeStepCost(residentScratch_);
                }
            }
            // Mirror the event path's per-boundary decode slice: the
            // step *starting* at this boundary, costed after any
            // resident growth.
            lat = scaled(step->latency);
            if (trace_ != nullptr)
                trace_->decodeStep(t, lat, batch_size,
                                   step->energy.refresh.j());
            metrics_.addEnergy(step->energy);
            busy_ = busy_ + lat;
            --silent;
        }
        if (profiler_ != nullptr)
            profiler_->add(
                obs::PhaseProfiler::Phase::FastForward,
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - ff0)
                    .count(),
                fastForwarded_ - ff_before);
    }
    inFlightStepLatency_ = lat;
    queue_.schedule(t + lat, [this, e = runEpoch_] {
        if (e == runEpoch_)
            onDecodeDone();
    });
}

void
DeviceEngine::onDecodeDone()
{
    const double step_sec = inFlightStepLatency_.sec();
    const double batch =
        static_cast<double>(inFlightBatch_.size());
    for (std::size_t idx : inFlightBatch_) {
        Request &r = requests_[idx];
        ++r.generated;
        r.maxTokenGapSec = std::max(
            r.maxTokenGapSec, (queue_.now() - r.lastToken).sec());
        r.lastToken = queue_.now();
        if (wf_ != nullptr)
            wf_->onDecodeBoundary(idx, step_sec, batch);
        if (r.done()) {
            finishRequest(idx);
            running_.erase(
                std::find(running_.begin(), running_.end(), idx));
        }
    }
    engineBusy_ = false;
    dispatch();
}

void
DeviceEngine::finishRequest(std::size_t idx)
{
    Request &r = requests_[idx];
    r.state = RequestState::Completed;
    r.completed = queue_.now();
    lastCompletion_ = std::max(lastCompletion_, r.completed);
    allocator_.release(grants_[idx]);
    metrics_.onCompleted(r);
    if (wf_ != nullptr)
        wf_->onCompleted(idx, queue_.now(), wfDevice_);
    if (trace_ != nullptr) {
        trace_->completed(queue_.now(), r.id, r.generated);
        trace_->kvInUse(queue_.now(), allocator_.inUseBytes());
        tracePagedCounters(queue_.now());
    }
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), label_, " request #",
               r.id, " completed (", r.generated, " tokens, e2e ",
               toString(r.completed - r.arrival), ")");
}

Time
DeviceEngine::minClientRetryAt() const
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto &e : clientRetryAt_)
        best = std::min(best, e.first.sec());
    return Time::seconds(best);
}

void
DeviceEngine::fireClientRetry()
{
    KELLE_ASSERT(!clientRetryAt_.empty(),
                 "client retry fired with none pending");
    // Min (at, insertion order): matches the event queue's
    // (time, seq) order for the schedule() calls that created them.
    std::size_t best = 0;
    for (std::size_t i = 1; i < clientRetryAt_.size(); ++i) {
        if (clientRetryAt_[i].first < clientRetryAt_[best].first)
            best = i;
    }
    const std::size_t idx = clientRetryAt_[best].second;
    KELLE_ASSERT(!(queue_.now() < clientRetryAt_[best].first),
                 "client retry fired early");
    clientRetryAt_.erase(clientRetryAt_.begin() +
                         static_cast<std::ptrdiff_t>(best));
    if (crashed_) {
        // The device died while the client was backing off: burn
        // another retry (or fail terminally through the reject path).
        rejectRequest(idx, minBudget(requests_[idx].task));
        return;
    }
    enqueue(idx);
}

void
DeviceEngine::crashAt(Time t, std::vector<std::size_t> *victims,
                      std::uint64_t *lost_tokens)
{
    KELLE_ASSERT(!crashed_, "crash on an already-down device");
    crashed_ = true;
    // Orphan the in-flight step: its completion event pops as a
    // no-op. Its latency/energy stay charged — the accelerator was
    // mid-step when it died.
    ++runEpoch_;
    engineBusy_ = false;
    lastStep_ = EngineStepKind::Idle;
    lastRoundAllDeferred_ = false;
    if (trace_ != nullptr)
        trace_->deviceFault(t, 0, 0.0);
    victims->clear();
    *lost_tokens = 0;
    // Deterministic drain order: running, admitted, waiting.
    for (std::size_t idx : running_)
        victims->push_back(idx);
    for (std::size_t idx : admitted_)
        victims->push_back(idx);
    for (std::size_t idx : waiting_)
        victims->push_back(idx);
    running_.clear();
    admitted_.clear();
    waiting_.clear();
    waitingPreempted_ = 0;
    inFlightBatch_.clear();
    for (std::size_t idx : *victims) {
        Request &r = requests_[idx];
        // Regeneration cost: every KV-resident token must rerun.
        const std::uint64_t work =
            static_cast<std::uint64_t>(r.prefilled + r.generated);
        r.lostTokens += work;
        *lost_tokens += work;
        r.faulted = true;
        r.state = RequestState::Waiting;
        r.prefilled = 0;
        r.generated = 0;
        r.budgetRequested = 0;
        r.budgetGranted = 0;
        r.kvBytesReserved = 0.0;
        if (grants_[idx].admitted)
            allocator_.release(grants_[idx]);
        if (trace_ != nullptr)
            trace_->faultEvicted(t, r.id, work);
        if (wf_ != nullptr)
            wf_->onFaultEvict(idx, t);
    }
    if (trace_ != nullptr) {
        trace_->queueDepth(t, 0);
        trace_->kvInUse(t, allocator_.inUseBytes());
        tracePagedCounters(t);
    }
    if (cfg_.verbose)
        inform("t=", toString(t), label_, " DEVICE CRASH: ",
               victims->size(), " request(s) evicted, ",
               *lost_tokens, " token(s) of KV lost");
}

void
DeviceEngine::recoverAt(Time t)
{
    KELLE_ASSERT(crashed_, "recovering a device that is not down");
    crashed_ = false;
    if (trace_ != nullptr)
        trace_->deviceRecover(t, 0);
    if (cfg_.verbose)
        inform("t=", toString(t), label_,
               " device recovered from crash, accepting work");
}

void
DeviceEngine::slowdownAt(Time t, double factor)
{
    KELLE_ASSERT(factor >= 1.0, "slowdown must not speed up");
    latencyScale_ = factor;
    if (trace_ != nullptr)
        trace_->deviceFault(t, 1, factor);
    if (cfg_.verbose)
        inform("t=", toString(t), label_,
               " device slowdown: step latency x", factor);
}

void
DeviceEngine::shrinkPoolAt(Time t, double factor)
{
    allocator_.setCapacityScale(factor);
    lastRoundAllDeferred_ = false; // admission verdicts changed
    if (trace_ != nullptr)
        trace_->deviceFault(t, 2, factor);
    if (cfg_.verbose)
        inform("t=", toString(t), label_,
               " eDRAM degrade: KV capacity x", factor);
}

void
DeviceEngine::restoreAt(Time t, int kind_code)
{
    if (kind_code == 1) {
        latencyScale_ = 1.0;
    } else {
        allocator_.setCapacityScale(1.0);
        lastRoundAllDeferred_ = false;
    }
    if (trace_ != nullptr)
        trace_->deviceRecover(t, kind_code);
    if (cfg_.verbose)
        inform("t=", toString(t), label_, " device recovered from ",
               kind_code == 1 ? "slowdown" : "pool degrade");
    // Restored capacity can admit blocked waiters right away.
    if (kind_code == 2)
        dispatch();
}

std::size_t
DeviceEngine::pressureReclaimAt(Time t)
{
    if (!allocator_.paged())
        return 0; // contiguous reservations have no idle tails
    lastRoundAllDeferred_ = false;
    std::size_t freed = allocator_.dropCachedPrefixes();
    freed += reclaimRunningTails();
    if (freed > 0 && trace_ != nullptr) {
        trace_->kvInUse(t, allocator_.inUseBytes());
        tracePagedCounters(t);
    }
    // Freed pages can admit blocked waiters right away.
    dispatch();
    return freed;
}

void
DeviceEngine::shedStaleWaitingAt(Time t,
                                 std::vector<std::size_t> *shed)
{
    if (waiting_.empty())
        return;
    const std::size_t shed_before = shed->size();
    auto it = waiting_.begin();
    while (it != waiting_.end()) {
        Request &r = requests_[*it];
        // Only pre-first-token waiters whose TTFT deadline already
        // expired: their admission can no longer meet the SLO here,
        // so hand them back for re-dispatch instead of serving a
        // guaranteed miss under fleet-wide pressure.
        const bool expired = r.ttftDeadlineSec > 0.0 &&
                             r.firstToken.sec() == 0.0 &&
                             r.ttftDeadline() < t;
        if (!expired) {
            ++it;
            continue;
        }
        if (secondLife(r))
            --waitingPreempted_;
        r.faulted = true;
        shed->push_back(*it);
        if (trace_ != nullptr)
            trace_->faultEvicted(t, r.id, 0);
        if (wf_ != nullptr)
            wf_->onFaultEvict(*it, t);
        if (cfg_.verbose)
            inform("t=", toString(t), label_, " request #", r.id,
                   " shed under fleet pressure (TTFT deadline "
                   "expired)");
        it = waiting_.erase(it);
    }
    if (shed->size() != shed_before) {
        lastRoundAllDeferred_ = false;
        metrics_.sampleQueueDepth(waiting_.size());
        if (trace_ != nullptr)
            trace_->queueDepth(t, waiting_.size());
    }
}

void
DeviceEngine::failRequestAt(Time t, std::size_t idx)
{
    Request &r = requests_[idx];
    r.state = RequestState::Rejected;
    r.faultFailed = true;
    r.faulted = true;
    metrics_.onRejected(r);
    if (wf_ != nullptr)
        wf_->onFaultFailed(idx, t, wfDevice_);
    if (trace_ != nullptr)
        trace_->faultFailed(t, r.id);
    if (cfg_.verbose)
        inform("t=", toString(t), label_, " request #", r.id,
               " permanently failed: fault-retry budget exhausted");
}

} // namespace serving
} // namespace kelle
