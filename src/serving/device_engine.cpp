#include "serving/device_engine.hpp"

#include <algorithm>

#include "accel/capacity.hpp"
#include "common/log.hpp"
#include "common/table.hpp"

namespace kelle {
namespace serving {

namespace {

/** Extra slack above the protected regions in the budget floor. */
constexpr std::size_t kFloorSlackTokens = 8;

AllocatorConfig
makeAllocatorConfig(const DeviceConfig &cfg)
{
    AllocatorConfig a;
    a.bytesPerToken =
        cfg.model.kvBytesPerToken(cfg.system.kv.kvBits);
    std::size_t pool = cfg.poolTokens;
    if (pool == 0) {
        // §8.4.1: device DRAM net of resident weights bounds the KV
        // pool shared by all concurrent requests.
        accel::CapacitySpec spec;
        spec.dramCapacity = cfg.system.tech.dram.capacity();
        spec.weightBits = cfg.system.tech.weightBits;
        spec.kvBits = cfg.system.kv.kvBits;
        pool = accel::maxSupportedTokens(cfg.model, spec).maxTokens;
    }
    KELLE_ASSERT(pool > 0, "KV pool has no room for any token");
    a.capacityBytes = static_cast<double>(pool) * a.bytesPerToken;
    a.highWatermark = cfg.highWatermark;
    return a;
}

} // namespace

DeviceEngine::DeviceEngine(const DeviceConfig &cfg,
                           sim::EventQueue &queue,
                           std::vector<Request> &requests)
    : cfg_(cfg),
      label_(cfg.name.empty() ? "" : " [" + cfg.name + "]"),
      queue_(queue), requests_(requests),
      allocator_(makeAllocatorConfig(cfg)),
      policy_(makePolicy(cfg.policy))
{
    const std::string err = cfg_.model.validate();
    KELLE_ASSERT(err.empty(), "bad model config: ", err);
    KELLE_ASSERT(cfg_.maxBatch > 0, "maxBatch must be positive");
}

std::size_t
DeviceEngine::requestedBudget(const sim::Task &task) const
{
    // No-eviction baselines hold the full cache: the request must
    // reserve its whole ctx+dec footprint (+1 for the in-flight
    // token) and nothing can be shrunk away.
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    const std::size_t req =
        cfg_.budgetOverride ? cfg_.budgetOverride : task.budget;
    return std::max(req, minBudget(task));
}

std::size_t
DeviceEngine::minBudget(const sim::Task &task) const
{
    if (!cfg_.system.kv.evict)
        return task.ctxLen + task.decLen + 1;
    return task.sinkTokens + task.recentWindow + kFloorSlackTokens;
}

EngineView
DeviceEngine::view() const
{
    return EngineView{queue_.now(),     requests_,
                      waiting_,         admitted_,
                      running_,         cfg_.maxBatch,
                      cfg_.chunkTokens, cfg_.chunkSlackFrac,
                      lastStep_};
}

void
DeviceEngine::enqueue(std::size_t idx)
{
    if (grants_.size() < requests_.size())
        grants_.resize(requests_.size());
    ++dispatched_;
    waiting_.push_back(idx);
    metrics_.sampleQueueDepth(waiting_.size());
    if (cfg_.verbose) {
        const Request &r = requests_[idx];
        if (r.preemptions == 0)
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " [", r.task.name, "] arrived (ctx ",
                   r.task.ctxLen, ", dec ", r.task.decLen,
                   ", TTFT deadline ",
                   toString(Time::seconds(r.ttftDeadlineSec)), ")");
        else
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " [", r.task.name,
                   "] requeued after preemption");
    }
    dispatch();
}

void
DeviceEngine::dispatch()
{
    if (engineBusy_ || truncated_)
        return;
    preemptDoomed();
    admitWaiting();
    const EngineStepPlan plan = policy_->nextStep(view());
    if (plan.kind == EngineStepKind::Idle)
        return;
    if (cfg_.maxEngineSteps && engineSteps_ >= cfg_.maxEngineSteps) {
        truncated_ = true;
        return;
    }
    lastStep_ = plan.kind;
    ++engineSteps_;
    if (plan.kind == EngineStepKind::PrefillChunk)
        runPrefillChunk(plan);
    else
        runDecodeStep(plan);
}

void
DeviceEngine::preemptDoomed()
{
    if (!cfg_.preempt.enabled || running_.empty())
        return;
    // Reclaim only under *local* demand: dispatch is route-once, so a
    // waiter queued on another device can never use this device's
    // freed budget — preempting for remote demand would discard the
    // victim's tokens and buy nothing.
    if (waiting_.empty())
        return;
    std::vector<std::size_t> victims;
    for (std::size_t idx : running_) {
        const Request &r = requests_[idx];
        if (r.preemptions > 0) // at most once per request
            continue;
        if (r.tpotTargetSec <= 0.0 || r.task.decLen == 0 || r.done())
            continue;
        const double elapsed = (queue_.now() - r.firstToken).sec();
        const double doomed_at =
            cfg_.preempt.doomFactor * r.tpotTargetSec *
            static_cast<double>(r.task.decLen);
        if (elapsed > doomed_at)
            victims.push_back(idx);
    }
    for (std::size_t idx : victims) {
        Request &r = requests_[idx];
        running_.erase(
            std::find(running_.begin(), running_.end(), idx));
        allocator_.release(grants_[idx]);
        // Reset progress: the KV is gone, prompt and emitted tokens
        // must rerun. Arrival and first-token timestamps survive, so
        // the restart is charged as a decode stall and the TPOT miss
        // stays on the books.
        ++r.preemptions;
        r.state = RequestState::Waiting;
        r.prefilled = 0;
        r.generated = 0;
        r.budgetRequested = 0;
        r.budgetGranted = 0;
        r.kvBytesReserved = 0.0;
        metrics_.onPreempted();
        if (cfg_.verbose)
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " preempted (TPOT already unattainable), KV "
                   "grant reclaimed");
        // Owners (Scheduler, ClusterEngine) requeue via an immediate
        // event so the victim re-enters the queue only after this step
        // boundary completes; the local fallback exists for bare
        // DeviceEngine use only.
        if (hooks_.requeue) {
            hooks_.requeue(idx);
        } else {
            waiting_.push_back(idx);
            metrics_.sampleQueueDepth(waiting_.size());
        }
    }
}

void
DeviceEngine::rejectRequest(std::size_t idx, std::size_t floor_tokens)
{
    Request &r = requests_[idx];
    r.state = RequestState::Rejected;
    metrics_.onRejected(r);
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), label_, " request #",
               r.id, " rejected: floor ", floor_tokens,
               " tokens exceeds the KV pool");
}

void
DeviceEngine::admitWaiting()
{
    // Under overload the batch sits at cap on most steps: skip the
    // order computation (an O(W log W) sort for the reordering
    // policies) before it could admit anything.
    const std::size_t cap = policy_->admissionCap(cfg_.maxBatch);
    if (waiting_.empty() || admitted_.size() + running_.size() >= cap)
        return;
    // Snapshot the policy's admission order; entries leave `waiting_`
    // only through this loop, so each is attempted at most once.
    const std::vector<std::size_t> order =
        policy_->admissionOrder(view());
    std::vector<std::size_t> admitted_now;
    for (std::size_t idx : order) {
        if (admitted_.size() + running_.size() >= cap)
            break;

        Request &r = requests_[idx];
        // requestedBudget() already clamps to >= the floor.
        const std::size_t requested = requestedBudget(r.task);
        const std::size_t floor_tokens = minBudget(r.task);
        if (floor_tokens > allocator_.capacityTokens()) {
            // Even an empty pool could never hold the floor.
            rejectRequest(idx, floor_tokens);
            waiting_.erase(std::find(waiting_.begin(), waiting_.end(),
                                     idx));
            continue;
        }
        auto grant = allocator_.tryAdmit(requested, floor_tokens);
        if (!grant.admitted) {
            if (policy_->skipBlocked())
                continue; // later candidates may still fit
            break;        // head-of-line wait for a release
        }

        waiting_.erase(std::find(waiting_.begin(), waiting_.end(),
                                 idx));
        admitted_now.push_back(idx);
        r.state = RequestState::Prefilling;
        // A re-admitted preemption victim keeps its first-life
        // admission stamp: (admitted - arrival) is the queue-wait
        // metric, and the victim's first life was service, not queue.
        if (r.preemptions == 0)
            r.admitted = queue_.now();
        r.budgetRequested = requested;
        r.budgetGranted = grant.budgetTokens;
        r.kvBytesReserved = grant.bytes;
        grants_[idx] = grant;
        admitted_.push_back(idx);
        metrics_.sampleQueueDepth(waiting_.size());
        if (cfg_.verbose)
            inform("t=", toString(queue_.now()), label_, " request #",
                   r.id, " admitted, N'=", r.budgetGranted,
                   r.budgetGranted < requested ? " (shrunk)" : "",
                   ", pool ",
                   Table::pct(allocator_.utilization()), " full");
    }

    // Starvation accounting, settled after the round: an admission
    // overtook only the earlier arrivals it left *still waiting* —
    // requests admitted later in the same round at the same timestamp
    // lost nothing and are not counted.
    for (std::size_t idx : admitted_now) {
        std::size_t overtaken = 0;
        for (std::size_t w : waiting_)
            overtaken += requests_[w].id < requests_[idx].id ? 1 : 0;
        if (overtaken > 0)
            metrics_.onBypass(overtaken);
    }
}

void
DeviceEngine::runPrefillChunk(const EngineStepPlan &plan)
{
    engineBusy_ = true;
    ++prefillChunks_;
    const std::size_t idx = plan.requestIdx;
    const Request &r = requests_[idx];
    KELLE_ASSERT(plan.chunkTokens > 0 &&
                     plan.chunkTokens <= r.remainingPrompt(),
                 "policy planned an invalid prefill chunk");
    const auto step = accel::simulatePrefillChunk(
        cfg_.system, cfg_.model, r.prefilled, plan.chunkTokens);
    metrics_.addEnergy(step.energy);
    busy_ = busy_ + step.latency;
    queue_.scheduleAfter(
        step.latency, [this, idx, tokens = plan.chunkTokens] {
            Request &req = requests_[idx];
            req.prefilled += tokens;
            if (req.prefillDone()) {
                admitted_.erase(std::find(admitted_.begin(),
                                          admitted_.end(), idx));
                req.state = RequestState::Decoding;
                if (req.preemptions == 0) {
                    req.firstToken = queue_.now();
                    req.lastToken = req.firstToken;
                } else {
                    // Restarted victim: the user saw the first token
                    // in its first life; the restart shows up as one
                    // long inter-token stall.
                    req.maxTokenGapSec = std::max(
                        req.maxTokenGapSec,
                        (queue_.now() - req.lastToken).sec());
                    req.lastToken = queue_.now();
                }
                running_.push_back(idx);
                ++prefills_;
                if (cfg_.verbose && req.preemptions == 0)
                    inform("t=", toString(queue_.now()), label_,
                           " request #", req.id, " first token (TTFT ",
                           toString(req.firstToken - req.arrival),
                           ", ", metrics_.metTtft(req) ? "met"
                                                       : "missed",
                           " deadline), batch ", running_.size());
                else if (cfg_.verbose)
                    inform("t=", toString(queue_.now()), label_,
                           " request #", req.id,
                           " resumed decoding after preemption, "
                           "batch ",
                           running_.size());
            }
            engineBusy_ = false;
            dispatch();
        });
}

void
DeviceEngine::runDecodeStep(const EngineStepPlan &plan)
{
    engineBusy_ = true;
    ++decodeSteps_;
    std::vector<std::size_t> resident;
    resident.reserve(plan.decodeBatch.size());
    for (std::size_t idx : plan.decodeBatch)
        resident.push_back(requests_[idx].residentTokens());
    const auto step =
        accel::simulateBatchedDecodeStep(cfg_.system, cfg_.model, resident);
    metrics_.addEnergy(step.energy);
    busy_ = busy_ + step.latency;
    queue_.scheduleAfter(step.latency, [this,
                                        batch = plan.decodeBatch] {
        for (std::size_t idx : batch) {
            Request &r = requests_[idx];
            ++r.generated;
            r.maxTokenGapSec = std::max(
                r.maxTokenGapSec, (queue_.now() - r.lastToken).sec());
            r.lastToken = queue_.now();
            if (r.done()) {
                finishRequest(idx);
                running_.erase(std::find(running_.begin(),
                                         running_.end(), idx));
            }
        }
        engineBusy_ = false;
        dispatch();
    });
}

void
DeviceEngine::finishRequest(std::size_t idx)
{
    Request &r = requests_[idx];
    r.state = RequestState::Completed;
    r.completed = queue_.now();
    lastCompletion_ = std::max(lastCompletion_, r.completed);
    allocator_.release(grants_[idx]);
    metrics_.onCompleted(r);
    if (cfg_.verbose)
        inform("t=", toString(queue_.now()), label_, " request #",
               r.id, " completed (", r.generated, " tokens, e2e ",
               toString(r.completed - r.arrival), ")");
}

} // namespace serving
} // namespace kelle
