/**
 * @file
 * The event-driven multi-request serving engine.
 *
 * A `Scheduler` owns a `sim::EventQueue` and plays an arrival trace
 * through the accelerator one *engine step* at a time. A step is
 * either one request's prefill (costed by accel::simulatePrefillStep)
 * or one decode iteration over the current continuous batch (costed by
 * accel::simulateBatchedDecodeStep, which amortizes the weight stream
 * across the batch). The accelerator runs one step at a time; work
 * never overlaps in wall-clock, so policies differ only in how they
 * pick the next step:
 *
 *  - Fcfs: strict run-to-completion. One request at a time gets the
 *    whole machine: prefill, then decode steps (batch of one) until
 *    its last token; only then is the next request admitted.
 *  - ContinuousBatching: iteration-level scheduling. At every step
 *    boundary, waiting requests are admitted while the KV pool and
 *    `maxBatch` allow; an admitted request's prefill is inserted
 *    between decode iterations, after which it joins the decode batch.
 *    Members leave the batch the moment they finish, releasing their
 *    KV budget.
 *
 * Admission flows through KvBudgetAllocator: a request is admitted
 * only if its AERP budget N' (possibly shrunk under eviction
 * pressure) fits in the KV pool, so the pool is never oversubscribed.
 */

#ifndef KELLE_SERVING_SCHEDULER_HPP
#define KELLE_SERVING_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "accel/timing_model.hpp"
#include "model/model_config.hpp"
#include "serving/kv_budget_allocator.hpp"
#include "serving/request.hpp"
#include "serving/request_generator.hpp"
#include "serving/serving_metrics.hpp"
#include "sim/event_queue.hpp"

namespace kelle {
namespace serving {

enum class SchedulePolicy
{
    Fcfs,               ///< request-at-a-time run-to-completion
    ContinuousBatching, ///< iteration-level batching
};

std::string toString(SchedulePolicy p);
/** Parse "fcfs"/"contbatch"; returns false on unknown input. */
bool parseSchedulePolicy(const std::string &text, SchedulePolicy *out);

/** Full configuration of a serving run. */
struct ServingConfig
{
    accel::SystemConfig system = accel::kelleEdramSystem(2048);
    model::ModelConfig model = model::llama2_7b();
    TrafficConfig traffic;
    SchedulePolicy policy = SchedulePolicy::ContinuousBatching;

    /** Decode-batch cap (ContinuousBatching; Fcfs is always 1). */
    std::size_t maxBatch = 16;
    /** Per-request budget override; 0 keeps each task's N'. */
    std::size_t budgetOverride = 0;
    /**
     * KV pool size in tokens; 0 derives it from the §8.4.1 capacity
     * analysis (device DRAM net of resident weights).
     */
    std::size_t poolTokens = 0;
    /** Allocator pressure watermark. */
    double highWatermark = 0.85;
    /** Safety cap on engine steps; 0 = run the trace to completion. */
    std::uint64_t maxEngineSteps = 0;
    /** inform() per-request lifecycle lines (examples/edge_server). */
    bool verbose = false;
};

/** Run outcome: SLO summary plus engine/allocator accounting. */
struct ServingReport
{
    ServingSummary summary;
    std::uint64_t decodeSteps = 0;
    std::uint64_t prefills = 0;
    std::size_t poolTokens = 0;
    double poolCapacityBytes = 0.0;
    double poolPeakBytes = 0.0;
    std::uint64_t shrunkGrants = 0;
    std::uint64_t deferrals = 0;
    /** False when maxEngineSteps truncated the run. */
    bool drained = true;
};

class Scheduler
{
  public:
    explicit Scheduler(const ServingConfig &cfg);

    /** Generate the trace, drive it to completion, summarize. */
    ServingReport run();

    /** Per-request records after run() (completed requests only). */
    const ServingMetrics &metrics() const { return metrics_; }

  private:
    void onArrival(std::size_t idx);
    void admitWaiting();
    void dispatch();
    void startPrefill();
    void startDecodeStep();
    void finishRequest(std::size_t idx);
    std::size_t requestedBudget(const sim::Task &task) const;
    std::size_t minBudget(const sim::Task &task) const;

    ServingConfig cfg_;
    sim::EventQueue queue_;
    KvBudgetAllocator allocator_;
    ServingMetrics metrics_;

    std::vector<Request> requests_;
    std::vector<KvBudgetAllocator::Grant> grants_;
    std::deque<std::size_t> waiting_;  ///< arrived, not admitted
    std::deque<std::size_t> admitted_; ///< granted, awaiting prefill
    std::vector<std::size_t> running_; ///< decode-batch members

    bool engineBusy_ = false;
    bool truncated_ = false;
    std::uint64_t decodeSteps_ = 0;
    std::uint64_t prefills_ = 0;
    Time lastCompletion_;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_SCHEDULER_HPP
