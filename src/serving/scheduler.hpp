/**
 * @file
 * The single-device serving engine: one arrival trace played through
 * one `DeviceEngine` executor.
 *
 * The serving engine is split into three parts (see policy.hpp and
 * serving_metrics.hpp for the other two):
 *
 *   Policy  --EngineStepPlan-->  DeviceEngine (executor)  -->  Metrics
 *
 * Since PR 4 the executor lives in device_engine.hpp so that the
 * multi-device cluster (src/cluster) can run N of them over one shared
 * event queue; `Scheduler` is the one-device owner: it generates the
 * trace, schedules every arrival into its single `DeviceEngine`, runs
 * the queue to completion and summarizes. A 1-device ClusterEngine
 * under any dispatch policy reproduces a `Scheduler` run bit-exactly,
 * because both drive the same executor the same way.
 *
 * Admission flows through KvBudgetAllocator: a request is admitted
 * only if its AERP budget N' (possibly shrunk under eviction
 * pressure) fits in the KV pool, so the pool is never oversubscribed.
 * A request whose protected floor exceeds the whole pool is rejected
 * immediately.
 */

#ifndef KELLE_SERVING_SCHEDULER_HPP
#define KELLE_SERVING_SCHEDULER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serving/device_engine.hpp"
#include "serving/request.hpp"
#include "serving/request_generator.hpp"
#include "serving/serving_metrics.hpp"
#include "sim/event_queue.hpp"

namespace kelle {
namespace serving {

/** Full configuration of a serving run. */
struct ServingConfig
{
    accel::SystemConfig system = accel::kelleEdramSystem(2048);
    model::ModelConfig model = model::llama2_7b();
    TrafficConfig traffic;
    SchedulePolicy policy = SchedulePolicy::ContinuousBatching;

    /** Decode-batch cap (Fcfs always serves one request). */
    std::size_t maxBatch = 16;
    /**
     * Prefill chunk size in prompt tokens; 0 runs each prompt as one
     * monolithic step. Smaller chunks let policies preempt long
     * prefills at chunk boundaries at the price of re-streaming the
     * weights once per chunk.
     */
    std::size_t chunkTokens = 0;
    /**
     * EdfChunked slack-aware alternation: run consecutive prefill
     * chunks when the prefilling request's TTFT slack is below this
     * fraction of its whole TTFT budget. 0 keeps the unconditional
     * alternation bit-exactly.
     */
    double chunkSlackFrac = 0.0;
    /** Preempt-and-requeue of deadline-doomed decodes (off by
     *  default; the cluster exposes it as a fleet-level knob). */
    PreemptConfig preempt;
    /** Paged KV pool (off keeps the contiguous allocator bit-exactly;
     *  see PagedKvConfig in device_engine.hpp). */
    PagedKvConfig paged;
    /** Per-request budget override; 0 keeps each task's N'. */
    std::size_t budgetOverride = 0;
    /**
     * KV pool size in tokens; 0 derives it from the §8.4.1 capacity
     * analysis (device DRAM net of resident weights).
     */
    std::size_t poolTokens = 0;
    /** Allocator pressure watermark. */
    double highWatermark = 0.85;
    /** Safety cap on engine steps (prefill chunks + decode
     *  iterations); 0 = run the trace to completion. */
    std::uint64_t maxEngineSteps = 0;
    /**
     * Client-side retry of overload rejections: a request whose floor
     * exceeds the pool re-arrives up to this many times after a
     * deterministic backoff instead of terminating (0 = off; see
     * DeviceConfig::clientRetries). The base arrival trace is
     * byte-identical either way — retries are engine-side re-arrivals
     * of already-generated requests.
     */
    std::uint32_t clientRetries = 0;
    /** Client-retry backoff base in seconds (jittered by request). */
    double clientRetryBackoffSec = 5.0;
    /**
     * Bit-identical simulation fast path (step-cost memoization +
     * decode fast-forward; see device_engine.hpp). Off runs the
     * uncached step-at-a-time core — the equivalence-test oracle and
     * the bench_simspeed reference.
     */
    bool fastSim = true;
    /** inform() per-request lifecycle lines (examples/edge_server). */
    bool verbose = false;
    /**
     * Deterministic request-lifecycle tracing (obs/trace.hpp): the
     * owner registers one track per device and emits every lifecycle
     * event into it, stamped with sim time. Null (the default)
     * disables tracing with zero cost and zero output perturbation.
     * Use one recorder per run; it must outlive the engine.
     */
    obs::TraceRecorder *trace = nullptr;
    /**
     * SLO root-cause attribution (obs/attribution.hpp): the owner
     * sizes the waterfall for the generated trace and every device
     * engine stamps its requests' latency components and miss causes
     * into it; the roll-up lands in `ServingReport::attribution`.
     * Null (the default) disables attribution with zero cost and zero
     * output perturbation. One waterfall per run; it must outlive the
     * engine.
     */
    obs::LatencyWaterfall *waterfall = nullptr;
    /** Wall-clock phase profiling (obs/profile.hpp); null = off. */
    obs::PhaseProfiler *profiler = nullptr;
};

/** The per-device slice of a ServingConfig, for the executor. */
DeviceConfig deviceConfigFrom(const ServingConfig &cfg);

/** Paged-pool accounting in a report (zeros in contiguous mode). */
struct PagedPoolStats
{
    bool enabled = false;
    std::size_t totalPages = 0;
    std::size_t blockTokens = 0;
    std::size_t peakUsedPages = 0;
    std::size_t peakSharedPages = 0;
    std::uint64_t prefixHitTokens = 0;
    std::uint64_t cowCopies = 0;
    std::uint64_t cachedReclaims = 0;
    std::uint64_t tailReclaims = 0;
    std::uint64_t reclaimedPages = 0;
    std::uint64_t budgetClips = 0;
};

/** Run outcome: SLO summary plus engine/allocator accounting. */
struct ServingReport
{
    ServingSummary summary;
    std::uint64_t engineSteps = 0;   ///< prefill chunks + decode steps
    std::uint64_t decodeSteps = 0;
    std::uint64_t prefillChunks = 0; ///< == prefills when unchunked
    std::uint64_t prefills = 0;      ///< completed prompt prefills
    std::size_t poolTokens = 0;
    double poolCapacityBytes = 0.0;
    double poolPeakBytes = 0.0;
    std::uint64_t shrunkGrants = 0;
    std::uint64_t deferrals = 0;
    /** Peak sum of live grants' logical budgets N' (both modes) —
     *  the resident-token capacity metric of the paged benches. */
    std::size_t peakLogicalTokens = 0;
    PagedPoolStats paged;
    /** Latency-waterfall roll-up (empty when attribution is off). */
    obs::AttributionReport attribution;
    /** False when maxEngineSteps truncated the run. */
    bool drained = true;
};

/**
 * One device's ServingReport, summarized over `makespan`. The single
 * fill path shared by Scheduler and the cluster roll-up, so the two
 * cannot disagree field-by-field.
 */
ServingReport deviceReport(const DeviceEngine &dev, Time makespan);

class Scheduler
{
  public:
    explicit Scheduler(const ServingConfig &cfg);

    /** Generate the trace, drive it to completion, summarize. */
    ServingReport run();

    /** Per-request records after run() (completed requests only). */
    const ServingMetrics &metrics() const;

  private:
    ServingConfig cfg_;
    sim::EventQueue queue_;
    std::vector<Request> requests_;
    std::unique_ptr<DeviceEngine> device_;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_SCHEDULER_HPP
