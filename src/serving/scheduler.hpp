/**
 * @file
 * The engine-step executor of the serving pipeline.
 *
 * The serving engine is split into three parts (see policy.hpp and
 * serving_metrics.hpp for the other two):
 *
 *   Policy  --EngineStepPlan-->  Scheduler (executor)  -->  Metrics
 *
 * A `Scheduler` owns a `sim::EventQueue` and plays an arrival trace
 * through the accelerator one *engine step* at a time. At every step
 * boundary it (1) offers waiting requests to the KvBudgetAllocator in
 * the order its `Policy` chose — either head-of-line (FIFO policies)
 * or skip-blocked (reordering policies, which bypass a request whose
 * budget does not fit and charge an admission-bypass counter for every
 * earlier arrival they overtake) — and (2) executes the step the
 * policy planned: one request's next prefill *chunk* (costed by
 * accel::simulatePrefillChunk at the request's current KV offset, so
 * long prompts can interleave with decode Sarathi-style) or one decode
 * iteration over the continuous batch (accel::simulateBatchedDecodeStep,
 * which amortizes the weight stream across the batch). The accelerator
 * runs one step at a time; work never overlaps in wall-clock, so
 * policies differ only in the plans they emit.
 *
 * Admission flows through KvBudgetAllocator: a request is admitted
 * only if its AERP budget N' (possibly shrunk under eviction
 * pressure) fits in the KV pool, so the pool is never oversubscribed.
 * A request whose protected floor exceeds the whole pool is rejected
 * immediately.
 */

#ifndef KELLE_SERVING_SCHEDULER_HPP
#define KELLE_SERVING_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "accel/timing_model.hpp"
#include "model/model_config.hpp"
#include "serving/engine_step.hpp"
#include "serving/kv_budget_allocator.hpp"
#include "serving/policy.hpp"
#include "serving/request.hpp"
#include "serving/request_generator.hpp"
#include "serving/serving_metrics.hpp"
#include "sim/event_queue.hpp"

namespace kelle {
namespace serving {

/** Full configuration of a serving run. */
struct ServingConfig
{
    accel::SystemConfig system = accel::kelleEdramSystem(2048);
    model::ModelConfig model = model::llama2_7b();
    TrafficConfig traffic;
    SchedulePolicy policy = SchedulePolicy::ContinuousBatching;

    /** Decode-batch cap (Fcfs always serves one request). */
    std::size_t maxBatch = 16;
    /**
     * Prefill chunk size in prompt tokens; 0 runs each prompt as one
     * monolithic step. Smaller chunks let policies preempt long
     * prefills at chunk boundaries at the price of re-streaming the
     * weights once per chunk.
     */
    std::size_t chunkTokens = 0;
    /** Per-request budget override; 0 keeps each task's N'. */
    std::size_t budgetOverride = 0;
    /**
     * KV pool size in tokens; 0 derives it from the §8.4.1 capacity
     * analysis (device DRAM net of resident weights).
     */
    std::size_t poolTokens = 0;
    /** Allocator pressure watermark. */
    double highWatermark = 0.85;
    /** Safety cap on engine steps (prefill chunks + decode
     *  iterations); 0 = run the trace to completion. */
    std::uint64_t maxEngineSteps = 0;
    /** inform() per-request lifecycle lines (examples/edge_server). */
    bool verbose = false;
};

/** Run outcome: SLO summary plus engine/allocator accounting. */
struct ServingReport
{
    ServingSummary summary;
    std::uint64_t engineSteps = 0;   ///< prefill chunks + decode steps
    std::uint64_t decodeSteps = 0;
    std::uint64_t prefillChunks = 0; ///< == prefills when unchunked
    std::uint64_t prefills = 0;      ///< completed prompt prefills
    std::size_t poolTokens = 0;
    double poolCapacityBytes = 0.0;
    double poolPeakBytes = 0.0;
    std::uint64_t shrunkGrants = 0;
    std::uint64_t deferrals = 0;
    /** False when maxEngineSteps truncated the run. */
    bool drained = true;
};

class Scheduler
{
  public:
    explicit Scheduler(const ServingConfig &cfg);

    /** Generate the trace, drive it to completion, summarize. */
    ServingReport run();

    /** Per-request records after run() (completed requests only). */
    const ServingMetrics &metrics() const { return metrics_; }

  private:
    void onArrival(std::size_t idx);
    void admitWaiting();
    void dispatch();
    void runPrefillChunk(const EngineStepPlan &plan);
    void runDecodeStep(const EngineStepPlan &plan);
    void finishRequest(std::size_t idx);
    void rejectRequest(std::size_t idx, std::size_t floor_tokens);
    EngineView view() const;
    std::size_t requestedBudget(const sim::Task &task) const;
    std::size_t minBudget(const sim::Task &task) const;

    ServingConfig cfg_;
    sim::EventQueue queue_;
    KvBudgetAllocator allocator_;
    ServingMetrics metrics_;
    std::unique_ptr<Policy> policy_;

    std::vector<Request> requests_;
    std::vector<KvBudgetAllocator::Grant> grants_;
    std::deque<std::size_t> waiting_;  ///< arrived, not admitted
    std::deque<std::size_t> admitted_; ///< granted, prompt unfinished
    std::vector<std::size_t> running_; ///< decode-batch members

    bool engineBusy_ = false;
    bool truncated_ = false;
    EngineStepKind lastStep_ = EngineStepKind::Idle;
    std::uint64_t engineSteps_ = 0;
    std::uint64_t decodeSteps_ = 0;
    std::uint64_t prefillChunks_ = 0;
    std::uint64_t prefills_ = 0;
    Time lastCompletion_;
};

} // namespace serving
} // namespace kelle

#endif // KELLE_SERVING_SCHEDULER_HPP
