/**
 * @file
 * Experiment drivers shared by the bench harnesses: the five-system
 * hardware comparison of Figure 13, the accuracy-policy sweep behind
 * Tables 2-6, and small helpers for the ablation benches.
 */

#ifndef KELLE_SIM_EXPERIMENTS_HPP
#define KELLE_SIM_EXPERIMENTS_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/timing_model.hpp"
#include "edram/fault_model.hpp"
#include "model/evaluate.hpp"
#include "sim/workloads.hpp"

namespace kelle {
namespace sim {

/** One system's result on one task. */
struct SystemResult
{
    std::string system;
    std::string task;
    accel::RunReport report;
    double speedup = 1.0;          ///< vs Original+SRAM
    double energyEfficiency = 1.0; ///< vs Original+SRAM
};

/** Run the five Figure 13 systems on one task. */
std::vector<SystemResult> runFigure13(const Task &task,
                                      const model::ModelConfig &model,
                                      std::size_t batch = 16);

/** Run the Figure 14 comparators (normalized to Jetson). */
std::vector<SystemResult> runFigure14(const Task &task,
                                      const model::ModelConfig &model,
                                      std::size_t batch = 16);

/** Accuracy evaluation context reused across policies. */
class AccuracyBench
{
  public:
    /**
     * Build the substrate: a TinyTransformer, a self-generated token
     * stream of task-scaled length, and the full-KV FP16 baseline.
     */
    AccuracyBench(const Task &scaled_task, std::uint64_t seed,
                  const model::ModelConfig &cfg = model::tinyLm());

    /** Evaluate a policy config (optionally with fault injection). */
    model::PolicyEval run(const kv::KvCacheConfig &cfg,
                          kv::FaultInjector *injector = nullptr);

    /** The full-cache baseline evaluation (PPL floor). */
    const model::StreamEval &baseline() const { return baseline_; }
    double baselinePerplexity() const { return baseline_.perplexity(); }
    const Task &task() const { return task_; }
    model::TinyTransformer &model() { return model_; }
    const model::SyntheticStream &stream() const { return stream_; }

  private:
    Task task_;
    model::TinyTransformer model_;
    model::SyntheticStream stream_;
    model::StreamEval baseline_;
};

/**
 * Seed-averaged accuracy bench: runs the same policy across several
 * independently-seeded substrates and streams, averaging perplexity
 * and agreement. Retention-fault experiments are stochastic; the
 * paper averages over datasets, this harness averages over seeds.
 */
class MultiSeedBench
{
  public:
    MultiSeedBench(const Task &scaled_task, std::size_t num_seeds,
                   std::uint64_t base_seed,
                   const model::ModelConfig &cfg = model::tinyLm());

    /**
     * Evaluate a policy; `injector_factory` builds a fresh injector
     * per seed (pass nullptr-returning factory for fault-free runs).
     */
    model::PolicyEval
    run(const kv::KvCacheConfig &cfg,
        const std::function<std::unique_ptr<kv::FaultInjector>(
            std::uint64_t seed)> &injector_factory = {});

    double baselinePerplexity() const;
    std::size_t seeds() const { return benches_.size(); }

  private:
    std::vector<std::unique_ptr<AccuracyBench>> benches_;
};

} // namespace sim
} // namespace kelle

#endif // KELLE_SIM_EXPERIMENTS_HPP
