#include "sim/experiments.hpp"

#include "accel/comparators.hpp"
#include "common/log.hpp"

namespace kelle {
namespace sim {

std::vector<SystemResult>
runFigure13(const Task &task, const model::ModelConfig &model,
            std::size_t batch)
{
    const accel::Workload w = makeWorkload(task, model, batch);
    std::vector<accel::SystemConfig> systems = {
        accel::originalSramSystem(),
        accel::originalEdramSystem(),
        accel::aepSramSystem(task.budget),
        accel::aerpSramSystem(task.budget),
        accel::kelleEdramSystem(task.budget),
    };

    std::vector<SystemResult> out;
    accel::RunReport base;
    for (std::size_t i = 0; i < systems.size(); ++i) {
        SystemResult r;
        r.system = systems[i].name;
        r.task = task.name;
        r.report = accel::simulate(systems[i], w);
        if (i == 0) {
            base = r.report;
            r.speedup = 1.0;
            r.energyEfficiency = 1.0;
        } else {
            const auto cmp = accel::compare(base, r.report);
            r.speedup = cmp.speedup;
            r.energyEfficiency = cmp.energyEfficiency;
        }
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<SystemResult>
runFigure14(const Task &task, const model::ModelConfig &model,
            std::size_t batch)
{
    const accel::Workload w = makeWorkload(task, model, batch);
    std::vector<accel::SystemConfig> systems = {
        accel::comparators::jetsonOrin(),
        accel::comparators::llmNpu(),
        accel::comparators::dynaX(),
        accel::comparators::comet(),
        accel::kelleEdramSystem(task.budget),
    };

    std::vector<SystemResult> out;
    accel::RunReport base;
    for (std::size_t i = 0; i < systems.size(); ++i) {
        SystemResult r;
        r.system = systems[i].name;
        r.task = task.name;
        r.report = accel::simulate(systems[i], w);
        if (i == 0) {
            base = r.report;
            r.speedup = 1.0;
            r.energyEfficiency = 1.0;
        } else {
            const auto cmp = accel::compare(base, r.report);
            r.speedup = cmp.speedup;
            r.energyEfficiency = cmp.energyEfficiency;
        }
        out.push_back(std::move(r));
    }
    return out;
}

AccuracyBench::AccuracyBench(const Task &scaled_task, std::uint64_t seed,
                             const model::ModelConfig &cfg)
    : task_(scaled_task), model_(cfg, model::InitOptions{seed, 1.5f})
{
    stream_ = model::generateStream(model_, task_.ctxLen, task_.decLen,
                                    0.9, seed + 17);
    // Full-KV FP16 baseline run.
    kv::ManagedKvCache cache(kv::makeFullConfig(), cfg.layers,
                             cfg.nKvHeads, cfg.headDim(), cfg.dModel);
    model_.attach(cache);
    baseline_ =
        model::runStream(model_, cache, stream_.tokens, stream_.promptLen);
}

model::PolicyEval
AccuracyBench::run(const kv::KvCacheConfig &cfg,
                   kv::FaultInjector *injector)
{
    return model::evaluatePolicy(model_, cfg, injector, stream_,
                                 baseline_);
}

MultiSeedBench::MultiSeedBench(const Task &scaled_task,
                               std::size_t num_seeds,
                               std::uint64_t base_seed,
                               const model::ModelConfig &cfg)
{
    KELLE_ASSERT(num_seeds > 0, "need at least one seed");
    for (std::size_t i = 0; i < num_seeds; ++i) {
        benches_.push_back(std::make_unique<AccuracyBench>(
            scaled_task, base_seed + 1000 * i, cfg));
    }
}

model::PolicyEval
MultiSeedBench::run(
    const kv::KvCacheConfig &cfg,
    const std::function<std::unique_ptr<kv::FaultInjector>(
        std::uint64_t seed)> &injector_factory)
{
    model::PolicyEval acc;
    for (std::size_t i = 0; i < benches_.size(); ++i) {
        std::unique_ptr<kv::FaultInjector> injector;
        if (injector_factory)
            injector = injector_factory(7919 * (i + 1));
        const auto r = benches_[i]->run(cfg, injector.get());
        acc.perplexity += r.perplexity;
        acc.agreementTop1 += r.agreementTop1;
        acc.residentKvBytes += r.residentKvBytes;
    }
    const auto n = static_cast<double>(benches_.size());
    acc.perplexity /= n;
    acc.agreementTop1 /= n;
    acc.residentKvBytes /= n;
    return acc;
}

double
MultiSeedBench::baselinePerplexity() const
{
    double acc = 0.0;
    for (const auto &b : benches_)
        acc += b->baselinePerplexity();
    return acc / static_cast<double>(benches_.size());
}

} // namespace sim
} // namespace kelle
