/**
 * @file
 * Workload presets: the serving tasks of Section 8 (context/decode
 * lengths, KV budgets, protected windows per Section 7.1) plus the
 * scaled-down variants used on the functional accuracy substrate.
 */

#ifndef KELLE_SIM_WORKLOADS_HPP
#define KELLE_SIM_WORKLOADS_HPP

#include <string>
#include <vector>

#include "accel/timing_model.hpp"
#include "kvcache/kv_config.hpp"

namespace kelle {
namespace sim {

/** One evaluation task as the paper configures it. */
struct Task
{
    std::string name;
    std::size_t ctxLen = 512;   ///< pre-filling length
    std::size_t decLen = 2048;  ///< decoding length
    std::size_t budget = 1024;  ///< KV budget N' (Section 7.1)
    std::size_t recentWindow = 512;
    std::size_t sinkTokens = 10;
};

/** @name Paper task presets (Sections 7.1 and 8). @{ */
Task lambada();   ///< ctx 128, dec 512, N' 128, recent 64
Task triviaQa();  ///< ctx 512, dec 2048, N' 1024, recent 512
Task qasper();    ///< ctx 1024, dec 5120, N' 1024, recent 512
Task pg19();      ///< ctx 512, dec 8192, N' 2048, recent 1024
Task wikitext2(); ///< ctx 512, dec 1024, N' 512, recent 256
/** @} */

/** The Figure 13 / 14 task list. */
std::vector<Task> hardwareTasks();

/** Build a timing-model workload from a task. */
accel::Workload makeWorkload(const Task &task,
                             const model::ModelConfig &model,
                             std::size_t batch = 16);

/**
 * Scale a task onto the functional TinyTransformer substrate. The
 * ratio of budget : recent-window : sink to sequence length is
 * preserved so eviction pressure matches the paper's setting.
 */
Task scaledForTiny(const Task &task, std::size_t target_seq = 192);

/** KV cache config for a task under a given policy preset. */
kv::KvCacheConfig cacheConfigFor(const Task &task, kv::Policy policy);

} // namespace sim
} // namespace kelle

#endif // KELLE_SIM_WORKLOADS_HPP
