/**
 * @file
 * A small discrete-event simulation core used by the bank-level eDRAM
 * tests, the refresh-hiding studies and the serving/cluster engines.
 * Events execute in (time, priority, insertion-order) order; callbacks
 * may schedule further events.
 *
 * The queue is an explicit binary heap over a `std::vector` rather
 * than a `std::priority_queue`: the comparator defines a strict total
 * order (the insertion sequence number breaks every tie), so the pop
 * order — the only observable — is identical, while the explicit heap
 * lets the hot serving loop *move* events in and out (a
 * `priority_queue` top()/pop() cycle copies the `std::function`, a
 * heap allocation per event) and lets owners `reserve` the backing
 * storage for an allocation-free steady state.
 */

#ifndef KELLE_SIM_EVENT_QUEUE_HPP
#define KELLE_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/units.hpp"

namespace kelle {
namespace sim {

/** Heap-driven event scheduler. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute time (>= now). */
    void schedule(Time when, Callback cb, int priority = 0);
    /** Schedule relative to the current time. */
    void scheduleAfter(Time delta, Callback cb, int priority = 0);

    /** Execute the earliest event; returns false if empty. */
    bool runNext();
    /** Run until the queue drains or `limit` events execute. */
    std::uint64_t runAll(std::uint64_t limit = UINT64_MAX);
    /** Run events with time <= t, then advance now to t. */
    std::uint64_t runUntil(Time t);
    /**
     * Run events with time strictly < t; `now` is left at the last
     * executed event (not advanced to t). The parallel cluster engine
     * drains each device's partition up to a lookahead horizon with
     * this: events at exactly the horizon must wait for the global
     * events (arrivals, requeues) that sort before them.
     */
    std::uint64_t runBefore(Time t);
    /**
     * Advance `now` to t without running anything. Panics if an event
     * earlier than t is still pending — advancing past it would
     * execute it in the past. Owners use this to line a partition's
     * clock up with a globally-timestamped injection (an arrival
     * dispatch) before scheduling into it.
     */
    void advanceTo(Time t);

    Time now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }
    std::uint64_t executed() const { return executed_; }

    /** Timestamp of the earliest pending event, +infinity when the
     *  queue is empty. The serving fast-forward bounds its window
     *  with this: no callback whatsoever runs before it. */
    Time
    nextEventTime() const
    {
        return heap_.empty()
                   ? Time::seconds(
                         std::numeric_limits<double>::infinity())
                   : heap_.front().when;
    }

    /** Pre-size the backing storage (events pending at once). */
    void reserve(std::size_t events) { heap_.reserve(events); }

  private:
    struct Event
    {
        Time when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return b.when < a.when;
            if (a.priority != b.priority)
                return b.priority < a.priority;
            return b.seq < a.seq;
        }
    };

    std::vector<Event> heap_; ///< std::push_heap/pop_heap under Later
    Time now_{0};
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace kelle

#endif // KELLE_SIM_EVENT_QUEUE_HPP
