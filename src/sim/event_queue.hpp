/**
 * @file
 * A small discrete-event simulation core used by the bank-level eDRAM
 * tests and the refresh-hiding studies. Events execute in (time,
 * priority, insertion-order) order; callbacks may schedule further
 * events.
 */

#ifndef KELLE_SIM_EVENT_QUEUE_HPP
#define KELLE_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace kelle {
namespace sim {

/** Priority-queue driven event scheduler. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute time (>= now). */
    void schedule(Time when, Callback cb, int priority = 0);
    /** Schedule relative to the current time. */
    void scheduleAfter(Time delta, Callback cb, int priority = 0);

    /** Execute the earliest event; returns false if empty. */
    bool runNext();
    /** Run until the queue drains or `limit` events execute. */
    std::uint64_t runAll(std::uint64_t limit = UINT64_MAX);
    /** Run events with time <= t, then advance now to t. */
    std::uint64_t runUntil(Time t);

    Time now() const { return now_; }
    bool empty() const { return queue_.empty(); }
    std::size_t pending() const { return queue_.size(); }
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Time when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return b.when < a.when;
            if (a.priority != b.priority)
                return b.priority < a.priority;
            return b.seq < a.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    Time now_{0};
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sim
} // namespace kelle

#endif // KELLE_SIM_EVENT_QUEUE_HPP
