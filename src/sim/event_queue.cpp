#include "sim/event_queue.hpp"

#include "common/log.hpp"

namespace kelle {
namespace sim {

void
EventQueue::schedule(Time when, Callback cb, int priority)
{
    KELLE_ASSERT(when >= now_, "scheduling into the past: ", when.sec(),
                 " < ", now_.sec());
    queue_.push(Event{when, priority, seq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Time delta, Callback cb, int priority)
{
    schedule(now_ + delta, std::move(cb), priority);
}

bool
EventQueue::runNext()
{
    if (queue_.empty())
        return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::runAll(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && runNext())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Time t)
{
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().when <= t) {
        runNext();
        ++n;
    }
    if (t > now_)
        now_ = t;
    return n;
}

} // namespace sim
} // namespace kelle
