#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace kelle {
namespace sim {

void
EventQueue::schedule(Time when, Callback cb, int priority)
{
    KELLE_ASSERT(when >= now_, "scheduling into the past: ", when.sec(),
                 " < ", now_.sec());
    heap_.push_back(Event{when, priority, seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::scheduleAfter(Time delta, Callback cb, int priority)
{
    schedule(now_ + delta, std::move(cb), priority);
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::runAll(std::uint64_t limit)
{
    std::uint64_t n = 0;
    while (n < limit && runNext())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runBefore(Time t)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.front().when < t) {
        runNext();
        ++n;
    }
    return n;
}

void
EventQueue::advanceTo(Time t)
{
    KELLE_ASSERT(heap_.empty() || !(heap_.front().when < t),
                 "advancing the clock past a pending event: ",
                 heap_.empty() ? 0.0 : heap_.front().when.sec(),
                 " < ", t.sec());
    if (t > now_)
        now_ = t;
}

std::uint64_t
EventQueue::runUntil(Time t)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.front().when <= t) {
        runNext();
        ++n;
    }
    if (t > now_)
        now_ = t;
    return n;
}

} // namespace sim
} // namespace kelle
