#include "sim/workloads.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace kelle {
namespace sim {

Task
lambada()
{
    return Task{"LA", 128, 512, 128, 64, 10};
}

Task
triviaQa()
{
    return Task{"TQ", 512, 2048, 1024, 512, 10};
}

Task
qasper()
{
    return Task{"QP", 1024, 5120, 1024, 512, 10};
}

Task
pg19()
{
    return Task{"PG19", 512, 8192, 2048, 1024, 10};
}

Task
wikitext2()
{
    return Task{"WK2", 512, 1024, 512, 256, 10};
}

std::vector<Task>
hardwareTasks()
{
    return {lambada(), triviaQa(), qasper(), pg19()};
}

accel::Workload
makeWorkload(const Task &task, const model::ModelConfig &model,
             std::size_t batch)
{
    accel::Workload w;
    w.name = task.name;
    w.model = model;
    w.ctxLen = task.ctxLen;
    w.decLen = task.decLen;
    w.batch = batch;
    return w;
}

Task
scaledForTiny(const Task &task, std::size_t target_seq)
{
    const double total = static_cast<double>(task.ctxLen + task.decLen);
    const double scale = static_cast<double>(target_seq) / total;
    auto scaled = [&](std::size_t v, std::size_t lo) {
        return std::max<std::size_t>(
            lo, static_cast<std::size_t>(static_cast<double>(v) * scale));
    };
    Task t;
    t.name = task.name + "-tiny";
    t.ctxLen = scaled(task.ctxLen, 16);
    t.decLen = scaled(task.decLen, 32);
    t.budget = scaled(task.budget, 24);
    t.recentWindow = scaled(task.recentWindow, 8);
    t.sinkTokens = std::max<std::size_t>(
        2, static_cast<std::size_t>(task.sinkTokens * scale));
    // Keep the invariant budget > sink + recent that the cache
    // validator enforces.
    if (t.budget <= t.sinkTokens + t.recentWindow)
        t.budget = t.sinkTokens + t.recentWindow + 8;
    return t;
}

kv::KvCacheConfig
cacheConfigFor(const Task &task, kv::Policy policy)
{
    switch (policy) {
      case kv::Policy::Full:
        return kv::makeFullConfig();
      case kv::Policy::Streaming:
        return kv::makeStreamingConfig(task.budget, task.sinkTokens,
                                       task.recentWindow);
      case kv::Policy::H2O:
        return kv::makeH2OConfig(task.budget, task.recentWindow);
      case kv::Policy::Aerp:
        return kv::makeAerpConfig(task.budget, task.sinkTokens,
                                  task.recentWindow);
    }
    KELLE_PANIC("unknown policy");
}

} // namespace sim
} // namespace kelle
