/**
 * @file
 * Two-dimensional adaptive refresh policy (2DRP, Section 4.2).
 *
 * 2DRP assigns each stored eDRAM cell one of four refresh intervals
 * based on (token importance group) x (bit significance): the MSBs of
 * high-score tokens refresh most often, the LSBs of low-score tokens
 * least often. The refresh *power* of a group is inversely
 * proportional to its interval, so the effective average interval
 * across groups is the harmonic mean — which for the paper's interval
 * set (0.36 / 5.4 / 1.44 / 7.2 ms) is the 1.05 ms the paper quotes,
 * with an average retention failure rate of ~2e-3.
 */

#ifndef KELLE_EDRAM_REFRESH_POLICY_HPP
#define KELLE_EDRAM_REFRESH_POLICY_HPP

#include <array>
#include <string>

#include "common/units.hpp"
#include "edram/retention.hpp"

namespace kelle {
namespace edram {

/** The four 2DRP refresh groups (Figure 7b/c). */
enum class RefreshGroup
{
    HstMsb = 0, ///< high-score token, bits 15..8
    HstLsb = 1, ///< high-score token, bits 7..0
    LstMsb = 2, ///< low-score token, bits 15..8
    LstLsb = 3, ///< low-score token, bits 7..0
};

inline constexpr std::size_t kNumRefreshGroups = 4;

std::string toString(RefreshGroup g);

/** Per-group refresh interval assignment. */
struct RefreshIntervals
{
    std::array<Time, kNumRefreshGroups> interval = {};

    Time of(RefreshGroup g) const
    {
        return interval[static_cast<std::size_t>(g)];
    }
    Time &of(RefreshGroup g)
    {
        return interval[static_cast<std::size_t>(g)];
    }

    /** The paper's deployment set (Section 7.1). */
    static RefreshIntervals paper2drp();

    /** Uniform policy: every group refreshed at the same interval. */
    static RefreshIntervals uniform(Time t);

    /**
     * Refresh-rate-weighted (harmonic-mean) average interval; this is
     * what determines total refresh energy for equal-sized groups.
     */
    Time averageInterval() const;

    /** Scale all four intervals by a factor (retention-time studies). */
    RefreshIntervals scaled(double factor) const;
};

/** Couples an interval set with a retention model. */
class TwoDRefreshPolicy
{
  public:
    TwoDRefreshPolicy(RefreshIntervals intervals, RetentionModel retention);

    /** Bit-flip probability per read for a group (P(T < interval)). */
    double failureRate(RefreshGroup g) const;

    /** Mean failure rate across the four equal-sized groups. */
    double averageFailureRate() const;

    /**
     * The uniform interval whose failure rate equals this policy's
     * average failure rate — the iso-accuracy uniform baseline used in
     * Table 4 and Figure 15b.
     */
    Time isoAccuracyUniformInterval() const;

    const RefreshIntervals &intervals() const { return intervals_; }
    const RetentionModel &retention() const { return retention_; }

  private:
    RefreshIntervals intervals_;
    RetentionModel retention_;
};

} // namespace edram
} // namespace kelle

#endif // KELLE_EDRAM_REFRESH_POLICY_HPP
