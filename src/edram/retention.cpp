#include "edram/retention.hpp"

#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace edram {

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    KELLE_ASSERT(p > 0.0 && p < 1.0, "quantile domain error: ", p);

    // Acklam's rational approximation (relative error < 1.15e-9),
    // refined with one Halley step against the exact CDF.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    double x;
    if (p < plow) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step.
    const double e = normalCdf(x) - p;
    const double u =
        e * std::sqrt(2.0 * 3.14159265358979323846) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

RetentionModel::RetentionModel(double mu, double sigma)
    : mu_(mu), sigma_(sigma)
{
    KELLE_ASSERT(sigma > 0.0, "retention sigma must be positive");
}

RetentionModel
RetentionModel::calibrate(Time t1, double p1, Time t2, double p2)
{
    KELLE_ASSERT(t1.sec() > 0 && t2.sec() > t1.sec() && p2 > p1,
                 "calibration points must be ordered");
    const double z1 = normalQuantile(p1);
    const double z2 = normalQuantile(p2);
    const double lt1 = std::log(t1.sec());
    const double lt2 = std::log(t2.sec());
    const double sigma = (lt2 - lt1) / (z2 - z1);
    const double mu = lt1 - sigma * z1;
    return RetentionModel(mu, sigma);
}

RetentionModel
RetentionModel::paper65nm()
{
    return calibrate(Time::micros(45), 1e-6, Time::micros(1778), 1e-3);
}

double
RetentionModel::failureProbability(Time interval) const
{
    if (interval.sec() <= 0.0)
        return 0.0;
    return normalCdf((std::log(interval.sec()) - mu_) / sigma_);
}

Time
RetentionModel::intervalForFailureRate(double p) const
{
    return Time::seconds(std::exp(mu_ + sigma_ * normalQuantile(p)));
}

Time
RetentionModel::sampleRetention(Rng &rng) const
{
    return Time::seconds(std::exp(mu_ + sigma_ * rng.gaussian()));
}

} // namespace edram
} // namespace kelle
