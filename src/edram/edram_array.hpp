/**
 * @file
 * Transaction-level model of the Kelle KV-cache eDRAM subsystem
 * (Figure 10): 32 banks organized as four lanes — Key-MSB, Key-LSB,
 * Value-MSB, Value-LSB — of 8 banks each, a 4-bit importance-score
 * register file with one entry per row, an eviction controller, and
 * two refresh controllers (one over the MSB lanes, one over the LSB
 * lanes) each maintaining separate HST and LST interval timers.
 *
 * The model tracks time at nanosecond resolution: demand accesses
 * occupy banks, refresh passes are scheduled into idle windows
 * ("the refresh operation is triggered when the KV vectors are not
 *  used by the model, so the refresh latency can be hidden",
 * Section 5.1), and energy for access, refresh and leakage is
 * accounted explicitly.
 */

#ifndef KELLE_EDRAM_EDRAM_ARRAY_HPP
#define KELLE_EDRAM_EDRAM_ARRAY_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "edram/refresh_policy.hpp"

namespace kelle {
namespace edram {

/** The four bank lanes of Figure 10. */
enum class Lane
{
    KeyMsb = 0,
    KeyLsb = 1,
    ValueMsb = 2,
    ValueLsb = 3,
};

inline constexpr std::size_t kNumLanes = 4;

/** Physical/electrical parameters (Table 1, 65 nm, 105 C). */
struct EdramArrayConfig
{
    Bytes capacity = Bytes::mib(4);
    std::size_t banksPerLane = 8; ///< 4 lanes x 8 banks = 32 banks
    /** Row payload per lane (128 bits in Figure 10). */
    Bytes laneRowBytes = Bytes::count(16);
    Bandwidth totalBandwidth = Bandwidth::gibPerSec(256);
    Time accessLatency = Time::nanos(1.9);
    EnergyPerByte accessEnergy = EnergyPerByte::picojoules(84.8);
    /** Read+write energy of refreshing one byte (1.14 mJ / 4 MiB). */
    EnergyPerByte refreshEnergy = EnergyPerByte::picojoules(272.0);
    /** Leakage power scaled to the configured capacity. */
    Power leakagePer4Mib = Power::milliwatts(154);

    std::size_t totalBanks() const { return kNumLanes * banksPerLane; }
    Bandwidth
    perBankBandwidth() const
    {
        return Bandwidth::bytesPerSec(totalBandwidth.value /
                                      static_cast<double>(totalBanks()));
    }
    /** Number of addressable rows (token entries) per lane bank set. */
    std::size_t rowCapacity() const;
    Power
    leakage() const
    {
        return Power::watts(leakagePer4Mib.w() * capacity.inMib() / 4.0);
    }
};

/** Completed-transaction timing result. */
struct AccessResult
{
    Time start;
    Time complete;
};

/** The banked KV eDRAM array with 2DRP refresh controllers. */
class KvEdramArray
{
  public:
    KvEdramArray(const EdramArrayConfig &cfg, RefreshIntervals intervals);

    /** Allocate/overwrite a token row; returns write timing. */
    AccessResult writeRow(std::size_t row, Time now);
    /** Read one token row across all four lanes in parallel. */
    AccessResult readRow(std::size_t row, Time now);
    /** Read only one lane of a row (e.g. recompute needs x once). */
    AccessResult readLane(std::size_t row, Lane lane, Time now);
    /** Invalidate a row (eviction controller). */
    void evictRow(std::size_t row);

    /** Update the 4-bit importance score register of a row. */
    void setScore(std::size_t row, std::uint8_t score4);
    std::uint8_t score(std::size_t row) const;
    /** Scores at or above this value belong to the HST group. */
    void setHstThreshold(std::uint8_t threshold);

    /**
     * Advance wall time, executing due refresh passes. Refresh work is
     * overlapped with bank idle time; any residue that could not be
     * hidden is accumulated as stall time.
     */
    void advanceTo(Time now);

    /** Energy consumed so far (access + refresh + leakage up to now). */
    Energy totalEnergy(Time now) const;
    Energy refreshEnergySpent() const { return refreshEnergy_; }
    Energy accessEnergySpent() const { return accessEnergy_; }
    Time hiddenRefreshTime() const { return hiddenRefresh_; }
    Time stallTime() const { return stall_; }
    std::uint64_t refreshOps() const { return refreshOps_; }
    std::size_t validRows() const;

    const EdramArrayConfig &config() const { return cfg_; }
    const stats::Group &statistics() const { return stats_; }

  private:
    struct Row
    {
        bool valid = false;
        std::uint8_t score = 0;
    };

    /** One refresh timer per (controller in {MSB, LSB}) x (HST/LST). */
    struct GroupTimer
    {
        Time nextDue;
        Time interval;
        bool msbController = false;
        bool hstGroup = false;
    };

    std::size_t bankOf(std::size_t row) const
    {
        return row % cfg_.banksPerLane;
    }
    Time &bankFree(Lane lane, std::size_t bank);
    Time perRowTime() const;
    void runRefreshPass(const GroupTimer &timer, Time due);

    EdramArrayConfig cfg_;
    std::vector<Row> rows_;
    /** nextFree per (lane, bank). */
    std::array<std::vector<Time>, kNumLanes> bankFree_;
    /** End of the last *demand* occupancy per (lane, bank); used to
     *  attribute refresh time to hidden vs stalling work. */
    std::array<std::vector<Time>, kNumLanes> demandBusy_;
    std::array<GroupTimer, 4> timers_;
    std::uint8_t hstThreshold_ = 8;

    Time lastAdvance_;
    Energy accessEnergy_;
    Energy refreshEnergy_;
    Time hiddenRefresh_;
    Time stall_;
    std::uint64_t refreshOps_ = 0;
    stats::Group stats_{"kv_edram"};
};

} // namespace edram
} // namespace kelle

#endif // KELLE_EDRAM_EDRAM_ARRAY_HPP
