#include "edram/edram_array.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace kelle {
namespace edram {

std::size_t
EdramArrayConfig::rowCapacity() const
{
    // A row spans all four lanes: each lane stores laneRowBytes of it.
    const double row_bytes = laneRowBytes.b() * kNumLanes;
    return static_cast<std::size_t>(capacity.b() / row_bytes);
}

KvEdramArray::KvEdramArray(const EdramArrayConfig &cfg,
                           RefreshIntervals intervals)
    : cfg_(cfg), rows_(cfg.rowCapacity()), lastAdvance_(Time::seconds(0)),
      accessEnergy_(Energy::joules(0)), refreshEnergy_(Energy::joules(0)),
      hiddenRefresh_(Time::seconds(0)), stall_(Time::seconds(0))
{
    KELLE_ASSERT(cfg.banksPerLane > 0, "need at least one bank per lane");
    for (auto &lane : bankFree_)
        lane.assign(cfg.banksPerLane, Time::seconds(0));
    for (auto &lane : demandBusy_)
        lane.assign(cfg.banksPerLane, Time::seconds(0));

    // MSB controller covers Key-MSB + Value-MSB lanes; LSB controller
    // the two LSB lanes. Each controller has an HST and an LST timer
    // (Section 5.1: "two refresh controllers ... executing 2DRP
    // separately over MSB and LSB banks").
    timers_[0] = {intervals.of(RefreshGroup::HstMsb),
                  intervals.of(RefreshGroup::HstMsb), true, true};
    timers_[1] = {intervals.of(RefreshGroup::LstMsb),
                  intervals.of(RefreshGroup::LstMsb), true, false};
    timers_[2] = {intervals.of(RefreshGroup::HstLsb),
                  intervals.of(RefreshGroup::HstLsb), false, true};
    timers_[3] = {intervals.of(RefreshGroup::LstLsb),
                  intervals.of(RefreshGroup::LstLsb), false, false};
}

Time &
KvEdramArray::bankFree(Lane lane, std::size_t bank)
{
    return bankFree_[static_cast<std::size_t>(lane)][bank];
}

Time
KvEdramArray::perRowTime() const
{
    // Streaming one lane-row out of one bank at the per-bank bandwidth.
    return cfg_.laneRowBytes / cfg_.perBankBandwidth();
}

AccessResult
KvEdramArray::writeRow(std::size_t row, Time now)
{
    KELLE_ASSERT(row < rows_.size(), "row out of range");
    advanceTo(now);
    rows_[row].valid = true;

    const std::size_t bank = bankOf(row);
    Time start = now;
    Time demand_ready = now;
    for (std::size_t l = 0; l < kNumLanes; ++l) {
        start = std::max(start, bankFree_[l][bank]);
        demand_ready = std::max(demand_ready, demandBusy_[l][bank]);
    }
    // Any wait beyond pending demand work is refresh-induced stall.
    if (start > demand_ready)
        stall_ += start - demand_ready;
    const Time complete = start + perRowTime() + cfg_.accessLatency;
    for (std::size_t l = 0; l < kNumLanes; ++l) {
        bankFree_[l][bank] = complete;
        demandBusy_[l][bank] = complete;
    }

    accessEnergy_ +=
        cfg_.accessEnergy * Bytes(cfg_.laneRowBytes.b() * kNumLanes);
    stats_.add("writes", 1);
    return {start, complete};
}

AccessResult
KvEdramArray::readRow(std::size_t row, Time now)
{
    KELLE_ASSERT(row < rows_.size(), "row out of range");
    KELLE_ASSERT(rows_[row].valid, "read of an invalid row ", row);
    advanceTo(now);

    const std::size_t bank = bankOf(row);
    Time start = now;
    Time demand_ready = now;
    for (std::size_t l = 0; l < kNumLanes; ++l) {
        start = std::max(start, bankFree_[l][bank]);
        demand_ready = std::max(demand_ready, demandBusy_[l][bank]);
    }
    if (start > demand_ready)
        stall_ += start - demand_ready;
    const Time complete = start + perRowTime() + cfg_.accessLatency;
    for (std::size_t l = 0; l < kNumLanes; ++l) {
        bankFree_[l][bank] = complete;
        demandBusy_[l][bank] = complete;
    }

    accessEnergy_ +=
        cfg_.accessEnergy * Bytes(cfg_.laneRowBytes.b() * kNumLanes);
    stats_.add("reads", 1);
    return {start, complete};
}

AccessResult
KvEdramArray::readLane(std::size_t row, Lane lane, Time now)
{
    KELLE_ASSERT(row < rows_.size(), "row out of range");
    KELLE_ASSERT(rows_[row].valid, "read of an invalid row ", row);
    advanceTo(now);

    const std::size_t bank = bankOf(row);
    const Time start = std::max(now, bankFree(lane, bank));
    const Time demand_ready = std::max(
        now, demandBusy_[static_cast<std::size_t>(lane)][bank]);
    if (start > demand_ready)
        stall_ += start - demand_ready;
    const Time complete = start + perRowTime() + cfg_.accessLatency;
    bankFree(lane, bank) = complete;
    demandBusy_[static_cast<std::size_t>(lane)][bank] = complete;

    accessEnergy_ += cfg_.accessEnergy * cfg_.laneRowBytes;
    stats_.add("lane_reads", 1);
    return {start, complete};
}

void
KvEdramArray::evictRow(std::size_t row)
{
    KELLE_ASSERT(row < rows_.size(), "row out of range");
    rows_[row].valid = false;
    rows_[row].score = 0;
    stats_.add("evictions", 1);
}

void
KvEdramArray::setScore(std::size_t row, std::uint8_t score4)
{
    KELLE_ASSERT(row < rows_.size(), "row out of range");
    KELLE_ASSERT(score4 < 16, "scores are 4-bit (Figure 10)");
    rows_[row].score = score4;
}

std::uint8_t
KvEdramArray::score(std::size_t row) const
{
    return rows_.at(row).score;
}

void
KvEdramArray::setHstThreshold(std::uint8_t threshold)
{
    hstThreshold_ = threshold;
}

void
KvEdramArray::runRefreshPass(const GroupTimer &timer, Time due)
{
    // Count the rows of this group: the controller walks the register
    // file and refreshes the rows whose score class matches.
    std::size_t count = 0;
    for (const auto &row : rows_) {
        if (!row.valid)
            continue;
        const bool hst = row.score >= hstThreshold_;
        if (hst == timer.hstGroup)
            ++count;
    }
    if (count == 0)
        return;

    // Each refreshed row touches the two lanes of the controller
    // (Key + Value at one significance), read-modify-write.
    const double bytes = static_cast<double>(count) *
                         cfg_.laneRowBytes.b() * 2.0;
    refreshEnergy_ += cfg_.refreshEnergy * Bytes(bytes);
    refreshOps_ += count;
    stats_.add("refresh_rows", static_cast<double>(count));

    // Refresh occupies the controller's banks. Work that fits in the
    // idle window before the next demand access is hidden; the rest
    // stalls subsequent accesses (Section 5.1 hides refresh behind
    // compute phases, so in steady state stall should be ~0).
    // Refresh never preempts demand: it executes at its due time or
    // queues behind whatever occupies the bank. Whether that work ends
    // up stalling anything is decided at the *next demand access*
    // (see the stall attribution in readRow/writeRow).
    const Time busy =
        Time::seconds(bytes / cfg_.totalBandwidth.value * 2.0);
    const std::size_t lane_lo = timer.msbController ? 0u : 1u;
    for (std::size_t lane = lane_lo; lane < kNumLanes; lane += 2) {
        for (std::size_t b = 0; b < cfg_.banksPerLane; ++b) {
            Time &free_at = bankFree_[lane][b];
            free_at = std::max(free_at, due) + busy;
            hiddenRefresh_ += busy;
        }
    }
}

void
KvEdramArray::advanceTo(Time now)
{
    if (now < lastAdvance_)
        return;
    // Execute refresh passes in due order up to `now`.
    while (true) {
        GroupTimer *next = nullptr;
        for (auto &t : timers_) {
            if (t.nextDue <= now && (!next || t.nextDue < next->nextDue))
                next = &t;
        }
        if (!next)
            break;
        runRefreshPass(*next, next->nextDue);
        next->nextDue += next->interval;
    }
    lastAdvance_ = now;
}

Energy
KvEdramArray::totalEnergy(Time now) const
{
    return accessEnergy_ + refreshEnergy_ + cfg_.leakage() * now;
}

std::size_t
KvEdramArray::validRows() const
{
    std::size_t n = 0;
    for (const auto &row : rows_)
        n += row.valid;
    return n;
}

} // namespace edram
} // namespace kelle
