/**
 * @file
 * eDRAM retention-time model (Figure 4 of the paper).
 *
 * Gain-cell eDRAM loses charge over time; the time until a cell's
 * stored bit becomes unreadable (its retention time) varies cell to
 * cell with across-chip threshold-voltage variation and is well
 * described by a log-normal distribution (Kong et al., ITC'08, the
 * paper's retention citation [38]). The model is calibrated against
 * the failure points the paper annotates at 105 C:
 *
 *     P(T < 45 us)   = 1e-6   (the "safe" refresh interval, Table 1)
 *     P(T < 1778 us) = 1e-3
 *
 * which also reproduces P(T < 9120 us) ~ 1e-2 and, for the four 2DRP
 * intervals of Section 7.1, an average retention failure rate of
 * ~2e-3 exactly as the paper reports.
 */

#ifndef KELLE_EDRAM_RETENTION_HPP
#define KELLE_EDRAM_RETENTION_HPP

#include "common/rng.hpp"
#include "common/units.hpp"

namespace kelle {
namespace edram {

/** Standard normal CDF. */
double normalCdf(double z);
/** Inverse standard normal CDF (Acklam's rational approximation). */
double normalQuantile(double p);

/** Log-normal retention-time distribution of an eDRAM cell. */
class RetentionModel
{
  public:
    /** Construct from the log-normal parameters (ln seconds). */
    RetentionModel(double mu, double sigma);

    /**
     * Calibrate mu/sigma from two (interval, failure-probability)
     * points, i.e. solve P(T < t1) = p1 and P(T < t2) = p2.
     */
    static RetentionModel calibrate(Time t1, double p1, Time t2, double p2);

    /** The 65 nm @ 105 C model used throughout the paper. */
    static RetentionModel paper65nm();

    /**
     * Probability that a cell refreshed every `interval` has lost its
     * bit by the end of the interval: P(T < interval).
     */
    double failureProbability(Time interval) const;

    /** Inverse: the refresh interval with the given failure rate. */
    Time intervalForFailureRate(double p) const;

    /** Draw one cell's retention time. */
    Time sampleRetention(Rng &rng) const;

    double mu() const { return mu_; }
    double sigma() const { return sigma_; }

  private:
    double mu_;    ///< mean of ln(T / 1s)
    double sigma_; ///< stddev of ln(T / 1s)
};

} // namespace edram
} // namespace kelle

#endif // KELLE_EDRAM_RETENTION_HPP
