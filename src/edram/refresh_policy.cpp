#include "edram/refresh_policy.hpp"

#include "common/log.hpp"

namespace kelle {
namespace edram {

std::string
toString(RefreshGroup g)
{
    switch (g) {
      case RefreshGroup::HstMsb:
        return "HST-MSB";
      case RefreshGroup::HstLsb:
        return "HST-LSB";
      case RefreshGroup::LstMsb:
        return "LST-MSB";
      case RefreshGroup::LstLsb:
        return "LST-LSB";
    }
    return "?";
}

RefreshIntervals
RefreshIntervals::paper2drp()
{
    RefreshIntervals r;
    // Section 7.1: 0.36 ms, 5.4 ms, 1.44 ms and 7.2 ms for the MSBs of
    // HST, LSBs of HST, MSBs of LST and LSBs of LST respectively.
    r.of(RefreshGroup::HstMsb) = Time::millis(0.36);
    r.of(RefreshGroup::HstLsb) = Time::millis(5.4);
    r.of(RefreshGroup::LstMsb) = Time::millis(1.44);
    r.of(RefreshGroup::LstLsb) = Time::millis(7.2);
    return r;
}

RefreshIntervals
RefreshIntervals::uniform(Time t)
{
    RefreshIntervals r;
    for (auto &iv : r.interval)
        iv = t;
    return r;
}

Time
RefreshIntervals::averageInterval() const
{
    double inv_sum = 0.0;
    for (const auto &iv : interval) {
        KELLE_ASSERT(iv.sec() > 0.0, "refresh interval must be positive");
        inv_sum += 1.0 / iv.sec();
    }
    return Time::seconds(static_cast<double>(interval.size()) / inv_sum);
}

RefreshIntervals
RefreshIntervals::scaled(double factor) const
{
    RefreshIntervals r;
    for (std::size_t i = 0; i < interval.size(); ++i)
        r.interval[i] = interval[i] * factor;
    return r;
}

TwoDRefreshPolicy::TwoDRefreshPolicy(RefreshIntervals intervals,
                                     RetentionModel retention)
    : intervals_(intervals), retention_(retention)
{}

double
TwoDRefreshPolicy::failureRate(RefreshGroup g) const
{
    return retention_.failureProbability(intervals_.of(g));
}

double
TwoDRefreshPolicy::averageFailureRate() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < kNumRefreshGroups; ++i)
        acc += failureRate(static_cast<RefreshGroup>(i));
    return acc / static_cast<double>(kNumRefreshGroups);
}

Time
TwoDRefreshPolicy::isoAccuracyUniformInterval() const
{
    return retention_.intervalForFailureRate(averageFailureRate());
}

} // namespace edram
} // namespace kelle
