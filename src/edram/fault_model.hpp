/**
 * @file
 * Bit-flip fault injection driven by the refresh policy.
 *
 * Implements the kv::FaultInjector interface: when the KV cache reads
 * stored fp16 words, each bit may have decayed since its last refresh.
 * The flip probability of a bit depends on its 2DRP group — the token's
 * importance class (HST/LST, supplied by the cache per read) crossed
 * with the bit's significance (MSB byte = bits 15..8, LSB byte =
 * bits 7..0 of each word, the layout of Figure 7c / Figure 10).
 *
 * Sampling uses geometric skipping so injection cost scales with the
 * number of flips, not the number of bits.
 */

#ifndef KELLE_EDRAM_FAULT_MODEL_HPP
#define KELLE_EDRAM_FAULT_MODEL_HPP

#include <cstdint>

#include "common/rng.hpp"
#include "kvcache/fault.hpp"
#include "edram/refresh_policy.hpp"

namespace kelle {
namespace edram {

/** FaultInjector whose flip rates derive from a TwoDRefreshPolicy. */
class RefreshFaultModel final : public kv::FaultInjector
{
  public:
    RefreshFaultModel(const TwoDRefreshPolicy &policy, std::uint64_t seed);

    /** Uniform-rate injector (Figure 8a-style experiments). */
    static RefreshFaultModel uniformRate(double p, std::uint64_t seed);

    /**
     * Injector with explicit per-group rates
     * [HstMsb, HstLsb, LstMsb, LstLsb].
     */
    static RefreshFaultModel
    withRates(const std::array<double, kNumRefreshGroups> &rates,
              std::uint64_t seed);

    void corrupt(std::span<std::uint16_t> words,
                 const kv::FaultContext &ctx) override;

    /** Total number of bits flipped so far (observability for tests). */
    std::uint64_t flipsInjected() const { return flips_; }
    /** Total number of bits exposed to injection so far. */
    std::uint64_t bitsProcessed() const { return bits_; }

    double rateOf(RefreshGroup g) const
    {
        return rates_[static_cast<std::size_t>(g)];
    }

  private:
    RefreshFaultModel(const std::array<double, kNumRefreshGroups> &rates,
                      std::uint64_t seed, int tag);

    /**
     * Flip bits of one byte-lane (high or low byte of every word) with
     * probability p per bit, via geometric skipping.
     */
    void corruptLane(std::span<std::uint16_t> words, bool high_byte,
                     double p);

    std::array<double, kNumRefreshGroups> rates_ = {};
    Rng rng_;
    std::uint64_t flips_ = 0;
    std::uint64_t bits_ = 0;
};

} // namespace edram
} // namespace kelle

#endif // KELLE_EDRAM_FAULT_MODEL_HPP
