#include "edram/fault_model.hpp"

#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace edram {

RefreshFaultModel::RefreshFaultModel(
    const std::array<double, kNumRefreshGroups> &rates, std::uint64_t seed,
    int)
    : rates_(rates), rng_(seed)
{
    for (double p : rates_)
        KELLE_ASSERT(p >= 0.0 && p <= 1.0, "flip rate out of range: ", p);
}

RefreshFaultModel::RefreshFaultModel(const TwoDRefreshPolicy &policy,
                                     std::uint64_t seed)
    : RefreshFaultModel(
          {policy.failureRate(RefreshGroup::HstMsb),
           policy.failureRate(RefreshGroup::HstLsb),
           policy.failureRate(RefreshGroup::LstMsb),
           policy.failureRate(RefreshGroup::LstLsb)},
          seed, 0)
{}

RefreshFaultModel
RefreshFaultModel::uniformRate(double p, std::uint64_t seed)
{
    return RefreshFaultModel({p, p, p, p}, seed, 0);
}

RefreshFaultModel
RefreshFaultModel::withRates(
    const std::array<double, kNumRefreshGroups> &rates, std::uint64_t seed)
{
    return RefreshFaultModel(rates, seed, 0);
}

void
RefreshFaultModel::corruptLane(std::span<std::uint16_t> words,
                               bool high_byte, double p)
{
    const std::uint64_t nbits = 8 * words.size();
    bits_ += nbits;
    if (p <= 0.0 || words.empty())
        return;
    if (p >= 1.0) {
        for (auto &w : words)
            w ^= high_byte ? 0xFF00u : 0x00FFu;
        flips_ += nbits;
        return;
    }

    // Geometric skipping: successive flip positions are separated by
    // Geometric(p) gaps, so cost is O(#flips) instead of O(#bits).
    const double log1mp = std::log1p(-p);
    std::uint64_t idx = 0;
    while (true) {
        double u = rng_.uniform();
        while (u <= 0.0)
            u = rng_.uniform();
        idx += static_cast<std::uint64_t>(std::log(u) / log1mp);
        if (idx >= nbits)
            break;
        const std::uint64_t word = idx / 8;
        const unsigned bit = static_cast<unsigned>(idx % 8) +
                             (high_byte ? 8u : 0u);
        words[word] ^= static_cast<std::uint16_t>(1u << bit);
        ++flips_;
        ++idx;
    }
}

void
RefreshFaultModel::corrupt(std::span<std::uint16_t> words,
                           const kv::FaultContext &ctx)
{
    const RefreshGroup msb =
        ctx.highScoreToken ? RefreshGroup::HstMsb : RefreshGroup::LstMsb;
    const RefreshGroup lsb =
        ctx.highScoreToken ? RefreshGroup::HstLsb : RefreshGroup::LstLsb;
    corruptLane(words, /*high_byte=*/true, rateOf(msb));
    corruptLane(words, /*high_byte=*/false, rateOf(lsb));
}

} // namespace edram
} // namespace kelle
