/**
 * @file
 * `PhaseProfiler`: wall-clock self-profiling of the simulation core,
 * answering "where does sim wall time go" — lookahead windows vs
 * serialized fallback rounds vs inline decode fast-forward vs trace
 * generation and roll-up. Reported by `bench_simspeed` (phase table
 * plus a `phases` section in its JSON).
 *
 * Accumulators are relaxed atomics, so worker lanes of the parallel
 * cluster engine add concurrently without synchronizing (TSan-clean).
 * Wall-clock readings are inherently nondeterministic; the profiler
 * never feeds back into simulation state, so sim outputs stay
 * bit-identical with or without it. Engines hold a null pointer when
 * profiling is off — the disabled hook is one branch, no clock read.
 */

#ifndef KELLE_OBS_PROFILE_HPP
#define KELLE_OBS_PROFILE_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace kelle {
namespace obs {

class PhaseProfiler
{
  public:
    enum class Phase : std::size_t
    {
        TraceGen,    ///< arrival-trace generation
        SerialDrive, ///< serial engine: the whole event-queue drain
        Window,      ///< parallel engine: lock-free lookahead windows
        SerialRound, ///< parallel engine: serialized fallback rounds
        FastForward, ///< inline decode-boundary replay (both engines)
        RollUp,      ///< report summarization
        kCount,
    };
    static constexpr std::size_t kPhases =
        static_cast<std::size_t>(Phase::kCount);
    static const char *phaseName(Phase p);

    /** Add one measured stretch: `sec` wall seconds, `n` occurrences
     *  (windows run, boundaries replayed, ...). Thread-safe. */
    void
    add(Phase p, double sec, std::uint64_t n = 1)
    {
        Entry &e = entries_[static_cast<std::size_t>(p)];
        e.nanos.fetch_add(static_cast<std::uint64_t>(sec * 1e9),
                          std::memory_order_relaxed);
        e.count.fetch_add(n, std::memory_order_relaxed);
    }

    double
    seconds(Phase p) const
    {
        return static_cast<double>(
                   entries_[static_cast<std::size_t>(p)].nanos.load(
                       std::memory_order_relaxed)) /
               1e9;
    }
    std::uint64_t
    count(Phase p) const
    {
        return entries_[static_cast<std::size_t>(p)].count.load(
            std::memory_order_relaxed);
    }
    /** Sum over every phase (phases may nest; see phase docs). */
    double totalSeconds() const;

    /** RAII stretch timer; a null profiler skips the clock reads. */
    class Timer
    {
      public:
        Timer(PhaseProfiler *p, Phase phase) : p_(p), phase_(phase)
        {
            if (p_ != nullptr)
                t0_ = std::chrono::steady_clock::now();
        }
        ~Timer()
        {
            if (p_ != nullptr)
                p_->add(phase_,
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0_)
                            .count());
        }
        Timer(const Timer &) = delete;
        Timer &operator=(const Timer &) = delete;

      private:
        PhaseProfiler *p_;
        Phase phase_;
        std::chrono::steady_clock::time_point t0_;
    };

  private:
    struct Entry
    {
        std::atomic<std::uint64_t> nanos{0};
        std::atomic<std::uint64_t> count{0};
    };
    std::array<Entry, kPhases> entries_;
};

} // namespace obs
} // namespace kelle

#endif // KELLE_OBS_PROFILE_HPP
