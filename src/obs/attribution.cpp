#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace kelle {
namespace obs {

const char *
toString(LatencyComponent c)
{
    switch (c) {
    case LatencyComponent::QueueWait:
        return "queue_wait";
    case LatencyComponent::KvStall:
        return "kv_stall";
    case LatencyComponent::PrefillCompute:
        return "prefill_compute";
    case LatencyComponent::ChunkInterleave:
        return "chunk_interleave";
    case LatencyComponent::DecodeCompute:
        return "decode_compute";
    case LatencyComponent::BatchInterference:
        return "batch_interference";
    case LatencyComponent::PreemptLoss:
        return "preempt_loss";
    case LatencyComponent::DecodeStall:
        return "decode_stall";
    }
    return "?";
}

const char *
toString(MissCause c)
{
    switch (c) {
    case MissCause::None:
        return "none";
    case MissCause::Queue:
        return "queue";
    case MissCause::KvPressure:
        return "kv_pressure";
    case MissCause::Interference:
        return "interference";
    case MissCause::Preempt:
        return "preempt";
    case MissCause::Compute:
        return "compute";
    case MissCause::OverloadReject:
        return "overload_reject";
    case MissCause::DeviceFault:
        return "device_fault";
    }
    return "?";
}

double
exactRemainder(double total, double partial)
{
    double r = total - partial;
    // The rounded difference is within an ulp of the fixpoint; walk
    // the last steps so the fold identity holds bitwise.
    while (partial + r < total)
        r = std::nextafter(r, std::numeric_limits<double>::infinity());
    while (partial + r > total)
        r = std::nextafter(r, -std::numeric_limits<double>::infinity());
    return r;
}

void
closeFold(double total, double *c, std::size_t last)
{
    c[last] = exactRemainder(total, foldComponents(c, last));
    if (foldComponents(c, last + 1) == total)
        return;
    // Round-to-even parked every candidate sum on a midpoint (the
    // partial fold carries a live half-ulp bit and the target's last
    // bit is odd). Shifting a donor component by an ulp moves the
    // midpoint; alternate +-k ulps around its original value until
    // the fold closes. A single donor can be parity-locked — the
    // fold's intermediate rounding keeps the reachable partials on
    // midpoints for every nudge — so donors are tried largest
    // magnitude first: a different addend takes a different rounding
    // path through the fold. One ulp on the first donor suffices in
    // practice; the rest of the walk is belt and braces.
    std::size_t order[kLatencyComponentCount];
    for (std::size_t i = 0; i < last; ++i)
        order[i] = i;
    std::stable_sort(order, order + last,
                     [&](std::size_t a, std::size_t b) {
                         return std::fabs(c[a]) > std::fabs(c[b]);
                     });
    for (std::size_t oi = 0; oi < last; ++oi) {
        const std::size_t donor = order[oi];
        const double donor0 = c[donor];
        for (int k = 1; k <= 16; ++k) {
            double d = donor0;
            const double dir =
                k % 2 != 0 ? std::numeric_limits<double>::infinity()
                           : -std::numeric_limits<double>::infinity();
            for (int step = 0; step < (k + 1) / 2; ++step)
                d = std::nextafter(d, dir);
            c[donor] = d;
            c[last] = exactRemainder(total, foldComponents(c, last));
            if (foldComponents(c, last + 1) == total)
                return;
        }
        c[donor] = donor0;
    }
    // Unreachable for engine magnitudes (pinned by the sweep tests);
    // keep the best remainder-only answer rather than a wild donor.
    c[last] = exactRemainder(total, foldComponents(c, last));
}

MissCause
classifyMiss(bool rejected, bool missed_ttft, bool missed_tpot,
             const double c[kLatencyComponentCount], bool faulted)
{
    if (rejected)
        return faulted ? MissCause::DeviceFault
                       : MissCause::OverloadReject;
    if (!missed_ttft && !missed_tpot)
        return MissCause::None;
    // A fault inflated whichever component the vote below would have
    // blamed; the disruption owns the miss.
    if (faulted)
        return MissCause::DeviceFault;

    // Buckets in tie-break order. Only the components of the missed
    // deadline(s) vote: a TPOT-only miss must not be blamed on queue
    // wait that happened before the (met) first token.
    const MissCause order[] = {MissCause::Queue, MissCause::KvPressure,
                               MissCause::Interference,
                               MissCause::Preempt, MissCause::Compute};
    double bucket[5] = {};
    if (missed_ttft) {
        bucket[0] += c[0]; // queue_wait
        bucket[1] += c[1]; // kv_stall
        bucket[2] += c[3]; // chunk_interleave
        bucket[4] += c[2]; // prefill_compute
    }
    if (missed_tpot) {
        bucket[2] += c[5] + c[7]; // batch_interference + decode_stall
        bucket[3] += c[6];        // preempt_loss
        bucket[4] += c[4];        // decode_compute
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < 5; ++i)
        if (bucket[i] > bucket[best])
            best = i;
    return order[best];
}

void
LatencyWaterfall::beginRun(std::size_t n_requests)
{
    entries_.assign(n_requests, WaterfallEntry{});
}

WaterfallEntry &
LatencyWaterfall::at(std::size_t idx)
{
    // Owners pre-size via beginRun; growth here only covers bare
    // DeviceEngine use and always happens on the coordinator (enqueue
    // runs with workers joined), mirroring the shared request table.
    if (idx >= entries_.size())
        entries_.resize(idx + 1);
    return entries_[idx];
}

void
LatencyWaterfall::onArrival(std::size_t idx, std::uint64_t req_id,
                            Time t, double ttft_deadline_sec,
                            double tpot_target_sec, std::size_t dec_len)
{
    WaterfallEntry &e = at(idx);
    e.reqId = req_id;
    e.arrival = t;
    e.ttftDeadlineSec = ttft_deadline_sec;
    e.tpotTargetSec = tpot_target_sec;
    e.decLen = dec_len;
}

void
LatencyWaterfall::onDeferred(std::size_t idx, Time t)
{
    WaterfallEntry &e = at(idx);
    if (!e.deferred) {
        e.deferred = true;
        e.firstDefer = t;
    }
}

void
LatencyWaterfall::onAdmitted(std::size_t idx, Time t)
{
    at(idx).admitted = t;
}

void
LatencyWaterfall::onPrefillChunk(std::size_t idx, double sec)
{
    at(idx).components[static_cast<std::size_t>(
        LatencyComponent::PrefillCompute)] += sec;
}

void
LatencyWaterfall::onFirstToken(std::size_t idx, Time t)
{
    at(idx).firstToken = t;
}

void
LatencyWaterfall::onPreempt(std::size_t idx, Time t)
{
    WaterfallEntry &e = at(idx);
    // At most one preemption per request (engine invariant); keep the
    // first stamp if that ever changes so c7 stays a single interval.
    if (!e.preempted) {
        e.preempted = true;
        e.preemptAt = t;
    }
}

void
LatencyWaterfall::onResume(std::size_t idx, Time t)
{
    at(idx).resumeAt = t;
}

void
LatencyWaterfall::onDecodeBoundary(std::size_t idx, double step_sec,
                                   double batch)
{
    WaterfallEntry &e = at(idx);
    const double fair = step_sec / batch;
    e.components[static_cast<std::size_t>(
        LatencyComponent::DecodeCompute)] += fair;
    e.components[static_cast<std::size_t>(
        LatencyComponent::BatchInterference)] += step_sec - fair;
}

void
LatencyWaterfall::finalize(WaterfallEntry &e)
{
    double *c = e.components;
    const auto ix = [](LatencyComponent comp) {
        return static_cast<std::size_t>(comp);
    };
    if (e.rejected) {
        // A reject never produced a token: its whole life was queue
        // wait. (A preempted victim re-dispatched to a pool that can
        // never fit its floor is rejected too; its pre-preempt
        // service is discarded from the waterfall exactly as its
        // emitted tokens were.)
        for (std::size_t i = 0; i < kLatencyComponentCount; ++i)
            c[i] = 0.0;
        c[ix(LatencyComponent::QueueWait)] =
            (e.finished - e.arrival).sec();
        e.ttftSec = c[ix(LatencyComponent::QueueWait)];
        e.e2eSec = c[ix(LatencyComponent::QueueWait)];
    } else {
        e.ttftSec = (e.firstToken - e.arrival).sec();
        e.e2eSec = (e.finished - e.arrival).sec();
        // First admission verdict: the first deferral if the
        // allocator ever said no, else the admission itself.
        const Time verdict = e.deferred ? e.firstDefer : e.admitted;
        c[ix(LatencyComponent::QueueWait)] =
            (verdict - e.arrival).sec();
        c[ix(LatencyComponent::KvStall)] =
            e.deferred ? (e.admitted - e.firstDefer).sec() : 0.0;
        // c3 (prefill) accumulated in onPrefillChunk; c4 closes the
        // TTFT fold exactly (an earlier component donates the
        // tie-break ulp when rounding demands one).
        closeFold(e.ttftSec, c, ix(LatencyComponent::ChunkInterleave));
        // c5/c6 accumulated at decode boundaries; c7 is the single
        // preempt -> resume interval (second-life queue/prefill live
        // inside it); c8 closes the E2E fold exactly.
        c[ix(LatencyComponent::PreemptLoss)] =
            e.preempted ? (e.resumeAt - e.preemptAt).sec() : 0.0;
        closeFold(e.e2eSec, c, ix(LatencyComponent::DecodeStall));
    }
    e.missedTtft = !e.rejected && e.ttftDeadlineSec > 0.0 &&
                   e.ttftSec > e.ttftDeadlineSec;
    e.missedTpot = false;
    if (!e.rejected && e.tpotTargetSec > 0.0 && e.decLen > 0) {
        const double tpot = (e.finished - e.firstToken).sec() /
                            static_cast<double>(e.decLen);
        e.missedTpot = tpot > e.tpotTargetSec;
    }
    e.cause = classifyMiss(e.rejected, e.missedTtft, e.missedTpot, c,
                           e.faulted);
    e.terminal = true;
}

void
LatencyWaterfall::onFaultEvict(std::size_t idx, Time t)
{
    WaterfallEntry &e = at(idx);
    e.faulted = true;
    // A victim that had served its first token regenerates through
    // the preempt machinery — reuse the c7 interval (keep the first
    // stamp if it was already a preempt victim). Pre-first-token
    // victims restart their whole TTFT window: their lost time folds
    // into c1/c4, no preempt interval to open.
    if (e.firstToken.sec() > 0.0 && !e.preempted) {
        e.preempted = true;
        e.preemptAt = t;
    }
}

void
LatencyWaterfall::onCompleted(std::size_t idx, Time t,
                              std::uint32_t device)
{
    WaterfallEntry &e = at(idx);
    e.finished = t;
    e.device = device;
    e.rejected = false;
    finalize(e);
}

void
LatencyWaterfall::onRejected(std::size_t idx, Time t,
                             std::uint32_t device)
{
    WaterfallEntry &e = at(idx);
    e.finished = t;
    e.device = device;
    e.rejected = true;
    finalize(e);
}

void
LatencyWaterfall::onFaultFailed(std::size_t idx, Time t,
                                std::uint32_t device)
{
    WaterfallEntry &e = at(idx);
    e.faulted = true;
    e.finished = t;
    e.device = device;
    e.rejected = true;
    finalize(e);
}

AttributionReport
LatencyWaterfall::report(std::size_t n_devices) const
{
    AttributionReport rep;
    std::size_t slots = n_devices;
    for (const WaterfallEntry &e : entries_)
        if (e.terminal && e.device + 1u > slots)
            slots = e.device + 1u;
    rep.devices.resize(slots);
    for (const WaterfallEntry &e : entries_) {
        if (!e.terminal)
            continue;
        AttributionReport::Device &dev = rep.devices[e.device];
        ++rep.terminal;
        ++dev.terminal;
        if (e.rejected)
            ++rep.rejected;
        else
            ++rep.completed;
        for (std::size_t i = 0; i < kLatencyComponentCount; ++i) {
            rep.componentTotals[i] += e.components[i];
            dev.componentTotals[i] += e.components[i];
        }
        ++rep.missCounts[static_cast<std::size_t>(e.cause)];
        ++dev.missCounts[static_cast<std::size_t>(e.cause)];
        if (e.cause != MissCause::None) {
            ++rep.misses;
            ++dev.misses;
        }
    }
    return rep;
}

void
exportAttributionMetrics(const LatencyWaterfall &wf,
                         MetricsRegistry &reg)
{
    const AttributionReport rep =
        wf.report(/*n_devices=*/0);
    char name[96];
    for (std::size_t i = 0; i < kLatencyComponentCount; ++i) {
        const char *comp = toString(static_cast<LatencyComponent>(i));
        std::snprintf(name, sizeof name, "attribution.%s_total_sec",
                      comp);
        reg.setGauge(name, rep.componentTotals[i]);
    }
    for (std::size_t i = 0; i < kMissCauseCount; ++i) {
        // The fault cause appears only on fault runs, keeping the
        // pre-fault metrics surface (and its digests) unchanged.
        if (static_cast<MissCause>(i) == MissCause::DeviceFault &&
            rep.missCounts[i] == 0)
            continue;
        std::snprintf(name, sizeof name, "attribution.miss.%s",
                      toString(static_cast<MissCause>(i)));
        reg.setGauge(name, static_cast<double>(rep.missCounts[i]));
    }
    reg.setGauge("attribution.misses",
                 static_cast<double>(rep.misses));
    reg.setGauge("attribution.terminal",
                 static_cast<double>(rep.terminal));

    // Terminal entries in (finish time, request id) order: the
    // cumulative per-component series and histogram fills are
    // insertion-order independent.
    std::vector<std::size_t> order;
    order.reserve(wf.entries().size());
    for (std::size_t i = 0; i < wf.entries().size(); ++i)
        if (wf.entries()[i].terminal)
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const WaterfallEntry &ea = wf.entries()[a];
                  const WaterfallEntry &eb = wf.entries()[b];
                  if (ea.finished.sec() != eb.finished.sec())
                      return ea.finished.sec() < eb.finished.sec();
                  return ea.reqId < eb.reqId;
              });

    double cum[kLatencyComponentCount] = {};
    for (std::size_t idx : order) {
        const WaterfallEntry &e = wf.entries()[idx];
        for (std::size_t i = 0; i < kLatencyComponentCount; ++i) {
            const char *comp =
                toString(static_cast<LatencyComponent>(i));
            std::snprintf(name, sizeof name, "attribution.%s_sec",
                          comp);
            reg.histogram(name, 0.0, 120.0, 24)
                .observe(e.components[i]);
            cum[i] += e.components[i];
            std::snprintf(name, sizeof name,
                          "attribution.%s_cum_sec", comp);
            reg.series(name).push(e.finished.sec(), cum[i]);
        }
    }
}

} // namespace obs
} // namespace kelle
