/**
 * @file
 * SLO root-cause attribution: per-request latency waterfalls and miss
 * classification.
 *
 * `LatencyWaterfall` is stamped by the device engines with one entry
 * per request, decomposing the measured TTFT and end-to-end latency
 * into eight *exactly-summing* components (the waterfall):
 *
 *   c1 queue_wait         arrival -> first admission verdict
 *   c2 kv_stall           first allocator deferral -> admission
 *   c3 prefill_compute    this request's own prefill chunk latencies
 *   c4 chunk_interleave   TTFT remainder: time between admission and
 *                         first token not spent on own prefill —
 *                         chunk-interleaved decode steps and other
 *                         requests' chunks sharing the engine
 *   c5 decode_compute     fair share (latency / batch) of every decode
 *                         step this request participated in
 *   c6 batch_interference the rest of those steps' latency — the
 *                         price of sharing the batch
 *   c7 preempt_loss       preemption -> resumed decoding (requeue,
 *                         re-dispatch, re-prefill of the lost KV)
 *   c8 decode_stall       E2E remainder: decode-boundary gaps the
 *                         request sat through without stepping —
 *                         inflicted prefills, KV-blocked rounds, and
 *                         paged-growth stalls (page growth is free in
 *                         the current timing model, so its share
 *                         reads 0 until a tiered pool prices it)
 *
 * Exactness contract (pinned by tests/test_attribution.cpp): with the
 * left-to-right fold `((c1 + c2) + c3) + ...`, the first four
 * components sum *bitwise* to the measured TTFT and all eight to the
 * measured E2E. c4 and c8 are remainders nudged to the exact fixpoint
 * (`exactRemainder`), so the identity holds for every request, not
 * just up to rounding. All inputs are deterministic sim-time values,
 * so waterfalls are bit-identical across `ClusterConfig::threads`
 * values and fastSim on/off.
 *
 * `classifyMiss` labels each SLO miss with its dominant cause by
 * comparing the component groups responsible for the missed deadline
 * (queue / kv-pressure / interference / preempt / compute;
 * overload-reject for requests the pool could never hold). The same
 * classifier is shared with the offline `TraceReader`, so online
 * reports and `kelle_trace` agree on the taxonomy.
 *
 * Cost contract: engines hold a `LatencyWaterfall *` that is null when
 * attribution is off — every hook is a pointer test, no allocation,
 * no output perturbation (the pre-attribution golden digests are
 * recorded with the hooks compiled in and disabled). Thread safety
 * mirrors the shared request table: each entry is written only by the
 * device currently serving that request, and cross-device handoffs
 * synchronize through the cluster coordinator (TSan-checked).
 */

#ifndef KELLE_OBS_ATTRIBUTION_HPP
#define KELLE_OBS_ATTRIBUTION_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace kelle {
namespace obs {

class MetricsRegistry;

/** The eight waterfall components, in fold order (see file header). */
enum class LatencyComponent : std::uint8_t
{
    QueueWait,
    KvStall,
    PrefillCompute,
    ChunkInterleave,
    DecodeCompute,
    BatchInterference,
    PreemptLoss,
    DecodeStall,
};
inline constexpr std::size_t kLatencyComponentCount = 8;
/** Snake-case name, e.g. "queue_wait" (report/CLI vocabulary). */
const char *toString(LatencyComponent c);

/** Dominant cause of an SLO miss (None = both deadlines met). */
enum class MissCause : std::uint8_t
{
    None,
    Queue,          ///< waiting for a first admission verdict
    KvPressure,     ///< allocator deferrals (KV pool exhausted)
    Interference,   ///< sharing the engine/batch with other requests
    Preempt,        ///< preempt-and-requeue loss
    Compute,        ///< the request's own compute (SLO infeasible)
    OverloadReject, ///< floor exceeded the whole pool
    DeviceFault,    ///< crash eviction / fault shed / retry exhaustion
};
inline constexpr std::size_t kMissCauseCount = 8;
const char *toString(MissCause c);

/**
 * Left-to-right fold of the first `n` components — THE summation
 * convention of the exactness contract.
 */
inline double
foldComponents(const double *c, std::size_t n)
{
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        s += c[i];
    return s;
}

/**
 * The remainder `r` with `partial + r == total` *bitwise*, when one
 * exists. Starts from the rounded difference and nudges by ulps
 * toward the fixpoint. A fixpoint always exists when `partial` and
 * `total` are within a factor of two (Sterbenz: the difference is
 * exact); outside that band, round-to-even can park every candidate
 * sum on a midpoint so that no representable remainder reaches an
 * odd-last-bit total — `closeFold` handles that case.
 */
double exactRemainder(double total, double partial);

/**
 * Close a component fold bitwise: set `c[last]` so that the
 * left-to-right fold of `c[0..last]` equals `total` exactly. Almost
 * always `exactRemainder` alone suffices; when rounding makes the
 * remainder-only fixpoint unreachable, an earlier component (donors
 * tried largest magnitude first) is nudged by single ulps around its
 * value to shift the rounding midpoint until the identity holds — a
 * perturbation below any reporting precision, applied
 * deterministically.
 */
void closeFold(double total, double *c, std::size_t last);

/**
 * Dominant-cause label for a terminal request. TTFT misses weigh
 * {queue: c1, kv-pressure: c2, compute: c3, interference: c4}; TPOT
 * misses add {compute: c5, interference: c6 + c8, preempt: c7}. The
 * largest bucket wins; ties break in the order queue, kv-pressure,
 * interference, preempt, compute. Rejected requests are always
 * OverloadReject; requests that met both deadlines are None.
 * `faulted` requests (crash-evicted, fault-shed, or retry-exhausted)
 * pre-empt the component vote: a device fault dominates whatever
 * latency it inflated, so any miss or rejection they suffer is
 * DeviceFault.
 */
MissCause classifyMiss(bool rejected, bool missed_ttft,
                       bool missed_tpot,
                       const double c[kLatencyComponentCount],
                       bool faulted = false);

/** One request's waterfall (terminal once `terminal` is set). */
struct WaterfallEntry
{
    std::uint64_t reqId = 0;
    std::uint32_t device = 0; ///< device that finished/rejected it
    bool terminal = false;
    bool rejected = false;
    bool deferred = false;  ///< saw >= 1 first-life deferral
    bool preempted = false; ///< lost its KV grant mid-decode
    bool faulted = false;   ///< hit by a device fault (evict/shed/fail)
    bool missedTtft = false;
    bool missedTpot = false;
    MissCause cause = MissCause::None;

    /** @name Lifecycle stamps (sim time). @{ */
    Time arrival;
    Time firstDefer; ///< meaningful only when `deferred`
    Time admitted;
    Time firstToken;
    Time preemptAt; ///< meaningful only when `preempted`
    Time resumeAt;  ///< second-life first token (when `preempted`)
    Time finished;  ///< completion or rejection
    /** @} */

    /** SLO targets stamped at arrival (0 = disabled). */
    double ttftDeadlineSec = 0.0;
    double tpotTargetSec = 0.0;
    std::size_t decLen = 0;

    /** Measured latencies the components fold to (0 for rejects'
     *  TTFT; a reject's E2E is its arrival -> rejection wait). */
    double ttftSec = 0.0;
    double e2eSec = 0.0;
    /** The waterfall, indexed by LatencyComponent. */
    double components[kLatencyComponentCount] = {};
};

/**
 * Per-cause / per-device roll-up of a waterfall (index order over the
 * entries, so the totals are deterministic).
 */
struct AttributionReport
{
    std::size_t terminal = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t misses = 0; ///< terminal entries with cause != None
    /** Seconds per component summed over terminal requests. */
    double componentTotals[kLatencyComponentCount] = {};
    /** Terminal requests per dominant cause (index: MissCause). */
    std::size_t missCounts[kMissCauseCount] = {};

    struct Device
    {
        std::size_t terminal = 0;
        std::size_t misses = 0;
        double componentTotals[kLatencyComponentCount] = {};
        std::size_t missCounts[kMissCauseCount] = {};
    };
    std::vector<Device> devices;
};

/**
 * The per-request waterfall table, indexed like the owner's request
 * vector. The owner (Scheduler / ClusterEngine) calls `beginRun`
 * after trace generation; device engines stamp entries through the
 * on* hooks (guarded by their null-pointer test) and finalize each
 * entry at its terminal event.
 */
class LatencyWaterfall
{
  public:
    /** Size the table for a run (clears previous entries). */
    void beginRun(std::size_t n_requests);

    /** @name Engine hooks (first-life events unless noted). @{ */
    void onArrival(std::size_t idx, std::uint64_t req_id, Time t,
                   double ttft_deadline_sec, double tpot_target_sec,
                   std::size_t dec_len);
    void onDeferred(std::size_t idx, Time t);
    void onAdmitted(std::size_t idx, Time t);
    /** One of this request's own prefill chunks ran for `sec`. */
    void onPrefillChunk(std::size_t idx, double sec);
    void onFirstToken(std::size_t idx, Time t);
    /** Any-life: the request lost its grant mid-decode. */
    void onPreempt(std::size_t idx, Time t);
    /** Second-life prefill completion (decoding resumes). */
    void onResume(std::size_t idx, Time t);
    /** The request participated in a decode step of `step_sec`
     *  latency shared by `batch` members (any life). */
    void onDecodeBoundary(std::size_t idx, double step_sec,
                          double batch);
    /** Any-life: crash eviction or fault-pressure shed. Marks the
     *  entry faulted; for post-first-token victims it doubles as a
     *  preempt stamp so c7 absorbs the regeneration interval. */
    void onFaultEvict(std::size_t idx, Time t);
    /** Terminal events: compute components, classify, seal. @{ */
    void onCompleted(std::size_t idx, Time t, std::uint32_t device);
    void onRejected(std::size_t idx, Time t, std::uint32_t device);
    /** Fault-retry budget exhausted: rejection + faulted. */
    void onFaultFailed(std::size_t idx, Time t, std::uint32_t device);
    /** @} @} */

    const std::vector<WaterfallEntry> &entries() const
    {
        return entries_;
    }

    /** Roll up over >= `n_devices` device slots. */
    AttributionReport report(std::size_t n_devices) const;

  private:
    WaterfallEntry &at(std::size_t idx);
    void finalize(WaterfallEntry &e);

    std::vector<WaterfallEntry> entries_;
};

/**
 * Export a waterfall into a `MetricsRegistry`: per-component
 * `attribution.<component>_total_sec` gauges and
 * `attribution.<component>_sec` histograms over terminal requests,
 * `attribution.miss.<cause>` counts, and cumulative
 * `attribution.<component>_cum_sec` time series sampled at terminal
 * events in (time, id) order.
 */
void exportAttributionMetrics(const LatencyWaterfall &wf,
                              MetricsRegistry &reg);

} // namespace obs
} // namespace kelle

#endif // KELLE_OBS_ATTRIBUTION_HPP
