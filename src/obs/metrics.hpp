/**
 * @file
 * `MetricsRegistry`: named counters/gauges/histograms plus time
 * series, with fixed-interval resampling and a compact CSV/JSON dump.
 *
 * Scalars and histogram observations are pushed by the benches from
 * deterministic run outputs (ClusterReport roll-ups, trace events), so
 * every dump is a pure function of the run config. Time series hold
 * (sim-time, value) samples at the instants the value actually changed
 * (they are the trace's counter events — `ingestTrace` lifts them from
 * a `TraceRecorder`); `sample()` resamples every series onto one
 * fixed-interval grid with last-value-hold semantics, which is what
 * the CSV/JSON dumps emit. Registries iterate in name order, so dumps
 * are byte-stable.
 *
 * CSV schema (round-tripped by `parseCsv`, pinned by test_obs):
 *
 *   t_sec,<series name>,...          header
 *   <%.17g>,<%.17g>,...              one row per grid point
 */

#ifndef KELLE_OBS_METRICS_HPP
#define KELLE_OBS_METRICS_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kelle {
namespace obs {

class TraceRecorder;

/** One (sim-time, value) observation. */
struct SeriesSample
{
    double tSec = 0.0;
    double value = 0.0;
};

/** A value sampled at the instants it changed. */
class TimeSeries
{
  public:
    /** Append an observation; `t_sec` must be non-decreasing. */
    void
    push(double t_sec, double value)
    {
        samples_.push_back(SeriesSample{t_sec, value});
    }
    const std::vector<SeriesSample> &samples() const
    {
        return samples_;
    }
    /** Last value at or before `t_sec` (`def` before the first). */
    double valueAt(double t_sec, double def = 0.0) const;
    /** Largest observation timestamp (0 when empty). */
    double endSec() const
    {
        return samples_.empty() ? 0.0 : samples_.back().tSec;
    }

  private:
    std::vector<SeriesSample> samples_;
};

/** Fixed linear bins over [lo, hi); out-of-range values clamp. */
struct Histogram
{
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> bins;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void observe(double v);

    /**
     * Nearest-rank quantile estimated from the bins: the upper edge
     * of the bin holding the ceil(q*count)'th observation, clamped to
     * the observed [min, max] envelope (so the estimate is exact at
     * the extremes and never leaves the data range). `q` in [0, 1];
     * 0 when the histogram is empty. The JSON dump emits p50/p95/p99
     * from this so downstream tools never re-derive percentiles from
     * raw buckets.
     */
    double quantile(double q) const;
};

class MetricsRegistry
{
  public:
    /** @name Scalars (gauges and monotone counters). @{ */
    void setGauge(const std::string &name, double v);
    void addCounter(const std::string &name, double dv);
    /** Value of a scalar, `def` when absent. */
    double gauge(const std::string &name, double def = 0.0) const;
    /** @} */

    /** Get-or-create; bounds apply only on creation. */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t nbins);
    TimeSeries &series(const std::string &name);

    /**
     * Lift a trace's counter tracks and request lifecycle into this
     * registry: per device `<dev>.kv_bytes` / `<dev>.queue_depth` /
     * `<dev>.batch` / `<dev>.refresh_j` series, plus `ttft_sec` and
     * `e2e_sec` histograms over every completed request.
     */
    void ingestTrace(const TraceRecorder &rec);

    /** Every series on one grid: t = 0, dt, 2dt, ... >= latest end. */
    struct SampledTable
    {
        double intervalSec = 0.0;
        std::vector<std::string> names;
        /** rows[k] = [t_sec, value per name...] */
        std::vector<std::vector<double>> rows;
    };
    SampledTable sample(double interval_sec) const;

    std::string toCsv(double interval_sec) const;
    std::string toJson(double interval_sec) const;
    /** Parse a toCsv() dump; false on malformed input. */
    static bool parseCsv(const std::string &text, SampledTable *out);

    /** toJson()/toCsv() by file extension (.csv); logs failures. */
    bool writeFile(const std::string &path, double interval_sec) const;

  private:
    std::map<std::string, double> scalars_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, TimeSeries> series_;
};

} // namespace obs
} // namespace kelle

#endif // KELLE_OBS_METRICS_HPP
