#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/log.hpp"
#include "obs/trace.hpp"

namespace kelle {
namespace obs {

double
TimeSeries::valueAt(double t_sec, double def) const
{
    // First sample strictly after t: the answer precedes it.
    const auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t_sec,
        [](double t, const SeriesSample &s) { return t < s.tSec; });
    if (it == samples_.begin())
        return def;
    return (it - 1)->value;
}

void
Histogram::observe(double v)
{
    if (count == 0) {
        min = v;
        max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    ++count;
    sum += v;
    if (bins.empty() || !(hi > lo))
        return;
    const double frac = (v - lo) / (hi - lo);
    std::ptrdiff_t i =
        static_cast<std::ptrdiff_t>(frac *
                                    static_cast<double>(bins.size()));
    i = std::clamp<std::ptrdiff_t>(
        i, 0, static_cast<std::ptrdiff_t>(bins.size()) - 1);
    ++bins[static_cast<std::size_t>(i)];
}

double
Histogram::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (bins.empty() || !(hi > lo))
        return max;
    const double qc = std::clamp(q, 0.0, 1.0);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(qc * static_cast<double>(count)));
    if (rank == 0)
        rank = 1;
    const double width = (hi - lo) / static_cast<double>(bins.size());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        cum += bins[i];
        if (cum >= rank)
            return std::clamp(
                lo + width * static_cast<double>(i + 1), min, max);
    }
    return max;
}

void
MetricsRegistry::setGauge(const std::string &name, double v)
{
    scalars_[name] = v;
}

void
MetricsRegistry::addCounter(const std::string &name, double dv)
{
    scalars_[name] += dv;
}

double
MetricsRegistry::gauge(const std::string &name, double def) const
{
    const auto it = scalars_.find(name);
    return it == scalars_.end() ? def : it->second;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double lo,
                           double hi, std::size_t nbins)
{
    const auto it = histograms_.find(name);
    if (it != histograms_.end())
        return it->second;
    Histogram h;
    h.lo = lo;
    h.hi = hi;
    h.bins.assign(nbins, 0);
    return histograms_.emplace(name, std::move(h)).first->second;
}

TimeSeries &
MetricsRegistry::series(const std::string &name)
{
    return series_[name];
}

void
MetricsRegistry::ingestTrace(const TraceRecorder &rec)
{
    Histogram &ttft = histogram("ttft_sec", 0.0, 120.0, 24);
    Histogram &e2e = histogram("e2e_sec", 0.0, 600.0, 24);
    std::unordered_map<std::uint64_t, double> arrivals;
    for (const auto &track : rec.deviceTracks()) {
        const std::string &dev = track->name();
        TimeSeries &kv = series(dev + ".kv_bytes");
        TimeSeries &depth = series(dev + ".queue_depth");
        TimeSeries &batch = series(dev + ".batch");
        TimeSeries &refresh = series(dev + ".refresh_j");
        // Paged-pool series materialize only when the trace carries
        // paged counters, keeping contiguous-mode exports unchanged.
        TimeSeries *pagesFree = nullptr;
        TimeSeries *pagesShared = nullptr;
        TimeSeries *prefixHits = nullptr;
        double refresh_j = 0.0;
        for (const TraceEvent &e : track->events()) {
            const double t = e.tsUs / 1e6;
            switch (e.kind) {
              case TraceEventKind::Arrival:
                arrivals.emplace(e.req, t);
                break;
              case TraceEventKind::FirstToken: {
                const auto it = arrivals.find(e.req);
                if (it != arrivals.end())
                    ttft.observe(t - it->second);
                break;
              }
              case TraceEventKind::Complete: {
                const auto it = arrivals.find(e.req);
                if (it != arrivals.end())
                    e2e.observe(t - it->second);
                break;
              }
              case TraceEventKind::KvInUse:
                kv.push(t, e.v0);
                break;
              case TraceEventKind::QueueDepth:
                depth.push(t, e.v0);
                break;
              case TraceEventKind::PrefillStep:
                refresh_j += e.v1;
                refresh.push(t, refresh_j);
                break;
              case TraceEventKind::DecodeStep:
                refresh_j += e.v1;
                refresh.push(t, refresh_j);
                batch.push(t, e.v0);
                break;
              case TraceEventKind::KvPagesFree:
                if (pagesFree == nullptr)
                    pagesFree = &series(dev + ".kv_pages_free");
                pagesFree->push(t, e.v0);
                break;
              case TraceEventKind::KvPagesShared:
                if (pagesShared == nullptr)
                    pagesShared = &series(dev + ".kv_pages_shared");
                pagesShared->push(t, e.v0);
                break;
              case TraceEventKind::KvPrefixHits:
                if (prefixHits == nullptr)
                    prefixHits =
                        &series(dev + ".kv_prefix_hit_tokens");
                prefixHits->push(t, e.v0);
                break;
              default:
                break;
            }
        }
    }
}

MetricsRegistry::SampledTable
MetricsRegistry::sample(double interval_sec) const
{
    SampledTable out;
    out.intervalSec = interval_sec;
    double end = 0.0;
    for (const auto &kv : series_) {
        out.names.push_back(kv.first);
        end = std::max(end, kv.second.endSec());
    }
    if (out.names.empty() || !(interval_sec > 0.0))
        return out;
    // Grid covers the latest observation: last point >= end.
    const std::size_t rows =
        static_cast<std::size_t>(std::ceil(end / interval_sec)) + 1;
    out.rows.reserve(rows);
    for (std::size_t k = 0; k < rows; ++k) {
        const double t = static_cast<double>(k) * interval_sec;
        std::vector<double> row;
        row.reserve(1 + out.names.size());
        row.push_back(t);
        for (const auto &kv : series_)
            row.push_back(kv.second.valueAt(t));
        out.rows.push_back(std::move(row));
    }
    return out;
}

namespace {

/** %.17g round-trips every double bit-exactly through strtod. */
void
appendExact(std::string &out, double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

} // namespace

std::string
MetricsRegistry::toCsv(double interval_sec) const
{
    const SampledTable table = sample(interval_sec);
    std::string out = "t_sec";
    for (const std::string &name : table.names) {
        out += ',';
        out += name;
    }
    out += '\n';
    for (const auto &row : table.rows) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                out += ',';
            appendExact(out, row[i]);
        }
        out += '\n';
    }
    return out;
}

std::string
MetricsRegistry::toJson(double interval_sec) const
{
    std::string out = "{\"schema\":\"kelle.metrics/v2\",";
    out += "\"interval_sec\":";
    appendExact(out, interval_sec);
    out += ",\n\"scalars\":{";
    bool first = true;
    for (const auto &kv : scalars_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "  \"" + kv.first + "\":";
        appendExact(out, kv.second);
    }
    out += "},\n\"histograms\":{";
    first = true;
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        out += first ? "\n" : ",\n";
        first = false;
        out += "  \"" + kv.first + "\":{\"lo\":";
        appendExact(out, h.lo);
        out += ",\"hi\":";
        appendExact(out, h.hi);
        out += ",\"count\":";
        appendExact(out, static_cast<double>(h.count));
        out += ",\"sum\":";
        appendExact(out, h.sum);
        out += ",\"min\":";
        appendExact(out, h.min);
        out += ",\"max\":";
        appendExact(out, h.max);
        out += ",\"p50\":";
        appendExact(out, h.quantile(0.50));
        out += ",\"p95\":";
        appendExact(out, h.quantile(0.95));
        out += ",\"p99\":";
        appendExact(out, h.quantile(0.99));
        out += ",\"bins\":[";
        for (std::size_t i = 0; i < h.bins.size(); ++i) {
            if (i > 0)
                out += ',';
            appendExact(out, static_cast<double>(h.bins[i]));
        }
        out += "]}";
    }
    out += "},\n\"series\":{\"names\":[";
    const SampledTable table = sample(interval_sec);
    for (std::size_t i = 0; i < table.names.size(); ++i) {
        if (i > 0)
            out += ',';
        out += "\"" + table.names[i] + "\"";
    }
    out += "],\"rows\":[";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        out += r > 0 ? ",\n" : "\n";
        out += '[';
        for (std::size_t i = 0; i < table.rows[r].size(); ++i) {
            if (i > 0)
                out += ',';
            appendExact(out, table.rows[r][i]);
        }
        out += ']';
    }
    out += "]}}\n";
    return out;
}

bool
MetricsRegistry::parseCsv(const std::string &text, SampledTable *out)
{
    *out = SampledTable{};
    std::size_t pos = 0;
    bool header = true;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        std::vector<std::string> cells;
        std::size_t c = 0;
        while (true) {
            const std::size_t comma = line.find(',', c);
            cells.push_back(line.substr(
                c, comma == std::string::npos ? std::string::npos
                                              : comma - c));
            if (comma == std::string::npos)
                break;
            c = comma + 1;
        }
        if (header) {
            if (cells.empty() || cells[0] != "t_sec")
                return false;
            out->names.assign(cells.begin() + 1, cells.end());
            header = false;
            continue;
        }
        if (cells.size() != out->names.size() + 1)
            return false;
        std::vector<double> row;
        row.reserve(cells.size());
        for (const std::string &cell : cells) {
            char *endp = nullptr;
            row.push_back(std::strtod(cell.c_str(), &endp));
            if (endp == cell.c_str() || *endp != '\0')
                return false;
        }
        out->rows.push_back(std::move(row));
    }
    if (out->rows.size() >= 2)
        out->intervalSec = out->rows[1][0] - out->rows[0][0];
    return !header;
}

bool
MetricsRegistry::writeFile(const std::string &path,
                           double interval_sec) const
{
    const bool csv = path.size() >= 4 &&
                     path.compare(path.size() - 4, 4, ".csv") == 0;
    const std::string body =
        csv ? toCsv(interval_sec) : toJson(interval_sec);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        inform("metrics export failed: cannot open ", path);
        return false;
    }
    const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    if (n != body.size()) {
        inform("metrics export failed: short write to ", path);
        return false;
    }
    return true;
}

} // namespace obs
} // namespace kelle
