/**
 * @file
 * Offline reader for the Chrome trace-event JSON that `TraceRecorder`
 * emits: parses the event stream back into structured records,
 * rebuilds every request's lifecycle, and recomputes latency
 * waterfalls and SLO miss causes from the trace alone — the engine
 * behind the `kelle_trace` analytics CLI and the CI round-trip check
 * ("every recorded trace parses with zero unknown/malformed events").
 *
 * The parser is scoped to exactly the serializer in obs/trace.cpp: a
 * two-line header, one event object per line (the separating comma
 * ends the previous line), flat string/number fields plus a one-level
 * `args` object, and a `]}` footer. Anything outside that shape
 * counts as malformed; a well-formed event whose (name, ph) pair is
 * not in the taxonomy counts as unknown. Both tallies are exposed via
 * `stats()` so tests can pin them to zero.
 *
 * Reconstruction notes (why it works offline):
 *  - span edges (`b`/`e`) always carry pid 0, so a request's serving
 *    device comes from its admit/reject *instants*, which carry the
 *    device pid; the completion is attributed to the last admit's pid.
 *  - decode slices are not request-bound; membership is replayed per
 *    device from first_token (join), preempt (leave) and completion
 *    (leave) events in timestamp order — removals sort before
 *    additions before slices at equal timestamps — and each slice's
 *    `batch` arg is the authoritative fair-share divisor.
 *  - fault instants split two ways: `device_fault`/`device_recover`
 *    are device-scoped (no request binding) and only tallied, while
 *    `fault_evict` acts as a preemption (batch leave + c7 interval)
 *    and `fault_fail` (with its `outcome:"failed"` span end) closes
 *    the request as a fault-caused rejection.
 *  - waterfalls use the same component definitions and
 *    `exactRemainder` closure as the online `LatencyWaterfall`, in
 *    microsecond space (the trace's native unit). Offline components
 *    fold bitwise to the trace-derived TTFT/E2E; they are not
 *    byte-compared against the online (full-precision) waterfall —
 *    each is independently deterministic.
 *
 * Determinism: output depends only on the trace bytes, which are
 * themselves byte-identical across thread counts and fastSim on/off,
 * so every report derived here inherits that contract.
 */

#ifndef KELLE_OBS_TRACE_READER_HPP
#define KELLE_OBS_TRACE_READER_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/attribution.hpp"

namespace kelle {
namespace obs {

/** One parsed trace event (fields absent in the JSON stay 0/""). */
struct RawTraceEvent
{
    std::string name;
    char ph = 0; ///< M, b, e, i, X, C
    int pid = 0;
    std::uint64_t id = 0; ///< async span id (b/e events)
    double tsUs = 0.0;
    double durUs = 0.0;
    /** Numeric args (req, device, batch, tokens, value, ...). */
    std::map<std::string, double> args;
    /** args.name of process_name metadata events. */
    std::string metaName;
    /** args.outcome == "rejected" on a rejection span end. */
    bool outcomeRejected = false;
    /** args.outcome == "failed" on a fault-failure span end. */
    bool outcomeFailed = false;
};

/** One request's trace-derived lifecycle and waterfall. */
struct RequestLife
{
    std::uint64_t id = 0;
    std::string task;
    int device = -1;      ///< pid serving at the terminal event
    int firstDevice = -1; ///< pid of the first admission
    bool deferred = false;
    bool preempted = false;
    bool rejected = false;
    bool completed = false;
    /** Hit by a device fault (crash eviction or terminal failure). */
    bool faulted = false;
    bool hasSlo = false;
    double ttftDeadlineSec = 0.0;
    double tpotTargetSec = 0.0;
    /** @name Lifecycle timestamps, µs; -1 = never happened. @{ */
    double arrivalUs = -1.0;
    double firstDeferUs = -1.0;
    double admitUs = -1.0;
    double firstTokenUs = -1.0;
    double preemptUs = -1.0;
    double resumeUs = -1.0;
    double endUs = -1.0; ///< completion or rejection
    /** @} */
    double tokens = 0.0; ///< emitted tokens at completion
    /** @name Waterfall (µs), same layout as WaterfallEntry. @{ */
    double ttftUs = 0.0;
    double e2eUs = 0.0;
    double componentsUs[kLatencyComponentCount] = {};
    bool missedTtft = false;
    bool missedTpot = false;
    MissCause cause = MissCause::None;
    /** @} */
    bool terminal() const { return completed || rejected; }
};

/** Per-device roll-up derived from one trace. */
struct TraceDeviceSummary
{
    std::string name;
    double busyUs = 0.0; ///< sum of prefill + decode slice durations
    std::size_t prefillSlices = 0;
    std::size_t decodeSlices = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t misses = 0;
    double componentTotalsUs[kLatencyComponentCount] = {};
    std::size_t missCounts[kMissCauseCount] = {};
};

class TraceReader
{
  public:
    struct Stats
    {
        std::size_t events = 0;    ///< well-formed events parsed
        std::size_t unknown = 0;   ///< parsed but not in the taxonomy
        std::size_t malformed = 0; ///< lines that failed to parse
        /** Decode slices whose replayed membership size disagreed
         *  with the slice's batch arg (0 on any engine trace). */
        std::size_t batchMismatches = 0;
    };

    /**
     * Parse a full trace document and rebuild the request/device
     * model. Returns false when the document structure itself (header
     * or footer) is wrong; per-event problems are tallied in stats()
     * instead of failing the parse.
     */
    bool parse(const std::string &json);

    const Stats &stats() const { return stats_; }
    const std::vector<RawTraceEvent> &events() const
    {
        return events_;
    }
    /** Process names by pid (index 0 is the requests process). */
    const std::vector<std::string> &processNames() const
    {
        return processNames_;
    }
    /** Requests in id order. */
    const std::vector<RequestLife> &requests() const
    {
        return requests_;
    }
    /** Devices in pid order (pid 1..N). */
    const std::vector<TraceDeviceSummary> &devices() const
    {
        return devices_;
    }

    /** Roll the per-request waterfalls up (index = MissCause). */
    std::size_t missCounts[kMissCauseCount] = {};
    double componentTotalsUs[kLatencyComponentCount] = {};
    std::size_t terminal = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t misses = 0;
    /** @name Fault instants tallied from the trace (0 = no faults). @{ */
    std::size_t deviceFaults = 0;
    std::size_t deviceRecovers = 0;
    std::size_t faultEvictions = 0;
    std::size_t faultFailures = 0;
    /** @} */

  private:
    void buildModel();

    Stats stats_;
    std::vector<RawTraceEvent> events_;
    std::vector<std::string> processNames_;
    std::vector<RequestLife> requests_;
    std::vector<TraceDeviceSummary> devices_;
};

} // namespace obs
} // namespace kelle

#endif // KELLE_OBS_TRACE_READER_HPP
