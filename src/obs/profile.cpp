#include "obs/profile.hpp"

namespace kelle {
namespace obs {

const char *
PhaseProfiler::phaseName(Phase p)
{
    switch (p) {
      case Phase::TraceGen:
        return "trace_gen";
      case Phase::SerialDrive:
        return "serial_drive";
      case Phase::Window:
        return "window";
      case Phase::SerialRound:
        return "serial_round";
      case Phase::FastForward:
        return "fast_forward";
      case Phase::RollUp:
        return "roll_up";
      case Phase::kCount:
        break;
    }
    return "?";
}

double
PhaseProfiler::totalSeconds() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < kPhases; ++i)
        total += seconds(static_cast<Phase>(i));
    return total;
}

} // namespace obs
} // namespace kelle
