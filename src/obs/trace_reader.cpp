#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace kelle {
namespace obs {

namespace {

/**
 * Cursor over one event line. The grammar is exactly what
 * obs/trace.cpp emits: `{"key":value,...}` with string, number and
 * (for "args" only) one nested flat object of string/number values.
 */
struct Cursor
{
    const char *p;
    const char *end;

    bool done() const { return p >= end; }
    bool lit(char c)
    {
        if (done() || *p != c)
            return false;
        ++p;
        return true;
    }
    bool str(std::string &out)
    {
        out.clear();
        if (!lit('"'))
            return false;
        while (!done() && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (done())
                    return false;
            }
            out.push_back(*p++);
        }
        return lit('"');
    }
    bool num(double &out)
    {
        char *after = nullptr;
        out = std::strtod(p, &after);
        if (after == p || after > end)
            return false;
        p = after;
        return true;
    }
};

bool
parseArgs(Cursor &c, RawTraceEvent &ev)
{
    if (!c.lit('{'))
        return false;
    if (c.lit('}'))
        return true;
    std::string key;
    std::string sval;
    for (;;) {
        if (!c.str(key) || !c.lit(':'))
            return false;
        if (!c.done() && *c.p == '"') {
            if (!c.str(sval))
                return false;
            if (key == "name")
                ev.metaName = sval;
            else if (key == "outcome" && sval == "rejected")
                ev.outcomeRejected = true;
            else if (key == "outcome" && sval == "failed")
                ev.outcomeFailed = true;
        } else {
            double v = 0.0;
            if (!c.num(v))
                return false;
            ev.args[key] = v;
        }
        if (c.lit('}'))
            return true;
        if (!c.lit(','))
            return false;
    }
}

bool
parseEventLine(const char *begin, const char *end, RawTraceEvent &ev)
{
    Cursor c{begin, end};
    if (!c.lit('{'))
        return false;
    std::string key;
    std::string sval;
    for (;;) {
        if (!c.str(key) || !c.lit(':'))
            return false;
        if (key == "args") {
            if (!parseArgs(c, ev))
                return false;
        } else if (!c.done() && *c.p == '"') {
            if (!c.str(sval))
                return false;
            if (key == "name")
                ev.name = sval;
            else if (key == "ph" && sval.size() == 1)
                ev.ph = sval[0];
            // "s" and "cat" are presentation-only; accept and drop.
        } else {
            double v = 0.0;
            if (!c.num(v))
                return false;
            if (key == "pid")
                ev.pid = static_cast<int>(v);
            else if (key == "id")
                ev.id = static_cast<std::uint64_t>(v);
            else if (key == "ts")
                ev.tsUs = v;
            else if (key == "dur")
                ev.durUs = v;
            // "tid" is always 0; accept and drop.
        }
        if (c.lit('}'))
            return c.done();
        if (!c.lit(','))
            return false;
    }
}

bool
knownEvent(const RawTraceEvent &ev)
{
    switch (ev.ph) {
    case 'M':
        return ev.name == "process_name";
    case 'b':
    case 'e':
        // Async span edges carry the request's task name, which is
        // free-form; the phase alone identifies them.
        return true;
    case 'i':
        return ev.name == "requeue" || ev.name == "dispatch" ||
               ev.name == "admit" || ev.name == "defer" ||
               ev.name == "reject" || ev.name == "preempt" ||
               ev.name == "first_token" || ev.name == "slo" ||
               ev.name == "device_fault" ||
               ev.name == "device_recover" ||
               ev.name == "fault_evict" || ev.name == "fault_fail";
    case 'X':
        return ev.name == "prefill" || ev.name == "decode";
    case 'C':
        return ev.name == "kv_bytes" || ev.name == "queue_depth" ||
               ev.name == "batch" || ev.name == "refresh_J" ||
               ev.name == "kv_pages_free" ||
               ev.name == "kv_pages_shared" ||
               ev.name == "kv_prefix_hit_tokens";
    default:
        return false;
    }
}

double
argOr(const RawTraceEvent &ev, const char *key, double def)
{
    const auto it = ev.args.find(key);
    return it == ev.args.end() ? def : it->second;
}

/**
 * Lifecycle order at equal timestamps. The file is grouped by track,
 * not globally time-sorted, so each request's events are re-sorted by
 * (ts, rank); the rank breaks the same-instant chains a preemption
 * produces (preempt -> requeue -> dispatch -> second admission all
 * share one sim time).
 */
int
lifecycleRank(const RawTraceEvent &ev)
{
    if (ev.ph == 'b')
        return 0;
    if (ev.ph == 'e')
        return 9;
    if (ev.name == "slo")
        return 1;
    if (ev.name == "dispatch")
        return 2;
    if (ev.name == "requeue")
        return 3;
    if (ev.name == "defer")
        return 4;
    if (ev.name == "admit")
        return 5;
    if (ev.name == "first_token")
        return 6;
    if (ev.name == "preempt" || ev.name == "fault_evict")
        return 7;
    return 8; // reject / fault_fail
}

/** Decode-membership order at equal timestamps: a request that left
 *  at t is out of the slice that starts at t; one that joined at t is
 *  in it. */
enum MemberOp
{
    kRemove = 0,
    kAdd = 1,
    kSlice = 2,
};

struct MemberEvent
{
    double tsUs = 0.0;
    int op = kSlice;
    std::uint64_t req = 0; ///< kRemove / kAdd
    double durUs = 0.0;    ///< kSlice
    double batch = 0.0;    ///< kSlice
};

} // namespace

bool
TraceReader::parse(const std::string &json)
{
    stats_ = Stats{};
    events_.clear();

    // Header is two fixed lines, footer one; events are one object
    // per line with the separating comma ending the previous line.
    std::vector<std::pair<const char *, const char *>> lines;
    const char *p = json.data();
    const char *end = p + json.size();
    while (p < end) {
        const char *nl = static_cast<const char *>(
            std::memchr(p, '\n', static_cast<std::size_t>(end - p)));
        const char *stop = nl == nullptr ? end : nl;
        if (stop > p)
            lines.emplace_back(p, stop);
        p = stop + 1;
    }
    if (lines.size() < 3)
        return false;
    const auto lineIs = [&lines](std::size_t i, const char *want) {
        const std::size_t n = std::strlen(want);
        return static_cast<std::size_t>(lines[i].second -
                                        lines[i].first) == n &&
               std::memcmp(lines[i].first, want, n) == 0;
    };
    if (!lineIs(0, "{\"displayTimeUnit\":\"ms\",") ||
        !lineIs(1, "\"traceEvents\":[") ||
        !lineIs(lines.size() - 1, "]}"))
        return false;

    events_.reserve(lines.size() - 3);
    for (std::size_t i = 2; i + 1 < lines.size(); ++i) {
        const char *b = lines[i].first;
        const char *e = lines[i].second;
        if (e > b && e[-1] == ',')
            --e;
        RawTraceEvent ev;
        if (!parseEventLine(b, e, ev)) {
            ++stats_.malformed;
            continue;
        }
        ++stats_.events;
        if (!knownEvent(ev))
            ++stats_.unknown;
        events_.push_back(std::move(ev));
    }

    buildModel();
    return true;
}

void
TraceReader::buildModel()
{
    processNames_.clear();
    requests_.clear();
    devices_.clear();
    for (std::size_t i = 0; i < kMissCauseCount; ++i)
        missCounts[i] = 0;
    for (std::size_t i = 0; i < kLatencyComponentCount; ++i)
        componentTotalsUs[i] = 0.0;
    terminal = completed = rejected = misses = 0;
    deviceFaults = deviceRecovers = 0;
    faultEvictions = faultFailures = 0;

    int maxPid = 0;
    for (const RawTraceEvent &ev : events_)
        maxPid = std::max(maxPid, ev.pid);
    processNames_.assign(static_cast<std::size_t>(maxPid) + 1, "");
    for (const RawTraceEvent &ev : events_)
        if (ev.ph == 'M' && ev.name == "process_name")
            processNames_[static_cast<std::size_t>(ev.pid)] =
                ev.metaName;
    devices_.resize(processNames_.empty() ? 0
                                          : processNames_.size() - 1);
    for (std::size_t i = 0; i < devices_.size(); ++i)
        devices_[i].name = processNames_[i + 1];

    // ---- Per-request lifecycle ---------------------------------
    std::map<std::uint64_t, std::vector<const RawTraceEvent *>> byReq;
    for (const RawTraceEvent &ev : events_) {
        if (ev.ph == 'b' || ev.ph == 'e') {
            byReq[ev.id].push_back(&ev);
        } else if (ev.ph == 'i') {
            // Device-scoped fault instants carry no request binding;
            // tally them here and keep them out of the lifecycles.
            if (ev.name == "device_fault") {
                ++deviceFaults;
                continue;
            }
            if (ev.name == "device_recover") {
                ++deviceRecovers;
                continue;
            }
            if (ev.name == "fault_evict")
                ++faultEvictions;
            else if (ev.name == "fault_fail")
                ++faultFailures;
            byReq[static_cast<std::uint64_t>(argOr(ev, "req", 0.0))]
                .push_back(&ev);
        }
    }

    std::map<std::uint64_t, RequestLife> lives;
    for (auto &kv : byReq) {
        std::vector<const RawTraceEvent *> &evs = kv.second;
        std::stable_sort(
            evs.begin(), evs.end(),
            [](const RawTraceEvent *a, const RawTraceEvent *b) {
                if (a->tsUs != b->tsUs)
                    return a->tsUs < b->tsUs;
                return lifecycleRank(*a) < lifecycleRank(*b);
            });
        RequestLife r;
        r.id = kv.first;
        for (const RawTraceEvent *ev : evs) {
            if (ev->ph == 'b') {
                if (r.arrivalUs < 0.0) {
                    r.arrivalUs = ev->tsUs;
                    r.task = ev->name;
                }
            } else if (ev->ph == 'e') {
                r.endUs = ev->tsUs;
                if (ev->outcomeRejected || ev->outcomeFailed) {
                    r.rejected = true;
                } else {
                    r.completed = true;
                    r.tokens = argOr(*ev, "tokens", 0.0);
                }
            } else if (ev->name == "slo") {
                r.hasSlo = true;
                r.ttftDeadlineSec = argOr(*ev, "ttft_deadline_s", 0.0);
                r.tpotTargetSec = argOr(*ev, "tpot_target_s", 0.0);
            } else if (ev->name == "defer") {
                // First-life deferrals only: a second-life deferral
                // (after the first admission) lives inside c7.
                if (r.admitUs < 0.0 && r.firstDeferUs < 0.0) {
                    r.deferred = true;
                    r.firstDeferUs = ev->tsUs;
                }
            } else if (ev->name == "admit") {
                if (r.admitUs < 0.0) {
                    r.admitUs = ev->tsUs;
                    r.firstDevice = ev->pid;
                }
                r.device = ev->pid;
            } else if (ev->name == "first_token") {
                if (r.firstTokenUs < 0.0)
                    r.firstTokenUs = ev->tsUs;
                else
                    r.resumeUs = ev->tsUs;
            } else if (ev->name == "preempt") {
                if (!r.preempted) {
                    r.preempted = true;
                    r.preemptUs = ev->tsUs;
                }
            } else if (ev->name == "fault_evict") {
                // Crash eviction: same preempt-interval bookkeeping
                // as the online LatencyWaterfall::onFaultEvict — the
                // lost-and-redone decode lands in c7, and only when
                // the victim had already produced a token.
                r.faulted = true;
                if (r.firstTokenUs >= 0.0 && !r.preempted) {
                    r.preempted = true;
                    r.preemptUs = ev->tsUs;
                }
            } else if (ev->name == "fault_fail") {
                r.faulted = true;
                r.device = ev->pid;
            } else if (ev->name == "reject") {
                r.device = ev->pid;
            }
            // dispatch / requeue carry no lifecycle state.
        }
        lives.emplace(kv.first, std::move(r));
    }

    // ---- Prefill attribution (first-life chunks only) ----------
    for (const RawTraceEvent &ev : events_) {
        if (ev.ph != 'X')
            continue;
        TraceDeviceSummary *dev =
            ev.pid >= 1 && static_cast<std::size_t>(ev.pid) <=
                               devices_.size()
                ? &devices_[static_cast<std::size_t>(ev.pid) - 1]
                : nullptr;
        if (dev != nullptr)
            dev->busyUs += ev.durUs;
        if (ev.name == "prefill") {
            if (dev != nullptr)
                ++dev->prefillSlices;
            const auto it = lives.find(
                static_cast<std::uint64_t>(argOr(ev, "req", 0.0)));
            if (it == lives.end())
                continue;
            RequestLife &r = it->second;
            // Second-life re-prefill (at or after the preemption
            // stamp) is part of preempt loss, not c3.
            if (!r.preempted || ev.tsUs < r.preemptUs)
                r.componentsUs[static_cast<std::size_t>(
                    LatencyComponent::PrefillCompute)] += ev.durUs;
        } else if (dev != nullptr) {
            ++dev->decodeSlices;
        }
    }

    // ---- Decode fair shares via per-device membership replay ---
    std::map<int, std::vector<MemberEvent>> byDevice;
    for (const RawTraceEvent &ev : events_) {
        if (ev.ph == 'X' && ev.name == "decode") {
            MemberEvent m;
            m.tsUs = ev.tsUs;
            m.op = kSlice;
            m.durUs = ev.durUs;
            m.batch = argOr(ev, "batch", 1.0);
            byDevice[ev.pid].push_back(m);
        } else if (ev.ph == 'i' && (ev.name == "first_token" ||
                                    ev.name == "preempt" ||
                                    ev.name == "fault_evict")) {
            // A crash eviction removes the victim from its device's
            // decode batch exactly like a preemption does.
            MemberEvent m;
            m.tsUs = ev.tsUs;
            m.op = ev.name == "first_token" ? kAdd : kRemove;
            m.req =
                static_cast<std::uint64_t>(argOr(ev, "req", 0.0));
            byDevice[ev.pid].push_back(m);
        }
    }
    for (const auto &kv : lives) {
        const RequestLife &r = kv.second;
        if (!r.completed)
            continue;
        MemberEvent m;
        m.tsUs = r.endUs;
        m.op = kRemove;
        m.req = r.id;
        byDevice[r.device].push_back(m);
    }
    for (auto &kv : byDevice) {
        std::vector<MemberEvent> &evs = kv.second;
        std::stable_sort(evs.begin(), evs.end(),
                         [](const MemberEvent &a, const MemberEvent &b) {
                             if (a.tsUs != b.tsUs)
                                 return a.tsUs < b.tsUs;
                             return a.op < b.op;
                         });
        std::vector<std::uint64_t> members;
        for (const MemberEvent &m : evs) {
            if (m.op == kAdd) {
                members.push_back(m.req);
            } else if (m.op == kRemove) {
                const auto it = std::find(members.begin(),
                                          members.end(), m.req);
                if (it != members.end())
                    members.erase(it);
            } else {
                if (static_cast<double>(members.size()) != m.batch)
                    ++stats_.batchMismatches;
                const double batch = m.batch > 0.0 ? m.batch : 1.0;
                const double fair = m.durUs / batch;
                for (std::uint64_t req : members) {
                    const auto it = lives.find(req);
                    if (it == lives.end())
                        continue;
                    double *c = it->second.componentsUs;
                    c[static_cast<std::size_t>(
                        LatencyComponent::DecodeCompute)] += fair;
                    c[static_cast<std::size_t>(
                        LatencyComponent::BatchInterference)] +=
                        m.durUs - fair;
                }
            }
        }
    }

    // ---- Waterfalls (µs space, same closure as the online path) -
    for (auto &kv : lives) {
        RequestLife &r = kv.second;
        if (!r.terminal())
            continue;
        double *c = r.componentsUs;
        const auto ix = [](LatencyComponent comp) {
            return static_cast<std::size_t>(comp);
        };
        if (r.rejected) {
            for (std::size_t i = 0; i < kLatencyComponentCount; ++i)
                c[i] = 0.0;
            c[ix(LatencyComponent::QueueWait)] = r.endUs - r.arrivalUs;
            r.ttftUs = c[ix(LatencyComponent::QueueWait)];
            r.e2eUs = c[ix(LatencyComponent::QueueWait)];
        } else {
            r.ttftUs = r.firstTokenUs - r.arrivalUs;
            r.e2eUs = r.endUs - r.arrivalUs;
            const double verdictUs =
                r.deferred ? r.firstDeferUs : r.admitUs;
            c[ix(LatencyComponent::QueueWait)] =
                verdictUs - r.arrivalUs;
            c[ix(LatencyComponent::KvStall)] =
                r.deferred ? r.admitUs - r.firstDeferUs : 0.0;
            closeFold(r.ttftUs, c,
                      ix(LatencyComponent::ChunkInterleave));
            c[ix(LatencyComponent::PreemptLoss)] =
                r.preempted ? r.resumeUs - r.preemptUs : 0.0;
            closeFold(r.e2eUs, c, ix(LatencyComponent::DecodeStall));
        }
        r.missedTtft = !r.rejected && r.ttftDeadlineSec > 0.0 &&
                       r.ttftUs > r.ttftDeadlineSec * 1e6;
        r.missedTpot = false;
        if (!r.rejected && r.tpotTargetSec > 0.0 && r.tokens > 0.0) {
            const double tpotUs =
                (r.endUs - r.firstTokenUs) / r.tokens;
            r.missedTpot = tpotUs > r.tpotTargetSec * 1e6;
        }
        r.cause = classifyMiss(r.rejected, r.missedTtft,
                               r.missedTpot, c, r.faulted);

        // ---- Roll-ups ------------------------------------------
        ++terminal;
        if (r.rejected)
            ++rejected;
        else
            ++completed;
        ++missCounts[static_cast<std::size_t>(r.cause)];
        if (r.cause != MissCause::None)
            ++misses;
        for (std::size_t i = 0; i < kLatencyComponentCount; ++i)
            componentTotalsUs[i] += c[i];
        if (r.device >= 1 &&
            static_cast<std::size_t>(r.device) <= devices_.size()) {
            TraceDeviceSummary &dev =
                devices_[static_cast<std::size_t>(r.device) - 1];
            if (r.rejected)
                ++dev.rejected;
            else
                ++dev.completed;
            ++dev.missCounts[static_cast<std::size_t>(r.cause)];
            if (r.cause != MissCause::None)
                ++dev.misses;
            for (std::size_t i = 0; i < kLatencyComponentCount; ++i)
                dev.componentTotalsUs[i] += c[i];
        }
    }

    requests_.reserve(lives.size());
    for (auto &kv : lives)
        requests_.push_back(std::move(kv.second));
}

} // namespace obs
} // namespace kelle
