/**
 * @file
 * Deterministic request-lifecycle tracing.
 *
 * `TraceRecorder` collects structured events from the serving engines
 * (layers 5-6) and exports them as Chrome trace-event JSON that
 * Perfetto (https://ui.perfetto.dev) and `chrome://tracing` load
 * directly: one process per device with duration slices for every
 * prefill chunk and decode step plus counter tracks (KV pool bytes,
 * queue depth, decode batch size, cumulative eDRAM refresh energy),
 * and a `requests` process with one async span per request (arrival
 * to completion/rejection) plus dispatch instants.
 *
 * Determinism contract (enforced by test_obs and a golden digest):
 * every event is stamped with *sim time*, each engine writes only its
 * own `TraceTrack`, and the export concatenates tracks in a fixed
 * order (requests, then device 0..N-1). Cross-device interleaving
 * never enters the byte stream, so the exported JSON is byte-identical
 * for any `ClusterConfig::threads` value and for fastSim on/off — the
 * fast-forward path replays per-boundary events exactly as the
 * step-at-a-time path emits them. Within one track, timestamps are
 * monotone non-decreasing.
 *
 * Cost contract: engines hold a `TraceTrack *` that is null when
 * tracing is off, so the disabled hooks are a pointer test — no
 * allocation, no output perturbation (golden digests and the
 * allocation-free steady-state assert are unchanged). With tracing on,
 * recording is an amortized vector push per event.
 *
 * Thread safety: a track has exactly one writer (its device engine, or
 * the cluster coordinator for the requests track). The parallel
 * cluster engine's lookahead windows hand each device to at most one
 * worker and join before the coordinator touches anything, so no
 * additional synchronization is needed (TSan-checked in CI). Use one
 * recorder per run; export only after the run drains.
 */

#ifndef KELLE_OBS_TRACE_HPP
#define KELLE_OBS_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace kelle {
namespace obs {

/** Event taxonomy (see docs/ARCHITECTURE.md "Observability"). */
enum class TraceEventKind : std::uint8_t
{
    Arrival,     ///< request entered a device queue (span begin)
    Requeue,     ///< preemption victim re-entered a device queue
    Dispatch,    ///< cluster routed a request to a device
    Admit,       ///< KV grant issued (v0 granted, v1 requested tokens)
    Defer,       ///< admission blocked by the allocator (v0 requested,
                 ///< v1 floor) — the eviction-pressure signal
    Reject,      ///< floor exceeds the whole pool (span end; v0 floor)
    Preempt,     ///< deadline-doomed decode reclaimed
    FirstToken,  ///< prefill finished, decoding begins
    PrefillStep, ///< one prefill chunk (slice; v0 tokens, v1 refresh J)
    DecodeStep,  ///< one batched decode step (slice; v0 batch size,
                 ///< v1 refresh J)
    Complete,    ///< request finished (span end; v0 emitted tokens)
    KvInUse,     ///< KV pool occupancy counter sample (v0 bytes)
    QueueDepth,  ///< waiting-queue depth counter sample (v0 depth)
    /** @name Paged KV pool counters (paged mode only). @{ */
    KvPagesFree,   ///< free-list pages counter sample (v0 pages)
    KvPagesShared, ///< prefix-indexed pages counter sample (v0 pages)
    KvPrefixHits,  ///< cumulative prefix-hit tokens (v0 tokens)
    /** @} */
    Slo, ///< request SLO targets (v0 TTFT deadline s, v1 TPOT target
         ///< s) — emitted at arrival when attribution is on, so
         ///< offline tools can re-derive miss classification
    /** @name Fault lifecycle (src/faults; fault runs only). @{ */
    DeviceFault,   ///< device disruption began (v0 kind code: 0 crash,
                   ///< 1 slowdown, 2 pool shrink; v1 magnitude)
    DeviceRecover, ///< disruption over (v0 kind code)
    FaultEvict,    ///< request evicted by a crash / pressure shed
                   ///< (v0 KV tokens lost — the regeneration cost)
    FaultFail,     ///< fault-retry budget exhausted (span end)
    /** @} */
};

/** One recorded event; payload meaning depends on `kind`. */
struct TraceEvent
{
    double tsUs = 0.0;  ///< sim time, microseconds
    double durUs = 0.0; ///< slice duration (PrefillStep/DecodeStep)
    double v0 = 0.0;
    double v1 = 0.0;
    std::uint64_t req = 0; ///< request id (0 when not request-bound)
    std::uint32_t name = 0; ///< interned task name (Arrival only)
    TraceEventKind kind = TraceEventKind::Arrival;
};

/**
 * One engine's private event buffer. All emission methods append in
 * sim-time order; the recorder turns the buffer into JSON at export.
 */
class TraceTrack
{
  public:
    /** @name Emission hooks (single writer: the owning engine). @{ */
    void
    requestArrived(Time t, std::uint64_t req, const std::string &task)
    {
        push(t, TraceEventKind::Arrival, req, 0.0, 0.0, intern(task));
    }
    void
    requestRequeued(Time t, std::uint64_t req)
    {
        push(t, TraceEventKind::Requeue, req);
    }
    void
    dispatched(Time t, std::uint64_t req, std::size_t device)
    {
        push(t, TraceEventKind::Dispatch, req,
             static_cast<double>(device));
    }
    void
    admitted(Time t, std::uint64_t req, std::size_t granted,
             std::size_t requested)
    {
        push(t, TraceEventKind::Admit, req,
             static_cast<double>(granted),
             static_cast<double>(requested));
    }
    void
    deferred(Time t, std::uint64_t req, std::size_t requested,
             std::size_t floor)
    {
        push(t, TraceEventKind::Defer, req,
             static_cast<double>(requested),
             static_cast<double>(floor));
    }
    void
    rejected(Time t, std::uint64_t req, std::size_t floor)
    {
        push(t, TraceEventKind::Reject, req,
             static_cast<double>(floor));
    }
    void
    preempted(Time t, std::uint64_t req)
    {
        push(t, TraceEventKind::Preempt, req);
    }
    void
    firstToken(Time t, std::uint64_t req)
    {
        push(t, TraceEventKind::FirstToken, req);
    }
    void
    prefillStep(Time t, Time dur, std::uint64_t req,
                std::size_t tokens, double refresh_j)
    {
        push(t, TraceEventKind::PrefillStep, req,
             static_cast<double>(tokens), refresh_j, 0, dur);
    }
    void
    decodeStep(Time t, Time dur, std::size_t batch, double refresh_j)
    {
        push(t, TraceEventKind::DecodeStep, 0,
             static_cast<double>(batch), refresh_j, 0, dur);
    }
    void
    completed(Time t, std::uint64_t req, std::size_t tokens)
    {
        push(t, TraceEventKind::Complete, req,
             static_cast<double>(tokens));
    }
    void
    kvInUse(Time t, double bytes)
    {
        push(t, TraceEventKind::KvInUse, 0, bytes);
    }
    void
    queueDepth(Time t, std::size_t depth)
    {
        push(t, TraceEventKind::QueueDepth, 0,
             static_cast<double>(depth));
    }
    void
    kvPagesFree(Time t, std::size_t pages)
    {
        push(t, TraceEventKind::KvPagesFree, 0,
             static_cast<double>(pages));
    }
    void
    kvPagesShared(Time t, std::size_t pages)
    {
        push(t, TraceEventKind::KvPagesShared, 0,
             static_cast<double>(pages));
    }
    void
    kvPrefixHitTokens(Time t, std::uint64_t tokens)
    {
        push(t, TraceEventKind::KvPrefixHits, 0,
             static_cast<double>(tokens));
    }
    void
    sloTarget(Time t, std::uint64_t req, double ttft_deadline_sec,
              double tpot_target_sec)
    {
        push(t, TraceEventKind::Slo, req, ttft_deadline_sec,
             tpot_target_sec);
    }
    void
    deviceFault(Time t, int kind_code, double magnitude)
    {
        push(t, TraceEventKind::DeviceFault, 0,
             static_cast<double>(kind_code), magnitude);
    }
    void
    deviceRecover(Time t, int kind_code)
    {
        push(t, TraceEventKind::DeviceRecover, 0,
             static_cast<double>(kind_code));
    }
    void
    faultEvicted(Time t, std::uint64_t req,
                 std::uint64_t lost_tokens)
    {
        push(t, TraceEventKind::FaultEvict, req,
             static_cast<double>(lost_tokens));
    }
    void
    faultFailed(Time t, std::uint64_t req)
    {
        push(t, TraceEventKind::FaultFail, req);
    }
    /** @} */

    /** @name Structured read access (tests, metrics ingestion). @{ */
    const std::string &name() const { return name_; }
    const std::vector<TraceEvent> &events() const { return events_; }
    const std::string &taskName(std::uint32_t id) const
    {
        return taskNames_[id];
    }
    /** @} */

  private:
    friend class TraceRecorder;
    explicit TraceTrack(std::string name) : name_(std::move(name)) {}

    std::uint32_t intern(const std::string &task);
    void
    push(Time t, TraceEventKind kind, std::uint64_t req,
         double v0 = 0.0, double v1 = 0.0, std::uint32_t name = 0,
         Time dur = Time())
    {
        TraceEvent e;
        e.tsUs = t.sec() * 1e6;
        e.durUs = dur.sec() * 1e6;
        e.v0 = v0;
        e.v1 = v1;
        e.req = req;
        e.name = name;
        e.kind = kind;
        events_.push_back(e);
    }

    std::string name_;
    std::vector<TraceEvent> events_;
    std::vector<std::string> taskNames_; ///< interned Arrival names
};

class TraceRecorder
{
  public:
    TraceRecorder() = default;
    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /**
     * The cluster coordinator's track (dispatch instants); exported
     * first, as the `requests` process that also carries every
     * request's async span.
     */
    TraceTrack *requestsTrack();
    /** Register device track i (exported in registration order). */
    TraceTrack *addDeviceTrack(const std::string &name);

    const std::vector<std::unique_ptr<TraceTrack>> &
    deviceTracks() const
    {
        return deviceTracks_;
    }

    /** Serialize to Chrome trace-event JSON (one event per line). */
    std::string toJson() const;
    /** toJson() to `path`; false (with a log line) on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    std::unique_ptr<TraceTrack> requests_;
    std::vector<std::unique_ptr<TraceTrack>> deviceTracks_;
};

} // namespace obs
} // namespace kelle

#endif // KELLE_OBS_TRACE_HPP
