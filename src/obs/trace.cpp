#include "obs/trace.hpp"

#include <cstdio>
#include <unordered_map>

#include "common/log.hpp"

namespace kelle {
namespace obs {

std::uint32_t
TraceTrack::intern(const std::string &task)
{
    for (std::uint32_t i = 0; i < taskNames_.size(); ++i) {
        if (taskNames_[i] == task)
            return i;
    }
    taskNames_.push_back(task);
    return static_cast<std::uint32_t>(taskNames_.size() - 1);
}

TraceTrack *
TraceRecorder::requestsTrack()
{
    if (!requests_)
        requests_.reset(new TraceTrack("requests"));
    return requests_.get();
}

TraceTrack *
TraceRecorder::addDeviceTrack(const std::string &name)
{
    deviceTracks_.emplace_back(new TraceTrack(name));
    return deviceTracks_.back().get();
}

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

/** %.3f keeps microsecond timestamps readable and byte-stable. */
void
appendTs(std::string &out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out += buf;
}

/** Counter/arg values: exact integers stay integers. */
void
appendVal(std::string &out, double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)))
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
}

class JsonWriter
{
  public:
    explicit JsonWriter(std::string &out) : out_(out) {}

    /** Open one event object on its own line. */
    void
    open()
    {
        if (!first_)
            out_ += ",\n";
        first_ = false;
        out_ += '{';
    }
    void
    close()
    {
        out_ += '}';
    }
    void
    str(const char *key, const std::string &v)
    {
        key_(key);
        out_ += '"';
        appendEscaped(out_, v);
        out_ += '"';
    }
    void
    raw(const char *key, const char *v)
    {
        key_(key);
        out_ += v;
    }
    void
    num(const char *key, double v)
    {
        key_(key);
        appendVal(out_, v);
    }
    void
    uint(const char *key, std::uint64_t v)
    {
        key_(key);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        out_ += buf;
    }
    void
    ts(const char *key, double v)
    {
        key_(key);
        appendTs(out_, v);
    }
    /** Start an "args" sub-object; fields continue, endArgs closes. */
    void
    beginArgs()
    {
        key_("args");
        out_ += '{';
        objFirst_ = true;
    }
    void
    endArgs()
    {
        out_ += '}';
        objFirst_ = false;
    }

  private:
    void
    key_(const char *key)
    {
        if (out_.back() != '{')
            out_ += ',';
        out_ += '"';
        out_ += key;
        out_ += "\":";
    }
    std::string &out_;
    bool first_ = true;
    bool objFirst_ = false;
};

void
writeMeta(JsonWriter &w, int pid, const std::string &name)
{
    w.open();
    w.str("name", "process_name");
    w.raw("ph", "\"M\"");
    w.num("pid", pid);
    w.num("tid", 0);
    w.beginArgs();
    w.str("name", name);
    w.endArgs();
    w.close();
}

void
writeInstant(JsonWriter &w, const char *name, int pid, double ts_us)
{
    w.open();
    w.str("name", name);
    w.raw("ph", "\"i\"");
    w.raw("s", "\"t\"");
    w.num("pid", pid);
    w.num("tid", 0);
    w.ts("ts", ts_us);
}

void
writeCounter(JsonWriter &w, const char *name, int pid, double ts_us,
             double value)
{
    w.open();
    w.str("name", name);
    w.raw("ph", "\"C\"");
    w.num("pid", pid);
    w.num("tid", 0);
    w.ts("ts", ts_us);
    w.beginArgs();
    w.num("value", value);
    w.endArgs();
    w.close();
}

void
writeSpanEdge(JsonWriter &w, bool begin, const std::string &task,
              std::uint64_t req, double ts_us)
{
    w.open();
    w.str("name", task);
    w.raw("cat", "\"request\"");
    w.raw("ph", begin ? "\"b\"" : "\"e\"");
    w.uint("id", req);
    w.num("pid", 0);
    w.num("tid", 0);
    w.ts("ts", ts_us);
}

/** Serialize one track's buffer; `pid` 0 is the requests process. */
void
writeTrack(JsonWriter &w, const TraceTrack &track, int pid,
           const std::unordered_map<std::uint64_t, std::string> &tasks)
{
    const auto taskOf = [&tasks](std::uint64_t req) -> std::string {
        const auto it = tasks.find(req);
        return it == tasks.end() ? std::string("request")
                                 : it->second;
    };
    double refresh_j = 0.0; ///< per-device cumulative counter
    for (const TraceEvent &e : track.events()) {
        switch (e.kind) {
          case TraceEventKind::Arrival:
            writeSpanEdge(w, true, track.taskName(e.name), e.req,
                          e.tsUs);
            w.close();
            break;
          case TraceEventKind::Requeue:
            writeInstant(w, "requeue", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::Dispatch:
            writeInstant(w, "dispatch", 0, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.num("device", e.v0);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::Admit:
            writeInstant(w, "admit", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.num("granted", e.v0);
            w.num("requested", e.v1);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::Defer:
            writeInstant(w, "defer", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.num("requested", e.v0);
            w.num("floor", e.v1);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::Reject:
            writeInstant(w, "reject", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.num("floor", e.v0);
            w.endArgs();
            w.close();
            writeSpanEdge(w, false, taskOf(e.req), e.req, e.tsUs);
            w.beginArgs();
            w.raw("outcome", "\"rejected\"");
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::Preempt:
            writeInstant(w, "preempt", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::FirstToken:
            writeInstant(w, "first_token", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::PrefillStep:
            refresh_j += e.v1;
            w.open();
            w.str("name", "prefill");
            w.raw("ph", "\"X\"");
            w.num("pid", pid);
            w.num("tid", 0);
            w.ts("ts", e.tsUs);
            w.ts("dur", e.durUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.num("tokens", e.v0);
            w.endArgs();
            w.close();
            writeCounter(w, "refresh_J", pid, e.tsUs, refresh_j);
            break;
          case TraceEventKind::DecodeStep:
            refresh_j += e.v1;
            w.open();
            w.str("name", "decode");
            w.raw("ph", "\"X\"");
            w.num("pid", pid);
            w.num("tid", 0);
            w.ts("ts", e.tsUs);
            w.ts("dur", e.durUs);
            w.beginArgs();
            w.num("batch", e.v0);
            w.endArgs();
            w.close();
            writeCounter(w, "batch", pid, e.tsUs, e.v0);
            writeCounter(w, "refresh_J", pid, e.tsUs, refresh_j);
            break;
          case TraceEventKind::Complete:
            writeSpanEdge(w, false, taskOf(e.req), e.req, e.tsUs);
            w.beginArgs();
            w.num("tokens", e.v0);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::KvInUse:
            writeCounter(w, "kv_bytes", pid, e.tsUs, e.v0);
            break;
          case TraceEventKind::QueueDepth:
            writeCounter(w, "queue_depth", pid, e.tsUs, e.v0);
            break;
          case TraceEventKind::KvPagesFree:
            writeCounter(w, "kv_pages_free", pid, e.tsUs, e.v0);
            break;
          case TraceEventKind::KvPagesShared:
            writeCounter(w, "kv_pages_shared", pid, e.tsUs, e.v0);
            break;
          case TraceEventKind::KvPrefixHits:
            writeCounter(w, "kv_prefix_hit_tokens", pid, e.tsUs,
                         e.v0);
            break;
          case TraceEventKind::Slo:
            writeInstant(w, "slo", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.num("ttft_deadline_s", e.v0);
            w.num("tpot_target_s", e.v1);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::DeviceFault:
            writeInstant(w, "device_fault", pid, e.tsUs);
            w.beginArgs();
            w.num("kind", e.v0);
            w.num("magnitude", e.v1);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::DeviceRecover:
            writeInstant(w, "device_recover", pid, e.tsUs);
            w.beginArgs();
            w.num("kind", e.v0);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::FaultEvict:
            writeInstant(w, "fault_evict", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.num("lost_tokens", e.v0);
            w.endArgs();
            w.close();
            break;
          case TraceEventKind::FaultFail:
            writeInstant(w, "fault_fail", pid, e.tsUs);
            w.beginArgs();
            w.uint("req", e.req);
            w.endArgs();
            w.close();
            writeSpanEdge(w, false, taskOf(e.req), e.req, e.tsUs);
            w.beginArgs();
            w.raw("outcome", "\"failed\"");
            w.endArgs();
            w.close();
            break;
        }
    }
}

} // namespace

std::string
TraceRecorder::toJson() const
{
    // Async span ends ("e") repeat the span's name; arrivals carry it,
    // so resolve request -> task once up front.
    std::unordered_map<std::uint64_t, std::string> tasks;
    for (const auto &track : deviceTracks_) {
        for (const TraceEvent &e : track->events()) {
            if (e.kind == TraceEventKind::Arrival)
                tasks.emplace(e.req, track->taskName(e.name));
        }
    }

    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
    JsonWriter w(out);
    writeMeta(w, 0, "requests");
    for (std::size_t i = 0; i < deviceTracks_.size(); ++i)
        writeMeta(w, static_cast<int>(1 + i), deviceTracks_[i]->name());
    if (requests_)
        writeTrack(w, *requests_, 0, tasks);
    for (std::size_t i = 0; i < deviceTracks_.size(); ++i)
        writeTrack(w, *deviceTracks_[i], static_cast<int>(1 + i),
                   tasks);
    out += "\n]}\n";
    return out;
}

bool
TraceRecorder::writeJson(const std::string &path) const
{
    const std::string json = toJson();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        inform("trace export failed: cannot open ", path);
        return false;
    }
    const std::size_t n =
        std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (n != json.size()) {
        inform("trace export failed: short write to ", path);
        return false;
    }
    return true;
}

} // namespace obs
} // namespace kelle
