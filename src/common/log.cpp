#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace kelle {

namespace {
LogLevel gLevel = LogLevel::Normal;
} // namespace

void setLogLevel(LogLevel level) { gLevel = level; }
LogLevel logLevel() { return gLevel; }

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (gLevel != LogLevel::Quiet)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (gLevel == LogLevel::Verbose)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace kelle
