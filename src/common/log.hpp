/**
 * @file
 * Logging and error reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant of the simulator itself was violated;
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  — the simulation cannot continue because of a user-level
 *            configuration problem; exits with status 1.
 * warn()   — something is modelled approximately; simulation continues.
 * inform() — status messages with no connotation of incorrect behaviour.
 */

#ifndef KELLE_COMMON_LOG_HPP
#define KELLE_COMMON_LOG_HPP

#include <sstream>
#include <string>

namespace kelle {

/** Verbosity threshold for inform(); warnings always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global log level (default Normal). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a pack of stream-formattable arguments into one string. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort on a simulator bug. Usage: panic("bad state: ", x). */
#define KELLE_PANIC(...) \
    ::kelle::detail::panicImpl(__FILE__, __LINE__, \
                               ::kelle::detail::fold(__VA_ARGS__))

/** Exit on a user configuration error. */
#define KELLE_FATAL(...) \
    ::kelle::detail::fatalImpl(__FILE__, __LINE__, \
                               ::kelle::detail::fold(__VA_ARGS__))

/** Assert a simulator invariant; panics with the condition text. */
#define KELLE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::kelle::detail::panicImpl(__FILE__, __LINE__, \
                ::kelle::detail::fold("assertion failed: " #cond " ", \
                                      ##__VA_ARGS__)); \
        } \
    } while (0)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::fold(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::fold(std::forward<Args>(args)...));
}

} // namespace kelle

#endif // KELLE_COMMON_LOG_HPP
