#include "common/thread_pool.hpp"

#include "common/parallel.hpp"

namespace kelle {
namespace common {

namespace {

/** Spins a worker burns through before parking on the condvar: long
 *  enough that back-to-back lookahead windows stay futex-free, short
 *  enough that an idle pool costs nothing measurable. */
constexpr int kSpinRounds = 1 << 14;

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads ? threads : defaultParallelism())
{
    if (threads_ <= 1)
        return;
    workers_.reserve(threads_ - 1);
    try {
        for (std::size_t t = 1; t < threads_; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (const std::system_error &) {
        // Spawn failed (thread limits): forEach degrades gracefully —
        // the workers that did start plus the caller drain every job.
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::drain(const std::function<void(std::size_t)> &body,
                  std::size_t n)
{
    for (;;) {
        const std::size_t i =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return;
        try {
            body(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        // acq_rel: the caller's done_ == n read carries every body
        // write back to it (the forEach join contract).
        done_.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        // Wait for a new epoch: spin first, then park.
        int spins = kSpinRounds;
        while (!shutdown_.load(std::memory_order_acquire) &&
               epoch_.load(std::memory_order_acquire) == seen) {
            if (--spins <= 0) {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return shutdown_.load(
                               std::memory_order_acquire) ||
                           epoch_.load(std::memory_order_acquire) !=
                               seen;
                });
                break;
            }
        }
        if (shutdown_.load(std::memory_order_acquire))
            return;
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        {
            // Read the payload under mutex_ and register as draining
            // in the same critical section: forEach only replaces the
            // payload and resets the claim counter once inDrain_ hits
            // zero, so this snapshot can never be torn or go stale
            // into a reset counter — the worst a late worker sees is
            // an exhausted counter for a finished job.
            std::lock_guard<std::mutex> lock(mutex_);
            fn = job_;
            n = jobSize_;
            seen = epoch_.load(std::memory_order_acquire);
            ++inDrain_;
        }
        if (fn != nullptr)
            drain(*fn, n);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inDrain_;
        }
        wake_.notify_all();
    }
}

void
ThreadPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || workers_.empty() || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // A straggler from the previous job may still sit inside
        // drain() (claiming an exhausted counter, about to exit);
        // resetting next_ under its feet would hand it a live index
        // into a destroyed body. Wait it out — by the time the
        // previous forEach returned every iteration had finished, so
        // this only covers the exit tail and is near-instant.
        wake_.wait(lock, [&] { return inDrain_ == 0; });
        job_ = &body;
        jobSize_ = n;
        done_.store(0, std::memory_order_relaxed);
        next_.store(0, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    wake_.notify_all();
    drain(body, n);
    // Join: spin until every iteration has finished executing. The
    // caller claimed until exhaustion above, so this only waits out
    // bodies still running on workers.
    while (done_.load(std::memory_order_acquire) < n)
        std::this_thread::yield();

    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace common
} // namespace kelle
