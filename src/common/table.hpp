/**
 * @file
 * ASCII table rendering used by the bench harnesses to print paper
 * tables and figure series in a uniform, diffable format.
 */

#ifndef KELLE_COMMON_TABLE_HPP
#define KELLE_COMMON_TABLE_HPP

#include <string>
#include <vector>

namespace kelle {

/** Column-aligned ASCII table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);
    /** Format as a multiplier, e.g. "3.94x". */
    static std::string mult(double v, int precision = 2);
    /** Format as a percentage, e.g. "46.0%". */
    static std::string pct(double v, int precision = 1);

    std::string render() const;
    /** Print to stdout with an optional caption line. */
    void print(const std::string &caption = "") const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace kelle

#endif // KELLE_COMMON_TABLE_HPP
