#include "common/stats.hpp"

#include <cmath>
#include <sstream>

#include "common/log.hpp"

namespace kelle {
namespace stats {

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0)
{
    KELLE_ASSERT(hi > lo && bins > 0, "degenerate histogram");
}

void
Histogram::sample(double v)
{
    double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(frac * static_cast<double>(bins_.size()));
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(bins_.size()))
        idx = static_cast<long>(bins_.size()) - 1;
    ++bins_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(bins_.size());
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        os << "[" << binLow(i) << ", " << binLow(i + 1) << "): " << bins_[i]
           << "\n";
    }
    return os.str();
}

double
Group::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0.0 : it->second;
}

bool
Group::has(const std::string &key) const
{
    return counters_.find(key) != counters_.end();
}

void
Group::merge(const Group &other)
{
    for (const auto &[k, v] : other.counters())
        counters_[k] += v;
}

std::string
Group::toString() const
{
    std::ostringstream os;
    if (!name_.empty())
        os << name_ << ":\n";
    for (const auto &[k, v] : counters_)
        os << "  " << k << " = " << v << "\n";
    return os.str();
}

} // namespace stats
} // namespace kelle
