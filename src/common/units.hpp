/**
 * @file
 * Strong unit types used throughout the Kelle simulator.
 *
 * Latency, energy and capacity bugs in architecture models are almost
 * always unit bugs. Seconds, joules, bytes and cycles are therefore
 * wrapped in distinct arithmetic types so that, e.g., adding a latency
 * to an energy fails to compile. Conversions to raw doubles are explicit.
 */

#ifndef KELLE_COMMON_UNITS_HPP
#define KELLE_COMMON_UNITS_HPP

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace kelle {

/**
 * CRTP base providing the arithmetic shared by all scalar unit types.
 * Derived types are distinct, so cross-unit arithmetic will not compile.
 */
template <typename Derived>
struct UnitBase
{
    double value = 0.0;

    constexpr UnitBase() = default;
    explicit constexpr UnitBase(double v) : value(v) {}

    friend constexpr Derived
    operator+(Derived a, Derived b)
    {
        return Derived(a.value + b.value);
    }
    friend constexpr Derived
    operator-(Derived a, Derived b)
    {
        return Derived(a.value - b.value);
    }
    friend constexpr Derived operator*(Derived a, double s)
    {
        return Derived(a.value * s);
    }
    friend constexpr Derived operator*(double s, Derived a)
    {
        return Derived(a.value * s);
    }
    friend constexpr Derived
    operator/(Derived a, double s)
    {
        return Derived(a.value / s);
    }
    /** Ratio of two like quantities is dimensionless. */
    friend constexpr double
    operator/(Derived a, Derived b)
    {
        return a.value / b.value;
    }
    friend constexpr auto operator<=>(Derived a, Derived b)
    {
        return a.value <=> b.value;
    }
    friend constexpr bool
    operator==(Derived a, Derived b)
    {
        return a.value == b.value;
    }
    Derived &
    operator+=(Derived b)
    {
        value += b.value;
        return static_cast<Derived &>(*this);
    }
    Derived &
    operator-=(Derived b)
    {
        value -= b.value;
        return static_cast<Derived &>(*this);
    }
    Derived &
    operator*=(double s)
    {
        value *= s;
        return static_cast<Derived &>(*this);
    }
};

/** Wall-clock time in seconds. */
struct Time : UnitBase<Time>
{
    using UnitBase::UnitBase;
    static constexpr Time seconds(double s) { return Time(s); }
    static constexpr Time millis(double ms) { return Time(ms * 1e-3); }
    static constexpr Time micros(double us) { return Time(us * 1e-6); }
    static constexpr Time nanos(double ns) { return Time(ns * 1e-9); }
    static constexpr Time picos(double ps) { return Time(ps * 1e-12); }
    constexpr double sec() const { return value; }
    constexpr double ms() const { return value * 1e3; }
    constexpr double us() const { return value * 1e6; }
    constexpr double ns() const { return value * 1e9; }
};

/** Energy in joules. */
struct Energy : UnitBase<Energy>
{
    using UnitBase::UnitBase;
    static constexpr Energy joules(double j) { return Energy(j); }
    static constexpr Energy millis(double mj) { return Energy(mj * 1e-3); }
    static constexpr Energy micros(double uj) { return Energy(uj * 1e-6); }
    static constexpr Energy nanos(double nj) { return Energy(nj * 1e-9); }
    static constexpr Energy picos(double pj) { return Energy(pj * 1e-12); }
    constexpr double j() const { return value; }
    constexpr double mj() const { return value * 1e3; }
    constexpr double uj() const { return value * 1e6; }
    constexpr double pj() const { return value * 1e12; }
};

/** Power in watts. */
struct Power : UnitBase<Power>
{
    using UnitBase::UnitBase;
    static constexpr Power watts(double w) { return Power(w); }
    static constexpr Power milliwatts(double mw) { return Power(mw * 1e-3); }
    constexpr double w() const { return value; }
    constexpr double mw() const { return value * 1e3; }
};

/** Silicon area in mm^2. */
struct Area : UnitBase<Area>
{
    using UnitBase::UnitBase;
    static constexpr Area mm2(double a) { return Area(a); }
    constexpr double inMm2() const { return value; }
};

/** Power * time = energy; energy / time = power. */
constexpr Energy operator*(Power p, Time t)
{
    return Energy(p.value * t.value);
}
constexpr Energy operator*(Time t, Power p)
{
    return Energy(p.value * t.value);
}
constexpr Power
operator/(Energy e, Time t)
{
    return Power(e.value / t.value);
}
constexpr Time
operator/(Energy e, Power p)
{
    return Time(e.value / p.value);
}

/** Data capacity / traffic volume in bytes (fractional bytes allowed for
 *  sub-byte quantization accounting). */
struct Bytes : UnitBase<Bytes>
{
    using UnitBase::UnitBase;
    static constexpr Bytes count(double b) { return Bytes(b); }
    static constexpr Bytes kib(double k) { return Bytes(k * 1024.0); }
    static constexpr Bytes mib(double m) { return Bytes(m * 1024.0 * 1024.0); }
    static constexpr Bytes
    gib(double g)
    {
        return Bytes(g * 1024.0 * 1024.0 * 1024.0);
    }
    constexpr double b() const { return value; }
    constexpr double inKib() const { return value / 1024.0; }
    constexpr double inMib() const { return value / (1024.0 * 1024.0); }
    constexpr double inGib() const { return value / (1024.0 * 1024.0 * 1024.0); }
};

/** Bandwidth in bytes/second. */
struct Bandwidth : UnitBase<Bandwidth>
{
    using UnitBase::UnitBase;
    static constexpr Bandwidth
    gibPerSec(double g)
    {
        return Bandwidth(g * 1024.0 * 1024.0 * 1024.0);
    }
    static constexpr Bandwidth bytesPerSec(double b) { return Bandwidth(b); }
    constexpr double
    inGibPerSec() const
    {
        return value / (1024.0 * 1024.0 * 1024.0);
    }
};

/** Transfer time for a volume over a link. */
constexpr Time
operator/(Bytes b, Bandwidth bw)
{
    return Time(b.value / bw.value);
}

/** Energy-per-byte access cost; multiply by a traffic volume. */
struct EnergyPerByte : UnitBase<EnergyPerByte>
{
    using UnitBase::UnitBase;
    static constexpr EnergyPerByte
    picojoules(double pj)
    {
        return EnergyPerByte(pj * 1e-12);
    }
    constexpr double pjPerByte() const { return value * 1e12; }
};

constexpr Energy operator*(EnergyPerByte e, Bytes b)
{
    return Energy(e.value * b.value);
}
constexpr Energy operator*(Bytes b, EnergyPerByte e)
{
    return Energy(e.value * b.value);
}

/** Clock cycle count. Integer semantics, explicit conversion to Time. */
struct Cycles
{
    std::uint64_t count = 0;

    constexpr Cycles() = default;
    explicit constexpr Cycles(std::uint64_t c) : count(c) {}

    friend constexpr Cycles
    operator+(Cycles a, Cycles b)
    {
        return Cycles(a.count + b.count);
    }
    friend constexpr Cycles
    operator-(Cycles a, Cycles b)
    {
        return Cycles(a.count - b.count);
    }
    friend constexpr auto operator<=>(Cycles a, Cycles b) = default;
    Cycles &
    operator+=(Cycles b)
    {
        count += b.count;
        return *this;
    }

    /** Convert to wall time at the given clock frequency (Hz). */
    constexpr Time
    atFrequency(double hz) const
    {
        return Time(static_cast<double>(count) / hz);
    }
};

/** Human-readable engineering formatting, e.g. "3.21 ms", "84.8 pJ". */
std::string formatSi(double value, const std::string &unit);

inline std::string toString(Time t) { return formatSi(t.sec(), "s"); }
inline std::string toString(Energy e) { return formatSi(e.j(), "J"); }
inline std::string toString(Power p) { return formatSi(p.w(), "W"); }

} // namespace kelle

#endif // KELLE_COMMON_UNITS_HPP
