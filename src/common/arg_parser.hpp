/**
 * @file
 * Minimal shared CLI flag parser for the bench and example binaries.
 *
 * Flags are registered with a type, a default and a help line, then
 * parsed from `--name value` or `--name=value` (plus `--help`).
 * Unknown flags, missing values and malformed numbers are reported
 * with the usage text; the caller exits with `exitCode()`:
 *
 *   common::ArgParser args("bench_serving", "serving-engine sweep");
 *   args.addDouble("rate", 0.02, "mean arrival rate (req/s)");
 *   args.addString("policy", "both", "fcfs | contbatch | both");
 *   if (!args.parse(argc, argv))
 *       return args.exitCode();
 *   double rate = args.getDouble("rate");
 */

#ifndef KELLE_COMMON_ARG_PARSER_HPP
#define KELLE_COMMON_ARG_PARSER_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kelle {
namespace common {

class ArgParser
{
  public:
    ArgParser(std::string program, std::string description);

    /** @name Flag registration (call before parse). @{ */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);
    void addDouble(const std::string &name, double def,
                   const std::string &help);
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);
    void addBool(const std::string &name, bool def,
                 const std::string &help);
    /** @} */

    /**
     * Parse argv. Returns false when parsing should end the program:
     * on `--help` (exitCode 0) or on an error (exitCode 1, message +
     * usage on stderr).
     */
    bool parse(int argc, char **argv);

    /** @name Typed access (after parse; flag must be registered). @{ */
    std::int64_t getInt(const std::string &name) const;
    /** Int flag destined for a size/count: fatal()s when negative. */
    std::size_t getSize(const std::string &name) const;
    double getDouble(const std::string &name) const;
    std::string getString(const std::string &name) const;
    bool getBool(const std::string &name) const;
    /** @} */

    /** Whether the flag appeared on the command line. */
    bool provided(const std::string &name) const;

    int exitCode() const { return exitCode_; }
    std::string usage() const;

  private:
    enum class Kind
    {
        Int,
        Double,
        String,
        Bool
    };
    struct Flag
    {
        std::string name;
        Kind kind;
        std::string help;
        std::string defaultText;
        std::int64_t intValue = 0;
        double doubleValue = 0.0;
        std::string stringValue;
        bool boolValue = false;
        bool provided = false;
    };

    Flag *find(const std::string &name);
    const Flag &require(const std::string &name, Kind kind) const;
    bool fail(const std::string &message);

    std::string program_;
    std::string description_;
    std::vector<Flag> flags_;
    int exitCode_ = 0;
};

} // namespace common
} // namespace kelle

#endif // KELLE_COMMON_ARG_PARSER_HPP
