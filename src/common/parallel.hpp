/**
 * @file
 * A minimal parallel-for for embarrassingly parallel sweep cells.
 *
 * `parallelFor(n, threads, body)` runs `body(i)` for every `i` in
 * `[0, n)` on a transient pool of worker threads. Iterations are
 * claimed from a shared atomic counter, so every index executes
 * exactly once whatever the interleaving; a caller that writes cell
 * `i`'s result only into slot `i` of a preallocated output therefore
 * gets results *bit-identical to the serial loop* — which is how the
 * bench harnesses keep their seeded sweeps deterministic while using
 * every core. The first exception thrown by any iteration is captured
 * and rethrown on the calling thread after all workers join.
 */

#ifndef KELLE_COMMON_PARALLEL_HPP
#define KELLE_COMMON_PARALLEL_HPP

#include <cstddef>
#include <functional>

namespace kelle {
namespace common {

/** Hardware concurrency, clamped to at least 1. */
std::size_t defaultParallelism();

/**
 * Run `body(i)` for every i in [0, n) across up to `threads` workers
 * (0 = defaultParallelism()). Runs serially on the calling thread when
 * n <= 1 or only one worker is requested. Blocks until every
 * iteration finished; rethrows the first worker exception.
 */
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)> &body);

/** parallelFor with the default worker count. */
inline void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    parallelFor(n, 0, body);
}

} // namespace common
} // namespace kelle

#endif // KELLE_COMMON_PARALLEL_HPP
