#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace kelle {
namespace common {

std::size_t
defaultParallelism()
{
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void
parallelFor(std::size_t n, std::size_t threads,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    std::size_t workers = threads ? threads : defaultParallelism();
    workers = std::min(workers, n);
    if (n == 1 || workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto drain = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    try {
        for (std::size_t t = 1; t < workers; ++t)
            pool.emplace_back(drain);
    } catch (const std::system_error &) {
        // Spawn failed (thread limits): the workers that did start
        // plus the calling thread still drain every iteration.
    }
    drain(); // the calling thread is worker 0
    for (auto &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace common
} // namespace kelle
