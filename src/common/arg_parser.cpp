#include "common/arg_parser.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/log.hpp"

namespace kelle {
namespace common {

namespace {

/** Parse "1"/"0"/"true"/"false"/"on"/"off". */
bool
parseBoolText(const std::string &text, bool *out)
{
    if (text == "1" || text == "true" || text == "on") {
        *out = true;
        return true;
    }
    if (text == "0" || text == "false" || text == "off") {
        *out = false;
        return true;
    }
    return false;
}

} // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::addInt(const std::string &name, std::int64_t def,
                  const std::string &help)
{
    KELLE_ASSERT(find(name) == nullptr, "duplicate flag --", name);
    Flag f;
    f.name = name;
    f.kind = Kind::Int;
    f.help = help;
    f.intValue = def;
    f.defaultText = std::to_string(def);
    flags_.push_back(std::move(f));
}

void
ArgParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    KELLE_ASSERT(find(name) == nullptr, "duplicate flag --", name);
    Flag f;
    f.name = name;
    f.kind = Kind::Double;
    f.help = help;
    f.doubleValue = def;
    std::ostringstream os;
    os << def;
    f.defaultText = os.str();
    flags_.push_back(std::move(f));
}

void
ArgParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    KELLE_ASSERT(find(name) == nullptr, "duplicate flag --", name);
    Flag f;
    f.name = name;
    f.kind = Kind::String;
    f.help = help;
    f.stringValue = def;
    f.defaultText = def;
    flags_.push_back(std::move(f));
}

void
ArgParser::addBool(const std::string &name, bool def,
                   const std::string &help)
{
    KELLE_ASSERT(find(name) == nullptr, "duplicate flag --", name);
    Flag f;
    f.name = name;
    f.kind = Kind::Bool;
    f.help = help;
    f.boolValue = def;
    f.defaultText = std::to_string(def ? 1 : 0);
    flags_.push_back(std::move(f));
}

ArgParser::Flag *
ArgParser::find(const std::string &name)
{
    for (auto &f : flags_) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

const ArgParser::Flag &
ArgParser::require(const std::string &name, Kind kind) const
{
    for (const auto &f : flags_) {
        if (f.name == name) {
            KELLE_ASSERT(f.kind == kind, "flag --", name,
                         " accessed with the wrong type");
            return f;
        }
    }
    KELLE_PANIC("unregistered flag --", name);
}

bool
ArgParser::fail(const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n%s", program_.c_str(),
                 message.c_str(), usage().c_str());
    exitCode_ = 1;
    return false;
}

bool
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            exitCode_ = 0;
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            return fail(detail::fold("unexpected argument '", arg, "'"));

        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }

        Flag *flag = find(name);
        if (flag == nullptr)
            return fail(detail::fold("unknown flag --", name));

        if (!have_value) {
            // Bare boolean flags mean "true"; everything else consumes
            // the next argument.
            if (flag->kind == Kind::Bool &&
                (i + 1 >= argc ||
                 std::string(argv[i + 1]).rfind("--", 0) == 0)) {
                flag->boolValue = true;
                flag->provided = true;
                continue;
            }
            if (i + 1 >= argc)
                return fail(detail::fold("flag --", name,
                                        " expects a value"));
            value = argv[++i];
        }

        char *end = nullptr;
        switch (flag->kind) {
          case Kind::Int:
            flag->intValue =
                static_cast<std::int64_t>(std::strtoll(value.c_str(),
                                                       &end, 10));
            if (end == value.c_str() || *end != '\0')
                return fail(detail::fold("flag --", name,
                                        " expects an integer, got '",
                                        value, "'"));
            break;
          case Kind::Double:
            flag->doubleValue = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                return fail(detail::fold("flag --", name,
                                        " expects a number, got '",
                                        value, "'"));
            break;
          case Kind::String:
            flag->stringValue = value;
            break;
          case Kind::Bool:
            if (!parseBoolText(value, &flag->boolValue))
                return fail(detail::fold("flag --", name,
                                        " expects 0/1, got '", value,
                                        "'"));
            break;
        }
        flag->provided = true;
    }
    return true;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    return require(name, Kind::Int).intValue;
}

std::size_t
ArgParser::getSize(const std::string &name) const
{
    const std::int64_t v = require(name, Kind::Int).intValue;
    if (v < 0)
        KELLE_FATAL("flag --", name, " must be >= 0, got ", v);
    return static_cast<std::size_t>(v);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return require(name, Kind::Double).doubleValue;
}

std::string
ArgParser::getString(const std::string &name) const
{
    return require(name, Kind::String).stringValue;
}

bool
ArgParser::getBool(const std::string &name) const
{
    return require(name, Kind::Bool).boolValue;
}

bool
ArgParser::provided(const std::string &name) const
{
    for (const auto &f : flags_) {
        if (f.name == name)
            return f.provided;
    }
    return false;
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [flags]\n";
    if (!description_.empty())
        os << "  " << description_ << "\n";
    if (!flags_.empty())
        os << "flags:\n";
    for (const auto &f : flags_) {
        os << "  --" << f.name;
        switch (f.kind) {
          case Kind::Int:
            os << " <int>";
            break;
          case Kind::Double:
            os << " <num>";
            break;
          case Kind::String:
            os << " <str>";
            break;
          case Kind::Bool:
            os << " [0|1]";
            break;
        }
        os << "  " << f.help << " (default " << f.defaultText << ")\n";
    }
    os << "  --help  print this message\n";
    return os.str();
}

} // namespace common
} // namespace kelle
