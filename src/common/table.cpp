#include "common/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/log.hpp"

namespace kelle {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::addRow(std::vector<std::string> row)
{
    KELLE_ASSERT(row.size() == header_.size(),
                 "table row arity ", row.size(), " != header arity ",
                 header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::mult(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
Table::pct(double v, int precision)
{
    return num(v * 100.0, precision) + "%";
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t i = 0; i < row.size(); ++i)
            os << " " << std::setw(static_cast<int>(widths[i])) << row[i]
               << " |";
        os << "\n";
    };
    auto rule = [&]() {
        os << "|";
        for (std::size_t w : widths)
            os << std::string(w + 2, '-') << "|";
        os << "\n";
    };
    emit(header_);
    rule();
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
Table::print(const std::string &caption) const
{
    if (!caption.empty())
        std::printf("%s\n", caption.c_str());
    std::printf("%s\n", render().c_str());
}

} // namespace kelle
