/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (weight init, retention-time
 * sampling, bit-flip injection, workload synthesis) flows through Rng so
 * that every experiment is reproducible from a single seed. The generator
 * is xoshiro256** seeded via SplitMix64, which is fast, high quality and
 * has a tiny state that can be forked cheaply per subsystem.
 */

#ifndef KELLE_COMMON_RNG_HPP
#define KELLE_COMMON_RNG_HPP

#include <cmath>
#include <cstdint>

namespace kelle {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire-style rejection-free bound would be overkill; modulo
        // bias is negligible for the n << 2^64 used here.
        return next() % n;
    }

    /** Standard normal via Box-Muller (no cached second value). */
    double
    gaussian()
    {
        double u1 = uniform();
        double u2 = uniform();
        while (u1 <= 1e-300) {
            u1 = uniform();
        }
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Bernoulli draw. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Fork a decorrelated child generator (for per-subsystem streams). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xD1B54A32D192ED03ull);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace kelle

#endif // KELLE_COMMON_RNG_HPP
