/**
 * @file
 * Lightweight statistics collection: named scalar counters, running
 * summaries (mean/min/max/stddev) and fixed-bin histograms. Components
 * own a Stats::Group and register their counters so experiment drivers
 * can dump everything uniformly.
 */

#ifndef KELLE_COMMON_STATS_HPP
#define KELLE_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kelle {
namespace stats {

/** Running scalar summary without storing samples. */
class Summary
{
  public:
    void
    sample(double v)
    {
        if (n_ == 0) {
            min_ = max_ = v;
        } else {
            if (v < min_)
                min_ = v;
            if (v > max_)
                max_ = v;
        }
        ++n_;
        // Welford's online update keeps the variance numerically stable.
        double delta = v - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (v - mean_);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return mean_; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(n_); }
    double variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    double stddev() const;

    void
    reset()
    {
        *this = Summary();
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width-bin histogram over [lo, hi); out-of-range goes to edge bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void sample(double v);
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }
    std::size_t numBins() const { return bins_.size(); }
    std::uint64_t total() const { return total_; }
    double binLow(std::size_t i) const;
    std::string toString() const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/**
 * A named group of counters. Counters are created on first use, so
 * model code can write `group.add("dram_bytes", n)` unconditionally.
 */
class Group
{
  public:
    explicit Group(std::string name = "") : name_(std::move(name)) {}

    void
    add(const std::string &key, double delta)
    {
        counters_[key] += delta;
    }
    void
    set(const std::string &key, double value)
    {
        counters_[key] = value;
    }
    double get(const std::string &key) const;
    bool has(const std::string &key) const;

    const std::map<std::string, double> &counters() const { return counters_; }
    const std::string &name() const { return name_; }

    /** Merge all counters from another group into this one. */
    void merge(const Group &other);
    void reset() { counters_.clear(); }

    std::string toString() const;

  private:
    std::string name_;
    std::map<std::string, double> counters_;
};

} // namespace stats
} // namespace kelle

#endif // KELLE_COMMON_STATS_HPP
