/**
 * @file
 * A persistent worker pool for fine-grained fork/join parallelism.
 *
 * `common::parallelFor` spawns and joins transient threads per call,
 * which is fine for bench sweeps where each iteration runs for
 * milliseconds, but far too heavy for the parallel cluster engine,
 * which forks a device-sized batch of work at every lookahead window
 * — often microseconds of work per device. `ThreadPool` keeps its
 * workers alive across `forEach` calls: a dispatch is one atomic
 * epoch bump plus (when workers had gone to sleep) one condition
 * notify, and workers spin briefly before sleeping so back-to-back
 * windows never pay a futex round trip.
 *
 * Iterations are claimed from a shared atomic counter exactly like
 * `parallelFor`, so every index executes exactly once whatever the
 * interleaving, and a caller that writes only slot `i` of a
 * preallocated output gets results bit-identical to the serial loop.
 * `forEach` blocks until every iteration finished (the join is the
 * synchronization point: all worker writes happen-before it returns)
 * and rethrows the first worker exception on the calling thread.
 */

#ifndef KELLE_COMMON_THREAD_POOL_HPP
#define KELLE_COMMON_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kelle {
namespace common {

class ThreadPool
{
  public:
    /**
     * A pool that runs `forEach` bodies across `threads` lanes: the
     * calling thread plus `threads - 1` persistent workers
     * (0 = defaultParallelism()). A 1-thread pool spawns nothing and
     * runs every body inline.
     */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (workers + the calling thread). */
    std::size_t threads() const { return threads_; }

    /**
     * Run `body(i)` for every i in [0, n) across the pool plus the
     * calling thread; blocks until every iteration finished. Bodies
     * see all caller writes made before the call, and the caller sees
     * all body writes after it returns. Not reentrant: a body must
     * not call forEach on the same pool.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &body);

  private:
    void workerLoop();
    void drain(const std::function<void(std::size_t)> &body,
               std::size_t n);

    std::size_t threads_;
    std::vector<std::thread> workers_;

    /** Bumped once per forEach; workers run the job whose epoch they
     *  have not processed yet, then park. */
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> shutdown_{false};
    /** Iterations of the current job that have finished executing. */
    std::atomic<std::size_t> done_{0};
    /** Workers currently inside drain(); guarded by mutex_ so forEach
     *  can wait for stragglers before replacing the job payload. */
    std::size_t inDrain_ = 0;

    /** Job payload for the current epoch (written under mutex_ before
     *  the epoch bump publishes it). */
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t jobSize_ = 0;
    std::atomic<std::size_t> next_{0};

    std::mutex mutex_;
    std::condition_variable wake_;

    std::exception_ptr firstError_;
    std::mutex errorMutex_;
};

} // namespace common
} // namespace kelle

#endif // KELLE_COMMON_THREAD_POOL_HPP
