#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace kelle {

std::string
formatSi(double value, const std::string &unit)
{
    struct Scale
    {
        double factor;
        const char *prefix;
    };
    static constexpr std::array<Scale, 9> scales = {{
        {1e12, "T"},
        {1e9, "G"},
        {1e6, "M"},
        {1e3, "k"},
        {1.0, ""},
        {1e-3, "m"},
        {1e-6, "u"},
        {1e-9, "n"},
        {1e-12, "p"},
    }};

    double mag = value < 0 ? -value : value;
    if (mag == 0.0)
        return "0 " + unit;

    for (const auto &s : scales) {
        if (mag >= s.factor) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.3g %s%s", value / s.factor,
                          s.prefix, unit.c_str());
            return buf;
        }
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g %s", value, unit.c_str());
    return buf;
}

} // namespace kelle
