/**
 * @file
 * The layer-6 edge-cluster serving engine: one shared request stream
 * served by N simulated accelerators on one `sim::EventQueue`.
 *
 *   arrivals --DispatchPolicy--> DeviceEngine[i] (own KV pool, own
 *   policy-driven step loop, own timing/energy model instance)
 *                                  --> ClusterReport roll-up
 *
 * `ClusterEngine` generates the seeded arrival trace once, routes
 * every arrival through a pluggable `DispatchPolicy` (round-robin /
 * join-shortest-kv / deadline-aware) to one of N per-device executors,
 * and runs the shared event queue to completion. Devices are fully
 * independent after dispatch — each owns a `KvBudgetAllocator` over
 * its own KV pool, a scheduling `Policy`, and its accelerator config —
 * so heterogeneous fleets (eDRAM- and SRAM-backed devices, different
 * pool sizes or batch caps) mix freely in one cluster.
 *
 * Preempt-and-requeue is the cluster-level budget-reclamation knob:
 * with `ClusterConfig::preempt.enabled`, a device reclaims the KV
 * grant of a deadline-doomed decode (see device_engine.hpp) and hands
 * the victim back to the cluster, which re-dispatches it through the
 * same dispatch policy — possibly onto a different device with more
 * free budget.
 *
 * Everything is a pure function of the config: reruns are
 * bit-identical, and a 1-device cluster under any dispatch policy
 * reproduces the single-device `Scheduler` bit-exactly.
 */

#ifndef KELLE_CLUSTER_CLUSTER_ENGINE_HPP
#define KELLE_CLUSTER_CLUSTER_ENGINE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_metrics.hpp"
#include "cluster/dispatch_policy.hpp"
#include "faults/fault_injector.hpp"
#include "serving/device_engine.hpp"
#include "serving/request_generator.hpp"
#include "serving/scheduler.hpp"
#include "sim/event_queue.hpp"

namespace kelle {
namespace cluster {

/** What differs per device in a (possibly heterogeneous) fleet. */
struct DeviceSpec
{
    std::string name;
    accel::SystemConfig system = accel::kelleEdramSystem(2048);
    /** KV pool tokens; 0 = §8.4.1 capacity analysis of `system`. */
    std::size_t poolTokens = 0;
    std::size_t maxBatch = 16;
};

/** Full configuration of a cluster run. */
struct ClusterConfig
{
    /**
     * The traffic of the shared stream plus every engine knob the
     * devices inherit — model, scheduling policy, chunking and its
     * slack rule, preemption, budget override, watermark, step cap,
     * verbosity. Scheduler and ClusterEngine both materialize device
     * engines through the same `deviceConfigFrom` copy, so the two
     * paths cannot disagree on a knob (a field missed there is
     * dropped from *both* equally — add new knobs to that one
     * function). `system` / `poolTokens` / `maxBatch` act only as the
     * homogeneous-fleet defaults; each `DeviceSpec` overrides them.
     */
    serving::ServingConfig engine;
    DispatchKind dispatch = DispatchKind::RoundRobin;
    /** The fleet; must not be empty. */
    std::vector<DeviceSpec> devices;
    /**
     * Worker lanes for the deterministic parallel engine: 1 (default)
     * runs the serial shared-heap engine; 0 means one lane per
     * hardware thread; N caps at N lanes. Lanes are clamped to the
     * fleet size, and verbose runs always fall back to serial so the
     * log interleaving stays the serial one. Every value yields a
     * bit-identical ClusterReport — the parallel engine advances each
     * device only to a conservative lookahead horizon and merges
     * cross-device effects in the serial heap's pop order (see
     * docs/ARCHITECTURE.md, "Parallel cluster engine").
     */
    std::size_t threads = 1;
    /**
     * Deterministic fault injection (src/faults): seeded per-device
     * crash / slowdown / pool-shrink disruptions with recovery,
     * crash-eviction re-dispatch under a capped-backoff retry budget,
     * and the graceful-degradation ladder. Disabled (the default) the
     * engine never constructs an injector and every path — serial and
     * parallel — is bit-identical to the pre-fault build.
     */
    faults::FaultConfig faults;
};

/** N identical devices named dev0..devN-1. */
std::vector<DeviceSpec> homogeneousFleet(
    std::size_t n,
    const accel::SystemConfig &system = accel::kelleEdramSystem(2048),
    std::size_t pool_tokens = 0, std::size_t max_batch = 16);

/**
 * An alternating eDRAM/SRAM fleet (edram0, sram1, edram2, ...): the
 * heterogeneity study of the source paper's co-design at fleet scale.
 * eDRAM-backed devices take `edram_pool_tokens`, SRAM-backed ones
 * `sram_pool_tokens` (0 = capacity analysis for either), so the KV
 * capacity asymmetry the dispatch policies must balance is explicit.
 */
std::vector<DeviceSpec> heteroEdramSramFleet(
    std::size_t n, std::size_t budget = 2048,
    std::size_t edram_pool_tokens = 0,
    std::size_t sram_pool_tokens = 0, std::size_t max_batch = 16);

/**
 * Lift a single-device ServingConfig onto an n-device homogeneous
 * cluster (the equivalence seam: n = 1 reproduces the Scheduler run
 * bit-exactly under any dispatch policy).
 */
ClusterConfig clusterConfigFrom(const serving::ServingConfig &cfg,
                                std::size_t n_devices,
                                DispatchKind dispatch);

/** Cluster-side health of one device (driven by the fault stream). */
enum class DeviceHealth : std::uint8_t
{
    Healthy,
    Degraded,   ///< slowdown or pool-shrink disruption active
    Down,       ///< crashed: blacklisted from dispatch
    Recovering, ///< crash repaired, warm-up running (dispatchable)
};

class ClusterEngine
{
  public:
    explicit ClusterEngine(const ClusterConfig &cfg);

    /** Generate the trace, serve it across the fleet, roll up. */
    ClusterReport run();

    std::size_t deviceCount() const { return devices_.size(); }
    /** Per-device engine state after run() (tests/examples). */
    const serving::DeviceEngine &device(std::size_t i) const
    {
        return *devices_[i];
    }
    /** The shared request table after run(). */
    const std::vector<serving::Request> &requests() const
    {
        return requests_;
    }

    /** Per-device health after run() (Healthy without faults). */
    DeviceHealth health(std::size_t i) const
    {
        return health_.empty() ? DeviceHealth::Healthy : health_[i];
    }

  private:
    /** Dispatch-policy pick plus the canEverAdmit fallback. Down
     *  devices are blacklisted; `devices_.size()` is returned when
     *  the whole fleet is down (the caller schedules a retry). */
    std::size_t pickDevice(std::size_t idx);
    void dispatchArrival(std::size_t idx);
    /** Parallel-mode dispatch: line the target's partition clock up
     *  with the globally-timestamped injection, then enqueue. */
    void dispatchAt(Time t, std::size_t idx);
    /** Refresh and return the reusable status-snapshot scratch. */
    const std::vector<DeviceStatus> &statuses();
    void runSerial();
    void runParallel();
    /** Dispatch buffered preemption requeues in the serial heap's pop
     *  order: (emitting device index, per-device emission order). */
    void drainRequeues(Time t);
    /** Earliest requeue any device could still emit (+inf when none). */
    Time nextRequeueBound() const;
    /** @name Fault machinery (injector_ != nullptr only). @{ */
    /** Apply one fault instant: flip health, drive the device's fault
     *  surface, schedule eviction retries, run the degradation
     *  ladder. Requires every (relevant) event queue advanced to
     *  `ev.at`. */
    void applyFault(const faults::FaultEvent &ev);
    /** Re-dispatch `idx` after a capped exponential backoff, or fail
     *  it permanently once the retry budget is spent. */
    void scheduleRetry(std::size_t idx, Time now);
    /** Terminal failure of `idx` on its last device. */
    void permanentFail(std::size_t idx, Time now);
    /** Serial retry event: pop the earliest pending retry. */
    void fireRetry();
    /** Parallel round phase: dispatch retries due at `t` in (at, seq)
     *  order, draining cascaded requeues after each (the serial
     *  heap's pop order: requeue priority < retry priority). */
    void drainRetries(Time t);
    /** Earliest pending fault re-dispatch (+inf when none). */
    Time nextRetryTime() const;
    /** Fill ClusterReport::faults after the roll-up. */
    void fillFaultReport(ClusterReport *rep, Time last) const;
    /** @} */

    ClusterConfig cfg_;
    /** `cfg_.engine.trace`'s requests track (dispatch instants);
     *  null when tracing is off. */
    obs::TraceTrack *clusterTrack_ = nullptr;
    sim::EventQueue queue_;
    std::vector<serving::Request> requests_;
    std::unique_ptr<DispatchPolicy> dispatch_;
    std::vector<std::unique_ptr<serving::DeviceEngine>> devices_;
    /** Per-arrival DeviceStatus scratch (dispatch is allocation-free). */
    std::vector<DeviceStatus> statusScratch_;
    /** Index of the earliest trace arrival not yet dispatched (feeds
     *  the devices' fast-forward horizon; see Hooks). */
    std::size_t arrivalCursor_ = 0;

    /** Resolved worker lanes (1 = serial engine). */
    std::size_t threads_ = 1;
    /** @name Parallel-engine state (threads_ > 1 only)
     * Each device steps its own event-queue partition; the coordinator
     * alternates lock-free lookahead windows (no cross-device effect
     * can occur before the horizon) with serialized rounds that merge
     * arrivals, same-time boundaries and requeues in the serial heap's
     * pop order. `windowHorizon_` backs Hooks::nextExternalEvent: it
     * is written by the coordinator only while the workers are joined,
     * and read by them only inside a window.
     * @{ */
    std::vector<std::unique_ptr<sim::EventQueue>> localQueues_;
    Time windowHorizon_;
    /** Preemption victims emitted this round, one buffer per emitting
     *  device, consumed from `requeueBufPos_`. */
    std::vector<std::vector<std::size_t>> requeueBufs_;
    std::vector<std::size_t> requeueBufPos_;
    /** @} */

    /** Serial mode: requeue events scheduled but not yet dispatched —
     *  while nonzero, no device may fast-forward past `now`. */
    int pendingRequeues_ = 0;

    /** @name Fault state (null/empty when cfg_.faults.enabled off;
     * every guard below is a pointer test, so the faults-off paths
     * are byte-identical to the pre-fault build). @{ */
    std::unique_ptr<faults::FaultInjector> injector_;
    std::vector<DeviceHealth> health_;
    std::size_t downCount_ = 0;
    /** Crash-start instant per device (meaningful while Down). */
    std::vector<Time> downSince_;
    /** Last device each request was dispatched to (terminal fault
     *  failures land on it). */
    std::vector<std::size_t> lastDevice_;
    /** One pending fault re-dispatch; `seq` breaks same-time ties in
     *  scheduling order, matching the serial heap's (time, seq). */
    struct PendingRetry
    {
        Time at;
        std::uint64_t seq = 0;
        std::size_t req = 0;
    };
    std::vector<PendingRetry> retryPending_; ///< unordered, rare
    std::uint64_t retrySeq_ = 0;
    std::vector<std::size_t> victimScratch_;
    std::vector<std::size_t> shedScratch_;
    /** Compacted-status index map: statusScratch_ row -> device. */
    std::vector<std::size_t> upIndexScratch_;
    /** Aggregate fault accounting (ClusterFaultReport source). */
    std::uint64_t crashes_ = 0;
    std::uint64_t slowdowns_ = 0;
    std::uint64_t shrinks_ = 0;
    std::uint64_t lostTokens_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t shedRequests_ = 0;
    std::uint64_t permanentFailures_ = 0;
    std::vector<ClusterFaultReport::Device> faultDevs_;
    /** @} */
};

} // namespace cluster
} // namespace kelle

#endif // KELLE_CLUSTER_CLUSTER_ENGINE_HPP
