/**
 * @file
 * Request-to-device routing for the edge cluster: *which device*
 * serves a request, decoupled from what each device's scheduling
 * policy does with it once it is there.
 *
 * A `DispatchPolicy` sees one arriving (or requeued) request plus a
 * `DeviceStatus` snapshot of every device and returns a device index.
 * Shipped policies:
 *
 *  - `round-robin`: rotate through the fleet regardless of state; the
 *    baseline every balancer must beat.
 *  - `join-shortest-kv`: route to the device with the most free KV
 *    budget (ties: fewer queued-plus-resident requests, then lowest
 *    index). KV
 *    capacity — not compute — is the binding constraint of edge
 *    serving, so "shortest queue" is measured in pool bytes: the
 *    device most able to *admit* the request serves it.
 *  - `deadline-aware`: TTFT-pressed requests (deadline at or below
 *    the running mean of the deadlines dispatched so far — an online,
 *    mix-adaptive threshold) go to the least-loaded device (fewest
 *    waiting + resident, ties by free KV); relaxed requests fall back
 *    to round-robin.
 *
 * Policies may keep internal state (rotation counters, the deadline
 * mean); dispatching the same trace to the same fleet is always
 * deterministic.
 */

#ifndef KELLE_CLUSTER_DISPATCH_POLICY_HPP
#define KELLE_CLUSTER_DISPATCH_POLICY_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "serving/request.hpp"

namespace kelle {
namespace cluster {

enum class DispatchKind
{
    RoundRobin,     ///< rotate through the fleet
    JoinShortestKv, ///< most free KV pool bytes first
    DeadlineAware,  ///< TTFT-pressed requests to the least loaded
};

std::string toString(DispatchKind k);
/**
 * Parse "round-robin" / "join-shortest-kv" / "deadline-aware" (plus a
 * few aliases); returns false on unknown input.
 */
bool parseDispatchPolicy(const std::string &text, DispatchKind *out);
/** The valid dispatch names, for CLI errors: "round-robin|...". */
std::string dispatchPolicyNames();
/** Every dispatch policy, in enum order (bench/test sweeps). */
std::vector<DispatchKind> allDispatchPolicies();

/** One device's load, as the dispatcher sees it. */
struct DeviceStatus
{
    double freeKvBytes = 0.0;     ///< pool capacity - reserved
    double kvCapacityBytes = 0.0; ///< whole pool
    std::size_t waiting = 0;      ///< queued for admission
    std::size_t active = 0;       ///< admitted + running
};

class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    virtual DispatchKind kind() const = 0;

    /** Device index for this request; `devices` is never empty. */
    virtual std::size_t pick(const serving::Request &r,
                             const std::vector<DeviceStatus> &devices)
        = 0;
};

/** Build the dispatch policy object for a DispatchKind value. */
std::unique_ptr<DispatchPolicy> makeDispatchPolicy(DispatchKind kind);

} // namespace cluster
} // namespace kelle

#endif // KELLE_CLUSTER_DISPATCH_POLICY_HPP
