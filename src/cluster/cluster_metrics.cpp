#include "cluster/cluster_metrics.hpp"

#include <cmath>

namespace kelle {
namespace cluster {

double
coefficientOfVariation(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    if (mean <= 0.0)
        return 0.0;
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= static_cast<double>(xs.size());
    return std::sqrt(var) / mean;
}

ClusterReport
rollUpCluster(const std::vector<const serving::DeviceEngine *> &devices,
              Time makespan)
{
    ClusterReport out;
    serving::ServingMetrics merged;
    std::vector<double> busy;
    busy.reserve(devices.size());

    serving::ServingReport &agg = out.aggregate;
    agg.drained = true;
    for (const serving::DeviceEngine *dev : devices) {
        merged.merge(dev->metrics());

        ClusterDeviceReport d;
        d.name = dev->config().name;
        d.report = serving::deviceReport(*dev, makespan);
        d.dispatched = dev->dispatched();
        d.busySec = dev->busyTime().sec();
        d.kvPeakUtilization =
            d.report.poolCapacityBytes > 0.0
                ? d.report.poolPeakBytes / d.report.poolCapacityBytes
                : 0.0;
        busy.push_back(d.busySec);

        agg.engineSteps += d.report.engineSteps;
        agg.decodeSteps += d.report.decodeSteps;
        agg.prefillChunks += d.report.prefillChunks;
        agg.prefills += d.report.prefills;
        agg.poolTokens += d.report.poolTokens;
        agg.poolCapacityBytes += d.report.poolCapacityBytes;
        agg.poolPeakBytes += d.report.poolPeakBytes;
        agg.shrunkGrants += d.report.shrunkGrants;
        agg.deferrals += d.report.deferrals;
        agg.peakLogicalTokens += d.report.peakLogicalTokens;
        if (d.report.paged.enabled) {
            agg.paged.enabled = true;
            agg.paged.totalPages += d.report.paged.totalPages;
            agg.paged.blockTokens = d.report.paged.blockTokens;
            agg.paged.peakUsedPages += d.report.paged.peakUsedPages;
            agg.paged.peakSharedPages +=
                d.report.paged.peakSharedPages;
            agg.paged.prefixHitTokens +=
                d.report.paged.prefixHitTokens;
            agg.paged.cowCopies += d.report.paged.cowCopies;
            agg.paged.cachedReclaims +=
                d.report.paged.cachedReclaims;
            agg.paged.tailReclaims += d.report.paged.tailReclaims;
            agg.paged.reclaimedPages +=
                d.report.paged.reclaimedPages;
            agg.paged.budgetClips += d.report.paged.budgetClips;
        }
        agg.drained = agg.drained && d.report.drained;
        out.meanKvPeakUtilization += d.kvPeakUtilization;
        out.devices.push_back(std::move(d));
    }
    agg.summary = merged.summarize(makespan);
    if (!devices.empty())
        out.meanKvPeakUtilization /=
            static_cast<double>(devices.size());
    out.loadImbalanceCv = coefficientOfVariation(busy);
    out.refreshEnergyJ = agg.summary.energy.refresh.j();
    return out;
}

void
exportClusterMetrics(const ClusterReport &rep,
                     obs::MetricsRegistry &reg)
{
    const serving::ServingSummary &sum = rep.aggregate.summary;
    reg.setGauge("cluster.completed",
                 static_cast<double>(sum.completed));
    reg.setGauge("cluster.rejected",
                 static_cast<double>(sum.rejected));
    reg.setGauge("cluster.goodput_tok_per_s",
                 sum.goodputTokensPerSec);
    reg.setGauge("cluster.slo_attainment", sum.sloAttainment);
    reg.setGauge("cluster.preemptions",
                 static_cast<double>(sum.preemptions));
    reg.setGauge("cluster.load_imbalance_cv", rep.loadImbalanceCv);
    reg.setGauge("cluster.mean_kv_peak_utilization",
                 rep.meanKvPeakUtilization);
    reg.setGauge("cluster.refresh_energy_j", rep.refreshEnergyJ);
    reg.setGauge("cluster.kv_peak_logical_tokens",
                 static_cast<double>(
                     rep.aggregate.peakLogicalTokens));
    if (rep.aggregate.paged.enabled) {
        const serving::PagedPoolStats &p = rep.aggregate.paged;
        reg.setGauge("cluster.kv_pages_total",
                     static_cast<double>(p.totalPages));
        reg.setGauge("cluster.kv_pages_peak_used",
                     static_cast<double>(p.peakUsedPages));
        reg.setGauge("cluster.kv_pages_peak_shared",
                     static_cast<double>(p.peakSharedPages));
        reg.setGauge("cluster.kv_prefix_hit_tokens",
                     static_cast<double>(p.prefixHitTokens));
        reg.setGauge("cluster.kv_cow_copies",
                     static_cast<double>(p.cowCopies));
        reg.setGauge("cluster.kv_cached_reclaims",
                     static_cast<double>(p.cachedReclaims));
        reg.setGauge("cluster.kv_tail_reclaims",
                     static_cast<double>(p.tailReclaims));
        reg.setGauge("cluster.kv_reclaimed_pages",
                     static_cast<double>(p.reclaimedPages));
        reg.setGauge("cluster.kv_budget_clips",
                     static_cast<double>(p.budgetClips));
    }
    if (rep.faults.enabled) {
        const ClusterFaultReport &f = rep.faults;
        reg.setGauge("cluster.fault_crashes",
                     static_cast<double>(f.crashes));
        reg.setGauge("cluster.fault_slowdowns",
                     static_cast<double>(f.slowdowns));
        reg.setGauge("cluster.fault_pool_shrinks",
                     static_cast<double>(f.shrinks));
        reg.setGauge("cluster.fault_downtime_sec",
                     f.totalDowntimeSec);
        reg.setGauge("cluster.fault_lost_tokens",
                     static_cast<double>(f.lostTokens));
        reg.setGauge("cluster.fault_retries",
                     static_cast<double>(f.retries));
        reg.setGauge("cluster.fault_retry_successes",
                     static_cast<double>(f.retrySuccesses));
        reg.setGauge("cluster.fault_shed_requests",
                     static_cast<double>(f.shedRequests));
        reg.setGauge("cluster.fault_permanent_failures",
                     static_cast<double>(f.permanentFailures));
        const double span = sum.makespan.sec() *
                            static_cast<double>(rep.devices.size());
        reg.setGauge("cluster.availability",
                     span > 0.0
                         ? 1.0 - f.totalDowntimeSec / span
                         : 1.0);
    }
    const double makespan = sum.makespan.sec();
    for (const ClusterDeviceReport &d : rep.devices) {
        const std::string prefix =
            d.name.empty() ? "device" : d.name;
        reg.setGauge(prefix + ".busy_sec", d.busySec);
        reg.setGauge(prefix + ".busy_frac",
                     makespan > 0.0 ? d.busySec / makespan : 0.0);
        reg.setGauge(prefix + ".dispatched",
                     static_cast<double>(d.dispatched));
        reg.setGauge(prefix + ".completed",
                     static_cast<double>(d.report.summary.completed));
        reg.setGauge(prefix + ".kv_peak_utilization",
                     d.kvPeakUtilization);
    }
}

} // namespace cluster
} // namespace kelle
