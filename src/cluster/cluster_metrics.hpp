/**
 * @file
 * Roll-up of a multi-device serving run: per-device `ServingReport`s
 * plus fleet-level aggregates.
 *
 * Every device keeps its own `ServingMetrics`; the roll-up merges
 * them into one record set and summarizes once over the *cluster*
 * makespan (first arrival to last completion anywhere), so aggregate
 * percentiles are computed over the union of completed requests, not
 * averaged per device. Per-device summaries use the same makespan, so
 * per-device goodput numbers add up to the aggregate. For a 1-device
 * cluster the aggregate is bit-identical to the single-device
 * `Scheduler` report.
 *
 * Fleet-level figures beyond the merged summary:
 *  - load imbalance: the population coefficient of variation
 *    (stddev / mean) of per-device busy time — 0 for a perfectly
 *    balanced fleet, growing as dispatch skews work;
 *  - KV utilization: per-device peak pool fraction and its fleet mean;
 *  - total eDRAM refresh energy across every device.
 */

#ifndef KELLE_CLUSTER_CLUSTER_METRICS_HPP
#define KELLE_CLUSTER_CLUSTER_METRICS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "serving/device_engine.hpp"
#include "serving/scheduler.hpp"

namespace kelle {
namespace cluster {

/** One device's slice of the run. */
struct ClusterDeviceReport
{
    std::string name;
    serving::ServingReport report; ///< summarized on cluster makespan
    std::size_t dispatched = 0;    ///< requests routed to this device
    double busySec = 0.0;          ///< wall-clock executing steps
    double kvPeakUtilization = 0.0; ///< peak reserved / pool capacity
};

/**
 * Fault-tolerance accounting of a run (src/faults). `enabled` false
 * (the default, faults off) leaves every other field zero and keeps
 * all printers/exports byte-identical to the pre-fault build.
 */
struct ClusterFaultReport
{
    bool enabled = false;
    /** Sum of per-device crash downtime, seconds. Availability is
     *  `1 - totalDowntimeSec / (devices x makespan)`. */
    double totalDowntimeSec = 0.0;
    std::uint64_t crashes = 0;
    std::uint64_t slowdowns = 0;
    std::uint64_t shrinks = 0;
    /** KV tokens discarded by crash evictions (regeneration cost). */
    std::uint64_t lostTokens = 0;
    /** Fault re-dispatches scheduled (crash evictions + sheds). */
    std::uint64_t retries = 0;
    /** Requests that completed after >= 1 fault retry. */
    std::uint64_t retrySuccesses = 0;
    /** Waiting requests shed by the degradation ladder. */
    std::uint64_t shedRequests = 0;
    /** Requests whose fault-retry budget ran out (terminal). */
    std::uint64_t permanentFailures = 0;
    struct Device
    {
        std::uint64_t crashes = 0;
        double downtimeSec = 0.0;
    };
    std::vector<Device> devices;
};

/** The whole fleet's outcome. */
struct ClusterReport
{
    /** Merged-and-summarized roll-up over every device. */
    serving::ServingReport aggregate;
    std::vector<ClusterDeviceReport> devices;
    /** Population CV of per-device busy time (0 = balanced). */
    double loadImbalanceCv = 0.0;
    /** Mean of per-device peak KV pool utilization. */
    double meanKvPeakUtilization = 0.0;
    /** Total eDRAM refresh energy across the fleet, joules. */
    double refreshEnergyJ = 0.0;
    /** Fault/recovery accounting (enabled only on fault runs). */
    ClusterFaultReport faults;
};

/** Population coefficient of variation; 0 for empty or zero-mean. */
double coefficientOfVariation(const std::vector<double> &xs);

/** Merge every device into the fleet-level ClusterReport. */
ClusterReport rollUpCluster(
    const std::vector<const serving::DeviceEngine *> &devices,
    Time makespan);

/**
 * Register the fleet roll-up's scalars in an `obs::MetricsRegistry`:
 * `cluster.*` gauges (completed/rejected/goodput/SLO attainment/load
 * imbalance CV/mean KV peak utilization/refresh energy/preemptions)
 * plus per-device `<name>.busy_sec`, `<name>.busy_frac` (busy time
 * over cluster makespan), `<name>.dispatched`, `<name>.completed` and
 * `<name>.kv_peak_utilization`. bench_cluster prints its summary
 * figures out of this registry so the printed numbers and the
 * `--metrics-out` dump cannot diverge.
 */
void exportClusterMetrics(const ClusterReport &rep,
                          obs::MetricsRegistry &reg);

} // namespace cluster
} // namespace kelle

#endif // KELLE_CLUSTER_CLUSTER_METRICS_HPP
