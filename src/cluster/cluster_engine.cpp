#include "cluster/cluster_engine.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"
#include "common/table.hpp"

namespace kelle {
namespace cluster {

std::vector<DeviceSpec>
homogeneousFleet(std::size_t n, const accel::SystemConfig &system,
                 std::size_t pool_tokens, std::size_t max_batch)
{
    KELLE_ASSERT(n > 0, "a fleet needs at least one device");
    std::vector<DeviceSpec> fleet;
    fleet.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DeviceSpec d;
        d.name = "dev" + std::to_string(i);
        d.system = system;
        d.poolTokens = pool_tokens;
        d.maxBatch = max_batch;
        fleet.push_back(std::move(d));
    }
    return fleet;
}

std::vector<DeviceSpec>
heteroEdramSramFleet(std::size_t n, std::size_t budget,
                     std::size_t edram_pool_tokens,
                     std::size_t sram_pool_tokens,
                     std::size_t max_batch)
{
    KELLE_ASSERT(n > 0, "a fleet needs at least one device");
    std::vector<DeviceSpec> fleet;
    fleet.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DeviceSpec d;
        const bool edram = i % 2 == 0;
        d.name = (edram ? "edram" : "sram") + std::to_string(i);
        d.system = edram ? accel::kelleEdramSystem(budget)
                         : accel::aerpSramSystem(budget);
        d.poolTokens = edram ? edram_pool_tokens : sram_pool_tokens;
        d.maxBatch = max_batch;
        fleet.push_back(std::move(d));
    }
    return fleet;
}

ClusterConfig
clusterConfigFrom(const serving::ServingConfig &cfg,
                  std::size_t n_devices, DispatchKind dispatch)
{
    ClusterConfig c;
    c.engine = cfg;
    c.dispatch = dispatch;
    c.devices = homogeneousFleet(n_devices, cfg.system, cfg.poolTokens,
                                 cfg.maxBatch);
    return c;
}

ClusterEngine::ClusterEngine(const ClusterConfig &cfg)
    : cfg_(cfg), dispatch_(makeDispatchPolicy(cfg.dispatch))
{
    KELLE_ASSERT(!cfg_.devices.empty(),
                 "a cluster needs at least one device");
    devices_.reserve(cfg_.devices.size());
    for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
        const DeviceSpec &spec = cfg_.devices[i];
        // One copy path for the shared knobs (deviceConfigFrom), then
        // only what a DeviceSpec may override.
        serving::DeviceConfig d = deviceConfigFrom(cfg_.engine);
        // A 1-device fleet keeps the empty label so its verbose log is
        // bit-identical to the single-device Scheduler's.
        d.name = cfg_.devices.size() > 1 ? spec.name : "";
        d.system = spec.system;
        d.poolTokens = spec.poolTokens;
        d.maxBatch = spec.maxBatch;
        devices_.push_back(std::make_unique<serving::DeviceEngine>(
            d, queue_, requests_));

        serving::DeviceEngine::Hooks hooks;
        // Requeue through an immediate event: the victim re-enters the
        // dispatch policy after the preempting device's step boundary
        // completes, never re-entering an engine mid-dispatch.
        hooks.requeue = [this](std::size_t idx) {
            queue_.schedule(queue_.now(),
                            [this, idx] { dispatchArrival(idx); });
        };
        // With preemption off, the only events that can reach a device
        // from outside are the trace arrivals, so a device may
        // fast-forward straight through other devices' step
        // completions (they touch only their own device and commute
        // with this one's boundaries). With preemption on, a victim
        // requeue can land anywhere at any boundary — leave the hook
        // unset and fall back to the conservative global bound.
        if (!cfg_.engine.preempt.enabled) {
            hooks.nextExternalEvent = [this] {
                return arrivalCursor_ < requests_.size()
                           ? requests_[arrivalCursor_].arrival
                           : Time::seconds(
                                 std::numeric_limits<double>::infinity());
            };
        }
        devices_.back()->setHooks(std::move(hooks));
    }
}

const std::vector<DeviceStatus> &
ClusterEngine::statuses()
{
    statusScratch_.clear();
    statusScratch_.reserve(devices_.size());
    for (const auto &dev : devices_) {
        DeviceStatus s;
        s.freeKvBytes = dev->freeKvBytes();
        s.kvCapacityBytes = dev->allocator().capacityBytes();
        s.waiting = dev->waitingCount();
        s.active = dev->activeCount();
        statusScratch_.push_back(s);
    }
    return statusScratch_;
}

void
ClusterEngine::dispatchArrival(std::size_t idx)
{
    std::size_t d = dispatch_->pick(requests_[idx], statuses());
    KELLE_ASSERT(d < devices_.size(),
                 "dispatch picked a device outside the fleet");
    // Blind routing must not turn a serveable request into a
    // permanent rejection: if the picked device's whole pool can
    // never hold the request's floor, fall back to the feasible
    // device with the most free KV (ties: lowest index). When no
    // device can ever fit, the pick stands and the rejection is real.
    if (!devices_[d]->canEverAdmit(requests_[idx])) {
        std::size_t best = devices_.size();
        for (std::size_t i = 0; i < devices_.size(); ++i) {
            if (!devices_[i]->canEverAdmit(requests_[idx]))
                continue;
            if (best == devices_.size() ||
                devices_[i]->freeKvBytes() >
                    devices_[best]->freeKvBytes())
                best = i;
        }
        if (best != devices_.size())
            d = best;
    }
    if (cfg_.engine.verbose && devices_.size() > 1) {
        const serving::Request &r = requests_[idx];
        inform("t=", toString(queue_.now()), " dispatch request #",
               r.id, r.preemptions > 0 ? " (requeued)" : "", " -> ",
               devices_[d]->config().name, " (free KV ",
               Table::num(Bytes(devices_[d]->freeKvBytes()).inMib(),
                          1),
               " MiB, ", devices_[d]->waitingCount(), " waiting, ",
               devices_[d]->activeCount(), " resident)");
    }
    devices_[d]->enqueue(idx);
}

ClusterReport
ClusterEngine::run()
{
    requests_ = serving::generateTrace(cfg_.engine.traffic);
    // All arrivals up front plus one in-flight step per device and
    // the occasional preemption requeue.
    queue_.reserve(requests_.size() + devices_.size() + 8);
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        // The cursor feeds Hooks::nextExternalEvent: arrivals fire in
        // trace order, so requests_[arrivalCursor_] is always the
        // earliest arrival still pending.
        queue_.schedule(requests_[i].arrival, [this, i] {
            arrivalCursor_ = i + 1;
            dispatchArrival(i);
        });
    }
    queue_.runAll();

    // Makespan is first arrival to last completion anywhere in the
    // fleet; the idle lead-in before the first arrival is not serving
    // time.
    Time last;
    for (const auto &dev : devices_)
        last = std::max(last, dev->lastCompletion());
    Time makespan;
    if (last.sec() > 0.0)
        makespan = last - requests_.front().arrival;

    std::vector<const serving::DeviceEngine *> devs;
    devs.reserve(devices_.size());
    for (const auto &dev : devices_)
        devs.push_back(dev.get());
    return rollUpCluster(devs, makespan);
}

} // namespace cluster
} // namespace kelle
