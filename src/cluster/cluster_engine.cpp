#include "cluster/cluster_engine.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace kelle {
namespace cluster {

namespace {

/**
 * SplitMix64-style hash of (a, b) to a uniform double in [0, 1) —
 * the fault-retry backoff jitter. A pure hash instead of a shared RNG
 * stream, so retries cannot perturb the fault or arrival draws.
 */
double
hashUnit(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

} // namespace

std::vector<DeviceSpec>
homogeneousFleet(std::size_t n, const accel::SystemConfig &system,
                 std::size_t pool_tokens, std::size_t max_batch)
{
    KELLE_ASSERT(n > 0, "a fleet needs at least one device");
    std::vector<DeviceSpec> fleet;
    fleet.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DeviceSpec d;
        d.name = "dev" + std::to_string(i);
        d.system = system;
        d.poolTokens = pool_tokens;
        d.maxBatch = max_batch;
        fleet.push_back(std::move(d));
    }
    return fleet;
}

std::vector<DeviceSpec>
heteroEdramSramFleet(std::size_t n, std::size_t budget,
                     std::size_t edram_pool_tokens,
                     std::size_t sram_pool_tokens,
                     std::size_t max_batch)
{
    KELLE_ASSERT(n > 0, "a fleet needs at least one device");
    std::vector<DeviceSpec> fleet;
    fleet.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        DeviceSpec d;
        const bool edram = i % 2 == 0;
        d.name = (edram ? "edram" : "sram") + std::to_string(i);
        d.system = edram ? accel::kelleEdramSystem(budget)
                         : accel::aerpSramSystem(budget);
        d.poolTokens = edram ? edram_pool_tokens : sram_pool_tokens;
        d.maxBatch = max_batch;
        fleet.push_back(std::move(d));
    }
    return fleet;
}

ClusterConfig
clusterConfigFrom(const serving::ServingConfig &cfg,
                  std::size_t n_devices, DispatchKind dispatch)
{
    ClusterConfig c;
    c.engine = cfg;
    c.dispatch = dispatch;
    c.devices = homogeneousFleet(n_devices, cfg.system, cfg.poolTokens,
                                 cfg.maxBatch);
    return c;
}

ClusterEngine::ClusterEngine(const ClusterConfig &cfg)
    : cfg_(cfg), dispatch_(makeDispatchPolicy(cfg.dispatch))
{
    KELLE_ASSERT(!cfg_.devices.empty(),
                 "a cluster needs at least one device");
    if (cfg_.engine.trace != nullptr)
        clusterTrack_ = cfg_.engine.trace->requestsTrack();
    threads_ =
        cfg_.threads ? cfg_.threads : common::defaultParallelism();
    threads_ = std::min(threads_, cfg_.devices.size());
    // Verbose runs stay serial: the parallel engine's state is
    // bit-identical but its log interleaving would not be.
    if (cfg_.engine.verbose)
        threads_ = 1;
    if (cfg_.faults.enabled) {
        injector_ = std::make_unique<faults::FaultInjector>(
            cfg_.faults, cfg_.devices.size());
        health_.assign(cfg_.devices.size(), DeviceHealth::Healthy);
        downSince_.assign(cfg_.devices.size(), Time());
        faultDevs_.resize(cfg_.devices.size());
    }
    const bool parallel = threads_ > 1;
    if (parallel) {
        localQueues_.reserve(cfg_.devices.size());
        requeueBufs_.resize(cfg_.devices.size());
        requeueBufPos_.assign(cfg_.devices.size(), 0);
    }
    devices_.reserve(cfg_.devices.size());
    for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
        const DeviceSpec &spec = cfg_.devices[i];
        // One copy path for the shared knobs (deviceConfigFrom), then
        // only what a DeviceSpec may override.
        serving::DeviceConfig d = deviceConfigFrom(cfg_.engine);
        // A 1-device fleet keeps the empty label so its verbose log is
        // bit-identical to the single-device Scheduler's.
        d.name = cfg_.devices.size() > 1 ? spec.name : "";
        d.system = spec.system;
        d.poolTokens = spec.poolTokens;
        d.maxBatch = spec.maxBatch;
        // Parallel engine: each device steps its own event-queue
        // partition so a lookahead window touches no shared state.
        sim::EventQueue &q =
            parallel ? *localQueues_.emplace_back(
                           std::make_unique<sim::EventQueue>())
                     : queue_;
        devices_.push_back(std::make_unique<serving::DeviceEngine>(
            d, q, requests_));
        if (cfg_.engine.trace != nullptr)
            devices_.back()->setTrace(cfg_.engine.trace->addDeviceTrack(
                spec.name.empty() ? "device" : spec.name));
        // One shared waterfall across the fleet: entries are indexed
        // by request, each written only by the device serving that
        // request — the same single-writer handoff as the shared
        // request table.
        if (cfg_.engine.waterfall != nullptr)
            devices_.back()->setWaterfall(
                cfg_.engine.waterfall, static_cast<std::uint32_t>(i));

        serving::DeviceEngine::Hooks hooks;
        if (parallel) {
            // Emissions are buffered, never dispatched inline: the
            // coordinator merges them after the round in the serial
            // heap's pop order. The fast-forward horizon is the
            // coordinator's current window horizon, constant while
            // any worker is running.
            hooks.requeue = [this, i](std::size_t idx) {
                requeueBufs_[i].push_back(idx);
            };
            hooks.nextExternalEvent = [this] {
                return windowHorizon_;
            };
        } else {
            // Requeue through an immediate event: the victim re-enters
            // the dispatch policy after the preempting device's step
            // boundary completes, never re-entering an engine
            // mid-dispatch. The canonical priority (1 + emitting
            // device index) fixes the pop order of same-time requeues
            // from different devices to device-index order — the one
            // cross-device tie the insertion sequence left dependent
            // on execution history, which the parallel engine cannot
            // reproduce.
            hooks.requeue = [this, i](std::size_t idx) {
                ++pendingRequeues_;
                queue_.schedule(
                    queue_.now(),
                    [this, idx] {
                        --pendingRequeues_;
                        dispatchArrival(idx);
                    },
                    1 + static_cast<int>(i));
            };
            // With preemption off, the only events that can reach a
            // device from outside are the trace arrivals, so a device
            // may fast-forward straight through other devices' step
            // completions (they touch only their own device and
            // commute with this one's boundaries). With preemption
            // on, the same holds up to the earliest instant any
            // *other* device could emit a victim requeue — a
            // scheduled-but-undispatched requeue pins the bound to
            // `now`. The engine stops its own window before its own
            // preemption scan would fire, so device i's bound is
            // excluded from its own horizon.
            hooks.nextExternalEvent = [this, i] {
                Time bound =
                    arrivalCursor_ < requests_.size()
                        ? requests_[arrivalCursor_].arrival
                        : Time::seconds(
                              std::numeric_limits<double>::infinity());
                // Fault instants and fault re-dispatches reach any
                // device from outside; neither commutes with a
                // fast-forward window, whatever the preempt knob.
                if (injector_ != nullptr) {
                    bound =
                        std::min(bound, injector_->nextEventTime());
                    bound = std::min(bound, nextRetryTime());
                }
                if (!cfg_.engine.preempt.enabled)
                    return bound;
                if (pendingRequeues_ > 0)
                    return queue_.now();
                for (std::size_t j = 0; j < devices_.size(); ++j) {
                    if (j == i)
                        continue;
                    bound = std::min(
                        bound, devices_[j]->nextPossibleRequeueTime(
                                   queue_.now()));
                }
                return bound;
            };
        }
        devices_.back()->setHooks(std::move(hooks));
    }
}

const std::vector<DeviceStatus> &
ClusterEngine::statuses()
{
    statusScratch_.clear();
    statusScratch_.reserve(devices_.size());
    for (const auto &dev : devices_) {
        DeviceStatus s;
        s.freeKvBytes = dev->freeKvBytes();
        s.kvCapacityBytes = dev->allocator().capacityBytes();
        s.waiting = dev->waitingCount();
        s.active = dev->activeCount();
        statusScratch_.push_back(s);
    }
    return statusScratch_;
}

std::size_t
ClusterEngine::pickDevice(std::size_t idx)
{
    std::size_t d;
    if (downCount_ == 0) {
        d = dispatch_->pick(requests_[idx], statuses());
        KELLE_ASSERT(d < devices_.size(),
                     "dispatch picked a device outside the fleet");
    } else {
        // Blacklist: crashed devices never see the status vector, so
        // no policy can route to them. All down -> the caller parks
        // the request on the retry path until something recovers.
        if (downCount_ >= devices_.size())
            return devices_.size();
        statusScratch_.clear();
        upIndexScratch_.clear();
        for (std::size_t i = 0; i < devices_.size(); ++i) {
            if (health_[i] == DeviceHealth::Down)
                continue;
            DeviceStatus s;
            s.freeKvBytes = devices_[i]->freeKvBytes();
            s.kvCapacityBytes =
                devices_[i]->allocator().capacityBytes();
            s.waiting = devices_[i]->waitingCount();
            s.active = devices_[i]->activeCount();
            statusScratch_.push_back(s);
            upIndexScratch_.push_back(i);
        }
        const std::size_t p =
            dispatch_->pick(requests_[idx], statusScratch_);
        KELLE_ASSERT(p < upIndexScratch_.size(),
                     "dispatch picked a device outside the fleet");
        d = upIndexScratch_[p];
    }
    // Blind routing must not turn a serveable request into a
    // permanent rejection: if the picked device's whole pool can
    // never hold the request's floor, fall back to the feasible
    // device with the most free KV (ties: lowest index). When no
    // device can ever fit, the pick stands and the rejection is real.
    if (!devices_[d]->canEverAdmit(requests_[idx])) {
        std::size_t best = devices_.size();
        for (std::size_t i = 0; i < devices_.size(); ++i) {
            if (downCount_ > 0 && health_[i] == DeviceHealth::Down)
                continue;
            if (!devices_[i]->canEverAdmit(requests_[idx]))
                continue;
            if (best == devices_.size() ||
                devices_[i]->freeKvBytes() >
                    devices_[best]->freeKvBytes())
                best = i;
        }
        if (best != devices_.size())
            d = best;
    }
    if (cfg_.engine.verbose && devices_.size() > 1) {
        const serving::Request &r = requests_[idx];
        inform("t=", toString(queue_.now()), " dispatch request #",
               r.id,
               r.faultRetries > 0
                   ? " (fault retry)"
                   : (r.preemptions > 0 ? " (requeued)" : ""),
               " -> ",
               devices_[d]->config().name, " (free KV ",
               Table::num(Bytes(devices_[d]->freeKvBytes()).inMib(),
                          1),
               " MiB, ", devices_[d]->waitingCount(), " waiting, ",
               devices_[d]->activeCount(), " resident)");
    }
    return d;
}

void
ClusterEngine::dispatchArrival(std::size_t idx)
{
    const std::size_t d = pickDevice(idx);
    if (d == devices_.size()) {
        // Whole fleet down: park the request on the retry path until
        // a device recovers (or its retry budget runs out).
        scheduleRetry(idx, queue_.now());
        return;
    }
    if (injector_ != nullptr)
        lastDevice_[idx] = d;
    if (clusterTrack_ != nullptr)
        clusterTrack_->dispatched(queue_.now(), requests_[idx].id, d);
    devices_[d]->enqueue(idx);
}

void
ClusterEngine::dispatchAt(Time t, std::size_t idx)
{
    const std::size_t d = pickDevice(idx);
    if (d == devices_.size()) {
        scheduleRetry(idx, t);
        return;
    }
    if (injector_ != nullptr)
        lastDevice_[idx] = d;
    if (clusterTrack_ != nullptr)
        clusterTrack_->dispatched(t, requests_[idx].id, d);
    localQueues_[d]->advanceTo(t);
    devices_[d]->enqueue(idx);
}

void
ClusterEngine::runSerial()
{
    // All arrivals up front plus one in-flight step per device and
    // the occasional preemption requeue.
    queue_.reserve(requests_.size() + devices_.size() + 8);
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        // The cursor feeds Hooks::nextExternalEvent: arrivals fire in
        // trace order, so requests_[arrivalCursor_] is always the
        // earliest arrival still pending.
        queue_.schedule(requests_[i].arrival, [this, i] {
            arrivalCursor_ = i + 1;
            dispatchArrival(i);
        });
    }
    obs::PhaseProfiler::Timer timer(
        cfg_.engine.profiler, obs::PhaseProfiler::Phase::SerialDrive);
    if (injector_ == nullptr) {
        queue_.runAll();
        return;
    }
    // Interleave the infinite fault stream with the event heap: every
    // fault at or before the next queue event applies first (the
    // injector's contract), with the queue clock advanced to the
    // fault instant so retries and trace writes stamp it. Faults past
    // the last queue event never materialize — the run is over.
    for (;;) {
        if (queue_.empty())
            break;
        Time tq = queue_.nextEventTime();
        while (injector_->nextEventTime() <= tq) {
            const faults::FaultEvent ev = injector_->pop();
            queue_.advanceTo(ev.at);
            applyFault(ev);
            tq = queue_.nextEventTime();
        }
        queue_.runNext();
    }
}

Time
ClusterEngine::nextRequeueBound() const
{
    Time bound =
        Time::seconds(std::numeric_limits<double>::infinity());
    if (!cfg_.engine.preempt.enabled)
        return bound;
    // A device's future boundaries all lie at or after its next
    // pending event (no external work can reach it inside the window
    // being sized here), so its doom clocks for not-yet-decoding
    // members start no earlier than that.
    for (std::size_t i = 0; i < devices_.size(); ++i)
        bound = std::min(bound,
                         devices_[i]->nextPossibleRequeueTime(
                             localQueues_[i]->nextEventTime()));
    return bound;
}

void
ClusterEngine::drainRequeues(Time t)
{
    // Serial pop order for same-time requeues is (priority = 1 +
    // emitting device, insertion seq): lowest emitting device first,
    // then per-device emission order — including victims emitted by
    // the dispatches this loop itself performs.
    for (;;) {
        std::size_t emitter = devices_.size();
        for (std::size_t i = 0; i < devices_.size(); ++i) {
            if (requeueBufPos_[i] < requeueBufs_[i].size()) {
                emitter = i;
                break;
            }
        }
        if (emitter == devices_.size())
            break;
        const std::size_t idx =
            requeueBufs_[emitter][requeueBufPos_[emitter]++];
        dispatchAt(t, idx);
    }
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        requeueBufs_[i].clear();
        requeueBufPos_[i] = 0;
    }
}

Time
ClusterEngine::nextRetryTime() const
{
    Time t = Time::seconds(std::numeric_limits<double>::infinity());
    for (const PendingRetry &r : retryPending_)
        t = std::min(t, r.at);
    return t;
}

void
ClusterEngine::scheduleRetry(std::size_t idx, Time now)
{
    serving::Request &r = requests_[idx];
    if (r.faultRetries >= cfg_.faults.maxRetries) {
        permanentFail(idx, now);
        return;
    }
    ++r.faultRetries;
    ++retries_;
    // Capped exponential backoff, jittered 0.5-1.5x by a pure hash of
    // (request id, attempt) — no shared RNG stream, so retry timing
    // cannot perturb the fault or arrival draws.
    const std::uint32_t attempt = r.faultRetries;
    double backoff =
        cfg_.faults.retryBackoffSec *
        static_cast<double>(1ull << std::min(attempt - 1u, 62u));
    backoff = std::min(backoff, cfg_.faults.retryBackoffCapSec);
    backoff *= 0.5 + hashUnit(r.id, attempt);
    const Time at = now + Time::seconds(backoff);
    PendingRetry pr;
    pr.at = at;
    pr.seq = retrySeq_++;
    pr.req = idx;
    retryPending_.push_back(pr);
    if (threads_ <= 1) {
        // Serial: a queue event fires the earliest pending retry. The
        // priority puts same-time retries after every device requeue
        // (1 + emitting device index < 1 + fleet size), the order the
        // parallel round phases replay.
        queue_.schedule(at, [this] { fireRetry(); },
                        1 + static_cast<int>(devices_.size()));
    }
    if (cfg_.engine.verbose)
        inform("t=", toString(now), " request #", r.id,
               " fault retry ", attempt, "/", cfg_.faults.maxRetries,
               " scheduled at t=", toString(at));
}

void
ClusterEngine::permanentFail(std::size_t idx, Time now)
{
    ++permanentFailures_;
    const std::size_t d = lastDevice_[idx];
    // The target's clock may trail `now` when the failure lands off
    // its own partition (parallel mode only); no event of its can be
    // pending before the round's t0.
    if (threads_ > 1)
        localQueues_[d]->advanceTo(now);
    devices_[d]->failRequestAt(now, idx);
}

void
ClusterEngine::fireRetry()
{
    KELLE_ASSERT(!retryPending_.empty(),
                 "fault retry fired with none pending");
    // Pop min (at, seq): scheduling order matches the event queue's
    // (time, seq) order for the events that created them.
    std::size_t best = 0;
    for (std::size_t i = 1; i < retryPending_.size(); ++i) {
        const PendingRetry &a = retryPending_[i];
        const PendingRetry &b = retryPending_[best];
        if (a.at < b.at || (a.at == b.at && a.seq < b.seq))
            best = i;
    }
    const std::size_t idx = retryPending_[best].req;
    KELLE_ASSERT(!(queue_.now() < retryPending_[best].at),
                 "fault retry fired early");
    retryPending_.erase(retryPending_.begin() +
                        static_cast<std::ptrdiff_t>(best));
    dispatchArrival(idx);
}

void
ClusterEngine::drainRetries(Time t)
{
    for (;;) {
        std::size_t best = retryPending_.size();
        for (std::size_t i = 0; i < retryPending_.size(); ++i) {
            const PendingRetry &a = retryPending_[i];
            if (t < a.at)
                continue;
            if (best == retryPending_.size() ||
                a.at < retryPending_[best].at ||
                (a.at == retryPending_[best].at &&
                 a.seq < retryPending_[best].seq))
                best = i;
        }
        if (best == retryPending_.size())
            break;
        const std::size_t idx = retryPending_[best].req;
        retryPending_.erase(retryPending_.begin() +
                            static_cast<std::ptrdiff_t>(best));
        dispatchAt(t, idx);
        // A retry dispatch can cascade into same-time preemption
        // requeues; the serial heap pops those (priority 1 + device)
        // before the next retry event (priority 1 + fleet size).
        drainRequeues(t);
    }
}

void
ClusterEngine::applyFault(const faults::FaultEvent &ev)
{
    serving::DeviceEngine &dev = *devices_[ev.device];
    switch (ev.kind) {
      case faults::FaultKind::Crash: {
        health_[ev.device] = DeviceHealth::Down;
        ++downCount_;
        downSince_[ev.device] = ev.at;
        ++faultDevs_[ev.device].crashes;
        ++crashes_;
        std::uint64_t lost = 0;
        dev.crashAt(ev.at, &victimScratch_, &lost);
        lostTokens_ += lost;
        for (std::size_t idx : victimScratch_)
            scheduleRetry(idx, ev.at);
        // Graceful-degradation ladder on the survivors: the crashed
        // device's load is about to land on them, so free what can be
        // freed (cached prefixes, idle tails) and shed waiters whose
        // TTFT deadline already expired back to the retry path.
        for (std::size_t j = 0; j < devices_.size(); ++j) {
            if (j == ev.device || health_[j] == DeviceHealth::Down)
                continue;
            devices_[j]->pressureReclaimAt(ev.at);
            shedScratch_.clear();
            devices_[j]->shedStaleWaitingAt(ev.at, &shedScratch_);
            shedRequests_ += shedScratch_.size();
            for (std::size_t idx : shedScratch_)
                scheduleRetry(idx, ev.at);
        }
        break;
      }
      case faults::FaultKind::Slowdown:
        health_[ev.device] = DeviceHealth::Degraded;
        ++slowdowns_;
        dev.slowdownAt(ev.at, cfg_.faults.slowdownFactor);
        break;
      case faults::FaultKind::PoolShrink: {
        health_[ev.device] = DeviceHealth::Degraded;
        ++shrinks_;
        dev.shrinkPoolAt(ev.at, cfg_.faults.shrinkFactor);
        // Self ladder: shrink grants back under the scaled capacity
        // and shed hopeless waiters rather than serving sure misses.
        dev.pressureReclaimAt(ev.at);
        shedScratch_.clear();
        dev.shedStaleWaitingAt(ev.at, &shedScratch_);
        shedRequests_ += shedScratch_.size();
        for (std::size_t idx : shedScratch_)
            scheduleRetry(idx, ev.at);
        break;
      }
      case faults::FaultKind::Recover:
        if (ev.cause == faults::FaultKind::Crash) {
            faultDevs_[ev.device].downtimeSec +=
                (ev.at - downSince_[ev.device]).sec();
            --downCount_;
            health_[ev.device] =
                cfg_.faults.recoverWarmupSec > 0.0
                    ? DeviceHealth::Recovering
                    : DeviceHealth::Healthy;
            dev.recoverAt(ev.at);
        } else {
            health_[ev.device] = DeviceHealth::Healthy;
            dev.restoreAt(ev.at,
                          ev.cause == faults::FaultKind::Slowdown
                              ? 1
                              : 2);
        }
        break;
      case faults::FaultKind::RecoverDone:
        health_[ev.device] = DeviceHealth::Healthy;
        break;
    }
}

void
ClusterEngine::fillFaultReport(ClusterReport *rep, Time last) const
{
    ClusterFaultReport &f = rep->faults;
    f.enabled = true;
    f.crashes = crashes_;
    f.slowdowns = slowdowns_;
    f.shrinks = shrinks_;
    f.lostTokens = lostTokens_;
    f.retries = retries_;
    f.shedRequests = shedRequests_;
    f.permanentFailures = permanentFailures_;
    f.devices = faultDevs_;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        // A device still down at the end of the run is down until the
        // last completion (or its own crash, whichever is later).
        if (health_[i] == DeviceHealth::Down)
            f.devices[i].downtimeSec +=
                (std::max(last, downSince_[i]) - downSince_[i]).sec();
        f.totalDowntimeSec += f.devices[i].downtimeSec;
    }
    for (const serving::Request &r : requests_)
        if (r.state == serving::RequestState::Completed &&
            r.faultRetries > 0)
            ++f.retrySuccesses;
}

void
ClusterEngine::runParallel()
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    common::ThreadPool pool(threads_);
    const std::size_t nd = devices_.size();
    for (auto &q : localQueues_)
        q->reserve(8);
    // Earliest fault-side external event: the next fault instant or
    // the next pending fault re-dispatch (+inf faults-off). Neither
    // commutes with a lookahead window, so both bound horizons.
    const auto nextExtra = [this, inf] {
        return injector_ != nullptr
                   ? std::min(injector_->nextEventTime(),
                              nextRetryTime())
                   : Time::seconds(inf);
    };
    for (;;) {
        const Time arrival =
            arrivalCursor_ < requests_.size()
                ? requests_[arrivalCursor_].arrival
                : Time::seconds(inf);
        Time nextEvent = Time::seconds(inf);
        for (const auto &q : localQueues_)
            nextEvent = std::min(nextEvent, q->nextEventTime());
        // Drained: no arrivals, no local events, no parked retries
        // (requeue buffers never persist a round; the infinite fault
        // stream alone never keeps a run alive).
        if (!(arrival.sec() < inf) && !(nextEvent.sec() < inf) &&
            retryPending_.empty())
            break;
        const Time extra = nextExtra();
        const Time horizon = std::min(
            std::min(arrival, nextRequeueBound()), extra);
        if (nextEvent < horizon) {
            // Lookahead window: every device advances its own
            // partition to the horizon concurrently. Nothing crosses
            // devices before it — arrivals land at or after it, and
            // no device can emit a requeue before `nextRequeueBound`
            // (its own in-window preemptions are stopped by the
            // engine's doom check, everyone else's by the bound).
            windowHorizon_ = horizon;
            // A window with one active partition needs no barrier:
            // run it inline and leave the workers parked (the common
            // shape between sparse arrivals).
            std::size_t active = 0, only = 0;
            for (std::size_t i = 0; i < nd; ++i) {
                if (localQueues_[i]->nextEventTime() < horizon) {
                    ++active;
                    only = i;
                }
            }
            {
                obs::PhaseProfiler::Timer timer(
                    cfg_.engine.profiler,
                    obs::PhaseProfiler::Phase::Window);
                if (active == 1)
                    localQueues_[only]->runBefore(windowHorizon_);
                else
                    pool.forEach(nd, [this](std::size_t i) {
                        localQueues_[i]->runBefore(windowHorizon_);
                    });
            }
            for (std::size_t i = 0; i < nd; ++i)
                KELLE_ASSERT(requeueBufs_[i].empty(),
                             "a lookahead window emitted a requeue");
            continue;
        }
        // Serialized round at t0 — the earliest pending work — with
        // phases in the serial heap's pop order: arrivals in trace
        // order, then same-time step boundaries (priority 0; they
        // commute across devices, so device-index order is safe),
        // then requeues in canonical order. With preemption on, an
        // injection can cascade into same-time emissions targeting
        // devices already stepped, so lookahead is disabled for the
        // round; with it off, a boundary may fast-forward up to the
        // next still-pending arrival exactly like the serial engine.
        const Time t0 =
            std::min(std::min(arrival, nextEvent), extra);
        obs::PhaseProfiler::Timer round_timer(
            cfg_.engine.profiler,
            obs::PhaseProfiler::Phase::SerialRound);
        const bool lookahead = !cfg_.engine.preempt.enabled;
        windowHorizon_ = t0;
        if (injector_ != nullptr &&
            injector_->nextEventTime() <= t0) {
            // Fault instants precede any same-time queue event (the
            // serial loop's order). No partition holds an event
            // before t0, so every clock can line up with the fault —
            // the ladder and eviction handling may touch any device.
            for (auto &q : localQueues_)
                q->advanceTo(t0);
            while (injector_->nextEventTime() <= t0)
                applyFault(injector_->pop());
        }
        if (arrival == t0) {
            while (arrivalCursor_ < requests_.size() &&
                   requests_[arrivalCursor_].arrival == t0) {
                const std::size_t idx = arrivalCursor_++;
                if (lookahead)
                    windowHorizon_ = std::min(
                        arrivalCursor_ < requests_.size()
                            ? requests_[arrivalCursor_].arrival
                            : Time::seconds(inf),
                        nextExtra());
                dispatchAt(t0, idx);
            }
        }
        if (lookahead)
            windowHorizon_ =
                std::min(arrivalCursor_ < requests_.size()
                             ? requests_[arrivalCursor_].arrival
                             : Time::seconds(inf),
                         nextExtra());
        for (std::size_t i = 0; i < nd; ++i) {
            while (localQueues_[i]->nextEventTime() == t0)
                localQueues_[i]->runNext();
        }
        drainRequeues(t0);
        if (injector_ != nullptr)
            drainRetries(t0);
    }
}

ClusterReport
ClusterEngine::run()
{
    {
        obs::PhaseProfiler::Timer timer(
            cfg_.engine.profiler,
            obs::PhaseProfiler::Phase::TraceGen);
        requests_ = serving::generateTrace(cfg_.engine.traffic);
    }
    if (cfg_.engine.waterfall != nullptr)
        cfg_.engine.waterfall->beginRun(requests_.size());
    if (injector_ != nullptr)
        lastDevice_.assign(requests_.size(), 0);
    if (threads_ > 1)
        runParallel();
    else
        runSerial();

    // Makespan is first arrival to last completion anywhere in the
    // fleet; the idle lead-in before the first arrival is not serving
    // time.
    Time last;
    for (const auto &dev : devices_)
        last = std::max(last, dev->lastCompletion());
    Time makespan;
    if (last.sec() > 0.0)
        makespan = last - requests_.front().arrival;

    std::vector<const serving::DeviceEngine *> devs;
    devs.reserve(devices_.size());
    for (const auto &dev : devices_)
        devs.push_back(dev.get());
    obs::PhaseProfiler::Timer timer(
        cfg_.engine.profiler, obs::PhaseProfiler::Phase::RollUp);
    ClusterReport rep = rollUpCluster(devs, makespan);
    if (cfg_.engine.waterfall != nullptr)
        rep.aggregate.attribution =
            cfg_.engine.waterfall->report(devices_.size());
    if (injector_ != nullptr)
        fillFaultReport(&rep, last);
    return rep;
}

} // namespace cluster
} // namespace kelle
