#include "cluster/dispatch_policy.hpp"

#include "common/log.hpp"

namespace kelle {
namespace cluster {

namespace {

/** Least-loaded device: fewest waiting + resident requests, ties by
 *  free KV (more first), then lowest index. */
std::size_t
leastLoaded(const std::vector<DeviceStatus> &devices)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < devices.size(); ++i) {
        const std::size_t load_i = devices[i].waiting + devices[i].active;
        const std::size_t load_b =
            devices[best].waiting + devices[best].active;
        if (load_i < load_b ||
            (load_i == load_b &&
             devices[i].freeKvBytes > devices[best].freeKvBytes))
            best = i;
    }
    return best;
}

class RoundRobinDispatch final : public DispatchPolicy
{
  public:
    DispatchKind kind() const override
    {
        return DispatchKind::RoundRobin;
    }
    std::size_t
    pick(const serving::Request &,
         const std::vector<DeviceStatus> &devices) override
    {
        return next_++ % devices.size();
    }

  private:
    std::size_t next_ = 0;
};

class JoinShortestKvDispatch final : public DispatchPolicy
{
  public:
    DispatchKind kind() const override
    {
        return DispatchKind::JoinShortestKv;
    }
    std::size_t
    pick(const serving::Request &,
         const std::vector<DeviceStatus> &devices) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < devices.size(); ++i) {
            const auto &d = devices[i];
            const auto &b = devices[best];
            if (d.freeKvBytes > b.freeKvBytes ||
                (d.freeKvBytes == b.freeKvBytes &&
                 d.waiting + d.active < b.waiting + b.active))
                best = i;
        }
        return best;
    }
};

class DeadlineAwareDispatch final : public DispatchPolicy
{
  public:
    DispatchKind kind() const override
    {
        return DispatchKind::DeadlineAware;
    }
    std::size_t
    pick(const serving::Request &r,
         const std::vector<DeviceStatus> &devices) override
    {
        // Online, mix-adaptive pressure threshold: a request is
        // TTFT-pressed when its deadline is at or below the running
        // mean of every dead-lined request dispatched so far (itself
        // included). LA-sized chats press; QP/PG19-sized long contexts
        // with proportionally larger allowances do not.
        bool pressed = false;
        if (r.ttftDeadlineSec > 0.0) {
            // Count each request once: a requeued preemption victim
            // passes through pick() again and must not skew the mean
            // toward its (typically tight) deadline.
            if (r.preemptions == 0) {
                deadlineSum_ += r.ttftDeadlineSec;
                ++deadlineCount_;
            }
            pressed = deadlineCount_ > 0 &&
                      r.ttftDeadlineSec <=
                          deadlineSum_ /
                              static_cast<double>(deadlineCount_);
        }
        if (pressed)
            return leastLoaded(devices);
        return next_++ % devices.size();
    }

  private:
    double deadlineSum_ = 0.0;
    std::size_t deadlineCount_ = 0;
    std::size_t next_ = 0;
};

} // namespace

std::string
toString(DispatchKind k)
{
    switch (k) {
      case DispatchKind::RoundRobin:
        return "round-robin";
      case DispatchKind::JoinShortestKv:
        return "join-shortest-kv";
      case DispatchKind::DeadlineAware:
        return "deadline-aware";
    }
    return "?";
}

bool
parseDispatchPolicy(const std::string &text, DispatchKind *out)
{
    if (text == "round-robin" || text == "rr") {
        *out = DispatchKind::RoundRobin;
        return true;
    }
    if (text == "join-shortest-kv" || text == "jsk" ||
        text == "shortest-kv") {
        *out = DispatchKind::JoinShortestKv;
        return true;
    }
    if (text == "deadline-aware" || text == "deadline") {
        *out = DispatchKind::DeadlineAware;
        return true;
    }
    return false;
}

std::string
dispatchPolicyNames()
{
    std::string names;
    for (DispatchKind k : allDispatchPolicies()) {
        if (!names.empty())
            names += "|";
        names += toString(k);
    }
    return names;
}

std::vector<DispatchKind>
allDispatchPolicies()
{
    return {DispatchKind::RoundRobin, DispatchKind::JoinShortestKv,
            DispatchKind::DeadlineAware};
}

std::unique_ptr<DispatchPolicy>
makeDispatchPolicy(DispatchKind kind)
{
    switch (kind) {
      case DispatchKind::RoundRobin:
        return std::make_unique<RoundRobinDispatch>();
      case DispatchKind::JoinShortestKv:
        return std::make_unique<JoinShortestKvDispatch>();
      case DispatchKind::DeadlineAware:
        return std::make_unique<DeadlineAwareDispatch>();
    }
    KELLE_ASSERT(false, "unknown DispatchKind");
    return nullptr;
}

} // namespace cluster
} // namespace kelle
