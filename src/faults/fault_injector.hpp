/**
 * @file
 * Seeded, fully deterministic fault injection for the edge fleet.
 *
 * Each device runs an independent alternating-renewal process: an
 * "up" phase whose length is exponential with mean `mtbfSec` ends in
 * a disruption (crash, transient slowdown, or KV-pool shrink, drawn
 * from the configured weights), and a "disrupted" phase whose length
 * is exponential with mean `mttrSec` ends in a recovery. A crash
 * repair passes through a `Recovering` warm-up of `recoverWarmupSec`
 * before the device counts as healthy again; slowdown and shrink
 * recoveries restore the device directly.
 *
 * `FaultPlan` owns one seeded Rng per device (`seed ^ splitmix(dev)`),
 * so a device's fault history is a pure function of (seed, device
 * index, mtbf, mttr, weights) — independent of fleet size ordering,
 * of how far any other device's stream was consumed, and of the
 * engine mode consuming it. `FaultInjector` merges the per-device
 * streams into one chronological feed keyed (time, device index); the
 * cluster engine drains it interleaved with its event queue, applying
 * each fault *before* any same-time queue event, and publishes
 * `nextEventTime()` into the parallel engine's lookahead horizon so
 * no device can fast-forward across a fault instant. Streams are
 * generated lazily (one pending event per device), so the injector
 * never materializes the infinite renewal process.
 *
 * Determinism contract (pinned by tests/test_faults.cpp): for a fixed
 * config the sequence of popped `FaultEvent`s is byte-identical
 * across `ClusterConfig::threads` values and fastSim on/off, and a
 * default-constructed (disabled) config makes the whole subsystem a
 * null test — the cluster engine never constructs an injector and all
 * pre-fault golden digests are unchanged.
 */

#ifndef KELLE_FAULTS_FAULT_INJECTOR_HPP
#define KELLE_FAULTS_FAULT_INJECTOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace kelle {
namespace faults {

/** Configuration of the fleet-wide fault model. */
struct FaultConfig
{
    /** Master switch; false keeps every engine path bit-identical to
     *  the pre-fault build (no injector is ever constructed). */
    bool enabled = false;
    /** Mean up-phase length per device, seconds (exponential). */
    double mtbfSec = 120.0;
    /** Mean disrupted-phase length, seconds (exponential). */
    double mttrSec = 15.0;
    /** @name Relative weights of the disruption kinds. @{ */
    double crashWeight = 1.0;
    double slowdownWeight = 1.0;
    double shrinkWeight = 1.0;
    /** @} */
    /** Step-latency multiplier while a device is slowed down. */
    double slowdownFactor = 2.0;
    /** KV-capacity multiplier while a device's pool is degraded. */
    double shrinkFactor = 0.5;
    /** Crash repair -> healthy warm-up (the `Recovering` label). */
    double recoverWarmupSec = 5.0;
    /** At-most-N re-dispatches per crash-evicted request; the N+1-th
     *  eviction is a permanent, accounted failure. */
    std::uint32_t maxRetries = 3;
    /** Capped exponential backoff base for fault re-dispatch. */
    double retryBackoffSec = 1.0;
    double retryBackoffCapSec = 30.0;
    /** Fault-stream seed (independent of the arrival-trace seed). */
    std::uint64_t seed = 42;
};

/** What happened to a device at a fault instant. */
enum class FaultKind : std::uint8_t
{
    Crash,       ///< device lost: KV chains dropped, work evicted
    Slowdown,    ///< transient compute degradation (latency scale)
    PoolShrink,  ///< eDRAM degrade: KV capacity scaled down
    Recover,     ///< disruption over (crash -> Recovering warm-up)
    RecoverDone, ///< crash warm-up over: device healthy again
};

const char *toString(FaultKind k);

/** One scheduled fault-lifecycle instant. */
struct FaultEvent
{
    Time at;
    std::size_t device = 0;
    FaultKind kind = FaultKind::Crash;
    /** For Recover/RecoverDone: the disruption being recovered. */
    FaultKind cause = FaultKind::Crash;
};

/**
 * The merged, lazily generated fault stream for an `nDevices` fleet.
 * `peek`/`pop` never run the renewal processes further than one
 * pending event per device.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, std::size_t n_devices);

    /** Earliest pending fault instant (never +inf: the renewal
     *  process is infinite). Ties break by device index. */
    Time nextEventTime() const;
    /** The event `pop` would return. */
    const FaultEvent &peek() const;
    /** Consume the earliest event and advance that device's stream. */
    FaultEvent pop();

    const FaultConfig &config() const { return cfg_; }

  private:
    struct DeviceStream
    {
        Rng rng;
        FaultEvent next;
        /** Disruption kind of the phase being timed (for recovery). */
        FaultKind active = FaultKind::Crash;
        DeviceStream() : rng(0) {}
    };

    double expDraw(DeviceStream &s, double mean);
    FaultKind drawKind(DeviceStream &s);
    void advance(DeviceStream &s);
    std::size_t earliest() const;

    FaultConfig cfg_;
    std::vector<DeviceStream> streams_;
};

} // namespace faults
} // namespace kelle

#endif // KELLE_FAULTS_FAULT_INJECTOR_HPP
