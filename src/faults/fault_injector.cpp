#include "faults/fault_injector.hpp"

#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace faults {

const char *
toString(FaultKind k)
{
    switch (k) {
      case FaultKind::Crash:
        return "crash";
      case FaultKind::Slowdown:
        return "slowdown";
      case FaultKind::PoolShrink:
        return "pool_shrink";
      case FaultKind::Recover:
        return "recover";
      case FaultKind::RecoverDone:
        return "recover_done";
    }
    return "?";
}

namespace {

/** SplitMix64 finalizer: decorrelates the per-device seeds. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig &cfg,
                             std::size_t n_devices)
    : cfg_(cfg)
{
    KELLE_ASSERT(n_devices > 0, "fault injector over an empty fleet");
    KELLE_ASSERT(cfg_.mtbfSec > 0.0 && cfg_.mttrSec > 0.0,
                 "MTBF/MTTR must be positive");
    KELLE_ASSERT(cfg_.crashWeight + cfg_.slowdownWeight +
                         cfg_.shrinkWeight >
                     0.0,
                 "at least one fault kind needs positive weight");
    streams_.resize(n_devices);
    for (std::size_t d = 0; d < n_devices; ++d) {
        DeviceStream &s = streams_[d];
        // A device's whole fault history depends only on (seed, d).
        s.rng = Rng(cfg_.seed ^ mix(static_cast<std::uint64_t>(d) + 1));
        s.next.device = d;
        s.next.at = Time::seconds(expDraw(s, cfg_.mtbfSec));
        s.next.kind = drawKind(s);
        s.next.cause = s.next.kind;
    }
}

double
FaultInjector::expDraw(DeviceStream &s, double mean)
{
    // Inverse-CDF; uniform() < 1 so the log argument is positive.
    return -mean * std::log(1.0 - s.rng.uniform());
}

FaultKind
FaultInjector::drawKind(DeviceStream &s)
{
    const double total =
        cfg_.crashWeight + cfg_.slowdownWeight + cfg_.shrinkWeight;
    const double u = s.rng.uniform() * total;
    if (u < cfg_.crashWeight)
        return FaultKind::Crash;
    if (u < cfg_.crashWeight + cfg_.slowdownWeight)
        return FaultKind::Slowdown;
    return FaultKind::PoolShrink;
}

void
FaultInjector::advance(DeviceStream &s)
{
    FaultEvent &e = s.next;
    switch (e.kind) {
      case FaultKind::Crash:
      case FaultKind::Slowdown:
      case FaultKind::PoolShrink:
        // Disruption starts; time the repair.
        s.active = e.kind;
        e.at = e.at + Time::seconds(expDraw(s, cfg_.mttrSec));
        e.kind = FaultKind::Recover;
        e.cause = s.active;
        break;
      case FaultKind::Recover:
        if (e.cause == FaultKind::Crash &&
            cfg_.recoverWarmupSec > 0.0) {
            e.at = e.at + Time::seconds(cfg_.recoverWarmupSec);
            e.kind = FaultKind::RecoverDone;
            break;
        }
        [[fallthrough]];
      case FaultKind::RecoverDone:
        // Up phase starts; time the next disruption.
        e.at = e.at + Time::seconds(expDraw(s, cfg_.mtbfSec));
        e.kind = drawKind(s);
        e.cause = e.kind;
        break;
    }
}

std::size_t
FaultInjector::earliest() const
{
    std::size_t best = 0;
    for (std::size_t d = 1; d < streams_.size(); ++d) {
        if (streams_[d].next.at < streams_[best].next.at)
            best = d;
    }
    return best;
}

Time
FaultInjector::nextEventTime() const
{
    return streams_[earliest()].next.at;
}

const FaultEvent &
FaultInjector::peek() const
{
    return streams_[earliest()].next;
}

FaultEvent
FaultInjector::pop()
{
    DeviceStream &s = streams_[earliest()];
    const FaultEvent e = s.next;
    advance(s);
    KELLE_ASSERT(!(s.next.at < e.at),
                 "fault stream went backwards in time");
    return e;
}

} // namespace faults
} // namespace kelle
