#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace kelle {
namespace tensor {

void
Matrix::fillGaussian(Rng &rng, float stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.gaussian(0.0, stddev));
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    KELLE_ASSERT(cols_ == other.rows_, "matmul shape mismatch: ", rows_, "x",
                 cols_, " * ", other.rows_, "x", other.cols_);
    Matrix c(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const float aik = at(i, k);
            if (aik == 0.0f)
                continue;
            const float *brow = other.data() + k * other.cols_;
            float *crow = c.data() + i * other.cols_;
            for (std::size_t j = 0; j < other.cols_; ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

Matrix
Matrix::matmulTransposed(const Matrix &other) const
{
    KELLE_ASSERT(cols_ == other.cols_, "matmulT shape mismatch");
    Matrix c(rows_, other.rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < other.rows_; ++j) {
            c.at(i, j) = dot(row(i), other.row(j));
        }
    }
    return c;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            t.at(j, i) = at(i, j);
    return t;
}

void
addInPlace(std::span<float> y, std::span<const float> x)
{
    KELLE_ASSERT(y.size() == x.size(), "addInPlace size mismatch");
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] += x[i];
}

void
matvec(const Matrix &a, std::span<const float> x, std::span<float> y)
{
    KELLE_ASSERT(x.size() == a.cols() && y.size() == a.rows(),
                 "matvec shape mismatch");
    for (std::size_t i = 0; i < a.rows(); ++i)
        y[i] = dot(a.row(i), x);
}

void
matvecTransposed(const Matrix &a, std::span<const float> x,
                 std::span<float> y)
{
    KELLE_ASSERT(x.size() == a.rows() && y.size() == a.cols(),
                 "matvecT shape mismatch");
    std::fill(y.begin(), y.end(), 0.0f);
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const float xi = x[i];
        if (xi == 0.0f)
            continue;
        auto row = a.row(i);
        for (std::size_t j = 0; j < a.cols(); ++j)
            y[j] += xi * row[j];
    }
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    KELLE_ASSERT(a.size() == b.size(), "dot size mismatch");
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

void
softmaxInPlace(std::span<float> x)
{
    if (x.empty())
        return;
    float maxv = x[0];
    for (float v : x)
        maxv = std::max(maxv, v);
    float sum = 0.0f;
    for (auto &v : x) {
        v = std::exp(v - maxv);
        sum += v;
    }
    // sum >= 1 because the max element contributes exp(0) = 1.
    for (auto &v : x)
        v /= sum;
}

void
rmsNormInPlace(std::span<float> x, std::span<const float> gain, float eps)
{
    KELLE_ASSERT(x.size() == gain.size(), "rmsnorm size mismatch");
    double ss = 0.0;
    for (float v : x)
        ss += static_cast<double>(v) * v;
    const float inv =
        1.0f / std::sqrt(static_cast<float>(ss / x.size()) + eps);
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = x[i] * inv * gain[i];
}

void
siluInPlace(std::span<float> x)
{
    for (auto &v : x)
        v = v / (1.0f + std::exp(-v));
}

void
geluInPlace(std::span<float> x)
{
    constexpr float c = 0.7978845608028654f; // sqrt(2/pi)
    for (auto &v : x) {
        const float inner = c * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

float
logSoftmaxAt(std::span<const float> logits, std::size_t idx)
{
    KELLE_ASSERT(idx < logits.size(), "logSoftmaxAt index out of range");
    float maxv = logits[0];
    for (float v : logits)
        maxv = std::max(maxv, v);
    double sum = 0.0;
    for (float v : logits)
        sum += std::exp(static_cast<double>(v - maxv));
    return static_cast<float>(logits[idx] - maxv - std::log(sum));
}

} // namespace tensor
} // namespace kelle
