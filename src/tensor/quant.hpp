/**
 * @file
 * Quantization kernels for the Kelle accuracy and performance studies.
 *
 * Three schemes matter in the paper:
 *  - W8: symmetric per-row int8 weight quantization (all systems,
 *    Section 5: "weights are quantized to 8 bits").
 *  - KV4 group quantization: asymmetric 4-bit with per-group scale/zero,
 *    the KIVI/COMET-style KV compression baseline.
 *  - QuaRot-style rotation: an exact Walsh-Hadamard transform applied
 *    before quantization to spread outliers, enabling low-bit KV
 *    storage (Table 2's "QR" column and Table 6).
 */

#ifndef KELLE_TENSOR_QUANT_HPP
#define KELLE_TENSOR_QUANT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace kelle {
namespace tensor {

/** A symmetric int8-quantized vector: q[i] * scale ~ x[i]. */
struct QuantizedRowI8
{
    std::vector<std::int8_t> q;
    float scale = 1.0f;
};

/** Quantize symmetric int8 (scale = max|x| / 127). */
QuantizedRowI8 quantizeRowI8(std::span<const float> x);

/** Dequantize into out (same length). */
void dequantizeRowI8(const QuantizedRowI8 &row, std::span<float> out);

/** Round-trip through int8 in place (models W8 weight storage). */
void fakeQuantI8InPlace(std::span<float> x);

/**
 * Asymmetric b-bit group quantization (KIVI-style). Each group of
 * `groupSize` values shares a scale and zero point. Supports b in [2, 8].
 */
struct QuantizedGroups
{
    std::vector<std::uint8_t> q; ///< one code per element
    std::vector<float> scales;   ///< per group
    std::vector<float> zeros;    ///< per group
    int bits = 4;
    std::size_t groupSize = 32;
    std::size_t n = 0;
};

QuantizedGroups quantizeGroups(std::span<const float> x, int bits,
                               std::size_t group_size);
void dequantizeGroups(const QuantizedGroups &g, std::span<float> out);

/** Round-trip through b-bit group quantization in place. */
void fakeQuantGroupsInPlace(std::span<float> x, int bits,
                            std::size_t group_size);

/**
 * In-place Walsh-Hadamard transform, normalized by 1/sqrt(n) so the
 * transform is orthonormal (applying it twice restores the input).
 * Length must be a power of two.
 */
void hadamardInPlace(std::span<float> x);

/** True if n is a nonzero power of two. */
constexpr bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/**
 * Modeled storage bytes of `n` values held at `bits` with asymmetric
 * group quantization: the packed payload plus one fp32 scale and zero
 * point per group (the QuantizedGroups layout). 16-bit values are
 * stored dense with no metadata. Used for KV-page byte accounting.
 */
constexpr double
quantizedStoreBytes(std::size_t n, int bits, std::size_t group_size)
{
    if (bits >= 16)
        return 2.0 * static_cast<double>(n);
    const std::size_t groups = (n + group_size - 1) / group_size;
    return static_cast<double>(n * static_cast<std::size_t>(bits)) /
               8.0 +
           8.0 * static_cast<double>(groups);
}

/**
 * QuaRot-style fake quantization: rotate by the orthonormal Hadamard
 * transform, group-quantize to `bits`, then rotate back. Outliers are
 * spread across the group before quantization, which is the mechanism
 * that lets 4-bit KV storage approach fp16 accuracy.
 */
void fakeQuantQuaRotInPlace(std::span<float> x, int bits,
                            std::size_t group_size);

/** Mean squared quantization error of a scheme on a vector (for tests). */
double quantMse(std::span<const float> x, std::span<const float> xq);

} // namespace tensor
} // namespace kelle

#endif // KELLE_TENSOR_QUANT_HPP
