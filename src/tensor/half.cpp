#include "tensor/half.hpp"

#include <bit>
#include <cstring>

namespace kelle {
namespace tensor {

namespace {

std::uint32_t
bitsOf(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
floatOf(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

std::uint16_t
floatToHalfBits(float f)
{
    const std::uint32_t u = bitsOf(f);
    const std::uint32_t sign = (u >> 16) & 0x8000u;
    const std::uint32_t absU = u & 0x7FFFFFFFu;

    // NaN / Inf.
    if (absU >= 0x7F800000u) {
        if (absU > 0x7F800000u) {
            // NaN: preserve a quiet NaN payload bit.
            return static_cast<std::uint16_t>(sign | 0x7E00u);
        }
        return static_cast<std::uint16_t>(sign | 0x7C00u);
    }

    // Overflow to Inf: anything >= 2^16 * (1 - 2^-11) rounds beyond
    // the max finite half (65504).
    if (absU >= 0x477FF000u)
        return static_cast<std::uint16_t>(sign | 0x7C00u);

    // Normal range for half: exponent >= -14.
    if (absU >= 0x38800000u) {
        // Rebias exponent 127 -> 15, keep 10 mantissa bits with RNE.
        const std::uint32_t mant = absU & 0x007FFFFFu;
        const std::uint32_t exp = (absU >> 23) - 112; // 127 - 15
        std::uint32_t half = (exp << 10) | (mant >> 13);
        const std::uint32_t rem = mant & 0x1FFFu;
        if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) {
            ++half; // carries into the exponent correctly
        }
        return static_cast<std::uint16_t>(sign | half);
    }

    // Subnormal half range: the result is round(|x| * 2^24) with the
    // 24-bit significand M = 1.m * 2^23, i.e. M >> (126 - e) with RNE.
    if (absU >= 0x33000001u) {
        const int shift = 126 - static_cast<int>(absU >> 23); // 14..24
        const std::uint32_t mant = (absU & 0x007FFFFFu) | 0x00800000u;
        std::uint32_t half = mant >> shift;
        const std::uint32_t mask = (1u << shift) - 1;
        const std::uint32_t rem = mant & mask;
        const std::uint32_t midpoint = 1u << (shift - 1);
        if (rem > midpoint || (rem == midpoint && (half & 1u)))
            ++half; // may carry into the smallest normal, correctly
        return static_cast<std::uint16_t>(sign | half);
    }

    // Underflow to signed zero.
    return static_cast<std::uint16_t>(sign);
}

float
halfBitsToFloat(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
    const std::uint32_t exp = (h >> 10) & 0x1Fu;
    const std::uint32_t mant = h & 0x3FFu;

    if (exp == 0) {
        if (mant == 0)
            return floatOf(sign); // signed zero
        // Subnormal: normalize.
        int e = -1;
        std::uint32_t m = mant;
        do {
            ++e;
            m <<= 1;
        } while ((m & 0x400u) == 0);
        const std::uint32_t outExp = 127 - 15 - e;
        const std::uint32_t outMant = (m & 0x3FFu) << 13;
        return floatOf(sign | (outExp << 23) | outMant);
    }
    if (exp == 0x1Fu) {
        // Inf / NaN.
        return floatOf(sign | 0x7F800000u | (mant << 13));
    }
    return floatOf(sign | ((exp + 112) << 23) | (mant << 13));
}

float
halfBitsToFloatSanitized(std::uint16_t h)
{
    if (halfIsNonFinite(h)) {
        if ((h & 0x3FFu) != 0)
            return 0.0f; // NaN reads as zero
        return (h & 0x8000u) ? -kHalfMax : kHalfMax;
    }
    return halfBitsToFloat(h);
}

} // namespace tensor
} // namespace kelle
