/**
 * @file
 * Bit-exact software IEEE-754 binary16 (fp16) codec.
 *
 * Kelle stores KV vectors as 16-bit words in eDRAM and flips individual
 * bits to model retention failures (Section 4.2). Accuracy experiments
 * therefore need byte-true fp16 round trips plus helpers to classify and
 * sanitize corrupted encodings the way a hardware readout path would.
 */

#ifndef KELLE_TENSOR_HALF_HPP
#define KELLE_TENSOR_HALF_HPP

#include <cstdint>

namespace kelle {
namespace tensor {

/** Largest finite fp16 magnitude. */
inline constexpr float kHalfMax = 65504.0f;

/** Convert fp32 -> fp16 bits with round-to-nearest-even. */
std::uint16_t floatToHalfBits(float f);

/** Convert fp16 bits -> fp32 (exact). */
float halfBitsToFloat(std::uint16_t h);

/** True if the encoding is Inf or NaN (exponent all ones). */
constexpr bool
halfIsNonFinite(std::uint16_t h)
{
    return (h & 0x7C00u) == 0x7C00u;
}

/**
 * Decode with hardware-style sanitization: NaN reads as 0, +-Inf clamps
 * to +-kHalfMax. A bit flip in the exponent field can turn a stored value
 * into a non-finite encoding; a real datapath would still latch finite
 * lanes, so the functional model must not propagate NaN through softmax.
 */
float halfBitsToFloatSanitized(std::uint16_t h);

/** Round-trip through fp16 (the precision of stored KV vectors). */
inline float
roundToHalf(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

} // namespace tensor
} // namespace kelle

#endif // KELLE_TENSOR_HALF_HPP
