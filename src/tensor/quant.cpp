#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace tensor {

QuantizedRowI8
quantizeRowI8(std::span<const float> x)
{
    float maxAbs = 0.0f;
    for (float v : x)
        maxAbs = std::max(maxAbs, std::fabs(v));
    QuantizedRowI8 row;
    row.scale = maxAbs > 0.0f ? maxAbs / 127.0f : 1.0f;
    row.q.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float q = std::nearbyint(x[i] / row.scale);
        row.q[i] = static_cast<std::int8_t>(
            std::clamp(q, -127.0f, 127.0f));
    }
    return row;
}

void
dequantizeRowI8(const QuantizedRowI8 &row, std::span<float> out)
{
    KELLE_ASSERT(out.size() == row.q.size(), "dequant size mismatch");
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<float>(row.q[i]) * row.scale;
}

void
fakeQuantI8InPlace(std::span<float> x)
{
    auto q = quantizeRowI8(x);
    dequantizeRowI8(q, x);
}

QuantizedGroups
quantizeGroups(std::span<const float> x, int bits, std::size_t group_size)
{
    KELLE_ASSERT(bits >= 2 && bits <= 8, "unsupported bit width ", bits);
    KELLE_ASSERT(group_size > 0, "group size must be positive");
    QuantizedGroups g;
    g.bits = bits;
    g.groupSize = group_size;
    g.n = x.size();
    g.q.resize(x.size());
    const std::size_t groups = (x.size() + group_size - 1) / group_size;
    g.scales.resize(groups);
    g.zeros.resize(groups);
    const float levels = static_cast<float>((1 << bits) - 1);

    for (std::size_t gi = 0; gi < groups; ++gi) {
        const std::size_t lo = gi * group_size;
        const std::size_t hi = std::min(lo + group_size, x.size());
        float vmin = x[lo], vmax = x[lo];
        for (std::size_t i = lo; i < hi; ++i) {
            vmin = std::min(vmin, x[i]);
            vmax = std::max(vmax, x[i]);
        }
        float scale = (vmax - vmin) / levels;
        if (scale <= 0.0f)
            scale = 1.0f;
        g.scales[gi] = scale;
        g.zeros[gi] = vmin;
        for (std::size_t i = lo; i < hi; ++i) {
            const float q = std::nearbyint((x[i] - vmin) / scale);
            g.q[i] = static_cast<std::uint8_t>(
                std::clamp(q, 0.0f, levels));
        }
    }
    return g;
}

void
dequantizeGroups(const QuantizedGroups &g, std::span<float> out)
{
    KELLE_ASSERT(out.size() == g.n, "dequant size mismatch");
    for (std::size_t i = 0; i < g.n; ++i) {
        const std::size_t gi = i / g.groupSize;
        out[i] = static_cast<float>(g.q[i]) * g.scales[gi] + g.zeros[gi];
    }
}

void
fakeQuantGroupsInPlace(std::span<float> x, int bits, std::size_t group_size)
{
    auto g = quantizeGroups(x, bits, group_size);
    dequantizeGroups(g, x);
}

void
hadamardInPlace(std::span<float> x)
{
    const std::size_t n = x.size();
    KELLE_ASSERT(isPowerOfTwo(n), "Hadamard length must be a power of two, "
                 "got ", n);
    for (std::size_t len = 1; len < n; len <<= 1) {
        for (std::size_t i = 0; i < n; i += len << 1) {
            for (std::size_t j = i; j < i + len; ++j) {
                const float a = x[j];
                const float b = x[j + len];
                x[j] = a + b;
                x[j + len] = a - b;
            }
        }
    }
    const float norm = 1.0f / std::sqrt(static_cast<float>(n));
    for (auto &v : x)
        v *= norm;
}

void
fakeQuantQuaRotInPlace(std::span<float> x, int bits, std::size_t group_size)
{
    hadamardInPlace(x);
    fakeQuantGroupsInPlace(x, bits, group_size);
    hadamardInPlace(x); // orthonormal H is its own inverse
}

double
quantMse(std::span<const float> x, std::span<const float> xq)
{
    KELLE_ASSERT(x.size() == xq.size(), "quantMse size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = static_cast<double>(x[i]) - xq[i];
        acc += d * d;
    }
    return x.empty() ? 0.0 : acc / static_cast<double>(x.size());
}

} // namespace tensor
} // namespace kelle
