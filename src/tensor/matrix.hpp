/**
 * @file
 * Minimal dense row-major float tensor kernels for the functional LLM
 * substrate: matmul, matvec, softmax, RMSNorm and the activation
 * functions used by modern decoder blocks (SiLU for gated MLPs, GELU
 * for classic MLPs).
 *
 * These kernels are the *functional* reference; the cycle-level systolic
 * array in src/accel produces bit-identical integer results against the
 * quantized variants and is tested against these.
 */

#ifndef KELLE_TENSOR_MATRIX_HPP
#define KELLE_TENSOR_MATRIX_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace kelle {
class Rng;
namespace tensor {

/** Dense row-major matrix of floats. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::span<float> row(std::size_t r)
    {
        return {data_.data() + r * cols_, cols_};
    }
    std::span<const float>
    row(std::size_t r) const
    {
        return {data_.data() + r * cols_, cols_};
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Fill with i.i.d. Gaussian entries of the given std deviation. */
    void fillGaussian(Rng &rng, float stddev);

    /** C = this * other. Shapes must agree. */
    Matrix matmul(const Matrix &other) const;
    /** C = this * other^T. */
    Matrix matmulTransposed(const Matrix &other) const;
    Matrix transposed() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** y += x elementwise. */
void addInPlace(std::span<float> y, std::span<const float> x);

/** y = A * x for row-major A (rows x cols), x of length cols. */
void matvec(const Matrix &a, std::span<const float> x, std::span<float> y);

/** y = A^T * x for row-major A (rows x cols), x of length rows. */
void matvecTransposed(const Matrix &a, std::span<const float> x,
                      std::span<float> y);

/** Dot product. */
float dot(std::span<const float> a, std::span<const float> b);

/** Numerically stable in-place softmax (subtract-max form). */
void softmaxInPlace(std::span<float> x);

/** RMSNorm: x <- x / rms(x) * gain. */
void rmsNormInPlace(std::span<float> x, std::span<const float> gain,
                    float eps = 1e-5f);

/** SiLU (swish) activation, elementwise in place. */
void siluInPlace(std::span<float> x);

/** GELU (tanh approximation) activation, elementwise in place. */
void geluInPlace(std::span<float> x);

/** Log of softmax(x)[idx] computed stably without materializing softmax. */
float logSoftmaxAt(std::span<const float> logits, std::size_t idx);

} // namespace tensor
} // namespace kelle

#endif // KELLE_TENSOR_MATRIX_HPP
