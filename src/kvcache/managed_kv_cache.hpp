/**
 * @file
 * The managed KV cache at the center of Kelle's AERP algorithm
 * (Section 4.1), also configurable as the H2O, StreamingLLM and
 * full-cache baselines of Section 7.
 *
 * Design notes
 * ------------
 *  - Eviction is per (layer, kv-head): the same token may be evicted
 *    from one head and retained in another (Figure 6). This exploits
 *    the permutation invariance of Equations 1-2: gathered entries are
 *    returned in slot order, not token order.
 *  - Importance scores follow Equation 3: every decode step, the
 *    attention each cached entry receives from the new query is
 *    accumulated into its score. Prefill scores are attention column
 *    sums, carried into decoding.
 *  - Recomputation (AERP): a token retained by at least theta of the
 *    kv-heads ("popular") stores only the layer input vector x (1 x C)
 *    instead of per-head [k, v] pairs (2 x C/H per retaining head) and
 *    its KV vectors are recomputed on access through a model-provided
 *    callback. Popularity is decided when a token leaves the protected
 *    recent window ("probation"); until then x is held in the
 *    activation buffer, matching the hardware flow where recent
 *    activations are resident in the 256 KB activation eDRAM.
 *  - Values are stored as 16-bit fixed-point words with one scale per
 *    stored vector ("activations and KV vectors are maintained in 16
 *    bits", Section 5). Fixed point makes bit-significance linear: an
 *    MSB flip moves a value by at most the vector's full scale, which
 *    is what gives Figure 8's smooth MSB-vs-LSB degradation (an fp16
 *    exponent flip would be unboundedly catastrophic instead). Reads
 *    pass through an optional FaultInjector so the eDRAM retention
 *    model can corrupt stored words per refresh group (2DRP).
 */

#ifndef KELLE_KVCACHE_MANAGED_KV_CACHE_HPP
#define KELLE_KVCACHE_MANAGED_KV_CACHE_HPP

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "kvcache/fault.hpp"
#include "kvcache/kv_config.hpp"
#include "tensor/matrix.hpp"

namespace kelle {
namespace kv {

/** Result of gathering one head's cache contents for attention. */
struct Gathered
{
    tensor::Matrix k; ///< [n x headDim], fault-injected, sanitized
    tensor::Matrix v; ///< [n x headDim]
    std::vector<std::uint32_t> slots; ///< slot ids for observeAttention
    std::vector<std::int64_t> positions; ///< absolute token positions
};

/** Per-head, per-layer slot-managed KV cache with pluggable policy. */
class ManagedKvCache
{
  public:
    /**
     * Recompute callback: given the (fault-injected) layer input x and
     * the token's absolute position, produce the full k and v vectors
     * (length dKv = kvHeads * headDim each, RoPE applied to k).
     */
    using Recomputer = std::function<void(
        std::size_t layer, std::span<const float> x, std::int64_t pos,
        std::span<float> k_out, std::span<float> v_out)>;

    ManagedKvCache(const KvCacheConfig &cfg, std::size_t layers,
                   std::size_t kv_heads, std::size_t head_dim,
                   std::size_t d_model);

    /** Attach a fault injector (non-owning; nullptr = fault free). */
    void setFaultInjector(FaultInjector *injector);
    /** Attach the recompute callback (required if cfg.recompute). */
    void setRecomputer(Recomputer fn);

    /**
     * Append the current decode token to one layer. k/v hold dKv floats
     * (k already rotated); x holds the dModel layer input. Evicts per
     * head if the budget is exhausted. Must be called with strictly
     * increasing positions per layer.
     */
    void append(std::size_t layer, std::int64_t pos,
                std::span<const float> k, std::span<const float> v,
                std::span<const float> x);

    /**
     * Bulk-load a prefilled context into one layer (Section 4.1.1
     * pre-filling rules): retain sinks, the recent window and the
     * top-scoring tokens per head; store popular tokens as x.
     * K/V are [Nctx x dKv], X is [Nctx x dModel], importance[h][n] is
     * the accumulated attention received by token n in kv-head h.
     */
    void loadPrefill(std::size_t layer, const tensor::Matrix &k,
                     const tensor::Matrix &v, const tensor::Matrix &x,
                     const std::vector<std::vector<float>> &importance);

    /** Gather one head's entries (decoded + fault injected). */
    Gathered gather(std::size_t layer, std::size_t kv_head);

    /**
     * Accumulate attention received by each gathered slot (Equation 3).
     * May be called several times per step (once per query head of a
     * GQA group). Slot ids are valid until the next append.
     */
    void observeAttention(std::size_t layer, std::size_t kv_head,
                          std::span<const float> probs,
                          std::span<const std::uint32_t> slots);

    std::size_t numEntries(std::size_t layer, std::size_t kv_head) const;
    /** Importance score of a slot (tests / evictor cross-check). */
    float importanceOf(std::size_t layer, std::size_t kv_head,
                       std::uint32_t slot) const;
    /** Token position held in a slot. */
    std::int64_t positionOf(std::size_t layer, std::size_t kv_head,
                            std::uint32_t slot) const;
    /** True if the token in this slot is stored as an input vector. */
    bool isInputStored(std::size_t layer, std::size_t kv_head,
                       std::uint32_t slot) const;

    /** Current resident KV bytes (for refresh-energy accounting). */
    double residentKvBytes() const;
    /** Resident probation activation bytes (activation eDRAM). */
    double residentActivationBytes() const;

    const KvCacheConfig &config() const { return cfg_; }
    stats::Group &statistics() { return stats_; }
    const stats::Group &statistics() const { return stats_; }

  private:
    struct TokenRec
    {
        std::int64_t pos = -1;
        int retainingHeads = 0;
        bool xStored = false;       ///< decided popular; holds only x
        bool probation = false;     ///< still in the recent window
        bool xCorrupted = false;    ///< one-time fault draw done
        std::vector<std::uint16_t> xBits; ///< layer input, int16 codes
        float xScale = 1.0f;        ///< fixed-point scale of xBits
    };

    struct Entry
    {
        std::int32_t tokenId = -1;
        float importance = 0.0f;
        /** Retention faults are drawn once per stored value (a bit
         *  either decayed during its residency or it did not) and then
         *  persist — refresh writes back the decayed value, it cannot
         *  repair it. */
        bool corrupted = false;
        std::vector<std::uint16_t> kBits; ///< empty if token x-stored
        std::vector<std::uint16_t> vBits;
        float kScale = 1.0f; ///< fixed-point scales (score-class
        float vScale = 1.0f; ///< metadata, like the register file)
    };

    struct LayerState
    {
        std::vector<TokenRec> tokens;
        std::vector<std::vector<Entry>> heads; ///< [kvHead][slot]
        std::int64_t lastPos = -1;
        /** Per-step recompute memo: tokenId -> (kFull, vFull);
         *  cleared at every append (one x readout per step). */
        std::vector<std::int32_t> memoIds;
        std::vector<std::vector<float>> memoK;
        std::vector<std::vector<float>> memoV;
    };

    /** Apply the configured precision to a full k or v vector. */
    void applyPrecision(std::span<float> values) const;
    /** Encode floats to int16 fixed-point codes; writes the scale. */
    static std::vector<std::uint16_t> encode(std::span<const float> x,
                                             float &scale);
    /** Decode one int16 code. */
    static float decode(std::uint16_t code, float scale);

    /** Pick the eviction victim slot in a head, or nullopt if a free
     *  slot exists. Honors sink/recent protection per policy. */
    std::optional<std::size_t> pickVictim(const LayerState &ls,
                                          std::size_t head,
                                          std::int64_t now) const;

    void evictSlot(LayerState &ls, std::size_t head, std::size_t slot);

    /** Move tokens whose probation window ended to their final format. */
    void resolveProbation(LayerState &ls, std::int64_t now);

    /** Recompute (and memoize for this step) an x-stored token. */
    void recomputeToken(LayerState &ls, std::size_t layer,
                        std::int32_t token_id, std::vector<float> &k_out,
                        std::vector<float> &v_out);

    bool protectsSink() const
    {
        return cfg_.policy == Policy::Streaming ||
               cfg_.policy == Policy::Aerp;
    }
    bool scoreBased() const
    {
        return cfg_.policy == Policy::H2O || cfg_.policy == Policy::Aerp;
    }
    bool recomputeEnabled() const
    {
        return cfg_.policy == Policy::Aerp && cfg_.recompute;
    }

    KvCacheConfig cfg_;
    std::size_t layers_;
    std::size_t kvHeads_;
    std::size_t headDim_;
    std::size_t dModel_;
    std::vector<LayerState> state_;
    FaultInjector *injector_ = nullptr;
    NoFaults noFaults_;
    Recomputer recomputer_;
    stats::Group stats_{"kv_cache"};
};

/** Build a cache from a baseline preset (see kv_config.hpp). */

} // namespace kv
} // namespace kelle

#endif // KELLE_KVCACHE_MANAGED_KV_CACHE_HPP
