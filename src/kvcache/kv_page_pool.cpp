#include "kvcache/kv_page_pool.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace kelle {
namespace kv {

KvPagePool::KvPagePool(const KvPagePoolConfig &cfg) : cfg_(cfg)
{
    KELLE_ASSERT(cfg_.totalPages > 0, "empty page pool");
    KELLE_ASSERT(cfg_.blockTokens > 0, "degenerate page size");
    pages_.resize(cfg_.totalPages);
    freeList_.reserve(cfg_.totalPages);
    // LIFO free list seeded so the first allocation hands out page 0.
    for (std::size_t p = cfg_.totalPages; p > 0; --p)
        freeList_.push_back(static_cast<std::uint32_t>(p - 1));
}

bool
KvPagePool::hasFrozenPartialTail(const Chain &c) const
{
    return c.sharedPages > 0 &&
           c.frozenTokens < c.sharedPages * cfg_.blockTokens;
}

std::size_t
KvPagePool::capacityOf(const Chain &c) const
{
    // Invariant: a chain with a frozen partial tail owns no pages of
    // its own (growth past the frozen boundary CoWs the tail first),
    // so its capacity is exactly the frozen token count.
    if (hasFrozenPartialTail(c))
        return c.frozenTokens;
    return c.pages.size() * cfg_.blockTokens;
}

void
KvPagePool::notePressure()
{
    peakUsedPages_ = std::max(peakUsedPages_, usedPages());
}

bool
KvPagePool::allocPage(std::uint32_t *out)
{
    if (freeList_.empty())
        reclaimCached();
    if (freeList_.empty())
        return false;
    const std::uint32_t p = freeList_.back();
    freeList_.pop_back();
    KELLE_ASSERT(pages_[p].refs == 0 && !pages_[p].indexed,
                 "free list held a referenced page");
    pages_[p].refs = 1;
    notePressure();
    *out = p;
    return true;
}

void
KvPagePool::refPage(std::uint32_t p)
{
    Page &pg = pages_[p];
    KELLE_ASSERT(pg.refs > 0, "attaching an unreferenced page");
    if (pg.refs == 1 && pg.indexed) {
        // Cached page returns to active use.
        --cachedPages_;
        notePressure();
    }
    ++pg.refs;
}

void
KvPagePool::unrefPage(std::uint32_t p)
{
    Page &pg = pages_[p];
    KELLE_ASSERT(pg.refs > 0, "double release of a page");
    --pg.refs;
    if (pg.refs == 0) {
        KELLE_ASSERT(!pg.indexed, "prefix index lost its reference");
        freeList_.push_back(p);
    } else if (pg.refs == 1 && pg.indexed) {
        ++cachedPages_;
    }
}

void
KvPagePool::dropOldestPublished()
{
    const std::uint64_t key = publishOrder_[reclaimCursor_];
    const auto it = published_.find(key);
    if (it != published_.end() &&
        it->second.order == reclaimCursor_) {
        if (it->second.ownerChain != kNoChain)
            chains_[it->second.ownerChain].publishedKey = 0;
        for (std::uint32_t p : it->second.pages) {
            Page &pg = pages_[p];
            pg.indexed = false;
            --indexedPages_;
            if (pg.refs == 1)
                --cachedPages_;
            unrefPage(p);
        }
        published_.erase(it);
        ++cachedReclaims_;
    }
    ++reclaimCursor_;
}

void
KvPagePool::reclaimCached()
{
    // Oldest-published-first: walk the publish log, dropping whole
    // entries until a page actually lands on the free list. Entries
    // whose pages still have live sharers free nothing but also stop
    // attracting new sharers.
    while (freeList_.empty() && reclaimCursor_ < publishOrder_.size())
        dropOldestPublished();
}

std::size_t
KvPagePool::dropCachedPrefixes()
{
    const std::size_t before = freeList_.size();
    while (reclaimCursor_ < publishOrder_.size())
        dropOldestPublished();
    return freeList_.size() - before;
}

bool
KvPagePool::growChain(Chain &c, std::size_t tokens)
{
    while (capacityOf(c) < tokens) {
        if (hasFrozenPartialTail(c)) {
            // First divergent append past the frozen boundary: copy
            // the shared partial tail into a private page.
            std::uint32_t p = 0;
            if (!allocPage(&p))
                return false;
            const std::uint32_t old = c.pages[c.sharedPages - 1];
            c.pages[c.sharedPages - 1] = p;
            --c.sharedPages;
            c.frozenTokens = c.sharedPages * cfg_.blockTokens;
            unrefPage(old);
            ++cowCopies_;
            continue;
        }
        std::uint32_t p = 0;
        if (!allocPage(&p))
            return false;
        c.pages.push_back(p);
    }
    return true;
}

KvPagePool::Reservation
KvPagePool::acquire(std::size_t tokens, std::uint64_t prefixKey,
                    std::size_t prefixTokens)
{
    KELLE_ASSERT(tokens > 0, "empty reservation");
    Reservation res;
    std::size_t id;
    if (freeChains_.empty()) {
        id = chains_.size();
        chains_.emplace_back();
    } else {
        id = freeChains_.back();
        freeChains_.pop_back();
    }
    Chain &c = chains_[id];
    c.active = true;

    std::size_t hit = 0;
    if (cfg_.sharePrefixes && prefixKey != 0 && prefixTokens > 0) {
        const auto it = published_.find(prefixKey);
        if (it != published_.end()) {
            const std::size_t covered =
                std::min(it->second.tokens, prefixTokens);
            const std::size_t attach =
                (covered + cfg_.blockTokens - 1) / cfg_.blockTokens;
            for (std::size_t i = 0; i < attach; ++i) {
                const std::uint32_t p = it->second.pages[i];
                refPage(p);
                c.pages.push_back(p);
            }
            c.sharedPages = attach;
            c.frozenTokens = covered;
            hit = covered;
        }
    }

    if (!growChain(c, tokens)) {
        // Roll the whole acquisition back: the caller defers.
        for (std::uint32_t p : c.pages)
            unrefPage(p);
        c = Chain{};
        freeChains_.push_back(id);
        return res;
    }
    prefixHitTokens_ += hit;
    res.ok = true;
    res.chainId = id;
    res.prefixHitTokens = hit;
    res.capacityTokens = capacityOf(c);
    return res;
}

bool
KvPagePool::grow(std::size_t chain, std::size_t tokens)
{
    KELLE_ASSERT(chain < chains_.size() && chains_[chain].active,
                 "growing a released chain");
    return growChain(chains_[chain], tokens);
}

void
KvPagePool::publishPrefix(std::size_t chain, std::uint64_t key,
                          std::size_t tokens)
{
    if (!cfg_.sharePrefixes || key == 0 || tokens == 0)
        return;
    KELLE_ASSERT(chain < chains_.size() && chains_[chain].active,
                 "publishing from a released chain");
    Chain &c = chains_[chain];
    tokens = std::min(tokens, capacityOf(c));
    if (tokens == 0)
        return;
    const std::size_t want =
        (tokens + cfg_.blockTokens - 1) / cfg_.blockTokens;
    const auto it = published_.find(key);
    if (it == published_.end()) {
        Published entry;
        entry.ownerChain = chain;
        entry.tokens = tokens;
        entry.pages.reserve(want);
        for (std::size_t i = 0; i < want; ++i) {
            const std::uint32_t p = c.pages[i];
            refPage(p);
            Page &pg = pages_[p];
            if (!pg.indexed) {
                pg.indexed = true;
                ++indexedPages_;
            }
            entry.pages.push_back(p);
        }
        entry.order = publishOrder_.size();
        publishOrder_.push_back(key);
        c.publishedKey = key;
        published_.emplace(key, std::move(entry));
        peakIndexedPages_ =
            std::max(peakIndexedPages_, indexedPages_);
        return;
    }
    Published &entry = it->second;
    if (entry.ownerChain != chain || tokens <= entry.tokens)
        return; // owner-only, monotone extension
    // Re-sync to the owner's current pages (a CoW after the original
    // publish may have swapped the old partial tail out), then append
    // the newly covered pages.
    for (std::size_t i = 0; i < entry.pages.size(); ++i) {
        if (entry.pages[i] == c.pages[i])
            continue;
        const std::uint32_t stale = entry.pages[i];
        const std::uint32_t fresh = c.pages[i];
        refPage(fresh);
        if (!pages_[fresh].indexed) {
            pages_[fresh].indexed = true;
            ++indexedPages_;
        }
        Page &old = pages_[stale];
        old.indexed = false;
        --indexedPages_;
        if (old.refs == 1)
            --cachedPages_;
        unrefPage(stale);
        entry.pages[i] = fresh;
    }
    for (std::size_t i = entry.pages.size(); i < want; ++i) {
        const std::uint32_t p = c.pages[i];
        refPage(p);
        Page &pg = pages_[p];
        if (!pg.indexed) {
            pg.indexed = true;
            ++indexedPages_;
        }
        entry.pages.push_back(p);
    }
    entry.tokens = tokens;
    peakIndexedPages_ = std::max(peakIndexedPages_, indexedPages_);
}

std::size_t
KvPagePool::shrinkTo(std::size_t chain, std::size_t tokens)
{
    KELLE_ASSERT(chain < chains_.size() && chains_[chain].active,
                 "shrinking a released chain");
    Chain &c = chains_[chain];
    std::size_t freed = 0;
    while (c.pages.size() > c.sharedPages &&
           (c.pages.size() - 1) * cfg_.blockTokens >= tokens) {
        unrefPage(c.pages.back());
        c.pages.pop_back();
        ++freed;
    }
    return freed;
}

void
KvPagePool::release(std::size_t chain)
{
    KELLE_ASSERT(chain < chains_.size() && chains_[chain].active,
                 "double release of a chain");
    Chain &c = chains_[chain];
    for (std::uint32_t p : c.pages)
        unrefPage(p);
    if (c.publishedKey != 0) {
        const auto it = published_.find(c.publishedKey);
        if (it != published_.end() &&
            it->second.ownerChain == chain)
            it->second.ownerChain = kNoChain;
    }
    c = Chain{};
    freeChains_.push_back(chain);
}

std::size_t
KvPagePool::capacityTokens(std::size_t chain) const
{
    KELLE_ASSERT(chain < chains_.size() && chains_[chain].active,
                 "querying a released chain");
    return capacityOf(chains_[chain]);
}

} // namespace kv
} // namespace kelle
