/**
 * @file
 * Configuration of the managed KV cache: policy selection (AERP, H2O,
 * StreamingLLM, full), token budget, protected regions, storage
 * precision and recomputation parameters, mirroring Section 7.1.
 */

#ifndef KELLE_KVCACHE_KV_CONFIG_HPP
#define KELLE_KVCACHE_KV_CONFIG_HPP

#include <cstddef>
#include <string>

namespace kelle {
namespace kv {

/** Which eviction policy manages the cache. */
enum class Policy
{
    Full,      ///< no eviction; cache grows with the sequence
    Streaming, ///< StreamingLLM: keep sink tokens + recent window only
    H2O,       ///< heavy hitters (accumulated attention) + recent window
    Aerp,      ///< Kelle AERP: scores + sink + recent + recomputation
};

/** Storage precision of the cached KV values. */
enum class KvPrecision
{
    Fp16,    ///< 16-bit IEEE half (Kelle / H2O / StreamingLLM default)
    Int8,    ///< 8-bit group quantization
    Int4,    ///< 4-bit group quantization (KIVI-style)
    QuaRot4, ///< Hadamard-rotated 4-bit (QuaRot baseline)
};

/** Bits per stored value for capacity/energy accounting. */
constexpr int
precisionBits(KvPrecision p)
{
    switch (p) {
      case KvPrecision::Fp16:
        return 16;
      case KvPrecision::Int8:
        return 8;
      case KvPrecision::Int4:
      case KvPrecision::QuaRot4:
        return 4;
    }
    return 16;
}

std::string toString(Policy p);
std::string toString(KvPrecision p);

struct KvCacheConfig
{
    Policy policy = Policy::Aerp;

    /** Token budget N' per head (0 = unlimited, only valid for Full). */
    std::size_t budget = 128;

    /** Always-retained initial tokens ("sink" tokens, Section 4.1.1). */
    std::size_t sinkTokens = 10;

    /** Protected most-recent window (per-task sizes in Section 7.1). */
    std::size_t recentWindow = 64;

    /** Stored KV precision. */
    KvPrecision precision = KvPrecision::Fp16;

    /** Quantization group size for Int8/Int4/QuaRot4. */
    std::size_t quantGroup = 32;

    /**
     * Enable the recomputation half of AERP: tokens popular in at least
     * `popularityTheta` of the KV heads store the layer input vector x
     * instead of per-head KV pairs and are recomputed on access
     * (Section 4.1.2).
     */
    bool recompute = true;

    /** Popularity threshold theta (paper: 0.5). */
    double popularityTheta = 0.5;

    /**
     * Use raw pre-softmax QK logits for the importance score instead of
     * softmax probabilities. The hardware systolic evictor accumulates
     * raw logits (Section 5.3); the algorithm description uses softmax
     * scores. Default matches the algorithm.
     */
    bool useRawLogits = false;

    /** Fraction of tokens per head placed in the HST refresh group. */
    double hstFraction = 0.5;

    /** Validate invariants; returns an error message or empty string. */
    std::string validate() const;
};

/** Presets mirroring the baselines of Section 7.1. */
KvCacheConfig makeFullConfig();
KvCacheConfig makeStreamingConfig(std::size_t budget, std::size_t sink,
                                  std::size_t recent_window);
KvCacheConfig makeH2OConfig(std::size_t budget, std::size_t recent_window);
KvCacheConfig makeAerpConfig(std::size_t budget, std::size_t sink,
                             std::size_t recent_window);
/** QuaRot baseline: full retention, 4-bit rotated KV quantization. */
KvCacheConfig makeQuaRotConfig();

} // namespace kv
} // namespace kelle

#endif // KELLE_KVCACHE_KV_CONFIG_HPP
