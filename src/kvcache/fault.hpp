/**
 * @file
 * Fault-injection interface between the KV cache and the eDRAM model.
 *
 * The KV cache stores fp16 bit patterns. When entries are read back, a
 * FaultInjector may flip bits to model eDRAM retention failures under a
 * given refresh policy (Section 4.2). The injector lives behind this
 * interface so kvcache does not depend on the edram library; the edram
 * library provides the concrete RefreshFaultModel.
 */

#ifndef KELLE_KVCACHE_FAULT_HPP
#define KELLE_KVCACHE_FAULT_HPP

#include <cstdint>
#include <span>

namespace kelle {
namespace kv {

/**
 * Refresh group of a stored word, the "two dimensions" of 2DRP:
 * token-importance group (HST vs LST) crossed with bit significance
 * (handled inside the injector via the MSB/LSB byte split).
 */
struct FaultContext
{
    /** Token belongs to the high-score (HST) group in its head. */
    bool highScoreToken = false;
};

/** Interface for corrupting a scratch copy of stored 16-bit words. */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /**
     * Flip bits of `words` in place (a scratch copy of the stored
     * values; transient read corruption) according to the refresh
     * group in `ctx`. Bits 15..8 of each word are the MSB region and
     * bits 7..0 the LSB region of the 2DRP layout (Figure 7c).
     */
    virtual void corrupt(std::span<std::uint16_t> words,
                         const FaultContext &ctx) = 0;
};

/** No-op injector used when the memory is assumed fault free. */
class NoFaults final : public FaultInjector
{
  public:
    void
    corrupt(std::span<std::uint16_t>, const FaultContext &) override
    {}
};

} // namespace kv
} // namespace kelle

#endif // KELLE_KVCACHE_FAULT_HPP
