/**
 * @file
 * Paged KV-cache allocation: fixed-size token pages on a free list,
 * per-request page chains, and refcounted shared prefix pages.
 *
 * The pool replaces per-request contiguous byte reservations with
 * page-granular ones (vLLM/Shukuchi-style `block_size` pages). Every
 * request owns a *chain* of pages; capacity grows lazily one page at a
 * time as the sequence appends, and whole tail pages can be reclaimed
 * under admission pressure without tearing the grant down.
 *
 * Prefix sharing: a chain whose prompt starts with a published prefix
 * (identified by a content-hash key) attaches the prefix's pages
 * copy-free, bumping their refcounts. Pages are append-only, so a
 * partially filled tail page shares safely *frozen* at the published
 * token count: a sharer that appends its first divergent token past
 * the frozen boundary copies that tail page first (copy-on-write),
 * while fully covered pages are never copied. Publishing is owner-only
 * and monotone — the first chain to publish a key owns the entry and
 * may extend it as its prefill progresses; later chains only attach.
 *
 * Lifecycle of a shared page after all chains release it: it stays
 * *cached* (held by the prefix index alone) so future requests can
 * still hit it, and is reclaimed oldest-published-entry-first only
 * when an allocation finds the free list empty.
 *
 * Determinism contract: the free list is LIFO, the prefix index is an
 * ordered map, and cached reclaim walks entries in publish order —
 * every operation sequence maps to exactly one page-id sequence, so
 * paged runs are byte-identical across thread counts and fastSim
 * on/off as long as the caller replays the same operations.
 *
 * The pool is pure accounting: no KV bytes are stored, `bytesPerPage`
 * only scales the byte-level occupancy reported to dispatch policies
 * (quantized pages cost fewer bytes; see tensor::quantizedStoreBytes).
 */

#ifndef KELLE_KVCACHE_KV_PAGE_POOL_HPP
#define KELLE_KVCACHE_KV_PAGE_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace kelle {
namespace kv {

/** Pool shape; `totalPages == 0` is an invalid (unused) config. */
struct KvPagePoolConfig
{
    std::size_t totalPages = 0;
    std::size_t blockTokens = 64; ///< tokens per page
    double bytesPerPage = 1.0;    ///< byte accounting only
    bool sharePrefixes = true;
};

class KvPagePool
{
  public:
    static constexpr std::size_t kNoChain =
        static_cast<std::size_t>(-1);

    /** Outcome of acquire(): a chain able to hold the asked floor. */
    struct Reservation
    {
        bool ok = false;
        std::size_t chainId = kNoChain;
        /** Prompt tokens covered copy-free by attached shared pages. */
        std::size_t prefixHitTokens = 0;
        /** Token capacity of the chain as acquired (>= asked floor). */
        std::size_t capacityTokens = 0;
    };

    explicit KvPagePool(const KvPagePoolConfig &cfg);

    /**
     * Acquire a chain with capacity for at least `tokens`. When
     * `prefixKey` is nonzero (and sharing is on), pages published
     * under that key are attached copy-free up to `prefixTokens`.
     * Fails — with any partial allocation rolled back — when the pool
     * (free + cached pages) cannot cover the remainder.
     */
    Reservation acquire(std::size_t tokens,
                        std::uint64_t prefixKey = 0,
                        std::size_t prefixTokens = 0);

    /**
     * Grow `chain` to hold `tokens` (no-op when it already does),
     * copy-on-writing a frozen shared tail page before the first
     * divergent append. On exhaustion returns false with the chain at
     * its best-effort capacity — callers clamp the request's budget to
     * capacityTokens(chain), which never drops below the acquired
     * floor.
     */
    bool grow(std::size_t chain, std::size_t tokens);

    /**
     * Publish the first `tokens` tokens of `chain` as the shared
     * prefix for `key`. First publisher owns the entry and may extend
     * it monotonically; from any other chain this is a no-op. Clamped
     * to the chain's capacity; no-op when sharing is off.
     */
    void publishPrefix(std::size_t chain, std::uint64_t key,
                       std::size_t tokens);

    /**
     * Release whole owned tail pages beyond a capacity of `tokens`
     * (page-granular reclaim; attached shared pages are kept). Returns
     * the number of pages whose reference this chain dropped.
     */
    std::size_t shrinkTo(std::size_t chain, std::size_t tokens);

    /** Drop every page reference and retire the chain id for reuse. */
    void release(std::size_t chain);

    /**
     * Fault-pressure reclaim (src/faults): drop *every* published
     * prefix entry — not just until one page frees — returning the
     * pages that landed on the free list. Entries still shared by live
     * chains free nothing but stop attracting new sharers. Part of
     * the graceful-degradation ladder; never called on a healthy
     * fleet, so pre-fault digests are untouched.
     */
    std::size_t dropCachedPrefixes();

    /** @name Accounting. @{ */
    std::size_t capacityTokens(std::size_t chain) const;
    std::size_t totalPages() const { return cfg_.totalPages; }
    std::size_t blockTokens() const { return cfg_.blockTokens; }
    double bytesPerPage() const { return cfg_.bytesPerPage; }
    std::size_t freePages() const { return freeList_.size(); }
    /** Refcount-idle pages held only by the prefix index. */
    std::size_t cachedPages() const { return cachedPages_; }
    /** Pages an acquire/grow could obtain right now. */
    std::size_t
    availablePages() const
    {
        return freeList_.size() + cachedPages_;
    }
    /** Pages pinned by live chains (total - free - cached). */
    std::size_t
    usedPages() const
    {
        return cfg_.totalPages - availablePages();
    }
    std::size_t peakUsedPages() const { return peakUsedPages_; }
    /** Pages currently referenced by the shared prefix index. */
    std::size_t sharedPages() const { return indexedPages_; }
    std::size_t peakSharedPages() const { return peakIndexedPages_; }
    /** Cumulative prompt tokens attached copy-free at acquire(). */
    std::uint64_t prefixHitTokens() const { return prefixHitTokens_; }
    std::uint64_t cowCopies() const { return cowCopies_; }
    /** Prefix-index entries dropped to refill an empty free list. */
    std::uint64_t cachedReclaims() const { return cachedReclaims_; }
    /** @} */

  private:
    struct Page
    {
        std::uint32_t refs = 0;
        bool indexed = false; ///< referenced by the prefix index
    };

    /** One request's ordered page list. The leading `sharedPages`
     *  entries are attached from a published prefix; `frozenTokens`
     *  is the token count they cover (the last one may be partial —
     *  then the chain owns no pages of its own until it CoWs). */
    struct Chain
    {
        std::vector<std::uint32_t> pages;
        std::size_t sharedPages = 0;
        std::size_t frozenTokens = 0;
        std::uint64_t publishedKey = 0; ///< entry this chain owns
        bool active = false;
    };

    struct Published
    {
        std::vector<std::uint32_t> pages;
        std::size_t tokens = 0;
        std::size_t ownerChain = kNoChain;
        std::size_t order = 0; ///< slot in publishOrder_
    };

    bool hasFrozenPartialTail(const Chain &c) const;
    std::size_t capacityOf(const Chain &c) const;
    /** False when free and cached pages are both exhausted. */
    bool allocPage(std::uint32_t *out);
    void refPage(std::uint32_t p);
    void unrefPage(std::uint32_t p);
    /** Drop the oldest published entries until a page frees. */
    void reclaimCached();
    /** Drop the publish-log entry at reclaimCursor_ and advance. */
    void dropOldestPublished();
    void notePressure();
    bool growChain(Chain &c, std::size_t tokens);

    KvPagePoolConfig cfg_;
    std::vector<Page> pages_;
    std::vector<std::uint32_t> freeList_; ///< LIFO
    std::vector<Chain> chains_;
    std::vector<std::size_t> freeChains_; ///< LIFO id reuse
    std::map<std::uint64_t, Published> published_;
    std::vector<std::uint64_t> publishOrder_;
    std::size_t reclaimCursor_ = 0;

    std::size_t cachedPages_ = 0;
    std::size_t indexedPages_ = 0;
    std::size_t peakIndexedPages_ = 0;
    std::size_t peakUsedPages_ = 0;
    std::uint64_t prefixHitTokens_ = 0;
    std::uint64_t cowCopies_ = 0;
    std::uint64_t cachedReclaims_ = 0;
};

} // namespace kv
} // namespace kelle

#endif // KELLE_KVCACHE_KV_PAGE_POOL_HPP
