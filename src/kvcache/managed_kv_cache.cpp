#include "kvcache/managed_kv_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.hpp"
#include "tensor/half.hpp"
#include "tensor/quant.hpp"

namespace kelle {
namespace kv {

ManagedKvCache::ManagedKvCache(const KvCacheConfig &cfg, std::size_t layers,
                               std::size_t kv_heads, std::size_t head_dim,
                               std::size_t d_model)
    : cfg_(cfg), layers_(layers), kvHeads_(kv_heads), headDim_(head_dim),
      dModel_(d_model), state_(layers)
{
    const std::string err = cfg.validate();
    if (!err.empty())
        KELLE_FATAL("invalid KV cache config: ", err);
    for (auto &ls : state_)
        ls.heads.resize(kvHeads_);
}

void
ManagedKvCache::setFaultInjector(FaultInjector *injector)
{
    injector_ = injector;
}

void
ManagedKvCache::setRecomputer(Recomputer fn)
{
    recomputer_ = std::move(fn);
}

void
ManagedKvCache::applyPrecision(std::span<float> values) const
{
    switch (cfg_.precision) {
      case KvPrecision::Fp16:
        break; // encode() performs the fp16 rounding
      case KvPrecision::Int8:
        tensor::fakeQuantGroupsInPlace(values, 8, cfg_.quantGroup);
        break;
      case KvPrecision::Int4:
        tensor::fakeQuantGroupsInPlace(values, 4, cfg_.quantGroup);
        break;
      case KvPrecision::QuaRot4:
        // Rotate each head slice independently: the Hadamard length must
        // be a power of two and hardware rotation is per head.
        for (std::size_t off = 0; off + headDim_ <= values.size();
             off += headDim_) {
            tensor::fakeQuantQuaRotInPlace(
                values.subspan(off, headDim_), 4,
                std::min<std::size_t>(cfg_.quantGroup, headDim_));
        }
        break;
    }
}

std::vector<std::uint16_t>
ManagedKvCache::encode(std::span<const float> x, float &scale)
{
    float max_abs = 0.0f;
    for (float v : x)
        max_abs = std::max(max_abs, std::fabs(v));
    scale = max_abs > 0.0f ? max_abs / 32767.0f : 1.0f;
    std::vector<std::uint16_t> codes(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float q =
            std::clamp(std::nearbyint(x[i] / scale), -32767.0f, 32767.0f);
        codes[i] = std::bit_cast<std::uint16_t>(
            static_cast<std::int16_t>(q));
    }
    return codes;
}

float
ManagedKvCache::decode(std::uint16_t code, float scale)
{
    return static_cast<float>(std::bit_cast<std::int16_t>(code)) * scale;
}

std::optional<std::size_t>
ManagedKvCache::pickVictim(const LayerState &ls, std::size_t head,
                           std::int64_t now) const
{
    const auto &entries = ls.heads[head];
    const std::int64_t recent_floor =
        now - static_cast<std::int64_t>(cfg_.recentWindow);

    auto eligible = [&](const Entry &e) {
        const std::int64_t pos = ls.tokens[e.tokenId].pos;
        if (protectsSink() &&
            pos < static_cast<std::int64_t>(cfg_.sinkTokens)) {
            return false;
        }
        return pos < recent_floor;
    };

    std::optional<std::size_t> best;
    auto better = [&](const Entry &a, const Entry &b) {
        if (scoreBased()) {
            if (a.importance != b.importance)
                return a.importance < b.importance;
        }
        return ls.tokens[a.tokenId].pos < ls.tokens[b.tokenId].pos;
    };

    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!eligible(entries[i]))
            continue;
        if (!best || better(entries[i], entries[*best]))
            best = i;
    }
    if (best)
        return best;

    // Fallback: the budget is too tight for the protected regions (the
    // config validator tries to prevent this). Evict the weakest
    // non-sink entry so forward progress is maintained.
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const std::int64_t pos = ls.tokens[entries[i].tokenId].pos;
        if (protectsSink() &&
            pos < static_cast<std::int64_t>(cfg_.sinkTokens)) {
            continue;
        }
        if (!best || better(entries[i], entries[*best]))
            best = i;
    }
    return best;
}

void
ManagedKvCache::evictSlot(LayerState &ls, std::size_t head, std::size_t slot)
{
    auto &entries = ls.heads[head];
    KELLE_ASSERT(slot < entries.size(), "evict slot out of range");
    const std::int32_t token_id = entries[slot].tokenId;

    // Order within a head is irrelevant (permutation invariance of
    // Eq. 1-2), so swap-remove keeps eviction O(1).
    entries[slot] = std::move(entries.back());
    entries.pop_back();

    auto &tok = ls.tokens[token_id];
    KELLE_ASSERT(tok.retainingHeads > 0, "token refcount underflow");
    if (--tok.retainingHeads == 0) {
        tok.xBits.clear();
        tok.xBits.shrink_to_fit();
        tok.xStored = false;
    }
    stats_.add("evictions", 1);
}

void
ManagedKvCache::resolveProbation(LayerState &ls, std::int64_t now)
{
    if (!recomputeEnabled())
        return;
    const std::int64_t recent_floor =
        now - static_cast<std::int64_t>(cfg_.recentWindow);

    for (std::int32_t tid = 0;
         tid < static_cast<std::int32_t>(ls.tokens.size()); ++tid) {
        auto &tok = ls.tokens[tid];
        if (!tok.probation || tok.retainingHeads == 0)
            continue;
        if (tok.pos >= recent_floor)
            continue; // still protected

        tok.probation = false;

        // Popularity theta: the fraction of kv-heads in which this token
        // ranks above the head's median importance, i.e. would be
        // retained rather than evicted (Section 4.1.2).
        int important_heads = 0;
        int retaining = 0;
        for (std::size_t h = 0; h < kvHeads_; ++h) {
            const Entry *entry = nullptr;
            for (const auto &e : ls.heads[h]) {
                if (e.tokenId == tid) {
                    entry = &e;
                    break;
                }
            }
            if (!entry)
                continue;
            ++retaining;
            std::vector<float> imps;
            imps.reserve(ls.heads[h].size());
            for (const auto &e : ls.heads[h])
                imps.push_back(e.importance);
            auto mid = imps.begin() + imps.size() / 2;
            std::nth_element(imps.begin(), mid, imps.end());
            if (entry->importance >= *mid)
                ++important_heads;
        }

        const bool popular =
            retaining > 0 &&
            static_cast<double>(important_heads) >=
                cfg_.popularityTheta * static_cast<double>(kvHeads_);

        if (popular) {
            // Store the input vector only; drop per-head KV bits. The
            // storage cost check of Section 4.1.2 (2 * C/H * theta*H > C)
            // is exactly the theta >= 50% rule.
            tok.xStored = true;
            for (std::size_t h = 0; h < kvHeads_; ++h) {
                for (auto &e : ls.heads[h]) {
                    if (e.tokenId == tid) {
                        e.kBits.clear();
                        e.kBits.shrink_to_fit();
                        e.vBits.clear();
                        e.vBits.shrink_to_fit();
                    }
                }
            }
            stats_.add("x_stored_tokens", 1);
        } else {
            tok.xBits.clear();
            tok.xBits.shrink_to_fit();
        }
    }
}

void
ManagedKvCache::append(std::size_t layer, std::int64_t pos,
                       std::span<const float> k, std::span<const float> v,
                       std::span<const float> x)
{
    KELLE_ASSERT(layer < layers_, "layer out of range");
    KELLE_ASSERT(k.size() == kvHeads_ * headDim_ && k.size() == v.size(),
                 "append kv size mismatch");
    KELLE_ASSERT(x.size() == dModel_, "append x size mismatch");
    auto &ls = state_[layer];
    KELLE_ASSERT(pos > ls.lastPos, "append positions must increase");
    ls.lastPos = pos;
    // Invalidate the per-step recompute memo: a new decode step begins.
    ls.memoIds.clear();
    ls.memoK.clear();
    ls.memoV.clear();

    resolveProbation(ls, pos);

    std::vector<float> kq(k.begin(), k.end());
    std::vector<float> vq(v.begin(), v.end());
    applyPrecision(kq);
    applyPrecision(vq);

    TokenRec tok;
    tok.pos = pos;
    tok.retainingHeads = static_cast<int>(kvHeads_);
    tok.probation = recomputeEnabled();
    if (recomputeEnabled())
        tok.xBits = encode(x, tok.xScale);
    const auto token_id = static_cast<std::int32_t>(ls.tokens.size());
    ls.tokens.push_back(std::move(tok));

    const bool bounded = cfg_.budget > 0 && cfg_.policy != Policy::Full;
    for (std::size_t h = 0; h < kvHeads_; ++h) {
        auto &entries = ls.heads[h];
        if (bounded && entries.size() >= cfg_.budget) {
            auto victim = pickVictim(ls, h, pos);
            KELLE_ASSERT(victim.has_value(), "no evictable slot");
            evictSlot(ls, h, *victim);
        }
        Entry e;
        e.tokenId = token_id;
        e.importance = 0.0f;
        const std::size_t off = h * headDim_;
        e.kBits = encode(std::span<const float>(kq).subspan(off, headDim_),
                         e.kScale);
        e.vBits = encode(std::span<const float>(vq).subspan(off, headDim_),
                         e.vScale);
        entries.push_back(std::move(e));
    }
    stats_.add("appends", 1);
}

void
ManagedKvCache::loadPrefill(std::size_t layer, const tensor::Matrix &k,
                            const tensor::Matrix &v, const tensor::Matrix &x,
                            const std::vector<std::vector<float>> &importance)
{
    KELLE_ASSERT(layer < layers_, "layer out of range");
    auto &ls = state_[layer];
    KELLE_ASSERT(ls.tokens.empty(), "loadPrefill on a non-empty layer");
    const std::size_t n_ctx = k.rows();
    KELLE_ASSERT(v.rows() == n_ctx && x.rows() == n_ctx,
                 "prefill shape mismatch");
    KELLE_ASSERT(importance.size() == kvHeads_,
                 "prefill importance must cover all kv heads");

    const std::int64_t now = static_cast<std::int64_t>(n_ctx);
    const std::int64_t recent_floor =
        now - static_cast<std::int64_t>(cfg_.recentWindow);
    const bool bounded = cfg_.budget > 0 && cfg_.policy != Policy::Full;

    // Per-head retained token sets.
    std::vector<std::vector<char>> retained(
        kvHeads_, std::vector<char>(n_ctx, 0));
    for (std::size_t h = 0; h < kvHeads_; ++h) {
        if (!bounded || n_ctx <= cfg_.budget) {
            std::fill(retained[h].begin(), retained[h].end(), 1);
            continue;
        }
        std::size_t used = 0;
        for (std::size_t n = 0; n < n_ctx; ++n) {
            const auto pos = static_cast<std::int64_t>(n);
            const bool is_sink =
                protectsSink() &&
                pos < static_cast<std::int64_t>(cfg_.sinkTokens);
            const bool is_recent = pos >= recent_floor;
            if (is_sink || is_recent) {
                retained[h][n] = 1;
                ++used;
            }
        }
        const std::size_t budget_left =
            cfg_.budget > used ? cfg_.budget - used : 0;
        std::vector<std::size_t> candidates;
        for (std::size_t n = 0; n < n_ctx; ++n)
            if (!retained[h][n])
                candidates.push_back(n);
        if (scoreBased()) {
            // Top-N' by importance (Section 4.1.1 pre-filling).
            std::stable_sort(candidates.begin(), candidates.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return importance[h][a] > importance[h][b];
                             });
        } else {
            // StreamingLLM keeps the most recent of the remainder.
            std::stable_sort(candidates.begin(), candidates.end(),
                             [](std::size_t a, std::size_t b) {
                                 return a > b;
                             });
        }
        for (std::size_t i = 0;
             i < std::min(budget_left, candidates.size()); ++i) {
            retained[h][candidates[i]] = 1;
        }
    }

    // Materialize token records and head entries.
    for (std::size_t n = 0; n < n_ctx; ++n) {
        int heads_retaining = 0;
        for (std::size_t h = 0; h < kvHeads_; ++h)
            heads_retaining += retained[h][n];
        if (heads_retaining == 0) {
            // Token dropped everywhere; still create a dead record so
            // tokenId == prefill position for debuggability.
            TokenRec dead;
            dead.pos = static_cast<std::int64_t>(n);
            dead.retainingHeads = 0;
            ls.tokens.push_back(std::move(dead));
            continue;
        }

        std::vector<float> kq(k.row(n).begin(), k.row(n).end());
        std::vector<float> vq(v.row(n).begin(), v.row(n).end());
        applyPrecision(kq);
        applyPrecision(vq);

        TokenRec tok;
        tok.pos = static_cast<std::int64_t>(n);
        tok.retainingHeads = heads_retaining;
        const bool in_recent = tok.pos >= recent_floor;
        const bool popular =
            recomputeEnabled() &&
            static_cast<double>(heads_retaining) >=
                cfg_.popularityTheta * static_cast<double>(kvHeads_);
        if (recomputeEnabled() && in_recent) {
            tok.probation = true; // decide when the window passes
            tok.xBits = encode(x.row(n), tok.xScale);
        } else if (popular) {
            tok.xStored = true;
            tok.xBits = encode(x.row(n), tok.xScale);
            stats_.add("x_stored_tokens", 1);
        }
        const auto token_id = static_cast<std::int32_t>(ls.tokens.size());
        ls.tokens.push_back(std::move(tok));
        const TokenRec &trec = ls.tokens.back();

        for (std::size_t h = 0; h < kvHeads_; ++h) {
            if (!retained[h][n])
                continue;
            Entry e;
            e.tokenId = token_id;
            e.importance = importance[h][n];
            if (!trec.xStored) {
                const std::size_t off = h * headDim_;
                e.kBits = encode(
                    std::span<const float>(kq).subspan(off, headDim_),
                    e.kScale);
                e.vBits = encode(
                    std::span<const float>(vq).subspan(off, headDim_),
                    e.vScale);
            }
            ls.heads[h].push_back(std::move(e));
        }
    }
    ls.lastPos = static_cast<std::int64_t>(n_ctx) - 1;
    stats_.add("prefill_tokens", static_cast<double>(n_ctx));
}

void
ManagedKvCache::recomputeToken(LayerState &ls, std::size_t layer,
                               std::int32_t token_id,
                               std::vector<float> &k_out,
                               std::vector<float> &v_out)
{
    for (std::size_t i = 0; i < ls.memoIds.size(); ++i) {
        if (ls.memoIds[i] == token_id) {
            k_out = ls.memoK[i];
            v_out = ls.memoV[i];
            return;
        }
    }
    KELLE_ASSERT(recomputer_, "recompute requested without a recomputer");
    auto &tok = ls.tokens[token_id];
    KELLE_ASSERT(!tok.xBits.empty(), "x-stored token lost its input bits");

    // Retention faults on x are drawn once over its stored lifetime
    // and persist in the array (refresh writes back the decayed bits).
    if (!tok.xCorrupted) {
        FaultContext ctx;
        ctx.highScoreToken = true; // popular tokens sit in the HST group
        (injector_ ? *injector_ : static_cast<FaultInjector &>(noFaults_))
            .corrupt(tok.xBits, ctx);
        tok.xCorrupted = true;
    }

    std::vector<float> xf(tok.xBits.size());
    for (std::size_t i = 0; i < tok.xBits.size(); ++i)
        xf[i] = decode(tok.xBits[i], tok.xScale);

    k_out.assign(kvHeads_ * headDim_, 0.0f);
    v_out.assign(kvHeads_ * headDim_, 0.0f);
    recomputer_(layer, xf, tok.pos, k_out, v_out);
    // The RSA emits fp16 partial results; recomputed vectors are
    // transient but still fp16-precision (Section 5.2).
    for (auto &f : k_out)
        f = tensor::roundToHalf(f);
    for (auto &f : v_out)
        f = tensor::roundToHalf(f);

    ls.memoIds.push_back(token_id);
    ls.memoK.push_back(k_out);
    ls.memoV.push_back(v_out);
    stats_.add("recomputes", 1);
}

Gathered
ManagedKvCache::gather(std::size_t layer, std::size_t kv_head)
{
    KELLE_ASSERT(layer < layers_ && kv_head < kvHeads_,
                 "gather index out of range");
    auto &ls = state_[layer];
    auto &entries = ls.heads[kv_head];

    Gathered out;
    out.k = tensor::Matrix(entries.size(), headDim_);
    out.v = tensor::Matrix(entries.size(), headDim_);
    out.slots.resize(entries.size());
    out.positions.resize(entries.size());

    // HST/LST split: tokens at or above the head's importance quantile
    // are refreshed as the high-score group (Section 5.1).
    float median = -std::numeric_limits<float>::infinity();
    if (entries.size() > 1) {
        std::vector<float> imps;
        imps.reserve(entries.size());
        for (const auto &e : entries)
            imps.push_back(e.importance);
        const auto idx = static_cast<std::size_t>(
            static_cast<double>(imps.size()) * (1.0 - cfg_.hstFraction));
        auto mid = imps.begin() +
                   std::min(idx, imps.size() - 1);
        std::nth_element(imps.begin(), mid, imps.end());
        median = *mid;
    }

    FaultInjector &inj =
        injector_ ? *injector_ : static_cast<FaultInjector &>(noFaults_);

    for (std::size_t i = 0; i < entries.size(); ++i) {
        auto &e = entries[i];
        const auto &tok = ls.tokens[e.tokenId];
        out.slots[i] = static_cast<std::uint32_t>(i);
        out.positions[i] = tok.pos;

        if (tok.xStored) {
            std::vector<float> kf, vf;
            recomputeToken(ls, layer, e.tokenId, kf, vf);
            const std::size_t off = kv_head * headDim_;
            for (std::size_t d = 0; d < headDim_; ++d) {
                out.k.at(i, d) = kf[off + d];
                out.v.at(i, d) = vf[off + d];
            }
            continue;
        }

        // One fault draw per stored entry, persisted in place: a cell
        // either decayed during this entry's residency or it did not;
        // subsequent reads see the same (possibly corrupt) bits.
        if (!e.corrupted) {
            FaultContext ctx;
            ctx.highScoreToken = e.importance >= median;
            inj.corrupt(e.kBits, ctx);
            inj.corrupt(e.vBits, ctx);
            e.corrupted = true;
        }
        for (std::size_t d = 0; d < headDim_; ++d) {
            out.k.at(i, d) = decode(e.kBits[d], e.kScale);
            out.v.at(i, d) = decode(e.vBits[d], e.vScale);
        }
    }
    stats_.add("gathers", 1);
    return out;
}

void
ManagedKvCache::observeAttention(std::size_t layer, std::size_t kv_head,
                                 std::span<const float> probs,
                                 std::span<const std::uint32_t> slots)
{
    KELLE_ASSERT(layer < layers_ && kv_head < kvHeads_,
                 "observe index out of range");
    KELLE_ASSERT(probs.size() == slots.size(), "probs/slots mismatch");
    auto &entries = state_[layer].heads[kv_head];
    for (std::size_t i = 0; i < probs.size(); ++i) {
        KELLE_ASSERT(slots[i] < entries.size(), "stale slot id");
        entries[slots[i]].importance += probs[i];
    }
}

std::size_t
ManagedKvCache::numEntries(std::size_t layer, std::size_t kv_head) const
{
    return state_.at(layer).heads.at(kv_head).size();
}

float
ManagedKvCache::importanceOf(std::size_t layer, std::size_t kv_head,
                             std::uint32_t slot) const
{
    return state_.at(layer).heads.at(kv_head).at(slot).importance;
}

std::int64_t
ManagedKvCache::positionOf(std::size_t layer, std::size_t kv_head,
                           std::uint32_t slot) const
{
    const auto &ls = state_.at(layer);
    return ls.tokens.at(ls.heads.at(kv_head).at(slot).tokenId).pos;
}

bool
ManagedKvCache::isInputStored(std::size_t layer, std::size_t kv_head,
                              std::uint32_t slot) const
{
    const auto &ls = state_.at(layer);
    return ls.tokens.at(ls.heads.at(kv_head).at(slot).tokenId).xStored;
}

double
ManagedKvCache::residentKvBytes() const
{
    const double kv_bytes_per_value = precisionBits(cfg_.precision) / 8.0;
    double total = 0.0;
    for (const auto &ls : state_) {
        for (const auto &tok : ls.tokens) {
            if (tok.retainingHeads > 0 && tok.xStored)
                total += static_cast<double>(dModel_) * 2.0; // fp16 x
        }
        for (const auto &head : ls.heads) {
            for (const auto &e : head) {
                if (!e.kBits.empty()) {
                    total += 2.0 * static_cast<double>(headDim_) *
                             kv_bytes_per_value;
                }
            }
        }
    }
    return total;
}

double
ManagedKvCache::residentActivationBytes() const
{
    double total = 0.0;
    for (const auto &ls : state_) {
        for (const auto &tok : ls.tokens) {
            if (tok.retainingHeads > 0 && tok.probation &&
                !tok.xBits.empty()) {
                total += static_cast<double>(dModel_) * 2.0;
            }
        }
    }
    return total;
}

} // namespace kv
} // namespace kelle
