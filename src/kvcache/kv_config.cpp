#include "kvcache/kv_config.hpp"

#include <sstream>

namespace kelle {
namespace kv {

std::string
toString(Policy p)
{
    switch (p) {
      case Policy::Full:
        return "Full";
      case Policy::Streaming:
        return "StreamingLLM";
      case Policy::H2O:
        return "H2O";
      case Policy::Aerp:
        return "AERP";
    }
    return "?";
}

std::string
toString(KvPrecision p)
{
    switch (p) {
      case KvPrecision::Fp16:
        return "fp16";
      case KvPrecision::Int8:
        return "int8";
      case KvPrecision::Int4:
        return "int4";
      case KvPrecision::QuaRot4:
        return "quarot4";
    }
    return "?";
}

std::string
KvCacheConfig::validate() const
{
    std::ostringstream err;
    if (policy != Policy::Full) {
        if (budget == 0) {
            err << "bounded policy needs a nonzero budget";
        } else if (budget <= sinkTokens + recentWindow) {
            err << "budget " << budget
                << " must exceed sink (" << sinkTokens
                << ") + recent window (" << recentWindow << ")";
        }
    }
    if (popularityTheta < 0.0 || popularityTheta > 1.0)
        err << "; popularityTheta must be in [0,1]";
    if (hstFraction < 0.0 || hstFraction > 1.0)
        err << "; hstFraction must be in [0,1]";
    if (quantGroup == 0)
        err << "; quantGroup must be positive";
    return err.str();
}

KvCacheConfig
makeFullConfig()
{
    KvCacheConfig cfg;
    cfg.policy = Policy::Full;
    cfg.budget = 0;
    cfg.recompute = false;
    return cfg;
}

KvCacheConfig
makeStreamingConfig(std::size_t budget, std::size_t sink,
                    std::size_t recent_window)
{
    KvCacheConfig cfg;
    cfg.policy = Policy::Streaming;
    cfg.budget = budget;
    cfg.sinkTokens = sink;
    cfg.recentWindow = recent_window;
    cfg.recompute = false;
    return cfg;
}

KvCacheConfig
makeH2OConfig(std::size_t budget, std::size_t recent_window)
{
    KvCacheConfig cfg;
    cfg.policy = Policy::H2O;
    cfg.budget = budget;
    cfg.sinkTokens = 0;
    cfg.recentWindow = recent_window;
    cfg.recompute = false;
    return cfg;
}

KvCacheConfig
makeAerpConfig(std::size_t budget, std::size_t sink,
               std::size_t recent_window)
{
    KvCacheConfig cfg;
    cfg.policy = Policy::Aerp;
    cfg.budget = budget;
    cfg.sinkTokens = sink;
    cfg.recentWindow = recent_window;
    cfg.recompute = true;
    return cfg;
}

KvCacheConfig
makeQuaRotConfig()
{
    KvCacheConfig cfg;
    cfg.policy = Policy::Full;
    cfg.budget = 0;
    cfg.recompute = false;
    cfg.precision = KvPrecision::QuaRot4;
    return cfg;
}

} // namespace kv
} // namespace kelle
