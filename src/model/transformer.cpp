#include "model/transformer.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace kelle {
namespace model {

using tensor::Matrix;

TinyTransformer::TinyTransformer(const ModelConfig &cfg,
                                 const InitOptions &init)
    : cfg_(cfg)
{
    const std::string err = cfg.validate();
    if (!err.empty())
        KELLE_FATAL("invalid model config: ", err);

    Rng rng(init.seed);
    const auto d = cfg_.dModel;
    const auto dkv = cfg_.dKv();
    const float proj_std = 1.0f / std::sqrt(static_cast<float>(d));
    const float qk_std = proj_std * init.attentionGain;
    const float ffn_std = proj_std;
    const float down_std = 1.0f / std::sqrt(static_cast<float>(cfg_.dFfn));

    embed_ = Matrix(cfg_.vocab, d);
    embed_.fillGaussian(rng, 1.0f);
    head_ = Matrix(cfg_.vocab, d);
    head_.fillGaussian(rng, 1.0f);

    layers_.resize(cfg_.layers);
    for (auto &lw : layers_) {
        lw.wq = Matrix(d, d);
        lw.wq.fillGaussian(rng, qk_std);
        lw.wk = Matrix(dkv, d);
        lw.wk.fillGaussian(rng, qk_std);
        lw.wv = Matrix(dkv, d);
        lw.wv.fillGaussian(rng, proj_std);
        lw.wo = Matrix(d, d);
        lw.wo.fillGaussian(rng, proj_std);
        lw.w1 = Matrix(cfg_.dFfn, d);
        lw.w1.fillGaussian(rng, ffn_std);
        lw.w2 = Matrix(d, cfg_.dFfn);
        lw.w2.fillGaussian(rng, down_std);
        if (cfg_.ffn == FfnKind::GatedSilu) {
            lw.w3 = Matrix(cfg_.dFfn, d);
            lw.w3.fillGaussian(rng, ffn_std);
        }
        lw.norm1.assign(d, 1.0f);
        lw.norm2.assign(d, 1.0f);
    }
    finalNorm_.assign(d, 1.0f);
    logitScale_ = init.logitGain / std::sqrt(static_cast<float>(d));
}

void
TinyTransformer::attach(kv::ManagedKvCache &cache)
{
    cache_ = &cache;
    cache.setRecomputer([this](std::size_t layer, std::span<const float> x,
                               std::int64_t pos, std::span<float> k_out,
                               std::span<float> v_out) {
        const auto &lw = layers_.at(layer);
        tensor::matvec(lw.wk, x, k_out);
        tensor::matvec(lw.wv, x, v_out);
        applyRope(k_out, pos, cfg_.headDim());
    });
}

void
TinyTransformer::applyRope(std::span<float> x, std::int64_t pos,
                           std::size_t head_dim) const
{
    KELLE_ASSERT(x.size() % head_dim == 0, "rope width mismatch");
    const double p = static_cast<double>(pos);
    for (std::size_t off = 0; off < x.size(); off += head_dim) {
        for (std::size_t i = 0; i + 1 < head_dim; i += 2) {
            const double freq =
                std::pow(10000.0, -static_cast<double>(i) /
                                      static_cast<double>(head_dim));
            const double angle = p * freq;
            const float c = static_cast<float>(std::cos(angle));
            const float s = static_cast<float>(std::sin(angle));
            const float a = x[off + i];
            const float b = x[off + i + 1];
            x[off + i] = a * c - b * s;
            x[off + i + 1] = a * s + b * c;
        }
    }
}

void
TinyTransformer::runFfn(const LayerWeights &lw, std::span<const float> x,
                        std::span<float> out) const
{
    std::vector<float> a(cfg_.dFfn);
    tensor::matvec(lw.w1, x, a);
    if (cfg_.ffn == FfnKind::GatedSilu) {
        std::vector<float> b(cfg_.dFfn);
        tensor::matvec(lw.w3, x, b);
        tensor::siluInPlace(a);
        for (std::size_t i = 0; i < a.size(); ++i)
            a[i] *= b[i];
    } else {
        tensor::geluInPlace(a);
    }
    tensor::matvec(lw.w2, a, out);
}

std::vector<float>
TinyTransformer::decodeStep(int token, std::int64_t pos)
{
    KELLE_ASSERT(cache_, "decodeStep without an attached KV cache");
    KELLE_ASSERT(token >= 0 &&
                     static_cast<std::size_t>(token) < cfg_.vocab,
                 "token out of vocabulary");
    const auto d = cfg_.dModel;
    const auto dkv = cfg_.dKv();
    const auto hd = cfg_.headDim();
    const std::size_t group = cfg_.nHeads / cfg_.nKvHeads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    const bool raw_scores = cache_->config().useRawLogits;

    std::vector<float> h(embed_.row(token).begin(),
                         embed_.row(token).end());

    std::vector<float> xln(d), q(d), k(dkv), v(dkv), y(d), attn(d), ffn(d);
    for (std::size_t l = 0; l < cfg_.layers; ++l) {
        const auto &lw = layers_[l];
        xln.assign(h.begin(), h.end());
        tensor::rmsNormInPlace(xln, lw.norm1);

        tensor::matvec(lw.wq, xln, q);
        tensor::matvec(lw.wk, xln, k);
        tensor::matvec(lw.wv, xln, v);
        applyRope(q, pos, hd);
        applyRope(k, pos, hd);

        cache_->append(l, pos, k, v, xln);

        std::fill(y.begin(), y.end(), 0.0f);
        for (std::size_t kvh = 0; kvh < cfg_.nKvHeads; ++kvh) {
            auto gathered = cache_->gather(l, kvh);
            const std::size_t n = gathered.k.rows();
            std::vector<float> scores(n), probs(n);
            for (std::size_t g = 0; g < group; ++g) {
                const std::size_t head = kvh * group + g;
                std::span<const float> qh(q.data() + head * hd, hd);
                for (std::size_t i = 0; i < n; ++i)
                    scores[i] = tensor::dot(gathered.k.row(i), qh) * scale;
                probs = scores;
                tensor::softmaxInPlace(probs);
                cache_->observeAttention(
                    l, kvh, raw_scores ? scores : probs, gathered.slots);
                float *yh = y.data() + head * hd;
                for (std::size_t i = 0; i < n; ++i) {
                    const float p = probs[i];
                    auto vrow = gathered.v.row(i);
                    for (std::size_t dd = 0; dd < hd; ++dd)
                        yh[dd] += p * vrow[dd];
                }
            }
        }
        tensor::matvec(lw.wo, y, attn);
        tensor::addInPlace(h, attn);

        xln.assign(h.begin(), h.end());
        tensor::rmsNormInPlace(xln, lw.norm2);
        runFfn(lw, xln, ffn);
        tensor::addInPlace(h, ffn);
    }

    tensor::rmsNormInPlace(h, finalNorm_);
    std::vector<float> logits(cfg_.vocab);
    tensor::matvec(head_, h, logits);
    for (auto &v : logits)
        v *= logitScale_;
    return logits;
}

std::vector<float>
TinyTransformer::prefill(std::span<const int> tokens)
{
    KELLE_ASSERT(cache_, "prefill without an attached KV cache");
    KELLE_ASSERT(!tokens.empty(), "empty prefill context");
    const auto d = cfg_.dModel;
    const auto dkv = cfg_.dKv();
    const auto hd = cfg_.headDim();
    const std::size_t n = tokens.size();
    const std::size_t group = cfg_.nHeads / cfg_.nKvHeads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
    const bool raw_scores = cache_->config().useRawLogits;

    Matrix h(n, d);
    for (std::size_t i = 0; i < n; ++i) {
        KELLE_ASSERT(tokens[i] >= 0 &&
                         static_cast<std::size_t>(tokens[i]) < cfg_.vocab,
                     "token out of vocabulary");
        auto src = embed_.row(tokens[i]);
        std::copy(src.begin(), src.end(), h.row(i).begin());
    }

    for (std::size_t l = 0; l < cfg_.layers; ++l) {
        const auto &lw = layers_[l];

        Matrix xln(n, d), qm(n, d), km(n, dkv), vm(n, dkv);
        for (std::size_t i = 0; i < n; ++i) {
            auto row = xln.row(i);
            std::copy(h.row(i).begin(), h.row(i).end(), row.begin());
            tensor::rmsNormInPlace(row, lw.norm1);
            tensor::matvec(lw.wq, row, qm.row(i));
            tensor::matvec(lw.wk, row, km.row(i));
            tensor::matvec(lw.wv, row, vm.row(i));
            applyRope(qm.row(i), static_cast<std::int64_t>(i), hd);
            applyRope(km.row(i), static_cast<std::int64_t>(i), hd);
        }

        // Causal attention with importance accumulation: the importance
        // of token j in kv-head kvh is the attention it receives from
        // every later query across the head group (Section 4.1.1).
        std::vector<std::vector<float>> importance(
            cfg_.nKvHeads, std::vector<float>(n, 0.0f));
        Matrix y(n, d);
        std::vector<float> scores, probs;
        for (std::size_t i = 0; i < n; ++i) {
            scores.resize(i + 1);
            probs.resize(i + 1);
            for (std::size_t head = 0; head < cfg_.nHeads; ++head) {
                const std::size_t kvh = head / group;
                std::span<const float> qh(qm.row(i).data() + head * hd,
                                          hd);
                for (std::size_t j = 0; j <= i; ++j) {
                    std::span<const float> kh(
                        km.row(j).data() + kvh * hd, hd);
                    scores[j] = tensor::dot(kh, qh) * scale;
                }
                probs = scores;
                tensor::softmaxInPlace(probs);
                const auto &acc = raw_scores ? scores : probs;
                for (std::size_t j = 0; j <= i; ++j)
                    importance[kvh][j] += acc[j];
                float *yh = y.row(i).data() + head * hd;
                for (std::size_t j = 0; j <= i; ++j) {
                    const float p = probs[j];
                    const float *vrow = vm.row(j).data() + kvh * hd;
                    for (std::size_t dd = 0; dd < hd; ++dd)
                        yh[dd] += p * vrow[dd];
                }
            }
        }

        cache_->loadPrefill(l, km, vm, xln, importance);

        std::vector<float> attn(d), ffn(d), x2(d);
        for (std::size_t i = 0; i < n; ++i) {
            tensor::matvec(lw.wo, y.row(i), attn);
            tensor::addInPlace(h.row(i), attn);
            x2.assign(h.row(i).begin(), h.row(i).end());
            tensor::rmsNormInPlace(x2, lw.norm2);
            runFfn(lw, x2, ffn);
            tensor::addInPlace(h.row(i), ffn);
        }
    }

    std::vector<float> last(h.row(n - 1).begin(), h.row(n - 1).end());
    tensor::rmsNormInPlace(last, finalNorm_);
    std::vector<float> logits(cfg_.vocab);
    tensor::matvec(head_, last, logits);
    for (auto &v : logits)
        v *= logitScale_;
    return logits;
}

} // namespace model
} // namespace kelle
