/**
 * @file
 * Token sampling utilities for generating synthetic evaluation streams.
 */

#ifndef KELLE_MODEL_SAMPLER_HPP
#define KELLE_MODEL_SAMPLER_HPP

#include <span>
#include <vector>

#include "common/rng.hpp"

namespace kelle {
namespace model {

/** Index of the largest logit (ties resolve to the lowest index). */
int argmaxToken(std::span<const float> logits);

/**
 * Sample from softmax(logits / temperature) restricted to the top_k
 * highest logits (top_k = 0 disables the restriction).
 */
int sampleToken(std::span<const float> logits, double temperature,
                std::size_t top_k, Rng &rng);

/** Uniform random token ids in [0, vocab), used for prompt synthesis. */
std::vector<int> randomTokens(std::size_t n, std::size_t vocab, Rng &rng);

} // namespace model
} // namespace kelle

#endif // KELLE_MODEL_SAMPLER_HPP
