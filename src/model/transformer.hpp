/**
 * @file
 * Executable transformer decoder substrate for the Kelle accuracy
 * experiments.
 *
 * This is a faithful functional implementation of the decoder stack of
 * Section 2.1 — RMSNorm, rotary-embedded multi-(or grouped-)query
 * attention with a pluggable managed KV cache, and a gated-SiLU or
 * classic MLP feed-forward — with deterministic seeded weights. All KV
 * traffic flows through kv::ManagedKvCache so that eviction,
 * recomputation, quantization and eDRAM bit-flip faults perturb the
 * computation exactly where they would on the Kelle accelerator.
 */

#ifndef KELLE_MODEL_TRANSFORMER_HPP
#define KELLE_MODEL_TRANSFORMER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "kvcache/managed_kv_cache.hpp"
#include "model/model_config.hpp"
#include "tensor/matrix.hpp"

namespace kelle {
namespace model {

/** Options controlling weight synthesis of the functional model. */
struct InitOptions
{
    std::uint64_t seed = 1234;
    /**
     * Extra gain on the Q/K projections. Raising it sharpens the
     * attention distribution, creating heavy-hitter structure similar
     * to trained models (important for eviction-policy studies).
     */
    float attentionGain = 1.5f;

    /**
     * Output logits are scaled by logitGain / sqrt(dModel), which sets
     * the entropy of the synthetic language: ~2 gives a sharply-but-
     * not-degenerately peaked next-token distribution. The output head
     * is untied from the embedding — tying would make the residual
     * stream self-predict the current token and collapse generation
     * into repetition.
     */
    float logitGain = 2.0f;
};

/** A functional transformer decoder with managed-KV-cache attention. */
class TinyTransformer
{
  public:
    TinyTransformer(const ModelConfig &cfg, const InitOptions &init = {});

    /**
     * Attach the KV cache used by attention (non-owning). Also installs
     * this model's recompute callback on the cache so AERP x-stored
     * tokens can be re-projected through W_K / W_V (Section 4.1.2).
     * The cache must be shaped (layers, nKvHeads, headDim, dModel).
     */
    void attach(kv::ManagedKvCache &cache);

    /**
     * Process a full context in parallel (pre-filling stage). Computes
     * per-token importance scores as attention column sums and bulk
     * loads the cache per layer. Returns the logits after the last
     * context token.
     */
    std::vector<float> prefill(std::span<const int> tokens);

    /**
     * Decode one token at absolute position `pos` (continuing the
     * prefill positions). Returns next-token logits.
     */
    std::vector<float> decodeStep(int token, std::int64_t pos);

    const ModelConfig &config() const { return cfg_; }

    /** Apply rotary position embedding to a dKv- or dModel-wide vector
     *  organized as consecutive heads of headDim (exposed for tests). */
    void applyRope(std::span<float> x, std::int64_t pos,
                   std::size_t head_dim) const;

  private:
    struct LayerWeights
    {
        tensor::Matrix wq; ///< [d x d]
        tensor::Matrix wk; ///< [dKv x d]
        tensor::Matrix wv; ///< [dKv x d]
        tensor::Matrix wo; ///< [d x d]
        tensor::Matrix w1; ///< gate/up: [dFfn x d]
        tensor::Matrix w2; ///< down:    [d x dFfn]
        tensor::Matrix w3; ///< up (gated only): [dFfn x d]
        std::vector<float> norm1;
        std::vector<float> norm2;
    };

    /** Shared FFN block on a single row. */
    void runFfn(const LayerWeights &lw, std::span<const float> x,
                std::span<float> out) const;

    ModelConfig cfg_;
    tensor::Matrix embed_; ///< [vocab x d]
    tensor::Matrix head_;  ///< [vocab x d] untied output head
    std::vector<LayerWeights> layers_;
    std::vector<float> finalNorm_;
    float logitScale_ = 1.0f;
    kv::ManagedKvCache *cache_ = nullptr;
};

} // namespace model
} // namespace kelle

#endif // KELLE_MODEL_TRANSFORMER_HPP
