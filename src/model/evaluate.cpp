#include "model/evaluate.hpp"

#include <cmath>

#include "common/log.hpp"
#include "model/sampler.hpp"

namespace kelle {
namespace model {

double
StreamEval::meanCrossEntropy() const
{
    if (crossEntropy.empty())
        return 0.0;
    double acc = 0.0;
    for (double ce : crossEntropy)
        acc += ce;
    return acc / static_cast<double>(crossEntropy.size());
}

double
StreamEval::perplexity() const
{
    return std::exp(meanCrossEntropy());
}

StreamEval
runStream(TinyTransformer &model, kv::ManagedKvCache &cache,
          std::span<const int> tokens, std::size_t prompt_len)
{
    KELLE_ASSERT(prompt_len >= 1 && prompt_len < tokens.size(),
                 "stream needs a prompt and at least one scored token");
    (void)cache; // already attached; kept in the signature for clarity

    StreamEval eval;
    const std::size_t n = tokens.size();
    eval.crossEntropy.reserve(n - prompt_len);
    eval.argmax.reserve(n - prompt_len);

    auto score = [&](std::span<const float> logits, int target) {
        eval.crossEntropy.push_back(
            -tensor::logSoftmaxAt(logits,
                                  static_cast<std::size_t>(target)));
        eval.argmax.push_back(argmaxToken(logits));
    };

    auto logits =
        model.prefill(std::span<const int>(tokens.data(), prompt_len));
    score(logits, tokens[prompt_len]);
    for (std::size_t t = prompt_len; t + 1 < n; ++t) {
        logits = model.decodeStep(tokens[t],
                                  static_cast<std::int64_t>(t));
        score(logits, tokens[t + 1]);
    }
    return eval;
}

double
agreement(const StreamEval &a, const StreamEval &b)
{
    KELLE_ASSERT(a.argmax.size() == b.argmax.size(),
                 "agreement over different-length evals");
    if (a.argmax.empty())
        return 1.0;
    std::size_t match = 0;
    for (std::size_t i = 0; i < a.argmax.size(); ++i)
        match += a.argmax[i] == b.argmax[i];
    return static_cast<double>(match) /
           static_cast<double>(a.argmax.size());
}

SyntheticStream
generateStream(TinyTransformer &model, std::size_t prompt_len,
               std::size_t gen_len, double temperature, std::uint64_t seed)
{
    Rng rng(seed);
    SyntheticStream stream;
    stream.promptLen = prompt_len;
    stream.tokens =
        randomTokens(prompt_len, model.config().vocab, rng);

    kv::ManagedKvCache cache(kv::makeFullConfig(), model.config().layers,
                             model.config().nKvHeads,
                             model.config().headDim(),
                             model.config().dModel);
    model.attach(cache);
    auto logits = model.prefill(stream.tokens);
    for (std::size_t i = 0; i < gen_len; ++i) {
        const int next = sampleToken(logits, temperature, 40, rng);
        const auto pos = static_cast<std::int64_t>(stream.tokens.size());
        stream.tokens.push_back(next);
        if (i + 1 < gen_len)
            logits = model.decodeStep(next, pos);
    }
    return stream;
}

PolicyEval
evaluatePolicy(TinyTransformer &model, const kv::KvCacheConfig &cfg,
               kv::FaultInjector *injector, const SyntheticStream &stream,
               const StreamEval &baseline)
{
    kv::ManagedKvCache cache(cfg, model.config().layers,
                             model.config().nKvHeads,
                             model.config().headDim(),
                             model.config().dModel);
    if (injector)
        cache.setFaultInjector(injector);
    model.attach(cache);

    const auto eval =
        runStream(model, cache, stream.tokens, stream.promptLen);

    PolicyEval out;
    out.perplexity = eval.perplexity();
    out.agreementTop1 = agreement(eval, baseline);
    out.residentKvBytes = cache.residentKvBytes();
    return out;
}

} // namespace model
} // namespace kelle
