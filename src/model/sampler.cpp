#include "model/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hpp"

namespace kelle {
namespace model {

int
argmaxToken(std::span<const float> logits)
{
    KELLE_ASSERT(!logits.empty(), "argmax of empty logits");
    std::size_t best = 0;
    for (std::size_t i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[best])
            best = i;
    return static_cast<int>(best);
}

int
sampleToken(std::span<const float> logits, double temperature,
            std::size_t top_k, Rng &rng)
{
    KELLE_ASSERT(!logits.empty(), "sample from empty logits");
    if (temperature <= 0.0)
        return argmaxToken(logits);

    std::vector<std::size_t> order(logits.size());
    std::iota(order.begin(), order.end(), 0);
    if (top_k > 0 && top_k < logits.size()) {
        std::partial_sort(order.begin(), order.begin() + top_k,
                          order.end(), [&](std::size_t a, std::size_t b) {
                              return logits[a] > logits[b];
                          });
        order.resize(top_k);
    }

    double maxv = logits[order[0]];
    for (std::size_t i : order)
        maxv = std::max(maxv, static_cast<double>(logits[i]));
    std::vector<double> probs(order.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        probs[i] = std::exp((logits[order[i]] - maxv) / temperature);
        sum += probs[i];
    }
    double u = rng.uniform() * sum;
    for (std::size_t i = 0; i < order.size(); ++i) {
        u -= probs[i];
        if (u <= 0.0)
            return static_cast<int>(order[i]);
    }
    return static_cast<int>(order.back());
}

std::vector<int>
randomTokens(std::size_t n, std::size_t vocab, Rng &rng)
{
    std::vector<int> out(n);
    for (auto &t : out)
        t = static_cast<int>(rng.below(vocab));
    return out;
}

} // namespace model
} // namespace kelle
