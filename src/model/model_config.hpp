/**
 * @file
 * Architectural descriptions of the LLMs evaluated in the paper
 * (Section 7.1) plus small executable configurations for the
 * functional accuracy substrate.
 *
 * The end-to-end latency/energy results (Section 8) depend only on
 * tensor shapes and memory traffic; these presets carry the real
 * published dimensions of each model. The derived-quantity helpers
 * (weight bytes, KV bytes/token, MACs/token) are the inputs to the
 * analytic timing model of src/accel.
 */

#ifndef KELLE_MODEL_MODEL_CONFIG_HPP
#define KELLE_MODEL_MODEL_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace kelle {
namespace model {

/** Feed-forward block flavor. */
enum class FfnKind
{
    GatedSilu, ///< LLaMA/Mistral/Qwen: down(silu(gate(x)) * up(x))
    Mlp,       ///< OPT/GPT: down(gelu(up(x)))
};

/** Transformer decoder architecture description. */
struct ModelConfig
{
    std::string name;
    std::size_t layers = 0;
    std::size_t dModel = 0;
    std::size_t nHeads = 0;
    std::size_t nKvHeads = 0; ///< < nHeads implies grouped-query attention
    std::size_t dFfn = 0;
    std::size_t vocab = 0;
    FfnKind ffn = FfnKind::GatedSilu;

    std::size_t headDim() const { return dModel / nHeads; }
    /** Width of the concatenated K (or V) projection output. */
    std::size_t dKv() const { return nKvHeads * headDim(); }

    /** Per-layer weight parameter count (attention + FFN + norms). */
    double paramsPerLayer() const;
    /** Total parameter count including embeddings (tied output head). */
    double totalParams() const;
    /** Total weight bytes at the given weight bit width. */
    double weightBytes(int bits_w) const;
    /** Per-layer weight bytes at the given weight bit width. */
    double weightBytesPerLayer(int bits_w) const;
    /** KV cache bytes per token per layer at the given KV bit width. */
    double kvBytesPerTokenPerLayer(int bits_kv) const;
    /** KV cache bytes per token across all layers. */
    double kvBytesPerToken(int bits_kv) const;

    /**
     * Total MAC operations to decode one token with `context_len`
     * cached tokens: QKVO projections + attention score/value products
     * + FFN across all layers, plus the output head.
     */
    double macsPerDecodeToken(std::size_t context_len) const;
    /** Per-layer decode MACs (output head excluded). */
    double macsPerDecodeTokenPerLayer(std::size_t context_len) const;
    /** MAC operations to prefill a context of the given length. */
    double macsPrefill(std::size_t context_len) const;
    /** The attention-product share of prefill MACs (DynaX sparsity). */
    double macsPrefillAttention(std::size_t context_len) const;

    /** Sanity checks (dModel divisible by heads, GQA grouping, ...). */
    std::string validate() const;
};

/** @name Evaluated-model presets (published architecture dimensions).
 *  @{ */
ModelConfig llama2_7b();
ModelConfig llama2_13b();
ModelConfig llama32_3b();
ModelConfig llama3_8b();
ModelConfig mistral_7b();
ModelConfig qwen2_7b();
ModelConfig opt_6_7b();
/** @} */

/**
 * Small executable config for accuracy experiments: 4 layers, d=128,
 * 8 heads (head dim 16, a power of two so QuaRot rotation applies),
 * vocabulary 256. See DESIGN.md section 1 for the substitution
 * rationale.
 */
ModelConfig tinyLm();
/** GQA variant of the tiny model (8 query heads, 4 kv heads). */
ModelConfig tinyLmGqa();

} // namespace model
} // namespace kelle

#endif // KELLE_MODEL_MODEL_CONFIG_HPP
