/**
 * @file
 * Accuracy evaluation harness for KV-cache management policies.
 *
 * The paper's Tables 2-6 measure the degradation a policy introduces
 * relative to a full-KV FP16 run of the same model. Without access to
 * trained checkpoints, this harness measures exactly that degradation
 * on the functional substrate:
 *
 *  - a reference token stream is generated from the model with a full
 *    cache (the model is its own language),
 *  - "perplexity" is exp(mean cross-entropy) teacher-forced on that
 *    stream (the full-cache run gives the floor; policies can only be
 *    at or above it),
 *  - "agreement" is the fraction of positions where the policy's
 *    greedy prediction matches the full-cache baseline's prediction,
 *    the analogue of the accuracy columns.
 */

#ifndef KELLE_MODEL_EVALUATE_HPP
#define KELLE_MODEL_EVALUATE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "kvcache/managed_kv_cache.hpp"
#include "model/transformer.hpp"

namespace kelle {
namespace model {

/** Per-position results of a teacher-forced pass. */
struct StreamEval
{
    std::vector<double> crossEntropy; ///< -log p(next token)
    std::vector<int> argmax;          ///< greedy prediction per position

    double meanCrossEntropy() const;
    double perplexity() const;
};

/**
 * Teacher-forced pass over `tokens`: prefill the first `prompt_len`
 * tokens, then decode the remainder, scoring each next-token
 * prediction. The cache must already be attached to the model.
 */
StreamEval runStream(TinyTransformer &model, kv::ManagedKvCache &cache,
                     std::span<const int> tokens, std::size_t prompt_len);

/** Fraction of positions where the two runs' greedy predictions agree. */
double agreement(const StreamEval &a, const StreamEval &b);

/** Workload synthesized from the model itself (see file comment). */
struct SyntheticStream
{
    std::vector<int> tokens;
    std::size_t promptLen = 0;
};

/**
 * Generate a reference stream: a random prompt of `prompt_len` tokens
 * followed by `gen_len` tokens sampled from the model running with a
 * full KV cache at the given temperature.
 */
SyntheticStream generateStream(TinyTransformer &model,
                               std::size_t prompt_len, std::size_t gen_len,
                               double temperature, std::uint64_t seed);

/** Convenience bundle: PPL + agreement of a policy vs the baseline. */
struct PolicyEval
{
    double perplexity = 0.0;
    double agreementTop1 = 0.0;
    double residentKvBytes = 0.0;
};

/**
 * Evaluate one cache configuration against a precomputed baseline
 * StreamEval on the same stream. A fresh pass is run with `cfg`;
 * `injector` may be null.
 */
PolicyEval evaluatePolicy(TinyTransformer &model,
                          const kv::KvCacheConfig &cfg,
                          kv::FaultInjector *injector,
                          const SyntheticStream &stream,
                          const StreamEval &baseline);

} // namespace model
} // namespace kelle

#endif // KELLE_MODEL_EVALUATE_HPP
