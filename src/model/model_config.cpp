#include "model/model_config.hpp"

#include <sstream>

namespace kelle {
namespace model {

double
ModelConfig::paramsPerLayer() const
{
    const double d = static_cast<double>(dModel);
    const double dkv = static_cast<double>(dKv());
    // Q and O are d x d; K and V are d x dKv.
    const double attn = 2.0 * d * d + 2.0 * d * dkv;
    double ffn_params = 0.0;
    if (ffn == FfnKind::GatedSilu) {
        ffn_params = 3.0 * d * static_cast<double>(dFfn);
    } else {
        ffn_params = 2.0 * d * static_cast<double>(dFfn);
    }
    const double norms = 2.0 * d;
    return attn + ffn_params + norms;
}

double
ModelConfig::totalParams() const
{
    const double embed =
        static_cast<double>(vocab) * static_cast<double>(dModel);
    return static_cast<double>(layers) * paramsPerLayer() + embed;
}

double
ModelConfig::weightBytes(int bits_w) const
{
    return totalParams() * bits_w / 8.0;
}

double
ModelConfig::weightBytesPerLayer(int bits_w) const
{
    return paramsPerLayer() * bits_w / 8.0;
}

double
ModelConfig::kvBytesPerTokenPerLayer(int bits_kv) const
{
    return 2.0 * static_cast<double>(dKv()) * bits_kv / 8.0;
}

double
ModelConfig::kvBytesPerToken(int bits_kv) const
{
    return static_cast<double>(layers) * kvBytesPerTokenPerLayer(bits_kv);
}

double
ModelConfig::macsPerDecodeToken(std::size_t context_len) const
{
    const double d = static_cast<double>(dModel);
    const double dkv = static_cast<double>(dKv());
    const double n = static_cast<double>(context_len);
    const double proj = 2.0 * d * d + 2.0 * d * dkv; // q,o + k,v
    // Scores q.K^T and probs.V: every query head attends over n entries
    // of headDim, so 2 * n * dModel in total (shared K/V in GQA changes
    // traffic, not MACs).
    const double attn = 2.0 * n * d;
    double ffn_macs = 0.0;
    if (ffn == FfnKind::GatedSilu) {
        ffn_macs = 3.0 * d * static_cast<double>(dFfn);
    } else {
        ffn_macs = 2.0 * d * static_cast<double>(dFfn);
    }
    const double head = static_cast<double>(vocab) * d;
    return (proj + attn + ffn_macs) * static_cast<double>(layers) + head;
}

double
ModelConfig::macsPerDecodeTokenPerLayer(std::size_t context_len) const
{
    return (macsPerDecodeToken(context_len) -
            static_cast<double>(vocab) * static_cast<double>(dModel)) /
           static_cast<double>(layers);
}

double
ModelConfig::macsPrefillAttention(std::size_t context_len) const
{
    const double n = static_cast<double>(context_len);
    return n * 2.0 * static_cast<double>(dModel) * (n + 1.0) / 2.0 *
           static_cast<double>(layers);
}

double
ModelConfig::macsPrefill(std::size_t context_len) const
{
    // Sum of per-position decode MACs with a growing context.
    const double n = static_cast<double>(context_len);
    const double d = static_cast<double>(dModel);
    const double dkv = static_cast<double>(dKv());
    const double proj = 2.0 * d * d + 2.0 * d * dkv;
    double ffn_macs = (ffn == FfnKind::GatedSilu ? 3.0 : 2.0) * d *
                      static_cast<double>(dFfn);
    const double attn = 2.0 * d * (n + 1.0) / 2.0; // average context n/2
    const double per_pos_per_layer = proj + ffn_macs + attn;
    return n * per_pos_per_layer * static_cast<double>(layers);
}

std::string
ModelConfig::validate() const
{
    std::ostringstream err;
    if (nHeads == 0 || dModel % nHeads != 0)
        err << "dModel must be divisible by nHeads";
    if (nKvHeads == 0 || nHeads % nKvHeads != 0)
        err << "; nHeads must be divisible by nKvHeads";
    if (layers == 0 || vocab == 0 || dFfn == 0)
        err << "; zero-sized dimension";
    return err.str();
}

namespace {

ModelConfig
make(std::string name, std::size_t layers, std::size_t d, std::size_t h,
     std::size_t hkv, std::size_t ffn, std::size_t vocab, FfnKind kind)
{
    ModelConfig cfg;
    cfg.name = std::move(name);
    cfg.layers = layers;
    cfg.dModel = d;
    cfg.nHeads = h;
    cfg.nKvHeads = hkv;
    cfg.dFfn = ffn;
    cfg.vocab = vocab;
    cfg.ffn = kind;
    return cfg;
}

} // namespace

ModelConfig
llama2_7b()
{
    return make("LLaMA2-7B", 32, 4096, 32, 32, 11008, 32000,
                FfnKind::GatedSilu);
}

ModelConfig
llama2_13b()
{
    return make("LLaMA2-13B", 40, 5120, 40, 40, 13824, 32000,
                FfnKind::GatedSilu);
}

ModelConfig
llama32_3b()
{
    return make("LLaMA3.2-3B", 28, 3072, 24, 8, 8192, 128256,
                FfnKind::GatedSilu);
}

ModelConfig
llama3_8b()
{
    return make("LLaMA3-8B", 32, 4096, 32, 8, 14336, 128256,
                FfnKind::GatedSilu);
}

ModelConfig
mistral_7b()
{
    return make("Mistral-7B", 32, 4096, 32, 8, 14336, 32000,
                FfnKind::GatedSilu);
}

ModelConfig
qwen2_7b()
{
    return make("QWEN2-7B", 28, 3584, 28, 4, 18944, 152064,
                FfnKind::GatedSilu);
}

ModelConfig
opt_6_7b()
{
    return make("OPT-6.7B", 32, 4096, 32, 32, 16384, 50272, FfnKind::Mlp);
}

ModelConfig
tinyLm()
{
    return make("TinyLM", 4, 128, 8, 8, 256, 256, FfnKind::GatedSilu);
}

ModelConfig
tinyLmGqa()
{
    return make("TinyLM-GQA", 4, 128, 8, 4, 256, 256, FfnKind::GatedSilu);
}

} // namespace model
} // namespace kelle
