#include "accel/systolic_array.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace kelle {
namespace accel {

Int32Matrix
referenceMatmul(const Int8Matrix &a, const Int8Matrix &b)
{
    KELLE_ASSERT(a.cols == b.rows, "reference matmul shape mismatch");
    Int32Matrix c(a.rows, b.cols);
    for (std::size_t i = 0; i < a.rows; ++i)
        for (std::size_t k = 0; k < a.cols; ++k) {
            const std::int32_t av = a.at(i, k);
            for (std::size_t j = 0; j < b.cols; ++j)
                c.at(i, j) += av * static_cast<std::int32_t>(b.at(k, j));
        }
    return c;
}

void
ArrayStats::merge(const ArrayStats &o)
{
    cycles += o.cycles;
    macs += o.macs;
    peCycles += o.peCycles;
    weightLoads += o.weightLoads;
}

SystolicArray::SystolicArray(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), weights_(rows * cols, 0)
{
    KELLE_ASSERT(rows > 0 && cols > 0, "degenerate systolic array");
}

void
SystolicArray::loadWeights(const Int8Matrix &w, bool transposed)
{
    const std::size_t k = transposed ? w.cols : w.rows;
    const std::size_t n = transposed ? w.rows : w.cols;
    KELLE_ASSERT(k <= rows_ && n <= cols_, "weight tile ", k, "x", n,
                 " exceeds array ", rows_, "x", cols_);
    std::fill(weights_.begin(), weights_.end(), 0);
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = 0; j < n; ++j)
            weights_[i * cols_ + j] =
                transposed ? w.at(j, i) : w.at(i, j);
    tileK_ = k;
    tileN_ = n;
    // One weight row shifts in per cycle.
    stats_.cycles += k;
    stats_.weightLoads += k;
    stats_.peCycles += k * rows_ * cols_;
}

Int32Matrix
SystolicArray::stream(const Int8Matrix &a, OutputTap *tap)
{
    KELLE_ASSERT(tileK_ > 0, "stream before loadWeights");
    KELLE_ASSERT(a.cols == tileK_, "activation tile K mismatch: ", a.cols,
                 " vs ", tileK_);
    const std::size_t m = a.rows;
    const std::size_t k = tileK_;
    const std::size_t n = tileN_;
    Int32Matrix out(m, n);
    if (m == 0)
        return out;

    // Register state: activation and partial-sum registers per PE.
    std::vector<std::int32_t> a_reg(k * n, 0), a_next(k * n, 0);
    std::vector<std::int32_t> p_reg(k * n, 0), p_next(k * n, 0);

    // Output (mm, nn) drains from the bottom of column nn at cycle
    // mm + nn + k - 1 (0-based), so the tile takes m + n + k - 1 cycles.
    const std::uint64_t total = m + n + k - 1;
    for (std::uint64_t cycle = 0; cycle < total; ++cycle) {
        for (std::size_t r = 0; r < k; ++r) {
            // Row r receives A[cycle - r][r] at its left edge.
            const std::int64_t mm =
                static_cast<std::int64_t>(cycle) -
                static_cast<std::int64_t>(r);
            const std::int32_t a_in =
                (mm >= 0 && mm < static_cast<std::int64_t>(m))
                    ? a.at(static_cast<std::size_t>(mm), r)
                    : 0;
            for (std::size_t c = 0; c < n; ++c) {
                const std::int32_t act =
                    (c == 0) ? a_in : a_reg[r * n + (c - 1)];
                const std::int32_t psum_above =
                    (r == 0) ? 0 : p_reg[(r - 1) * n + c];
                a_next[r * n + c] = act;
                p_next[r * n + c] =
                    psum_above +
                    act * static_cast<std::int32_t>(
                              weights_[r * cols_ + c]);
            }
        }
        a_reg.swap(a_next);
        p_reg.swap(p_next);

        // Collect drained outputs: column c's bottom PE (row k-1) holds
        // the finished sum for activation row mm = cycle - c - (k - 1).
        for (std::size_t c = 0; c < n; ++c) {
            const std::int64_t mm =
                static_cast<std::int64_t>(cycle) -
                static_cast<std::int64_t>(c) -
                static_cast<std::int64_t>(k - 1);
            if (mm >= 0 && mm < static_cast<std::int64_t>(m)) {
                const std::int32_t value = p_reg[(k - 1) * n + c];
                out.at(static_cast<std::size_t>(mm), c) = value;
                if (tap)
                    tap->onOutput(static_cast<std::size_t>(mm), c, value,
                                  stats_.cycles + cycle);
            }
        }
    }

    stats_.cycles += total;
    stats_.peCycles += total * rows_ * cols_;
    stats_.macs += static_cast<std::uint64_t>(m) * k * n;
    return out;
}

Int32Matrix
SystolicArray::matmul(const Int8Matrix &a, const Int8Matrix &b)
{
    KELLE_ASSERT(a.cols == b.rows, "matmul shape mismatch");
    Int32Matrix c(a.rows, b.cols);
    for (std::size_t k0 = 0; k0 < b.rows; k0 += rows_) {
        const std::size_t kt = std::min(rows_, b.rows - k0);
        for (std::size_t n0 = 0; n0 < b.cols; n0 += cols_) {
            const std::size_t nt = std::min(cols_, b.cols - n0);
            Int8Matrix w(kt, nt);
            for (std::size_t i = 0; i < kt; ++i)
                for (std::size_t j = 0; j < nt; ++j)
                    w.at(i, j) = b.at(k0 + i, n0 + j);
            loadWeights(w);

            Int8Matrix at(a.rows, kt);
            for (std::size_t i = 0; i < a.rows; ++i)
                for (std::size_t j = 0; j < kt; ++j)
                    at.at(i, j) = a.at(i, k0 + j);
            Int32Matrix partial = stream(at);
            for (std::size_t i = 0; i < a.rows; ++i)
                for (std::size_t j = 0; j < nt; ++j)
                    c.at(i, n0 + j) += partial.at(i, j);
        }
    }
    return c;
}

} // namespace accel
} // namespace kelle
