#include "accel/step_cost_cache.hpp"

#include <algorithm>

namespace kelle {
namespace accel {

StepCostCache::StepCostCache(const SystemConfig &sys,
                             const model::ModelConfig &m,
                             std::size_t max_entries)
    : sys_(sys), model_(m), maxEntries_(max_entries)
{
}

const StepReport &
StepCostCache::batchedDecodeStep(
    const std::vector<std::size_t> &resident_tokens)
{
    std::size_t n_sum = 0;
    for (std::size_t n : resident_tokens)
        n_sum += n;
    const std::pair<std::size_t, std::size_t> key{
        resident_tokens.size(), n_sum};
    const auto it = decode_.find(key);
    if (it != decode_.end()) {
        ++stats_.hits;
        return it->second;
    }
    if (decode_.size() >= maxEntries_) {
        ++stats_.bypasses;
        overflow_ =
            simulateBatchedDecodeStep(sys_, model_, resident_tokens);
        return overflow_;
    }
    ++stats_.misses;
    // Computed from the caller's member distribution; any batch with
    // the same (B, N) key produces these exact doubles (see the
    // header note on the exact affine summation).
    const StepReport rep =
        simulateBatchedDecodeStep(sys_, model_, resident_tokens);
    return decode_.emplace(key, rep).first->second;
}

const StepReport *
StepCostCache::findBatchedDecode(std::size_t batch, std::size_t n_sum)
{
    const auto it = decode_.find({batch, n_sum});
    if (it == decode_.end())
        return nullptr;
    ++stats_.hits;
    return &it->second;
}

const StepReport &
StepCostCache::prefillChunk(std::size_t kv_offset, std::size_t chunk_len)
{
    const std::pair<std::size_t, std::size_t> key{kv_offset, chunk_len};
    const auto it = chunk_.find(key);
    if (it != chunk_.end()) {
        ++stats_.hits;
        return it->second;
    }
    if (chunk_.size() >= maxEntries_) {
        ++stats_.bypasses;
        overflow_ =
            simulatePrefillChunk(sys_, model_, kv_offset, chunk_len);
        return overflow_;
    }
    ++stats_.misses;
    const StepReport rep =
        simulatePrefillChunk(sys_, model_, kv_offset, chunk_len);
    return chunk_.emplace(key, rep).first->second;
}

} // namespace accel
} // namespace kelle
