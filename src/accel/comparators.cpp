#include "accel/comparators.hpp"

namespace kelle {
namespace accel {
namespace comparators {

namespace {

/** Shared GPU-like platform: Orin-class memory system and SM array. */
TechnologyConfig
gpuTech()
{
    TechnologyConfig t;
    // Emulate ~21 INT8/FP8 TOPS of sustained tensor-core throughput
    // with a wide virtual array; GPUs pay more energy per MAC and per
    // on-chip byte than a dedicated systolic design.
    t.rsa.rows = 128;
    t.rsa.cols = 40;
    t.rsa.clockHz = 1.0e9;
    // Measured edge-GPU serving stacks sustain ~35% of tensor-core
    // peak on transformer kernels (decode GEMV is far worse; prefill
    // GEMM better — 0.35 is the blended figure).
    t.rsa.utilization = 0.35;
    t.rsa.macEnergy = Energy::picos(0.9);
    // L2-like on-chip storage, SRAM, 4 MB.
    t.kvMemory = mem::sram(Bytes::mib(4), Bandwidth::gibPerSec(512));
    t.kvIsEdram = false;
    t.actBuffer = mem::sram(Bytes::kib(512), Bandwidth::gibPerSec(512));
    t.actIsEdram = false;
    // Orin-class LPDDR5: ~102 GB/s.
    t.dram = mem::MemoryModel("lpddr5", Bytes::gib(16),
                              Bandwidth::gibPerSec(102),
                              Time::nanos(90),
                              EnergyPerByte::picojoules(130.0),
                              Power::watts(1.2), Area::mm2(20.0));
    t.weightBits = 8; // FP8 weights
    // Stock serving stacks on edge GPUs sustain ~40% of peak DRAM
    // bandwidth on decode traffic (nvidia-smi-measured 7B token rates
    // imply 35-50%), and the SoC burns several watts of uncore power.
    t.dramEfficiency = 0.40;
    t.socStaticPower = Power::watts(4.0);
    return t;
}

SystemConfig
gpuBase(const char *name)
{
    SystemConfig s;
    s.name = name;
    s.tech = gpuTech();
    s.scheduler = SchedulerKind::Kelle; // GPUs overlap copy/compute
    s.kv.evict = false;
    s.kv.recompute = RecomputeMode::None;
    s.kv.systolicEvictor = false;
    s.refresh.mode = RefreshSpec::Mode::None;
    return s;
}

} // namespace

SystemConfig
jetsonOrin()
{
    return gpuBase("Jetson");
}

SystemConfig
llmNpu()
{
    SystemConfig s = gpuBase("LLM.npu");
    // Fast On-device LLM Inference with NPUs: prompt processing is
    // offloaded to the NPU (multi-x prefill gains) and the NPU's DMA
    // engines stream weights more efficiently than the GPU stack.
    s.prefillComputeSpeedup = 3.0;
    s.tech.dramEfficiency = 0.60;
    return s;
}

SystemConfig
dynaX()
{
    SystemConfig s = gpuBase("DynaX");
    // X:M structured pruning reaches ~90% attention sparsity during
    // pre-filling (ASPLOS'25), with a dedicated sparse-attention unit.
    s.prefillAttnSparsity = 0.9;
    s.prefillComputeSpeedup = 1.5;
    s.tech.dramEfficiency = 0.65;
    return s;
}

SystemConfig
comet()
{
    SystemConfig s = gpuBase("COMET");
    // W4A4KV4-class kernels configured as in the paper's comparison:
    // 8-bit weights, 4-bit KV for an iso KV-cache budget vs Kelle.
    // COMET's mixed-precision kernels raise compute-side efficiency;
    // decode DRAM efficiency stays GPU-class, so its gain over Jetson
    // tracks the 4x KV compression (the paper's 2.1-4.5x pattern).
    s.kv.kvBits = 4;
    s.tech.rsa.utilization = 0.5;
    // COMET reports ~1.8-2.8x over FP16 GPU baselines; its packed
    // 4-bit accesses keep decode DRAM efficiency GPU-class.
    s.tech.dramEfficiency = 0.37;
    return s;
}

} // namespace comparators
} // namespace accel
} // namespace kelle
