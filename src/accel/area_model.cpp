#include "accel/area_model.hpp"

#include <sstream>

namespace kelle {
namespace accel {

AreaReport
areaReport(const TechnologyConfig &tech)
{
    AreaReport rep;
    rep.onChip = {
        {"rsa", tech.rsa.area, 0.0},
        {"kv_mem", tech.kvMemory.area() + tech.actBuffer.area(), 0.0},
        {"weight_sram", tech.weightSram.area(), 0.0},
        {"sfu", tech.sfu.area, 0.0},
    };
    rep.onChipTotal = Area::mm2(0);
    for (const auto &e : rep.onChip)
        rep.onChipTotal += e.area;
    for (auto &e : rep.onChip)
        e.share = e.area / rep.onChipTotal;
    rep.dram = tech.dram.area();
    return rep;
}

std::string
AreaReport::toString() const
{
    std::ostringstream os;
    os << "on-chip total: " << onChipTotal.inMm2() << " mm^2\n";
    for (const auto &e : onChip) {
        os << "  " << e.name << ": " << e.area.inMm2() << " mm^2 ("
           << e.share * 100.0 << "%)\n";
    }
    os << "dram: " << dram.inMm2() << " mm^2\n";
    return os.str();
}

} // namespace accel
} // namespace kelle
