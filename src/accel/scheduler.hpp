/**
 * @file
 * The Kelle scheduler (Section 6): computation-pattern composition and
 * the eDRAM data-lifetime model of Equations 7-8.
 *
 * The baseline pattern (Figure 12a) serializes weight loads, KV loads
 * and matrix multiplies, so transient activations (X, Q, K, V) sit in
 * eDRAM for 6*T_SRAM + 4*T_eDRAM per self-attention block. Kelle
 * (Figure 12b) issues the SRAM weight stream and the eDRAM KV stream
 * in parallel and consumes K/V immediately, cutting the lifetime to
 * 4*T_SRAM + 1*T_eDRAM and the step latency to the max of the
 * overlapped streams.
 */

#ifndef KELLE_ACCEL_SCHEDULER_HPP
#define KELLE_ACCEL_SCHEDULER_HPP

#include <string>

#include "common/units.hpp"

namespace kelle {
namespace accel {

enum class SchedulerKind
{
    Baseline, ///< serial loads and computes (Figure 12a)
    Kelle,    ///< overlapped SRAM/eDRAM/DRAM streams (Figure 12b)
};

std::string toString(SchedulerKind k);

/** Per-step stream/compute phase durations. */
struct PhaseTimes
{
    Time dram;    ///< off-chip traffic (weights + offloaded KV + spill)
    Time sramW;   ///< weight SRAM -> RSA stream
    Time kvMem;   ///< on-chip KV memory stream
    Time compute; ///< RSA busy time
    Time sfu;     ///< softmax/normalization/activation time
};

/** Compose a decode-step latency under the given schedule. */
Time composeStepLatency(SchedulerKind kind, const PhaseTimes &phases);

/**
 * Total transient-data lifetime of the SA block per step (Eq. 7-8):
 * baseline L = 6 T_SRAM + 4 T_eDRAM; Kelle L = 4 T_SRAM + 1 T_eDRAM.
 */
Time transientLifetime(SchedulerKind kind, Time t_sram, Time t_edram);

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_SCHEDULER_HPP
