#include "accel/energy_model.hpp"

namespace kelle {
namespace accel {

Energy
EnergyBreakdown::total() const
{
    return rsa + sfu + weightSram + kvMem + refresh + dram + leakage;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    rsa += o.rsa;
    sfu += o.sfu;
    weightSram += o.weightSram;
    kvMem += o.kvMem;
    refresh += o.refresh;
    dram += o.dram;
    leakage += o.leakage;
    return *this;
}

Energy
EnergyBreakdown::onChipTotal() const
{
    return rsa + sfu + weightSram + kvMem + refresh;
}

std::vector<std::pair<std::string, double>>
EnergyBreakdown::shares() const
{
    const double t = total().j();
    auto frac = [t](Energy e) { return t > 0 ? e.j() / t : 0.0; };
    return {
        {"rsa", frac(rsa)},        {"sfu", frac(sfu)},
        {"weight_sram", frac(weightSram)},
        {"kv_mem", frac(kvMem)},   {"refresh", frac(refresh)},
        {"dram", frac(dram)},      {"leakage", frac(leakage)},
    };
}

} // namespace accel
} // namespace kelle
