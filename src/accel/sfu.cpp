#include "accel/sfu.hpp"

#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace accel {

namespace {

double
refExp2(double x)
{
    return std::exp2(x);
}

double
refGelu(double x)
{
    const double c = 0.7978845608028654; // sqrt(2/pi)
    return 0.5 * x * (1.0 + std::tanh(c * (x + 0.044715 * x * x * x)));
}

double
refSilu(double x)
{
    return x / (1.0 + std::exp(-x));
}

} // namespace

LutFunction::LutFunction(Fn fn, double lo, double hi)
    : lo_(lo), hi_(hi), fn_(fn)
{
    KELLE_ASSERT(hi > lo, "degenerate LUT domain");
    for (std::size_t i = 0; i <= kEntries; ++i) {
        const double x =
            lo + (hi - lo) * static_cast<double>(i) / kEntries;
        table_[i] = static_cast<float>(fn(x));
    }
}

float
LutFunction::operator()(float x) const
{
    double t = (static_cast<double>(x) - lo_) / (hi_ - lo_) * kEntries;
    if (t <= 0.0)
        return table_[0];
    if (t >= static_cast<double>(kEntries))
        return table_[kEntries];
    const auto idx = static_cast<std::size_t>(t);
    const float frac = static_cast<float>(t - static_cast<double>(idx));
    return table_[idx] + (table_[idx + 1] - table_[idx]) * frac;
}

double
LutFunction::maxAbsError(std::size_t samples) const
{
    double max_err = 0.0;
    for (std::size_t i = 0; i < samples; ++i) {
        const double x =
            lo_ + (hi_ - lo_) * static_cast<double>(i) /
                      static_cast<double>(samples - 1);
        const double err = std::fabs((*this)(static_cast<float>(x)) -
                                     fn_(x));
        max_err = std::max(max_err, err);
    }
    return max_err;
}

Sfu::Sfu()
    : exp2Frac_(refExp2, 0.0, 1.0), geluLut_(refGelu, -8.0, 8.0),
      siluLut_(refSilu, -8.0, 8.0)
{}

float
Sfu::exp2Lut(float x) const
{
    // Split into integer exponent and fractional LUT part:
    // 2^x = 2^floor(x) * 2^frac(x); the integer part is an exponent
    // add in hardware.
    const float fl = std::floor(x);
    const float frac = x - fl;
    if (fl < -126.0f)
        return 0.0f;
    if (fl > 126.0f)
        return std::numeric_limits<float>::max();
    return std::ldexp(exp2Frac_(frac), static_cast<int>(fl));
}

std::size_t
Sfu::softermax(std::span<float> x) const
{
    if (x.empty())
        return 0;
    constexpr float kLog2e = 1.4426950408889634f;

    // Online pass: running max m and running denominator d, rescaling
    // d by 2^(m_old - m_new) whenever the max advances (Softermax).
    float m = -std::numeric_limits<float>::infinity();
    float d = 0.0f;
    for (float v : x) {
        const float s = v * kLog2e;
        if (s > m) {
            d = (d == 0.0f) ? 0.0f : d * exp2Lut(m - s);
            m = s;
            d += 1.0f; // 2^(s - m) = 1
        } else {
            d += exp2Lut(s - m);
        }
    }

    // Second pass: normalize through the same LUT path.
    const float inv = 1.0f / d;
    for (auto &v : x)
        v = exp2Lut(v * kLog2e - m) * inv;
    return 2 * x.size();
}

std::size_t
Sfu::gelu(std::span<float> x) const
{
    for (auto &v : x) {
        if (v <= -8.0f) {
            v = 0.0f;
        } else if (v >= 8.0f) {
            // gelu(x) ~ x outside the LUT domain
        } else {
            v = geluLut_(v);
        }
    }
    return x.size();
}

std::size_t
Sfu::silu(std::span<float> x) const
{
    for (auto &v : x) {
        if (v <= -8.0f) {
            v = 0.0f;
        } else if (v >= 8.0f) {
            // silu(x) ~ x outside the LUT domain
        } else {
            v = siluLut_(v);
        }
    }
    return x.size();
}

} // namespace accel
} // namespace kelle
