/**
 * @file
 * Silicon area accounting (Section 8: 9.5 mm^2 on-chip; RSA 23%,
 * eDRAM 33%, SRAM 37%, SFU 7%; DRAM 16 mm^2).
 */

#ifndef KELLE_ACCEL_AREA_MODEL_HPP
#define KELLE_ACCEL_AREA_MODEL_HPP

#include <string>
#include <vector>

#include "accel/technology.hpp"

namespace kelle {
namespace accel {

/** One component's area entry. */
struct AreaEntry
{
    std::string name;
    Area area;
    double share = 0.0; ///< of on-chip area
};

/** Area breakdown of a platform. */
struct AreaReport
{
    std::vector<AreaEntry> onChip;
    Area onChipTotal;
    Area dram;

    std::string toString() const;
};

/** Compute the breakdown from the technology config. */
AreaReport areaReport(const TechnologyConfig &tech);

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_AREA_MODEL_HPP
