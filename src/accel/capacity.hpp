/**
 * @file
 * Long-context capacity analysis (Section 8.4.1).
 *
 * With 8-bit weights resident in DRAM, the remaining DRAM capacity
 * bounds the KV cache and therefore the maximum supported input
 * length. The paper's walk-through for LLaMA2-7B on a 16 GB device:
 * ~19K tokens with a full fp16 cache, ~60K once AERP frees memory
 * after each layer's execution, ~240K with 4-bit KV on top.
 */

#ifndef KELLE_ACCEL_CAPACITY_HPP
#define KELLE_ACCEL_CAPACITY_HPP

#include "common/units.hpp"
#include "model/model_config.hpp"

namespace kelle {
namespace accel {

/** Inputs of the capacity analysis. */
struct CapacitySpec
{
    Bytes dramCapacity = Bytes::gib(16);
    int weightBits = 8;
    int kvBits = 16;
    /**
     * AERP layer-wise release: eviction runs immediately after each
     * layer's execution, so at the peak only a few pipeline-in-flight
     * layers hold the full input-length cache while the rest hold the
     * evicted budget (Section 8.4.1 "freeing memory to accommodate
     * the full input sequence in later layers").
     */
    bool aerpLayerwise = false;
    /** Post-eviction budget N' per layer when AERP is active. */
    std::size_t budget = 2048;
    /**
     * Layers concurrently holding a full-length cache at the peak
     * (prefill chunking keeps eviction a few layers behind
     * execution). 0 = auto (layers / 3, which reproduces the paper's
     * 19K -> ~60K walk-through ratio for LLaMA2-7B).
     */
    std::size_t concurrentFullLayers = 0;
};

/** Result of the analysis. */
struct CapacityReport
{
    double weightBytes = 0.0;
    double freeBytes = 0.0;
    double bytesPerTokenPeak = 0.0; ///< peak KV bytes per input token
    std::size_t maxTokens = 0;
};

/** Maximum supported input length for a model on a device. */
CapacityReport maxSupportedTokens(const model::ModelConfig &m,
                                  const CapacitySpec &spec);

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_CAPACITY_HPP
