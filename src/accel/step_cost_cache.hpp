/**
 * @file
 * Memoized engine-step costing for the serving/cluster hot loop.
 *
 * `simulateBatchedDecodeStep` and `simulatePrefillChunk` are pure
 * functions of (SystemConfig, ModelConfig, step shape): a decode
 * step's cost depends only on the resident-length multiset of the
 * batch, a prefill chunk's only on its (KV offset, chunk length)
 * pair. The serving engine re-derives these costs from scratch at
 * every step boundary even though step shapes repeat for long
 * stretches. `StepCostCache` binds one (system, model) pair at
 * construction and memoizes the resulting `StepReport`s, so a
 * repeated shape costs one hash lookup instead of a full
 * analytic-model evaluation.
 *
 * Decode key: the resident multiset collapses further. Every
 * per-member accumuland in `batchedDecodeCosts` — MACs, working-set
 * bytes, SFU ops, resident tokens — is an integer-valued double far
 * below 2^53 for any realistic model, so the member-order summation
 * is *exact*, and each sum is an affine function of (batch size B,
 * total resident tokens N) with exact integer coefficients:
 *
 *     sum_i macsPerDecodeToken(n_i) = B*(proj+ffn+head) + 2*d*L*N
 *     sum_i ws(n_i)                 = 2*nHeads*N + 6*d*B
 *     sum_i sfu(n_i)                = L*(2*nHeads*N + (4d+dFfn)*B)
 *
 * Everything downstream of the summation loop reads only those sums,
 * so two batches with equal (B, N) produce bitwise-identical
 * `StepReport`s however their members are distributed — the cache
 * keys on that pair. This is what makes hit rates high in serving:
 * growing batch members permute and trade tokens, but (B, N) walks a
 * small lattice. The `StepCostCache.*` property tests enforce the
 * invariant (cached vs uncached, shuffled members, redistributed
 * multisets with equal sums), and the golden-digest tier-1 test
 * pins the end-to-end outputs.
 *
 * The cache never evicts: shapes seen past `maxEntries` are computed
 * uncached (counted as `bypasses`) so memory stays bounded without
 * perturbing results.
 */

#ifndef KELLE_ACCEL_STEP_COST_CACHE_HPP
#define KELLE_ACCEL_STEP_COST_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "accel/timing_model.hpp"

namespace kelle {
namespace accel {

class StepCostCache
{
  public:
    /** Hit/miss accounting, reported by bench_simspeed. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t bypasses = 0; ///< computed uncached: cache full
        std::uint64_t
        lookups() const
        {
            return hits + misses + bypasses;
        }
        double
        hitRate() const
        {
            const std::uint64_t n = lookups();
            return n ? static_cast<double>(hits) /
                           static_cast<double>(n)
                     : 0.0;
        }
        Stats &
        operator+=(const Stats &o)
        {
            hits += o.hits;
            misses += o.misses;
            bypasses += o.bypasses;
            return *this;
        }
    };

    /**
     * Bind the cache to one simulated system and model. Both must
     * outlive the cache and must not be mutated while it is in use
     * (the key space assumes a fixed configuration; a DeviceEngine
     * owns one cache per device for exactly this reason).
     */
    StepCostCache(const SystemConfig &sys, const model::ModelConfig &m,
                  std::size_t max_entries = kDefaultMaxEntries);

    /**
     * Memoized simulateBatchedDecodeStep. The reference stays valid
     * until the next bypassing (cache-full) call; callers that hold
     * it across steps should copy.
     */
    const StepReport &
    batchedDecodeStep(const std::vector<std::size_t> &resident_tokens);

    /** Memoized simulatePrefillChunk. */
    const StepReport &prefillChunk(std::size_t kv_offset,
                                   std::size_t chunk_len);

    /**
     * Probe the decode cache by its (batch size, total resident
     * tokens) key directly — the serving fast-forward tracks the key
     * incrementally and skips building the member vector on a hit
     * (counted); on a miss this returns null and counts nothing, so
     * the caller builds the vector and calls batchedDecodeStep, which
     * accounts the miss.
     */
    const StepReport *findBatchedDecode(std::size_t batch,
                                        std::size_t n_sum);

    const Stats &stats() const { return stats_; }
    std::size_t
    entries() const
    {
        return decode_.size() + chunk_.size();
    }

    /** Shapes memoized before new ones bypass the cache (~150 B per
     *  entry; the decode lattice (B <= maxBatch, N <= B*budget) stays
     *  far below this for any realistic serving run). */
    static constexpr std::size_t kDefaultMaxEntries = 1u << 18;

  private:
    struct PairHash
    {
        std::size_t
        operator()(const std::pair<std::size_t, std::size_t> &p) const
        {
            std::uint64_t h = static_cast<std::uint64_t>(p.first) *
                              0x9e3779b97f4a7c15ull;
            h ^= static_cast<std::uint64_t>(p.second) +
                 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    const SystemConfig &sys_;
    const model::ModelConfig &model_;
    std::size_t maxEntries_;
    Stats stats_;
    /** (batch size, total resident tokens) -> step report. */
    std::unordered_map<std::pair<std::size_t, std::size_t>, StepReport,
                       PairHash>
        decode_;
    /** (KV offset, chunk length) -> step report. */
    std::unordered_map<std::pair<std::size_t, std::size_t>, StepReport,
                       PairHash>
        chunk_;
    /** Result slot for bypassing calls (cache at capacity). */
    StepReport overflow_;
};

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_STEP_COST_CACHE_HPP
