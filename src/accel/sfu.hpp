/**
 * @file
 * Special function unit (Section 5): Softermax online softmax and
 * LUT-based nonlinear operators.
 *
 * Softermax (Stevens et al.) replaces e^x with 2^x (cheap shifts) and
 * computes the running maximum and denominator in one online pass so
 * the logits are only read twice and never re-normalized in memory.
 * Inputs are pre-scaled by log2(e), so results match softmax up to
 * LUT error. Other nonlinears (GELU, SiLU, exp2) are evaluated from
 * 256-entry piecewise-linear lookup tables as the paper describes.
 */

#ifndef KELLE_ACCEL_SFU_HPP
#define KELLE_ACCEL_SFU_HPP

#include <array>
#include <cstdint>
#include <span>

#include "common/units.hpp"

namespace kelle {
namespace accel {

/** 256-entry piecewise-linear table over [lo, hi]. */
class LutFunction
{
  public:
    using Fn = double (*)(double);

    LutFunction(Fn fn, double lo, double hi);

    /** Evaluate with linear interpolation (clamped to the domain). */
    float operator()(float x) const;

    /** Max absolute error against the reference over a dense sweep. */
    double maxAbsError(std::size_t samples = 4096) const;

  private:
    static constexpr std::size_t kEntries = 256;
    std::array<float, kEntries + 1> table_;
    double lo_;
    double hi_;
    Fn fn_;
};

/** The SFU's operator set. */
class Sfu
{
  public:
    Sfu();

    /**
     * Softermax: numerically-stable online softmax with base-2
     * arithmetic and a single online max/denominator pass. Overwrites
     * x with the probabilities. Returns the number of scalar LUT ops.
     */
    std::size_t softermax(std::span<float> x) const;

    /** LUT GELU (tanh form) applied elementwise. */
    std::size_t gelu(std::span<float> x) const;
    /** LUT SiLU applied elementwise. */
    std::size_t silu(std::span<float> x) const;

    /** 2^x via exponent split + fraction LUT (exposed for tests). */
    float exp2Lut(float x) const;

    const LutFunction &exp2Table() const { return exp2Frac_; }
    const LutFunction &geluTable() const { return geluLut_; }
    const LutFunction &siluTable() const { return siluLut_; }

  private:
    LutFunction exp2Frac_; ///< 2^f on f in [0,1)
    LutFunction geluLut_;
    LutFunction siluLut_;
};

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_SFU_HPP
