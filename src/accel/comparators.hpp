/**
 * @file
 * Analytic stand-ins for the Figure 14 comparison points. Each
 * comparator applies its system's headline optimization inside the
 * same analytic engine (see DESIGN.md, substitution table):
 *
 *  - Jetson Orin: FP8 edge-GPU roofline (higher DRAM bandwidth and
 *    peak compute, lower efficiency per op, no KV management).
 *  - LLM.npu: NPU prompt offloading accelerates the pre-filling
 *    stage; decoding is unchanged.
 *  - DynaX: dynamic X:M fine-grained structured pruning reaches 90%
 *    attention sparsity in pre-filling.
 *  - COMET: W4A4KV4-class mixed-precision kernels, configured (like
 *    the paper) as W8 + 4-bit KV for an iso-budget comparison.
 */

#ifndef KELLE_ACCEL_COMPARATORS_HPP
#define KELLE_ACCEL_COMPARATORS_HPP

#include "accel/timing_model.hpp"

namespace kelle {
namespace accel {
namespace comparators {

/** NVIDIA Jetson Orin-class edge GPU running FP8. */
SystemConfig jetsonOrin();

/** LLM.npu: prompt-stage NPU offloading. */
SystemConfig llmNpu();

/** DynaX: 90% sparse attention in the pre-filling stage. */
SystemConfig dynaX();

/** COMET: mixed-precision kernels with 4-bit KV. */
SystemConfig comet();

} // namespace comparators
} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_COMPARATORS_HPP
