/**
 * @file
 * End-to-end analytic performance/energy model of an edge LLM serving
 * system (the engine behind Sections 3 and 8).
 *
 * The model composes, per decode step and per prefill:
 *   - DRAM traffic: streamed weights, offloaded KV, working-set spill;
 *   - on-chip traffic: weight SRAM stream, KV memory stream;
 *   - RSA compute from the model's MAC counts (+ AERP recomputation);
 *   - SFU time for softmax/normalization/activations;
 *   - the schedule of Section 6 (serial baseline vs overlapped Kelle);
 *   - eDRAM refresh energy: resident KV per 2DRP group plus transient
 *     activations weighted by the Eq. 7-8 lifetimes;
 *   - leakage and DRAM background power.
 *
 * Working-set model: each step's attention intermediates
 * (score rows, staged Q/K/V) must fit in the on-chip KV memory next
 * to resident KV; the overflow spills to DRAM. This reproduces the
 * paper's Figure 3a observation that a larger on-chip memory pays off
 * increasingly at longer sequence lengths.
 */

#ifndef KELLE_ACCEL_TIMING_MODEL_HPP
#define KELLE_ACCEL_TIMING_MODEL_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "accel/energy_model.hpp"
#include "accel/scheduler.hpp"
#include "accel/technology.hpp"
#include "edram/refresh_policy.hpp"
#include "model/model_config.hpp"

namespace kelle {
namespace accel {

/** How AERP recomputation is deployed (Section 8.3.2 roofline). */
enum class RecomputeMode
{
    None, ///< no recomputation (AEP)
    Auto, ///< fill RSA slack during memory stalls (deployed Kelle)
    Over, ///< recompute every popular token (the Over-Recomp regime)
};

/** KV-cache management configuration of the simulated system. */
struct KvPolicySpec
{
    bool evict = true;          ///< attention-based eviction on
    std::size_t budget = 2048;  ///< token budget N' per head
    RecomputeMode recompute = RecomputeMode::Auto;
    /**
     * Fraction of resident tokens eligible for x-storage (popular in
     * >= theta of heads). 0.35 is what the functional substrate
     * measures with theta = 50% (see EXPERIMENTS.md).
     */
    double popularFraction = 0.35;
    int kvBits = 16;            ///< stored KV precision
    bool systolicEvictor = true; ///< hardware evictor present
};

/** eDRAM refresh configuration. */
struct RefreshSpec
{
    enum class Mode
    {
        None,      ///< SRAM system: no refresh
        Retention, ///< refresh at the 45 us retention floor ("Org")
        Uniform,   ///< one uniform interval
        TwoD,      ///< 2DRP group intervals
    };
    Mode mode = Mode::TwoD;
    edram::RefreshIntervals intervals =
        edram::RefreshIntervals::paper2drp();
    /** Fraction of resident tokens in the HST group. */
    double hstFraction = 0.5;
};

/** A complete simulated system. */
struct SystemConfig
{
    std::string name = "Kelle+eDRAM";
    TechnologyConfig tech = kelleTech();
    SchedulerKind scheduler = SchedulerKind::Kelle;
    KvPolicySpec kv;
    RefreshSpec refresh;

    /** Prefill-side accelerations of the Figure 14 comparators. */
    double prefillComputeSpeedup = 1.0; ///< LLM.npu NPU offload
    double prefillAttnSparsity = 0.0;   ///< DynaX sparse attention
};

/** Factory functions for the five Figure 13 systems. */
SystemConfig originalSramSystem();
SystemConfig originalEdramSystem();
SystemConfig aepSramSystem(std::size_t budget);
SystemConfig aerpSramSystem(std::size_t budget);
SystemConfig kelleEdramSystem(std::size_t budget);

/** A serving workload (Section 8 task settings). */
struct Workload
{
    std::string name = "PG19";
    model::ModelConfig model = model::llama2_7b();
    std::size_t ctxLen = 512;
    std::size_t decLen = 8192;
    std::size_t batch = 16;
};

/** Simulation output. */
struct RunReport
{
    Time prefillLatency;
    Time decodeLatency;
    EnergyBreakdown prefillEnergy;
    EnergyBreakdown decodeEnergy;

    double dramBytesTotal = 0.0;
    double macsTotal = 0.0;
    double recomputedTokensPerStep = 0.0;
    double kvResidentBytesEnd = 0.0;
    double kvOnChipFraction = 0.0;

    Time totalLatency() const { return prefillLatency + decodeLatency; }
    Energy totalEnergy() const;
    /** Generated tokens per second across the batch. */
    double tokensPerSecond(const Workload &w) const;
    /** Arithmetic intensity: 2*MACs / DRAM bytes. */
    double opIntensity() const;
    /** Achieved compute rate in ops/s (2 ops per MAC). */
    double achievedOpsPerSec() const;
};

/** Run the analytic simulation. */
RunReport simulate(const SystemConfig &sys, const Workload &w);

/**
 * @name Serving-layer entry points (src/serving)
 *
 * The multi-request serving engine schedules work one accelerator
 * *engine step* at a time: either one request's prefill, or one decode
 * step over a heterogeneous continuous batch. Unlike `simulate`, which
 * integrates a uniform batch over a whole decode, these return the
 * cost of a single step so an event-driven scheduler can interleave
 * requests at iteration granularity.
 * @{
 */

/** Latency/energy of one engine step. */
struct StepReport
{
    Time latency;
    EnergyBreakdown energy;
    double dramBytes = 0.0;
    double macs = 0.0;
};

/** One request's prefill executed in isolation (batch of one). */
StepReport simulatePrefillStep(const SystemConfig &sys,
                               const model::ModelConfig &m,
                               std::size_t ctx_len);

/**
 * One fixed-size chunk of a request's prefill (Sarathi-style chunked
 * prefill): the `chunk_len` prompt tokens starting at KV offset
 * `kv_offset` run as their own engine step, attending causally over
 * all `kv_offset + chunk_len` tokens resident so far. Compute and KV
 * traffic telescope exactly — summed over a prompt's chunks the MACs,
 * SFU ops and KV writes equal the single-shot prefill — but the full
 * weight stream is charged once *per chunk*, which is the price of
 * interleaving chunks with decode iterations. A single chunk covering
 * the whole prompt (`kv_offset == 0`, `chunk_len == ctx_len`) is
 * bit-identical to simulatePrefillStep.
 */
StepReport simulatePrefillChunk(const SystemConfig &sys,
                                const model::ModelConfig &m,
                                std::size_t kv_offset,
                                std::size_t chunk_len);

/**
 * One decode step over a continuous batch. `resident_tokens` holds the
 * per-sequence KV-resident token count at attention time; the weight
 * stream is fetched once and amortized across every member sequence,
 * which is where batched decode wins over request-at-a-time serving.
 */
StepReport simulateBatchedDecodeStep(
    const SystemConfig &sys, const model::ModelConfig &m,
    const std::vector<std::size_t> &resident_tokens);

/** @} */

/**
 * @name Loop-form references (test oracles)
 *
 * The shipping paths telescope analytically summable loops: the
 * decode loop of `simulate` re-evaluates the per-step analytic model
 * only when the resident-token clamp changes, and
 * `simulateBatchedDecodeStep` collapses runs of equal resident counts
 * into `count * term` closed forms. Both are bit-identical to the
 * original step-at-a-time / member-at-a-time loops, which these
 * references preserve so the equality is *tested*, not assumed (see
 * the TimingTelescoping suite).
 * @{
 */
namespace detail {

/** `simulate` with the original per-step decode loop. */
RunReport simulateLoopReference(const SystemConfig &sys,
                                const Workload &w);

/** `simulateBatchedDecodeStep` with the original per-member loop. */
StepReport batchedDecodeStepLoopReference(
    const SystemConfig &sys, const model::ModelConfig &m,
    const std::vector<std::size_t> &resident_tokens);

} // namespace detail
/** @} */

/** Speedup and energy-efficiency of `sys` relative to `base`. */
struct Comparison
{
    double speedup = 1.0;
    double energyEfficiency = 1.0;
};
Comparison compare(const RunReport &base, const RunReport &sys);

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_TIMING_MODEL_HPP
