/**
 * @file
 * The systolic evictor (SE) of Section 5.3.
 *
 * The SE is a column of importance-score registers S plus a register
 * chain M that propagates the running minimum. It is pinned to the RSA
 * while the attention-score row q_N . K^T drains: the cycle after the
 * RSA's row i emits the score of cached token i, SE row i adds it to
 * S[i] (step 1/3 in Figure 11d) and the min chain advances (step
 * 2/4). The victim index is therefore known one cycle after the last
 * score drains — the min-search costs no extra LLM latency.
 *
 * The importance accumulated here is the raw pre-softmax QK sum
 * ("summing the QK^T results in Equation 1 without passing through the
 *  softmax"), which the functional AERP policy mirrors when configured
 * with useRawLogits.
 */

#ifndef KELLE_ACCEL_SYSTOLIC_EVICTOR_HPP
#define KELLE_ACCEL_SYSTOLIC_EVICTOR_HPP

#include <cstdint>
#include <vector>

#include "accel/systolic_array.hpp"

namespace kelle {
namespace accel {

/** Cycle-level systolic min-search coupled to score accumulation. */
class SystolicEvictor : public OutputTap
{
  public:
    explicit SystolicEvictor(std::size_t slots);

    /** Preload the importance scores (from the register file). */
    void loadScores(const std::vector<float> &scores);

    /** Mark a slot ineligible (sink / recent-window protection). */
    void setProtected(std::size_t slot, bool is_protected);

    /** Begin a pass: resets the pipeline, keeps scores/protection. */
    void beginPass();

    /**
     * OutputTap hook: receives attention scores from the RSA drain
     * (column n is ignored; scores arrive on the score column).
     */
    void onOutput(std::size_t m, std::size_t n, std::int32_t value,
                  std::uint64_t cycle) override;

    /** Advance the min-propagation chain by one cycle. */
    void tick();

    /**
     * Drain the pipeline and return the victim slot (minimum updated
     * score among eligible slots). Also reports the extra cycles the
     * chain needed beyond the RSA's own drain (1 per design).
     */
    std::size_t finalize();

    const std::vector<float> &scores() const { return scores_; }
    std::uint64_t extraCycles() const { return extraCycles_; }

  private:
    struct MinReg
    {
        float value = 0.0f;
        std::size_t index = 0;
        bool valid = false;
    };

    std::size_t slots_;
    std::vector<float> scores_;
    std::vector<char> protected_;
    std::vector<char> updated_;
    MinReg chain_;
    std::size_t nextRow_ = 0;
    std::uint64_t extraCycles_ = 0;
};

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_SYSTOLIC_EVICTOR_HPP
