#include "accel/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace accel {

CapacityReport
maxSupportedTokens(const model::ModelConfig &m, const CapacitySpec &spec)
{
    CapacityReport rep;
    rep.weightBytes = m.weightBytes(spec.weightBits);
    rep.freeBytes = spec.dramCapacity.b() - rep.weightBytes;
    KELLE_ASSERT(rep.freeBytes > 0, "weights alone exceed DRAM: ",
                 rep.weightBytes, " > ", spec.dramCapacity.b());

    const double per_layer = m.kvBytesPerTokenPerLayer(spec.kvBits);
    const double layers = static_cast<double>(m.layers);

    if (!spec.aerpLayerwise) {
        // Every layer holds the full-length cache simultaneously.
        rep.bytesPerTokenPeak = per_layer * layers;
        rep.maxTokens = static_cast<std::size_t>(rep.freeBytes /
                                                 rep.bytesPerTokenPeak);
        return rep;
    }

    // AERP layer-wise release: at the peak, `k` in-flight layers hold
    // the full N-token cache while every other layer already evicted
    // down to the budget:
    //   k * N * per_layer + (L-k) * N' * per_layer <= free
    double k = spec.concurrentFullLayers > 0
                   ? static_cast<double>(spec.concurrentFullLayers)
                   : std::max(1.0, layers / 3.0);
    k = std::min(k, layers);
    const double budget_bytes = static_cast<double>(spec.budget) *
                                per_layer * (layers - k);
    const double avail = rep.freeBytes - budget_bytes;
    KELLE_ASSERT(avail > 0, "budget caches alone exceed free DRAM");
    rep.bytesPerTokenPeak = per_layer * k;
    rep.maxTokens =
        static_cast<std::size_t>(avail / rep.bytesPerTokenPeak);
    return rep;
}

} // namespace accel
} // namespace kelle
