#include "accel/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace kelle {
namespace accel {

namespace {

/** Paper Section 8.1.4: software eviction (no systolic evictor) costs
 *  ~7% latency and ~5% energy; the SE itself draws 0.028 W. */
constexpr double kSoftwareEvictLatencyOverhead = 0.07;
constexpr double kSoftwareEvictEnergyOverhead = 0.05;
constexpr double kEvictorPowerW = 0.028;

/** Refresh interval of the retention floor (Table 1). */
const Time kRetentionFloor = Time::micros(45);

struct StepCosts
{
    PhaseTimes phases;
    double dramBytes = 0.0;
    double onChipKvBytes = 0.0;
    double macs = 0.0;
    double recomputeMacs = 0.0; ///< included in macs; overlaps DRAM
    double sfuOps = 0.0;
    double residentKvBytes = 0.0;
    double onChipResidentKvBytes = 0.0;
    double recomputedTokens = 0.0;
};

/** Resident tokens in the cache at attention time of step t. */
std::size_t
residentTokens(const SystemConfig &sys, const Workload &w, std::size_t t)
{
    const std::size_t n = w.ctxLen + t + 1;
    if (sys.kv.evict && sys.kv.budget > 0)
        return std::min(n, sys.kv.budget);
    return n;
}

/** Refresh power of `bytes` resident data under the refresh spec. */
Power
refreshPower(const SystemConfig &sys, double bytes)
{
    const auto &r = sys.refresh;
    if (r.mode == RefreshSpec::Mode::None || bytes <= 0.0)
        return Power::watts(0);
    const EnergyPerByte e = sys.tech.kvEdram.refreshEnergy;

    auto groupPower = [&](double group_bytes, Time interval) {
        return Power::watts(e.value * group_bytes / interval.sec());
    };

    if (r.mode == RefreshSpec::Mode::Retention)
        return groupPower(bytes, kRetentionFloor);
    if (r.mode == RefreshSpec::Mode::Uniform)
        return groupPower(bytes, r.intervals.interval[0]);

    // 2DRP: bytes split into the four groups of Figure 7b: the MSB/LSB
    // byte split is exactly half; the HST/LST split follows the score
    // register file.
    const double h = r.hstFraction;
    Power total = Power::watts(0);
    total += groupPower(bytes * h * 0.5,
                        r.intervals.of(edram::RefreshGroup::HstMsb));
    total += groupPower(bytes * h * 0.5,
                        r.intervals.of(edram::RefreshGroup::HstLsb));
    total += groupPower(bytes * (1.0 - h) * 0.5,
                        r.intervals.of(edram::RefreshGroup::LstMsb));
    total += groupPower(bytes * (1.0 - h) * 0.5,
                        r.intervals.of(edram::RefreshGroup::LstLsb));
    return total;
}

/** Average refresh interval used for transient-data refresh costs. */
Time
transientRefreshInterval(const SystemConfig &sys)
{
    switch (sys.refresh.mode) {
      case RefreshSpec::Mode::None:
        return Time::seconds(0);
      case RefreshSpec::Mode::Retention:
        return kRetentionFloor;
      case RefreshSpec::Mode::Uniform:
        return sys.refresh.intervals.interval[0];
      case RefreshSpec::Mode::TwoD:
        return sys.refresh.intervals.averageInterval();
    }
    return Time::seconds(0);
}

/** Per-decode-step resource costs. */
StepCosts
decodeStepCosts(const SystemConfig &sys, const Workload &w, std::size_t t)
{
    const auto &m = w.model;
    const auto &tech = sys.tech;
    const double B = static_cast<double>(w.batch);
    const double L = static_cast<double>(m.layers);
    const double d = static_cast<double>(m.dModel);
    const double dkv = static_cast<double>(m.dKv());
    const std::size_t n = residentTokens(sys, w, t);
    const double nd = static_cast<double>(n);

    const double kv_tok = m.kvBytesPerTokenPerLayer(sys.kv.kvBits);
    const double x_tok = d * 2.0; // 16-bit activations
    const double w_step = m.weightBytes(tech.weightBits);

    StepCosts c;

    // Base compute.
    c.macs = B * m.macsPerDecodeToken(n);

    // Recomputation sizing (Section 8.3.2): Auto fills RSA slack
    // during memory stalls; Over recomputes every popular token.
    const double eligible =
        (sys.kv.recompute == RecomputeMode::None)
            ? 0.0
            : sys.kv.popularFraction * nd;
    const double macs_per_recomp = 2.0 * d * dkv; // per token per layer
    double n_rec = 0.0;
    if (sys.kv.recompute == RecomputeMode::Over) {
        n_rec = eligible;
    } else if (sys.kv.recompute == RecomputeMode::Auto) {
        // Roofline balancing (Section 8.3.2): recompute tokens while
        // the RSA would otherwise stall on memory, stopping exactly at
        // the compute/memory crossing so recomputation can slow
        // nothing down. Each recomputed token-layer removes its KV
        // bytes from DRAM and adds 2*d*dKv MACs.
        const double resident0 = B * L * nd * kv_tok;
        const double dram0 = w_step + resident0;
        const double bw =
            tech.dram.bandwidth().value * tech.dramEfficiency;
        const double t_mem = dram0 / bw;
        const double flops =
            tech.rsa.utilization * tech.rsa.peakMacsPerSec();
        const double t_comp = c.macs / flops;
        if (t_mem > t_comp) {
            const double cost_per_tok =
                B * L * macs_per_recomp / flops; // d t_comp / dn
            const double save_per_tok =
                B * L * kv_tok / bw; // d t_mem / dn
            n_rec = (t_mem - t_comp) / (cost_per_tok + save_per_tok);
            n_rec = std::min(eligible, n_rec);
        }
    }
    c.recomputedTokens = n_rec;
    c.recomputeMacs = B * L * n_rec * macs_per_recomp;
    c.macs += c.recomputeMacs;

    // Resident KV: recomputed tokens hold one activation vector x
    // (with on-chip placement priority) instead of a KV pair
    // (Section 4.1.2), so their KV bytes leave the stream entirely
    // and the x read replaces half of them.
    const double kv_res_layer =
        nd * kv_tok - n_rec * std::max(0.0, kv_tok - x_tok);
    c.residentKvBytes = B * L * kv_res_layer;

    // Working set: every layer's attention intermediates (score rows,
    // staged Q/K/V) compete with resident KV for on-chip capacity;
    // the overflow round-trips DRAM once per layer per step.
    const double ws = B * (static_cast<double>(m.nHeads) * nd * 2.0 +
                           3.0 * d * 2.0);
    const double kv_cap = tech.kvMemory.capacity().b();
    const double spill = std::max(0.0, ws - kv_cap);
    const double avail = std::max(0.0, kv_cap - ws);
    c.onChipResidentKvBytes = std::min(c.residentKvBytes, avail);
    const double f_on = c.residentKvBytes > 0
                            ? c.onChipResidentKvBytes / c.residentKvBytes
                            : 0.0;

    // Traffic: every resident KV byte is read once per step; the new
    // token's KV is written. When the score rows do not fit on chip,
    // the scheduler picks the cheaper of (a) spilling them to DRAM or
    // (b) two-pass online attention, which re-reads K/V instead of
    // materializing probabilities — either way, insufficient on-chip
    // capacity amplifies traffic, increasingly so with sequence
    // length (the Figure 3a effect).
    double kv_reads = c.residentKvBytes;
    const double kv_writes = B * L * kv_tok;
    double spill_dram = 0.0;
    if (spill > 0.0) {
        const double spill_traffic = 2.0 * spill * L;
        if (kv_reads <= spill_traffic) {
            kv_reads *= 2.0; // two-pass re-read
        } else {
            spill_dram = spill_traffic;
        }
    }
    c.dramBytes = w_step + (1.0 - f_on) * (kv_reads + kv_writes) +
                  spill_dram;
    // All KV operands stage through the on-chip KV memory on their way
    // to the RSA (Figure 10): one write and one read per byte. This is
    // where eDRAM's per-byte access advantage over SRAM (84.8 vs
    // 185.9 pJ/B) acts on the dominant traffic stream.
    c.onChipKvBytes = 2.0 * (kv_reads + kv_writes) +
                      2.0 * std::min(ws, kv_cap) * L;

    // SFU: softermax over every head's scores (2 LUT ops per element),
    // two RMSNorms and the FFN activation per layer.
    c.sfuOps = B * L *
               (2.0 * static_cast<double>(m.nHeads) * nd + 4.0 * d +
                static_cast<double>(m.dFfn));

    // Phase times. Recomputation is issued during memory stalls
    // (Section 8.3.2, "recomputed in parallel during the load"), so
    // its RSA time folds into the DRAM phase as a max even under the
    // serial baseline schedule, and only the non-recompute MACs sit
    // on the compute phase.
    const double flops2 =
        tech.rsa.utilization * tech.rsa.peakMacsPerSec();
    const double t_dram_raw =
        c.dramBytes / (tech.dram.bandwidth().value * tech.dramEfficiency);
    const double t_recomp = c.recomputeMacs / flops2;
    c.phases.dram = Time::seconds(std::max(t_dram_raw, t_recomp));
    c.phases.sramW =
        Time::seconds(w_step / tech.weightSram.bandwidth().value);
    c.phases.kvMem =
        Time::seconds(c.onChipKvBytes / tech.kvMemory.bandwidth().value);
    c.phases.compute =
        Time::seconds((c.macs - c.recomputeMacs) / flops2);
    c.phases.sfu = Time::seconds(
        c.sfuOps / (static_cast<double>(tech.sfu.lanes) *
                    tech.rsa.clockHz));
    return c;
}

/**
 * Resource costs of one prefill chunk: the `chunk` prompt tokens at KV
 * offset `offset` (batch-wide, all layers). Queries attend causally
 * over all `offset + chunk` resident tokens, so per-chunk attention
 * terms telescope — summed over a prompt's chunks they equal the
 * whole-prompt prefill — while the weight stream is charged in full
 * per chunk. `offset == 0`, `chunk == ctxLen` is the monolithic
 * prefill.
 */
StepCosts
prefillChunkCosts(const SystemConfig &sys, const Workload &w,
                  std::size_t offset, std::size_t chunk)
{
    const auto &tech = sys.tech;
    const double B = static_cast<double>(w.batch);
    const double L = static_cast<double>(w.model.layers);
    const double n_new = static_cast<double>(chunk);
    const double n_ctx = static_cast<double>(offset + chunk);
    const double n_old = static_cast<double>(offset);
    StepCosts c;
    // Causal attention telescopes: this chunk's MACs are the
    // whole-prefix cost minus the already-prefilled prefix's cost.
    double macs = B * (w.model.macsPrefill(offset + chunk) -
                       w.model.macsPrefill(offset));
    if (sys.prefillAttnSparsity > 0.0) {
        macs -= sys.prefillAttnSparsity * B *
                (w.model.macsPrefillAttention(offset + chunk) -
                 w.model.macsPrefillAttention(offset));
    }
    c.macs = macs;

    const double w_bytes = w.model.weightBytes(tech.weightBits);
    // Per-layer activation round trips that overflow the buffer.
    const double act_layer = B * n_new *
                             static_cast<double>(w.model.dModel) * 2.0;
    double act_spill = 0.0;
    if (act_layer > tech.actBuffer.capacity().b())
        act_spill = 2.0 * act_layer * L;
    // FlashAttention-style IO for the quadratic attention: query
    // blocks sized by on-chip capacity re-stream the full resident K/V
    // per block, so prefill attention traffic scales inversely with
    // capacity (and a chunk at a deep offset re-reads a long prefix).
    const double row_bytes =
        4.0 * static_cast<double>(w.model.dModel) * 2.0;
    const double block_rows = std::max(
        1.0, 0.5 * tech.kvMemory.capacity().b() / row_bytes);
    const double kv_layer_bytes =
        n_ctx * static_cast<double>(w.model.dKv()) * 2.0 * 2.0;
    const double attn_reread =
        B * L * std::ceil(n_new / block_rows) * kv_layer_bytes;
    const double kv_written =
        B * n_new * w.model.kvBytesPerToken(sys.kv.kvBits);
    c.dramBytes = w_bytes + act_spill + attn_reread + kv_written;
    c.onChipKvBytes = 2.0 * (kv_written + attn_reread);
    // Softmax rows telescope like the MACs (n_ctx^2 - n_old^2); the
    // norm/activation ops are linear in the chunk's tokens.
    c.sfuOps = B * L *
               (static_cast<double>(w.model.nHeads) *
                    (n_ctx * n_ctx - n_old * n_old) +
                (4.0 * static_cast<double>(w.model.dModel) +
                 static_cast<double>(w.model.dFfn)) *
                    n_new);

    c.phases.dram =
        Time::seconds(c.dramBytes / (tech.dram.bandwidth().value *
                                 tech.dramEfficiency));
    c.phases.sramW =
        Time::seconds(w_bytes / tech.weightSram.bandwidth().value);
    c.phases.kvMem = Time::seconds(
        c.onChipKvBytes / tech.kvMemory.bandwidth().value);
    c.phases.compute = Time::seconds(
        c.macs / (tech.rsa.utilization * tech.rsa.peakMacsPerSec() *
                  sys.prefillComputeSpeedup));
    c.phases.sfu = Time::seconds(
        c.sfuOps / (static_cast<double>(tech.sfu.lanes) *
                    tech.rsa.clockHz));
    return c;
}

/** Full prefill resource costs (batch-wide, all layers). */
StepCosts
prefillCosts(const SystemConfig &sys, const Workload &w)
{
    return prefillChunkCosts(sys, w, 0, w.ctxLen);
}

/** Accumulate the energy of one phase given its latency and costs. */
EnergyBreakdown
phaseEnergy(const SystemConfig &sys, const StepCosts &c, Time latency,
            Time t_sram_layer, Time t_kv_layer, const Workload &w)
{
    const auto &tech = sys.tech;
    EnergyBreakdown e;
    e.rsa = tech.rsa.macEnergy * c.macs;
    e.sfu = tech.sfu.opEnergy * c.sfuOps;
    // Weights pass through the staging SRAM: one write + one read.
    const double w_step = w.model.weightBytes(tech.weightBits);
    e.weightSram =
        tech.weightSram.accessEnergy() * Bytes(2.0 * w_step);
    e.kvMem = tech.kvMemory.accessEnergy() * Bytes(c.onChipKvBytes);
    e.dram = tech.dram.accessEnergy() * Bytes(c.dramBytes);

    // Refresh: resident KV in eDRAM plus transient activations whose
    // lifetime follows the scheduler (Eq. 7-8).
    if (tech.kvIsEdram) {
        e.refresh += refreshPower(sys, c.onChipResidentKvBytes) * latency;
    }
    if (tech.actIsEdram &&
        sys.refresh.mode != RefreshSpec::Mode::None) {
        const Time interval = transientRefreshInterval(sys);
        if (interval.sec() > 0) {
            const Time lifetime = transientLifetime(
                sys.scheduler, t_sram_layer, t_kv_layer);
            const double act_bytes =
                static_cast<double>(w.batch) * 4.0 *
                static_cast<double>(w.model.dModel) * 2.0 *
                static_cast<double>(w.model.layers);
            const double refreshes_per_byte =
                lifetime.sec() / interval.sec();
            e.refresh += Energy::joules(
                tech.kvEdram.refreshEnergy.value * act_bytes *
                refreshes_per_byte);
        }
    }

    Power background = tech.weightSram.leakage() +
                       tech.kvMemory.leakage() +
                       tech.actBuffer.leakage() + tech.dram.leakage() +
                       tech.socStaticPower;
    if (sys.kv.evict && sys.kv.systolicEvictor)
        background += Power::watts(kEvictorPowerW);
    e.leakage = background * latency;
    return e;
}

/**
 * Per-step resource costs of one decode iteration over a heterogeneous
 * continuous batch. Mirrors decodeStepCosts, but sums per-sequence
 * terms so member sequences may sit at different positions with
 * different AERP budgets; the weight stream is charged once for the
 * whole batch.
 *
 * The per-member summation telescopes runs of equal resident counts
 * into `count * term` closed forms (`loop_form = false`, the
 * default): every accumuland — MACs, working-set bytes, SFU ops,
 * resident tokens — is an integer-valued double far below 2^53 for
 * realistic models, so both the member-by-member sum and the grouped
 * product are exact and bitwise equal. Decode batches clamp at their
 * AERP budgets, so at steady state the whole batch collapses into one
 * multiplied term. `loop_form = true` keeps the original
 * member-at-a-time loop; the TimingTelescoping tests assert the two
 * agree bit-for-bit across randomized batches and configs.
 */
StepCosts
batchedDecodeCosts(const SystemConfig &sys, const model::ModelConfig &m,
                   const std::vector<std::size_t> &resident,
                   bool loop_form = false)
{
    const auto &tech = sys.tech;
    const double L = static_cast<double>(m.layers);
    const double d = static_cast<double>(m.dModel);
    const double dkv = static_cast<double>(m.dKv());
    const double B = static_cast<double>(resident.size());

    const double kv_tok = m.kvBytesPerTokenPerLayer(sys.kv.kvBits);
    const double x_tok = d * 2.0; // 16-bit activations
    const double w_step = m.weightBytes(tech.weightBits);

    StepCosts c;
    double n_sum = 0.0;
    double ws = 0.0;
    if (loop_form) {
        for (std::size_t n : resident) {
            const double nd = static_cast<double>(n);
            n_sum += nd;
            c.macs += m.macsPerDecodeToken(n);
            ws += static_cast<double>(m.nHeads) * nd * 2.0 +
                  3.0 * d * 2.0;
            c.sfuOps += L * (2.0 * static_cast<double>(m.nHeads) * nd +
                             4.0 * d + static_cast<double>(m.dFfn));
        }
    } else {
        for (std::size_t i = 0; i < resident.size();) {
            const std::size_t n = resident[i];
            std::size_t j = i + 1;
            while (j < resident.size() && resident[j] == n)
                ++j;
            const double cnt = static_cast<double>(j - i);
            const double nd = static_cast<double>(n);
            n_sum += cnt * nd;
            c.macs += cnt * m.macsPerDecodeToken(n);
            ws += cnt * (static_cast<double>(m.nHeads) * nd * 2.0 +
                         3.0 * d * 2.0);
            c.sfuOps +=
                cnt * (L * (2.0 * static_cast<double>(m.nHeads) * nd +
                            4.0 * d + static_cast<double>(m.dFfn)));
            i = j;
        }
    }

    // AERP recomputation, sized by the same roofline balance as the
    // uniform path but over the aggregate resident population.
    const double eligible =
        (sys.kv.recompute == RecomputeMode::None)
            ? 0.0
            : sys.kv.popularFraction * n_sum;
    const double macs_per_recomp = 2.0 * d * dkv;
    double n_rec = 0.0;
    const double bw = tech.dram.bandwidth().value * tech.dramEfficiency;
    const double flops = tech.rsa.utilization * tech.rsa.peakMacsPerSec();
    if (sys.kv.recompute == RecomputeMode::Over) {
        n_rec = eligible;
    } else if (sys.kv.recompute == RecomputeMode::Auto) {
        const double resident0 = L * n_sum * kv_tok;
        const double t_mem = (w_step + resident0) / bw;
        const double t_comp = c.macs / flops;
        if (t_mem > t_comp) {
            const double cost_per_tok = L * macs_per_recomp / flops;
            const double save_per_tok = L * kv_tok / bw;
            n_rec = (t_mem - t_comp) / (cost_per_tok + save_per_tok);
            n_rec = std::min(eligible, n_rec);
        }
    }
    c.recomputedTokens = n_rec;
    c.recomputeMacs = L * n_rec * macs_per_recomp;
    c.macs += c.recomputeMacs;

    const double kv_res =
        n_sum * kv_tok - n_rec * std::max(0.0, kv_tok - x_tok);
    c.residentKvBytes = L * kv_res;

    // Working set vs on-chip capacity, shared by the whole batch.
    const double kv_cap = tech.kvMemory.capacity().b();
    const double spill = std::max(0.0, ws - kv_cap);
    const double avail = std::max(0.0, kv_cap - ws);
    c.onChipResidentKvBytes = std::min(c.residentKvBytes, avail);
    const double f_on = c.residentKvBytes > 0
                            ? c.onChipResidentKvBytes / c.residentKvBytes
                            : 0.0;

    double kv_reads = c.residentKvBytes;
    const double kv_writes = B * L * kv_tok; // one new token per member
    double spill_dram = 0.0;
    if (spill > 0.0) {
        const double spill_traffic = 2.0 * spill * L;
        if (kv_reads <= spill_traffic) {
            kv_reads *= 2.0; // two-pass re-read
        } else {
            spill_dram = spill_traffic;
        }
    }
    c.dramBytes =
        w_step + (1.0 - f_on) * (kv_reads + kv_writes) + spill_dram;
    c.onChipKvBytes = 2.0 * (kv_reads + kv_writes) +
                      2.0 * std::min(ws, kv_cap) * L;

    c.phases.dram = Time::seconds(
        std::max(c.dramBytes / bw, c.recomputeMacs / flops));
    c.phases.sramW =
        Time::seconds(w_step / tech.weightSram.bandwidth().value);
    c.phases.kvMem =
        Time::seconds(c.onChipKvBytes / tech.kvMemory.bandwidth().value);
    c.phases.compute =
        Time::seconds((c.macs - c.recomputeMacs) / flops);
    c.phases.sfu = Time::seconds(
        c.sfuOps / (static_cast<double>(tech.sfu.lanes) *
                    tech.rsa.clockHz));
    return c;
}

/**
 * Step latency + energy from composed phases. The software-eviction
 * overhead applies to decode steps only, matching simulate(), which
 * charges it per decode step and never on prefill.
 */
StepReport
finishStep(const SystemConfig &sys, const Workload &w, const StepCosts &c,
           bool decode_step)
{
    const double L = static_cast<double>(w.model.layers);
    const bool sw_evict =
        decode_step && sys.kv.evict && !sys.kv.systolicEvictor;
    Time lat = composeStepLatency(sys.scheduler, c.phases);
    if (sw_evict)
        lat *= (1.0 + kSoftwareEvictLatencyOverhead);

    EnergyBreakdown e = phaseEnergy(
        sys, c, lat, Time::seconds(c.phases.sramW.sec() / L),
        Time::seconds(c.phases.kvMem.sec() / L), w);
    if (sw_evict) {
        const double scale = 1.0 + kSoftwareEvictEnergyOverhead;
        e.rsa *= scale;
        e.sfu *= scale;
        e.kvMem *= scale;
    }

    StepReport rep;
    rep.latency = lat;
    rep.energy = e;
    rep.dramBytes = c.dramBytes;
    rep.macs = c.macs;
    return rep;
}

} // namespace

StepReport
simulatePrefillStep(const SystemConfig &sys, const model::ModelConfig &m,
                    std::size_t ctx_len)
{
    KELLE_ASSERT(ctx_len > 0, "empty prompt");
    Workload w;
    w.name = "prefill";
    w.model = m;
    w.ctxLen = ctx_len;
    w.decLen = 1;
    w.batch = 1;
    return finishStep(sys, w, prefillCosts(sys, w), false);
}

StepReport
simulatePrefillChunk(const SystemConfig &sys, const model::ModelConfig &m,
                     std::size_t kv_offset, std::size_t chunk_len)
{
    KELLE_ASSERT(chunk_len > 0, "empty prefill chunk");
    Workload w;
    w.name = "prefill-chunk";
    w.model = m;
    w.ctxLen = kv_offset + chunk_len;
    w.decLen = 1;
    w.batch = 1;
    return finishStep(sys, w,
                      prefillChunkCosts(sys, w, kv_offset, chunk_len),
                      false);
}

StepReport
simulateBatchedDecodeStep(const SystemConfig &sys,
                          const model::ModelConfig &m,
                          const std::vector<std::size_t> &resident_tokens)
{
    KELLE_ASSERT(!resident_tokens.empty(), "empty decode batch");
    Workload w;
    w.name = "decode-step";
    w.model = m;
    w.ctxLen = 0;
    w.decLen = 1;
    w.batch = resident_tokens.size();
    return finishStep(sys, w, batchedDecodeCosts(sys, m, resident_tokens),
                      true);
}

Energy
RunReport::totalEnergy() const
{
    EnergyBreakdown sum = prefillEnergy;
    sum += decodeEnergy;
    return sum.total();
}

double
RunReport::tokensPerSecond(const Workload &w) const
{
    const double tokens =
        static_cast<double>(w.decLen) * static_cast<double>(w.batch);
    return tokens / decodeLatency.sec();
}

double
RunReport::opIntensity() const
{
    return dramBytesTotal > 0 ? 2.0 * macsTotal / dramBytesTotal : 0.0;
}

double
RunReport::achievedOpsPerSec() const
{
    const double t = totalLatency().sec();
    return t > 0 ? 2.0 * macsTotal / t : 0.0;
}

namespace {

/**
 * simulate() body, parameterized on the decode-loop evaluation mode.
 * The decode loop iterates w.decLen steps whose costs depend on t
 * only through residentTokens(sys, w, t) — a monotone clamp that
 * saturates at the KV budget. With `memoize_steps` the per-step
 * costing runs once per *distinct* resident count and the saturated
 * tail reuses the last StepCosts/StepReport; the accumulation loop is
 * unchanged (same values added in the same order), so the results are
 * bit-identical to the step-at-a-time loop, which
 * detail::simulateLoopReference preserves as the test oracle. For an
 * 8192-token decode over a 2048 budget this removes ~3/4 of the
 * analytic-model evaluations.
 */
RunReport
simulateImpl(const SystemConfig &sys, const Workload &w,
             bool memoize_steps)
{
    KELLE_ASSERT(w.decLen > 0 && w.batch > 0, "degenerate workload");
    RunReport rep;

    // ---- Prefill -------------------------------------------------
    {
        const double L = static_cast<double>(w.model.layers);
        StepCosts c = prefillCosts(sys, w);
        rep.prefillLatency = composeStepLatency(sys.scheduler, c.phases);
        rep.prefillEnergy = phaseEnergy(
            sys, c, rep.prefillLatency,
            Time::seconds(c.phases.sramW.sec() / L),
            Time::seconds(c.phases.kvMem.sec() / L), w);
        rep.dramBytesTotal += c.dramBytes;
        rep.macsTotal += c.macs;
    }

    // ---- Decode --------------------------------------------------
    Time decode_latency = Time::seconds(0);
    EnergyBreakdown decode_energy;
    double recomp_acc = 0.0;
    double f_on_acc = 0.0;
    StepCosts c;
    StepReport step;
    bool have_step = false;
    std::size_t last_resident = 0;
    for (std::size_t t = 0; t < w.decLen; ++t) {
        const std::size_t n = residentTokens(sys, w, t);
        if (!memoize_steps || !have_step || n != last_resident) {
            c = decodeStepCosts(sys, w, t);
            step = finishStep(sys, w, c, true);
            have_step = true;
            last_resident = n;
        }
        decode_latency += step.latency;
        decode_energy += step.energy;
        rep.dramBytesTotal += c.dramBytes;
        rep.macsTotal += c.macs;
        recomp_acc += c.recomputedTokens;
        f_on_acc += c.residentKvBytes > 0
                        ? c.onChipResidentKvBytes / c.residentKvBytes
                        : 0.0;
        if (t + 1 == w.decLen)
            rep.kvResidentBytesEnd = c.residentKvBytes;
    }
    rep.decodeLatency = decode_latency;
    rep.decodeEnergy = decode_energy;
    rep.recomputedTokensPerStep =
        recomp_acc / static_cast<double>(w.decLen);
    rep.kvOnChipFraction = f_on_acc / static_cast<double>(w.decLen);
    return rep;
}

} // namespace

RunReport
simulate(const SystemConfig &sys, const Workload &w)
{
    return simulateImpl(sys, w, true);
}

namespace detail {

RunReport
simulateLoopReference(const SystemConfig &sys, const Workload &w)
{
    return simulateImpl(sys, w, false);
}

StepReport
batchedDecodeStepLoopReference(
    const SystemConfig &sys, const model::ModelConfig &m,
    const std::vector<std::size_t> &resident_tokens)
{
    KELLE_ASSERT(!resident_tokens.empty(), "empty decode batch");
    Workload w;
    w.name = "decode-step";
    w.model = m;
    w.ctxLen = 0;
    w.decLen = 1;
    w.batch = resident_tokens.size();
    return finishStep(
        sys, w, batchedDecodeCosts(sys, m, resident_tokens, true), true);
}

} // namespace detail

Comparison
compare(const RunReport &base, const RunReport &sys)
{
    Comparison c;
    c.speedup = base.totalLatency() / sys.totalLatency();
    c.energyEfficiency = base.totalEnergy() / sys.totalEnergy();
    return c;
}

SystemConfig
originalSramSystem()
{
    SystemConfig s;
    s.name = "Original+SRAM";
    s.tech = originalSramTech();
    s.scheduler = SchedulerKind::Baseline;
    s.kv.evict = false;
    s.kv.recompute = RecomputeMode::None;
    s.kv.systolicEvictor = false;
    s.refresh.mode = RefreshSpec::Mode::None;
    return s;
}

SystemConfig
originalEdramSystem()
{
    SystemConfig s;
    s.name = "Original+eDRAM";
    s.tech = kelleTech();
    s.scheduler = SchedulerKind::Baseline;
    s.kv.evict = false;
    s.kv.recompute = RecomputeMode::None;
    s.kv.systolicEvictor = false;
    s.refresh.mode = RefreshSpec::Mode::Retention;
    return s;
}

SystemConfig
aepSramSystem(std::size_t budget)
{
    SystemConfig s;
    s.name = "AEP+SRAM";
    s.tech = originalSramTech();
    s.scheduler = SchedulerKind::Baseline;
    s.kv.evict = true;
    s.kv.budget = budget;
    s.kv.recompute = RecomputeMode::None;
    s.kv.systolicEvictor = true;
    s.refresh.mode = RefreshSpec::Mode::None;
    return s;
}

SystemConfig
aerpSramSystem(std::size_t budget)
{
    SystemConfig s = aepSramSystem(budget);
    s.name = "AERP+SRAM";
    s.kv.recompute = RecomputeMode::Auto;
    return s;
}

SystemConfig
kelleEdramSystem(std::size_t budget)
{
    SystemConfig s;
    s.name = "Kelle+eDRAM";
    s.tech = kelleTech();
    s.scheduler = SchedulerKind::Kelle;
    s.kv.evict = true;
    s.kv.budget = budget;
    s.kv.recompute = RecomputeMode::Auto;
    s.kv.systolicEvictor = true;
    s.refresh.mode = RefreshSpec::Mode::TwoD;
    return s;
}

} // namespace accel
} // namespace kelle
