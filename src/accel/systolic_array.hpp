/**
 * @file
 * Cycle-level weight-stationary systolic array (the RSA of Section 5.2).
 *
 * The array is an R x C grid of 8-bit MAC PEs: weights are preloaded
 * into the grid (one row per cycle), activations stream in from the
 * left with a one-cycle skew per row, and partial sums flow down the
 * columns into the accumulator. Output element (m, n) of an
 * M x K * K x N tile product exits column n at cycle m + n + K - 1
 * after streaming starts.
 *
 * A reconfiguration flag provides in-place transposed multiplication
 * (the FAST-style reconfigurable strategy the paper adopts), used for
 * Q.K^T in attention.
 *
 * The simulation is register-true: the returned products are computed
 * by the modeled PEs cycle by cycle and are bit-identical to integer
 * reference matmuls, which the test suite verifies.
 */

#ifndef KELLE_ACCEL_SYSTOLIC_ARRAY_HPP
#define KELLE_ACCEL_SYSTOLIC_ARRAY_HPP

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace kelle {
namespace accel {

/** Dense row-major int8 matrix. */
struct Int8Matrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::int8_t> data;

    Int8Matrix() = default;
    Int8Matrix(std::size_t r, std::size_t c)
        : rows(r), cols(c), data(r * c, 0)
    {}
    std::int8_t &at(std::size_t r, std::size_t c)
    {
        return data[r * cols + c];
    }
    std::int8_t
    at(std::size_t r, std::size_t c) const
    {
        return data[r * cols + c];
    }
};

/** Dense row-major int32 accumulator matrix. */
struct Int32Matrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::int32_t> data;

    Int32Matrix() = default;
    Int32Matrix(std::size_t r, std::size_t c)
        : rows(r), cols(c), data(r * c, 0)
    {}
    std::int32_t &at(std::size_t r, std::size_t c)
    {
        return data[r * cols + c];
    }
    std::int32_t
    at(std::size_t r, std::size_t c) const
    {
        return data[r * cols + c];
    }
};

/** Reference integer matmul for verification. */
Int32Matrix referenceMatmul(const Int8Matrix &a, const Int8Matrix &b);

/** Cycle and work accounting of one or more array operations. */
struct ArrayStats
{
    std::uint64_t cycles = 0;
    std::uint64_t macs = 0;        ///< useful MACs
    std::uint64_t peCycles = 0;    ///< PE-slots elapsed (cycles * R * C)
    std::uint64_t weightLoads = 0; ///< weight-load cycles included

    double
    utilization() const
    {
        return peCycles ? static_cast<double>(macs) /
                              static_cast<double>(peCycles)
                        : 0.0;
    }
    void merge(const ArrayStats &o);
};

/**
 * Observer of column-0 outputs as they drain, used to couple the
 * systolic evictor to attention-score computation: called once per
 * produced output element with (row index m, value).
 */
class OutputTap
{
  public:
    virtual ~OutputTap() = default;
    virtual void onOutput(std::size_t m, std::size_t n,
                          std::int32_t value, std::uint64_t cycle) = 0;
};

/** The reconfigurable systolic array. */
class SystolicArray
{
  public:
    SystolicArray(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /**
     * Load a K x N weight tile (K <= rows, N <= cols). When
     * `transposed`, the tile is interpreted as N x K and loaded
     * transposed in place (reconfigured dataflow). Costs K cycles.
     */
    void loadWeights(const Int8Matrix &w, bool transposed = false);

    /**
     * Stream an M x K activation tile through the loaded weights,
     * returning the M x N product. Cycle-true: M + K + N - 1 cycles
     * of PE evaluation. An optional tap observes each drained output.
     */
    Int32Matrix stream(const Int8Matrix &a, OutputTap *tap = nullptr);

    /**
     * Full tiled matmul C = A (M x K) * B (K x N), accumulating over
     * K tiles, including weight-load cycles.
     */
    Int32Matrix matmul(const Int8Matrix &a, const Int8Matrix &b);

    const ArrayStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::size_t tileK_ = 0; ///< valid weight rows
    std::size_t tileN_ = 0; ///< valid weight cols
    std::vector<std::int8_t> weights_; ///< rows_ x cols_
    ArrayStats stats_;
};

} // namespace accel
} // namespace kelle

#endif // KELLE_ACCEL_SYSTOLIC_ARRAY_HPP
