#include "accel/systolic_evictor.hpp"

#include "common/log.hpp"

namespace kelle {
namespace accel {

SystolicEvictor::SystolicEvictor(std::size_t slots)
    : slots_(slots), scores_(slots, 0.0f), protected_(slots, 0),
      updated_(slots, 0)
{
    KELLE_ASSERT(slots > 0, "evictor needs at least one slot");
}

void
SystolicEvictor::loadScores(const std::vector<float> &scores)
{
    KELLE_ASSERT(scores.size() == slots_, "score preload size mismatch");
    scores_ = scores;
}

void
SystolicEvictor::setProtected(std::size_t slot, bool is_protected)
{
    KELLE_ASSERT(slot < slots_, "slot out of range");
    protected_[slot] = is_protected ? 1 : 0;
}

void
SystolicEvictor::beginPass()
{
    chain_ = MinReg{};
    nextRow_ = 0;
    extraCycles_ = 0;
    std::fill(updated_.begin(), updated_.end(), 0);
}

void
SystolicEvictor::onOutput(std::size_t m, std::size_t, std::int32_t value,
                          std::uint64_t)
{
    KELLE_ASSERT(m < slots_, "score row out of range");
    // Step 1/3 (Figure 11d): the i-th SE row accumulates the freshly
    // drained attention score into S[i] ...
    scores_[m] += static_cast<float>(value);
    updated_[m] = 1;
    // ... and step 2/4: the min register chain advances in the same
    // cycle, one row behind the RSA drain.
    tick();
}

void
SystolicEvictor::tick()
{
    if (nextRow_ >= slots_)
        return;
    const std::size_t i = nextRow_++;
    if (!updated_[i])
        return; // row's score has not drained yet; chain idles
    if (protected_[i])
        return; // sink/recent slots never propagate into the min
    if (!chain_.valid || scores_[i] < chain_.value) {
        chain_.value = scores_[i];
        chain_.index = i;
        chain_.valid = true;
    }
}

std::size_t
SystolicEvictor::finalize()
{
    // Any rows the chain has not visited yet drain now, one per cycle
    // beyond the RSA's own pipeline.
    while (nextRow_ < slots_) {
        tick();
        ++extraCycles_;
    }
    ++extraCycles_; // latch the final min register
    KELLE_ASSERT(chain_.valid, "no eligible eviction candidate");
    return chain_.index;
}

} // namespace accel
} // namespace kelle
